// Coverage for the supporting libraries: the Table-I area model, the
// libmpk-style virtualiser, and the guest runtime helpers.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "guest_test_util.h"
#include "hwcost/fpga_model.h"
#include "mpk/virt.h"
#include "workloads/build_util.h"

namespace sealpk {
namespace {

// ---------------------------------------------------------------------------
// hwcost — the Table I model.
// ---------------------------------------------------------------------------

TEST(HwCost, BaselineMatchesPaperTable1) {
  const auto base = hwcost::baseline_rocket();
  EXPECT_EQ(base.total_luts(), 32030u);
  EXPECT_EQ(base.luts_logic, 30907u);
  EXPECT_EQ(base.luts_mem, 1123u);
  EXPECT_EQ(base.ffs, 16506u);
  // 60.21 % of the XC7Z020, as printed in Table I.
  EXPECT_NEAR(hwcost::utilization_pct(base.total_luts(),
                                      hwcost::FpgaDevice{}.luts),
              60.21, 0.02);
}

TEST(HwCost, SealPkDeltaTracksPaper) {
  const auto delta = hwcost::sealpk_overhead(hwcost::SealPkHwConfig{});
  // Paper deltas: +2989 total LUTs (+2945 logic, +44 mem), +2886 FF.
  EXPECT_NEAR(delta.luts_logic, 2945, 150);
  EXPECT_NEAR(delta.luts_mem, 44, 10);
  EXPECT_NEAR(delta.ffs, 2886, 150);
}

TEST(HwCost, ComponentsSumToTotal) {
  const hwcost::SealPkHwConfig cfg;
  hwcost::ResourceCount sum;
  for (const auto& part : hwcost::sealpk_components(cfg)) {
    sum = sum + part.cost;
  }
  const auto total = hwcost::sealpk_overhead(cfg);
  EXPECT_EQ(sum.luts_logic, total.luts_logic);
  EXPECT_EQ(sum.luts_mem, total.luts_mem);
  EXPECT_EQ(sum.ffs, total.ffs);
}

TEST(HwCost, ScalesMonotonicallyWithStructures) {
  hwcost::SealPkHwConfig small, big;
  small.pkr_rows = 8;
  small.cam_entries = 8;
  big.pkr_rows = 64;
  big.cam_entries = 32;
  const auto s = hwcost::sealpk_overhead(small);
  const auto b = hwcost::sealpk_overhead(big);
  EXPECT_LT(s.luts_mem, b.luts_mem);
  EXPECT_LT(s.ffs, b.ffs);
  EXPECT_LT(s.luts_logic, b.luts_logic);
}

// ---------------------------------------------------------------------------
// mpk::KeyVirtualizer — the libmpk-style scaling model.
// ---------------------------------------------------------------------------

TEST(Virtualizer, HitsAreCheapWithinPhysicalBudget) {
  mpk::KeyVirtualizer virt(15, core::TimingModel{});
  for (int d = 0; d < 10; ++d) virt.create_domain(4);
  for (int i = 0; i < 1000; ++i) virt.use(static_cast<u64>(i % 10));
  EXPECT_EQ(virt.stats().evictions, 0u);
  EXPECT_EQ(virt.stats().hits, 1000u - 10u);  // first touch of each misses
}

TEST(Virtualizer, EvictsLruAndPaysPteRewrites) {
  mpk::KeyVirtualizer virt(2, core::TimingModel{});
  for (int d = 0; d < 3; ++d) virt.create_domain(5);
  virt.use(0);
  virt.use(1);
  const u64 before = virt.stats().cycles;
  virt.use(2);  // evicts domain 0 (LRU): 5 + 5 pages of PTE rewrites
  EXPECT_EQ(virt.stats().evictions, 1u);
  EXPECT_EQ(virt.stats().pte_rewrites, 10u);
  EXPECT_GT(virt.stats().cycles - before,
            10 * core::TimingModel{}.pte_update_cycles);
  // Domain 1 was touched more recently than 0, so it survived.
  EXPECT_EQ(virt.use(1), core::TimingModel{}.rocc_cycles +
                             core::TimingModel{}.base_cycles);
}

TEST(Virtualizer, LruOrderRespectsTouches) {
  mpk::KeyVirtualizer virt(2, core::TimingModel{});
  for (int d = 0; d < 3; ++d) virt.create_domain(1);
  virt.use(0);
  virt.use(1);
  virt.use(0);  // refresh 0: now 1 is the LRU
  virt.use(2);  // must evict 1
  EXPECT_EQ(virt.stats().evictions, 1u);
  const u64 cheap = core::TimingModel{}.rocc_cycles +
                    core::TimingModel{}.base_cycles;
  EXPECT_EQ(virt.use(0), cheap);  // still mapped
  EXPECT_GT(virt.use(1), cheap);  // was evicted
}

TEST(Virtualizer, SealPkBudgetDefersTheCliff) {
  const core::TimingModel timing;
  mpk::KeyVirtualizer mpk_virt(15, timing);
  mpk::KeyVirtualizer sealpk_virt(1023, timing);
  for (int d = 0; d < 200; ++d) {
    mpk_virt.create_domain(4);
    sealpk_virt.create_domain(4);
  }
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const u64 d = rng.below(200);
    mpk_virt.use(d);
    sealpk_virt.use(d);
  }
  EXPECT_GT(mpk_virt.stats().evictions, 1000u);
  EXPECT_EQ(sealpk_virt.stats().evictions, 0u);
  EXPECT_GT(mpk_virt.stats().cycles, 20 * sealpk_virt.stats().cycles);
}

// ---------------------------------------------------------------------------
// Guest runtime helpers.
// ---------------------------------------------------------------------------

TEST(Runtime, FillRandMatchesHostMirror) {
  constexpr u64 kCount = 64;
  auto prog = testutil::make_main_program([](isa::Program& p,
                                             isa::Function& f) {
    wl::add_fill_rand(p);
    p.add_zero("buf", kCount * 8);
    f.la(isa::a0, "buf");
    f.li(isa::a1, kCount);
    f.li(isa::a2, 0x1234);
    f.call("__fill_rand");
    rt::syscall(f, os::sys::kReport);  // final state
    // Report a couple of samples.
    f.la(isa::t0, "buf");
    f.ld(isa::a0, 0, isa::t0);
    rt::syscall(f, os::sys::kReport);
    f.la(isa::t0, "buf");
    f.ld(isa::a0, 8 * (kCount - 1), isa::t0);
    rt::syscall(f, os::sys::kReport);
    f.li(isa::a0, 0);
  });
  const auto run = testutil::run_guest(prog);
  std::vector<u64> host;
  const u64 state = wl::host_fill_rand(host, kCount, 0x1234);
  ASSERT_EQ(run.reports.size(), 3u);
  EXPECT_EQ(run.reports[0], state);
  EXPECT_EQ(run.reports[1], host[0]);
  EXPECT_EQ(run.reports[2], host[kCount - 1]);
}

TEST(Runtime, GuestRandMatchesRandLib) {
  auto prog = testutil::make_main_program([](isa::Program& p,
                                             isa::Function& f) {
    rt::add_rand_lib(p);
    p.add_zero("state", 8);
    f.la(isa::t0, "state");
    f.li(isa::t1, 0x99);
    f.sd(isa::t1, 0, isa::t0);
    for (int i = 0; i < 3; ++i) {
      f.la(isa::a0, "state");
      f.call("__rand");
      rt::syscall(f, os::sys::kReport);
    }
    f.li(isa::a0, 0);
  });
  const auto run = testutil::run_guest(prog);
  wl::GuestRand host(0x99);
  ASSERT_EQ(run.reports.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(run.reports[i], host.next());
}

TEST(Runtime, PkeyLibIsIdempotent) {
  isa::Program prog;
  rt::add_pkey_lib(prog);
  rt::add_pkey_lib(prog);  // second call must not duplicate symbols
  EXPECT_NE(prog.find_function("__pkey_set"), nullptr);
  rt::add_rand_lib(prog);
  rt::add_rand_lib(prog);
  EXPECT_NO_THROW(prog.add_function("_start").ret());
}

TEST(Runtime, BlindPkeySetClearsNeighbours) {
  // __pkey_set_blind resets the other keys in the row to 00 — the
  // documented SealPK-WR trade-off.
  auto prog = testutil::make_main_program([](isa::Program& p,
                                             isa::Function& f) {
    rt::add_pkey_lib(p);
    // Set key 3 and key 4 (same row) to kNone via the safe setter.
    f.li(isa::a0, 3);
    f.li(isa::a1, 3);
    f.call("__pkey_set");
    f.li(isa::a0, 4);
    f.li(isa::a1, 3);
    f.call("__pkey_set");
    // Blind-set key 4 only.
    f.li(isa::a0, 4);
    f.li(isa::a1, 1);
    f.call("__pkey_set_blind");
    f.li(isa::a0, 3);
    f.call("__pkey_get");
    rt::syscall(f, os::sys::kReport);  // expect 0 (clobbered)
    f.li(isa::a0, 4);
    f.call("__pkey_get");
    rt::syscall(f, os::sys::kReport);  // expect 1
    f.li(isa::a0, 0);
  });
  EXPECT_EQ(testutil::run_guest(prog).reports, (std::vector<u64>{0, 1}));
}

}  // namespace
}  // namespace sealpk
