// Guest SEGV-class signal handling: recovery from pkey faults — the
// mechanism real MPK software (and libmpk itself) builds on. The handler
// receives the pkey-augmented fault info of §III-B.2 and can either repair
// the cause and retry the instruction or skip it (probe pattern).
#include <gtest/gtest.h>

#include "guest_test_util.h"

namespace sealpk {
namespace {

using isa::Function;
using isa::Label;
using isa::Program;
using namespace isa;
using testutil::GuestRun;
using testutil::make_main_program;
using testutil::run_guest;

// Shared fixture body: page in a read-only domain, handler registered.
void emit_setup(Program& p, Function& f, const char* handler) {
  rt::add_pkey_lib(p);
  f.li(a0, 0);
  f.li(a1, 4096);
  f.li(a2, 3);
  rt::syscall(f, os::sys::kMmap);
  f.mv(s0, a0);
  f.li(a0, 0);
  f.li(a1, static_cast<i64>(os::pkeyperm::kReadOnly));
  rt::syscall(f, os::sys::kPkeyAlloc);
  f.mv(s1, a0);
  f.mv(a0, s0);
  f.li(a1, 4096);
  f.li(a2, 3);
  f.mv(a3, s1);
  rt::syscall(f, os::sys::kPkeyMprotect);
  f.la(a0, handler);
  rt::syscall(f, os::sys::kSigaction);
}

TEST(Signals, HandlerSkipsFaultingInstruction) {
  auto prog = make_main_program([](Program& p, Function& f) {
    emit_setup(p, f, "handler");
    f.li(t0, 0x11);
    f.sd(t0, 0, s0);  // pkey fault -> handler -> skipped
    f.li(t1, 0x22);   // resumes here
    f.mv(a0, t1);
    rt::syscall(f, os::sys::kReport);
    f.ld(a0, 0, s0);  // read allowed: page untouched (store was skipped)
    rt::syscall(f, os::sys::kReport);
    f.li(a0, 0);

    // handler(cause, addr, pkeyinfo): report the pkey info, then skip.
    Function& h = p.add_function("handler");
    h.instrumentable = false;
    h.mv(t2, a2);
    h.slli(t3, a2, 1);
    h.srli(t3, t3, 1);  // clear bit 63 -> the pkey
    h.mv(a0, t3);
    rt::syscall(h, os::sys::kReport);
    h.li(a0, 1);  // skip
    rt::syscall(h, os::sys::kSigreturn);
  });
  const GuestRun run = run_guest(prog);
  EXPECT_TRUE(run.outcome.completed);
  EXPECT_EQ(run.exit_code, 0);
  // Handler saw pkey 1; main resumed after the store; page still zero.
  EXPECT_EQ(run.reports, (std::vector<u64>{1, 0x22, 0}));
  // The fault was recorded but marked delivered, not fatal.
  ASSERT_EQ(run.faults.size(), 1u);
  EXPECT_TRUE(run.faults[0].delivered);
  EXPECT_TRUE(run.faults[0].pkey_fault);
}

TEST(Signals, HandlerRepairsAndRetries) {
  auto prog = make_main_program([](Program& p, Function& f) {
    emit_setup(p, f, "handler");
    f.li(t0, 0x33);
    f.sd(t0, 0, s0);  // faults once; handler grants write; retried
    f.ld(a0, 0, s0);
    rt::syscall(f, os::sys::kReport);  // expect 0x33 (store succeeded)
    f.li(a0, 0);

    // handler: flip the faulting pkey to RW via user-space WRPKR, then
    // re-execute the instruction.
    Function& h = p.add_function("handler");
    h.instrumentable = false;
    h.slli(a0, a2, 1);
    h.srli(a0, a0, 1);  // the pkey
    h.li(a1, static_cast<i64>(os::pkeyperm::kRw));
    h.call("__pkey_set");
    h.li(a0, 0);  // no skip: retry
    rt::syscall(h, os::sys::kSigreturn);
  });
  const GuestRun run = run_guest(prog);
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_EQ(run.reports, (std::vector<u64>{0x33}));
  ASSERT_EQ(run.faults.size(), 1u);
  EXPECT_TRUE(run.faults[0].delivered);
}

TEST(Signals, DoubleFaultInHandlerKills) {
  auto prog = make_main_program([](Program& p, Function& f) {
    emit_setup(p, f, "handler");
    f.sd(zero, 0, s0);  // first fault
    f.li(a0, 0);

    // handler faults again (stores to the same protected page).
    Function& h = p.add_function("handler");
    h.instrumentable = false;
    h.sd(zero, 0, s0);
    h.li(a0, 1);
    rt::syscall(h, os::sys::kSigreturn);
  });
  const GuestRun run = run_guest(prog);
  ASSERT_EQ(run.faults.size(), 2u);
  EXPECT_TRUE(run.faults[0].delivered);
  EXPECT_FALSE(run.faults[1].delivered);  // the second one is fatal
  EXPECT_LT(run.exit_code, 0);
}

TEST(Signals, UnregisterRestoresDefaultKill) {
  auto prog = make_main_program([](Program& p, Function& f) {
    emit_setup(p, f, "handler");
    f.li(a0, 0);
    rt::syscall(f, os::sys::kSigaction);  // unregister
    f.sd(zero, 0, s0);
    f.li(a0, 0);

    Function& h = p.add_function("handler");
    h.instrumentable = false;
    h.li(a0, 1);
    rt::syscall(h, os::sys::kSigreturn);
  });
  const GuestRun run = run_guest(prog);
  ASSERT_EQ(run.faults.size(), 1u);
  EXPECT_FALSE(run.faults[0].delivered);
  EXPECT_LT(run.exit_code, 0);
}

TEST(Signals, SigreturnOutsideHandlerKills) {
  auto prog = make_main_program([](Program&, Function& f) {
    f.li(a0, 0);
    rt::syscall(f, os::sys::kSigreturn);
    f.li(a0, 0);
  });
  EXPECT_LT(run_guest(prog).exit_code, 0);
}

TEST(Signals, SealViolationIsDeliverable) {
  auto prog = make_main_program([](Program& p, Function& f) {
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);
    f.seal_start(0);
    f.nop();
    f.seal_end(0);
    f.mv(a0, s1);
    rt::syscall(f, os::sys::kPkeyPermSeal);
    f.la(a0, "handler");
    rt::syscall(f, os::sys::kSigaction);
    f.wrpkr(s1, zero);  // out-of-range WRPKR: seal violation -> handler
    f.li(a0, 0);

    Function& h = p.add_function("handler");
    h.instrumentable = false;
    h.mv(a0, a0);  // cause already in a0
    rt::syscall(h, os::sys::kReport);
    h.li(a0, 1);  // skip the rogue WRPKR
    rt::syscall(h, os::sys::kSigreturn);
  });
  const GuestRun run = run_guest(prog);
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_EQ(run.reports,
            (std::vector<u64>{
                static_cast<u64>(core::TrapCause::kSealViolation)}));
  ASSERT_EQ(run.faults.size(), 1u);
  EXPECT_TRUE(run.faults[0].delivered);
}

TEST(Signals, ProbePatternScansProtectedRegions) {
  // A realistic use: probe N pages, counting which are readable, without
  // dying — the pattern libmpk-style libraries use to discover domain
  // state.
  auto prog = make_main_program([](Program& p, Function& f) {
    rt::add_pkey_lib(p);
    p.add_zero("hit_count", 8);
    // Three pages: page 1 gets a no-access domain.
    f.li(a0, 0);
    f.li(a1, 3 * 4096);
    f.li(a2, 3);
    rt::syscall(f, os::sys::kMmap);
    f.mv(s0, a0);
    f.li(a0, 0);
    f.li(a1, static_cast<i64>(os::pkeyperm::kNone));
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);
    f.li(t0, 4096);
    f.add(a0, s0, t0);
    f.li(a1, 4096);
    f.li(a2, 3);
    f.mv(a3, s1);
    rt::syscall(f, os::sys::kPkeyMprotect);
    f.la(a0, "handler");
    rt::syscall(f, os::sys::kSigaction);
    // Probe all three pages.
    f.li(s2, 0);  // page index
    f.li(s3, 0);  // readable count
    const Label loop = f.new_label(), done = f.new_label(),
                next = f.new_label();
    f.bind(loop);
    f.li(t0, 3);
    f.bgeu(s2, t0, done);
    f.slli(t1, s2, 12);
    f.add(t1, s0, t1);
    f.la(t2, "hit_count");
    f.sd(zero, 0, t2);
    f.ld(t3, 0, t1);  // probe (faults on page 1; handler sets hit_count)
    f.la(t2, "hit_count");
    f.ld(t3, 0, t2);
    f.bnez(t3, next);  // faulted: not readable
    f.addi(s3, s3, 1);
    f.bind(next);
    f.addi(s2, s2, 1);
    f.j(loop);
    f.bind(done);
    f.mv(a0, s3);
    rt::syscall(f, os::sys::kReport);  // expect 2 readable pages
    f.li(a0, 0);

    Function& h = p.add_function("handler");
    h.instrumentable = false;
    h.la(t2, "hit_count");
    h.li(t3, 1);
    h.sd(t3, 0, t2);
    h.li(a0, 1);  // skip the probe load
    rt::syscall(h, os::sys::kSigreturn);
  });
  const GuestRun run = run_guest(prog);
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_EQ(run.reports, (std::vector<u64>{2}));
}

}  // namespace
}  // namespace sealpk
