// Pkey virtualization (src/mpk, DESIGN.md §15): the KeyVirtualizer cost
// model, the in-kernel VkeyTable (policy exercised against a mock side-
// effect port), the vpkey guest syscall ABI, the session-server workload,
// snapshot round-trips of the vkey table, and corruption detect + repair
// through the machine auditor.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/serial.h"
#include "fault/auditor.h"
#include "fault/fault.h"
#include "guest_test_util.h"
#include "mpk/session.h"
#include "mpk/virt.h"
#include "obs/span.h"
#include "mpk/vkey_table.h"
#include "snapshot/snapshot.h"
#include "workloads/workload.h"

namespace sealpk {
namespace {

using namespace isa;

// ---------------------------------------------------------------------------
// KeyVirtualizer — the host-side libmpk cost model (bench_domain_scaling
// Part 2 rests on these semantics).
// ---------------------------------------------------------------------------

TEST(KeyVirtualizer, HitsWhileKeysAreFreeNeverEvict) {
  const core::TimingModel timing;
  mpk::KeyVirtualizer virt(3, timing);
  for (int i = 0; i < 3; ++i) virt.create_domain(4);
  for (u64 d = 0; d < 3; ++d) virt.use(d);   // all misses, all free keys
  for (u64 d = 0; d < 3; ++d) virt.use(d);   // all hits
  EXPECT_EQ(virt.stats().uses, 6u);
  EXPECT_EQ(virt.stats().hits, 3u);
  EXPECT_EQ(virt.stats().evictions, 0u);
  EXPECT_EQ(virt.stats().pte_rewrites, 0u);
}

TEST(KeyVirtualizer, EvictsTheLeastRecentlyUsedDomain) {
  const core::TimingModel timing;
  mpk::KeyVirtualizer virt(2, timing);
  for (int i = 0; i < 3; ++i) virt.create_domain(1);
  virt.use(0);
  virt.use(1);
  virt.use(0);  // LRU order now: 0 (recent), 1 (stale)
  virt.use(2);  // must evict 1, not 0
  EXPECT_EQ(virt.stats().evictions, 1u);
  const u64 hits_before = virt.stats().hits;
  virt.use(0);  // still mapped: a hit
  EXPECT_EQ(virt.stats().hits, hits_before + 1);
  virt.use(1);  // was evicted: a miss that evicts again
  EXPECT_EQ(virt.stats().evictions, 2u);
}

TEST(KeyVirtualizer, EvictionReKeysBothDomainsPages) {
  const core::TimingModel timing;
  mpk::KeyVirtualizer virt(1, timing);
  virt.create_domain(3);
  virt.create_domain(5);
  virt.use(0);  // free key: no PTE traffic
  EXPECT_EQ(virt.stats().pte_rewrites, 0u);
  virt.use(1);  // evicts 0: rewrites 3 (victim) + 5 (incoming) pages
  EXPECT_EQ(virt.stats().pte_rewrites, 8u);
  virt.use(0);  // evicts 1: same pair again
  EXPECT_EQ(virt.stats().pte_rewrites, 16u);
}

TEST(KeyVirtualizer, CycleCostSeparatesHitsFromEvictions) {
  const core::TimingModel timing;
  mpk::KeyVirtualizer virt(1, timing);
  virt.create_domain(4);
  virt.create_domain(4);
  const u64 miss_cost = virt.use(0);  // free key: dispatch, no PTE storm
  const u64 hit_cost = virt.use(0);
  const u64 evict_cost = virt.use(1);
  EXPECT_EQ(hit_cost, timing.rocc_cycles + timing.base_cycles);
  EXPECT_EQ(miss_cost, hit_cost + timing.syscall_dispatch_cycles);
  EXPECT_EQ(evict_cost, miss_cost + 8 * timing.pte_update_cycles +
                            timing.tlb_flush_cycles);
  EXPECT_EQ(virt.stats().cycles, miss_cost + hit_cost + evict_cost);
}

// ---------------------------------------------------------------------------
// VkeyTable — policy vs a recording mock of the kernel's side-effect port.
// ---------------------------------------------------------------------------

struct RekeyCall {
  u64 addr = 0;
  u64 len = 0;
  u32 pkey = 0;
};

class MockOps : public mpk::VkeyOps {
 public:
  explicit MockOps(u32 usable_keys) : limit_(usable_keys) {}

  i64 acquire_phys() override {
    if (next_ > limit_) return os::err::kNoSpc;
    return next_++;
  }
  i64 rekey(u64 addr, u64 len, u64 /*prot*/, u32 pkey) override {
    rekeys.push_back({addr, len, pkey});
    return static_cast<i64>((len + 4095) / 4096);
  }
  void set_perm(u32 pkey, u8 perm) override { perm_writes.push_back({pkey, perm}); }
  void flush_tlb() override { ++flushes; }
  void note_evict(u64 vkey, u32 /*phys*/, bool drained) override {
    evicts.push_back({vkey, drained});
  }
  void note_sync(u64 pages, u64 vkeys) override {
    syncs.push_back({pages, vkeys});
  }

  std::vector<RekeyCall> rekeys;
  std::vector<std::pair<u32, u8>> perm_writes;
  std::vector<std::pair<u64, bool>> evicts;
  std::vector<std::pair<u64, u64>> syncs;
  u64 flushes = 0;

 private:
  u32 next_ = 1;  // key 0 is the default domain
  u32 limit_;
};

// Allocates a vkey, assigns `pages` one-page groups and maps it in.
u64 map_in(mpk::VkeyTable& table, MockOps& ops, u64 base, u64 pages = 1) {
  const i64 vkey = table.alloc(0, 3);
  EXPECT_GT(vkey, 0);
  for (u64 p = 0; p < pages; ++p) {
    EXPECT_EQ(table.mprotect(ops, base + p * 4096, 4096, 3,
                             static_cast<u64>(vkey)),
              0);
  }
  EXPECT_GE(table.set(ops, static_cast<u64>(vkey), 0), 0);
  return static_cast<u64>(vkey);
}

TEST(VkeyTable, AllocIsMetadataOnly) {
  mpk::VkeyTable table;
  MockOps ops(4);
  const i64 vkey = table.alloc(0, 3);
  EXPECT_GE(vkey, static_cast<i64>(mpk::kVkeyBase));
  EXPECT_EQ(table.live(), 1u);
  EXPECT_EQ(table.mapped(), 0u);
  EXPECT_TRUE(ops.rekeys.empty());
  EXPECT_TRUE(ops.perm_writes.empty());
  EXPECT_EQ(table.alloc(1, 0), os::err::kInval);  // unknown flags
  EXPECT_EQ(table.alloc(0, 4), os::err::kInval);  // perm out of range
}

TEST(VkeyTable, UnmappedGroupsParkThenReplayUnderOneFlush) {
  mpk::VkeyTable table;
  MockOps ops(4);
  const i64 vkey = table.alloc(0, 3);
  ASSERT_GT(vkey, 0);
  // Two groups while unmapped: both re-key to the park key.
  ASSERT_EQ(table.mprotect(ops, 0x10000, 8192, 3, vkey), 0);
  ASSERT_EQ(table.mprotect(ops, 0x20000, 4096, 3, vkey), 0);
  ASSERT_EQ(ops.rekeys.size(), 2u);
  EXPECT_EQ(ops.rekeys[0].pkey, table.park_key());
  EXPECT_EQ(ops.rekeys[1].pkey, table.park_key());
  // Map-in: both groups replayed to the bound key, one extra flush total.
  const u64 flushes_before = ops.flushes;
  const size_t rekeys_before = ops.rekeys.size();
  ASSERT_EQ(table.set(ops, vkey, 0),
            static_cast<i64>(mpk::VkeySetOutcome::kMappedIn));
  EXPECT_EQ(ops.flushes, flushes_before + 1);
  ASSERT_EQ(ops.rekeys.size(), rekeys_before + 2);
  const u32 phys = table.find(static_cast<u64>(vkey))->phys;
  EXPECT_EQ(ops.rekeys[rekeys_before].pkey, phys);
  EXPECT_EQ(ops.rekeys[rekeys_before + 1].pkey, phys);
  EXPECT_EQ(table.stats().pte_rekeys, 6u);  // 3 parked + 3 replayed
}

TEST(VkeyTable, ParkKeyIsPermanentlyNoAccessAndNeverPooled) {
  mpk::VkeyTable table;
  MockOps ops(4);
  map_in(table, ops, 0x10000);
  const u32 park = table.park_key();
  ASSERT_NE(park, 0u);
  // The very first PKR write is the park key going no-access.
  ASSERT_FALSE(ops.perm_writes.empty());
  EXPECT_EQ(ops.perm_writes.front().first, park);
  EXPECT_EQ(ops.perm_writes.front().second, 0b11);
  for (const u32 k : table.pool()) EXPECT_NE(k, park);
  for (const auto& [vkey, e] : table.entries()) {
    if (e.state != mpk::VkeyState::kUnmapped) {
      EXPECT_NE(e.phys, park);
    }
  }
}

TEST(VkeyTable, EagerEvictionPicksLeastRecentlyUsed) {
  mpk::VkeyTable table({.mru_slots = 0, .lazy_sync = false});
  MockOps ops(4);  // park + 3 usable
  const u64 a = map_in(table, ops, 0x10000);
  const u64 b = map_in(table, ops, 0x20000);
  const u64 c = map_in(table, ops, 0x30000);
  EXPECT_EQ(table.mapped(), 3u);
  ASSERT_EQ(table.set(ops, a, 0),
            static_cast<i64>(mpk::VkeySetOutcome::kHit));  // a most recent
  const u64 d = map_in(table, ops, 0x40000);  // space exhausted: evict b
  ASSERT_EQ(ops.evicts.size(), 1u);
  EXPECT_EQ(ops.evicts[0].first, b);
  EXPECT_FALSE(ops.evicts[0].second);  // eager, not drained
  EXPECT_EQ(table.find(b)->state, mpk::VkeyState::kUnmapped);
  EXPECT_EQ(table.find(a)->state, mpk::VkeyState::kMapped);
  // The victim's page went back to the park key (the final rekey is d's
  // own group replayed onto its freshly bound physical key).
  ASSERT_GE(ops.rekeys.size(), 2u);
  EXPECT_EQ(ops.rekeys[ops.rekeys.size() - 2].pkey, table.park_key());
  EXPECT_EQ(table.stats().evictions, 1u);
  // Touch order continues to rotate: now c is the stale one.
  ASSERT_GE(table.set(ops, a, 0), 0);
  ASSERT_GE(table.set(ops, d, 0), 0);
  ASSERT_EQ(table.set(ops, b, 0),
            static_cast<i64>(mpk::VkeySetOutcome::kMappedIn));
  ASSERT_EQ(ops.evicts.size(), 2u);
  EXPECT_EQ(ops.evicts[1].first, c);
}

TEST(VkeyTable, MruPinnedVkeysAreSkippedByEviction) {
  // mprotect touches the LRU but not the MRU pin list, so the two orders
  // can diverge: the LRU tail may be the one pinned vkey.
  mpk::VkeyTable table({.mru_slots = 1, .lazy_sync = false});
  MockOps ops(3);  // park + 2 usable
  const u64 a = map_in(table, ops, 0x10000);
  const u64 b = map_in(table, ops, 0x20000);  // MRU = {b}
  ASSERT_EQ(table.mprotect(ops, 0x11000, 4096, 3, a), 0);  // LRU: a, b
  map_in(table, ops, 0x30000);
  // LRU tail is b, but b is pinned — the victim must be a.
  ASSERT_EQ(ops.evicts.size(), 1u);
  EXPECT_EQ(ops.evicts[0].first, a);
  EXPECT_EQ(table.find(b)->state, mpk::VkeyState::kMapped);
}

TEST(VkeyTable, MruHitSkipsBookkeeping) {
  mpk::VkeyTable table({.mru_slots = 2, .lazy_sync = false});
  MockOps ops(8);
  const u64 a = map_in(table, ops, 0x10000);
  ASSERT_EQ(table.set(ops, a, 0),
            static_cast<i64>(mpk::VkeySetOutcome::kMruHit));
  EXPECT_EQ(table.stats().mru_hits, 1u);
  // Push a out of the 2-slot cache; its next set is a plain hit.
  const u64 b = map_in(table, ops, 0x20000);
  const u64 c = map_in(table, ops, 0x30000);
  ASSERT_EQ(table.set(ops, a, 0),
            static_cast<i64>(mpk::VkeySetOutcome::kHit));
  ASSERT_EQ(table.set(ops, b, 0),
            static_cast<i64>(mpk::VkeySetOutcome::kHit));
  ASSERT_EQ(table.set(ops, c, 0),
            static_cast<i64>(mpk::VkeySetOutcome::kHit));
  EXPECT_EQ(table.stats().mru_hits, 1u);
}

TEST(VkeyTable, LazySyncDrainsInBatchesAndRevives) {
  mpk::VkeyTable table({.mru_slots = 0, .lazy_sync = true});
  MockOps ops(8);  // park + 7 usable
  std::vector<u64> vkeys;
  for (u64 i = 0; i < 7; ++i) {
    vkeys.push_back(map_in(table, ops, 0x10000 + i * 0x10000));
  }
  EXPECT_EQ(table.mapped(), 7u);
  EXPECT_EQ(table.stats().evictions, 0u);
  // The 8th map-in exhausts the space: the queue tops up with every mapped
  // vkey (fewer than the batch size), the oldest half (4) is parked under
  // ONE shootdown and the younger 3 keep draining.
  const u64 h = map_in(table, ops, 0x90000);
  EXPECT_EQ(table.stats().evictions, 7u);
  EXPECT_EQ(table.stats().drains, 4u);
  EXPECT_EQ(table.stats().drain_flushes, 1u);
  EXPECT_EQ(table.draining(), 3u);
  ASSERT_EQ(ops.syncs.size(), 1u);
  EXPECT_EQ(ops.syncs[0].second, 4u);  // vkeys in the batch
  for (const auto& [vkey, drained] : ops.evicts) EXPECT_TRUE(drained);
  EXPECT_EQ(table.find(h)->state, mpk::VkeyState::kMapped);
  // A drained victim went through the park re-key...
  EXPECT_EQ(table.find(vkeys[0])->state, mpk::VkeyState::kUnmapped);
  // ...but a queue survivor revives with zero PTE traffic.
  const u64 survivor = vkeys[6];
  ASSERT_EQ(table.find(survivor)->state, mpk::VkeyState::kDraining);
  const size_t rekeys_before = ops.rekeys.size();
  ASSERT_EQ(table.set(ops, survivor, 0),
            static_cast<i64>(mpk::VkeySetOutcome::kRevived));
  EXPECT_EQ(ops.rekeys.size(), rekeys_before);
  EXPECT_EQ(table.stats().revivals, 1u);
  EXPECT_EQ(table.find(survivor)->state, mpk::VkeyState::kMapped);
}

TEST(VkeyTable, FreeReturnsPagesToTheDefaultDomain) {
  mpk::VkeyTable table({.mru_slots = 0, .lazy_sync = false});
  MockOps ops(4);
  const u64 a = map_in(table, ops, 0x10000);
  const u64 pool_before = table.pool().size();
  ASSERT_EQ(table.free_vkey(ops, a), 0);
  EXPECT_EQ(ops.rekeys.back().pkey, 0u);  // pages back to key 0
  EXPECT_EQ(table.pool().size(), pool_before + 1);
  EXPECT_EQ(table.live(), 0u);
  EXPECT_EQ(table.find(a), nullptr);
  EXPECT_EQ(table.free_vkey(ops, a), os::err::kInval);  // ids never reused
  EXPECT_EQ(table.stats().frees, 1u);
}

TEST(VkeyTable, PhysicalKeysStayExclusiveUnderChurn) {
  mpk::VkeyTable table({.mru_slots = 2, .lazy_sync = true});
  MockOps ops(6);  // park + 5 usable
  std::vector<u64> vkeys;
  for (u64 i = 0; i < 24; ++i) {
    vkeys.push_back(map_in(table, ops, 0x10000 + i * 0x10000));
    if (i % 5 == 3) {
      ASSERT_EQ(table.free_vkey(ops, vkeys[i / 2]), 0);
    }
    ASSERT_GE(table.set(ops, vkeys.back(), 1), 0);
  }
  // Exclusivity: no two live mappings share a physical key, none uses the
  // park key (the auditor's kVkeyCoherence invariant, checked table-side).
  std::vector<u32> seen = {table.park_key()};
  for (const auto& [vkey, e] : table.entries()) {
    if (e.state == mpk::VkeyState::kUnmapped) continue;
    for (const u32 k : seen) EXPECT_NE(e.phys, k) << "vkey " << vkey;
    seen.push_back(e.phys);
  }
}

TEST(VkeyTable, SaveLoadRoundTripIsBitIdentical) {
  mpk::VkeyTable table({.mru_slots = 2, .lazy_sync = true});
  MockOps ops(5);
  std::vector<u64> vkeys;
  for (u64 i = 0; i < 9; ++i) {
    vkeys.push_back(map_in(table, ops, 0x10000 + i * 0x10000, 1 + i % 3));
  }
  ASSERT_EQ(table.free_vkey(ops, vkeys[2]), 0);

  ByteWriter w1;
  table.save_state(w1);
  mpk::VkeyTable restored;
  ByteReader r(w1.buffer());
  restored.load_state(r);
  ByteWriter w2;
  restored.save_state(w2);
  ASSERT_EQ(w1.buffer(), w2.buffer());
  EXPECT_EQ(restored.stats(), table.stats());
  EXPECT_EQ(restored.live(), table.live());
  EXPECT_EQ(restored.mapped(), table.mapped());
  EXPECT_EQ(restored.park_key(), table.park_key());

  // Post-restore behaviour matches too: same churn, same serialized state.
  // (Zero-key mocks: the physical space is exhausted, so continued churn
  // exercises only the pool/eviction paths — a fresh allocator would hand
  // out already-owned key numbers.)
  MockOps ops_a(0), ops_b(0);
  for (int round = 0; round < 6; ++round) {
    const u64 vkey = vkeys[(round * 5 + 1) % vkeys.size()];
    if (table.find(vkey) == nullptr) continue;
    EXPECT_EQ(table.set(ops_a, vkey, 0), restored.set(ops_b, vkey, 0));
  }
  ByteWriter wa, wb;
  table.save_state(wa);
  restored.save_state(wb);
  EXPECT_EQ(wa.buffer(), wb.buffer());
}

// ---------------------------------------------------------------------------
// The vpkey syscall ABI, driven from real guest code.
// ---------------------------------------------------------------------------

sim::MachineConfig sealpk_config() {
  sim::MachineConfig config;
  config.hart.flavor = core::IsaFlavor::kSealPk;
  return config;
}

// Body: mmap a page, alloc a vkey, protect the page, open, write 0x77,
// read it back and report, then leave the domain `final_perm`.
template <typename Extra>
isa::Program vkey_guest(u64 final_perm, Extra&& extra) {
  return testutil::make_main_program([&](isa::Program& prog,
                                         isa::Function& f) {
    (void)prog;
    const Label fail = f.new_label(), done = f.new_label();
    f.addi(sp, sp, -32);
    f.li(a0, 0);
    f.li(a1, 4096);
    f.li(a2, static_cast<i64>(os::prot::kRead | os::prot::kWrite));
    rt::syscall(f, os::sys::kMmap);
    f.blez(a0, fail);
    f.sd(a0, 0, sp);  // page
    f.li(a0, 0);
    f.li(a1, static_cast<i64>(os::pkeyperm::kNone));
    rt::syscall(f, os::sys::kVpkeyAlloc);
    f.blez(a0, fail);
    f.sd(a0, 8, sp);  // vkey
    f.mv(a3, a0);
    f.ld(a0, 0, sp);
    f.li(a1, 4096);
    f.li(a2, static_cast<i64>(os::prot::kRead | os::prot::kWrite));
    rt::syscall(f, os::sys::kVpkeyMprotect);
    f.blt(a0, 0, fail);
    f.ld(a0, 8, sp);
    f.li(a1, static_cast<i64>(os::pkeyperm::kRw));
    rt::syscall(f, os::sys::kVpkeySet);
    f.blt(a0, 0, fail);
    f.ld(t0, 0, sp);
    f.li(t1, 0x77);
    f.sd(t1, 0, t0);
    f.ld(a0, 0, t0);
    rt::syscall(f, os::sys::kReport);
    f.ld(a0, 8, sp);
    f.li(a1, static_cast<i64>(final_perm));
    rt::syscall(f, os::sys::kVpkeySet);
    f.blt(a0, 0, fail);
    extra(f);
    f.li(a0, 0);
    f.addi(sp, sp, 32);
    f.j(done);
    f.bind(fail);
    f.li(a0, 9);
    f.addi(sp, sp, 32);
    f.bind(done);
  });
}

TEST(VpkeySyscalls, AllocProtectSetRoundTrip) {
  const auto run = testutil::run_guest(
      vkey_guest(os::pkeyperm::kNone, [](isa::Function&) {}),
      sealpk_config());
  ASSERT_TRUE(run.outcome.completed);
  EXPECT_TRUE(run.faults.empty());
  EXPECT_EQ(run.exit_code, 0);
  ASSERT_EQ(run.reports.size(), 1u);
  EXPECT_EQ(run.reports[0], 0x77u);
}

TEST(VpkeySyscalls, ClosedDomainStoreFaults) {
  // After vpkey_set(kNone) the store must raise an augmented pkey fault —
  // the virtual domain really is backed by a live physical key.
  const auto run = testutil::run_guest(
      vkey_guest(os::pkeyperm::kNone,
                 [](isa::Function& f) {
                   f.ld(t0, 0, sp);
                   f.li(t1, 0x88);
                   f.sd(t1, 0, t0);  // domain closed: faults
                 }),
      sealpk_config());
  ASSERT_TRUE(run.outcome.completed);
  ASSERT_FALSE(run.faults.empty());
  EXPECT_EQ(run.faults[0].cause, core::TrapCause::kStorePageFault);
  EXPECT_TRUE(run.faults[0].pkey_fault);
  EXPECT_NE(run.exit_code, 0);
}

TEST(VpkeySyscalls, BadArgumentsReturnEinval) {
  const auto run = testutil::run_guest(
      testutil::make_main_program([](isa::Program&, isa::Function& f) {
        // vpkey_set on a never-allocated vkey.
        f.li(a0, static_cast<i64>(mpk::kVkeyBase + 123));
        f.li(a1, 0);
        rt::syscall(f, os::sys::kVpkeySet);
        rt::syscall(f, os::sys::kReport);
        // vpkey_alloc with unknown flags.
        f.li(a0, 7);
        f.li(a1, 0);
        rt::syscall(f, os::sys::kVpkeyAlloc);
        rt::syscall(f, os::sys::kReport);
        f.li(a0, 0);
      }),
      sealpk_config());
  ASSERT_TRUE(run.outcome.completed);
  EXPECT_EQ(run.exit_code, 0);
  ASSERT_EQ(run.reports.size(), 2u);
  EXPECT_EQ(run.reports[0], static_cast<u64>(os::err::kInval));
  EXPECT_EQ(run.reports[1], static_cast<u64>(os::err::kInval));
}

TEST(VpkeySyscalls, EnosysOnTheMpkFlavor) {
  // The vpkey ABI is SealPK-only; the 16-key Intel-MPK compat flavour must
  // refuse it the way a kernel without the extension would.
  sim::MachineConfig config;
  config.hart.flavor = core::IsaFlavor::kIntelMpkCompat;
  const auto run = testutil::run_guest(
      testutil::make_main_program([](isa::Program&, isa::Function& f) {
        f.li(a0, 0);
        f.li(a1, 0);
        rt::syscall(f, os::sys::kVpkeyAlloc);
        rt::syscall(f, os::sys::kReport);
        f.li(a0, 0);
      }),
      config);
  ASSERT_TRUE(run.outcome.completed);
  EXPECT_EQ(run.exit_code, 0);
  ASSERT_EQ(run.reports.size(), 1u);
  EXPECT_EQ(run.reports[0], static_cast<u64>(os::err::kNoSys));
}

// ---------------------------------------------------------------------------
// The session-server workload and its driver.
// ---------------------------------------------------------------------------

TEST(SessionServer, SmallScaleMatchesGolden) {
  mpk::SessionConfig cfg;
  cfg.sessions = 64;
  cfg.ops = 128;
  const mpk::SessionResult r = mpk::run_session_server(cfg);
  EXPECT_TRUE(r.ok()) << mpk::session_record(cfg, r);
  EXPECT_EQ(r.live, 64u);
  EXPECT_EQ(r.checksum, r.expected);
  EXPECT_EQ(r.vstats.allocs, r.connects);
  EXPECT_EQ(r.vstats.frees, r.reconnects);
  EXPECT_EQ(r.connects, 64 + r.reconnects);
  EXPECT_EQ(r.reconnects + r.touches, cfg.ops);
}

TEST(SessionServer, RawAndVirtualizedChecksumsAgree) {
  // Virtualization transparency: the same churn schedule must produce the
  // same checksum on physical pkeys, eager vkeys and lazy vkeys.
  mpk::SessionConfig virt;
  virt.sessions = 96;
  virt.ops = 192;
  mpk::SessionConfig raw = virt;
  raw.raw = true;
  mpk::SessionConfig lazy = virt;
  lazy.lazy_sync = true;
  const mpk::SessionResult rv = mpk::run_session_server(virt);
  const mpk::SessionResult rr = mpk::run_session_server(raw);
  const mpk::SessionResult rl = mpk::run_session_server(lazy);
  ASSERT_TRUE(rv.ok() && rr.ok() && rl.ok());
  EXPECT_EQ(rv.checksum, rr.checksum);
  EXPECT_EQ(rv.checksum, rl.checksum);
}

TEST(SessionServer, SurvivesKeySpaceExhaustion) {
  // More live domains than the 1023 usable physical keys: the LRU layer
  // must churn mappings (evictions > 0) while every session keeps working.
  mpk::SessionConfig cfg;
  cfg.sessions = 1536;
  cfg.ops = 1024;
  const mpk::SessionResult r = mpk::run_session_server(cfg);
  ASSERT_TRUE(r.ok()) << mpk::session_record(cfg, r);
  EXPECT_EQ(r.live, 1536u);
  EXPECT_LE(r.mapped, 1022u);  // 1023 usable minus the park key
  EXPECT_GT(r.vstats.evictions, 0u);
  EXPECT_GT(r.vstats.pte_rekeys, 0u);
}

TEST(SessionServer, CanonicalRecordsAreDeterministic) {
  mpk::SessionConfig cfg;
  cfg.sessions = 64;
  cfg.ops = 128;
  const mpk::SessionResult a = mpk::run_session_server(cfg);
  const mpk::SessionResult b = mpk::run_session_server(cfg);
  EXPECT_EQ(mpk::session_record(cfg, a), mpk::session_record(cfg, b));
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.cycles, b.cycles);
}

TEST(SessionServer, SweepIsThreadCountIndependent) {
  const std::vector<u64> scales = {48, 96};
  const auto parallel = mpk::run_churn_sweep(scales, wl::kWorkloadSeed, 4);
  const auto serial = mpk::run_churn_sweep(scales, wl::kWorkloadSeed, 1);
  EXPECT_EQ(mpk::sweep_records(parallel), mpk::sweep_records(serial));
  EXPECT_EQ(mpk::churn_json(parallel), mpk::churn_json(serial));
  // Each scale contributes eager + lazy + raw (both fit under the cap).
  EXPECT_EQ(parallel.size(), 6u);
}

// ---------------------------------------------------------------------------
// Snapshots: the v2 VKEY section round-trips bit-identically mid-run.
// ---------------------------------------------------------------------------

TEST(VkeySnapshot, MidRunRoundTripIsBitIdenticalAndResumes) {
  const wl::SessionShape shape{.sessions = 256, .ops = 512};
  sim::Machine machine(sealpk_config());
  const int pid = machine.load(wl::build_session_prog(shape).link());
  ASSERT_GE(pid, 0);
  machine.run(30'000);  // mid-run: live vkey table with mapped entries
  ASSERT_FALSE(machine.kernel().all_exited());
  ASSERT_NE(machine.kernel().process(pid).vkeys, nullptr);

  const std::vector<u8> a = snapshot::save(machine);
  const snapshot::Info info = snapshot::info(a);
  EXPECT_EQ(info.version, snapshot::kFormatVersion);
  bool saw_vkey = false;
  for (const auto& s : info.sections) saw_vkey |= s.name == "VKEY";
  EXPECT_TRUE(saw_vkey);

  sim::Machine restored(snapshot::config_from(a));
  snapshot::restore(restored, a);
  EXPECT_EQ(snapshot::save(restored), a);

  // Both halves finish with the golden checksum.
  ASSERT_TRUE(machine.run(400'000'000).completed);
  ASSERT_TRUE(restored.run(400'000'000).completed);
  EXPECT_EQ(machine.exit_code(pid), 0);
  EXPECT_EQ(restored.exit_code(pid), 0);
  const u64 golden = wl::golden_session_sum(shape);
  ASSERT_EQ(machine.kernel().reports().size(), 1u);
  EXPECT_EQ(machine.kernel().reports()[0], golden);
  EXPECT_EQ(restored.kernel().reports(), machine.kernel().reports());
}

TEST(VkeySnapshot, PolicyKnobsTravelInTheConfigTail) {
  const wl::SessionShape shape{.sessions = 16, .ops = 16};
  sim::MachineConfig config = sealpk_config();
  config.kernel.vkey_mru_slots = 3;
  config.kernel.vkey_lazy_sync = true;
  sim::Machine machine(config);
  machine.load(wl::build_session_prog(shape).link());
  machine.run(20'000);
  const std::vector<u8> blob = snapshot::save(machine);
  const sim::MachineConfig out = snapshot::config_from(blob);
  EXPECT_EQ(out.kernel.vkey_mru_slots, 3u);
  EXPECT_TRUE(out.kernel.vkey_lazy_sync);
}

// ---------------------------------------------------------------------------
// Corruption: the injector's vkey fault kind, auditor detection and repair.
// ---------------------------------------------------------------------------

TEST(VkeyFault, PlantedCorruptionIsDetectedRepairedAndTheGuestFinishes) {
  const wl::SessionShape shape{.sessions = 256, .ops = 512};
  sim::Machine machine(sealpk_config());
  const int pid = machine.load(wl::build_session_prog(shape).link());
  ASSERT_GE(pid, 0);
  machine.run(25'000);
  ASSERT_FALSE(machine.kernel().all_exited());
  mpk::VkeyTable* table = machine.kernel().process(pid).vkeys.get();
  ASSERT_NE(table, nullptr);

  // Plant: point one mapped vkey at the wrong physical key.
  u64 victim = 0;
  u32 good_phys = 0;
  for (const auto& [vkey, e] : table->entries()) {
    if (e.state == mpk::VkeyState::kMapped && !e.groups.empty()) {
      victim = vkey;
      good_phys = e.phys;
      break;
    }
  }
  ASSERT_NE(victim, 0u);
  table->force_phys(victim, good_phys ^ 0x155);

  const auto report = machine.auditor().audit();
  EXPECT_GE(report.count(fault::AuditCheck::kVkeyCoherence), 1u);
  machine.auditor().audit_and_recover();
  EXPECT_TRUE(machine.auditor().audit().clean());
  EXPECT_GE(machine.kernel().stats().vkey_repairs, 1u);
  EXPECT_EQ(table->find(victim)->phys, good_phys);  // PTEs are ground truth

  ASSERT_TRUE(machine.run(400'000'000).completed);
  EXPECT_EQ(machine.exit_code(pid), 0);
  ASSERT_EQ(machine.kernel().reports().size(), 1u);
  EXPECT_EQ(machine.kernel().reports()[0], wl::golden_session_sum(shape));
}

TEST(VkeyFault, InjectedCorruptionIsResolvedByTheAuditCadence) {
  const wl::SessionShape shape{.sessions = 96, .ops = 256};
  sim::MachineConfig config = sealpk_config();
  config.fault_plan.enabled = true;
  config.fault_plan.seed = 11;
  config.fault_plan.rate = 2e-4;
  config.fault_plan.kinds = fault::kVkeyFaultKinds;
  config.audit_interval = 5'000;
  sim::Machine machine(config);
  const int pid = machine.load(wl::build_session_prog(shape).link());
  ASSERT_TRUE(machine.run(400'000'000).completed);
  fault::FaultInjector* injector = machine.injector();
  ASSERT_NE(injector, nullptr);
  EXPECT_GE(injector->total_injected(), 1u);
  EXPECT_EQ(injector->outstanding(), 0u);
  EXPECT_GE(machine.kernel().stats().vkey_repairs, 1u);
  // Repair restored exact table state, so the run still checks out.
  EXPECT_EQ(machine.exit_code(pid), 0);
  ASSERT_EQ(machine.kernel().reports().size(), 1u);
  EXPECT_EQ(machine.kernel().reports()[0], wl::golden_session_sum(shape));
}

TEST(SessionServer, TraceCapturesEvictionAndDrainEvents) {
  mpk::SessionConfig cfg;
  cfg.sessions = 1536;  // past the key budget so eviction actually runs
  cfg.ops = 1024;
  cfg.lazy_sync = true;
  cfg.trace = true;
  const mpk::SessionResult traced = mpk::run_session_server(cfg);
  ASSERT_TRUE(traced.ok()) << mpk::session_record(cfg, traced);
  u64 maps = 0, evicts = 0, syncs = 0;
  for (const obs::Event& e : traced.trace.events) {
    if (e.kind == obs::EventKind::kVkeyMap) ++maps;
    if (e.kind == obs::EventKind::kVkeyEvict) ++evicts;
    if (e.kind == obs::EventKind::kVkeySync) ++syncs;
  }
  EXPECT_GT(maps, 0u);
  EXPECT_GT(evicts, 0u);
  EXPECT_GT(syncs, 0u);

  // The span layer folds those events into evict/drain spans.
  const obs::SpanSet set = obs::build_spans(traced.trace);
  u64 evict_spans = 0, drain_spans = 0;
  for (const obs::Span& s : set.spans) {
    if (s.kind == obs::SpanKind::kVkeyEvict) ++evict_spans;
    if (s.kind == obs::SpanKind::kVkeyDrain) ++drain_spans;
  }
  EXPECT_EQ(evict_spans, evicts);
  EXPECT_GT(drain_spans, 0u);

  // Tracing never perturbs the run: the canonical record (which does not
  // include trace state) must be byte-identical with tracing off.
  mpk::SessionConfig off = cfg;
  off.trace = false;
  const mpk::SessionResult bare = mpk::run_session_server(off);
  EXPECT_EQ(mpk::session_record(off, bare), mpk::session_record(cfg, traced));
  EXPECT_TRUE(bare.trace.events.empty());
}

}  // namespace
}  // namespace sealpk
