// Fleet batch-execution engine tests: the determinism contract (per-job
// canonical records byte-identical for any thread count), image-cache
// sharing (one build per distinct workload x variant x scale), per-job
// timeout / crash containment (a failing job harms only itself), and
// aggregation (fleet suite geomeans == the serial Figure-5 math).
#include <gtest/gtest.h>

#include <atomic>

#include "fleet/engine.h"
#include "fleet/report.h"
#include "sim/fig5.h"

namespace sealpk {
namespace {

const wl::Workload& named(const char* name, wl::Suite suite) {
  const wl::Workload* w = wl::find_workload(suite, name);
  SEALPK_CHECK_MSG(w != nullptr, "unknown workload " << name);
  return *w;
}

fleet::JobSpec run_spec(u32 id, const wl::Workload& w,
                        passes::ShadowStackKind ss, u64 scale = 1) {
  fleet::JobSpec spec;
  spec.id = id;
  spec.workload = &w;
  spec.ss = ss;
  spec.scale = scale;
  return spec;
}

std::vector<std::string> records_of(const std::vector<fleet::JobResult>& rs) {
  std::vector<std::string> out;
  out.reserve(rs.size());
  for (const auto& r : rs) out.push_back(fleet::canonical_record(r));
  return out;
}

// --- determinism ------------------------------------------------------------

TEST(Fleet, RunRecordsByteIdenticalAcrossThreadCounts) {
  const char* names[] = {"qsort", "sha", "bitcount", "dijkstra", "FFT"};
  const passes::ShadowStackKind kinds[] = {
      passes::ShadowStackKind::kNone, passes::ShadowStackKind::kSealPkWr,
      passes::ShadowStackKind::kMprotect};
  std::vector<fleet::JobSpec> specs;
  for (const char* name : names) {
    for (const auto kind : kinds) {
      specs.push_back(run_spec(static_cast<u32>(specs.size()),
                               named(name, wl::Suite::kMiBench), kind));
    }
  }
  fleet::ImageCache cache1, cache4;
  fleet::FleetOptions serial, pooled;
  serial.threads = 1;
  pooled.threads = 4;
  const auto a = records_of(fleet::run_jobs(specs, cache1, serial));
  const auto b = records_of(fleet::run_jobs(specs, cache4, pooled));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "record " << i << " depends on thread count";
  }
  for (const std::string& rec : a) {
    EXPECT_NE(rec.find("\"ok\": true"), std::string::npos) << rec;
  }
}

TEST(Fleet, TracedRecordsAndBlobsByteIdenticalAcrossThreadCounts) {
  const char* names[] = {"qsort", "sha", "bitcount"};
  std::vector<fleet::JobSpec> specs;
  for (const char* name : names) {
    fleet::JobSpec spec = run_spec(static_cast<u32>(specs.size()),
                                   named(name, wl::Suite::kMiBench),
                                   passes::ShadowStackKind::kSealPkWr);
    spec.perm_seal = true;
    spec.config.trace.enabled = true;
    spec.config.trace.sample_interval = 512;
    spec.keep_trace_blob = true;
    specs.push_back(spec);
  }
  fleet::ImageCache cache1, cache4;
  fleet::FleetOptions serial, pooled;
  serial.threads = 1;
  pooled.threads = 4;
  const auto a = fleet::run_jobs(specs, cache1, serial);
  const auto b = fleet::run_jobs(specs, cache4, pooled);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(fleet::canonical_record(a[i]), fleet::canonical_record(b[i]));
    ASSERT_TRUE(a[i].has_trace);
    EXPECT_GT(a[i].trace.wrpkr, 0u);
    EXPECT_GT(a[i].trace.samples, 0u);
    ASSERT_FALSE(a[i].trace_blob.empty());
    EXPECT_EQ(a[i].trace_blob, b[i].trace_blob)
        << "trace blob " << i << " depends on thread count";
    // The trace block is part of the canonical record for traced jobs.
    EXPECT_NE(fleet::canonical_record(a[i]).find("\"trace\""),
              std::string::npos);
  }
}

TEST(Fleet, ChaosDiffRecordsByteIdenticalAcrossThreadCounts) {
  const char* names[] = {"qsort", "sha", "bitcount", "stringsearch"};
  std::vector<fleet::JobSpec> specs;
  for (const char* name : names) {
    fleet::JobSpec spec = run_spec(static_cast<u32>(specs.size()),
                                   named(name, wl::Suite::kMiBench),
                                   passes::ShadowStackKind::kNone);
    spec.kind = fleet::JobKind::kChaosDiff;
    spec.budget = 400'000'000;
    spec.config.fault_plan.enabled = true;
    spec.config.fault_plan.seed = 7;
    spec.config.fault_plan.rate = 1e-4;
    specs.push_back(std::move(spec));
  }
  fleet::ImageCache cache1, cache4;
  fleet::FleetOptions serial, pooled;
  serial.threads = 1;
  pooled.threads = 4;
  const auto a = records_of(fleet::run_jobs(specs, cache1, serial));
  const auto b = records_of(fleet::run_jobs(specs, cache4, pooled));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "chaos record " << i
                          << " depends on thread count";
  }
}

// --- image cache ------------------------------------------------------------

TEST(Fleet, ImageCacheBuildsOncePerDistinctKey) {
  const wl::Workload& qsort = named("qsort", wl::Suite::kMiBench);
  const wl::Workload& sha = named("sha", wl::Suite::kMiBench);
  // 8 jobs over 3 distinct (workload, variant, scale) keys.
  std::vector<fleet::JobSpec> specs;
  for (int dup = 0; dup < 3; ++dup) {
    specs.push_back(run_spec(static_cast<u32>(specs.size()), qsort,
                             passes::ShadowStackKind::kNone));
  }
  for (int dup = 0; dup < 3; ++dup) {
    specs.push_back(run_spec(static_cast<u32>(specs.size()), qsort,
                             passes::ShadowStackKind::kSealPkWr));
  }
  for (int dup = 0; dup < 2; ++dup) {
    specs.push_back(run_spec(static_cast<u32>(specs.size()), sha,
                             passes::ShadowStackKind::kNone));
  }
  fleet::ImageCache cache;
  fleet::FleetOptions opts;
  opts.threads = 4;
  const auto results = fleet::run_jobs(specs, cache, opts);
  EXPECT_EQ(cache.builds(), 3u);  // == unique images, not jobs
  // Duplicate jobs share the image and must agree bit-for-bit.
  for (int i : {1, 2}) {
    EXPECT_EQ(results[0].cycles, results[i].cycles);
    EXPECT_EQ(results[0].instructions, results[i].instructions);
    EXPECT_EQ(results[0].reports, results[i].reports);
  }
  EXPECT_EQ(results[3].cycles, results[4].cycles);
  EXPECT_EQ(results[6].cycles, results[7].cycles);
}

TEST(Fleet, ImageCacheSharedByChaosDiffPair) {
  // One differential job = two machines (clean + chaos) but one image.
  fleet::JobSpec spec = run_spec(0, named("qsort", wl::Suite::kMiBench),
                                 passes::ShadowStackKind::kNone);
  spec.kind = fleet::JobKind::kChaosDiff;
  spec.config.fault_plan.enabled = true;
  spec.config.fault_plan.seed = 3;
  fleet::ImageCache cache;
  const auto results = fleet::run_jobs({spec}, cache, {});
  EXPECT_EQ(cache.builds(), 1u);
  EXPECT_TRUE(results[0].ok) << results[0].verdict;
}

// --- timeout & crash containment -------------------------------------------

TEST(Fleet, InstructionBudgetTimeoutIsContained) {
  const wl::Workload& qsort = named("qsort", wl::Suite::kMiBench);
  const wl::Workload& sha = named("sha", wl::Suite::kMiBench);
  const wl::Workload& bit = named("bitcount", wl::Suite::kMiBench);
  std::vector<fleet::JobSpec> specs;
  specs.push_back(run_spec(0, qsort, passes::ShadowStackKind::kNone));
  fleet::JobSpec strangled = run_spec(1, sha, passes::ShadowStackKind::kNone);
  strangled.budget = 5'000;  // nowhere near enough to finish
  specs.push_back(std::move(strangled));
  specs.push_back(run_spec(2, bit, passes::ShadowStackKind::kNone));

  fleet::ImageCache cache;
  fleet::FleetOptions opts;
  opts.threads = 3;
  const auto results = fleet::run_jobs(specs, cache, opts);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok) << results[0].verdict;
  EXPECT_TRUE(results[2].ok) << results[2].verdict;
  EXPECT_FALSE(results[1].ok);
  EXPECT_TRUE(results[1].ran);
  EXPECT_FALSE(results[1].completed);
  EXPECT_EQ(results[1].verdict, "timeout: instruction budget exhausted");
  // The budget bounded the work actually done.
  EXPECT_LE(results[1].instructions, 6'000u);
}

TEST(Fleet, MachineCheckKillOnlyFailsItsOwnJob) {
  // Unrecoverable PKR corruption (no trusted shadow to scrub from) kills
  // the victim process with the machine-check exit code; sibling jobs in
  // the same pool must be untouched.
  const wl::Workload& qsort = named("qsort", wl::Suite::kMiBench);
  const wl::Workload& sha = named("sha", wl::Suite::kMiBench);
  std::vector<fleet::JobSpec> specs;
  specs.push_back(run_spec(0, qsort, passes::ShadowStackKind::kNone));
  fleet::JobSpec doomed = run_spec(1, sha, passes::ShadowStackKind::kNone);
  doomed.config.kernel.save_pkr_on_switch = false;
  doomed.config.fault_plan.enabled = true;
  doomed.config.fault_plan.seed = 11;
  doomed.config.fault_plan.rate = 1e-3;
  doomed.config.fault_plan.kinds = fault::kind_bit(fault::FaultKind::kPkrBitFlip);
  specs.push_back(std::move(doomed));
  specs.push_back(run_spec(2, qsort, passes::ShadowStackKind::kSealPkWr));

  fleet::ImageCache cache;
  fleet::FleetOptions opts;
  opts.threads = 3;
  const auto results = fleet::run_jobs(specs, cache, opts);
  EXPECT_TRUE(results[0].ok) << results[0].verdict;
  EXPECT_TRUE(results[2].ok) << results[2].verdict;
  EXPECT_FALSE(results[1].ok);
  EXPECT_EQ(results[1].exit_code, os::kExitMachineCheck);
  EXPECT_GT(results[1].injected, 0u);
}

// --- aggregation ------------------------------------------------------------

TEST(Fleet, CellResultsMatchTheSerialReference) {
  // A fleet job must reproduce sim::run_cell (the pre-fleet serial driver)
  // bit-for-bit: same cycles, instructions, calls and resident set.
  const wl::Workload& qsort = named("qsort", wl::Suite::kMiBench);
  for (const auto kind : {passes::ShadowStackKind::kNone,
                          passes::ShadowStackKind::kSealPkRdWr,
                          passes::ShadowStackKind::kMprotect}) {
    const sim::VariantResult serial = sim::run_cell(qsort, kind, 1);
    fleet::ImageCache cache;
    const auto results =
        fleet::run_jobs({run_spec(0, qsort, kind)}, cache, {});
    ASSERT_TRUE(results[0].ok) << results[0].verdict;
    EXPECT_EQ(results[0].cycles, serial.cycles);
    EXPECT_EQ(results[0].instructions, serial.instructions);
    EXPECT_EQ(results[0].calls, serial.calls);
    EXPECT_EQ(results[0].pages_mapped, serial.pages_mapped);
  }
}

TEST(Fleet, SuiteGeomeansMatchTheFig5Math) {
  // MiBench x (baseline + the five Figure-5 variants) through the pool,
  // then: fleet::gmean_overhead == sim::suite_gmean_overhead on rows
  // assembled from the very same results.
  std::vector<fleet::JobSpec> specs;
  for (const auto& w : wl::all_workloads()) {
    if (w.suite != wl::Suite::kMiBench) continue;
    specs.push_back(
        run_spec(static_cast<u32>(specs.size()), w,
                 passes::ShadowStackKind::kNone));
    for (const auto kind : sim::kFig5Variants) {
      specs.push_back(run_spec(static_cast<u32>(specs.size()), w, kind));
    }
  }
  fleet::ImageCache cache;
  fleet::FleetOptions opts;
  opts.threads = 4;
  const auto results = fleet::run_jobs(specs, cache, opts);

  std::vector<sim::Fig5Row> rows;
  size_t idx = 0;
  for (const auto& w : wl::all_workloads()) {
    if (w.suite != wl::Suite::kMiBench) continue;
    sim::Fig5Row row;
    row.workload = &w;
    for (size_t v = 0; v <= sim::kNumFig5Variants; ++v, ++idx) {
      const fleet::JobResult& r = results[idx];
      ASSERT_TRUE(r.ok) << r.label << ": " << r.verdict;
      sim::VariantResult cell{r.ss, r.cycles, r.instructions, r.calls,
                              r.pages_mapped};
      if (v == 0) {
        row.baseline = cell;
        row.baseline_cycles = cell.cycles;
      } else {
        row.variants.push_back(cell);
      }
    }
    rows.push_back(std::move(row));
  }

  for (size_t v = 0; v < sim::kNumFig5Variants; ++v) {
    const double from_fig5 =
        sim::suite_gmean_overhead(rows, wl::Suite::kMiBench, v);
    const double from_fleet = fleet::gmean_overhead(
        results, wl::Suite::kMiBench, sim::kFig5Variants[v]);
    EXPECT_DOUBLE_EQ(from_fig5, from_fleet)
        << passes::shadow_stack_kind_name(sim::kFig5Variants[v]);
  }
  // No baseline pair for a suite that was not run.
  EXPECT_LT(fleet::gmean_overhead(results, wl::Suite::kSpec2000,
                                  passes::ShadowStackKind::kMprotect),
            0.0);
}

// --- reports ----------------------------------------------------------------

TEST(Fleet, CanonicalReportsDiffCleanAcrossThreadCounts) {
  std::vector<fleet::JobSpec> specs;
  specs.push_back(run_spec(0, named("qsort", wl::Suite::kMiBench),
                           passes::ShadowStackKind::kNone));
  specs.push_back(run_spec(1, named("sha", wl::Suite::kMiBench),
                           passes::ShadowStackKind::kFunc));
  fleet::ImageCache cache1, cache2;
  fleet::FleetOptions serial, pooled;
  serial.threads = 1;
  pooled.threads = 2;
  const auto a = fleet::run_jobs(specs, cache1, serial);
  const auto b = fleet::run_jobs(specs, cache2, pooled);

  fleet::ReportOptions ra, rb;
  ra.threads = 1;
  rb.threads = 2;
  rb.elapsed_ms = 123.0;  // timing differs; canonical records must not
  std::ostringstream ta, tb;
  fleet::write_report(ta, a, ra);
  fleet::write_report(tb, b, rb);
  std::ostringstream log;
  EXPECT_EQ(fleet::diff_reports(ta.str(), tb.str(), log), 0u) << log.str();

  // A doctored record is caught and reported. Tamper inside the "records"
  // array — totals/geomeans are derived and not part of the contract.
  std::string tampered = tb.str();
  const size_t records = tampered.find("\"records\": [");
  ASSERT_NE(records, std::string::npos);
  const size_t pos = tampered.find("\"cycles\": ", records);
  ASSERT_NE(pos, std::string::npos);
  tampered.insert(pos + 10, 1, '9');
  std::ostringstream log2;
  EXPECT_GT(fleet::diff_reports(ta.str(), tampered, log2), 0u);
}

TEST(Fleet, DiffJsonReportCarriesTheVerdictNotJustTheLog) {
  // `sealpk-fleet diff --json` must exit nonzero on divergence exactly like
  // the plain mode; the JSON body is the machine-readable mirror of that
  // verdict. Pin the library layer both CLI paths are built on: the same
  // `diverging` count feeds the exit code and the report, so the two can
  // never disagree.
  std::vector<fleet::JobSpec> specs;
  specs.push_back(run_spec(0, named("qsort", wl::Suite::kMiBench),
                           passes::ShadowStackKind::kNone));
  fleet::ImageCache cache;
  fleet::FleetOptions opts;
  const auto results = fleet::run_jobs(specs, cache, opts);
  fleet::ReportOptions ropts;
  std::ostringstream ta;
  fleet::write_report(ta, results, ropts);

  // Identical reports: zero diverging, and the JSON says identical=true.
  std::ostringstream log0, same;
  const size_t none = fleet::diff_reports(ta.str(), ta.str(), log0);
  EXPECT_EQ(none, 0u);
  fleet::write_diff_report(same, "a.json", "b.json", none, log0.str());
  EXPECT_NE(same.str().find("\"diverging\": 0"), std::string::npos);
  EXPECT_NE(same.str().find("\"identical\": true"), std::string::npos);

  // Tampered report: nonzero diverging (the CLI exit code), and the JSON
  // carries the same count plus identical=false.
  std::string tampered = ta.str();
  const size_t records = tampered.find("\"records\": [");
  ASSERT_NE(records, std::string::npos);
  const size_t pos = tampered.find("\"cycles\": ", records);
  ASSERT_NE(pos, std::string::npos);
  tampered.insert(pos + 10, 1, '9');
  std::ostringstream log1, diff;
  const size_t diverging = fleet::diff_reports(ta.str(), tampered, log1);
  ASSERT_GT(diverging, 0u);
  fleet::write_diff_report(diff, "a.json", "b.json", diverging, log1.str());
  EXPECT_NE(diff.str().find("\"identical\": false"), std::string::npos);
  EXPECT_NE(diff.str().find("\"diverging\": " + std::to_string(diverging)),
            std::string::npos);
}

TEST(Fleet, AggregateSumsAcrossJobs) {
  std::vector<fleet::JobSpec> specs;
  specs.push_back(run_spec(0, named("qsort", wl::Suite::kMiBench),
                           passes::ShadowStackKind::kNone));
  specs.push_back(run_spec(1, named("sha", wl::Suite::kMiBench),
                           passes::ShadowStackKind::kNone));
  fleet::ImageCache cache;
  const auto results = fleet::run_jobs(specs, cache, {});
  const fleet::Aggregate agg = fleet::aggregate(results);
  EXPECT_EQ(agg.jobs, 2u);
  EXPECT_EQ(agg.ok, 2u);
  EXPECT_EQ(agg.failures, 0u);
  EXPECT_EQ(agg.instructions,
            results[0].instructions + results[1].instructions);
  EXPECT_EQ(agg.cycles, results[0].cycles + results[1].cycles);
}

TEST(Fleet, LoadRefusalIsAFailedJobNotACrash) {
  // With no trusted gates, the SealPK shadow-stack runtime's WRPKR sites
  // are error findings and kEnforce refuses the image at the loader gate.
  // The fleet must record that as a cleanly-failed job, not a host crash,
  // and a sibling job sharing the pool stays healthy.
  fleet::JobSpec refused = run_spec(0, named("qsort", wl::Suite::kMiBench),
                                    passes::ShadowStackKind::kSealPkWr);
  refused.config.verify_policy = analysis::LoadVerifyPolicy::kEnforce;
  refused.config.verify_options.trusted_gates.clear();
  fleet::JobSpec healthy = run_spec(1, named("sha", wl::Suite::kMiBench),
                                    passes::ShadowStackKind::kNone);
  fleet::ImageCache cache;
  fleet::FleetOptions opts;
  opts.threads = 2;
  const auto results = fleet::run_jobs({refused, healthy}, cache, opts);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_FALSE(results[0].ran);
  EXPECT_EQ(results[0].verdict, "load refused");
  EXPECT_EQ(results[0].exit_code, sim::Machine::kNoExitCode);
  EXPECT_TRUE(results[1].ok) << results[1].verdict;
}

}  // namespace
}  // namespace sealpk
