// Sv48 support (paper footnote 1): the Sv48 PTE carries the same 10
// reserved bits, so SealPK works unchanged with a 4-level walk.
#include <gtest/gtest.h>

#include "guest_test_util.h"
#include "mem/walker.h"

namespace sealpk {
namespace {

using isa::Function;
using isa::Program;
using namespace isa;
using testutil::make_main_program;

sim::MachineConfig sv48_machine() {
  sim::MachineConfig cfg;
  cfg.kernel.sv48 = true;
  return cfg;
}

TEST(Sv48, WalkerHandlesFourLevels) {
  mem::PhysMem mem(32 << 20);
  // Build a 4-level mapping by hand for vaddr with a non-zero level-3 slice.
  const u64 vaddr = (u64{5} << 39) | 0x1234'5000;
  u64 table = 1, next_table = 2;
  for (int level = 3; level >= 1; --level) {
    const u64 slot = (table << mem::kPageShift) +
                     mem::svxx::vpn_slice(vaddr, level) * 8;
    mem.write_u64(slot, mem::pte::make(next_table, mem::pte::kV));
    table = next_table++;
  }
  const u64 slot =
      (table << mem::kPageShift) + mem::svxx::vpn_slice(vaddr, 0) * 8;
  mem.write_u64(slot,
                mem::pte::make(0x123, mem::pte::kV | mem::pte::kR |
                                          mem::pte::kU,
                               999));
  const auto r =
      mem::walk(mem, 1, vaddr, mem::Access::kLoad, false, 4);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.ppn, 0x123u);
  EXPECT_EQ(mem::pte::pkey_of(r.pte), 999u);
  EXPECT_EQ(r.accesses, 4u);
  // The same address is non-canonical under Sv39 and must fault there.
  EXPECT_FALSE(mem::walk(mem, 1, vaddr, mem::Access::kLoad, false, 3).ok);
}

TEST(Sv48, CanonicalForm) {
  EXPECT_TRUE(mem::sv48::canonical((u64{1} << 46)));
  EXPECT_FALSE(mem::sv48::canonical(u64{1} << 47));
  EXPECT_TRUE(mem::sv48::canonical(~u64{0}));
  EXPECT_FALSE(mem::sv39::canonical(u64{1} << 46));  // Sv39 rejects it
}

TEST(Sv48, GuestProgramsRunUnchanged) {
  auto prog = make_main_program([](Program&, Function& f) {
    f.li(a0, 0);
    f.li(a1, 8192);
    f.li(a2, 3);
    rt::syscall(f, os::sys::kMmap);
    f.mv(s0, a0);
    f.li(t0, 0xCAFE);
    f.sd(t0, 0, s0);
    f.ld(a0, 0, s0);
  });
  const auto run = testutil::run_guest(prog, sv48_machine());
  EXPECT_TRUE(run.outcome.completed);
  EXPECT_EQ(run.exit_code, 0xCAFE);
}

TEST(Sv48, PkeyEnforcementIdenticalToSv39) {
  auto build = [] {
    return make_main_program([](Program&, Function& f) {
      f.li(a0, 0);
      f.li(a1, 4096);
      f.li(a2, 3);
      rt::syscall(f, os::sys::kMmap);
      f.mv(s0, a0);
      f.li(a0, 0);
      f.li(a1, static_cast<i64>(os::pkeyperm::kReadOnly));
      rt::syscall(f, os::sys::kPkeyAlloc);
      f.mv(s1, a0);
      f.mv(a0, s0);
      f.li(a1, 4096);
      f.li(a2, 3);
      f.mv(a3, s1);
      rt::syscall(f, os::sys::kPkeyMprotect);
      f.ld(t0, 0, s0);  // read fine
      f.sd(t0, 0, s0);  // pkey fault
      f.li(a0, 0);
    });
  };
  const auto sv48 = testutil::run_guest(build(), sv48_machine());
  ASSERT_EQ(sv48.faults.size(), 1u);
  EXPECT_EQ(sv48.faults[0].cause, core::TrapCause::kStorePageFault);
  EXPECT_TRUE(sv48.faults[0].pkey_fault);
  EXPECT_EQ(sv48.faults[0].pkey, 1u);
  // Identical observable behaviour under Sv39.
  const auto sv39 = testutil::run_guest(build());
  ASSERT_EQ(sv39.faults.size(), 1u);
  EXPECT_EQ(sv39.faults[0].pkey, sv48.faults[0].pkey);
}

TEST(Sv48, SealingWorksOnFourLevelTables) {
  auto prog = make_main_program([](Program&, Function& f) {
    f.li(a0, 0);
    f.li(a1, 4096);
    f.li(a2, 3);
    rt::syscall(f, os::sys::kMmap);
    f.mv(s0, a0);
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);
    f.mv(a0, s0);
    f.li(a1, 4096);
    f.li(a2, 3);
    f.mv(a3, s1);
    rt::syscall(f, os::sys::kPkeyMprotect);
    f.mv(a0, s1);
    f.li(a1, 1);
    f.li(a2, 1);
    rt::syscall(f, os::sys::kPkeySeal);
    // Re-keying must fail with EPERM.
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(a3, a0);
    f.mv(a0, s0);
    f.li(a1, 4096);
    f.li(a2, 3);
    rt::syscall(f, os::sys::kPkeyMprotect);
    f.neg(a0, a0);
  });
  EXPECT_EQ(testutil::run_guest(prog, sv48_machine()).exit_code,
            -os::err::kPerm);
}

TEST(Sv48, WalkCostsOneExtraAccess) {
  // The 4-level walk charges one more PTW memory access per TLB miss —
  // visible as slightly higher cycle counts on an identical program.
  auto build = [] {
    return make_main_program([](Program&, Function& f) { f.li(a0, 0); });
  };
  const auto sv39 = testutil::run_guest(build());
  const auto sv48 = testutil::run_guest(build(), sv48_machine());
  EXPECT_EQ(sv39.instructions, sv48.instructions);
  EXPECT_GT(sv48.cycles, sv39.cycles);
}

}  // namespace
}  // namespace sealpk
