// Shadow-stack instrumentation tests (§V-B): functional transparency of all
// five variants, ROP detection, and the protection level of the shadow
// stack itself under each variant.
#include <gtest/gtest.h>

#include "guest_test_util.h"
#include "passes/shadow_stack.h"

namespace sealpk {
namespace {

using isa::Function;
using isa::Label;
using isa::Program;
using namespace isa;
using passes::ShadowStackKind;
using passes::ShadowStackOptions;
using testutil::GuestRun;
using testutil::run_guest;

constexpr ShadowStackKind kAllVariants[] = {
    ShadowStackKind::kInline, ShadowStackKind::kFunc,
    ShadowStackKind::kSealPkWr, ShadowStackKind::kSealPkRdWr,
    ShadowStackKind::kMprotect};

// Recursive fib(n): deep call tree exercising push/pop heavily.
Program make_fib_program(i64 n) {
  Program prog;
  rt::add_crt0(prog);
  Function& main_fn = prog.add_function("main");
  main_fn.addi(sp, sp, -16);
  main_fn.sd(ra, 0, sp);
  main_fn.li(a0, n);
  main_fn.call("fib");
  main_fn.ld(ra, 0, sp);
  main_fn.addi(sp, sp, 16);
  main_fn.ret();

  Function& fib = prog.add_function("fib");
  const Label base = fib.new_label();
  fib.li(t0, 2);
  fib.blt(a0, t0, base);
  fib.addi(sp, sp, -32);
  fib.sd(ra, 0, sp);
  fib.sd(s0, 8, sp);
  fib.sd(s1, 16, sp);
  fib.mv(s0, a0);
  fib.addi(a0, s0, -1);
  fib.call("fib");
  fib.mv(s1, a0);
  fib.addi(a0, s0, -2);
  fib.call("fib");
  fib.add(a0, a0, s1);
  fib.ld(ra, 0, sp);
  fib.ld(s0, 8, sp);
  fib.ld(s1, 16, sp);
  fib.addi(sp, sp, 32);
  fib.bind(base);
  fib.ret();
  return prog;
}

// A classic stack-smash: vuln() overwrites its saved return address with
// the gadget's address; without an isolated shadow stack the "attack"
// succeeds and the process exits 666.
Program make_rop_program() {
  Program prog;
  rt::add_crt0(prog);
  Function& main_fn = prog.add_function("main");
  main_fn.addi(sp, sp, -16);
  main_fn.sd(ra, 0, sp);
  main_fn.call("vuln");
  main_fn.ld(ra, 0, sp);
  main_fn.addi(sp, sp, 16);
  main_fn.li(a0, 0);
  main_fn.ret();

  Function& vuln = prog.add_function("vuln");
  vuln.addi(sp, sp, -16);
  vuln.sd(ra, 8, sp);
  // The "overflow": clobber the saved RA with the gadget address.
  vuln.la(t0, "gadget");
  vuln.sd(t0, 8, sp);
  vuln.ld(ra, 8, sp);
  vuln.addi(sp, sp, 16);
  vuln.ret();

  Function& gadget = prog.add_function("gadget");
  gadget.instrumentable = false;  // attacker payload, not a real function
  gadget.li(a0, 666);
  rt::emit_exit(gadget);
  return prog;
}

class ShadowStackVariants
    : public ::testing::TestWithParam<ShadowStackKind> {};

TEST_P(ShadowStackVariants, FibStillComputesCorrectly) {
  Program prog = make_fib_program(15);
  ShadowStackOptions opts;
  opts.kind = GetParam();
  passes::apply_shadow_stack(prog, opts);
  const GuestRun run = run_guest(prog);
  EXPECT_TRUE(run.outcome.completed);
  EXPECT_EQ(run.exit_code, 610);  // fib(15)
  EXPECT_TRUE(run.faults.empty());
}

TEST_P(ShadowStackVariants, CatchesRopAttack) {
  Program prog = make_rop_program();
  ShadowStackOptions opts;
  opts.kind = GetParam();
  passes::apply_shadow_stack(prog, opts);
  const GuestRun run = run_guest(prog);
  // The epilogue comparison detects the mismatch and aborts with 139
  // instead of letting the gadget run (666).
  EXPECT_EQ(run.exit_code, 139);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, ShadowStackVariants, ::testing::ValuesIn(kAllVariants),
    [](const ::testing::TestParamInfo<ShadowStackKind>& info) {
      std::string name = passes::shadow_stack_kind_name(info.param);
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(ShadowStack, BaselineRopSucceedsWithoutInstrumentation) {
  Program prog = make_rop_program();
  EXPECT_EQ(run_guest(prog).exit_code, 666);  // attack lands
}

TEST(ShadowStack, UninstrumentedKindIsNoOp) {
  Program prog = make_fib_program(10);
  ShadowStackOptions opts;
  opts.kind = ShadowStackKind::kNone;
  passes::apply_shadow_stack(prog, opts);
  EXPECT_EQ(prog.find_function("__ss_init"), nullptr);
  EXPECT_EQ(run_guest(prog).exit_code, 55);
}

TEST(ShadowStack, ApplyingTwiceThrows) {
  Program prog = make_fib_program(5);
  ShadowStackOptions opts;
  opts.kind = ShadowStackKind::kFunc;
  passes::apply_shadow_stack(prog, opts);
  EXPECT_THROW(passes::apply_shadow_stack(prog, opts), CheckError);
}

// Full-bypass attack: the attacker overwrites BOTH the live return path
// and the shadow copy, so the epilogue comparison passes. This succeeds on
// the unprotected variants (it is exactly why the paper isolates the shadow
// stack) and faults on the first shadow-stack write under SealPK/mprotect.
Program make_bypass_program() {
  Program prog;
  rt::add_crt0(prog);
  Function& main_fn = prog.add_function("main");
  main_fn.addi(sp, sp, -16);
  main_fn.sd(ra, 0, sp);
  main_fn.call("vuln");
  main_fn.ld(ra, 0, sp);
  main_fn.addi(sp, sp, 16);
  main_fn.li(a0, 0);
  main_fn.ret();

  Function& vuln = prog.add_function("vuln");
  vuln.la(t0, "gadget");
  vuln.sd(t0, -8, s10);  // tamper the shadow copy of vuln's RA...
  vuln.mv(ra, t0);       // ...and the live return path
  vuln.ret();            // the epilogue comparison now passes

  Function& gadget = prog.add_function("gadget");
  gadget.instrumentable = false;
  gadget.li(a0, 666);
  rt::emit_exit(gadget);
  return prog;
}

TEST(ShadowStack, UnprotectedVariantsAllowFullBypass) {
  for (const auto kind :
       {ShadowStackKind::kInline, ShadowStackKind::kFunc}) {
    Program prog = make_bypass_program();
    ShadowStackOptions opts;
    opts.kind = kind;
    passes::apply_shadow_stack(prog, opts);
    const GuestRun run = run_guest(prog);
    EXPECT_EQ(run.exit_code, 666)
        << passes::shadow_stack_kind_name(kind);  // attack landed
    EXPECT_TRUE(run.faults.empty());
  }
}

TEST(ShadowStack, SealPkVariantsBlockBypassWithPkeyFault) {
  for (const auto kind :
       {ShadowStackKind::kSealPkWr, ShadowStackKind::kSealPkRdWr}) {
    Program prog = make_bypass_program();
    ShadowStackOptions opts;
    opts.kind = kind;
    passes::apply_shadow_stack(prog, opts);
    const GuestRun run = run_guest(prog);
    ASSERT_EQ(run.faults.size(), 1u)
        << passes::shadow_stack_kind_name(kind);
    EXPECT_EQ(run.faults[0].cause, core::TrapCause::kStorePageFault);
    EXPECT_TRUE(run.faults[0].pkey_fault);  // denied by the pkey, not PTE
  }
}

TEST(ShadowStack, MprotectVariantBlocksBypassViaPte) {
  Program prog = make_bypass_program();
  ShadowStackOptions opts;
  opts.kind = ShadowStackKind::kMprotect;
  passes::apply_shadow_stack(prog, opts);
  const GuestRun run = run_guest(prog);
  ASSERT_EQ(run.faults.size(), 1u);
  EXPECT_EQ(run.faults[0].cause, core::TrapCause::kStorePageFault);
  EXPECT_FALSE(run.faults[0].pkey_fault);  // plain PTE denial
}

TEST(ShadowStack, DomainAndPageSealsAppliedBehindTheScenes) {
  // With sealing on (default), even a *syscall-level* attack re-keying the
  // shadow stack is rejected: the Func-B scenario against the shadow stack.
  Program prog;
  rt::add_crt0(prog);
  Function& main_fn = prog.add_function("main");
  main_fn.la(s0, "__ss_base");
  main_fn.ld(s0, 0, s0);
  main_fn.li(a0, 0);
  main_fn.li(a1, 0);
  rt::syscall(main_fn, os::sys::kPkeyAlloc);  // attacker's fresh RW key
  main_fn.mv(a3, a0);
  main_fn.mv(a0, s0);
  main_fn.li(a1, 4096);
  main_fn.li(a2, 3);
  rt::syscall(main_fn, os::sys::kPkeyMprotect);
  main_fn.neg(a0, a0);  // expect EPERM = 1
  main_fn.ret();
  ShadowStackOptions opts;
  opts.kind = ShadowStackKind::kSealPkRdWr;
  passes::apply_shadow_stack(prog, opts);
  EXPECT_EQ(run_guest(prog).exit_code, -os::err::kPerm);
}

TEST(ShadowStack, PermSealRestrictsWrpkrToPushHelper) {
  // With perm_seal on, a WRPKR injected anywhere outside __ss_push traps —
  // the Func-D scenario against the shadow stack.
  Program prog;
  rt::add_crt0(prog);
  Function& main_fn = prog.add_function("main");
  // The injected attack: grant ourselves write access to the SS domain.
  main_fn.li(t0, 1);  // the shadow-stack pkey (first allocation)
  main_fn.wrpkr(t0, zero);
  main_fn.li(a0, 0);
  main_fn.ret();
  ShadowStackOptions opts;
  opts.kind = ShadowStackKind::kSealPkRdWr;
  opts.perm_seal = true;
  passes::apply_shadow_stack(prog, opts);
  const GuestRun run = run_guest(prog);
  ASSERT_EQ(run.faults.size(), 1u);
  EXPECT_EQ(run.faults[0].cause, core::TrapCause::kSealViolation);
}

TEST(ShadowStack, PermSealStillAllowsNormalOperation) {
  for (const auto kind :
       {ShadowStackKind::kSealPkWr, ShadowStackKind::kSealPkRdWr}) {
    Program prog = make_fib_program(12);
    ShadowStackOptions opts;
    opts.kind = kind;
    opts.perm_seal = true;
    passes::apply_shadow_stack(prog, opts);
    const GuestRun run = run_guest(prog);
    EXPECT_EQ(run.exit_code, 144) << passes::shadow_stack_kind_name(kind);
    EXPECT_TRUE(run.faults.empty());
  }
}

TEST(ShadowStack, OverheadOrderingMatchesFigure5) {
  // Sanity for the Fig. 5 shape: baseline < Inline < Func < SealPK-WR <
  // SealPK-RD+WR << mprotect, measured in simulated cycles on the same
  // workload.
  std::map<ShadowStackKind, u64> cycles;
  for (const auto kind :
       {ShadowStackKind::kNone, ShadowStackKind::kInline,
        ShadowStackKind::kFunc, ShadowStackKind::kSealPkWr,
        ShadowStackKind::kSealPkRdWr, ShadowStackKind::kMprotect}) {
    Program prog = make_fib_program(16);
    ShadowStackOptions opts;
    opts.kind = kind;
    passes::apply_shadow_stack(prog, opts);
    const GuestRun run = run_guest(prog);
    EXPECT_EQ(run.exit_code, 987);
    cycles[kind] = run.cycles;
  }
  EXPECT_LT(cycles[ShadowStackKind::kNone],
            cycles[ShadowStackKind::kInline]);
  EXPECT_LT(cycles[ShadowStackKind::kInline],
            cycles[ShadowStackKind::kFunc]);
  EXPECT_LT(cycles[ShadowStackKind::kFunc],
            cycles[ShadowStackKind::kSealPkWr]);
  EXPECT_LT(cycles[ShadowStackKind::kSealPkWr],
            cycles[ShadowStackKind::kSealPkRdWr]);
  // mprotect is catastrophically slower (the paper's ~88x claim).
  EXPECT_GT(cycles[ShadowStackKind::kMprotect],
            10 * cycles[ShadowStackKind::kSealPkRdWr]);
}

TEST(ShadowStack, LeafSkipTradesCoverageForSpeed) {
  // The vulnerable function in the ROP program is a leaf: with
  // skip_leaf_functions the attack sails through (the documented
  // trade-off), while the default all-functions pass catches it.
  Program caught = make_rop_program();
  ShadowStackOptions opts;
  opts.kind = ShadowStackKind::kSealPkRdWr;
  opts.skip_leaf_functions = false;
  passes::apply_shadow_stack(caught, opts);
  EXPECT_EQ(run_guest(caught).exit_code, 139);

  Program missed = make_rop_program();
  opts.skip_leaf_functions = true;
  passes::apply_shadow_stack(missed, opts);
  EXPECT_EQ(run_guest(missed).exit_code, 666);
}

TEST(ShadowStack, LeafSkipPreservesCorrectness) {
  Program prog = make_fib_program(14);
  ShadowStackOptions opts;
  opts.kind = ShadowStackKind::kSealPkRdWr;
  opts.skip_leaf_functions = true;  // fib calls itself: still instrumented
  passes::apply_shadow_stack(prog, opts);
  EXPECT_EQ(run_guest(prog).exit_code, 377);
}

TEST(ShadowStack, HelperFunctionsAreNotSelfInstrumented) {
  Program prog = make_fib_program(5);
  ShadowStackOptions opts;
  opts.kind = ShadowStackKind::kFunc;
  passes::apply_shadow_stack(prog, opts);
  // __ss_push must not start with the instrumentation prologue (mv t5, ra).
  const Function* push = prog.find_function("__ss_push");
  ASSERT_NE(push, nullptr);
  ASSERT_FALSE(push->items().empty());
  const auto& first = push->items().front();
  EXPECT_FALSE(first.kind == isa::Item::Kind::kInst &&
               first.inst.op == isa::Op::kAddi &&
               first.inst.rd == t5 && first.inst.rs1 == ra);
}

}  // namespace
}  // namespace sealpk
