// Tests for the extension features: the guest print library, guest-visible
// ENOMEM on DRAM exhaustion, and the Donky-style key-CSR model.
#include <gtest/gtest.h>

#include "guest_test_util.h"
#include "hw/donky.h"

namespace sealpk {
namespace {

using isa::Function;
using isa::Label;
using isa::Program;
using namespace isa;
using testutil::make_main_program;
using testutil::run_guest;

// ---------------------------------------------------------------------------
// Guest print library.
// ---------------------------------------------------------------------------

TEST(PrintLib, PrintsStringsAndNumbers) {
  auto prog = make_main_program([](Program& p, Function& f) {
    rt::add_print_lib(p);
    p.add_rodata("msg", {'s', 'u', 'm', '='});
    f.la(a0, "msg");
    f.li(a1, 4);
    f.call("__print_str");
    f.li(a0, 1234567890);
    f.call("__print_u64");
    f.call("__print_nl");
    f.li(a0, 0);
    f.call("__print_u64");  // zero must print one digit
    f.call("__print_nl");
    f.li(a0, 0);
  });
  const auto run = run_guest(prog);
  EXPECT_EQ(run.console, "sum=1234567890\n0\n");
  EXPECT_EQ(run.exit_code, 0);
}

TEST(PrintLib, HandlesMaxU64) {
  auto prog = make_main_program([](Program& p, Function& f) {
    rt::add_print_lib(p);
    f.li(a0, -1);  // 2^64 - 1 unsigned
    f.call("__print_u64");
    f.li(a0, 0);
  });
  EXPECT_EQ(run_guest(prog).console, "18446744073709551615");
}

TEST(PrintLib, IsIdempotent) {
  Program prog;
  rt::add_print_lib(prog);
  rt::add_print_lib(prog);
  EXPECT_NE(prog.find_function("__print_u64"), nullptr);
}

// ---------------------------------------------------------------------------
// Guest-visible memory exhaustion.
// ---------------------------------------------------------------------------

TEST(MemoryExhaustion, MmapReturnsEnomemNotHostError) {
  // A small machine: the guest mmaps until DRAM runs out; the failure must
  // be a clean -ENOMEM, not a simulator exception.
  auto prog = make_main_program([](Program&, Function& f) {
    const Label loop = f.new_label(), done = f.new_label();
    f.li(s0, 0);  // successful maps
    f.bind(loop);
    f.li(a0, 0);
    f.li(a1, 64 * 4096);
    f.li(a2, 3);
    rt::syscall(f, os::sys::kMmap);
    f.blez(a0, done);
    f.addi(s0, s0, 1);
    f.j(loop);
    f.bind(done);
    f.neg(a1, a0);  // -ENOMEM -> 12
    f.mv(a0, s0);
    rt::syscall(f, os::sys::kReport);
    f.mv(a0, a1);
    rt::syscall(f, os::sys::kReport);
    f.li(a0, 0);
  });
  sim::MachineConfig cfg;
  cfg.mem_bytes = 16 * 1024 * 1024;  // tiny DRAM
  const auto run = run_guest(prog, cfg, 100'000'000);
  ASSERT_TRUE(run.outcome.completed);
  EXPECT_EQ(run.exit_code, 0);
  ASSERT_EQ(run.reports.size(), 2u);
  EXPECT_GT(run.reports[0], 10u);  // a healthy number of maps succeeded
  EXPECT_EQ(run.reports[1], static_cast<u64>(-os::err::kNoMem));
}

TEST(MemoryExhaustion, UnmapMakesFramesReusable) {
  auto prog = make_main_program([](Program&, Function& f) {
    // map/unmap in a loop far past DRAM capacity: must never fail.
    const Label loop = f.new_label(), done = f.new_label(),
                fail = f.new_label(), end = f.new_label();
    f.li(s0, 0);
    f.bind(loop);
    f.li(t0, 64);
    f.bgeu(s0, t0, done);
    f.li(a0, 0);
    f.li(a1, 128 * 4096);  // 512 KiB per round, 32 MiB total
    f.li(a2, 3);
    rt::syscall(f, os::sys::kMmap);
    f.blez(a0, fail);
    f.li(a1, 128 * 4096);
    rt::syscall(f, os::sys::kMunmap);
    f.addi(s0, s0, 1);
    f.j(loop);
    f.bind(done);
    f.li(a0, 0);
    f.j(end);
    f.bind(fail);
    f.li(a0, 1);
    f.bind(end);
  });
  sim::MachineConfig cfg;
  cfg.mem_bytes = 16 * 1024 * 1024;
  const auto run = run_guest(prog, cfg, 100'000'000);
  EXPECT_EQ(run.exit_code, 0);
}

// ---------------------------------------------------------------------------
// Donky key-CSR model.
// ---------------------------------------------------------------------------

TEST(Donky, FourSlotsHitWithinWorkingSet) {
  hw::DonkyKeyCsr csr;
  u8 perm;
  for (u32 k = 0; k < 4; ++k) csr.reload(k, static_cast<u8>(k % 4));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(csr.lookup(static_cast<u32>(i % 4), &perm));
  }
  EXPECT_EQ(csr.stats().hits, 100u);
  EXPECT_EQ(csr.stats().reloads, 4u);
}

TEST(Donky, FifthKeyEvictsLru) {
  hw::DonkyKeyCsr csr;
  u8 perm;
  for (u32 k = 0; k < 4; ++k) csr.reload(k, 0);
  csr.lookup(0, &perm);  // 0 is now most-recent; 1 is LRU
  csr.lookup(2, &perm);
  csr.lookup(3, &perm);
  csr.reload(4, 0);  // evicts 1
  EXPECT_TRUE(csr.lookup(0, &perm));
  EXPECT_FALSE(csr.lookup(1, &perm));
  EXPECT_TRUE(csr.lookup(4, &perm));
}

TEST(Donky, ReturnsTheLoadedPermission) {
  hw::DonkyKeyCsr csr;
  csr.reload(7, 0b10);
  u8 perm = 0;
  ASSERT_TRUE(csr.lookup(7, &perm));
  EXPECT_EQ(perm, 0b10);
}


// ---------------------------------------------------------------------------
// Cross-thread pkey_free semantics (§III-B.1 + §III-B.2 interaction).
// ---------------------------------------------------------------------------

TEST(PkeyFreeThreads, FreeClearsSiblingSavedPkr) {
  // Thread A allocates a no-access key, spawns B (which inherits the PKR
  // view), then frees the key while B sleeps. When B wakes, the kernel
  // must have scrubbed the freed key's field in B's *saved* PKR too —
  // otherwise B would still be locked out of the orphan page.
  auto prog = make_main_program([](Program& p, Function& f) {
    p.add_zero("flag", 8);
    p.add_zero("page_addr", 8);
    // page + key (no access) + assign
    f.li(a0, 0);
    f.li(a1, 4096);
    f.li(a2, 3);
    rt::syscall(f, os::sys::kMmap);
    f.mv(s0, a0);
    f.la(t0, "page_addr");
    f.sd(a0, 0, t0);
    f.li(a0, 0);
    f.li(a1, static_cast<i64>(os::pkeyperm::kNone));
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);
    f.mv(a0, s0);
    f.li(a1, 4096);
    f.li(a2, 3);
    f.mv(a3, s1);
    rt::syscall(f, os::sys::kPkeyMprotect);
    // spawn B (inherits the locked view)
    f.li(a0, 0);
    f.li(a1, 16384);
    f.li(a2, 3);
    rt::syscall(f, os::sys::kMmap);
    f.li(t0, 16384);
    f.add(a1, a0, t0);
    f.la(a0, "sibling");
    f.li(a2, 0);
    rt::syscall(f, os::sys::kClone);
    // free the key WHILE B is parked in the run queue
    f.mv(a0, s1);
    rt::syscall(f, os::sys::kPkeyFree);
    f.la(t0, "flag");
    f.li(t1, 1);
    f.sd(t1, 0, t0);
    // wait for B to report
    const Label wait = f.new_label(), done = f.new_label();
    f.bind(wait);
    rt::syscall(f, os::sys::kSchedYield);
    f.la(t0, "flag");
    f.ld(t1, 0, t0);
    f.li(t2, 2);
    f.beq(t1, t2, done);
    f.j(wait);
    f.bind(done);
    f.li(a0, 0);

    Function& c = p.add_function("sibling");
    c.instrumentable = false;
    const Label park = c.new_label();
    c.bind(park);
    rt::syscall(c, os::sys::kSchedYield);
    c.la(t0, "flag");
    c.ld(t1, 0, t0);
    c.beqz(t1, park);
    // The key was freed: B's restored PKR must be permissive again, so
    // this access goes through the PTE alone and succeeds.
    c.la(t0, "page_addr");
    c.ld(t0, 0, t0);
    c.li(t1, 0x77);
    c.sd(t1, 0, t0);
    c.ld(a0, 0, t0);
    rt::syscall(c, os::sys::kReport);  // expect 0x77
    c.la(t0, "flag");
    c.li(t1, 2);
    c.sd(t1, 0, t0);
    const Label spin = c.new_label();
    c.bind(spin);
    rt::syscall(c, os::sys::kSchedYield);
    c.j(spin);
  });
  const auto run = run_guest(prog);
  ASSERT_TRUE(run.outcome.completed);
  ASSERT_TRUE(run.faults.empty())
      << core::trap_cause_name(run.faults[0].cause);
  EXPECT_EQ(run.reports, (std::vector<u64>{0x77}));
}

}  // namespace
}  // namespace sealpk
