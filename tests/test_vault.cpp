// Tests for the sealed-storage vault (src/vault): on-disk format
// round-trips, cold-replay semantics, the kernel's vault-syscall gates
// (ownership, seal-state, duplicate-commit, torn-intent and destination
// checks), the clean guest workload against its build-time oracle, seeded
// vault-fault detection, and a down-scaled crash-anywhere sweep.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault.h"
#include "isa/program.h"
#include "os/syscall_abi.h"
#include "runtime/guest.h"
#include "sim/machine.h"
#include "obs/span.h"
#include "vault/format.h"
#include "vault/program.h"
#include "vault/run.h"
#include "vault/sweep.h"

namespace sealpk {
namespace {

using namespace sealpk::isa;

// ---------------------------------------------------------------------------
// Format round-trips
// ---------------------------------------------------------------------------

vault::Geometry small_geometry() {
  vault::Geometry g;
  g.vault_pkey = 2;
  g.owner_pkey = 1;
  g.journal_cap = 4;
  g.data_off = g.journal_off + 4 * vault::kRecordSize;
  g.n_slots = 2;
  g.slot_size = 64;
  return g;
}

TEST(VaultFormat, SuperblockRoundTrips) {
  const vault::Geometry g = small_geometry();
  const std::vector<u8> b = vault::superblock_bytes(g);
  ASSERT_EQ(b.size(), vault::kSuperblockSize);
  const auto parsed = vault::parse_superblock(b.data(), b.size());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->vault_pkey, g.vault_pkey);
  EXPECT_EQ(parsed->owner_pkey, g.owner_pkey);
  EXPECT_EQ(parsed->journal_cap, g.journal_cap);
  EXPECT_EQ(parsed->data_off, g.data_off);
  EXPECT_EQ(parsed->n_slots, g.n_slots);
  EXPECT_EQ(parsed->slot_size, g.slot_size);
  EXPECT_EQ(parsed->total_len(), g.data_off + 2 * 64);
}

TEST(VaultFormat, SuperblockRejectsCorruptionAndBadGeometry) {
  const vault::Geometry g = small_geometry();
  std::vector<u8> b = vault::superblock_bytes(g);
  // Any flipped bit breaks the FNV seal.
  b[17] ^= 0x40;
  EXPECT_FALSE(vault::parse_superblock(b.data(), b.size()).has_value());

  // A well-checksummed superblock with inconsistent geometry is refused.
  vault::Geometry odd = g;
  odd.journal_cap = 3;  // must be even (intent/commit pairs)
  const std::vector<u8> ob = vault::superblock_bytes(odd);
  EXPECT_FALSE(vault::parse_superblock(ob.data(), ob.size()).has_value());

  vault::Geometry self = g;
  self.owner_pkey = self.vault_pkey;  // owner must be a distinct domain
  const std::vector<u8> sb = vault::superblock_bytes(self);
  EXPECT_FALSE(vault::parse_superblock(sb.data(), sb.size()).has_value());

  vault::Geometry overlap = g;
  overlap.data_off = overlap.journal_off;  // slots inside the journal
  const std::vector<u8> vb = vault::superblock_bytes(overlap);
  EXPECT_FALSE(vault::parse_superblock(vb.data(), vb.size()).has_value());
}

TEST(VaultFormat, RecordRoundTripsAndDetectsTearing) {
  const std::vector<u8> b =
      vault::record_bytes(vault::kRecordCommit, 7, 1, 64, 3, 0xABCDEF);
  ASSERT_EQ(b.size(), vault::kRecordSize);
  const vault::Record r = vault::parse_record(b.data());
  EXPECT_TRUE(r.present);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.type, vault::kRecordCommit);
  EXPECT_EQ(r.id, 7u);
  EXPECT_EQ(r.slot, 1u);
  EXPECT_EQ(r.len, 64u);
  EXPECT_EQ(r.seq, 3u);
  EXPECT_EQ(r.payload_fnv, 0xABCDEFu);

  // A torn record (any byte off) stays present but turns invalid.
  std::vector<u8> torn = b;
  torn[24] ^= 1;
  const vault::Record t = vault::parse_record(torn.data());
  EXPECT_TRUE(t.present);
  EXPECT_FALSE(t.valid);

  // An all-zero slot is absent, not torn.
  const std::vector<u8> zero(vault::kRecordSize, 0);
  const vault::Record z = vault::parse_record(zero.data());
  EXPECT_FALSE(z.present);
  EXPECT_FALSE(z.valid);
}

// ---------------------------------------------------------------------------
// Cold replay
// ---------------------------------------------------------------------------

struct TestRegion {
  vault::Geometry geo = small_geometry();
  std::vector<u8> bytes;

  TestRegion() : bytes(geo.total_len(), 0) {
    const std::vector<u8> sb = vault::superblock_bytes(geo);
    std::copy(sb.begin(), sb.end(), bytes.begin());
  }
  void put_record(u64 index, const std::vector<u8>& rec) {
    std::copy(rec.begin(), rec.end(), bytes.begin() + geo.record_off(index));
  }
  void put_payload(u64 slot, const std::vector<u8>& payload) {
    std::copy(payload.begin(), payload.end(),
              bytes.begin() + geo.slot_off(slot));
  }
};

std::vector<u8> test_payload(u8 salt) {
  std::vector<u8> p(64);
  for (size_t i = 0; i < p.size(); ++i) p[i] = static_cast<u8>(salt + i);
  return p;
}

TEST(VaultReplay, IntentsAloneCommitNothing) {
  TestRegion r;
  const std::vector<u8> payload = test_payload(1);
  r.put_record(0, vault::record_bytes(vault::kRecordIntentSeal, 1, 0, 64, 1,
                                      checksum64(payload.data(), 64)));
  r.put_payload(0, payload);
  const vault::Ledger led = vault::replay(r.bytes.data(), r.bytes.size());
  EXPECT_TRUE(led.superblock_ok);
  EXPECT_TRUE(led.live.empty());
  EXPECT_EQ(led.records_seen, 1u);
  EXPECT_EQ(led.commits_seen, 0u);
  EXPECT_EQ(led.torn_or_corrupt, 0u);
}

TEST(VaultReplay, CommitAdmitsBundleAndNewestSeqWins) {
  TestRegion r;
  const std::vector<u8> v1 = test_payload(1);
  const std::vector<u8> v2 = test_payload(2);
  r.put_payload(0, v1);
  r.put_payload(1, v2);
  r.put_record(1, vault::record_bytes(vault::kRecordCommit, 5, 0, 64, 1,
                                      checksum64(v1.data(), 64)));
  r.put_record(3, vault::record_bytes(vault::kRecordCommit, 5, 1, 64, 2,
                                      checksum64(v2.data(), 64)));
  const vault::Ledger led = vault::replay(r.bytes.data(), r.bytes.size());
  ASSERT_EQ(led.live.size(), 1u);
  const vault::Bundle& b = led.live.at(5);
  EXPECT_EQ(b.seq, 2u);
  EXPECT_EQ(b.slot, 1u);
  EXPECT_EQ(led.commits_seen, 2u);
}

TEST(VaultReplay, TornCommitAndPayloadMismatchAreDetectedNeverServed) {
  TestRegion r;
  const std::vector<u8> v1 = test_payload(1);
  r.put_payload(0, v1);
  std::vector<u8> commit = vault::record_bytes(
      vault::kRecordCommit, 5, 0, 64, 1, checksum64(v1.data(), 64));
  commit[40] ^= 0x10;  // torn mid-write
  r.put_record(1, commit);
  const vault::Ledger torn = vault::replay(r.bytes.data(), r.bytes.size());
  EXPECT_TRUE(torn.live.empty());
  EXPECT_EQ(torn.torn_or_corrupt, 1u);

  // Valid commit, rotted payload: demoted to payload_mismatch, not served.
  TestRegion q;
  std::vector<u8> rotted = v1;
  rotted[10] ^= 0x08;
  q.put_payload(0, rotted);
  q.put_record(1, vault::record_bytes(vault::kRecordCommit, 5, 0, 64, 1,
                                      checksum64(v1.data(), 64)));
  const vault::Ledger led = vault::replay(q.bytes.data(), q.bytes.size());
  EXPECT_TRUE(led.live.empty());
  EXPECT_EQ(led.payload_mismatch, 1u);
  EXPECT_EQ(led.commits_seen, 1u);
}

// ---------------------------------------------------------------------------
// Kernel syscall gates (a scripted mini-guest reports every ecall result)
// ---------------------------------------------------------------------------

// One straight-line guest: bootstrap a 2-slot vault, then push a scripted
// sequence of vault syscalls through the kernel and report each a0. The
// two knobs select the gate under test: the owner key's live permission
// (ownership gate) and whether the vault key gets sealed at all
// (seal-state gate).
isa::Image build_gate_probe(u64 owner_perm, bool seal_vault) {
  const vault::Geometry geo = small_geometry();
  const std::vector<u8> payload = test_payload(9);
  const u64 fnv = checksum64(payload.data(), payload.size());

  Program p;
  rt::add_crt0(p, "main");
  Function& f = p.add_function("main");
  f.instrumentable = false;

  auto copy_words = [&f](const char* src, const char* base_ptr, i64 dst_off,
                         int words) {
    f.la(t0, src);
    f.la(t1, base_ptr);
    f.ld(t1, 0, t1);
    for (int i = 0; i < words; ++i) {
      f.ld(t2, 8 * i, t0);
      f.sd(t2, dst_off + 8 * i, t1);
    }
  };

  f.li(a0, 0);
  f.li(a1, 4096);
  f.li(a2, 3);
  rt::syscall(f, os::sys::kMmap);
  f.la(t0, "__base");
  f.sd(a0, 0, t0);
  f.li(a0, 0);
  f.li(a1, 4096);
  f.li(a2, 3);
  rt::syscall(f, os::sys::kMmap);
  f.la(t0, "__reveal");
  f.sd(a0, 0, t0);
  copy_words("__super", "__base", 0, 10);

  f.li(a0, 0);
  f.li(a1, static_cast<i64>(owner_perm));
  rt::syscall(f, os::sys::kPkeyAlloc);  // -> 1 (the owner domain)
  f.li(a0, 0);
  f.li(a1, static_cast<i64>(os::pkeyperm::kWriteOnly));
  rt::syscall(f, os::sys::kPkeyAlloc);  // -> 2 (the vault domain)
  f.la(a0, "__reveal");
  f.ld(a0, 0, a0);
  f.li(a1, 4096);
  f.li(a2, 3);
  f.li(a3, 1);
  rt::syscall(f, os::sys::kPkeyMprotect);
  f.la(a0, "__base");
  f.ld(a0, 0, a0);
  f.li(a1, 4096);
  f.li(a2, 3);
  f.li(a3, 2);
  rt::syscall(f, os::sys::kPkeyMprotect);
  if (seal_vault) {
    f.li(a0, 2);
    f.li(a1, 1);
    f.li(a2, 1);
    rt::syscall(f, os::sys::kPkeySeal);
    f.call("__latch");
    f.li(a0, 2);
    rt::syscall(f, os::sys::kPkeyPermSeal);
  }

  // Intent + payload for (id=1, slot=0, seq=1), then the script.
  copy_words("__intent", "__base",
             static_cast<i64>(geo.record_off(0)), 8);
  copy_words("__payload", "__base", static_cast<i64>(geo.slot_off(0)), 8);

  auto vault_seal = [&f, &geo](u64 index) {
    f.la(a0, "__base");
    f.ld(a0, 0, a0);
    f.li(a1, static_cast<i64>(geo.record_off(index)));
    rt::syscall(f, os::sys::kVaultSeal);
    rt::syscall(f, os::sys::kReport);
  };
  auto vault_unseal = [&f](u64 id, const char* dst, bool deref) {
    f.la(a0, "__base");
    f.ld(a0, 0, a0);
    f.li(a1, static_cast<i64>(id));
    f.la(a2, dst);
    if (deref) f.ld(a2, 0, a2);
    rt::syscall(f, os::sys::kVaultUnseal);
    rt::syscall(f, os::sys::kReport);
  };

  vault_seal(0);  // [0] first commit
  vault_seal(0);  // [1] duplicate: the id is already live
  // [2] torn intent at journal index 2: copy then clobber the type word.
  copy_words("__intent", "__base", static_cast<i64>(geo.record_off(2)), 8);
  f.li(t2, 0xDEAD);
  f.sd(t2, static_cast<i64>(geo.record_off(2)) + 8, t1);
  vault_seal(2);
  vault_unseal(1, "__reveal", true);    // [3] legitimate readback
  vault_unseal(99, "__reveal", true);   // [4] unknown bundle id
  vault_unseal(1, "__dst0", false);     // [5] dst outside the owner domain
  // [6] write(2) straight from the read-disabled vault page.
  f.li(a0, 1);
  f.la(a1, "__base");
  f.ld(a1, 0, a1);
  f.li(a2, 8);
  rt::syscall(f, os::sys::kWrite);
  rt::syscall(f, os::sys::kReport);

  f.li(a0, 0);
  rt::syscall(f, os::sys::kExit);

  Function& latch = p.add_function("__latch");
  latch.instrumentable = false;
  latch.seal_start(0);
  latch.seal_end(0);
  latch.ret();

  p.add_zero("__base", 8);
  p.add_zero("__reveal", 8);
  p.add_zero("__dst0", 64);
  p.add_rodata("__super", vault::superblock_bytes(geo));
  p.add_rodata("__intent", vault::record_bytes(vault::kRecordIntentSeal, 1,
                                               0, 64, 1, fnv));
  p.add_rodata("__payload", payload);
  return p.link();
}

std::vector<i64> run_gate_probe(u64 owner_perm, bool seal_vault,
                                sim::Machine& m) {
  const int pid = m.load(build_gate_probe(owner_perm, seal_vault));
  EXPECT_GE(pid, 0);
  EXPECT_TRUE(m.run(2'000'000).completed);
  EXPECT_EQ(m.exit_code(pid), 0);
  std::vector<i64> out;
  for (const u64 r : m.kernel().reports()) out.push_back(static_cast<i64>(r));
  return out;
}

TEST(VaultKernel, GateOrderForHealthyOwner) {
  sim::Machine m;
  const std::vector<i64> r = run_gate_probe(os::pkeyperm::kRw, true, m);
  ASSERT_EQ(r.size(), 7u);
  EXPECT_EQ(r[0], 0);                 // seal commits
  EXPECT_EQ(r[1], os::err::kBusy);    // id already live
  EXPECT_EQ(r[2], os::err::kInval);   // torn intent refused
  EXPECT_EQ(r[3], 64);                // unseal returns the byte length
  EXPECT_EQ(r[4], os::err::kInval);   // unknown id
  EXPECT_EQ(r[5], os::err::kAcces);   // dst not owner-tagged
  EXPECT_EQ(r[6], os::err::kAcces);   // write(2) from the vault refused

  const os::VaultStats& vs = m.kernel().vault_stats();
  EXPECT_EQ(vs.seals, 1u);
  EXPECT_EQ(vs.unseals, 1u);
  EXPECT_EQ(vs.denials, 0u);
  EXPECT_EQ(vs.corruption_detected, 1u);
}

TEST(VaultKernel, OwnershipGateDeniesAndNotarises) {
  sim::Machine m;
  // The caller never holds kRw on the owner domain: every vault operation
  // must be refused (the torn intent is still detected first).
  const std::vector<i64> r = run_gate_probe(os::pkeyperm::kNone, true, m);
  ASSERT_EQ(r.size(), 7u);
  EXPECT_EQ(r[0], os::err::kAcces);
  EXPECT_EQ(r[1], os::err::kAcces);
  EXPECT_EQ(r[2], os::err::kInval);
  EXPECT_EQ(r[3], os::err::kAcces);
  EXPECT_EQ(r[4], os::err::kAcces);
  EXPECT_EQ(r[5], os::err::kAcces);
  EXPECT_EQ(r[6], os::err::kAcces);

  const os::VaultStats& vs = m.kernel().vault_stats();
  EXPECT_EQ(vs.seals, 0u);
  EXPECT_EQ(vs.unseals, 0u);
  EXPECT_EQ(vs.denials, 5u);
  u64 denied_marks = 0;
  for (const os::MarkRecord& mk : m.kernel().marks()) {
    if (mk.kind == os::mark::kVaultDenied) ++denied_marks;
  }
  EXPECT_EQ(denied_marks, 5u);
}

TEST(VaultKernel, UnsealedVaultIsRefusedService) {
  sim::Machine m;
  // Skipping pkey_seal/pkey_perm_seal leaves an unsealed "vault": the
  // kernel must refuse to notarise into it (kPerm), while the write(2)
  // hardening still applies (it keys off the live permission bits).
  const std::vector<i64> r = run_gate_probe(os::pkeyperm::kRw, false, m);
  ASSERT_EQ(r.size(), 7u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(r[i], os::err::kPerm) << i;
  EXPECT_EQ(r[6], os::err::kAcces);
  EXPECT_EQ(m.kernel().vault_stats().seals, 0u);
  EXPECT_EQ(m.kernel().vault_stats().corruption_detected, 0u);
}

// ---------------------------------------------------------------------------
// The full workload against its oracle
// ---------------------------------------------------------------------------

TEST(VaultWorkload, CleanRunReproducesExpectedLedger) {
  vault::VaultSpec spec;
  spec.seals = 3;
  spec.reseals = 2;
  spec.unseals = 2;
  spec.seed = 42;
  const vault::BuiltVault built = vault::build_vault(spec);
  sim::Machine m;
  const int pid = m.load(built.image);
  ASSERT_GE(pid, 0);
  ASSERT_TRUE(m.run(400'000'000).completed);
  EXPECT_EQ(m.exit_code(pid), 0);

  const os::Process& proc = m.kernel().process(pid);
  const auto loc = vault::find_vault(*proc.aspace);
  ASSERT_TRUE(loc.has_value());
  std::vector<u8> region(loc->geo.total_len());
  ASSERT_TRUE(proc.aspace->copy_in(loc->base, region.data(), region.size()));
  EXPECT_EQ(vault::ledger_string(vault::replay(region.data(), region.size())),
            built.expected_ledger);

  const os::VaultStats& vs = m.kernel().vault_stats();
  EXPECT_EQ(vs.seals, spec.seals);
  EXPECT_EQ(vs.reseals, spec.reseals);
  EXPECT_EQ(vs.unseals, spec.unseals);
  EXPECT_EQ(vs.denials, 0u);
  EXPECT_EQ(vs.corruption_detected, 0u);

  u64 intents = 0, commits = 0, unseals = 0;
  for (const os::MarkRecord& mk : m.kernel().marks()) {
    if (mk.kind == os::mark::kVaultIntent) ++intents;
    if (mk.kind == os::mark::kVaultCommit) ++commits;
    if (mk.kind == os::mark::kVaultUnseal) ++unseals;
  }
  EXPECT_EQ(intents, u64{spec.seals} + spec.reseals);
  EXPECT_EQ(commits, u64{spec.seals} + spec.reseals);
  EXPECT_EQ(unseals, u64{spec.unseals});
}

TEST(VaultWorkload, SeededJournalFaultsAreDetectedNeverServed) {
  vault::VaultSpec spec;
  const vault::BuiltVault built = vault::build_vault(spec);
  bool saw_injection = false;
  for (u64 seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE(seed);
    sim::MachineConfig mc;
    mc.fault_plan.enabled = true;
    mc.fault_plan.seed = seed;
    mc.fault_plan.rate = 2e-3;
    mc.fault_plan.max_faults = 3;
    mc.fault_plan.kinds = fault::kVaultFaultKinds;
    sim::Machine m(mc);
    const int pid = m.load(built.image);
    ASSERT_GE(pid, 0);
    ASSERT_TRUE(m.run(400'000'000).completed);
    const i64 code = m.exit_code(pid);
    const u64 injected =
        m.injector() != nullptr ? m.injector()->total_injected() : 0;
    if (injected == 0) {
      EXPECT_EQ(code, 0);
      continue;
    }
    saw_injection = true;
    if (code == 0) {
      // Survived: either the flip was benign (ledger byte-exact) or it is
      // visible to cold replay / the kernel — never a silent divergence.
      const os::Process& proc = m.kernel().process(pid);
      const auto loc = vault::find_vault(*proc.aspace);
      ASSERT_TRUE(loc.has_value());
      std::vector<u8> region(loc->geo.total_len());
      ASSERT_TRUE(
          proc.aspace->copy_in(loc->base, region.data(), region.size()));
      const vault::Ledger led = vault::replay(region.data(), region.size());
      const u64 detected = m.kernel().vault_stats().corruption_detected +
                           led.torn_or_corrupt + led.payload_mismatch;
      if (vault::ledger_string(led) != built.expected_ledger) {
        EXPECT_GT(detected, 0u) << "silent ledger divergence";
      }
    } else {
      // Refused: the guest aborted on a kernel refusal or reveal mismatch —
      // a detected fault, never silent divergence.
      EXPECT_TRUE(code == vault::kExitSealFailed ||
                  code == vault::kExitUnsealFailed ||
                  code == vault::kExitRevealMismatch)
          << "exit=" << code;
    }
  }
  EXPECT_TRUE(saw_injection) << "no seed injected anything; rate too low";
}

// ---------------------------------------------------------------------------
// Crash-anywhere sweep (down-scaled smoke; the CLI runs the full matrix)
// ---------------------------------------------------------------------------

TEST(VaultSweep, SmokeSweepHoldsAllInvariants) {
  vault::SweepConfig cfg;
  cfg.spec.seals = 2;
  cfg.spec.reseals = 1;
  cfg.spec.unseals = 1;
  cfg.min_points = 48;
  cfg.stride_points = 32;
  cfg.threads = 2;
  const vault::SweepResult r = vault::run_sweep(cfg);
  EXPECT_TRUE(r.ok) << r.canonical;
  EXPECT_TRUE(r.learning_failure.empty());
  EXPECT_GE(r.points, cfg.min_points);
  EXPECT_GT(r.boundary_points, 0u);
  EXPECT_GT(r.resume_points, 0u);
  EXPECT_EQ(r.failures, 0u);

  // The canonical verdict is byte-identical when run serially.
  vault::SweepConfig serial = cfg;
  serial.threads = 1;
  EXPECT_EQ(vault::run_sweep(serial).canonical, r.canonical);
}

TEST(VaultSweep, ChaosSweepWeakensOnlyToDetection) {
  vault::SweepConfig cfg;
  cfg.spec.seals = 2;
  cfg.spec.reseals = 1;
  cfg.spec.unseals = 1;
  cfg.min_points = 24;
  cfg.stride_points = 16;
  cfg.threads = 2;
  cfg.chaos = true;
  cfg.chaos_runs = 3;
  cfg.chaos_rate = 2e-3;
  const vault::SweepResult r = vault::run_sweep(cfg);
  EXPECT_TRUE(r.ok) << r.canonical;
  EXPECT_EQ(r.chaos.size(), cfg.chaos_runs);
  for (const vault::ChaosVerdict& cv : r.chaos) {
    EXPECT_TRUE(cv.ok) << cv.failure;
  }
}

TEST(VaultWorkload, RunOncePrimitiveMatchesOracleAndTraces) {
  const vault::VaultSpec spec;
  const vault::VaultRunResult bare = vault::run_vault_once(spec);
  ASSERT_TRUE(bare.ok()) << bare.ledger;
  EXPECT_TRUE(bare.trace.events.empty());

  const vault::VaultRunResult traced =
      vault::run_vault_once(spec, /*trace=*/true);
  ASSERT_TRUE(traced.ok());
  // Tracing never perturbs the run: ledger and instruction count are
  // byte-identical with the recorder on.
  EXPECT_EQ(traced.ledger, bare.ledger);
  EXPECT_EQ(traced.instructions, bare.instructions);

  u64 intents = 0, commits = 0, unseals = 0;
  for (const obs::Event& e : traced.trace.events) {
    if (e.kind == obs::EventKind::kVaultIntent) ++intents;
    if (e.kind == obs::EventKind::kVaultCommit) ++commits;
    if (e.kind == obs::EventKind::kVaultUnseal) ++unseals;
  }
  EXPECT_GT(intents, 0u);
  EXPECT_GT(commits, 0u);
  EXPECT_GT(unseals, 0u);

  // Every intent->commit pair folds into a vault txn span.
  const obs::SpanSet set = obs::build_spans(traced.trace);
  u64 txns = 0;
  for (const obs::Span& s : set.spans) {
    if (s.kind == obs::SpanKind::kVaultTxn &&
        s.status == obs::SpanStatus::kOk) {
      ++txns;
    }
  }
  EXPECT_EQ(txns, commits);
}

}  // namespace
}  // namespace sealpk
