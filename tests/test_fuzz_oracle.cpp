// Differential fuzzing of the pkey syscall surface: a random operation
// sequence is compiled into a guest program whose per-call return codes
// are compared against an independent host-side oracle implementing the
// paper's kernel semantics (§III-B allocation/lazy-free state machine and
// the §IV sealing rules). Any divergence between the real kernel +
// hardware path and the oracle fails the test.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "guest_test_util.h"

namespace sealpk {
namespace {

using isa::Function;
using isa::Program;
using namespace isa;

constexpr unsigned kRegions = 4;
constexpr u64 kRegionBase = 0x2000'0000;
constexpr u64 kRegionStride = 0x10000;
constexpr u64 kRegionPages = 2;
constexpr unsigned kKeyUniverse = 6;  // ops draw keys from 0..5

u64 region_addr(unsigned r) { return kRegionBase + r * kRegionStride; }

// --- the oracle: a from-first-principles model of the kernel semantics ---
struct Oracle {
  struct Key {
    bool allocated = false;
    bool dirty = false;
    u64 pages = 0;
    bool sealed_domain = false;
    bool sealed_page = false;
  };
  struct Region {
    bool mapped = false;
    u32 pkey = 0;
  };

  std::array<Key, 1024> keys;
  std::array<Region, kRegions> regions;

  Oracle() { keys[0].allocated = true; }

  void page_delta(u32 k, i64 pages) {
    keys[k].pages = static_cast<u64>(static_cast<i64>(keys[k].pages) + pages);
    if (keys[k].pages == 0 && keys[k].dirty) {
      keys[k] = Key{};  // fully drained: quarantine + seals dissolve
    }
  }

  i64 alloc() {
    for (u32 k = 1; k < 1024; ++k) {
      if (!keys[k].allocated && !keys[k].dirty) {
        keys[k].allocated = true;
        return k;
      }
    }
    return os::err::kNoSpc;
  }

  i64 free_key(u32 k) {
    if (k == 0 || k >= 1024 || !keys[k].allocated) return os::err::kInval;
    keys[k].allocated = false;
    if (keys[k].pages > 0) {
      keys[k].dirty = true;
    } else {
      keys[k] = Key{};
    }
    return 0;
  }

  bool assignable(u32 k) const {
    return k < 1024 && keys[k].allocated && !keys[k].dirty;
  }

  i64 pkey_mprotect(unsigned r, u32 k) {
    if (!assignable(k)) return os::err::kInval;
    if (!regions[r].mapped) return os::err::kNoMem;
    const u32 old = regions[r].pkey;
    if (keys[old].sealed_domain) return os::err::kPerm;
    if (old != k && keys[k].sealed_page) return os::err::kPerm;
    if (old != k) {
      regions[r].pkey = k;
      page_delta(k, kRegionPages);
      page_delta(old, -static_cast<i64>(kRegionPages));
    }
    return 0;
  }

  i64 mprotect(unsigned r) {
    if (!regions[r].mapped) return os::err::kNoMem;
    if (keys[regions[r].pkey].sealed_domain) return os::err::kPerm;
    return 0;
  }

  i64 seal(u32 k, bool domain, bool page) {
    if (!assignable(k)) return os::err::kInval;
    if (domain) keys[k].sealed_domain = true;
    if (page) keys[k].sealed_page = true;
    return 0;
  }

  i64 map(unsigned r) {
    if (regions[r].mapped) return os::err::kInval;  // overlap
    regions[r].mapped = true;
    regions[r].pkey = 0;
    page_delta(0, kRegionPages);
    return static_cast<i64>(region_addr(r));
  }

  i64 unmap(unsigned r) {
    if (regions[r].mapped) {
      const u32 old = regions[r].pkey;
      regions[r].mapped = false;
      page_delta(old, -static_cast<i64>(kRegionPages));
    }
    return 0;  // munmap over a hole succeeds, like Linux
  }
};

enum class OpKind : u8 {
  kAlloc,
  kFree,
  kPkeyMprotect,
  kMprotect,
  kSeal,
  kMap,
  kUnmap,
};

struct Op {
  OpKind kind;
  unsigned region = 0;
  u32 key = 0;
  bool seal_domain = false;
  bool seal_page = false;
};

// Emits one operation into the guest and returns the oracle's prediction
// for its return value. The guest reports each rc (two's complement).
i64 emit_and_predict(Function& f, Oracle& oracle, const Op& op) {
  switch (op.kind) {
    case OpKind::kAlloc:
      f.li(a0, 0);
      f.li(a1, 0);
      rt::syscall(f, os::sys::kPkeyAlloc);
      rt::syscall(f, os::sys::kReport);
      return oracle.alloc();
    case OpKind::kFree:
      f.li(a0, op.key);
      rt::syscall(f, os::sys::kPkeyFree);
      rt::syscall(f, os::sys::kReport);
      return oracle.free_key(op.key);
    case OpKind::kPkeyMprotect:
      f.li(a0, static_cast<i64>(region_addr(op.region)));
      f.li(a1, kRegionPages * 4096);
      f.li(a2, 3);
      f.li(a3, op.key);
      rt::syscall(f, os::sys::kPkeyMprotect);
      rt::syscall(f, os::sys::kReport);
      return oracle.pkey_mprotect(op.region, op.key);
    case OpKind::kMprotect:
      f.li(a0, static_cast<i64>(region_addr(op.region)));
      f.li(a1, kRegionPages * 4096);
      f.li(a2, 3);
      rt::syscall(f, os::sys::kMprotect);
      rt::syscall(f, os::sys::kReport);
      return oracle.mprotect(op.region);
    case OpKind::kSeal:
      f.li(a0, op.key);
      f.li(a1, op.seal_domain ? 1 : 0);
      f.li(a2, op.seal_page ? 1 : 0);
      rt::syscall(f, os::sys::kPkeySeal);
      rt::syscall(f, os::sys::kReport);
      return oracle.seal(op.key, op.seal_domain, op.seal_page);
    case OpKind::kMap:
      f.li(a0, static_cast<i64>(region_addr(op.region)));
      f.li(a1, kRegionPages * 4096);
      f.li(a2, 3);
      rt::syscall(f, os::sys::kMmap);
      rt::syscall(f, os::sys::kReport);
      return oracle.map(op.region);
    case OpKind::kUnmap:
      f.li(a0, static_cast<i64>(region_addr(op.region)));
      f.li(a1, kRegionPages * 4096);
      rt::syscall(f, os::sys::kMunmap);
      rt::syscall(f, os::sys::kReport);
      return oracle.unmap(op.region);
  }
  return 0;
}

Op random_op(Rng& rng) {
  Op op;
  op.kind = static_cast<OpKind>(rng.below(7));
  op.region = static_cast<unsigned>(rng.below(kRegions));
  op.key = static_cast<u32>(rng.below(kKeyUniverse));
  op.seal_domain = rng.chance(0.5);
  op.seal_page = rng.chance(0.5);
  return op;
}

// Builds the random-op guest for `seed` and returns it with the oracle's
// per-op return-value predictions.
Program build_fuzz_program(u64 seed, std::vector<i64>* expected,
                           std::vector<Op>* ops) {
  Rng rng(seed);
  Oracle oracle;
  Program prog;
  rt::add_crt0(prog);
  Function& f = prog.add_function("main");
  f.addi(sp, sp, -16);
  f.sd(ra, 0, sp);
  for (int i = 0; i < 300; ++i) {
    const Op op = random_op(rng);
    ops->push_back(op);
    expected->push_back(emit_and_predict(f, oracle, op));
  }
  f.ld(ra, 0, sp);
  f.addi(sp, sp, 16);
  f.li(a0, 0);
  f.ret();
  return prog;
}

class FuzzOracleTest : public ::testing::TestWithParam<u64> {};

TEST_P(FuzzOracleTest, KernelMatchesOracleOnRandomOpSequences) {
  std::vector<i64> expected;
  std::vector<Op> ops;
  const Program prog = build_fuzz_program(GetParam(), &expected, &ops);

  const auto run = testutil::run_guest(prog);
  ASSERT_TRUE(run.outcome.completed);
  ASSERT_TRUE(run.faults.empty());
  ASSERT_EQ(run.exit_code, 0);
  ASSERT_EQ(run.reports.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(static_cast<i64>(run.reports[i]), expected[i])
        << "op " << i << " kind=" << static_cast<int>(ops[i].kind)
        << " region=" << ops[i].region << " key=" << ops[i].key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzOracleTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 1234u));

// The same differential oracle under seeded fault injection: fault recovery
// must be transparent to syscall semantics — every return code still matches
// the host-side model — unless an unrecoverable fault kills the process,
// which must then use a distinct robustness exit code.
class FuzzOracleChaosTest : public ::testing::TestWithParam<u64> {};

TEST_P(FuzzOracleChaosTest, RecoveryIsTransparentToSyscallSemantics) {
  std::vector<i64> expected;
  std::vector<Op> ops;
  const Program prog = build_fuzz_program(GetParam(), &expected, &ops);

  sim::MachineConfig config;
  config.fault_plan.enabled = true;
  config.fault_plan.seed = GetParam() * 977 + 13;
  config.fault_plan.rate = 2e-4;
  const auto run = testutil::run_guest(prog, config);
  ASSERT_TRUE(run.outcome.completed);

  if (run.exit_code != 0) {
    const u64 kills =
        run.kstats.machine_check_kills + run.kstats.watchdog_kills;
    EXPECT_GE(kills, 1u) << "nonzero exit without a recorded kill";
    EXPECT_TRUE(run.exit_code == os::kExitMachineCheck ||
                run.exit_code == os::kExitTrapStorm ||
                run.exit_code == os::kExitLivelock)
        << "killed with non-distinct exit code " << run.exit_code;
    return;  // a kill truncates the report stream; nothing more to compare
  }
  ASSERT_EQ(run.reports.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(static_cast<i64>(run.reports[i]), expected[i])
        << "op " << i << " kind=" << static_cast<int>(ops[i].kind)
        << " region=" << ops[i].region << " key=" << ops[i].key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzOracleChaosTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 1234u));

}  // namespace
}  // namespace sealpk
