// Shared helpers for tests that assemble and run guest programs.
#pragma once

#include <string>
#include <vector>

#include "isa/program.h"
#include "os/kernel.h"
#include "runtime/guest.h"
#include "sim/machine.h"

namespace sealpk::testutil {

struct GuestRun {
  sim::RunOutcome outcome;
  i64 exit_code = 0;
  std::string console;
  std::vector<u64> reports;
  std::vector<os::FaultRecord> faults;
  u64 cycles = 0;
  u64 instructions = 0;
  os::KernelStats kstats;  // recovery/robustness counters for chaos tests
};

// Links `prog`, loads it into a fresh machine and runs to completion.
inline GuestRun run_guest(const isa::Program& prog,
                          sim::MachineConfig config = {},
                          u64 max_instructions = 200'000'000) {
  sim::Machine machine(config);
  const int pid = machine.load(prog.link());
  GuestRun result;
  result.outcome = machine.run(max_instructions);
  result.exit_code = machine.exit_code(pid);
  result.console = machine.kernel().console();
  result.reports = machine.kernel().reports();
  result.faults = machine.kernel().faults();
  result.cycles = result.outcome.cycles;
  result.instructions = result.outcome.instructions;
  result.kstats = machine.kernel().stats();
  return result;
}

// Builds a program whose main body is filled in by `body`; main's a0 return
// value becomes the exit code. main saves/restores ra around the body so
// bodies may freely `call` helper functions.
template <typename BodyFn>
isa::Program make_main_program(BodyFn&& body) {
  isa::Program prog;
  rt::add_crt0(prog);
  isa::Function& main_fn = prog.add_function("main");
  main_fn.addi(isa::sp, isa::sp, -16);
  main_fn.sd(isa::ra, 0, isa::sp);
  body(prog, main_fn);
  main_fn.ld(isa::ra, 0, isa::sp);
  main_fn.addi(isa::sp, isa::sp, 16);
  main_fn.ret();
  return prog;
}

}  // namespace sealpk::testutil
