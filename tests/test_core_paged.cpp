// Paged-mode hart tests: the Figure-2 effective-permission control logic
// (PTE perms ∩ pkey perms), the spkinfo fault augmentation, and TLB/pkey
// interactions.
#include <gtest/gtest.h>

#include <tuple>

#include "core/hart.h"
#include "isa/program.h"

namespace sealpk::core {
namespace {

using isa::Inst;
using isa::Op;

class PagedFixture : public ::testing::Test {
 protected:
  static constexpr u64 kCodeVa = 0x10000;
  static constexpr u64 kDataVa = 0x40000000;
  static constexpr u64 kCodePpn = 0x80;
  static constexpr u64 kDataPpn = 0x90;

  explicit PagedFixture(const HartConfig& config = {})
      : mem_(16 << 20), hart_(mem_, config) {
    hart_.csrs().satp = csr::kSatpModeSv39 | root_;
    hart_.set_priv(Priv::kUser);
    hart_.set_pc(kCodeVa);
    map(kCodeVa, kCodePpn,
        mem::pte::kV | mem::pte::kR | mem::pte::kX | mem::pte::kU);
  }

  void map(u64 vaddr, u64 ppn, u64 flags, u32 pkey = 0) {
    u64 table = root_;
    for (int level = 2; level >= 1; --level) {
      const u64 slot =
          (table << mem::kPageShift) +
          mem::sv39::vpn_slice(vaddr, static_cast<unsigned>(level)) * 8;
      u64 entry = mem_.read_u64(slot);
      if (!mem::pte::valid(entry)) {
        entry = mem::pte::make(next_table_++, mem::pte::kV);
        mem_.write_u64(slot, entry);
      }
      table = mem::pte::ppn_of(entry);
    }
    const u64 slot = (table << mem::kPageShift) +
                     mem::sv39::vpn_slice(vaddr, 0) * 8;
    const unsigned pkey_bits =
        hart_.config().flavor == IsaFlavor::kSealPk
            ? mem::pte::kSealPkPkeyBits
            : mem::pte::kMpkPkeyBits;
    mem_.write_u64(slot, mem::pte::make(ppn, flags, pkey, pkey_bits));
  }

  void place(const std::vector<Inst>& insts) {
    for (size_t i = 0; i < insts.size(); ++i) {
      mem_.write_u32((kCodePpn << mem::kPageShift) + 4 * i,
                     isa::encode(insts[i]));
    }
    hart_.set_pc(kCodeVa);
  }

  mem::PhysMem mem_;
  Hart hart_;
  u64 root_ = 1;
  u64 next_table_ = 2;
};

// ---------------------------------------------------------------------------
// The effective-permission matrix (Figure 2), parameterized:
//   (PTE writable?, pkey 2-bit perm, access-is-store?)
// ---------------------------------------------------------------------------

using PermCase = std::tuple<bool, unsigned, bool>;

class EffectivePermTest
    : public PagedFixture,
      public ::testing::WithParamInterface<PermCase> {
 public:
  EffectivePermTest() : PagedFixture() {}
};

TEST_P(EffectivePermTest, IntersectionOfPteAndPkey) {
  const auto [pte_writable, pkey_perm, is_store] = GetParam();
  constexpr u32 kPkey = 0x3C1;  // Figure 2's example key
  u64 flags = mem::pte::kV | mem::pte::kR | mem::pte::kU;
  if (pte_writable) flags |= mem::pte::kW;
  map(kDataVa, kDataPpn, flags, kPkey);
  hart_.pkr().set_perm(kPkey, static_cast<u8>(pkey_perm));

  hart_.set_reg(isa::a0, kDataVa);
  place({is_store
             ? Inst{.op = Op::kSd, .rs1 = isa::a0, .rs2 = isa::a1, .imm = 0}
             : Inst{.op = Op::kLd, .rd = isa::a1, .rs1 = isa::a0, .imm = 0}});

  const bool pte_ok = is_store ? pte_writable : true;
  const bool pkey_denies =
      is_store ? (pkey_perm & 0b01) != 0 : (pkey_perm & 0b10) != 0;
  const bool allowed = pte_ok && !pkey_denies;

  const StepResult r = hart_.step();
  if (allowed) {
    EXPECT_EQ(r.kind, StepKind::kOk);
  } else {
    ASSERT_EQ(r.kind, StepKind::kTrap);
    EXPECT_EQ(r.cause, is_store ? TrapCause::kStorePageFault
                                : TrapCause::kLoadPageFault);
    EXPECT_EQ(hart_.csrs().stval, kDataVa);
    // spkinfo flags the fault as pkey-caused exactly when the PTE alone
    // would have allowed it.
    const bool expect_pkey_fault = pte_ok && pkey_denies;
    EXPECT_EQ(hart_.csrs().spkinfo >> 63, expect_pkey_fault ? 1u : 0u);
    if (expect_pkey_fault) {
      EXPECT_EQ(hart_.csrs().spkinfo & 0x3FF, kPkey);
      EXPECT_EQ(hart_.stats().pkey_denials, 1u);
    }
  }
}

std::string perm_case_name(const ::testing::TestParamInfo<PermCase>& info) {
  static const char* const kPerms[] = {"PkeyRW", "PkeyRO", "PkeyWO",
                                       "PkeyNone"};
  std::string name = std::get<0>(info.param) ? "PteRW_" : "PteRO_";
  name += kPerms[std::get<1>(info.param)];
  name += std::get<2>(info.param) ? "_Store" : "_Load";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Figure2Matrix, EffectivePermTest,
    ::testing::Combine(::testing::Bool(),           // PTE writable
                       ::testing::Range(0u, 4u),    // pkey 2-bit perm
                       ::testing::Bool()),          // store?
    perm_case_name);

// ---------------------------------------------------------------------------
// Individual paged-mode behaviours.
// ---------------------------------------------------------------------------

TEST_F(PagedFixture, Figure2WorkedExample) {
  // "RW perm:11, pkey perm:01 -> effective:10": write to page #87 denied.
  constexpr u32 kPkey = 0b1111000001;
  map(kDataVa, kDataPpn,
      mem::pte::kV | mem::pte::kR | mem::pte::kW | mem::pte::kU, kPkey);
  hart_.pkr().set_perm(kPkey, 0b01);
  hart_.set_reg(isa::a0, kDataVa);
  // Read succeeds...
  place({Inst{.op = Op::kLd, .rd = isa::a1, .rs1 = isa::a0, .imm = 0}});
  EXPECT_EQ(hart_.step().kind, StepKind::kOk);
  // ...write faults.
  place({Inst{.op = Op::kSd, .rs1 = isa::a0, .rs2 = isa::a1, .imm = 0}});
  EXPECT_EQ(hart_.step().cause, TrapCause::kStorePageFault);
}

TEST_F(PagedFixture, WriteOnlyDomain) {
  // §III-A: pkey (RD=1, WD=0) over an RW page yields a write-only page —
  // impossible through RISC-V PTE permissions alone.
  constexpr u32 kPkey = 12;
  map(kDataVa, kDataPpn,
      mem::pte::kV | mem::pte::kR | mem::pte::kW | mem::pte::kU, kPkey);
  hart_.pkr().set_perm(kPkey, hw::kPermWriteOnly);
  hart_.set_reg(isa::a0, kDataVa);
  hart_.set_reg(isa::a1, 0x77);
  place({Inst{.op = Op::kSd, .rs1 = isa::a0, .rs2 = isa::a1, .imm = 0}});
  EXPECT_EQ(hart_.step().kind, StepKind::kOk);
  EXPECT_EQ(mem_.read_u64(kDataPpn << mem::kPageShift), 0x77u);
  place({Inst{.op = Op::kLd, .rd = isa::a2, .rs1 = isa::a0, .imm = 0}});
  EXPECT_EQ(hart_.step().cause, TrapCause::kLoadPageFault);
}

TEST_F(PagedFixture, FetchIgnoresPkey) {
  // The ITLB carries no pkey: code in a no-access domain still executes.
  constexpr u32 kPkey = 33;
  map(kCodeVa + mem::kPageSize, kCodePpn + 1,
      mem::pte::kV | mem::pte::kR | mem::pte::kX | mem::pte::kU, kPkey);
  hart_.pkr().set_perm(kPkey, hw::kPermNone);
  mem_.write_u32(((kCodePpn + 1) << mem::kPageShift),
                 isa::encode(Inst{.op = Op::kAddi,
                                  .rd = isa::a0,
                                  .rs1 = 0,
                                  .imm = 11}));
  hart_.set_pc(kCodeVa + mem::kPageSize);
  EXPECT_EQ(hart_.step().kind, StepKind::kOk);
  EXPECT_EQ(hart_.reg(isa::a0), 11u);
}

TEST_F(PagedFixture, NonUserPageFaultsFromUserMode) {
  map(kDataVa, kDataPpn, mem::pte::kV | mem::pte::kR);  // no U bit
  hart_.set_reg(isa::a0, kDataVa);
  place({Inst{.op = Op::kLd, .rd = isa::a1, .rs1 = isa::a0, .imm = 0}});
  EXPECT_EQ(hart_.step().cause, TrapCause::kLoadPageFault);
  EXPECT_EQ(hart_.csrs().spkinfo, 0u);  // not a pkey fault
}

TEST_F(PagedFixture, UnmappedAddressFaults) {
  hart_.set_reg(isa::a0, 0x7000'0000);
  place({Inst{.op = Op::kLd, .rd = isa::a1, .rs1 = isa::a0, .imm = 0}});
  EXPECT_EQ(hart_.step().cause, TrapCause::kLoadPageFault);
}

TEST_F(PagedFixture, ExecFromNonExecutableFaults) {
  map(kDataVa, kDataPpn,
      mem::pte::kV | mem::pte::kR | mem::pte::kU);
  hart_.set_pc(kDataVa);
  EXPECT_EQ(hart_.step().cause, TrapCause::kInstPageFault);
}

TEST_F(PagedFixture, TlbCachesPkeyUntilFlush) {
  constexpr u32 kOld = 5, kNew = 6;
  map(kDataVa, kDataPpn,
      mem::pte::kV | mem::pte::kR | mem::pte::kW | mem::pte::kU, kOld);
  hart_.pkr().set_perm(kNew, hw::kPermNone);
  hart_.set_reg(isa::a0, kDataVa);
  place({Inst{.op = Op::kLd, .rd = isa::a1, .rs1 = isa::a0, .imm = 0}});
  EXPECT_EQ(hart_.step().kind, StepKind::kOk);  // caches pkey=5

  // Re-key the page in the PTE; without a flush the stale DTLB entry still
  // grants access...
  map(kDataVa, kDataPpn,
      mem::pte::kV | mem::pte::kR | mem::pte::kW | mem::pte::kU, kNew);
  place({Inst{.op = Op::kLd, .rd = isa::a1, .rs1 = isa::a0, .imm = 0}});
  EXPECT_EQ(hart_.step().kind, StepKind::kOk);

  // ...and after the kernel's sfence.vma the new key (no-access) applies.
  hart_.flush_tlbs();
  place({Inst{.op = Op::kLd, .rd = isa::a1, .rs1 = isa::a0, .imm = 0}});
  EXPECT_EQ(hart_.step().cause, TrapCause::kLoadPageFault);
  EXPECT_EQ(hart_.csrs().spkinfo & 0x3FF, kNew);
}

TEST_F(PagedFixture, StoreToCleanPageSetsDirtyBit) {
  map(kDataVa, kDataPpn,
      mem::pte::kV | mem::pte::kR | mem::pte::kW | mem::pte::kU);
  hart_.set_reg(isa::a0, kDataVa);
  // Load first (fills the TLB with a clean entry).
  place({Inst{.op = Op::kLd, .rd = isa::a1, .rs1 = isa::a0, .imm = 0}});
  EXPECT_EQ(hart_.step().kind, StepKind::kOk);
  // The store must re-walk and set D.
  place({Inst{.op = Op::kSd, .rs1 = isa::a0, .rs2 = isa::a1, .imm = 0}});
  EXPECT_EQ(hart_.step().kind, StepKind::kOk);
  const auto wr = mem::walk(static_cast<const mem::PhysMem&>(mem_), root_,
                            kDataVa, mem::Access::kLoad);
  ASSERT_TRUE(wr.ok);
  EXPECT_TRUE((wr.pte & mem::pte::kD) != 0);
}

TEST_F(PagedFixture, TlbMissChargesWalkCycles) {
  map(kDataVa, kDataPpn,
      mem::pte::kV | mem::pte::kR | mem::pte::kU);
  hart_.set_reg(isa::a0, kDataVa);
  place({Inst{.op = Op::kLd, .rd = isa::a1, .rs1 = isa::a0, .imm = 0},
         Inst{.op = Op::kLd, .rd = isa::a2, .rs1 = isa::a0, .imm = 8}});
  const u64 c0 = hart_.cycles();
  hart_.step();  // miss: 3-level walk
  const u64 miss_cost = hart_.cycles() - c0;
  const u64 c1 = hart_.cycles();
  hart_.step();  // hit
  const u64 hit_cost = hart_.cycles() - c1;
  EXPECT_GE(miss_cost, hit_cost + hart_.timing().ptw_cost(3));
}

TEST_F(PagedFixture, TranslateDebugMatchesWalk) {
  map(kDataVa, kDataPpn,
      mem::pte::kV | mem::pte::kR | mem::pte::kU);
  const auto pa = hart_.translate_debug(kDataVa + 0x123, mem::Access::kLoad);
  ASSERT_TRUE(pa.has_value());
  EXPECT_EQ(*pa, (kDataPpn << mem::kPageShift) + 0x123);
  EXPECT_FALSE(
      hart_.translate_debug(0x5000'0000, mem::Access::kLoad).has_value());
}

// MPK-flavour paged behaviour: 4-bit keys and PKRU checks.
class MpkPagedFixture : public PagedFixture {
 protected:
  static HartConfig mpk_config() {
    HartConfig cfg;
    cfg.flavor = IsaFlavor::kIntelMpkCompat;
    return cfg;
  }
  MpkPagedFixture() : PagedFixture(mpk_config()) {}
};

TEST_F(MpkPagedFixture, PkruAccessDisableBlocksLoads) {
  map(kDataVa, kDataPpn,
      mem::pte::kV | mem::pte::kR | mem::pte::kW | mem::pte::kU, 0xA);
  hart_.pkru().set_perm(0xA, /*access_disable=*/true, false);
  hart_.set_reg(isa::a0, kDataVa);
  place({Inst{.op = Op::kLd, .rd = isa::a1, .rs1 = isa::a0, .imm = 0}});
  EXPECT_EQ(hart_.step().cause, TrapCause::kLoadPageFault);
}

TEST_F(MpkPagedFixture, PkruWriteDisableAllowsLoads) {
  map(kDataVa, kDataPpn,
      mem::pte::kV | mem::pte::kR | mem::pte::kW | mem::pte::kU, 0xA);
  hart_.pkru().set_perm(0xA, false, /*write_disable=*/true);
  hart_.set_reg(isa::a0, kDataVa);
  place({Inst{.op = Op::kLd, .rd = isa::a1, .rs1 = isa::a0, .imm = 0}});
  EXPECT_EQ(hart_.step().kind, StepKind::kOk);
  place({Inst{.op = Op::kSd, .rs1 = isa::a0, .rs2 = isa::a1, .imm = 0}});
  EXPECT_EQ(hart_.step().cause, TrapCause::kStorePageFault);
}

TEST_F(MpkPagedFixture, NoWriteOnlyDomainsInMpk) {
  // Intel's (AD, WD) encoding cannot express write-only: disabling access
  // kills writes too. This is the §III-A contrast.
  map(kDataVa, kDataPpn,
      mem::pte::kV | mem::pte::kR | mem::pte::kW | mem::pte::kU, 0x3);
  hart_.pkru().set_perm(0x3, /*access_disable=*/true, false);
  hart_.set_reg(isa::a0, kDataVa);
  place({Inst{.op = Op::kSd, .rs1 = isa::a0, .rs2 = isa::a1, .imm = 0}});
  EXPECT_EQ(hart_.step().cause, TrapCause::kStorePageFault);
}

}  // namespace
}  // namespace sealpk::core
