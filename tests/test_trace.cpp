// Tracer tests: the per-instruction hook and the ring-buffer/stream
// tracers built on it.
#include <gtest/gtest.h>

#include <sstream>

#include "guest_test_util.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace sealpk {
namespace {

using isa::Function;
using isa::Program;
using namespace isa;
using testutil::make_main_program;

TEST(Trace, RingBufferKeepsTail) {
  auto prog = make_main_program([](Program&, Function& f) {
    for (int i = 0; i < 10; ++i) f.nop();
    f.li(a0, 0);
  });
  sim::Machine machine{sim::MachineConfig{}};
  machine.load(prog.link());
  sim::Tracer tracer(8);
  tracer.attach(machine.hart());
  machine.run();
  EXPECT_GT(tracer.executed(), 10u);
  EXPECT_EQ(tracer.entries().size(), 8u);
  // The tail of the program is an exit ecall.
  EXPECT_EQ(tracer.entries().back().inst.op, isa::Op::kEcall);
}

TEST(Trace, StreamTracerDisassembles) {
  auto prog = make_main_program([](Program&, Function& f) {
    f.li(a0, 42);  // addi a0, zero, 42
  });
  sim::Machine machine{sim::MachineConfig{}};
  machine.load(prog.link());
  std::ostringstream os;
  sim::attach_stream_tracer(machine.hart(), os);
  machine.run();
  const std::string log = os.str();
  EXPECT_NE(log.find("addi a0, zero, 42"), std::string::npos);
  EXPECT_NE(log.find("ecall"), std::string::npos);
  EXPECT_NE(log.find("U 0x"), std::string::npos);
}

TEST(Trace, DetachRestoresZeroOverheadPath) {
  auto prog = make_main_program([](Program&, Function& f) {
    for (int i = 0; i < 100; ++i) f.nop();
    f.li(a0, 0);
  });
  sim::Machine machine{sim::MachineConfig{}};
  const int pid = machine.load(prog.link());
  sim::Tracer tracer(4);
  tracer.attach(machine.hart());
  machine.run(50);
  const u64 seen = tracer.executed();
  EXPECT_GT(seen, 0u);
  sim::Tracer::detach(machine.hart());
  machine.run();
  EXPECT_EQ(tracer.executed(), seen);  // no further callbacks
  EXPECT_EQ(machine.exit_code(pid), 0);
}

TEST(Trace, ClearResetsEntriesAndExecutedCount) {
  auto prog = make_main_program([](Program&, Function& f) {
    for (int i = 0; i < 10; ++i) f.nop();
    f.li(a0, 0);
  });
  sim::Machine machine{sim::MachineConfig{}};
  machine.load(prog.link());
  sim::Tracer tracer(8);
  tracer.attach(machine.hart());
  machine.run();
  ASSERT_GT(tracer.executed(), 0u);
  tracer.clear();
  EXPECT_EQ(tracer.executed(), 0u);
  EXPECT_TRUE(tracer.entries().empty());
}

TEST(Trace, DumpFormatsAllEntries) {
  auto prog = make_main_program([](Program&, Function& f) { f.li(a0, 0); });
  sim::Machine machine{sim::MachineConfig{}};
  machine.load(prog.link());
  sim::Tracer tracer(128);
  tracer.attach(machine.hart());
  machine.run();
  std::ostringstream os;
  tracer.dump(os);
  // One line per buffered instruction.
  const std::string log = os.str();
  const size_t lines = static_cast<size_t>(
      std::count(log.begin(), log.end(), '\n'));
  EXPECT_EQ(lines, tracer.entries().size());
}

TEST(Stats, CollectsCoherentCounters) {
  auto prog = make_main_program([](Program& p, Function& f) {
    rt::add_pkey_lib(p);
    f.li(a0, 0);
    f.li(a1, 4096);
    f.li(a2, 3);
    rt::syscall(f, os::sys::kMmap);
    f.mv(s0, a0);
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(a1, zero);
    f.mv(a1, a0);
    f.mv(a0, s0);
    f.mv(a3, a1);
    f.mv(a0, s0);
    f.li(a1, 4096);
    f.li(a2, 3);
    rt::syscall(f, os::sys::kPkeyMprotect);
    f.ld(t0, 0, s0);
    f.sd(t0, 0, s0);
    f.li(a0, 5);
    f.call("__pkey_get");
    f.li(a0, 0);
  });
  sim::Machine machine{sim::MachineConfig{}};
  machine.load(prog.link());
  const auto outcome = machine.run();
  ASSERT_TRUE(outcome.completed);
  const auto stats = sim::collect_stats(machine);
  EXPECT_EQ(stats.instructions, machine.hart().instret());
  EXPECT_GT(stats.cycles, stats.instructions);
  EXPECT_LT(stats.ipc(), 1.0);
  EXPECT_GT(stats.loads, 0u);
  EXPECT_GT(stats.stores, 0u);
  EXPECT_GT(stats.calls, 0u);          // crt0's call + __pkey_get
  EXPECT_GT(stats.syscalls, 3u);
  EXPECT_GT(stats.rdpkr, 0u);          // __pkey_get uses RDPKR
  EXPECT_GT(stats.dtlb.hits + stats.dtlb.misses, 0u);
  EXPECT_GT(stats.pkr.perm_lookups, 0u);
  EXPECT_GT(stats.dtlb_hit_rate(), 0.2);
  std::ostringstream os;
  sim::print_stats(stats, os);
  EXPECT_NE(os.str().find("dtlb hit rate"), std::string::npos);
  EXPECT_NE(os.str().find("instructions"), std::string::npos);
}

}  // namespace
}  // namespace sealpk
