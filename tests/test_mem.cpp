#include <gtest/gtest.h>

#include "common/rng.h"
#include "mem/phys_mem.h"
#include "mem/pte.h"
#include "mem/tlb.h"
#include "mem/walker.h"

namespace sealpk::mem {
namespace {

// ---------------------------------------------------------------------------
// Physical memory.
// ---------------------------------------------------------------------------

TEST(PhysMem, FreshMemoryReadsZero) {
  PhysMem mem(1 << 20);
  EXPECT_EQ(mem.read_u64(0), 0u);
  EXPECT_EQ(mem.read_u8(0xFFFFF), 0u);
}

TEST(PhysMem, ReadWriteWidths) {
  PhysMem mem(1 << 20);
  mem.write_u8(0x100, 0xAB);
  mem.write_u16(0x102, 0xCDEF);
  mem.write_u32(0x104, 0x12345678);
  mem.write_u64(0x108, 0x1122334455667788ULL);
  EXPECT_EQ(mem.read_u8(0x100), 0xAB);
  EXPECT_EQ(mem.read_u16(0x102), 0xCDEF);
  EXPECT_EQ(mem.read_u32(0x104), 0x12345678u);
  EXPECT_EQ(mem.read_u64(0x108), 0x1122334455667788ULL);
}

TEST(PhysMem, LittleEndianLayout) {
  PhysMem mem(1 << 20);
  mem.write_u32(0x200, 0xAABBCCDD);
  EXPECT_EQ(mem.read_u8(0x200), 0xDD);
  EXPECT_EQ(mem.read_u8(0x203), 0xAA);
}

TEST(PhysMem, CrossPageAccess) {
  PhysMem mem(1 << 20);
  mem.write_u64(kPageSize - 4, 0x0102030405060708ULL);
  EXPECT_EQ(mem.read_u64(kPageSize - 4), 0x0102030405060708ULL);
  EXPECT_EQ(mem.read_u32(kPageSize), 0x01020304u);
}

TEST(PhysMem, OutOfRangeThrows) {
  PhysMem mem(1 << 20);
  EXPECT_THROW(mem.read_u8(1 << 20), CheckError);
  EXPECT_THROW(mem.write_u8(1 << 20, 0), CheckError);
  EXPECT_FALSE(mem.contains((1 << 20) - 1, 2));
  EXPECT_TRUE(mem.contains((1 << 20) - 1, 1));
}

TEST(PhysMem, BulkOps) {
  PhysMem mem(1 << 20);
  const std::vector<u8> data{1, 2, 3, 4, 5, 6, 7, 8, 9};
  mem.write_bytes(kPageSize - 4, data.data(), data.size());
  std::vector<u8> back(data.size());
  mem.read_bytes(kPageSize - 4, back.data(), back.size());
  EXPECT_EQ(back, data);
  mem.fill(0x100, 0xEE, 8);
  EXPECT_EQ(mem.read_u64(0x100), 0xEEEEEEEEEEEEEEEEULL);
}

// ---------------------------------------------------------------------------
// PTE codec.
// ---------------------------------------------------------------------------

TEST(Pte, MakeAndExtract) {
  const u64 entry =
      pte::make(0x12345, pte::kV | pte::kR | pte::kW | pte::kU, 0x3C1);
  EXPECT_EQ(pte::ppn_of(entry), 0x12345u);
  EXPECT_EQ(pte::pkey_of(entry), 0x3C1u);
  EXPECT_TRUE(pte::valid(entry));
  EXPECT_TRUE(pte::is_leaf(entry));
}

TEST(Pte, PkeyOccupiesReservedBits) {
  // §III-A: the pkey lives in PTE bits [63:54] — the Sv39 reserved range.
  const u64 entry = pte::make(0, pte::kV, 0x3FF);
  EXPECT_EQ(bits(entry, 63, 54), 0x3FFu);
  EXPECT_EQ(bits(entry, 53, 0), pte::kV);
}

TEST(Pte, MpkFlavourUsesFourBits) {
  const u64 entry = pte::make(0, pte::kV, 0xF, pte::kMpkPkeyBits);
  EXPECT_EQ(pte::pkey_of(entry, pte::kMpkPkeyBits), 0xFu);
  EXPECT_EQ(bits(entry, 63, 58), 0u);  // upper reserved bits untouched
}

TEST(Pte, WithPkeyPreservesRest) {
  u64 entry = pte::make(0x777, pte::kV | pte::kR | pte::kD, 5);
  entry = pte::with_pkey(entry, 900);
  EXPECT_EQ(pte::pkey_of(entry), 900u);
  EXPECT_EQ(pte::ppn_of(entry), 0x777u);
  EXPECT_TRUE((entry & pte::kD) != 0);
}

TEST(Pte, ReservedComboDetected) {
  EXPECT_TRUE(pte::reserved_perm_combo(pte::kV | pte::kW));
  EXPECT_FALSE(pte::reserved_perm_combo(pte::kV | pte::kR | pte::kW));
}

TEST(Sv39, VpnSlices) {
  const u64 vaddr = (u64{0x1A} << 30) | (u64{0x2B} << 21) | (u64{0x3C} << 12) |
                    0x123;
  EXPECT_EQ(sv39::vpn_slice(vaddr, 2), 0x1Au);
  EXPECT_EQ(sv39::vpn_slice(vaddr, 1), 0x2Bu);
  EXPECT_EQ(sv39::vpn_slice(vaddr, 0), 0x3Cu);
  EXPECT_EQ(sv39::page_offset(vaddr), 0x123u);
}

TEST(Sv39, Canonical) {
  EXPECT_TRUE(sv39::canonical(0));
  EXPECT_TRUE(sv39::canonical((u64{1} << 38) - 1));
  EXPECT_FALSE(sv39::canonical(u64{1} << 38));  // bit 38 set, upper clear
  EXPECT_TRUE(sv39::canonical(~u64{0}));        // all-ones is canonical
}

// ---------------------------------------------------------------------------
// Page-table walker.
// ---------------------------------------------------------------------------

class WalkerTest : public ::testing::Test {
 protected:
  WalkerTest() : mem_(16 << 20) {}

  // Installs a 3-level mapping vaddr -> ppn with `flags`.
  void map(u64 vaddr, u64 ppn, u64 flags, u32 pkey = 0) {
    u64 table = root_;
    for (int level = 2; level >= 1; --level) {
      const u64 slot = (table << kPageShift) +
                       sv39::vpn_slice(vaddr, static_cast<unsigned>(level)) * 8;
      u64 entry = mem_.read_u64(slot);
      if (!pte::valid(entry)) {
        entry = pte::make(next_table_++, pte::kV);
        mem_.write_u64(slot, entry);
      }
      table = pte::ppn_of(entry);
    }
    const u64 slot =
        (table << kPageShift) + sv39::vpn_slice(vaddr, 0) * 8;
    mem_.write_u64(slot, pte::make(ppn, flags, pkey));
  }

  PhysMem mem_;
  u64 root_ = 1;
  u64 next_table_ = 2;
};

TEST_F(WalkerTest, TranslatesMappedPage) {
  map(0x4000'1000, 0x99, pte::kV | pte::kR | pte::kW | pte::kU, 77);
  const auto r = walk(mem_, root_, 0x4000'1234, Access::kLoad);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.ppn, 0x99u);
  EXPECT_EQ(pte::pkey_of(r.pte), 77u);
  EXPECT_EQ(r.level, 0u);
  EXPECT_EQ(r.accesses, 3u);
}

TEST_F(WalkerTest, FaultsOnUnmapped) {
  EXPECT_FALSE(walk(mem_, root_, 0x5000'0000, Access::kLoad).ok);
}

TEST_F(WalkerTest, FaultsOnNonCanonical) {
  EXPECT_FALSE(walk(mem_, root_, u64{1} << 38, Access::kLoad).ok);
}

TEST_F(WalkerTest, FaultsOnReservedCombo) {
  map(0x4000'2000, 0x9A, pte::kV | pte::kW | pte::kU);  // W without R
  EXPECT_FALSE(walk(mem_, root_, 0x4000'2000, Access::kLoad).ok);
}

TEST_F(WalkerTest, UpdatesAccessedAndDirtyBits) {
  map(0x4000'3000, 0x9B, pte::kV | pte::kR | pte::kW | pte::kU);
  auto r = walk(mem_, root_, 0x4000'3000, Access::kLoad, true);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE((r.pte & pte::kA) != 0);
  EXPECT_TRUE((r.pte & pte::kD) == 0);
  r = walk(mem_, root_, 0x4000'3000, Access::kStore, true);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE((r.pte & pte::kD) != 0);
  // The update is persistent in memory.
  EXPECT_TRUE((mem_.read_u64(r.pte_addr) & pte::kD) != 0);
}

TEST_F(WalkerTest, ConstWalkLeavesAdAlone) {
  map(0x4000'4000, 0x9C, pte::kV | pte::kR | pte::kU);
  const auto r =
      walk(static_cast<const PhysMem&>(mem_), root_, 0x4000'4000,
           Access::kLoad);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE((mem_.read_u64(r.pte_addr) & pte::kA) == 0);
}

TEST_F(WalkerTest, MegapageResolvesTo4kGranularity) {
  // Install a 2 MiB leaf at level 1 directly.
  const u64 vaddr = 0x6000'0000;
  u64 table = root_;
  const u64 slot2 =
      (table << kPageShift) + sv39::vpn_slice(vaddr, 2) * 8;
  mem_.write_u64(slot2, pte::make(next_table_, pte::kV));
  const u64 slot1 = (next_table_ << kPageShift) +
                    sv39::vpn_slice(vaddr, 1) * 8;
  // Aligned superpage PPN (low 9 bits zero).
  mem_.write_u64(slot1,
                 pte::make(0x200, pte::kV | pte::kR | pte::kU, 0));
  const auto r = walk(mem_, root_, vaddr + 5 * kPageSize + 0x10,
                      Access::kLoad);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.level, 1u);
  EXPECT_EQ(r.ppn, 0x205u);  // base + vpn[0] splice
  EXPECT_EQ(r.accesses, 2u);
}

TEST_F(WalkerTest, MisalignedSuperpageFaults) {
  const u64 vaddr = 0x7000'0000;
  const u64 slot2 =
      (root_ << kPageShift) + sv39::vpn_slice(vaddr, 2) * 8;
  mem_.write_u64(slot2, pte::make(next_table_, pte::kV));
  const u64 slot1 = (next_table_ << kPageShift) +
                    sv39::vpn_slice(vaddr, 1) * 8;
  mem_.write_u64(slot1, pte::make(0x201, pte::kV | pte::kR | pte::kU));
  EXPECT_FALSE(walk(mem_, root_, vaddr, Access::kLoad).ok);
}

TEST_F(WalkerTest, NonLeafWithAdBitsFaults) {
  const u64 vaddr = 0x8000'0000;
  const u64 slot2 =
      (root_ << kPageShift) + sv39::vpn_slice(vaddr, 2) * 8;
  mem_.write_u64(slot2, pte::make(next_table_, pte::kV | pte::kA));
  EXPECT_FALSE(walk(mem_, root_, vaddr, Access::kLoad).ok);
}

// ---------------------------------------------------------------------------
// TLB.
// ---------------------------------------------------------------------------

TlbEntry entry_for(u64 vpn, u16 pkey = 0) {
  TlbEntry e;
  e.vpn = vpn;
  e.ppn = vpn + 100;
  e.r = e.w = e.user = true;
  e.pkey = pkey;
  return e;
}

TEST(Tlb, MissThenHit) {
  Tlb tlb(4);
  EXPECT_FALSE(tlb.lookup(1).has_value());
  tlb.insert(entry_for(1, 42));
  const auto hit = tlb.lookup(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->pkey, 42);
  EXPECT_EQ(tlb.stats().hits, 1u);
  EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(Tlb, InsertReplacesSameVpn) {
  Tlb tlb(4);
  tlb.insert(entry_for(7, 1));
  tlb.insert(entry_for(7, 2));
  EXPECT_EQ(tlb.valid_count(), 1u);
  EXPECT_EQ(tlb.peek(7)->pkey, 2);
}

TEST(Tlb, EvictsRoundRobinWhenFull) {
  Tlb tlb(2);
  tlb.insert(entry_for(1));
  tlb.insert(entry_for(2));
  tlb.insert(entry_for(3));  // evicts slot 0 (vpn 1)
  EXPECT_FALSE(tlb.peek(1).has_value());
  EXPECT_TRUE(tlb.peek(2).has_value());
  EXPECT_TRUE(tlb.peek(3).has_value());
  EXPECT_EQ(tlb.stats().evictions, 1u);
}

TEST(Tlb, GlobalFlushInvalidatesEverything) {
  Tlb tlb(8);
  for (u64 v = 0; v < 8; ++v) tlb.insert(entry_for(v));
  tlb.flush();
  EXPECT_EQ(tlb.valid_count(), 0u);
  EXPECT_EQ(tlb.stats().flushes, 1u);
}

TEST(Tlb, SingleVpnFlush) {
  Tlb tlb(8);
  tlb.insert(entry_for(5));
  tlb.insert(entry_for(6));
  tlb.flush_vpn(5);
  EXPECT_FALSE(tlb.peek(5).has_value());
  EXPECT_TRUE(tlb.peek(6).has_value());
}

TEST(Tlb, PropertyNeverExceedsCapacityAndFindsRecent) {
  Rng rng(11);
  Tlb tlb(16);
  for (int i = 0; i < 5000; ++i) {
    const u64 vpn = rng.below(64);
    tlb.insert(entry_for(vpn));
    EXPECT_LE(tlb.valid_count(), 16u);
    EXPECT_TRUE(tlb.peek(vpn).has_value());  // just-inserted always present
    if (rng.chance(0.05)) tlb.flush();
  }
}

}  // namespace
}  // namespace sealpk::mem
