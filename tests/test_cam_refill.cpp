// End-to-end PK-CAM refill: with more concurrently sealed domains than CAM
// entries (17 > 16), legal WRPKRs inside the permissible range keep
// working — each capacity miss traps to the kernel, which refills the CAM
// from its per-process seal table and re-executes the instruction
// (paper §IV, footnote 6).
#include <gtest/gtest.h>

#include "guest_test_util.h"

namespace sealpk {
namespace {

using isa::Function;
using isa::Label;
using isa::Program;
using namespace isa;

constexpr i64 kSealedKeys = 17;  // one more than the CAM holds
constexpr i64 kRounds = 4;

Program make_thrash_program() {
  Program prog;
  rt::add_crt0(prog);
  Function& f = prog.add_function("main");
  f.addi(sp, sp, -16);
  f.sd(ra, 0, sp);
  // Allocate kSealedKeys keys (they come out as 1..17).
  for (i64 i = 0; i < kSealedKeys; ++i) {
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
  }
  // Latch the trusted range once (first call runs unsealed), then seal
  // every key to that same range.
  f.call("trusted_touch_all");
  // (rc is not checked per call: a failed seal would leave the key
  // unsealed, produce zero CAM refills, and fail the assertions below.)
  for (i64 k = 1; k <= kSealedKeys; ++k) {
    f.li(a0, k);
    rt::syscall(f, os::sys::kPkeyPermSeal);
  }
  // Now hammer the sealed keys from inside the range: every pass over 17
  // keys must evict at least one CAM entry, so later passes keep missing
  // and refilling — yet no violation may occur.
  for (i64 r = 0; r < kRounds; ++r) f.call("trusted_touch_all");
  f.ld(ra, 0, sp);
  f.addi(sp, sp, 16);
  f.li(a0, 0);
  f.ret();

  // The trusted function: seal.start, a WRPKR per key, seal.end.
  Function& t = prog.add_function("trusted_touch_all");
  t.seal_start(0);
  const Label loop = t.new_label(), done = t.new_label();
  t.li(t0, 1);  // key
  t.bind(loop);
  t.li(t1, kSealedKeys);
  t.blt(t1, t0, done);
  t.rdpkr(t2, t0);
  t.wrpkr(t0, t2);  // identity rewrite: legal, in range
  t.addi(t0, t0, 1);
  t.j(loop);
  t.bind(done);
  t.seal_end(0);
  t.ret();
  return prog;
}

TEST(CamRefill, SeventeenSealedDomainsThrashButNeverViolate) {
  sim::Machine machine{sim::MachineConfig{}};
  const int pid = machine.load(make_thrash_program().link());
  const auto outcome = machine.run(50'000'000);
  ASSERT_TRUE(outcome.completed);
  EXPECT_EQ(machine.exit_code(pid), 0);
  EXPECT_TRUE(machine.kernel().faults().empty());
  const auto& stats = machine.kernel().stats();
  // 17 keys round-robin over a 16-entry FIFO CAM: essentially every use
  // after the first fill misses.
  EXPECT_GT(stats.cam_refills,
            static_cast<u64>(kRounds * kSealedKeys / 2));
  EXPECT_EQ(stats.seal_violations, 0u);
  // The hardware CAM stayed at capacity.
  EXPECT_EQ(machine.hart().seal_unit().cam_valid_count(),
            hw::kPkCamEntries);
}

TEST(CamRefill, RefillsAreChargedToTheCycleBudget) {
  // The same program with 16 keys (no thrash) must be cheaper per round.
  sim::Machine machine{sim::MachineConfig{}};
  machine.load(make_thrash_program().link());
  machine.run(50'000'000);
  const u64 refills = machine.kernel().stats().cam_refills;
  const u64 expected_cost =
      refills * machine.hart().timing().cam_refill_handler_cycles;
  EXPECT_GT(machine.hart().cycles(), expected_cost);  // cost was charged
  EXPECT_GT(refills, 0u);
}

}  // namespace
}  // namespace sealpk
