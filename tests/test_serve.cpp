// Tests for the in-process plugin server (src/serve): clean-run behaviour,
// the full red-team suite (every attack caught by its declared catcher,
// monitor untouched, server still serving), graceful degradation under
// chaos, ledger determinism across host thread counts, and bit-identical
// snapshot/resume of the guest workload.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/engine.h"
#include "obs/event.h"
#include "serve/program.h"
#include "serve/redteam.h"
#include "serve/server.h"
#include "sim/machine.h"
#include "snapshot/snapshot.h"

namespace sealpk {
namespace {

using serve::Disposition;
using serve::ServeConfig;
using serve::ServeResult;
using serve::redteam::AttackKind;
using serve::redteam::Catcher;

ServeConfig small_config() {
  ServeConfig cfg;
  cfg.primaries = 2;
  cfg.requests = 10;
  cfg.rounds = 4;
  cfg.seed = 11;
  return cfg;
}

u64 disposition_total(const ServeResult& r) {
  return r.served + r.retried + r.shed + r.quarantined;
}

// ---------------------------------------------------------------------------
// Clean runs
// ---------------------------------------------------------------------------

TEST(Serve, CleanRunServesEveryRequest) {
  ServeConfig cfg = small_config();
  const ServeResult r = serve::run_server(cfg);

  EXPECT_TRUE(r.config_ok);
  EXPECT_TRUE(r.monitor_alive);
  EXPECT_TRUE(r.canary_intact);
  EXPECT_EQ(r.served, cfg.requests);
  EXPECT_EQ(r.retried, 0u);
  EXPECT_EQ(r.shed, 0u);
  EXPECT_EQ(r.quarantined, 0u);
  EXPECT_EQ(r.epochs, 1u);
  // Two domain crossings (monitor->handler, handler->monitor) per request.
  EXPECT_EQ(r.crossings, 2ull * cfg.requests);
  EXPECT_GT(r.crossings_per_sec(), 0.0);
  EXPECT_GT(r.instructions, 0u);

  ASSERT_EQ(r.records.size(), cfg.requests);
  for (const serve::RequestRecord& rec : r.records) {
    EXPECT_EQ(rec.disposition, Disposition::kServed);
    EXPECT_EQ(rec.attempts, 0u);
    EXPECT_EQ(rec.served_by, rec.home_slot);
    EXPECT_GT(rec.latency, 0u);
  }
  // A clean run produces no attack evidence of any kind.
  EXPECT_FALSE(r.evidence.verifier_refused);
  EXPECT_EQ(r.evidence.seal_violations, 0u);
  EXPECT_EQ(r.evidence.monitor_denials, 0u);
  EXPECT_EQ(r.evidence.gate_scrubs, 0u);
  EXPECT_EQ(r.evidence.budget_timeouts, 0u);
  EXPECT_EQ(r.evidence.probe_successes, 0u);
  EXPECT_EQ(r.evidence.vault_probe_denials, 0u);
  EXPECT_EQ(r.evidence.unseal_denials, 0u);
  EXPECT_EQ(r.evidence.vault_leaks, 0u);
}

TEST(Serve, ChecksumModelMatchesGuest) {
  // The clean run only reports kServed when the guest checksum matches the
  // host model, so a larger sweep across every slot exercises the model.
  ServeConfig cfg;
  cfg.primaries = 3;
  cfg.requests = 24;
  cfg.rounds = 8;
  cfg.seed = 1234567;
  const ServeResult r = serve::run_server(cfg);
  EXPECT_EQ(r.served, cfg.requests);
  std::set<u32> slots_used;
  for (const serve::RequestRecord& rec : r.records)
    slots_used.insert(rec.served_by);
  // Round-robin dispatch touches every primary slot.
  EXPECT_EQ(slots_used.size(), cfg.primaries);
}

TEST(Serve, LatenciesScaleWithRounds) {
  ServeConfig light = small_config();
  light.rounds = 2;
  ServeConfig heavy = small_config();
  heavy.rounds = 40;
  const ServeResult a = serve::run_server(light);
  const ServeResult b = serve::run_server(heavy);
  ASSERT_EQ(a.served, light.requests);
  ASSERT_EQ(b.served, heavy.requests);
  EXPECT_GT(b.records[0].latency, a.records[0].latency);
}

TEST(Serve, TraceCarriesGateAndDispositionEvents) {
  ServeConfig cfg = small_config();
  cfg.trace = true;
  const ServeResult r = serve::run_server(cfg);
  ASSERT_EQ(r.served, cfg.requests);
  u64 enters = 0, exits = 0;
  for (const obs::Event& e : r.trace.events) {
    if (e.kind == obs::EventKind::kGateEnter) ++enters;
    if (e.kind == obs::EventKind::kGateExit) ++exits;
  }
  EXPECT_EQ(enters, cfg.requests);
  EXPECT_EQ(exits, cfg.requests);
  // The host mirrors every final disposition onto the bus — the span
  // builder needs the edge to close request spans.
  u64 dispositions = 0;
  for (const obs::Event& e : r.trace.events) {
    if (e.kind == obs::EventKind::kRequestDisposition) ++dispositions;
  }
  EXPECT_EQ(dispositions, cfg.requests);
}

TEST(Serve, JsonReportCarriesLatencyQuantiles) {
  ServeConfig cfg = small_config();
  const ServeResult r = serve::run_server(cfg);
  std::ostringstream os;
  serve::write_result_json(os, cfg, r);
  const std::string json = os.str();
  // The latency block aggregates served-request latencies through the
  // deterministic histogram; a clean run has count == requests and p50
  // equal to the uniform per-request latency.
  EXPECT_NE(json.find("\"latency\": {\"count\": " +
                      std::to_string(cfg.requests)),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"p99\": " + std::to_string(r.records[0].latency)),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Red team: every attack must be caught by its declared catcher while the
// monitor survives and the server keeps serving.
// ---------------------------------------------------------------------------

ServeResult run_attack(AttackKind kind) {
  ServeConfig cfg = small_config();
  cfg.attack = kind;
  return serve::run_server(cfg);
}

TEST(ServeRedTeam, EveryAttackCaughtByDeclaredCatcher) {
  for (const serve::redteam::Attack& atk : serve::redteam::attacks()) {
    SCOPED_TRACE(atk.name);
    const ServeResult r = run_attack(atk.kind);
    ASSERT_NE(r.attack, nullptr);
    EXPECT_EQ(r.attack->kind, atk.kind);
    // The declared catcher fired.
    EXPECT_TRUE(r.attack_caught)
        << atk.name << " not caught by " << catcher_name(atk.catcher);
    EXPECT_TRUE(caught_by(atk.catcher, r.evidence));
    // The attack never reached monitor memory.
    EXPECT_TRUE(r.monitor_alive);
    EXPECT_TRUE(r.canary_intact);
    EXPECT_EQ(r.evidence.probe_successes, 0u);
    // The server kept serving: the replica absorbs slot 0's load.
    EXPECT_GT(r.served + r.retried, 0u);
    // Every request ended in exactly one canonical disposition.
    EXPECT_EQ(disposition_total(r), r.records.size());
  }
}

TEST(ServeRedTeam, GadgetWrpkrRefusedByAdmissionGate) {
  const ServeResult r = run_attack(AttackKind::kGadgetWrpkr);
  EXPECT_TRUE(r.evidence.verifier_refused);
  EXPECT_GT(r.evidence.gate_escape_findings, 0u);
  // Load refusal quarantines the hostile slot immediately; its requests are
  // retried on the replica, so nothing is lost.
  ASSERT_FALSE(r.slot_quarantined.empty());
  EXPECT_TRUE(r.slot_quarantined[0]);
  EXPECT_EQ(r.served + r.retried, r.records.size());
  EXPECT_EQ(r.shed, 0u);
}

TEST(ServeRedTeam, RogueWrpkrTrippedBySealUnit) {
  const ServeResult r = run_attack(AttackKind::kRogueWrpkr);
  // The admission gate is deliberately bypassed for this one (models JIT'd
  // code); the hardware seal check must deliver the violation instead.
  EXPECT_FALSE(r.evidence.verifier_refused);
  EXPECT_GT(r.evidence.seal_violations, 0u);
  EXPECT_EQ(r.served + r.retried + r.quarantined, r.records.size());
  // Retries land on the benign replica.
  EXPECT_GT(r.retried, 0u);
}

TEST(ServeRedTeam, MonitorStoresNeverLand) {
  for (AttackKind kind :
       {AttackKind::kMonitorTamper, AttackKind::kStackTamper}) {
    SCOPED_TRACE(static_cast<int>(kind));
    const ServeResult r = run_attack(kind);
    EXPECT_GT(r.evidence.monitor_denials, 0u);
    EXPECT_TRUE(r.canary_intact);
    EXPECT_TRUE(r.monitor_alive);
  }
}

TEST(ServeRedTeam, GateExitHijackScrubbedByMonotonicCheck) {
  const ServeResult r = run_attack(AttackKind::kGateExitHijack);
  EXPECT_GT(r.evidence.gate_scrubs, 0u);
  // The scrub restores the closed row before the monitor resumes, so the
  // monitor's own loads keep working.
  EXPECT_TRUE(r.monitor_alive);
}

TEST(ServeRedTeam, InterruptedGateProbesAllDenied) {
  const ServeResult r = run_attack(AttackKind::kInterruptedGate);
  EXPECT_GT(r.evidence.probe_attempts, 0u);
  EXPECT_EQ(r.evidence.probe_successes, 0u);
}

TEST(ServeRedTeam, RunawayHandlerKilledByBudgetAndQuarantined) {
  const ServeResult r = run_attack(AttackKind::kRunawayHandler);
  EXPECT_GT(r.evidence.budget_timeouts, 0u);
  ASSERT_FALSE(r.slot_quarantined.empty());
  EXPECT_TRUE(r.slot_quarantined[0]);
  EXPECT_TRUE(r.monitor_alive);
  // Requests homed on the runaway slot still complete via the replica.
  EXPECT_GT(r.retried, 0u);
}

TEST(ServeRedTeam, PkrGlitchHandledByAuditor) {
  const ServeResult r = run_attack(AttackKind::kPkrGlitch);
  EXPECT_GT(r.evidence.faults_injected, 0u);
  EXPECT_GT(r.evidence.faults_recovered_or_killed, 0u);
  EXPECT_TRUE(r.monitor_alive);
}

TEST(ServeRedTeam, VaultProbeLoadsAllDenied) {
  const ServeResult r = run_attack(AttackKind::kVaultProbe);
  // Every load against the write-only vault was issued and denied: the
  // sentinel survived in the handler's register each time, and each denial
  // left a pkey-fault record naming the vault key.
  EXPECT_GT(r.evidence.probe_attempts, 0u);
  EXPECT_EQ(r.evidence.probe_successes, 0u);
  EXPECT_GT(r.evidence.vault_probe_denials, 0u);
  EXPECT_EQ(r.evidence.vault_leaks, 0u);
  EXPECT_TRUE(r.monitor_alive);
  // The denied probes poison the attempt; retries land on the replica.
  EXPECT_GT(r.retried, 0u);
}

TEST(ServeRedTeam, ForgedUnsealRefusedAndNotarised) {
  const ServeResult r = run_attack(AttackKind::kForgedUnseal);
  EXPECT_GT(r.evidence.unseal_denials, 0u);
  EXPECT_EQ(r.evidence.vault_leaks, 0u);
  // The ownership refusal is an error return, not a delivered fault: the
  // request itself still serves while the kernel notarises each denial.
  EXPECT_EQ(r.served, r.records.size());
  EXPECT_TRUE(r.monitor_alive);
  EXPECT_TRUE(r.canary_intact);
}

TEST(ServeRedTeam, RegistryIsCompleteAndNamed) {
  const auto& reg = serve::redteam::attacks();
  EXPECT_EQ(reg.size(), 11u);
  std::set<std::string> names;
  for (const auto& atk : reg) {
    EXPECT_NE(atk.kind, AttackKind::kNone);
    EXPECT_STRNE(atk.name, "");
    EXPECT_STRNE(atk.description, "");
    names.insert(atk.name);
    EXPECT_EQ(serve::redteam::find_attack(atk.name), &atk);
  }
  EXPECT_EQ(names.size(), reg.size());
  EXPECT_EQ(serve::redteam::find_attack("no-such-attack"), nullptr);
}

// ---------------------------------------------------------------------------
// Graceful degradation + determinism
// ---------------------------------------------------------------------------

TEST(ServeChaos, ChaosRunCompletesWithCanonicalLedger) {
  ServeConfig cfg = small_config();
  cfg.chaos.enabled = true;
  cfg.chaos.seed = 77;
  const ServeResult r = serve::run_server(cfg);
  EXPECT_TRUE(r.monitor_alive);
  EXPECT_EQ(disposition_total(r), r.records.size());
  const std::string ledger = serve::canonical_ledger(r);
  EXPECT_FALSE(ledger.empty());
  EXPECT_EQ(ledger.back(), '\n');
  // Chaos is seeded: the same config reproduces the same ledger bytes.
  const ServeResult again = serve::run_server(cfg);
  EXPECT_EQ(ledger, serve::canonical_ledger(again));
}

TEST(ServeChaos, AttackUnderChaosStillCaughtAndDeterministic) {
  ServeConfig cfg = small_config();
  cfg.attack = AttackKind::kGateExitHijack;
  cfg.chaos.enabled = true;
  cfg.chaos.seed = 3;
  const ServeResult a = serve::run_server(cfg);
  const ServeResult b = serve::run_server(cfg);
  EXPECT_TRUE(a.monitor_alive);
  EXPECT_TRUE(a.attack_caught);
  EXPECT_EQ(serve::canonical_ledger(a), serve::canonical_ledger(b));
}

TEST(ServeDeterminism, LedgerByteIdenticalAcrossHostThreadCounts) {
  // The scenario sweep the CLI runs under --threads: the ledger for each
  // scenario must not depend on how many host threads ran siblings.
  std::vector<ServeConfig> scenarios;
  scenarios.push_back(small_config());
  for (const auto& atk : serve::redteam::attacks()) {
    ServeConfig cfg = small_config();
    cfg.attack = atk.kind;
    scenarios.push_back(cfg);
  }
  auto sweep = [&](u32 threads) {
    std::vector<std::string> ledgers(scenarios.size());
    fleet::run_indexed(scenarios.size(), threads, [&](size_t i, unsigned) {
      ledgers[i] = serve::canonical_ledger(serve::run_server(scenarios[i]));
    });
    return ledgers;
  };
  const std::vector<std::string> one = sweep(1);
  const std::vector<std::string> many = sweep(4);
  ASSERT_EQ(one.size(), many.size());
  for (size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i], many[i]) << "scenario " << i;
  }
}

TEST(ServeDeterminism, JsonReportIsStable) {
  ServeConfig cfg = small_config();
  cfg.attack = AttackKind::kRunawayHandler;
  const ServeResult r = serve::run_server(cfg);
  std::ostringstream a, b;
  serve::write_result_json(a, cfg, r);
  serve::write_result_json(b, cfg, serve::run_server(cfg));
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"schema\": \"sealpk-serve-v1\""), std::string::npos);
  EXPECT_NE(a.str().find("\"crossings_per_sec\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Snapshot/resume: the guest workload itself is bit-identical across a
// save/restore boundary (mark log concatenation equals the uninterrupted
// run's mark log).
// ---------------------------------------------------------------------------

std::vector<os::MarkRecord> marks_of(sim::Machine& m) {
  return m.kernel().marks();
}

bool marks_equal(const os::MarkRecord& a, const os::MarkRecord& b) {
  return a.kind == b.kind && a.arg0 == b.arg0 && a.arg1 == b.arg1 &&
         a.pkey == b.pkey && a.tid == b.tid && a.instret == b.instret &&
         a.cycles == b.cycles;
}

TEST(ServeSnapshot, ResumeIsBitIdentical) {
  serve::WorkloadSpec spec;
  spec.primaries = 2;
  spec.rounds = 4;
  spec.seed = 5;
  for (u32 i = 0; i < 8; ++i) spec.requests.push_back({i, i % 2});
  const serve::BuiltServer built = serve::build_server(spec);

  sim::MachineConfig cfg;
  cfg.verify_policy = analysis::LoadVerifyPolicy::kEnforce;
  cfg.verify_options = built.verify_options;

  // Reference: uninterrupted run.
  sim::Machine ref(cfg);
  const int ref_pid = ref.load(built.image);
  ASSERT_GE(ref_pid, 0);
  ASSERT_TRUE(ref.run(50'000'000).completed);
  ASSERT_EQ(ref.exit_code(ref_pid), 0);
  const std::vector<os::MarkRecord> want = marks_of(ref);
  ASSERT_FALSE(want.empty());

  // Interrupted run: stop mid-flight, snapshot, restore into a fresh
  // machine, finish there.
  sim::Machine first(cfg);
  const int pid = first.load(built.image);
  ASSERT_GE(pid, 0);
  ASSERT_FALSE(first.run(ref.hart().instret() / 2).completed);
  const std::vector<os::MarkRecord> head = marks_of(first);
  const std::vector<u8> blob = snapshot::save(first);

  sim::Machine second(snapshot::config_from(blob));
  snapshot::restore(second, blob);
  ASSERT_TRUE(second.run(50'000'000).completed);
  EXPECT_EQ(second.exit_code(pid), 0);
  EXPECT_EQ(second.kernel().reports(), ref.kernel().reports());
  EXPECT_EQ(second.hart().instret(), ref.hart().instret());

  // Marks are runtime-log state (not serialized): the resumed machine logs
  // only the tail, and head + tail must equal the uninterrupted log.
  const std::vector<os::MarkRecord> tail = marks_of(second);
  ASSERT_EQ(head.size() + tail.size(), want.size());
  for (size_t i = 0; i < head.size(); ++i)
    EXPECT_TRUE(marks_equal(head[i], want[i])) << "head mark " << i;
  for (size_t i = 0; i < tail.size(); ++i)
    EXPECT_TRUE(marks_equal(tail[i], want[head.size() + i]))
        << "tail mark " << i;
}

// ---------------------------------------------------------------------------
// Host-side model helpers
// ---------------------------------------------------------------------------

TEST(ServeModel, ChecksumIsDeterministicAndSlotSensitive) {
  EXPECT_EQ(serve::checksum_for(1, 0, 0, 8), serve::checksum_for(1, 0, 0, 8));
  EXPECT_NE(serve::checksum_for(1, 0, 0, 8), serve::checksum_for(1, 0, 1, 8));
  EXPECT_NE(serve::checksum_for(1, 0, 0, 8), serve::checksum_for(1, 1, 0, 8));
  EXPECT_NE(serve::checksum_for(1, 0, 0, 8), serve::checksum_for(2, 0, 0, 8));
  EXPECT_NE(serve::mix64(3), 3u);
}

TEST(ServeModel, DispositionNamesAreCanonical) {
  EXPECT_STREQ(serve::disposition_name(Disposition::kServed), "served");
  EXPECT_STREQ(serve::disposition_name(Disposition::kRetried), "retried");
  EXPECT_STREQ(serve::disposition_name(Disposition::kShed), "shed");
  EXPECT_STREQ(serve::disposition_name(Disposition::kQuarantined),
               "quarantined");
}

}  // namespace
}  // namespace sealpk
