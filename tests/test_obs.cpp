// Observability subsystem tests (src/obs): event blob round-trips and
// damage rejection, ring-buffer capture, metric aggregation reconciled
// against MachineStats, the zero-perturbation contract (tracing on changes
// nothing the guest can see), determinism across host threads and across a
// snapshot save/restore boundary, and the exporters.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "common/check.h"
#include "obs/export.h"
#include "obs/recorder.h"
#include "passes/shadow_stack.h"
#include "sim/machine.h"
#include "sim/stats.h"
#include "snapshot/snapshot.h"
#include "workloads/workload.h"

namespace sealpk {
namespace {

const wl::Workload& workload_named(const char* name) {
  for (const auto& w : wl::all_workloads()) {
    if (std::string(name) == w.name) return w;
  }
  SEALPK_CHECK_MSG(false, "unknown workload " << name);
  std::abort();
}

isa::Image sealed_qsort_image() {
  const wl::Workload& w = workload_named("qsort");
  isa::Program prog = w.build(w.test_scale);
  passes::ShadowStackOptions ss;
  ss.kind = passes::ShadowStackKind::kSealPkWr;
  ss.perm_seal = true;
  passes::apply_shadow_stack(prog, ss);
  return prog.link();
}

obs::TraceConfig traced(u64 sample_interval = 0, u64 ring = 0) {
  obs::TraceConfig t;
  t.enabled = true;
  t.sample_interval = sample_interval;
  t.ring_capacity = ring;
  return t;
}

// --- event / blob encoding --------------------------------------------------

TEST(ObsEvent, Log2BucketBoundaries) {
  EXPECT_EQ(obs::log2_bucket(0), 0u);
  EXPECT_EQ(obs::log2_bucket(1), 0u);
  EXPECT_EQ(obs::log2_bucket(2), 1u);
  EXPECT_EQ(obs::log2_bucket(3), 1u);
  EXPECT_EQ(obs::log2_bucket(4), 2u);
  EXPECT_EQ(obs::log2_bucket(1024), 10u);
  EXPECT_EQ(obs::log2_bucket(~0ULL), obs::kHistBuckets - 1);
}

TEST(ObsEvent, KindNamesAreDistinct) {
  for (u32 k = 0; k < obs::kEventKindCount; ++k) {
    const char* name = obs::event_kind_name(static_cast<obs::EventKind>(k));
    ASSERT_NE(name, nullptr);
    for (u32 j = 0; j < k; ++j) {
      EXPECT_STRNE(name,
                   obs::event_kind_name(static_cast<obs::EventKind>(j)));
    }
  }
}

TEST(ObsBlob, SerializeParseRoundTrip) {
  obs::Trace t;
  t.ring_capacity = 16;
  t.sample_interval = 64;
  t.dropped = 3;
  t.symbols.push_back({1, "main", 0x1000, 0x1100});
  t.symbols.push_back({2, "helper", 0x2000, 0x2040});
  obs::Event e;
  e.kind = obs::EventKind::kWrpkr;
  e.pid = 1;
  e.tid = 2;
  e.pkey = 5;
  e.instret = 1234;
  e.cycles = 5678;
  e.arg0 = 0xdead;
  e.arg1 = 0xbeef;
  t.events.push_back(e);
  e.kind = obs::EventKind::kSample;
  e.arg0 = 0x1010;
  t.events.push_back(e);

  const std::vector<u8> blob = obs::serialize(t);
  const obs::Trace back = obs::parse(blob);
  EXPECT_EQ(back.ring_capacity, t.ring_capacity);
  EXPECT_EQ(back.sample_interval, t.sample_interval);
  EXPECT_EQ(back.dropped, t.dropped);
  EXPECT_EQ(back.symbols, t.symbols);
  EXPECT_EQ(back.events, t.events);
}

TEST(ObsBlob, RejectsDamage) {
  obs::Trace t;
  obs::Event e;
  e.kind = obs::EventKind::kTrap;
  t.events.push_back(e);
  const std::vector<u8> blob = obs::serialize(t);

  std::vector<u8> corrupt = blob;
  corrupt[corrupt.size() - 1] ^= 0xFF;  // payload byte: checksum mismatch
  EXPECT_THROW(obs::parse(corrupt), CheckError);

  std::vector<u8> truncated(blob.begin(), blob.end() - 4);
  EXPECT_THROW(obs::parse(truncated), CheckError);

  std::vector<u8> bad_magic = blob;
  bad_magic[0] = 'X';
  EXPECT_THROW(obs::parse(bad_magic), CheckError);

  std::vector<u8> bad_version = blob;
  bad_version[8] ^= 0xFF;  // version field follows the 8-byte magic
  EXPECT_THROW(obs::parse(bad_version), CheckError);
}

TEST(ObsRecorder, RingCapacityEvictsOldestAndCountsDrops) {
  obs::Recorder rec(traced(0, /*ring=*/4));
  for (u64 i = 0; i < 10; ++i) {
    rec.emit(obs::EventKind::kTrap, i, i, obs::kNoPkey, i, 0);
  }
  EXPECT_EQ(rec.events().size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  EXPECT_EQ(rec.events().front().arg0, 6u);  // oldest retained
  EXPECT_EQ(rec.events().back().arg0, 9u);
  // Metrics still aggregated every event ever emitted.
  EXPECT_EQ(rec.metrics().events(), 10u);
  EXPECT_EQ(rec.metrics().traps(), 10u);
}

// --- machine integration ----------------------------------------------------

TEST(ObsMachine, MetricsReconcileWithMachineStats) {
  sim::MachineConfig config;
  config.trace = traced();
  sim::Machine machine(config);
  ASSERT_GT(machine.load(sealed_qsort_image()), 0);
  ASSERT_TRUE(machine.run().completed);

  const sim::MachineStats stats = sim::collect_stats(machine);
  const obs::TraceSummary s =
      machine.recorder()->summary(machine.hart().cycles());
  EXPECT_EQ(s.wrpkr, stats.wrpkr);
  EXPECT_EQ(s.rdpkr, stats.rdpkr);
  EXPECT_EQ(s.denials, stats.pkey_denials);
  EXPECT_EQ(s.seal_violations, stats.seal_violations);
  EXPECT_EQ(s.cam_refills, stats.cam_refills);
  EXPECT_EQ(s.traps, stats.traps);
  EXPECT_EQ(s.syscalls, stats.syscalls);
  EXPECT_EQ(s.context_switches, stats.context_switches);
  EXPECT_EQ(machine.recorder()->metrics().page_faults(), stats.page_faults);
  EXPECT_GT(s.wrpkr, 0u);  // the sealed shadow stack really used WRPKR
  EXPECT_GT(s.events, 0u);
  EXPECT_EQ(s.dropped, 0u);
}

TEST(ObsMachine, EnabledTracingDoesNotPerturbTheRun) {
  const isa::Image image = sealed_qsort_image();

  sim::Machine plain{sim::MachineConfig{}};
  const int pid_plain = plain.load(image);
  const sim::RunOutcome a = plain.run();

  sim::MachineConfig config;
  config.trace = traced(/*sample_interval=*/64);
  sim::Machine watched(config);
  const int pid_watched = watched.load(image);
  const sim::RunOutcome b = watched.run();

  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(plain.exit_code(pid_plain), watched.exit_code(pid_watched));
  EXPECT_EQ(plain.kernel().console(), watched.kernel().console());
  EXPECT_EQ(plain.kernel().reports(), watched.kernel().reports());
  EXPECT_EQ(snapshot::save(plain), snapshot::save(watched));
}

TEST(ObsMachine, BlobByteIdenticalAcrossHostThreads) {
  const isa::Image image = sealed_qsort_image();
  (void)wl::all_workloads();  // warm the registry outside the racing threads

  auto record = [&image]() {
    sim::MachineConfig config;
    config.trace = traced(/*sample_interval=*/256);
    sim::Machine machine(config);
    machine.load(image);
    machine.run();
    return machine.recorder()->serialize_blob();
  };

  const std::vector<u8> reference = record();
  std::vector<std::vector<u8>> blobs(4);
  std::vector<std::thread> pool;
  for (auto& blob : blobs) {
    pool.emplace_back([&blob, &record]() { blob = record(); });
  }
  for (auto& t : pool) t.join();
  for (const auto& blob : blobs) EXPECT_EQ(blob, reference);
}

TEST(ObsMachine, EventStreamConcatenatesAcrossSnapshotBoundary) {
  const isa::Image image = sealed_qsort_image();
  sim::MachineConfig config;
  config.trace = traced(/*sample_interval=*/512);

  // Reference: one uninterrupted traced run.
  sim::Machine straight(config);
  straight.load(image);
  ASSERT_TRUE(straight.run().completed);
  const auto& full = straight.recorder()->events();

  // Candidate: same run torn down at instret 20'000 and resumed from the
  // snapshot in a fresh traced machine. The snapshot does not carry trace
  // state; the resumed recorder starts empty and its stream must continue
  // exactly where part one stopped (pid/tid stamps and sample points
  // included, since samples fire at absolute instret multiples).
  sim::Machine first(config);
  first.load(image);
  first.run(20'000);
  const std::vector<obs::Event> part1(first.recorder()->events().begin(),
                                      first.recorder()->events().end());
  const std::vector<u8> mid = snapshot::save(first);

  sim::MachineConfig resumed_config = snapshot::config_from(mid);
  resumed_config.trace = config.trace;
  sim::Machine resumed(resumed_config);
  snapshot::restore(resumed, mid);
  ASSERT_TRUE(resumed.run().completed);
  const auto& part2 = resumed.recorder()->events();

  ASSERT_EQ(part1.size() + part2.size(), full.size());
  for (size_t i = 0; i < part1.size(); ++i) {
    ASSERT_EQ(part1[i], full[i]) << "event " << i << " diverged pre-snapshot";
  }
  for (size_t i = 0; i < part2.size(); ++i) {
    ASSERT_EQ(part2[i], full[part1.size() + i])
        << "event " << i << " diverged post-restore";
  }
}

// --- exporters --------------------------------------------------------------

// One traced run shared by the exporter checks.
obs::Trace recorded_trace() {
  sim::MachineConfig config;
  config.trace = traced(/*sample_interval=*/256);
  sim::Machine machine(config);
  machine.load(sealed_qsort_image());
  SEALPK_CHECK(machine.run().completed);
  return machine.recorder()->trace();
}

TEST(ObsExport, PerfettoJsonIsStructurallySound) {
  const obs::Trace trace = recorded_trace();
  std::ostringstream os;
  obs::write_perfetto_json(trace, os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"pkey domain\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // domain slices
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // page counters
  // Balanced braces — cheap structural sanity without a parser (brackets
  // can legitimately appear unmatched inside detail strings).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ObsExport, CollapsedStacksNameGuestFunctions) {
  const obs::Trace trace = recorded_trace();
  std::ostringstream os;
  obs::write_collapsed(trace, os);
  const std::string folded = os.str();
  EXPECT_NE(folded.find("guest1;quicksort "), std::string::npos);
  EXPECT_EQ(folded.find("[unknown"), std::string::npos);
}

TEST(ObsExport, ReportAndTimelineCoverTheRun) {
  const obs::Trace trace = recorded_trace();
  const obs::Metrics m = obs::compute_metrics(trace);
  EXPECT_EQ(m.events(), trace.events.size());

  std::ostringstream report;
  obs::write_report(trace, report);
  EXPECT_NE(report.str().find("per-pkey activity"), std::string::npos);
  EXPECT_NE(report.str().find("hottest functions"), std::string::npos);

  std::ostringstream timeline;
  obs::write_timeline(trace, timeline);
  const std::string text = timeline.str();
  const size_t lines =
      static_cast<size_t>(std::count(text.begin(), text.end(), '\n'));
  EXPECT_EQ(lines, trace.events.size());
}

TEST(ObsExport, DiffReportsFirstDivergence) {
  const obs::Trace a = recorded_trace();
  EXPECT_EQ(obs::diff_traces(a, a), "");

  obs::Trace b = a;
  b.events[b.events.size() / 2].arg0 ^= 1;
  const std::string delta = obs::diff_traces(a, b);
  EXPECT_NE(delta, "");
  EXPECT_NE(delta.find("event"), std::string::npos);

  obs::Trace c = a;
  c.events.pop_back();
  EXPECT_NE(obs::diff_traces(a, c), "");
}

// --- duration histograms (obs/hist.h) ---------------------------------------

TEST(ObsHist, EmptyAndSingleSamplePercentiles) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_EQ(h.percentile(99), 0u);
  EXPECT_EQ(h.max(), 0u);

  // With exactly one sample every percentile is that sample.
  h.record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.percentile(1), 42u);
  EXPECT_EQ(h.percentile(50), 42u);
  EXPECT_EQ(h.percentile(99), 42u);
  EXPECT_EQ(h.percentile(100), 42u);
  EXPECT_EQ(h.max(), 42u);
}

TEST(ObsHist, ZeroDurationSpansAreRealSamples) {
  // Point spans (unseal, evict, quarantine) have duration 0; they must
  // count and must drag the low percentiles to 0, not vanish.
  obs::Histogram h;
  for (int i = 0; i < 9; ++i) h.record(0);
  h.record(1000);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_EQ(h.percentile(90), 0u);
  // p99 is the 1000 sample quantized to its bucket floor (16-wide
  // sub-buckets over [512, 1024)); max() keeps the exact value.
  EXPECT_EQ(h.percentile(99), 992u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.sum(), 1000u);
}

TEST(ObsHist, LinearRangeIsExact) {
  // Below kLinearLimit every value owns its own bucket: percentiles are
  // exact, not bucket floors.
  obs::Histogram h;
  for (u64 v = 1; v <= 4; ++v) h.record(v);
  // rank = ceil(count * p / 100), 1-based over the sorted samples.
  EXPECT_EQ(h.percentile(25), 1u);
  EXPECT_EQ(h.percentile(50), 2u);
  EXPECT_EQ(h.percentile(75), 3u);
  EXPECT_EQ(h.percentile(100), 4u);
}

TEST(ObsHist, TopBucketSaturationStaysWithinObservedRange) {
  obs::Histogram h;
  h.record(~0ULL);
  h.record(~0ULL - 1);
  h.record(1ULL << 63);
  // All three land in the top exponent range. Percentiles report bucket
  // floors clamped into the observed [min, max]; max() keeps the exact
  // largest sample even when its bucket floor is far below it.
  EXPECT_EQ(h.max(), ~0ULL);
  EXPECT_GE(h.percentile(1), 1ULL << 63);
  EXPECT_LE(h.percentile(100), ~0ULL);
  EXPECT_GE(h.percentile(100), h.percentile(50));
  EXPECT_GE(h.percentile(50), h.percentile(1));
}

TEST(ObsHist, MergeIsAssociativeAndCommutativeByteForByte) {
  obs::Histogram a, b, c;
  for (u64 v = 0; v < 40; ++v) a.record(v * 7);
  for (u64 v = 0; v < 25; ++v) b.record(1 + (v << 9));
  c.record(0);
  c.record(~0ULL);

  obs::Histogram ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);
  obs::Histogram a_bc = b;
  a_bc.merge(c);
  a_bc.merge(a);
  obs::Histogram cba = c;
  cba.merge(b);
  cba.merge(a);

  EXPECT_EQ(ab_c, a_bc);
  EXPECT_EQ(ab_c, cba);
  // Byte-for-byte: the JSON renderings (the bytes committed in
  // BENCH_spans.json) must match too, not just the counters.
  EXPECT_EQ(ab_c.quantiles_json(), a_bc.quantiles_json());
  EXPECT_EQ(ab_c.quantiles_json(), cba.quantiles_json());
}

// --- causal spans (obs/span.h) ----------------------------------------------

obs::Event span_event(obs::EventKind kind, u64 instret, u64 arg0, u64 arg1,
                      u32 pkey = obs::kNoPkey) {
  obs::Event e;
  e.kind = kind;
  e.pid = 1;
  e.tid = 1;
  e.pkey = pkey;
  e.instret = instret;
  e.cycles = instret * 2;
  e.arg0 = arg0;
  e.arg1 = arg1;
  return e;
}

TEST(ObsSpan, RequestLifecycleWithRetryFlow) {
  obs::Trace t;
  t.events = {
      span_event(obs::EventKind::kGateEnter, 100, /*req=*/0, /*slot=*/0),
      // No gate-exit: the next enter for the same request closes the
      // first visit as failed and chains a retry flow.
      span_event(obs::EventKind::kGateEnter, 300, 0, /*slot=*/1),
      span_event(obs::EventKind::kGateExit, 400, 0, /*checksum=*/7),
      span_event(obs::EventKind::kRequestDisposition, 450, 0,
                 /*disposition=retried*/ 1),
  };
  const obs::SpanSet set = obs::build_spans(t);
  ASSERT_EQ(set.spans.size(), 3u);  // request + 2 handler visits
  EXPECT_EQ(set.spans[0].kind, obs::SpanKind::kRequest);
  EXPECT_EQ(set.spans[0].begin, 100u);
  EXPECT_EQ(set.spans[0].end, 450u);
  EXPECT_EQ(set.spans[0].status, obs::SpanStatus::kRetried);
  EXPECT_EQ(set.spans[1].status, obs::SpanStatus::kFailed);
  EXPECT_EQ(set.spans[2].status, obs::SpanStatus::kOk);
  EXPECT_EQ(set.spans[1].parent, set.spans[0].id);
  EXPECT_EQ(set.spans[2].parent, set.spans[0].id);
  ASSERT_EQ(set.flows.size(), 1u);
  EXPECT_EQ(set.flows[0].kind, obs::FlowEdge::Kind::kRetry);
  EXPECT_EQ(set.flows[0].from, set.spans[1].id);
  EXPECT_EQ(set.flows[0].to, set.spans[2].id);
}

TEST(ObsSpan, DanglingSpansCloseAsOpenAtStreamEnd) {
  obs::Trace t;
  t.events = {
      span_event(obs::EventKind::kGateEnter, 100, 0, 0),
      span_event(obs::EventKind::kSyscall, 900, 0, 0),
  };
  const obs::SpanSet set = obs::build_spans(t);
  ASSERT_EQ(set.spans.size(), 2u);
  for (const obs::Span& s : set.spans) {
    EXPECT_EQ(s.status, obs::SpanStatus::kOpen);
    EXPECT_EQ(s.end, 900u);
  }
  EXPECT_EQ(set.final_ts, 900u);
}

TEST(ObsSpan, ClockRestartOpensSegmentRollbackDoesNot) {
  obs::Trace t;
  t.events = {
      span_event(obs::EventKind::kVaultIntent, 500, /*bundle=*/1, 0),
      span_event(obs::EventKind::kVaultCommit, 700, 1, 0),
      // instret drops with no kRollback: a fresh machine (serve epoch 2).
      // The virtual timeline must keep rising instead of folding back.
      span_event(obs::EventKind::kVaultIntent, 50, 2, 0),
      span_event(obs::EventKind::kVaultCommit, 90, 2, 0),
      // A kRollback stamped at the *restored* clock rewinds the watermark
      // without opening a segment.
      span_event(obs::EventKind::kRollback, 60, /*ordinal=*/0, 0),
      span_event(obs::EventKind::kVaultIntent, 70, 3, 0),
      span_event(obs::EventKind::kVaultCommit, 80, 3, 0),
  };
  const obs::SpanSet set = obs::build_spans(t);
  EXPECT_EQ(set.segments, 2u);
  ASSERT_EQ(set.spans.size(), 4u);  // 3 txns + 1 rollback window
  // Segment 2 offsets by segment 1's watermark (700).
  EXPECT_EQ(set.spans[1].begin, 750u);
  EXPECT_EQ(set.spans[1].end, 790u);
  // Post-rollback txn continues on the same segment's virtual axis.
  EXPECT_EQ(set.spans[3].kind, obs::SpanKind::kVaultTxn);
  EXPECT_EQ(set.spans[3].begin, 770u);
  // The rollback window spans restored ts -> pre-rollback high-water mark.
  EXPECT_EQ(set.spans[2].kind, obs::SpanKind::kRollbackWindow);
  EXPECT_EQ(set.spans[2].begin, 760u);
  EXPECT_EQ(set.spans[2].end, 790u);
}

TEST(ObsSpan, BuildIsDeterministicAndPureOverConcatenatedStreams) {
  // The serve plane concatenates per-epoch rings recorded on different
  // machines; build_spans must be a pure function of the joined stream.
  const obs::Trace whole = recorded_trace();
  const obs::SpanSet a = obs::build_spans(whole);
  const obs::SpanSet b = obs::build_spans(whole);
  ASSERT_EQ(a.spans.size(), b.spans.size());
  ASSERT_EQ(a.flows.size(), b.flows.size());
  EXPECT_EQ(a.segments, b.segments);
  EXPECT_EQ(a.final_ts, b.final_ts);
  const auto ha = obs::span_histograms(a);
  const auto hb = obs::span_histograms(b);
  for (u32 k = 0; k < obs::kSpanKindCount; ++k) {
    EXPECT_EQ(ha[k], hb[k]);
    EXPECT_EQ(ha[k].quantiles_json(), hb[k].quantiles_json());
  }
}

TEST(ObsSpan, SpanSetMatchesAcrossSnapshotBoundary) {
  // The event stream already concatenates exactly across a snapshot
  // boundary (test above); spans derived from the stitched stream must
  // equal spans from the uninterrupted run, histogram bytes included.
  const isa::Image image = sealed_qsort_image();
  sim::MachineConfig config;
  config.trace = traced();
  config.checkpoint_interval = 20'000;

  sim::Machine straight(config);
  straight.load(image);
  SEALPK_CHECK(straight.run().completed);
  const obs::Trace full = straight.recorder()->trace();

  sim::Machine first(config);
  first.load(image);
  first.run(30'000);
  obs::Trace stitched = first.recorder()->trace();
  const std::vector<u8> mid = snapshot::save(first);

  sim::MachineConfig resumed_config = snapshot::config_from(mid);
  resumed_config.trace = config.trace;
  sim::Machine resumed(resumed_config);
  snapshot::restore(resumed, mid);
  SEALPK_CHECK(resumed.run().completed);
  for (const obs::Event& e : resumed.recorder()->events()) {
    stitched.events.push_back(e);
  }

  const auto ha = obs::span_histograms(obs::build_spans(full));
  const auto hb = obs::span_histograms(obs::build_spans(stitched));
  for (u32 k = 0; k < obs::kSpanKindCount; ++k) {
    EXPECT_EQ(ha[k].quantiles_json(), hb[k].quantiles_json());
  }
}

}  // namespace
}  // namespace sealpk
