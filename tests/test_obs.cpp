// Observability subsystem tests (src/obs): event blob round-trips and
// damage rejection, ring-buffer capture, metric aggregation reconciled
// against MachineStats, the zero-perturbation contract (tracing on changes
// nothing the guest can see), determinism across host threads and across a
// snapshot save/restore boundary, and the exporters.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "common/check.h"
#include "obs/export.h"
#include "obs/recorder.h"
#include "passes/shadow_stack.h"
#include "sim/machine.h"
#include "sim/stats.h"
#include "snapshot/snapshot.h"
#include "workloads/workload.h"

namespace sealpk {
namespace {

const wl::Workload& workload_named(const char* name) {
  for (const auto& w : wl::all_workloads()) {
    if (std::string(name) == w.name) return w;
  }
  SEALPK_CHECK_MSG(false, "unknown workload " << name);
  std::abort();
}

isa::Image sealed_qsort_image() {
  const wl::Workload& w = workload_named("qsort");
  isa::Program prog = w.build(w.test_scale);
  passes::ShadowStackOptions ss;
  ss.kind = passes::ShadowStackKind::kSealPkWr;
  ss.perm_seal = true;
  passes::apply_shadow_stack(prog, ss);
  return prog.link();
}

obs::TraceConfig traced(u64 sample_interval = 0, u64 ring = 0) {
  obs::TraceConfig t;
  t.enabled = true;
  t.sample_interval = sample_interval;
  t.ring_capacity = ring;
  return t;
}

// --- event / blob encoding --------------------------------------------------

TEST(ObsEvent, Log2BucketBoundaries) {
  EXPECT_EQ(obs::log2_bucket(0), 0u);
  EXPECT_EQ(obs::log2_bucket(1), 0u);
  EXPECT_EQ(obs::log2_bucket(2), 1u);
  EXPECT_EQ(obs::log2_bucket(3), 1u);
  EXPECT_EQ(obs::log2_bucket(4), 2u);
  EXPECT_EQ(obs::log2_bucket(1024), 10u);
  EXPECT_EQ(obs::log2_bucket(~0ULL), obs::kHistBuckets - 1);
}

TEST(ObsEvent, KindNamesAreDistinct) {
  for (u32 k = 0; k < obs::kEventKindCount; ++k) {
    const char* name = obs::event_kind_name(static_cast<obs::EventKind>(k));
    ASSERT_NE(name, nullptr);
    for (u32 j = 0; j < k; ++j) {
      EXPECT_STRNE(name,
                   obs::event_kind_name(static_cast<obs::EventKind>(j)));
    }
  }
}

TEST(ObsBlob, SerializeParseRoundTrip) {
  obs::Trace t;
  t.ring_capacity = 16;
  t.sample_interval = 64;
  t.dropped = 3;
  t.symbols.push_back({1, "main", 0x1000, 0x1100});
  t.symbols.push_back({2, "helper", 0x2000, 0x2040});
  obs::Event e;
  e.kind = obs::EventKind::kWrpkr;
  e.pid = 1;
  e.tid = 2;
  e.pkey = 5;
  e.instret = 1234;
  e.cycles = 5678;
  e.arg0 = 0xdead;
  e.arg1 = 0xbeef;
  t.events.push_back(e);
  e.kind = obs::EventKind::kSample;
  e.arg0 = 0x1010;
  t.events.push_back(e);

  const std::vector<u8> blob = obs::serialize(t);
  const obs::Trace back = obs::parse(blob);
  EXPECT_EQ(back.ring_capacity, t.ring_capacity);
  EXPECT_EQ(back.sample_interval, t.sample_interval);
  EXPECT_EQ(back.dropped, t.dropped);
  EXPECT_EQ(back.symbols, t.symbols);
  EXPECT_EQ(back.events, t.events);
}

TEST(ObsBlob, RejectsDamage) {
  obs::Trace t;
  obs::Event e;
  e.kind = obs::EventKind::kTrap;
  t.events.push_back(e);
  const std::vector<u8> blob = obs::serialize(t);

  std::vector<u8> corrupt = blob;
  corrupt[corrupt.size() - 1] ^= 0xFF;  // payload byte: checksum mismatch
  EXPECT_THROW(obs::parse(corrupt), CheckError);

  std::vector<u8> truncated(blob.begin(), blob.end() - 4);
  EXPECT_THROW(obs::parse(truncated), CheckError);

  std::vector<u8> bad_magic = blob;
  bad_magic[0] = 'X';
  EXPECT_THROW(obs::parse(bad_magic), CheckError);

  std::vector<u8> bad_version = blob;
  bad_version[8] ^= 0xFF;  // version field follows the 8-byte magic
  EXPECT_THROW(obs::parse(bad_version), CheckError);
}

TEST(ObsRecorder, RingCapacityEvictsOldestAndCountsDrops) {
  obs::Recorder rec(traced(0, /*ring=*/4));
  for (u64 i = 0; i < 10; ++i) {
    rec.emit(obs::EventKind::kTrap, i, i, obs::kNoPkey, i, 0);
  }
  EXPECT_EQ(rec.events().size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  EXPECT_EQ(rec.events().front().arg0, 6u);  // oldest retained
  EXPECT_EQ(rec.events().back().arg0, 9u);
  // Metrics still aggregated every event ever emitted.
  EXPECT_EQ(rec.metrics().events(), 10u);
  EXPECT_EQ(rec.metrics().traps(), 10u);
}

// --- machine integration ----------------------------------------------------

TEST(ObsMachine, MetricsReconcileWithMachineStats) {
  sim::MachineConfig config;
  config.trace = traced();
  sim::Machine machine(config);
  ASSERT_GT(machine.load(sealed_qsort_image()), 0);
  ASSERT_TRUE(machine.run().completed);

  const sim::MachineStats stats = sim::collect_stats(machine);
  const obs::TraceSummary s =
      machine.recorder()->summary(machine.hart().cycles());
  EXPECT_EQ(s.wrpkr, stats.wrpkr);
  EXPECT_EQ(s.rdpkr, stats.rdpkr);
  EXPECT_EQ(s.denials, stats.pkey_denials);
  EXPECT_EQ(s.seal_violations, stats.seal_violations);
  EXPECT_EQ(s.cam_refills, stats.cam_refills);
  EXPECT_EQ(s.traps, stats.traps);
  EXPECT_EQ(s.syscalls, stats.syscalls);
  EXPECT_EQ(s.context_switches, stats.context_switches);
  EXPECT_EQ(machine.recorder()->metrics().page_faults(), stats.page_faults);
  EXPECT_GT(s.wrpkr, 0u);  // the sealed shadow stack really used WRPKR
  EXPECT_GT(s.events, 0u);
  EXPECT_EQ(s.dropped, 0u);
}

TEST(ObsMachine, EnabledTracingDoesNotPerturbTheRun) {
  const isa::Image image = sealed_qsort_image();

  sim::Machine plain{sim::MachineConfig{}};
  const int pid_plain = plain.load(image);
  const sim::RunOutcome a = plain.run();

  sim::MachineConfig config;
  config.trace = traced(/*sample_interval=*/64);
  sim::Machine watched(config);
  const int pid_watched = watched.load(image);
  const sim::RunOutcome b = watched.run();

  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(plain.exit_code(pid_plain), watched.exit_code(pid_watched));
  EXPECT_EQ(plain.kernel().console(), watched.kernel().console());
  EXPECT_EQ(plain.kernel().reports(), watched.kernel().reports());
  EXPECT_EQ(snapshot::save(plain), snapshot::save(watched));
}

TEST(ObsMachine, BlobByteIdenticalAcrossHostThreads) {
  const isa::Image image = sealed_qsort_image();
  (void)wl::all_workloads();  // warm the registry outside the racing threads

  auto record = [&image]() {
    sim::MachineConfig config;
    config.trace = traced(/*sample_interval=*/256);
    sim::Machine machine(config);
    machine.load(image);
    machine.run();
    return machine.recorder()->serialize_blob();
  };

  const std::vector<u8> reference = record();
  std::vector<std::vector<u8>> blobs(4);
  std::vector<std::thread> pool;
  for (auto& blob : blobs) {
    pool.emplace_back([&blob, &record]() { blob = record(); });
  }
  for (auto& t : pool) t.join();
  for (const auto& blob : blobs) EXPECT_EQ(blob, reference);
}

TEST(ObsMachine, EventStreamConcatenatesAcrossSnapshotBoundary) {
  const isa::Image image = sealed_qsort_image();
  sim::MachineConfig config;
  config.trace = traced(/*sample_interval=*/512);

  // Reference: one uninterrupted traced run.
  sim::Machine straight(config);
  straight.load(image);
  ASSERT_TRUE(straight.run().completed);
  const auto& full = straight.recorder()->events();

  // Candidate: same run torn down at instret 20'000 and resumed from the
  // snapshot in a fresh traced machine. The snapshot does not carry trace
  // state; the resumed recorder starts empty and its stream must continue
  // exactly where part one stopped (pid/tid stamps and sample points
  // included, since samples fire at absolute instret multiples).
  sim::Machine first(config);
  first.load(image);
  first.run(20'000);
  const std::vector<obs::Event> part1(first.recorder()->events().begin(),
                                      first.recorder()->events().end());
  const std::vector<u8> mid = snapshot::save(first);

  sim::MachineConfig resumed_config = snapshot::config_from(mid);
  resumed_config.trace = config.trace;
  sim::Machine resumed(resumed_config);
  snapshot::restore(resumed, mid);
  ASSERT_TRUE(resumed.run().completed);
  const auto& part2 = resumed.recorder()->events();

  ASSERT_EQ(part1.size() + part2.size(), full.size());
  for (size_t i = 0; i < part1.size(); ++i) {
    ASSERT_EQ(part1[i], full[i]) << "event " << i << " diverged pre-snapshot";
  }
  for (size_t i = 0; i < part2.size(); ++i) {
    ASSERT_EQ(part2[i], full[part1.size() + i])
        << "event " << i << " diverged post-restore";
  }
}

// --- exporters --------------------------------------------------------------

// One traced run shared by the exporter checks.
obs::Trace recorded_trace() {
  sim::MachineConfig config;
  config.trace = traced(/*sample_interval=*/256);
  sim::Machine machine(config);
  machine.load(sealed_qsort_image());
  SEALPK_CHECK(machine.run().completed);
  return machine.recorder()->trace();
}

TEST(ObsExport, PerfettoJsonIsStructurallySound) {
  const obs::Trace trace = recorded_trace();
  std::ostringstream os;
  obs::write_perfetto_json(trace, os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"pkey domain\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // domain slices
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // page counters
  // Balanced braces — cheap structural sanity without a parser (brackets
  // can legitimately appear unmatched inside detail strings).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ObsExport, CollapsedStacksNameGuestFunctions) {
  const obs::Trace trace = recorded_trace();
  std::ostringstream os;
  obs::write_collapsed(trace, os);
  const std::string folded = os.str();
  EXPECT_NE(folded.find("guest1;quicksort "), std::string::npos);
  EXPECT_EQ(folded.find("[unknown"), std::string::npos);
}

TEST(ObsExport, ReportAndTimelineCoverTheRun) {
  const obs::Trace trace = recorded_trace();
  const obs::Metrics m = obs::compute_metrics(trace);
  EXPECT_EQ(m.events(), trace.events.size());

  std::ostringstream report;
  obs::write_report(trace, report);
  EXPECT_NE(report.str().find("per-pkey activity"), std::string::npos);
  EXPECT_NE(report.str().find("hottest functions"), std::string::npos);

  std::ostringstream timeline;
  obs::write_timeline(trace, timeline);
  const std::string text = timeline.str();
  const size_t lines =
      static_cast<size_t>(std::count(text.begin(), text.end(), '\n'));
  EXPECT_EQ(lines, trace.events.size());
}

TEST(ObsExport, DiffReportsFirstDivergence) {
  const obs::Trace a = recorded_trace();
  EXPECT_EQ(obs::diff_traces(a, a), "");

  obs::Trace b = a;
  b.events[b.events.size() / 2].arg0 ^= 1;
  const std::string delta = obs::diff_traces(a, b);
  EXPECT_NE(delta, "");
  EXPECT_NE(delta.find("event"), std::string::npos);

  obs::Trace c = a;
  c.events.pop_back();
  EXPECT_NE(obs::diff_traces(a, c), "");
}

}  // namespace
}  // namespace sealpk
