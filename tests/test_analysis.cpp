// Static SealPK policy verifier: CFG construction, constant propagation,
// the ERIM-style gadget scan, sealed-range dataflow, structural lints and
// the Machine/Kernel loader gate.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/verifier.h"
#include "guest_test_util.h"
#include "passes/shadow_stack.h"
#include "runtime/guest.h"
#include "sim/machine.h"
#include "workloads/workload.h"

namespace sealpk::analysis {
namespace {

using isa::Program;
using testutil::make_main_program;

bool has_check(const Report& report, Check check) {
  return report.count(check) > 0;
}

// ---------------------------------------------------------------------------
// CFG construction
// ---------------------------------------------------------------------------

TEST(Cfg, StraightLineIsOneReachableBlock) {
  Program prog = make_main_program([](Program&, isa::Function&) {});
  const ImageCfg cfg = build_cfg(prog.link());
  const FunctionCfg* main_fn = cfg.function_named("main");
  ASSERT_NE(main_fn, nullptr);
  ASSERT_EQ(main_fn->blocks.size(), 1u);
  EXPECT_TRUE(main_fn->blocks[0].reachable);
  EXPECT_EQ(main_fn->blocks[0].exit, BlockExit::kReturn);
}

TEST(Cfg, BranchSplitsBlocksAndAllReachable) {
  Program prog = make_main_program([](Program&, isa::Function& f) {
    const isa::Label skip = f.new_label();
    f.beqz(isa::a0, skip);
    f.addi(isa::a0, isa::a0, 1);
    f.bind(skip);
    f.addi(isa::a0, isa::a0, 2);
  });
  const ImageCfg cfg = build_cfg(prog.link());
  const FunctionCfg* main_fn = cfg.function_named("main");
  ASSERT_NE(main_fn, nullptr);
  ASSERT_GE(main_fn->blocks.size(), 3u);
  for (const BasicBlock& bb : main_fn->blocks) {
    EXPECT_TRUE(bb.reachable) << "block at 0x" << std::hex << bb.start;
  }
  // The branch block has two successors (taken + fallthrough).
  EXPECT_EQ(main_fn->blocks[0].exit, BlockExit::kBranch);
  EXPECT_EQ(main_fn->blocks[0].succs.size(), 2u);
}

TEST(Cfg, CodeAfterUnconditionalJumpIsUnreachable) {
  Program prog = make_main_program([](Program&, isa::Function& f) {
    const isa::Label out = f.new_label();
    f.j(out);
    f.addi(isa::a0, isa::a0, 99);  // dead
    f.bind(out);
  });
  const ImageCfg cfg = build_cfg(prog.link());
  const FunctionCfg* main_fn = cfg.function_named("main");
  ASSERT_NE(main_fn, nullptr);
  bool saw_unreachable = false;
  for (const BasicBlock& bb : main_fn->blocks) saw_unreachable |= !bb.reachable;
  EXPECT_TRUE(saw_unreachable);
}

TEST(Cfg, CallsRecordTargetsAndFallThrough) {
  Program prog = make_main_program([](Program& p, isa::Function& f) {
    isa::Function& helper = p.add_function("helper");
    helper.ret();
    f.call("helper");
  });
  const isa::Image image = prog.link();
  const ImageCfg cfg = build_cfg(image);
  const FunctionCfg* main_fn = cfg.function_named("main");
  ASSERT_NE(main_fn, nullptr);
  ASSERT_EQ(main_fn->call_targets.size(), 1u);
  EXPECT_EQ(main_fn->call_targets[0], image.func_ranges.at("helper").first);
  // pc -> function attribution.
  EXPECT_EQ(cfg.function_at(image.func_ranges.at("helper").first),
            cfg.function_named("helper"));
}

// ---------------------------------------------------------------------------
// Constant propagation
// ---------------------------------------------------------------------------

TEST(Dataflow, ResolvesLiThroughJoins) {
  // Both arms load the same constant; the join must keep it.
  Program prog = make_main_program([](Program&, isa::Function& f) {
    const isa::Label other = f.new_label(), join = f.new_label();
    f.beqz(isa::a0, other);
    f.li(isa::t0, 42);
    f.j(join);
    f.bind(other);
    f.li(isa::t0, 42);
    f.bind(join);
    f.mv(isa::a1, isa::t0);
    f.ret();
  });
  const isa::Image image = prog.link();
  const ImageCfg cfg = build_cfg(image);
  const FunctionCfg* main_fn = cfg.function_named("main");
  ASSERT_NE(main_fn, nullptr);
  const ConstProp dataflow(*main_fn);
  // Find the mv (addi a1, t0, 0) site.
  for (const BasicBlock& bb : main_fn->blocks) {
    for (const Site& site : bb.insts) {
      if (site.inst.op == isa::Op::kAddi && site.inst.rd == isa::a1) {
        const RegState* state = dataflow.state_before(site.pc);
        ASSERT_NE(state, nullptr);
        ASSERT_TRUE(state->get(isa::t0).is_const());
        EXPECT_EQ(state->get(isa::t0).value, 42u);
        return;
      }
    }
  }
  FAIL() << "mv a1, t0 not found";
}

TEST(Dataflow, DivergentJoinGoesToTop) {
  Program prog = make_main_program([](Program&, isa::Function& f) {
    const isa::Label other = f.new_label(), join = f.new_label();
    f.beqz(isa::a0, other);
    f.li(isa::t0, 1);
    f.j(join);
    f.bind(other);
    f.li(isa::t0, 2);
    f.bind(join);
    f.mv(isa::a1, isa::t0);
    f.ret();
  });
  const isa::Image image = prog.link();
  const ImageCfg cfg = build_cfg(image);
  const FunctionCfg* main_fn = cfg.function_named("main");
  const ConstProp dataflow(*main_fn);
  for (const BasicBlock& bb : main_fn->blocks) {
    for (const Site& site : bb.insts) {
      if (site.inst.op == isa::Op::kAddi && site.inst.rd == isa::a1) {
        const RegState* state = dataflow.state_before(site.pc);
        ASSERT_NE(state, nullptr);
        EXPECT_FALSE(state->get(isa::t0).is_const());
        return;
      }
    }
  }
  FAIL() << "mv a1, t0 not found";
}

TEST(Dataflow, CallClobbersCallerSavedKeepsCalleeSaved) {
  Program prog = make_main_program([](Program& p, isa::Function& f) {
    isa::Function& helper = p.add_function("helper");
    helper.ret();
    f.li(isa::t0, 7);
    f.li(isa::s2, 9);
    f.call("helper");
    f.mv(isa::a1, isa::t0);  // t0 unknown after the call
    f.mv(isa::a2, isa::s2);  // s2 preserved
    f.ret();
  });
  const isa::Image image = prog.link();
  const ImageCfg cfg = build_cfg(image);
  const ConstProp dataflow(*cfg.function_named("main"));
  for (const BasicBlock& bb : cfg.function_named("main")->blocks) {
    for (const Site& site : bb.insts) {
      if (site.inst.op == isa::Op::kAddi && site.inst.rd == isa::a1) {
        const RegState* state = dataflow.state_before(site.pc);
        ASSERT_NE(state, nullptr);
        EXPECT_FALSE(state->get(isa::t0).is_const());
        EXPECT_TRUE(state->get(isa::s2).is_const());
        EXPECT_EQ(state->get(isa::s2).value, 9u);
        return;
      }
    }
  }
  FAIL() << "mv a1, t0 not found";
}

// ---------------------------------------------------------------------------
// Occurrence scan (ERIM-style)
// ---------------------------------------------------------------------------

TEST(Verifier, CleanProgramHasNoFindings) {
  Program prog = make_main_program([](Program&, isa::Function& f) {
    f.li(isa::a0, 0);
  });
  EXPECT_TRUE(verify_program(prog).clean());
}

TEST(Verifier, PkeyHelpersAreTrustedGates) {
  Program prog = make_main_program([](Program& p, isa::Function& f) {
    rt::add_pkey_lib(p);
    f.li(isa::a0, 1);
    f.li(isa::a1, 0);
    f.call("__pkey_set");
    f.li(isa::a0, 0);
  });
  const Report report = verify_program(prog);
  EXPECT_TRUE(report.clean()) << [&] {
    std::ostringstream os;
    report.print(os);
    return os.str();
  }();
}

TEST(Verifier, HiddenWrpkrGadgetIsFlagged) {
  Program prog = make_main_program([](Program& p, isa::Function& f) {
    isa::Function& evil = p.add_function("innocuous_helper");
    evil.wrpkr(isa::a0, isa::zero);  // the planted gadget
    evil.ret();
    f.call("innocuous_helper");
    f.li(isa::a0, 0);
  });
  const isa::Image image = prog.link();
  const Report report = verify_image(image);
  ASSERT_TRUE(has_check(report, Check::kGadget));
  EXPECT_FALSE(report.admissible());
  // The finding names the right function and a pc inside it.
  const auto range = image.func_ranges.at("innocuous_helper");
  bool located = false;
  for (const Finding& f : report.findings()) {
    if (f.check != Check::kGadget) continue;
    EXPECT_EQ(f.function, "innocuous_helper");
    EXPECT_GE(f.pc, range.first);
    EXPECT_LT(f.pc, range.second);
    located = true;
  }
  EXPECT_TRUE(located);
}

TEST(Verifier, WrpkruGadgetIsFlaggedToo) {
  Program prog = make_main_program([](Program&, isa::Function& f) {
    f.wrpkru(isa::a0);
    f.li(isa::a0, 0);
  });
  const Report report = verify_program(prog);
  EXPECT_TRUE(has_check(report, Check::kGadget));
  EXPECT_FALSE(report.admissible());
}

TEST(Verifier, UntrustedRdpkrAndSealMarkersWarn) {
  Program prog = make_main_program([](Program&, isa::Function& f) {
    f.rdpkr(isa::t0, isa::a0);
    f.seal_start(0);
    f.seal_end(0);
    f.li(isa::a0, 0);
  });
  const Report report = verify_program(prog);
  EXPECT_TRUE(has_check(report, Check::kPkeyRead));
  EXPECT_EQ(report.count(Check::kSealMarker), 2u);
  // Warnings only: still admissible, but not clean.
  EXPECT_TRUE(report.admissible());
  EXPECT_FALSE(report.clean());
}

TEST(Verifier, CallerRegisteredGateIsTrusted) {
  // The Figure-3 pattern: a trusted updater carries its own inline WRPKR.
  Program prog = make_main_program([](Program& p, isa::Function& f) {
    isa::Function& func_a = p.add_function("func_a");
    func_a.seal_start(0);
    func_a.rdpkr(isa::t0, isa::s1);
    func_a.wrpkr(isa::s1, isa::t0);
    func_a.seal_end(0);
    func_a.ret();
    f.call("func_a");
    f.li(isa::a0, 0);
  });
  EXPECT_FALSE(verify_program(prog).admissible());
  VerifyOptions opts;
  opts.trusted_gates.insert("func_a");
  EXPECT_TRUE(verify_program(prog, opts).clean());
}

// ---------------------------------------------------------------------------
// Sealed-range dataflow
// ---------------------------------------------------------------------------

TEST(Verifier, ResolvedWrpkrIntoSealedRangeOutOfRangeIsError) {
  Program prog = make_main_program([](Program&, isa::Function& f) {
    f.li(isa::t0, 7);
    f.wrpkr(isa::t0, isa::zero);
    f.li(isa::a0, 0);
  });
  VerifyOptions opts;
  opts.trusted_gates.insert("main");  // isolate the sealed-range check
  opts.sealed_pkey_ranges[7] = {0x1, 0x2};  // nowhere near main
  const Report report = verify_program(prog, opts);
  ASSERT_TRUE(has_check(report, Check::kSealedRange));
  EXPECT_FALSE(report.admissible());
}

TEST(Verifier, ResolvedWrpkrInsideSealedRangeIsAllowed) {
  Program prog = make_main_program([](Program&, isa::Function& f) {
    f.li(isa::t0, 7);
    f.wrpkr(isa::t0, isa::zero);
    f.li(isa::a0, 0);
  });
  const isa::Image image = prog.link();
  const auto range = image.func_ranges.at("main");
  VerifyOptions opts;
  opts.trusted_gates.insert("main");
  opts.sealed_pkey_ranges[7] = {range.first, range.second - 4};
  EXPECT_TRUE(verify_image(image, opts).clean());
}

TEST(Verifier, UnsealedPkeyIgnoresRangePolicy) {
  Program prog = make_main_program([](Program&, isa::Function& f) {
    f.li(isa::t0, 3);  // pkey 3 is not sealed
    f.wrpkr(isa::t0, isa::zero);
    f.li(isa::a0, 0);
  });
  VerifyOptions opts;
  opts.trusted_gates.insert("main");
  opts.sealed_pkey_ranges[7] = {0x1, 0x2};
  EXPECT_TRUE(verify_program(prog, opts).clean());
}

TEST(Verifier, GateRegionLintFlagsWrpkrOutsideRegion) {
  Program prog = make_main_program([](Program&, isa::Function& f) {
    f.li(isa::t0, 7);
    f.wrpkr(isa::t0, isa::zero);
    f.li(isa::a0, 0);
  });
  VerifyOptions opts;
  opts.trusted_gates.insert("main");  // name-trust must NOT bypass the lint
  opts.gate_regions.push_back({0x10, 0x20});  // nowhere near main
  const Report report = verify_program(prog, opts);
  ASSERT_TRUE(has_check(report, Check::kGateEscape));
  EXPECT_FALSE(report.admissible());
  // The lint has its own distinct finding code.
  EXPECT_STREQ(check_name(Check::kGateEscape), "wrpkr-outside-gate-region");
}

TEST(Verifier, GateRegionLintAllowsWrpkrInsideRegion) {
  Program prog = make_main_program([](Program&, isa::Function& f) {
    f.li(isa::t0, 7);
    f.wrpkr(isa::t0, isa::zero);
    f.li(isa::a0, 0);
  });
  const isa::Image image = prog.link();
  const auto range = image.func_ranges.at("main");
  VerifyOptions opts;
  opts.trusted_gates.insert("main");
  opts.gate_regions.push_back({range.first, range.second - 4});
  EXPECT_TRUE(verify_image(image, opts).clean());
}

TEST(Verifier, GateRegionLintCatchesGadgetPastGateEnd) {
  // The Garmr bypass shape: a WRPKR appended after the blessed gate's
  // declared region, still inside a trusted-named function. The positional
  // lint must flag it even though the name check would wave it through.
  Program prog = make_main_program([](Program&, isa::Function& f) {
    f.li(isa::t0, 7);
    f.wrpkr(isa::t0, isa::zero);  // sanctioned: inside the region
    f.li(isa::a0, 0);
    f.wrpkr(isa::t0, isa::zero);  // the gadget: past the region's end
  });
  const isa::Image image = prog.link();
  const auto range = image.func_ranges.at("main");
  VerifyOptions opts;
  opts.trusted_gates.insert("main");
  // Region covers only the first half of main (first wrpkr, not the last).
  opts.gate_regions.push_back({range.first, range.first + 3 * 4});
  const Report report = verify_image(image, opts);
  ASSERT_EQ(report.count(Check::kGateEscape), 1u);
  EXPECT_FALSE(report.admissible());
}

TEST(Verifier, EmptyGateRegionsDisablesTheLint) {
  Program prog = make_main_program([](Program&, isa::Function& f) {
    f.li(isa::t0, 7);
    f.wrpkr(isa::t0, isa::zero);
    f.li(isa::a0, 0);
  });
  VerifyOptions opts;
  opts.trusted_gates.insert("main");
  EXPECT_TRUE(verify_program(prog, opts).clean());
}

TEST(Verifier, UnresolvedWrpkrUnderSealedPolicyWarns) {
  Program prog = make_main_program([](Program& p, isa::Function& f) {
    p.add_zero("somedata", 8);
    f.la(isa::t1, "somedata");
    f.ld(isa::t0, 0, isa::t1);  // pkey from memory: unresolvable
    f.wrpkr(isa::t0, isa::zero);
    f.li(isa::a0, 0);
  });
  VerifyOptions opts;
  opts.trusted_gates.insert("main");
  opts.sealed_pkey_ranges[7] = {0x1, 0x2};
  const Report report = verify_program(prog, opts);
  EXPECT_TRUE(has_check(report, Check::kSealedRangeMaybe));
  EXPECT_TRUE(report.admissible());  // warning, not error
}

// ---------------------------------------------------------------------------
// Structural lints
// ---------------------------------------------------------------------------

// Overwrites the instruction word at `pc` with an undecodable pattern.
void poke_garbage(isa::Image* image, u64 pc) {
  for (auto& seg : image->segments) {
    if (!seg.exec || pc < seg.addr || pc + 4 > seg.addr + seg.bytes.size()) {
      continue;
    }
    const u64 off = pc - seg.addr;
    seg.bytes[off] = seg.bytes[off + 1] = seg.bytes[off + 2] =
        seg.bytes[off + 3] = 0;  // all-zero word never decodes
    return;
  }
  FAIL() << "pc not in any exec segment";
}

TEST(Verifier, ReachableIllegalWordIsError) {
  Program prog = make_main_program([](Program&, isa::Function& f) {
    f.nop();
    f.li(isa::a0, 0);
  });
  isa::Image image = prog.link();
  const auto range = image.func_ranges.at("main");
  poke_garbage(&image, range.first);  // first instruction of main
  const Report report = verify_image(image);
  ASSERT_TRUE(has_check(report, Check::kReachableIllegal));
  EXPECT_FALSE(report.admissible());
}

TEST(Verifier, UnreachableIllegalWordIsInfoOnly) {
  Program prog = make_main_program([](Program&, isa::Function& f) {
    f.li(isa::a0, 0);
  });
  // Plant a garbage word in a slot after main's ret: inside the function
  // range but past the return, so never reachable.
  prog.find_function("main")->nop();
  isa::Image image = prog.link();
  const auto range = image.func_ranges.at("main");
  poke_garbage(&image, range.second - 4);  // the trailing nop slot
  const Report report = verify_image(image);
  EXPECT_TRUE(has_check(report, Check::kReachableIllegal));
  EXPECT_TRUE(report.admissible());  // info severity only
}

TEST(Verifier, ReservedRegisterUseWarns) {
  Program prog = make_main_program([](Program&, isa::Function& f) {
    f.addi(isa::s10, isa::s10, 16);  // workloads must not touch s10/s11
    f.sd(isa::t0, 0, isa::s11);
    f.li(isa::a0, 0);
  });
  const Report report = verify_program(prog);
  EXPECT_EQ(report.count(Check::kReservedReg), 2u);
  EXPECT_TRUE(report.admissible());
  VerifyOptions opts;
  opts.check_reserved_regs = false;
  EXPECT_TRUE(verify_program(prog, opts).clean());
}

TEST(Verifier, InlineShadowStackPatternIsTolerated) {
  Program prog = make_main_program([](Program& p, isa::Function& f) {
    isa::Function& helper = p.add_function("helper");
    helper.ret();
    f.call("helper");
    f.li(isa::a0, 0);
  });
  passes::ShadowStackOptions ss;
  ss.kind = passes::ShadowStackKind::kInline;
  passes::apply_shadow_stack(prog, ss);
  const Report report = verify_program(prog);
  EXPECT_TRUE(report.clean()) << [&] {
    std::ostringstream os;
    report.print(os);
    return os.str();
  }();
}

TEST(Verifier, UnknownSyscallNumberIsError) {
  Program prog = make_main_program([](Program&, isa::Function& f) {
    f.li(isa::a7, 999);
    f.ecall();
    f.li(isa::a0, 0);
  });
  const Report report = verify_program(prog);
  ASSERT_TRUE(has_check(report, Check::kUnknownSyscall));
  EXPECT_FALSE(report.admissible());
}

TEST(Verifier, UnresolvedSyscallNumberIsInfo) {
  Program prog = make_main_program([](Program& p, isa::Function& f) {
    p.add_zero("nr", 8);
    f.la(isa::t0, "nr");
    f.ld(isa::a7, 0, isa::t0);
    f.ecall();
    f.li(isa::a0, 0);
  });
  const Report report = verify_program(prog);
  EXPECT_TRUE(has_check(report, Check::kUnresolvedSyscall));
  EXPECT_TRUE(report.admissible());
  VerifyOptions opts;
  opts.flag_unresolved_syscalls = false;
  EXPECT_TRUE(verify_program(prog, opts).clean());
}

TEST(Verifier, WritableExecutableSegmentIsError) {
  Program prog = make_main_program([](Program&, isa::Function& f) {
    f.li(isa::a0, 0);
  });
  isa::Image image = prog.link();
  image.segments[0].write = true;  // text becomes W+X
  const Report report = verify_image(image);
  EXPECT_TRUE(has_check(report, Check::kSegmentPerm));
  EXPECT_FALSE(report.admissible());
}

// ---------------------------------------------------------------------------
// Every shipped workload verifies clean (bare and instrumented)
// ---------------------------------------------------------------------------

TEST(Verifier, AllWorkloadsVerifyClean) {
  for (const auto& w : wl::all_workloads()) {
    const Report report = verify_program(w.build(w.test_scale));
    std::ostringstream os;
    report.print(os, w.name);
    EXPECT_TRUE(report.clean()) << os.str();
  }
}

TEST(Verifier, AllWorkloadsVerifyCleanUnderSealedShadowStack) {
  for (const auto& w : wl::all_workloads()) {
    Program prog = w.build(w.test_scale);
    passes::ShadowStackOptions ss;
    ss.kind = passes::ShadowStackKind::kSealPkRdWr;
    ss.perm_seal = true;
    passes::apply_shadow_stack(prog, ss);
    const Report report = verify_program(prog);
    std::ostringstream os;
    report.print(os, w.name);
    EXPECT_TRUE(report.clean()) << os.str();
  }
}

// ---------------------------------------------------------------------------
// Loader gate
// ---------------------------------------------------------------------------

Program gadget_program() {
  return make_main_program([](Program& p, isa::Function& f) {
    isa::Function& evil = p.add_function("evil");
    evil.wrpkr(isa::a0, isa::zero);
    evil.ret();
    f.call("evil");
    f.li(isa::a0, 0);
  });
}

TEST(LoaderGate, EnforceRefusesGadgetAdmitsClean) {
  sim::MachineConfig config;
  config.verify_policy = LoadVerifyPolicy::kEnforce;
  {
    sim::Machine machine(config);
    EXPECT_EQ(machine.load(gadget_program().link()), sim::Machine::kLoadRefused);
    EXPECT_FALSE(machine.verify_report().admissible());
  }
  {
    sim::Machine machine(config);
    Program clean = make_main_program([](Program&, isa::Function& f) {
      f.li(isa::a0, 17);
    });
    const int pid = machine.load(clean.link());
    ASSERT_GT(pid, 0);
    EXPECT_TRUE(machine.verify_report().clean());
    machine.run();
    EXPECT_EQ(machine.exit_code(pid), 17);
  }
}

TEST(LoaderGate, WarnAdmitsButKeepsReport) {
  sim::MachineConfig config;
  config.verify_policy = LoadVerifyPolicy::kWarn;
  sim::Machine machine(config);
  const int pid = machine.load(gadget_program().link());
  ASSERT_GT(pid, 0);
  EXPECT_FALSE(machine.verify_report().admissible());
  machine.run();
  EXPECT_EQ(machine.exit_code(pid), 0);
}

TEST(LoaderGate, OffSkipsVerificationEntirely) {
  sim::Machine machine;  // default policy: kOff
  const int pid = machine.load(gadget_program().link());
  ASSERT_GT(pid, 0);
  EXPECT_TRUE(machine.verify_report().clean());  // never populated
}

TEST(LoaderGate, KernelAdmissionGateHookRefuses) {
  sim::MachineConfig config;
  config.kernel.admission_gate = [](const isa::Image&, std::string* reason) {
    *reason = "policy says no";
    return false;
  };
  sim::Machine machine(config);
  EXPECT_EQ(machine.load(gadget_program().link()), sim::Machine::kLoadRefused);
  EXPECT_EQ(machine.kernel().admission_error(), "policy says no");
}

TEST(LoaderGate, EnforceAcceptsSealedShadowStackWorkload) {
  // The full pipeline: instrument, link, verify, admit, run to completion.
  const wl::Workload* w = wl::find_workload(wl::Suite::kMiBench, "qsort");
  ASSERT_NE(w, nullptr);
  Program prog = w->build(w->test_scale);
  passes::ShadowStackOptions ss;
  ss.kind = passes::ShadowStackKind::kSealPkRdWr;
  ss.perm_seal = true;
  passes::apply_shadow_stack(prog, ss);

  sim::MachineConfig config;
  config.verify_policy = LoadVerifyPolicy::kEnforce;
  sim::Machine machine(config);
  const int pid = machine.load(prog.link());
  ASSERT_GT(pid, 0);
  const auto outcome = machine.run();
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(machine.exit_code(pid), 0);
  ASSERT_FALSE(machine.kernel().reports().empty());
  EXPECT_EQ(machine.kernel().reports()[0], w->golden(w->test_scale));
}

// ---------------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------------

TEST(Report, PrintsSeveritiesAndLocations) {
  const Report report = verify_program(gadget_program());
  std::ostringstream os;
  report.print(os, "gadget_program");
  const std::string text = os.str();
  EXPECT_NE(text.find("gadget_program"), std::string::npos);
  EXPECT_NE(text.find("[error]"), std::string::npos);
  EXPECT_NE(text.find("wrpkr-gadget"), std::string::npos);
  EXPECT_NE(text.find("evil"), std::string::npos);
}

TEST(Report, CleanPrint) {
  Report report;
  std::ostringstream os;
  report.print(os, "empty");
  EXPECT_EQ(os.str(), "empty: clean (no findings)\n");
  EXPECT_TRUE(report.admissible());
  EXPECT_TRUE(report.clean());
}

TEST(Report, JsonCarriesCountsAndFindings) {
  const Report report = verify_program(gadget_program());
  std::ostringstream os;
  report.print_json(os, "gadget_program", "  ");
  const std::string json = os.str();
  EXPECT_NE(json.find("\"program\": \"gadget_program\""), std::string::npos);
  EXPECT_NE(json.find("\"admissible\": false"), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(json.find("\"check\": \"wrpkr-gadget\""), std::string::npos);
  EXPECT_NE(json.find("\"function\": \"evil\""), std::string::npos);
  // Every line carries the caller's indent prefix; no trailing newline.
  EXPECT_EQ(json.rfind("  {", 0), 0u);
  EXPECT_EQ(json.back(), '}');
}

TEST(Report, CleanJson) {
  Report report;
  std::ostringstream os;
  report.print_json(os, "empty");
  const std::string json = os.str();
  EXPECT_NE(json.find("\"admissible\": true"), std::string::npos);
  EXPECT_NE(json.find("\"findings\": []"), std::string::npos);
}

}  // namespace
}  // namespace sealpk::analysis
