// Kernel-level tests driven by real guest programs: syscalls, the pkey
// lifecycle with lazy de-allocation (§III-B), the three sealing features
// (§IV), fault reporting, and threads/context switches.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "guest_test_util.h"
#include "mpk/key_manager.h"
#include "os/key_manager.h"

namespace sealpk {
namespace {

using isa::Function;
using isa::Label;
using isa::Program;
using namespace isa;  // register names
using testutil::GuestRun;
using testutil::make_main_program;
using testutil::run_guest;

sim::MachineConfig mpk_machine() {
  sim::MachineConfig cfg;
  cfg.hart.flavor = core::IsaFlavor::kIntelMpkCompat;
  return cfg;
}

// ---------------------------------------------------------------------------
// Basic process / syscall plumbing.
// ---------------------------------------------------------------------------

TEST(KernelBasics, ExitCodePropagates) {
  auto prog = make_main_program([](Program&, Function& f) { f.li(a0, 42); });
  const GuestRun run = run_guest(prog);
  EXPECT_TRUE(run.outcome.completed);
  EXPECT_EQ(run.exit_code, 42);
  EXPECT_TRUE(run.faults.empty());
}

TEST(KernelBasics, WriteReachesConsole) {
  auto prog = make_main_program([](Program& p, Function& f) {
    p.add_rodata("msg", {'h', 'i', '!', '\n'});
    f.li(a0, 1);
    f.la(a1, "msg");
    f.li(a2, 4);
    rt::syscall(f, os::sys::kWrite);
    f.li(a0, 0);
  });
  const GuestRun run = run_guest(prog);
  EXPECT_EQ(run.console, "hi!\n");
  EXPECT_EQ(run.exit_code, 0);
}

TEST(KernelBasics, ReportsCollected) {
  auto prog = make_main_program([](Program&, Function& f) {
    for (int i = 1; i <= 3; ++i) {
      f.li(a0, i * 100);
      rt::syscall(f, os::sys::kReport);
    }
    f.li(a0, 0);
  });
  const GuestRun run = run_guest(prog);
  EXPECT_EQ(run.reports, (std::vector<u64>{100, 200, 300}));
}

TEST(KernelBasics, UnknownSyscallReturnsEnosys) {
  auto prog = make_main_program([](Program&, Function& f) {
    rt::syscall(f, 9999);
    f.neg(a0, a0);  // exit(-ENOSYS) == 38
  });
  EXPECT_EQ(run_guest(prog).exit_code, 38);
}

TEST(KernelBasics, MmapGrantsUsableMemory) {
  auto prog = make_main_program([](Program&, Function& f) {
    f.li(a0, 0);
    f.li(a1, 8192);
    f.li(a2, 3);  // RW
    rt::syscall(f, os::sys::kMmap);
    f.mv(s0, a0);
    f.li(t0, 0x1234);
    f.sd(t0, 0, s0);
    f.li(t1, 4096);
    f.add(t1, s0, t1);  // second page (offset exceeds a 12-bit immediate)
    f.sd(t0, 0, t1);
    f.ld(a0, 0, t1);
  });
  EXPECT_EQ(run_guest(prog).exit_code, 0x1234);
}

TEST(KernelBasics, MunmapRevokesAccess) {
  auto prog = make_main_program([](Program&, Function& f) {
    f.li(a0, 0);
    f.li(a1, 4096);
    f.li(a2, 3);
    rt::syscall(f, os::sys::kMmap);
    f.mv(s0, a0);
    f.mv(a0, s0);
    f.li(a1, 4096);
    rt::syscall(f, os::sys::kMunmap);
    f.ld(a0, 0, s0);  // faults: process killed
    f.li(a0, 0);
  });
  const GuestRun run = run_guest(prog);
  ASSERT_EQ(run.faults.size(), 1u);
  EXPECT_EQ(run.faults[0].cause, core::TrapCause::kLoadPageFault);
  EXPECT_FALSE(run.faults[0].pkey_fault);
}

TEST(KernelBasics, MprotectReadOnlyBlocksStores) {
  auto prog = make_main_program([](Program&, Function& f) {
    f.li(a0, 0);
    f.li(a1, 4096);
    f.li(a2, 3);
    rt::syscall(f, os::sys::kMmap);
    f.mv(s0, a0);
    f.mv(a0, s0);
    f.li(a1, 4096);
    f.li(a2, 1);  // R only
    rt::syscall(f, os::sys::kMprotect);
    f.sd(zero, 0, s0);  // store page fault
    f.li(a0, 0);
  });
  const GuestRun run = run_guest(prog);
  ASSERT_EQ(run.faults.size(), 1u);
  EXPECT_EQ(run.faults[0].cause, core::TrapCause::kStorePageFault);
  EXPECT_FALSE(run.faults[0].pkey_fault);  // PTE denial, not pkey
}


TEST(KernelBasics, WriteEdgeCases) {
  auto prog = make_main_program([](Program&, Function& f) {
    // Bad fd.
    f.li(a0, 7);
    f.li(a1, 0x1000);
    f.li(a2, 4);
    rt::syscall(f, os::sys::kWrite);
    f.neg(a0, a0);
    rt::syscall(f, os::sys::kReport);  // EBADF = 9
    // Unmapped buffer -> EFAULT.
    f.li(a0, 1);
    f.li(a1, 0x7000'0000);
    f.li(a2, 4);
    rt::syscall(f, os::sys::kWrite);
    f.neg(a0, a0);
    rt::syscall(f, os::sys::kReport);  // EFAULT = 14
    // Oversized length -> EINVAL.
    f.li(a0, 1);
    f.li(a1, 0x1000);
    f.li(a2, 2 * 1024 * 1024);
    rt::syscall(f, os::sys::kWrite);
    f.neg(a0, a0);
    rt::syscall(f, os::sys::kReport);  // EINVAL = 22
    f.li(a0, 0);
  });
  EXPECT_EQ(run_guest(prog).reports, (std::vector<u64>{9, 14, 22}));
}

TEST(KernelBasics, StderrAlsoReachesConsole) {
  auto prog = make_main_program([](Program& p, Function& f) {
    p.add_rodata("err", {'e', '!'});
    f.li(a0, 2);  // stderr
    f.la(a1, "err");
    f.li(a2, 2);
    rt::syscall(f, os::sys::kWrite);
    f.li(a0, 0);
  });
  EXPECT_EQ(run_guest(prog).console, "e!");
}

TEST(KernelBasics, StackOverflowIsCaught) {
  auto prog = make_main_program([](Program&, Function& f) {
    // Runaway recursion: main calls itself forever.
    f.addi(sp, sp, -16);
    f.sd(ra, 0, sp);
    f.call("main");
    f.ld(ra, 0, sp);
    f.addi(sp, sp, 16);
  });
  const GuestRun run = run_guest(prog);
  ASSERT_EQ(run.faults.size(), 1u);
  EXPECT_EQ(run.faults[0].cause, core::TrapCause::kStorePageFault);
}

// ---------------------------------------------------------------------------
// pkey lifecycle and lazy de-allocation (§III-B.1).
// ---------------------------------------------------------------------------

// Emits: s0 = mmap(4096*pages, RW)
void emit_mmap_rw(Function& f, i64 pages, u8 dest = s0) {
  f.li(a0, 0);
  f.li(a1, pages * 4096);
  f.li(a2, 3);
  rt::syscall(f, os::sys::kMmap);
  f.mv(dest, a0);
}

// Emits pkey_mprotect(addr_reg, pages*4096, RW, pkey_reg) -> a0
void emit_pkey_mprotect(Function& f, u8 addr_reg, i64 pages, u8 pkey_reg) {
  f.mv(a0, addr_reg);
  f.li(a1, pages * 4096);
  f.li(a2, 3);
  f.mv(a3, pkey_reg);
  rt::syscall(f, os::sys::kPkeyMprotect);
}

TEST(PkeyLifecycle, AllocReturnsSequentialKeys) {
  auto prog = make_main_program([](Program&, Function& f) {
    for (int i = 0; i < 3; ++i) {
      f.li(a0, 0);
      f.li(a1, 0);
      rt::syscall(f, os::sys::kPkeyAlloc);
      rt::syscall(f, os::sys::kReport);
    }
    f.li(a0, 0);
  });
  EXPECT_EQ(run_guest(prog).reports, (std::vector<u64>{1, 2, 3}));
}

TEST(PkeyLifecycle, ExhaustionReturnsEnospcAt1024) {
  // 1023 allocatable keys (key 0 is the default domain).
  auto prog = make_main_program([](Program&, Function& f) {
    const Label loop = f.new_label(), done = f.new_label();
    f.li(s0, 0);  // count
    f.bind(loop);
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.blez(a0, done);
    f.addi(s0, s0, 1);
    f.j(loop);
    f.bind(done);
    f.neg(a1, a0);  // -ENOSPC -> 28
    f.mv(a0, s0);
    rt::syscall(f, os::sys::kReport);
    f.mv(a0, a1);
    rt::syscall(f, os::sys::kReport);
    f.li(a0, 0);
  });
  const GuestRun run = run_guest(prog);
  EXPECT_EQ(run.reports,
            (std::vector<u64>{1023, static_cast<u64>(-os::err::kNoSpc)}));
}

TEST(PkeyLifecycle, MpkFlavourExhaustsAt16) {
  auto prog = make_main_program([](Program&, Function& f) {
    const Label loop = f.new_label(), done = f.new_label();
    f.li(s0, 0);
    f.bind(loop);
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.blez(a0, done);
    f.addi(s0, s0, 1);
    f.j(loop);
    f.bind(done);
    f.mv(a0, s0);
    rt::syscall(f, os::sys::kReport);
    f.li(a0, 0);
  });
  EXPECT_EQ(run_guest(prog, mpk_machine()).reports, (std::vector<u64>{15}));
}

TEST(PkeyLifecycle, FreeUnallocatedIsEinval) {
  auto prog = make_main_program([](Program&, Function& f) {
    f.li(a0, 7);
    rt::syscall(f, os::sys::kPkeyFree);
    f.neg(a0, a0);  // 22
  });
  EXPECT_EQ(run_guest(prog).exit_code, 22);
}

TEST(PkeyLifecycle, FreeKeyZeroIsEinval) {
  auto prog = make_main_program([](Program&, Function& f) {
    f.li(a0, 0);
    rt::syscall(f, os::sys::kPkeyFree);
    f.neg(a0, a0);
  });
  EXPECT_EQ(run_guest(prog).exit_code, 22);
}

TEST(PkeyLifecycle, LazyDeallocationQuarantinesDirtyKeys) {
  // The §III-B.1 state machine end-to-end: free-with-pages dirties the key;
  // alloc skips it; unmapping the last page drains it; alloc reuses it.
  auto prog = make_main_program([](Program&, Function& f) {
    emit_mmap_rw(f, 1);
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);  // expect 1
    emit_pkey_mprotect(f, s0, 1, s1);
    f.mv(a0, s1);
    rt::syscall(f, os::sys::kPkeyFree);
    // Key 1 is dirty: the next alloc must skip it.
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    rt::syscall(f, os::sys::kReport);  // expect 2
    // Drain: unmap the page carrying key 1.
    f.mv(a0, s0);
    f.li(a1, 4096);
    rt::syscall(f, os::sys::kMunmap);
    // Now key 1 is reusable.
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    rt::syscall(f, os::sys::kReport);  // expect 1
    f.li(a0, 0);
  });
  EXPECT_EQ(run_guest(prog).reports, (std::vector<u64>{2, 1}));
}

TEST(PkeyLifecycle, DirtyKeyNotAssignable) {
  auto prog = make_main_program([](Program&, Function& f) {
    emit_mmap_rw(f, 1);
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);
    emit_pkey_mprotect(f, s0, 1, s1);
    f.mv(a0, s1);
    rt::syscall(f, os::sys::kPkeyFree);
    // pkey_mprotect naming the dirty key must fail with EINVAL.
    emit_pkey_mprotect(f, s0, 1, s1);
    f.neg(a0, a0);
  });
  EXPECT_EQ(run_guest(prog).exit_code, 22);
}

TEST(PkeyLifecycle, FreedKeyPermissionsCleared) {
  // §III-B.1: "pkey_free updates the permission bits of the pkey in PKR to
  // (0,0); hence, the page-table permissions determine the effective
  // permission" — orphan pages stay accessible.
  auto prog = make_main_program([](Program&, Function& f) {
    emit_mmap_rw(f, 1);
    f.li(a0, 0);
    f.li(a1, static_cast<i64>(os::pkeyperm::kNone));  // no-access domain
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);
    emit_pkey_mprotect(f, s0, 1, s1);
    f.mv(a0, s1);
    rt::syscall(f, os::sys::kPkeyFree);
    // The page still carries the key in its PTE, but the PKR field is now
    // (0,0): plain access works again.
    f.li(t0, 0x55);
    f.sd(t0, 0, s0);
    f.ld(a0, 0, s0);
  });
  EXPECT_EQ(run_guest(prog).exit_code, 0x55);
}

TEST(PkeyLifecycle, SealPkPreventsUseAfterFree) {
  // alloc -> assign -> free -> realloc: the new owner must NOT get the old
  // key while the old pages still carry it.
  sim::Machine machine{{}};
  auto prog = make_main_program([](Program&, Function& f) {
    emit_mmap_rw(f, 1);
    f.mv(a0, s0);
    rt::syscall(f, os::sys::kReport);  // report victim address
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);
    emit_pkey_mprotect(f, s0, 1, s1);
    f.mv(a0, s1);
    rt::syscall(f, os::sys::kPkeyFree);
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    rt::syscall(f, os::sys::kReport);  // the new key
    f.mv(a0, s1);
    rt::syscall(f, os::sys::kReport);  // the old key
    f.li(a0, 0);
  });
  const int pid = machine.load(prog.link());
  machine.run();
  const auto& reports = machine.kernel().reports();
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_NE(reports[1], reports[2]);  // distinct keys: no aliasing
  // The victim page still carries the *old* key, which nobody owns.
  const auto page_key =
      machine.kernel().process(pid).aspace->page_pkey(reports[0]);
  ASSERT_TRUE(page_key.has_value());
  EXPECT_EQ(*page_key, reports[2]);
}

TEST(PkeyLifecycle, MpkFlavourExhibitsUseAfterFree) {
  // The same sequence on the Intel-MPK flavour hands the old key to the new
  // domain while the victim page still carries it — the paper's §II-A bug.
  sim::Machine machine(mpk_machine());
  auto prog = make_main_program([](Program&, Function& f) {
    emit_mmap_rw(f, 1);
    f.mv(a0, s0);
    rt::syscall(f, os::sys::kReport);
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);
    emit_pkey_mprotect(f, s0, 1, s1);
    f.mv(a0, s1);
    rt::syscall(f, os::sys::kPkeyFree);
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    rt::syscall(f, os::sys::kReport);
    f.mv(a0, s1);
    rt::syscall(f, os::sys::kReport);
    f.li(a0, 0);
  });
  const int pid = machine.load(prog.link());
  machine.run();
  const auto& reports = machine.kernel().reports();
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(reports[1], reports[2]);  // SAME key reallocated...
  const auto page_key =
      machine.kernel().process(pid).aspace->page_pkey(reports[0]);
  ASSERT_TRUE(page_key.has_value());
  EXPECT_EQ(*page_key, reports[1]);  // ...and the orphan page shares it
}

// ---------------------------------------------------------------------------
// Effective permissions through the whole stack.
// ---------------------------------------------------------------------------

TEST(PkeyEnforcement, ReadOnlyDomainBlocksStoresWithPkeyFaultInfo) {
  auto prog = make_main_program([](Program&, Function& f) {
    emit_mmap_rw(f, 1);
    f.li(a0, 0);
    f.li(a1, static_cast<i64>(os::pkeyperm::kReadOnly));
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);
    emit_pkey_mprotect(f, s0, 1, s1);
    f.ld(t0, 0, s0);    // read OK
    f.sd(t0, 0, s0);    // write: pkey fault
    f.li(a0, 0);
  });
  const GuestRun run = run_guest(prog);
  ASSERT_EQ(run.faults.size(), 1u);
  EXPECT_EQ(run.faults[0].cause, core::TrapCause::kStorePageFault);
  EXPECT_TRUE(run.faults[0].pkey_fault);  // §III-B.2 augmented SIGSEGV
  EXPECT_EQ(run.faults[0].pkey, 1u);
}

TEST(PkeyEnforcement, WriteOnlyLogDomain) {
  // The paper's write-only log use case (§III-A): a producer can append but
  // nobody can read until the permission flips.
  auto prog = make_main_program([](Program& p, Function& f) {
    rt::add_pkey_lib(p);
    emit_mmap_rw(f, 1);
    f.li(a0, 0);
    f.li(a1, static_cast<i64>(os::pkeyperm::kWriteOnly));
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);
    emit_pkey_mprotect(f, s0, 1, s1);
    f.li(t0, 0xBEEF);
    f.sd(t0, 0, s0);  // append to the log: allowed
    // Flip to read-only and read the entry back.
    f.mv(a0, s1);
    f.li(a1, static_cast<i64>(os::pkeyperm::kReadOnly));
    f.call("__pkey_set");
    f.ld(a0, 0, s0);
  });
  EXPECT_EQ(run_guest(prog).exit_code, 0xBEEF);
}

TEST(PkeyEnforcement, WriteOnlyDomainBlocksReads) {
  auto prog = make_main_program([](Program&, Function& f) {
    emit_mmap_rw(f, 1);
    f.li(a0, 0);
    f.li(a1, static_cast<i64>(os::pkeyperm::kWriteOnly));
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);
    emit_pkey_mprotect(f, s0, 1, s1);
    f.sd(zero, 0, s0);  // OK
    f.ld(a0, 0, s0);    // pkey fault
  });
  const GuestRun run = run_guest(prog);
  ASSERT_EQ(run.faults.size(), 1u);
  EXPECT_EQ(run.faults[0].cause, core::TrapCause::kLoadPageFault);
  EXPECT_TRUE(run.faults[0].pkey_fault);
}

TEST(PkeyEnforcement, GuestPkeySetTogglesPermissions) {
  auto prog = make_main_program([](Program& p, Function& f) {
    rt::add_pkey_lib(p);
    emit_mmap_rw(f, 1);
    f.li(a0, 0);
    f.li(a1, static_cast<i64>(os::pkeyperm::kReadOnly));
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);
    emit_pkey_mprotect(f, s0, 1, s1);
    // Enable write, store, restore read-only (the Func-A pattern, Fig. 3).
    f.mv(a0, s1);
    f.li(a1, static_cast<i64>(os::pkeyperm::kRw));
    f.call("__pkey_set");
    f.li(t0, 7);
    f.sd(t0, 0, s0);
    f.mv(a0, s1);
    f.li(a1, static_cast<i64>(os::pkeyperm::kReadOnly));
    f.call("__pkey_set");
    // Verify the perm reads back.
    f.mv(a0, s1);
    f.call("__pkey_get");
    rt::syscall(f, os::sys::kReport);
    f.ld(a0, 0, s0);
  });
  const GuestRun run = run_guest(prog);
  EXPECT_EQ(run.exit_code, 7);
  EXPECT_EQ(run.reports,
            (std::vector<u64>{static_cast<u64>(os::pkeyperm::kReadOnly)}));
}

// ---------------------------------------------------------------------------
// Sealing feature 1: domain sealing (the Fig. 3 Func-B attack).
// ---------------------------------------------------------------------------

TEST(Sealing, DomainSealBlocksRekeying) {
  auto prog = make_main_program([](Program&, Function& f) {
    emit_mmap_rw(f, 1);
    f.li(a0, 0);
    f.li(a1, static_cast<i64>(os::pkeyperm::kReadOnly));
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);
    emit_pkey_mprotect(f, s0, 1, s1);
    // pkey_seal(pkey, seal_domain=1, seal_page=1)
    f.mv(a0, s1);
    f.li(a1, 1);
    f.li(a2, 1);
    rt::syscall(f, os::sys::kPkeySeal);
    rt::syscall(f, os::sys::kReport);  // expect 0
    // Func-B: allocate a fresh RW key and try to re-key the log.
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s2, a0);
    emit_pkey_mprotect(f, s0, 1, s2);
    f.neg(a0, a0);  // expect EPERM = 1
    rt::syscall(f, os::sys::kReport);
    f.li(a0, 0);
  });
  const GuestRun run = run_guest(prog);
  EXPECT_EQ(run.reports,
            (std::vector<u64>{0, static_cast<u64>(-os::err::kPerm)}));
}

TEST(Sealing, DomainSealBlocksPlainMprotect) {
  auto prog = make_main_program([](Program&, Function& f) {
    emit_mmap_rw(f, 1);
    f.li(a0, 0);
    f.li(a1, static_cast<i64>(os::pkeyperm::kReadOnly));
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);
    emit_pkey_mprotect(f, s0, 1, s1);
    f.mv(a0, s1);
    f.li(a1, 1);
    f.li(a2, 0);
    rt::syscall(f, os::sys::kPkeySeal);
    // mprotect on the sealed domain's pages must fail too.
    f.mv(a0, s0);
    f.li(a1, 4096);
    f.li(a2, 3);
    rt::syscall(f, os::sys::kMprotect);
    f.neg(a0, a0);
  });
  EXPECT_EQ(run_guest(prog).exit_code, -os::err::kPerm);
}

TEST(Sealing, SealUnallocatedKeyIsEinval) {
  auto prog = make_main_program([](Program&, Function& f) {
    f.li(a0, 9);
    f.li(a1, 1);
    f.li(a2, 1);
    rt::syscall(f, os::sys::kPkeySeal);
    f.neg(a0, a0);
  });
  EXPECT_EQ(run_guest(prog).exit_code, -os::err::kInval);
}

// ---------------------------------------------------------------------------
// Sealing feature 2: page sealing (the Fig. 3 Func-C attack).
// ---------------------------------------------------------------------------

TEST(Sealing, PageSealBlocksAddingPages) {
  auto prog = make_main_program([](Program&, Function& f) {
    emit_mmap_rw(f, 1);        // s0 = log
    emit_mmap_rw(f, 1, s2);    // s2 = prices (attacker-controlled)
    f.li(a0, 0);
    f.li(a1, static_cast<i64>(os::pkeyperm::kReadOnly));
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);
    emit_pkey_mprotect(f, s0, 1, s1);
    // Seal pages only.
    f.mv(a0, s1);
    f.li(a1, 0);
    f.li(a2, 1);
    rt::syscall(f, os::sys::kPkeySeal);
    // Func-C: try to pull the prices pages into the log's domain.
    emit_pkey_mprotect(f, s2, 1, s1);
    f.neg(a0, a0);  // EPERM
  });
  EXPECT_EQ(run_guest(prog).exit_code, -os::err::kPerm);
}

TEST(Sealing, PageSealStillAllowsPermChangeOnOwnPages) {
  // seal_page alone does not freeze the domain's own PTE permissions.
  auto prog = make_main_program([](Program&, Function& f) {
    emit_mmap_rw(f, 1);
    f.li(a0, 0);
    f.li(a1, static_cast<i64>(os::pkeyperm::kReadOnly));
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);
    emit_pkey_mprotect(f, s0, 1, s1);
    f.mv(a0, s1);
    f.li(a1, 0);
    f.li(a2, 1);
    rt::syscall(f, os::sys::kPkeySeal);
    // Re-protecting the same pages with the same key is not "adding pages".
    emit_pkey_mprotect(f, s0, 1, s1);
  });
  EXPECT_EQ(run_guest(prog).exit_code, 0);
}

TEST(Sealing, SealDissolvesAfterFullRelease) {
  // "the seal cannot be broken unless the corresponding pkey and all its
  // associated pages are freed" — after free+unmap the key is fresh.
  auto prog = make_main_program([](Program&, Function& f) {
    emit_mmap_rw(f, 1);
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);
    emit_pkey_mprotect(f, s0, 1, s1);
    f.mv(a0, s1);
    f.li(a1, 1);
    f.li(a2, 1);
    rt::syscall(f, os::sys::kPkeySeal);
    f.mv(a0, s1);
    rt::syscall(f, os::sys::kPkeyFree);
    f.mv(a0, s0);
    f.li(a1, 4096);
    rt::syscall(f, os::sys::kMunmap);  // drains the key
    // Reallocate (gets the same key back) and use it unsealed.
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);
    rt::syscall(f, os::sys::kReport);  // expect 1 (recycled)
    emit_mmap_rw(f, 1);
    emit_pkey_mprotect(f, s0, 1, s1);
    f.neg(a0, a0);  // expect 0 (no seal in the way)
  });
  const GuestRun run = run_guest(prog);
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_EQ(run.reports, (std::vector<u64>{1}));
}

// ---------------------------------------------------------------------------
// Sealing feature 3: permission sealing (the Fig. 3 Func-D attack).
// ---------------------------------------------------------------------------

// Program skeleton: a trusted function executes seal.start / WRPKR region /
// seal.end then pkey_perm_seal; an attacker function runs WRPKR elsewhere.
TEST(Sealing, PermSealAllowsWrpkrInsideRange) {
  auto prog = make_main_program([](Program& p, Function& f) {
    f.li(a0, 0);
    f.li(a1, static_cast<i64>(os::pkeyperm::kReadOnly));
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);
    f.call("trusted");  // first run latches the range (WRPKR still unsealed)
    f.mv(a0, s1);
    rt::syscall(f, os::sys::kPkeyPermSeal);
    rt::syscall(f, os::sys::kReport);  // expect 0 (seal committed)
    f.call("trusted");  // second run: WRPKR now sealed but in-range
    f.li(a0, 7);
    rt::syscall(f, os::sys::kReport);  // expect 7 (no trap on the way)
    f.li(a0, 0);

    Function& t = p.add_function("trusted");
    t.seal_start(0);
    t.rdpkr(t2, s1);
    t.wrpkr(s1, t2);  // the in-range WRPKR
    t.seal_end(0);
    t.ret();
  });
  const GuestRun run = run_guest(prog);
  EXPECT_TRUE(run.faults.empty());
  EXPECT_EQ(run.reports, (std::vector<u64>{0, 7}));
}

TEST(Sealing, PermSealBlocksWrpkrOutsideRange) {
  auto prog = make_main_program([](Program& p, Function& f) {
    f.li(a0, 0);
    f.li(a1, static_cast<i64>(os::pkeyperm::kReadOnly));
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);
    f.call("trusted");
    // Func-D: injected WRPKR outside the permissible range, attempting to
    // grant RW (row value 0).
    f.wrpkr(s1, zero);
    f.li(a0, 0);

    Function& t = p.add_function("trusted");
    t.seal_start(0);
    t.rdpkr(t2, s1);
    t.wrpkr(s1, t2);  // in-range WRPKR: fine
    t.seal_end(0);
    t.mv(a0, s1);
    rt::syscall(t, os::sys::kPkeyPermSeal);
    t.ret();
  });
  const GuestRun run = run_guest(prog);
  ASSERT_EQ(run.faults.size(), 1u);
  EXPECT_EQ(run.faults[0].cause, core::TrapCause::kSealViolation);
  EXPECT_TRUE(run.faults[0].pkey_fault);
  EXPECT_EQ(run.faults[0].pkey, 1u);
}

TEST(Sealing, PermSealSecondCallFails) {
  auto prog = make_main_program([](Program&, Function& f) {
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);
    f.seal_start(0);
    f.nop();
    f.seal_end(0);
    f.mv(a0, s1);
    rt::syscall(f, os::sys::kPkeyPermSeal);
    rt::syscall(f, os::sys::kReport);  // 0
    f.mv(a0, s1);
    rt::syscall(f, os::sys::kPkeyPermSeal);
    f.neg(a0, a0);  // EPERM = 1
    rt::syscall(f, os::sys::kReport);
    f.li(a0, 0);
  });
  EXPECT_EQ(run_guest(prog).reports,
            (std::vector<u64>{0, static_cast<u64>(-os::err::kPerm)}));
}

TEST(Sealing, PermSealWithoutLatchedRangeFails) {
  auto prog = make_main_program([](Program&, Function& f) {
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    rt::syscall(f, os::sys::kPkeyPermSeal);  // latches are 0: EINVAL
    f.neg(a0, a0);
  });
  EXPECT_EQ(run_guest(prog).exit_code, -os::err::kInval);
}

TEST(Sealing, PermSealThenZeroPageFreeDissolvesHardwareSeal) {
  // Regression found by the model checker (tests/model_traces/
  // kernel-free-seal-leak-divergence.json): freeing a perm-sealed key that
  // carries no pages takes the immediate-release path, which used to skip
  // the SealReg/PK-CAM scrub — the key's next owner inherited the seal and
  // its first out-of-range WRPKR was fatal.
  auto prog = make_main_program([](Program&, Function& f) {
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);
    f.seal_start(0);
    f.nop();
    f.seal_end(0);
    f.mv(a0, s1);
    rt::syscall(f, os::sys::kPkeyPermSeal);
    rt::syscall(f, os::sys::kReport);  // expect 0 (seal committed)
    f.mv(a0, s1);
    rt::syscall(f, os::sys::kPkeyFree);  // zero pages: immediate release
    rt::syscall(f, os::sys::kReport);    // expect 0
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);
    rt::syscall(f, os::sys::kReport);  // expect 1 (recycled key)
    // The new owner writes its permissions far from the old sealed range;
    // a leaked SealReg bit would make this WRPKR trap.
    f.wrpkr(s1, zero);
    f.li(a0, 0);
  });
  const GuestRun run = run_guest(prog);
  EXPECT_TRUE(run.faults.empty());
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_EQ(run.reports, (std::vector<u64>{0, 0, 1}));
}

TEST(Sealing, DoubleSealIsIdempotentAndAccumulates) {
  auto prog = make_main_program([](Program&, Function& f) {
    emit_mmap_rw(f, 1);
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);
    emit_pkey_mprotect(f, s0, 1, s1);
    // Domain-seal twice: the second call must succeed and change nothing.
    for (int i = 0; i < 2; ++i) {
      f.mv(a0, s1);
      f.li(a1, 1);
      f.li(a2, 0);
      rt::syscall(f, os::sys::kPkeySeal);
      rt::syscall(f, os::sys::kReport);  // expect 0, 0
    }
    // A later call may add the page seal on top of the domain seal.
    f.mv(a0, s1);
    f.li(a1, 0);
    f.li(a2, 1);
    rt::syscall(f, os::sys::kPkeySeal);
    rt::syscall(f, os::sys::kReport);  // expect 0
    // Both seals now hold: rekeying the page away is vetoed.
    emit_pkey_mprotect(f, s0, 1, zero);
    f.neg(a0, a0);
    rt::syscall(f, os::sys::kReport);  // expect -EPERM
    f.li(a0, 0);
  });
  const GuestRun run = run_guest(prog);
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_EQ(run.reports,
            (std::vector<u64>{0, 0, 0, static_cast<u64>(-os::err::kPerm)}));
}

TEST(Sealing, WrpkrOnNeighbourPreservesPermSealedField) {
  // Inline row update: WRPKR naming an unsealed key writes its whole PKR
  // row, but the hardware must re-merge the current field of every *other*
  // perm-sealed key in that row (§IV-C).
  auto prog = make_main_program([](Program& p, Function& f) {
    emit_mmap_rw(f, 1);
    f.li(a0, 0);
    f.li(a1, static_cast<i64>(os::pkeyperm::kReadOnly));
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);  // key 1: read-only, will be perm-sealed
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s2, a0);  // key 2: same PKR row, never sealed
    emit_pkey_mprotect(f, s0, 1, s1);
    f.call("trusted");
    // The attack: WRPKR naming the unsealed neighbour writes row value 0
    // (everything RW). Key 1's write-disable must survive the row write.
    f.wrpkr(s2, zero);
    f.li(t0, 1);
    f.sd(t0, 0, s0);  // store to key 1's page: pkey fault
    f.li(a0, 0);

    Function& t = p.add_function("trusted");
    t.seal_start(0);
    t.rdpkr(t2, s1);
    t.wrpkr(s1, t2);
    t.seal_end(0);
    t.mv(a0, s1);
    rt::syscall(t, os::sys::kPkeyPermSeal);
    t.ret();
  });
  const GuestRun run = run_guest(prog);
  ASSERT_EQ(run.faults.size(), 1u);
  EXPECT_TRUE(run.faults[0].pkey_fault);
  EXPECT_EQ(run.faults[0].pkey, 1u);
}

TEST(PkeyLifecycle, LazyFreeDrainsExactlyAtLastPage) {
  // Quarantine boundary: with two pages carrying the freed key, draining
  // the first page must NOT recycle it; draining the second one must.
  auto prog = make_main_program([](Program&, Function& f) {
    emit_mmap_rw(f, 2);
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s1, a0);
    emit_pkey_mprotect(f, s0, 2, s1);
    f.mv(a0, s1);
    rt::syscall(f, os::sys::kPkeyFree);  // both pages survive: quarantined
    // Rekey page 0 back to the default key: counter drops 2 -> 1.
    emit_pkey_mprotect(f, s0, 1, zero);
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    rt::syscall(f, os::sys::kReport);  // expect 2: key 1 still quarantined
    // Rekey page 1: counter hits 0 exactly, the quarantine drains.
    f.mv(a0, s0);
    f.li(a1, 4096);
    f.add(a0, a0, a1);
    f.li(a1, 4096);
    f.li(a2, 3);
    f.mv(a3, zero);
    rt::syscall(f, os::sys::kPkeyMprotect);
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    rt::syscall(f, os::sys::kReport);  // expect 1: drained and recycled
    f.li(a0, 0);
  });
  const GuestRun run = run_guest(prog);
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_EQ(run.reports, (std::vector<u64>{2, 1}));
}

TEST(Sealing, SealPkSyscallsAreEnosysOnMpk) {
  auto prog = make_main_program([](Program&, Function& f) {
    f.li(a0, 1);
    f.li(a1, 1);
    f.li(a2, 1);
    rt::syscall(f, os::sys::kPkeySeal);
    f.neg(a0, a0);
  });
  EXPECT_EQ(run_guest(prog, mpk_machine()).exit_code, -os::err::kNoSys);
}

// ---------------------------------------------------------------------------
// Threads and context switches (§III-B.2).
// ---------------------------------------------------------------------------

TEST(Threads, CloneRunsChildAndYieldInterleaves) {
  auto prog = make_main_program([](Program& p, Function& f) {
    p.add_zero("flag", 8);
    // Child stack.
    f.li(a0, 0);
    f.li(a1, 16384);
    f.li(a2, 3);
    rt::syscall(f, os::sys::kMmap);
    f.li(t0, 16384);
    f.add(a1, a0, t0);  // stack top
    f.la(a0, "child");
    f.li(a2, 0);
    rt::syscall(f, os::sys::kClone);
    rt::syscall(f, os::sys::kReport);  // child tid (expect 2)
    // Wait for the flag.
    const Label wait = f.new_label(), done = f.new_label();
    f.bind(wait);
    f.la(t0, "flag");
    f.ld(t1, 0, t0);
    f.bnez(t1, done);
    rt::syscall(f, os::sys::kSchedYield);
    f.j(wait);
    f.bind(done);
    f.mv(a0, t1);
    rt::syscall(f, os::sys::kReport);  // expect 77
    f.li(a0, 0);

    Function& c = p.add_function("child");
    c.instrumentable = false;
    c.la(t0, "flag");
    c.li(t1, 77);
    c.sd(t1, 0, t0);
    const Label spin = c.new_label();
    c.bind(spin);
    rt::syscall(c, os::sys::kSchedYield);
    c.j(spin);
  });
  const GuestRun run = run_guest(prog);
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_EQ(run.reports, (std::vector<u64>{2, 77}));
}

TEST(Threads, PkrIsPerThread) {
  // A sibling flipping its own PKR view of a key must not affect this
  // thread's view — the kernel swaps PKR on context switch (§III-B.2).
  auto prog = make_main_program([](Program& p, Function& f) {
    rt::add_pkey_lib(p);
    p.add_zero("flag", 8);
    // Allocate a key with RW perms in this thread.
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s2, a0);
    // Spawn the child (it inherits the current PKR).
    f.li(a0, 0);
    f.li(a1, 16384);
    f.li(a2, 3);
    rt::syscall(f, os::sys::kMmap);
    f.li(t0, 16384);
    f.add(a1, a0, t0);
    f.la(a0, "child");
    f.mv(a2, s2);  // pass the pkey
    rt::syscall(f, os::sys::kClone);
    // Wait until the child changed *its* PKR.
    const Label wait = f.new_label(), done = f.new_label();
    f.bind(wait);
    f.la(t0, "flag");
    f.ld(t1, 0, t0);
    f.bnez(t1, done);
    rt::syscall(f, os::sys::kSchedYield);
    f.j(wait);
    f.bind(done);
    // Our own view must still be 00.
    f.mv(a0, s2);
    f.call("__pkey_get");
    rt::syscall(f, os::sys::kReport);
    f.li(a0, 0);

    Function& c = p.add_function("child");
    c.instrumentable = false;
    c.mv(s2, a0);  // pkey arrives in a0
    c.mv(a0, s2);
    c.li(a1, static_cast<i64>(os::pkeyperm::kNone));
    c.call("__pkey_set");
    // Report the child's own view.
    c.mv(a0, s2);
    c.call("__pkey_get");
    rt::syscall(c, os::sys::kReport);
    c.la(t0, "flag");
    c.li(t1, 1);
    c.sd(t1, 0, t0);
    const Label spin = c.new_label();
    c.bind(spin);
    rt::syscall(c, os::sys::kSchedYield);
    c.j(spin);
  });
  const GuestRun run = run_guest(prog);
  ASSERT_EQ(run.reports.size(), 2u);
  EXPECT_EQ(run.reports[0], static_cast<u64>(os::pkeyperm::kNone));  // child
  EXPECT_EQ(run.reports[1], static_cast<u64>(os::pkeyperm::kRw));    // parent
}

TEST(Threads, PreemptionInterleavesBusyLoops) {
  // The child never yields; only the timer quantum lets main observe its
  // progress.
  sim::MachineConfig cfg;
  cfg.preempt_quantum = 2'000;
  auto prog = make_main_program([](Program& p, Function& f) {
    p.add_zero("counter", 8);
    f.li(a0, 0);
    f.li(a1, 16384);
    f.li(a2, 3);
    rt::syscall(f, os::sys::kMmap);
    f.li(t0, 16384);
    f.add(a1, a0, t0);
    f.la(a0, "child");
    f.li(a2, 0);
    rt::syscall(f, os::sys::kClone);
    // Busy-wait (no yields) until the counter moves.
    const Label wait = f.new_label(), done = f.new_label();
    f.bind(wait);
    f.la(t0, "counter");
    f.ld(t1, 0, t0);
    f.bnez(t1, done);
    f.j(wait);
    f.bind(done);
    f.li(a0, 0);

    Function& c = p.add_function("child");
    c.instrumentable = false;
    c.la(t0, "counter");
    const Label loop = c.new_label();
    c.li(t1, 0);
    c.bind(loop);
    c.addi(t1, t1, 1);
    c.sd(t1, 0, t0);
    c.j(loop);
  });
  const GuestRun run = run_guest(prog, cfg, 10'000'000);
  EXPECT_TRUE(run.outcome.completed);
  EXPECT_EQ(run.exit_code, 0);
}

TEST(Threads, InterruptedGateNeverLeaksElevatedPkrToSibling) {
  // The interrupted-gate attack shape (serve red team, DESIGN.md §13): a
  // tight preemption quantum lands timer traps between a perm-sealed
  // gate's entry WRPKR and its monotonic RDPKR check, while a sibling
  // thread probes the monitor-tagged page on every slice it gets. The
  // kernel's per-thread PKR save/restore must guarantee that (a) the
  // sibling always resumes with its own closed row — every probe denied —
  // and (b) the gate thread always resumes with its elevated row intact,
  // so its in-gate RDPKR check and secret load never misfire.
  constexpr u64 kSecret = 0x77;
  constexpr u64 kSentinel = 0x5AFE;
  constexpr i64 kRowOpen = 0;      // pkey 1 field 00 = RW
  constexpr i64 kRowClosed = 0xC;  // pkey 1 field 11 = no access
  sim::MachineConfig cfg;
  cfg.preempt_quantum = 13;  // traps reset the quantum; keep it inside gates
  auto prog = make_main_program([](Program& p, Function& f) {
    p.add_zero("secret_ptr", 8);
    p.add_zero("stop", 8);
    p.add_zero("attempts", 8);
    p.add_zero("successes", 8);
    p.add_zero("mismatch", 8);
    p.add_zero("badsecret", 8);
    rt::add_pkey_lib(p);

    f.la(a0, "sig");
    rt::syscall(f, os::sys::kSigaction);
    // Secret page, tagged with freshly allocated pkey 1 (RW for the tag
    // write, closed before the sibling exists).
    f.li(a0, 0);
    f.li(a1, 4096);
    f.li(a2, 3);
    rt::syscall(f, os::sys::kMmap);
    f.mv(s3, a0);
    f.li(a0, 0);
    f.li(a1, static_cast<i64>(os::pkeyperm::kRw));
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s2, a0);  // pkey 1
    f.mv(a0, s3);
    f.li(a1, 4096);
    f.li(a2, 3);
    f.mv(a3, s2);
    rt::syscall(f, os::sys::kPkeyMprotect);
    f.li(t0, 0x77);
    f.sd(t0, 0, s3);
    f.la(t0, "secret_ptr");
    f.sd(s3, 0, t0);
    f.mv(a0, s2);
    f.li(a1, static_cast<i64>(os::pkeyperm::kNone));
    f.call("__pkey_set");
    // One staging pass through the gate latches its seal markers, then the
    // perm-seal commits: from here WRPKR naming pkey 1 is legal only
    // inside the gate.
    f.call("gate");
    f.mv(a0, s2);
    rt::syscall(f, os::sys::kPkeyPermSeal);
    rt::syscall(f, os::sys::kReport);  // 0 = seal accepted
    // Sibling inherits the closed row.
    f.li(a0, 0);
    f.li(a1, 16384);
    f.li(a2, 3);
    rt::syscall(f, os::sys::kMmap);
    f.li(t0, 16384);
    f.add(a1, a0, t0);
    f.la(a0, "probe");
    f.li(a2, 0);
    rt::syscall(f, os::sys::kClone);
    // Many crossings; preemption lands at varied offsets inside the gate.
    const Label loop = f.new_label(), done = f.new_label();
    f.li(s4, 40);
    f.bind(loop);
    f.beqz(s4, done);
    f.call("gate");
    f.addi(s4, s4, -1);
    f.j(loop);
    f.bind(done);
    f.la(t0, "stop");
    f.li(t1, 1);
    f.sd(t1, 0, t0);
    for (const char* counter : {"attempts", "successes", "mismatch",
                                "badsecret"}) {
      f.la(t0, counter);
      f.ld(a0, 0, t0);
      rt::syscall(f, os::sys::kReport);
    }
    f.li(a0, 0);

    Function& g = p.add_function("gate");
    g.instrumentable = false;
    const Label g_row_ok = g.new_label(), g_sum_ok = g.new_label();
    g.seal_start(0);
    g.li(t0, 1);
    g.li(t1, kRowOpen);
    g.wrpkr(t0, t1);
    // Filler long enough that the 13-instruction quantum fires between the
    // entry WRPKR and the monotonic check below.
    for (int i = 0; i < 16; ++i) g.addi(t4, t4, 1);
    g.rdpkr(t3, t0);
    g.beq(t3, t1, g_row_ok);
    g.la(t2, "mismatch");  // resumed with someone else's row
    g.ld(t3, 0, t2);
    g.addi(t3, t3, 1);
    g.sd(t3, 0, t2);
    g.bind(g_row_ok);
    g.la(t2, "secret_ptr");
    g.ld(t2, 0, t2);
    g.ld(t3, 0, t2);
    g.li(t4, kSecret);
    g.beq(t3, t4, g_sum_ok);
    g.la(t2, "badsecret");
    g.ld(t3, 0, t2);
    g.addi(t3, t3, 1);
    g.sd(t3, 0, t2);
    g.bind(g_sum_ok);
    g.li(t0, 1);
    g.li(t1, kRowClosed);
    g.wrpkr(t0, t1);
    g.seal_end(0);
    g.ret();

    Function& c = p.add_function("probe");
    c.instrumentable = false;
    const Label c_loop = c.new_label(), c_denied = c.new_label(),
                c_spin = c.new_label();
    c.la(s5, "secret_ptr");
    c.ld(s5, 0, s5);
    c.li(t6, kSentinel);
    c.bind(c_loop);
    c.la(t0, "stop");
    c.ld(t0, 0, t0);
    c.bnez(t0, c_spin);
    c.la(t0, "attempts");
    c.ld(t1, 0, t0);
    c.addi(t1, t1, 1);
    c.sd(t1, 0, t0);
    // A denied load is skipped by the handler and leaves the sentinel; the
    // secret slot holds 0x77, so a load that lands cannot fake a denial.
    c.mv(t2, t6);
    c.ld(t2, 0, s5);
    c.beq(t2, t6, c_denied);
    c.la(t0, "successes");
    c.ld(t1, 0, t0);
    c.addi(t1, t1, 1);
    c.sd(t1, 0, t0);
    c.bind(c_denied);
    rt::syscall(c, os::sys::kSchedYield);
    c.j(c_loop);
    c.bind(c_spin);
    rt::syscall(c, os::sys::kSchedYield);
    c.j(c_spin);

    Function& s = p.add_function("sig");
    s.instrumentable = false;
    s.li(a0, 1);  // skip the denied instruction
    rt::syscall(s, os::sys::kSigreturn);
  });
  const GuestRun run = run_guest(prog, cfg, 10'000'000);
  ASSERT_TRUE(run.outcome.completed);
  EXPECT_EQ(run.exit_code, 0);
  ASSERT_EQ(run.reports.size(), 5u);
  EXPECT_EQ(run.reports[0], 0u);  // perm-seal accepted
  EXPECT_GT(run.reports[1], 0u);  // the sibling really probed
  EXPECT_EQ(run.reports[2], 0u);  // ...and never landed a single load
  EXPECT_EQ(run.reports[3], 0u);  // gate never resumed with a foreign row
  EXPECT_EQ(run.reports[4], 0u);  // secret reads inside the gate all clean
  // Every recorded denial belongs to the probe thread (tid 2), on the
  // sealed pkey; the gate thread never faulted.
  EXPECT_FALSE(run.faults.empty());
  for (const auto& fr : run.faults) {
    EXPECT_EQ(fr.tid, 2);
    EXPECT_EQ(fr.pkey, 1u);
  }
  EXPECT_EQ(run.kstats.seal_violations, 0u);
}

TEST(Threads, GetTidDistinguishesThreads) {
  auto prog = make_main_program([](Program& p, Function& f) {
    p.add_zero("flag", 8);
    rt::syscall(f, os::sys::kGetTid);
    rt::syscall(f, os::sys::kReport);  // main tid = 1
    f.li(a0, 0);
    f.li(a1, 16384);
    f.li(a2, 3);
    rt::syscall(f, os::sys::kMmap);
    f.li(t0, 16384);
    f.add(a1, a0, t0);
    f.la(a0, "child");
    f.li(a2, 0);
    rt::syscall(f, os::sys::kClone);
    const Label wait = f.new_label(), done = f.new_label();
    f.bind(wait);
    f.la(t0, "flag");
    f.ld(t1, 0, t0);
    f.bnez(t1, done);
    rt::syscall(f, os::sys::kSchedYield);
    f.j(wait);
    f.bind(done);
    f.li(a0, 0);

    Function& c = p.add_function("child");
    c.instrumentable = false;
    rt::syscall(c, os::sys::kGetTid);
    rt::syscall(c, os::sys::kReport);  // child tid = 2
    c.la(t0, "flag");
    c.li(t1, 1);
    c.sd(t1, 0, t0);
    const Label spin = c.new_label();
    c.bind(spin);
    rt::syscall(c, os::sys::kSchedYield);
    c.j(spin);
  });
  EXPECT_EQ(run_guest(prog).reports, (std::vector<u64>{1, 2}));
}

// ---------------------------------------------------------------------------
// Key-manager unit-level properties (host-side).
// ---------------------------------------------------------------------------

TEST(KeyManagerUnit, CounterInvariantsUnderRandomOps) {
  os::SealPkKeyManager mgr;
  Rng rng(123);
  std::vector<u32> live;
  std::map<u32, i64> pages;
  for (int step = 0; step < 20'000; ++step) {
    const int op = static_cast<int>(rng.below(4));
    if (op == 0) {  // alloc
      const i64 k = mgr.alloc();
      if (k > 0) {
        live.push_back(static_cast<u32>(k));
        EXPECT_FALSE(mgr.dirty(static_cast<u32>(k)));
        EXPECT_EQ(mgr.page_count(static_cast<u32>(k)), 0u);
      }
    } else if (op == 1 && !live.empty()) {  // add pages
      const u32 k = live[rng.below(live.size())];
      mgr.page_delta(k, 3);
      pages[k] += 3;
    } else if (op == 2 && !live.empty()) {  // remove one page
      const u32 k = live[rng.below(live.size())];
      if (pages[k] > 0) {
        mgr.page_delta(k, -1);
        pages[k] -= 1;
      }
    } else if (op == 3 && !live.empty()) {  // free
      const size_t idx = rng.below(live.size());
      const u32 k = live[idx];
      EXPECT_EQ(mgr.free_key(k), 0);
      live.erase(live.begin() + static_cast<long>(idx));
      if (pages[k] > 0) {
        EXPECT_TRUE(mgr.dirty(k));
        // Drain it now and verify it becomes clean.
        mgr.page_delta(k, -pages[k]);
        pages[k] = 0;
        EXPECT_FALSE(mgr.dirty(k));
        EXPECT_FALSE(mgr.allocated(k));
      }
    }
    // Invariant: a key is never both allocated and dirty.
    for (const u32 k : live) {
      EXPECT_TRUE(mgr.allocated(k));
      EXPECT_FALSE(mgr.dirty(k));
    }
  }
}

TEST(KeyManagerUnit, DrainedHookFires) {
  os::SealPkKeyManager mgr;
  u32 drained = 0;
  mgr.set_drained_hook([&](u32 k) { drained = k; });
  const i64 k = mgr.alloc();
  ASSERT_GT(k, 0);
  mgr.page_delta(static_cast<u32>(k), 2);
  mgr.free_key(static_cast<u32>(k));
  EXPECT_EQ(drained, 0u);
  mgr.page_delta(static_cast<u32>(k), -1);
  EXPECT_EQ(drained, 0u);
  mgr.page_delta(static_cast<u32>(k), -1);
  EXPECT_EQ(drained, static_cast<u32>(k));
}

TEST(KeyManagerUnit, MpkManagerHasNoQuarantine) {
  mpk::MpkKeyManager mgr;
  const i64 k = mgr.alloc();
  ASSERT_EQ(k, 1);
  mgr.page_delta(1, 5);  // ignored
  EXPECT_EQ(mgr.free_key(1), 0);
  EXPECT_EQ(mgr.alloc(), 1);  // immediately recycled: the bug
}

}  // namespace
}  // namespace sealpk
