// Differential fuzzing of the *enforcement* path: random sequences of
// permission changes (syscalls and user-space WRPKR flips) interleaved
// with loads/stores. An independent host oracle predicts the outcome of
// every access from first principles (Figure 2's effective-permission
// rule); the first predicted fault must kill the guest with exactly that
// cause and pkey, and everything before it must succeed.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "guest_test_util.h"

namespace sealpk {
namespace {

using isa::Function;
using isa::Program;
using namespace isa;

constexpr unsigned kRegions = 3;
constexpr u64 kRegionBase = 0x3000'0000;
constexpr u64 kRegionStride = 0x10000;
constexpr unsigned kKeys = 4;  // keys 1..4 pre-allocated
constexpr u64 kSentinel = 0xACCE55;

u64 region_addr(unsigned r) { return kRegionBase + r * kRegionStride; }

struct Oracle {
  // Per-key 2-bit (RD, WD) hardware permission, and per-region key.
  std::array<u8, kKeys + 1> perm{};  // index 0 = default key
  std::array<u32, kRegions> region_key{};

  bool load_ok(unsigned r) const {
    return (perm[region_key[r]] & 0b10) == 0;
  }
  bool store_ok(unsigned r) const {
    return (perm[region_key[r]] & 0b01) == 0;
  }
};

struct Op {
  enum class Kind : u8 { kSetPerm, kAssign, kLoad, kStore } kind;
  unsigned region = 0;
  u32 key = 0;
  u8 perm = 0;
};

Op random_op(Rng& rng) {
  Op op;
  const u64 pick = rng.below(10);
  if (pick < 3) {
    op.kind = Op::Kind::kSetPerm;
  } else if (pick < 5) {
    op.kind = Op::Kind::kAssign;
  } else if (pick < 8) {
    op.kind = Op::Kind::kLoad;
  } else {
    op.kind = Op::Kind::kStore;
  }
  op.region = static_cast<unsigned>(rng.below(kRegions));
  op.key = static_cast<u32>(1 + rng.below(kKeys));
  op.perm = static_cast<u8>(rng.below(4));
  return op;
}

struct Expectation {
  std::vector<u64> reports;
  bool faults = false;
  core::TrapCause cause = core::TrapCause::kLoadPageFault;
  u32 faulting_key = 0;
};

// Emits `op`; returns false when the oracle predicts this op kills the
// process (the caller stops emitting — anything after would be dead code).
bool emit_op(Function& f, Oracle& oracle, Expectation& expect,
             const Op& op) {
  switch (op.kind) {
    case Op::Kind::kSetPerm:
      // User-space flip via RDPKR/WRPKR (no syscall, Figure 3's
      // pkey_set).
      f.li(a0, op.key);
      f.li(a1, op.perm);
      f.call("__pkey_set");
      oracle.perm[op.key] = op.perm;
      return true;
    case Op::Kind::kAssign:
      f.li(a0, static_cast<i64>(region_addr(op.region)));
      f.li(a1, 4096);
      f.li(a2, 3);
      f.li(a3, op.key);
      rt::syscall(f, os::sys::kPkeyMprotect);
      rt::syscall(f, os::sys::kReport);
      expect.reports.push_back(0);  // all keys are live: always succeeds
      oracle.region_key[op.region] = op.key;
      return true;
    case Op::Kind::kLoad:
      f.li(t0, static_cast<i64>(region_addr(op.region)));
      f.ld(t1, 0, t0);
      if (!oracle.load_ok(op.region)) {
        expect.faults = true;
        expect.cause = core::TrapCause::kLoadPageFault;
        expect.faulting_key = oracle.region_key[op.region];
        return false;
      }
      f.li(a0, kSentinel);
      rt::syscall(f, os::sys::kReport);
      expect.reports.push_back(kSentinel);
      return true;
    case Op::Kind::kStore:
      f.li(t0, static_cast<i64>(region_addr(op.region)));
      f.sd(t0, 0, t0);
      if (!oracle.store_ok(op.region)) {
        expect.faults = true;
        expect.cause = core::TrapCause::kStorePageFault;
        expect.faulting_key = oracle.region_key[op.region];
        return false;
      }
      f.li(a0, kSentinel);
      rt::syscall(f, os::sys::kReport);
      expect.reports.push_back(kSentinel);
      return true;
  }
  return true;
}

class FuzzAccessTest : public ::testing::TestWithParam<u64> {};

TEST_P(FuzzAccessTest, EnforcementMatchesOracle) {
  Rng rng(GetParam() * 31 + 5);
  Oracle oracle;
  Expectation expect;
  Program prog;
  rt::add_crt0(prog);
  rt::add_pkey_lib(prog);
  Function& f = prog.add_function("main");
  f.addi(sp, sp, -16);
  f.sd(ra, 0, sp);
  // Fixture: map the regions, allocate keys 1..kKeys with permissive
  // hardware perms (alloc init = 0).
  for (unsigned r = 0; r < kRegions; ++r) {
    f.li(a0, static_cast<i64>(region_addr(r)));
    f.li(a1, 4096);
    f.li(a2, 3);
    rt::syscall(f, os::sys::kMmap);
  }
  for (unsigned k = 0; k < kKeys; ++k) {
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
  }
  // Random phase.
  for (int i = 0; i < 250; ++i) {
    const Op op = random_op(rng);
    if (!emit_op(f, oracle, expect, op)) break;  // predicted kill
  }
  f.ld(ra, 0, sp);
  f.addi(sp, sp, 16);
  f.li(a0, 0);
  f.ret();

  const auto run = testutil::run_guest(prog);
  ASSERT_TRUE(run.outcome.completed);
  EXPECT_EQ(run.reports, expect.reports);
  if (expect.faults) {
    ASSERT_EQ(run.faults.size(), 1u);
    EXPECT_EQ(run.faults[0].cause, expect.cause);
    EXPECT_TRUE(run.faults[0].pkey_fault);
    EXPECT_EQ(run.faults[0].pkey, expect.faulting_key);
  } else {
    EXPECT_TRUE(run.faults.empty());
    EXPECT_EQ(run.exit_code, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzAccessTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 42u, 777u,
                                           31337u));

}  // namespace
}  // namespace sealpk
