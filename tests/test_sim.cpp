// Machine-level tests: run-loop behaviour, instruction budgets,
// multi-process isolation (separate address spaces, per-process SealReg /
// PK-CAM state, pkey namespaces), and stats plumbing.
#include <gtest/gtest.h>

#include <algorithm>

#include "guest_test_util.h"

namespace sealpk {
namespace {

using isa::Function;
using isa::Label;
using isa::Program;
using namespace isa;
using testutil::make_main_program;

TEST(Machine, RunStopsAtInstructionBudget) {
  auto prog = make_main_program([](Program&, Function& f) {
    const Label spin = f.new_label();
    f.bind(spin);
    f.j(spin);  // never exits
  });
  sim::Machine machine{sim::MachineConfig{}};
  machine.load(prog.link());
  const auto outcome = machine.run(10'000);
  EXPECT_FALSE(outcome.completed);
  EXPECT_GE(outcome.instructions, 10'000u);
  EXPECT_LE(outcome.instructions, 10'010u);
}

TEST(Machine, RunIsResumable) {
  auto prog = make_main_program([](Program&, Function& f) {
    f.li(s0, 0);
    const Label loop = f.new_label(), done = f.new_label();
    f.bind(loop);
    f.li(t0, 50'000);
    f.bgeu(s0, t0, done);
    f.addi(s0, s0, 1);
    f.j(loop);
    f.bind(done);
    f.li(a0, 9);
  });
  sim::Machine machine{sim::MachineConfig{}};
  const int pid = machine.load(prog.link());
  while (!machine.run(10'000).completed) {
  }
  EXPECT_EQ(machine.exit_code(pid), 9);
}

TEST(Machine, CyclesAdvanceMonotonically) {
  auto prog = make_main_program([](Program&, Function& f) { f.li(a0, 0); });
  sim::Machine machine{sim::MachineConfig{}};
  machine.load(prog.link());
  const auto outcome = machine.run();
  EXPECT_TRUE(outcome.completed);
  EXPECT_GT(outcome.cycles, outcome.instructions);  // traps/syscalls cost
}

TEST(Machine, DeterministicAcrossRuns) {
  auto build = [] {
    return make_main_program([](Program& p, Function& f) {
      rt::add_rand_lib(p);
      p.add_zero("state", 8);
      f.la(t0, "state");
      f.li(t1, 123);
      f.sd(t1, 0, t0);
      f.la(a0, "state");
      f.call("__rand");
      rt::syscall(f, os::sys::kReport);
      f.li(a0, 0);
    });
  };
  const auto a = testutil::run_guest(build());
  const auto b = testutil::run_guest(build());
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.reports, b.reports);
}

// ---------------------------------------------------------------------------
// Multi-process isolation.
// ---------------------------------------------------------------------------

// A process that allocates a key, maps a page into it, seals, reports its
// own observations, then spins yielding until `rounds` yields pass.
Program make_tenant(u64 tag, bool seal) {
  Program prog;
  rt::add_crt0(prog);
  Function& f = prog.add_function("main");
  f.addi(sp, sp, -16);
  f.sd(ra, 0, sp);
  f.li(a0, 0);
  f.li(a1, 4096);
  f.li(a2, 3);
  rt::syscall(f, os::sys::kMmap);
  f.mv(s0, a0);
  f.li(a0, 0);
  f.li(a1, 0);
  rt::syscall(f, os::sys::kPkeyAlloc);
  f.mv(s1, a0);
  rt::syscall(f, os::sys::kReport);  // [0] my first key
  f.mv(a0, s0);
  f.li(a1, 4096);
  f.li(a2, 3);
  f.mv(a3, s1);
  rt::syscall(f, os::sys::kPkeyMprotect);
  if (seal) {
    f.mv(a0, s1);
    f.li(a1, 1);
    f.li(a2, 1);
    rt::syscall(f, os::sys::kPkeySeal);
  }
  // Write my tag, yield a few times (interleave with the other tenant),
  // then verify my page is untouched and my key still works.
  f.li(t0, static_cast<i64>(tag));
  f.sd(t0, 0, s0);
  for (int i = 0; i < 4; ++i) rt::syscall(f, os::sys::kSchedYield);
  f.ld(a0, 0, s0);
  rt::syscall(f, os::sys::kReport);  // [1] my tag back
  // Second allocation: each process has its own key namespace, so both
  // tenants should see the same sequence (1, then 2).
  f.li(a0, 0);
  f.li(a1, 0);
  rt::syscall(f, os::sys::kPkeyAlloc);
  rt::syscall(f, os::sys::kReport);  // [2] my second key
  f.ld(ra, 0, sp);
  f.addi(sp, sp, 16);
  f.li(a0, 0);
  f.ret();
  return prog;
}

TEST(MultiProcess, AddressSpacesAndKeyNamespacesAreIsolated) {
  sim::MachineConfig cfg;
  cfg.preempt_quantum = 1'000;
  sim::Machine machine(cfg);
  const int pid_a = machine.load(make_tenant(0xAAAA, true).link());
  const int pid_b = machine.load(make_tenant(0xBBBB, false).link());
  const auto outcome = machine.run(50'000'000);
  ASSERT_TRUE(outcome.completed);
  EXPECT_EQ(machine.exit_code(pid_a), 0);
  EXPECT_EQ(machine.exit_code(pid_b), 0);
  // Reports interleave, but each process must have reported
  // key=1, its own tag, key=2 — in that per-process order.
  const auto& reports = machine.kernel().reports();
  ASSERT_EQ(reports.size(), 6u);
  std::vector<u64> a_seq, b_seq;
  for (const u64 r : reports) {
    if (r == 0xAAAA) {
      a_seq.push_back(r);
    } else if (r == 0xBBBB) {
      b_seq.push_back(r);
    } else if (a_seq.size() <= b_seq.size() && a_seq.size() < 3) {
      // key reports: attribute by arrival pattern — both sequences are
      // (1, tag, 2), so just check multiset below instead.
    }
  }
  EXPECT_EQ(a_seq, (std::vector<u64>{0xAAAA}));
  EXPECT_EQ(b_seq, (std::vector<u64>{0xBBBB}));
  // Both processes got key 1 first and key 2 second: count them.
  EXPECT_EQ(std::count(reports.begin(), reports.end(), 1u), 2);
  EXPECT_EQ(std::count(reports.begin(), reports.end(), 2u), 2);
}

TEST(MultiProcess, SealStateIsPerProcess) {
  // Tenant A seals its domain; tenant B (unsealed) must still be able to
  // re-key its own pages even though A's seal bitmap lives in the same
  // hardware SealUnit (swapped on process switch).
  Program prog_a = make_tenant(0x1, true);
  // Tenant B re-keys its page after the yields — legal only if A's seal
  // did not leak into B's process state.
  Program prog_b;
  rt::add_crt0(prog_b);
  Function& f = prog_b.add_function("main");
  f.addi(sp, sp, -16);
  f.sd(ra, 0, sp);
  f.li(a0, 0);
  f.li(a1, 4096);
  f.li(a2, 3);
  rt::syscall(f, os::sys::kMmap);
  f.mv(s0, a0);
  f.li(a0, 0);
  f.li(a1, 0);
  rt::syscall(f, os::sys::kPkeyAlloc);
  f.mv(s1, a0);  // key 1 — the same numeric key A sealed in ITS process
  f.mv(a0, s0);
  f.li(a1, 4096);
  f.li(a2, 3);
  f.mv(a3, s1);
  rt::syscall(f, os::sys::kPkeyMprotect);
  for (int i = 0; i < 4; ++i) rt::syscall(f, os::sys::kSchedYield);
  // Re-key to a fresh domain: would be EPERM if A's domain seal leaked.
  f.li(a0, 0);
  f.li(a1, 0);
  rt::syscall(f, os::sys::kPkeyAlloc);
  f.mv(a3, a0);
  f.mv(a0, s0);
  f.li(a1, 4096);
  f.li(a2, 3);
  rt::syscall(f, os::sys::kPkeyMprotect);
  f.neg(a0, a0);
  rt::syscall(f, os::sys::kReport);  // expect 0 (allowed)
  f.li(a0, 0);
  f.ld(ra, 0, sp);
  f.addi(sp, sp, 16);
  f.ret();

  sim::MachineConfig cfg;
  cfg.preempt_quantum = 1'000;
  sim::Machine machine(cfg);
  const int pid_a = machine.load(prog_a.link());
  const int pid_b = machine.load(prog_b.link());
  ASSERT_TRUE(machine.run(50'000'000).completed);
  EXPECT_EQ(machine.exit_code(pid_a), 0);
  EXPECT_EQ(machine.exit_code(pid_b), 0);
  // B's re-key succeeded (reported 0).
  const auto& reports = machine.kernel().reports();
  EXPECT_EQ(std::count(reports.begin(), reports.end(), 0u), 1);
}

TEST(MultiProcess, FaultInOneProcessDoesNotKillTheOther) {
  auto crasher = make_main_program([](Program&, Function& f) {
    f.li(t0, 0x6000'0000);
    f.ld(t1, 0, t0);  // unmapped: killed
    f.li(a0, 0);
  });
  auto survivor = make_main_program([](Program&, Function& f) {
    for (int i = 0; i < 3; ++i) rt::syscall(f, os::sys::kSchedYield);
    f.li(a0, 5);
  });
  sim::MachineConfig cfg;
  cfg.preempt_quantum = 500;
  sim::Machine machine(cfg);
  const int pid_crash = machine.load(crasher.link());
  const int pid_ok = machine.load(survivor.link());
  ASSERT_TRUE(machine.run(10'000'000).completed);
  EXPECT_LT(machine.exit_code(pid_crash), 0);
  EXPECT_EQ(machine.exit_code(pid_ok), 5);
  ASSERT_EQ(machine.kernel().faults().size(), 1u);
  EXPECT_EQ(machine.kernel().faults()[0].pid, pid_crash);
}

TEST(Machine, ExitCodeSentinelForUnknownPid) {
  sim::Machine machine{sim::MachineConfig{}};
  EXPECT_FALSE(machine.has_process(1));
  EXPECT_FALSE(machine.has_process(-3));
  EXPECT_EQ(machine.exit_code(1), sim::Machine::kNoExitCode);
  EXPECT_EQ(machine.exit_code(9999), sim::Machine::kNoExitCode);

  auto prog = make_main_program([](Program&, Function& f) { f.li(a0, 4); });
  const int pid = machine.load(prog.link());
  EXPECT_TRUE(machine.has_process(pid));
  EXPECT_FALSE(machine.has_process(pid + 1));
  EXPECT_EQ(machine.exit_code(pid + 1), sim::Machine::kNoExitCode);
  ASSERT_TRUE(machine.run().completed);
  EXPECT_EQ(machine.exit_code(pid), 4);
  // The sentinel never collides with a real exit code, including the
  // robustness kill codes.
  EXPECT_LT(sim::Machine::kNoExitCode, os::kExitMachineCheck);
}

TEST(Machine, SameImageLoadedTwiceGetsIndependentProcesses) {
  // Each instance reports its first allocated pkey and exits with it:
  // per-process key namespaces mean both must independently get key 1.
  auto prog = make_main_program([](Program&, Function& f) {
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s0, a0);
    rt::syscall(f, os::sys::kReport);
    for (int i = 0; i < 2; ++i) rt::syscall(f, os::sys::kSchedYield);
    f.mv(a0, s0);
  });
  const isa::Image image = prog.link();
  sim::MachineConfig cfg;
  cfg.preempt_quantum = 500;
  sim::Machine machine(cfg);
  const int pid_a = machine.load(image);
  const int pid_b = machine.load(image);
  ASSERT_NE(pid_a, sim::Machine::kLoadRefused);
  ASSERT_NE(pid_b, sim::Machine::kLoadRefused);
  EXPECT_NE(pid_a, pid_b);
  ASSERT_TRUE(machine.run(50'000'000).completed);
  // Both processes allocated "their" key 1 and exited with it.
  EXPECT_EQ(machine.exit_code(pid_a), 1);
  EXPECT_EQ(machine.exit_code(pid_b), 1);
  const auto& reports = machine.kernel().reports();
  EXPECT_EQ(std::count(reports.begin(), reports.end(), 1u), 2);
}

TEST(MachineStats, KernelCountsSyscalls) {
  auto prog = make_main_program([](Program&, Function& f) {
    for (int i = 0; i < 3; ++i) {
      f.li(a0, i);
      rt::syscall(f, os::sys::kReport);
    }
    f.li(a0, 0);
  });
  sim::Machine machine{sim::MachineConfig{}};
  machine.load(prog.link());
  machine.run();
  const auto& stats = machine.kernel().stats();
  EXPECT_EQ(stats.syscall_counts.at(os::sys::kReport), 3u);
  EXPECT_EQ(stats.syscall_counts.at(os::sys::kExit), 1u);
  EXPECT_GE(stats.syscalls, 4u);
}

}  // namespace
}  // namespace sealpk
