// Checkpoint/restore tests: serialization primitives, whole-machine
// snapshot round trips (bit-exact resume across ≥5 workloads, with and
// without fault injection), snapshot-rollback recovery, malformed-blob
// rejection, and the committed golden-file format-compatibility check.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/checksum.h"
#include "common/rng.h"
#include "common/serial.h"
#include "guest_test_util.h"
#include "passes/shadow_stack.h"
#include "snapshot/snapshot.h"
#include "workloads/workload.h"

namespace sealpk {
namespace {

// ---------------------------------------------------------------------------
// Primitives.
// ---------------------------------------------------------------------------

TEST(Serial, RoundTripsEveryPrimitive) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u16(0xBEEF);
  w.put_u32(0xDEADBEEFu);
  w.put_u64(0x0123456789ABCDEFull);
  w.put_i64(-42);
  w.put_bool(true);
  w.put_bool(false);
  w.put_f64(3.25);
  const std::string with_nul("hello\0world", 11);  // strings may carry NULs
  w.put_str(with_nul);
  std::bitset<128> bits;
  bits.set(0);
  bits.set(63);
  bits.set(64);
  bits.set(127);
  w.put_bitset(bits);

  ByteReader r(w.buffer());
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u16(), 0xBEEF);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_TRUE(r.get_bool());
  EXPECT_FALSE(r.get_bool());
  EXPECT_EQ(r.get_f64(), 3.25);
  EXPECT_EQ(r.get_str(), with_nul);
  EXPECT_EQ(r.get_bitset<128>(), bits);
  EXPECT_TRUE(r.done());
}

TEST(Serial, ReaderRejectsTruncatedStream) {
  ByteWriter w;
  w.put_u32(7);
  ByteReader r(w.buffer());
  r.get_u16();
  r.get_u16();
  EXPECT_THROW(r.get_u8(), CheckError);
}

TEST(Rng, StateRoundTripResumesIdentically) {
  Rng a(1234);
  for (int i = 0; i < 100; ++i) a.next();
  const u64 mid = a.state();
  std::vector<u64> expect;
  for (int i = 0; i < 64; ++i) expect.push_back(a.next());

  Rng b(999);  // different seed: state() must fully override it
  b.set_state(mid);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(b.next(), expect[i]);
  EXPECT_EQ(a.state(), b.state());
}

TEST(Checksum, MatchesKnownFnv1aVector) {
  // FNV-1a 64 of "a" is a published test vector.
  const u8 a = 'a';
  EXPECT_EQ(checksum64(&a, 1), 0xAF63DC4C8601EC8Cull);
  Checksum64 inc;
  inc.update(&a, 1);
  EXPECT_EQ(inc.value(), 0xAF63DC4C8601EC8Cull);
}

// ---------------------------------------------------------------------------
// Whole-machine round trips.
// ---------------------------------------------------------------------------

const wl::Workload& workload_named(const std::string& name) {
  for (const auto& w : wl::all_workloads()) {
    if (name == w.name) return w;
  }
  ADD_FAILURE() << "unknown workload " << name;
  return wl::all_workloads().front();
}

// Runs `image` to `at`, snapshots, finishes, and checks that a second
// machine resumed from the snapshot reaches a bit-identical final state.
void expect_bit_exact_resume(const isa::Image& image,
                             const sim::MachineConfig& config, u64 at) {
  sim::Machine first(config);
  ASSERT_NE(first.load(image), sim::Machine::kLoadRefused);
  first.run(at);
  const std::vector<u8> mid = snapshot::save(first);

  // Canonical encoding: restoring a snapshot and re-saving immediately must
  // reproduce the blob byte for byte.
  sim::Machine probe(snapshot::config_from(mid));
  snapshot::restore(probe, mid);
  EXPECT_EQ(snapshot::save(probe), mid);

  ASSERT_TRUE(first.run(400'000'000).completed);
  const std::vector<u8> final_first = snapshot::save(first);

  sim::Machine resumed(snapshot::config_from(mid));
  snapshot::restore(resumed, mid);
  ASSERT_TRUE(resumed.run(400'000'000).completed);
  const std::vector<u8> final_resumed = snapshot::save(resumed);

  EXPECT_EQ(final_first, final_resumed)
      << "resumed execution diverged; first difference:\n"
      << (snapshot::diff(final_first, final_resumed).empty()
              ? std::string("(none)")
              : snapshot::diff(final_first, final_resumed).front());
}

TEST(SnapshotRoundTrip, FiveWorkloadsResumeBitExact) {
  for (const char* name :
       {"qsort", "sha", "bitcount", "dijkstra", "patricia"}) {
    SCOPED_TRACE(name);
    const wl::Workload& w = workload_named(name);
    expect_bit_exact_resume(w.build(w.test_scale).link(),
                            sim::MachineConfig{}, 50'000);
  }
}

TEST(SnapshotRoundTrip, MultiProcessPreemptedMachineResumesBitExact) {
  const wl::Workload& w = workload_named("qsort");
  const isa::Image image = w.build(w.test_scale).link();
  sim::MachineConfig config;
  config.preempt_quantum = 1'000;

  sim::Machine first(config);
  first.load(image);
  first.load(image);  // two tenants sharing the machine
  first.run(30'000);
  const std::vector<u8> mid = snapshot::save(first);
  ASSERT_TRUE(first.run(400'000'000).completed);
  const std::vector<u8> final_first = snapshot::save(first);

  sim::Machine resumed(snapshot::config_from(mid));
  snapshot::restore(resumed, mid);
  ASSERT_TRUE(resumed.run(400'000'000).completed);
  EXPECT_EQ(snapshot::save(resumed), final_first);
}

TEST(SnapshotRoundTrip, ChaosRunResumesBitExact) {
  // The injector's RNG stream, fire schedule and event log travel in the
  // snapshot, so even a fault-injected run must resume bit-identically.
  const wl::Workload& w = workload_named("sha");
  sim::MachineConfig config;
  config.fault_plan.enabled = true;
  config.fault_plan.seed = 9;
  config.fault_plan.rate = 5e-5;
  expect_bit_exact_resume(w.build(w.test_scale).link(), config, 50'000);
}

TEST(SnapshotRoundTrip, SealedShadowStackResumesBitExact) {
  const wl::Workload& w = workload_named("sha");
  isa::Program prog = w.build(w.test_scale);
  passes::ShadowStackOptions ss;
  ss.kind = passes::ShadowStackKind::kSealPkWr;
  ss.perm_seal = true;
  passes::apply_shadow_stack(prog, ss);
  expect_bit_exact_resume(prog.link(), sim::MachineConfig{}, 50'000);
}

TEST(Snapshot, ConfigRoundTripsThroughBlob) {
  sim::MachineConfig config;
  config.preempt_quantum = 123;
  config.checkpoint_interval = 7'000;
  config.max_rollbacks = 9;
  config.kernel.save_pkr_on_switch = false;
  config.fault_plan.enabled = true;
  config.fault_plan.seed = 77;
  config.fault_plan.rate = 1e-6;
  config.fault_plan.cam_rate = 0.25;
  config.fault_plan.max_faults = 5;
  config.fault_plan.kinds = kind_bit(fault::FaultKind::kPkrBitFlip);
  sim::Machine machine(config);
  const std::vector<u8> blob = snapshot::save(machine);

  const sim::MachineConfig back = snapshot::config_from(blob);
  EXPECT_EQ(back.preempt_quantum, 123u);
  EXPECT_EQ(back.checkpoint_interval, 7'000u);
  EXPECT_EQ(back.max_rollbacks, 9u);
  EXPECT_FALSE(back.kernel.save_pkr_on_switch);
  EXPECT_TRUE(back.fault_plan.enabled);
  EXPECT_EQ(back.fault_plan.seed, 77u);
  EXPECT_EQ(back.fault_plan.rate, 1e-6);
  EXPECT_EQ(back.fault_plan.cam_rate, 0.25);
  EXPECT_EQ(back.fault_plan.max_faults, 5u);
  EXPECT_EQ(back.fault_plan.kinds, kind_bit(fault::FaultKind::kPkrBitFlip));
}

TEST(Snapshot, CheckpointingItselfIsInvisibleToTheGuest) {
  // Checkpoints are taken with peek-only serialization, so enabling them
  // must not change a single guest-visible bit or cycle.
  const wl::Workload& w = workload_named("qsort");
  const isa::Image image = w.build(w.test_scale).link();

  sim::Machine plain{sim::MachineConfig{}};
  const int plain_pid = plain.load(image);
  ASSERT_TRUE(plain.run(400'000'000).completed);

  sim::MachineConfig ckpt_config;
  ckpt_config.checkpoint_interval = 5'000;
  sim::Machine ckpt(ckpt_config);
  const int ckpt_pid = ckpt.load(image);
  ASSERT_TRUE(ckpt.run(400'000'000).completed);

  EXPECT_GE(ckpt.checkpoints_taken(), 2u);
  EXPECT_EQ(ckpt.exit_code(ckpt_pid), plain.exit_code(plain_pid));
  EXPECT_EQ(ckpt.kernel().console(), plain.kernel().console());
  EXPECT_EQ(ckpt.kernel().reports(), plain.kernel().reports());
  EXPECT_EQ(ckpt.hart().instret(), plain.hart().instret());
  EXPECT_EQ(ckpt.hart().cycles(), plain.hart().cycles());
}

// ---------------------------------------------------------------------------
// Validation.
// ---------------------------------------------------------------------------

std::vector<u8> small_snapshot() {
  sim::Machine machine{sim::MachineConfig{}};
  return snapshot::save(machine);
}

TEST(SnapshotValidation, RejectsCorruptedPayload) {
  std::vector<u8> blob = small_snapshot();
  blob[blob.size() / 2] ^= 0x40;
  sim::Machine machine{sim::MachineConfig{}};
  EXPECT_THROW(snapshot::restore(machine, blob), snapshot::SnapshotError);
  EXPECT_THROW(snapshot::info(blob), snapshot::SnapshotError);
}

TEST(SnapshotValidation, RejectsTruncation) {
  std::vector<u8> blob = small_snapshot();
  blob.resize(blob.size() - 7);
  sim::Machine machine{sim::MachineConfig{}};
  EXPECT_THROW(snapshot::restore(machine, blob), snapshot::SnapshotError);
  blob.resize(4);  // shorter than the header
  EXPECT_THROW(snapshot::restore(machine, blob), snapshot::SnapshotError);
}

TEST(SnapshotValidation, RejectsBadMagicAndUnknownVersion) {
  std::vector<u8> blob = small_snapshot();
  {
    std::vector<u8> bad = blob;
    bad[0] = 'X';
    EXPECT_THROW(snapshot::info(bad), snapshot::SnapshotError);
  }
  {
    std::vector<u8> bad = blob;
    bad[8] = 0xFF;  // version field
    EXPECT_THROW(snapshot::info(bad), snapshot::SnapshotError);
  }
}

TEST(SnapshotValidation, RejectsConfigMismatch) {
  std::vector<u8> blob = small_snapshot();
  sim::MachineConfig other;
  other.preempt_quantum = 1;  // differs from the default used in the blob
  sim::Machine machine(other);
  EXPECT_THROW(snapshot::restore(machine, blob), snapshot::SnapshotError);
}

TEST(Snapshot, InfoAndDiffReportSections) {
  const wl::Workload& w = workload_named("qsort");
  sim::Machine machine{sim::MachineConfig{}};
  machine.load(w.build(w.test_scale).link());
  machine.run(10'000);
  const std::vector<u8> a = snapshot::save(machine);
  machine.run(10'000);
  const std::vector<u8> b = snapshot::save(machine);

  const snapshot::Info info = snapshot::info(a);
  EXPECT_EQ(info.version, snapshot::kFormatVersion);
  EXPECT_TRUE(info.checksum_ok);
  EXPECT_GE(info.instret, 10'000u);
  ASSERT_GE(info.sections.size(), 10u);
  EXPECT_EQ(info.sections.front().name, "CFG");
  EXPECT_EQ(info.sections[1].name, "HART");

  EXPECT_TRUE(snapshot::diff(a, a).empty());
  const std::vector<std::string> d = snapshot::diff(a, b);
  EXPECT_FALSE(d.empty());  // 10k more instructions: HART must differ
  bool saw_hart = false;
  for (const auto& line : d) saw_hart |= line.rfind("HART", 0) == 0;
  EXPECT_TRUE(saw_hart);
}

TEST(Snapshot, FileRoundTrip) {
  const std::vector<u8> blob = small_snapshot();
  const std::string path = ::testing::TempDir() + "sealpk_test.spksnap";
  snapshot::write_file(path, blob);
  EXPECT_EQ(snapshot::read_file(path), blob);
  std::remove(path.c_str());
  EXPECT_THROW(snapshot::read_file(path), snapshot::SnapshotError);
}

// ---------------------------------------------------------------------------
// Rollback recovery.
// ---------------------------------------------------------------------------

struct RollbackRun {
  bool completed = false;
  i64 exit_code = 0;
  std::string console;
  std::vector<u64> reports;
  u64 rollbacks = 0;
  u64 rollback_failures = 0;
  u64 checkpoints = 0;
};

RollbackRun run_pkr_chaos(const isa::Image& image, u64 checkpoint_interval,
                          u64 max_rollbacks, double rate, u64 max_faults) {
  sim::MachineConfig config;
  // No trusted PKR shadow: a parity-bad row cannot be scrubbed, so every
  // PKR flip escalates to an unrecoverable machine check.
  config.kernel.save_pkr_on_switch = false;
  config.fault_plan.enabled = true;
  config.fault_plan.seed = 7;
  config.fault_plan.rate = rate;
  config.fault_plan.max_faults = max_faults;
  config.fault_plan.kinds = kind_bit(fault::FaultKind::kPkrBitFlip);
  config.checkpoint_interval = checkpoint_interval;
  config.max_rollbacks = max_rollbacks;
  sim::Machine machine(config);
  const int pid = machine.load(image);
  RollbackRun out;
  out.completed = machine.run(400'000'000).completed;
  out.exit_code = machine.exit_code(pid);
  out.console = machine.kernel().console();
  out.reports = machine.kernel().reports();
  out.rollbacks = machine.rollbacks();
  out.rollback_failures = machine.rollback_failures();
  out.checkpoints = machine.checkpoints_taken();
  return out;
}

RollbackRun run_clean(const isa::Image& image) {
  sim::Machine machine{sim::MachineConfig{}};
  const int pid = machine.load(image);
  RollbackRun out;
  out.completed = machine.run(400'000'000).completed;
  out.exit_code = machine.exit_code(pid);
  out.console = machine.kernel().console();
  out.reports = machine.kernel().reports();
  return out;
}

TEST(Rollback, ConvertsMachineCheckKillIntoCleanCompletion) {
  const wl::Workload& w = workload_named("sha");
  const isa::Image image = w.build(w.test_scale).link();
  const RollbackRun clean = run_clean(image);
  ASSERT_TRUE(clean.completed);

  // Baseline: one PKR flip with no trusted shadow and no checkpointing is
  // an unrecoverable machine check — the process dies.
  const RollbackRun killed = run_pkr_chaos(image, /*checkpoint_interval=*/0,
                                           /*max_rollbacks=*/3,
                                           /*rate=*/1e-4, /*max_faults=*/1);
  ASSERT_TRUE(killed.completed);  // the kill ends the (only) process
  ASSERT_EQ(killed.exit_code, os::kExitMachineCheck);
  EXPECT_EQ(killed.rollbacks, 0u);

  // Same plan with periodic checkpoints: the machine restores the last
  // known-good snapshot, suppresses the injection, and the re-executed run
  // finishes with output identical to the clean one.
  const RollbackRun rolled = run_pkr_chaos(image, /*checkpoint_interval=*/5'000,
                                           /*max_rollbacks=*/3,
                                           /*rate=*/1e-4, /*max_faults=*/1);
  ASSERT_TRUE(rolled.completed);
  EXPECT_GE(rolled.rollbacks, 1u);
  EXPECT_EQ(rolled.exit_code, clean.exit_code);
  EXPECT_EQ(rolled.console, clean.console);
  EXPECT_EQ(rolled.reports, clean.reports);
}

TEST(Rollback, RetryCapContainsPermanentlyCorruptingPlan) {
  const wl::Workload& w = workload_named("sha");
  const isa::Image image = w.build(w.test_scale).link();

  // Unlimited PKR flips at a hot rate: every rollback re-executes into
  // fresh corruption. The cap must stop the retry loop and let the machine
  // check kill stand.
  const RollbackRun run = run_pkr_chaos(image, /*checkpoint_interval=*/5'000,
                                        /*max_rollbacks=*/2,
                                        /*rate=*/1e-3, /*max_faults=*/0);
  ASSERT_TRUE(run.completed);
  EXPECT_EQ(run.exit_code, os::kExitMachineCheck);
  EXPECT_EQ(run.rollbacks, 2u);
  EXPECT_GE(run.rollback_failures, 1u);
}

TEST(Rollback, CorruptionInFlightAtCheckpointTimeKeepsPreviousKnownGood) {
  // A machine check brewing *during* the periodic checkpoint window must
  // never be frozen into the "known-good" blob: take_checkpoint's peek-only
  // audit sees the latent PKR flip, skips the save (keeping the previous
  // checkpoint), and the eventual machine check rolls back to that
  // pre-fault state and completes clean.
  const wl::Workload& w = workload_named("sha");
  const isa::Image image = w.build(w.test_scale).link();
  const RollbackRun clean = run_clean(image);
  ASSERT_TRUE(clean.completed);

  sim::MachineConfig config;
  config.kernel.save_pkr_on_switch = false;
  config.fault_plan.enabled = true;
  config.fault_plan.seed = 7;
  config.fault_plan.rate = 1e-4;
  config.fault_plan.max_faults = 1;
  config.fault_plan.kinds = kind_bit(fault::FaultKind::kPkrBitFlip);
  config.checkpoint_interval = 1'000;
  config.max_rollbacks = 3;
  // Escalating audits far apart: between injection and escalation the only
  // audits are the peek-only ones inside take_checkpoint, so several
  // checkpoint deadlines pass while the corruption is in flight.
  config.audit_interval = 50'000;
  sim::Machine machine(config);
  const int pid = machine.load(image);
  ASSERT_GE(pid, 0);

  bool completed = false;
  bool saw_injection = false;
  u64 ckpts_at_injection = 0;
  u64 instret_at_injection = 0;
  u64 latent_instret = 0;  // furthest point reached while corrupted
  for (int slice = 0; slice < 4'000 && !completed; ++slice) {
    completed = machine.run(500).completed;
    if (!saw_injection && machine.injector()->total_injected() == 1) {
      saw_injection = true;
      ckpts_at_injection = machine.checkpoints_taken();
      instret_at_injection = machine.hart().instret();
    }
    if (saw_injection && machine.rollbacks() == 0) {
      if (machine.hart().instret() > latent_instret) {
        latent_instret = machine.hart().instret();
      }
      EXPECT_EQ(machine.checkpoints_taken(), ckpts_at_injection)
          << "checkpoint taken while corruption was in flight";
    }
  }
  ASSERT_TRUE(completed);
  ASSERT_TRUE(saw_injection);
  // The latent window spanned several checkpoint deadlines — each one was
  // skipped — and the rollback then used the kept pre-fault checkpoint.
  EXPECT_GE(latent_instret,
            instret_at_injection + 2 * config.checkpoint_interval);
  EXPECT_GE(machine.rollbacks(), 1u);
  EXPECT_EQ(machine.rollback_failures(), 0u);
  EXPECT_GT(machine.checkpoints_taken(), ckpts_at_injection);
  EXPECT_EQ(machine.exit_code(pid), clean.exit_code);
  EXPECT_EQ(machine.kernel().console(), clean.console);
  EXPECT_EQ(machine.kernel().reports(), clean.reports);
}

// ---------------------------------------------------------------------------
// Golden-file format compatibility.
// ---------------------------------------------------------------------------

TEST(SnapshotGolden, CommittedV1SnapshotStillRestoresAndCompletes) {
  // tests/golden/qsort_mid.spksnap is a committed v1 snapshot (qsort at
  // instret 20'000, mid-run). Any encoding change that breaks old files must
  // show up here — bump kFormatVersion and regenerate deliberately, never
  // silently:
  //   sealpk-snapshot save qsort --at=20000 --out=tests/golden/qsort_mid.spksnap
  const std::string path =
      std::string(SEALPK_SOURCE_DIR) + "/tests/golden/qsort_mid.spksnap";
  const std::vector<u8> blob = snapshot::read_file(path);

  const snapshot::Info info = snapshot::info(blob);
  EXPECT_EQ(info.version, 1u);  // committed blob predates the v2 VKEY bump
  EXPECT_EQ(info.instret, 20'000u);

  sim::Machine machine(snapshot::config_from(blob));
  snapshot::restore(machine, blob);
  ASSERT_TRUE(machine.run(400'000'000).completed);
  ASSERT_TRUE(machine.has_process(1));
  EXPECT_EQ(machine.exit_code(1), 0);
}

TEST(SnapshotGolden, TracingDoesNotPerturbGoldenReplay) {
  // Zero-perturbation contract for the committed v1 snapshot: restoring it
  // into a machine with the event recorder enabled must replay exactly the
  // run the untraced machine replays — same outcome, same console, and the
  // same final serialized state (trace config and recorder state live
  // outside the snapshot format on purpose).
  const std::string path =
      std::string(SEALPK_SOURCE_DIR) + "/tests/golden/qsort_mid.spksnap";
  const std::vector<u8> blob = snapshot::read_file(path);

  sim::Machine plain(snapshot::config_from(blob));
  snapshot::restore(plain, blob);
  ASSERT_TRUE(plain.run(400'000'000).completed);

  sim::MachineConfig traced_config = snapshot::config_from(blob);
  traced_config.trace.enabled = true;
  traced_config.trace.sample_interval = 512;
  sim::Machine traced(traced_config);
  snapshot::restore(traced, blob);
  ASSERT_TRUE(traced.run(400'000'000).completed);

  EXPECT_EQ(plain.exit_code(1), traced.exit_code(1));
  EXPECT_EQ(plain.kernel().console(), traced.kernel().console());
  EXPECT_EQ(plain.kernel().reports(), traced.kernel().reports());
  EXPECT_EQ(snapshot::save(plain), snapshot::save(traced));
  ASSERT_NE(traced.recorder(), nullptr);
  EXPECT_GT(traced.recorder()->events().size(), 0u);
}

}  // namespace
}  // namespace sealpk
