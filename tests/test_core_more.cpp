// Additional hart coverage: branch/compare matrices, W-suffix arithmetic
// edges, CSR instruction variants, control-flow corner cases, and the
// interaction of traps with architectural state.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "core/hart.h"
#include "isa/program.h"

namespace sealpk::core {
namespace {

using isa::Inst;
using isa::Op;

class Harness : public ::testing::Test {
 protected:
  static constexpr u64 kCodeBase = 0x1000;

  Harness() : mem_(1 << 20), hart_(mem_) {
    hart_.set_priv(Priv::kUser);
    hart_.set_pc(kCodeBase);
  }

  void place(const std::vector<Inst>& insts) {
    for (size_t i = 0; i < insts.size(); ++i) {
      mem_.write_u32(kCodeBase + 4 * i, isa::encode(insts[i]));
    }
    hart_.set_pc(kCodeBase);
  }

  // Executes a single R-type op with the given operands and returns rd.
  u64 alu(Op op, u64 a, u64 b) {
    hart_.set_reg(isa::a0, a);
    hart_.set_reg(isa::a1, b);
    place({Inst{.op = op, .rd = isa::a2, .rs1 = isa::a0, .rs2 = isa::a1}});
    EXPECT_EQ(hart_.step().kind, StepKind::kOk);
    return hart_.reg(isa::a2);
  }

  // Whether a branch with the given operands is taken.
  bool taken(Op op, u64 a, u64 b) {
    hart_.set_reg(isa::a0, a);
    hart_.set_reg(isa::a1, b);
    place({Inst{.op = op, .rs1 = isa::a0, .rs2 = isa::a1, .imm = 8},
           Inst{.op = Op::kAddi, .rd = isa::a2, .rs1 = 0, .imm = 1},
           Inst{.op = Op::kAddi, .rd = isa::a3, .rs1 = 0, .imm = 1}});
    hart_.set_reg(isa::a2, 0);
    EXPECT_EQ(hart_.step().kind, StepKind::kOk);
    EXPECT_EQ(hart_.step().kind, StepKind::kOk);
    return hart_.reg(isa::a2) == 0;  // skipped the +1 when taken
  }

  mem::PhysMem mem_;
  Hart hart_;
};

// ---------------------------------------------------------------------------
// Branch semantics matrix: every branch op against a differential model.
// ---------------------------------------------------------------------------

using BranchCase = std::tuple<unsigned, int>;  // (op index, operand pair)

constexpr Op kBranchOps[] = {Op::kBeq,  Op::kBne,  Op::kBlt,
                             Op::kBge,  Op::kBltu, Op::kBgeu};
constexpr std::pair<u64, u64> kOperandPairs[] = {
    {0, 0},
    {1, 2},
    {2, 1},
    {static_cast<u64>(-1), 1},            // signed < vs unsigned >
    {1, static_cast<u64>(-1)},
    {static_cast<u64>(INT64_MIN), INT64_MAX},
    {0x8000000000000000ULL, 0x8000000000000000ULL},
};

bool model_taken(Op op, u64 a, u64 b) {
  switch (op) {
    case Op::kBeq: return a == b;
    case Op::kBne: return a != b;
    case Op::kBlt: return static_cast<i64>(a) < static_cast<i64>(b);
    case Op::kBge: return static_cast<i64>(a) >= static_cast<i64>(b);
    case Op::kBltu: return a < b;
    case Op::kBgeu: return a >= b;
    default: return false;
  }
}

class BranchMatrix : public Harness,
                     public ::testing::WithParamInterface<BranchCase> {};

TEST_P(BranchMatrix, MatchesModel) {
  const Op op = kBranchOps[std::get<0>(GetParam())];
  const auto [a, b] = kOperandPairs[std::get<1>(GetParam())];
  EXPECT_EQ(taken(op, a, b), model_taken(op, a, b))
      << isa::op_info(op).name << " a=" << a << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(
    AllBranchOps, BranchMatrix,
    ::testing::Combine(::testing::Range(0u, 6u), ::testing::Range(0, 7)));

// ---------------------------------------------------------------------------
// W-suffix arithmetic and shifts.
// ---------------------------------------------------------------------------

TEST_F(Harness, WordOpsTruncateAndSignExtend) {
  EXPECT_EQ(alu(Op::kAddw, 0xFFFFFFFF, 1), 0u);  // 32-bit wrap
  EXPECT_EQ(alu(Op::kSubw, 0, 1), ~u64{0});      // -1 sign-extended
  EXPECT_EQ(alu(Op::kAddw, 0x1'0000'0001, 1), 2u);  // upper half ignored
  EXPECT_EQ(alu(Op::kSllw, 1, 31), 0xFFFFFFFF80000000ULL);
  EXPECT_EQ(alu(Op::kSrlw, 0x80000000, 1), 0x40000000u);
  EXPECT_EQ(alu(Op::kSraw, 0x80000000, 1), 0xFFFFFFFFC0000000ULL);
  // Shift amounts use only the low 5 bits for W ops.
  EXPECT_EQ(alu(Op::kSllw, 1, 32), 1u);
  EXPECT_EQ(alu(Op::kSll, 1, 64), 1u);  // low 6 bits for 64-bit shifts
}

TEST_F(Harness, WordDivisionEdges) {
  EXPECT_EQ(alu(Op::kDivw, static_cast<u64>(INT32_MIN),
                static_cast<u64>(-1)),
            static_cast<u64>(static_cast<i64>(INT32_MIN)));  // overflow
  EXPECT_EQ(alu(Op::kDivw, 7, 0), ~u64{0});
  EXPECT_EQ(alu(Op::kRemw, 7, 0), 7u);
  EXPECT_EQ(alu(Op::kDivuw, 0xFFFFFFFF, 2), 0x7FFFFFFFu);
  EXPECT_EQ(alu(Op::kRemuw, 0xFFFFFFFF, 0),
            0xFFFFFFFFFFFFFFFFULL);  // rem-by-zero returns rs1, sext32
}

TEST_F(Harness, SltVariants) {
  EXPECT_EQ(alu(Op::kSlt, static_cast<u64>(-1), 0), 1u);
  EXPECT_EQ(alu(Op::kSltu, static_cast<u64>(-1), 0), 0u);
  EXPECT_EQ(alu(Op::kSlt, 0, 0), 0u);
}

// ---------------------------------------------------------------------------
// Control flow corners.
// ---------------------------------------------------------------------------

TEST_F(Harness, JalrWithRdEqualsRs1) {
  // jalr a0, a0, 0: the link value must be written after the target is
  // computed from the OLD rs1.
  hart_.set_reg(isa::a0, kCodeBase + 8);
  place({Inst{.op = Op::kJalr, .rd = isa::a0, .rs1 = isa::a0, .imm = 0},
         Inst{.op = Op::kAddi, .rd = isa::a1, .rs1 = 0, .imm = 1},
         Inst{.op = Op::kAddi, .rd = isa::a2, .rs1 = 0, .imm = 2}});
  EXPECT_EQ(hart_.step().kind, StepKind::kOk);
  EXPECT_EQ(hart_.pc(), kCodeBase + 8);
  EXPECT_EQ(hart_.reg(isa::a0), kCodeBase + 4);  // link value
}

TEST_F(Harness, BackwardJalLoops) {
  place({Inst{.op = Op::kAddi, .rd = isa::a0, .rs1 = isa::a0, .imm = 1},
         Inst{.op = Op::kJal, .rd = 0, .imm = -4}});
  for (int i = 0; i < 10; ++i) hart_.step();
  EXPECT_EQ(hart_.reg(isa::a0), 5u);  // 5 addi + 5 jal
}

TEST_F(Harness, FencesAndWfiAreNops) {
  hart_.set_reg(isa::a0, 7);
  place({Inst{.op = Op::kFence}, Inst{.op = Op::kFenceI},
         Inst{.op = Op::kWfi}});
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(hart_.step().kind, StepKind::kOk);
  }
  EXPECT_EQ(hart_.reg(isa::a0), 7u);
  EXPECT_EQ(hart_.pc(), kCodeBase + 12);
}

TEST_F(Harness, SfenceFromUserTraps) {
  place({Inst{.op = Op::kSfenceVma}});
  EXPECT_EQ(hart_.step().cause, TrapCause::kIllegalInst);
}

TEST_F(Harness, TrapPreservesRegisterFile) {
  hart_.set_reg(isa::s5, 0x1234);
  hart_.set_reg(isa::a0, 0x200000);  // out of range
  place({Inst{.op = Op::kLd, .rd = isa::a1, .rs1 = isa::a0, .imm = 0}});
  EXPECT_EQ(hart_.step().kind, StepKind::kTrap);
  EXPECT_EQ(hart_.reg(isa::s5), 0x1234u);  // untouched
  EXPECT_EQ(hart_.reg(isa::a1), 0u);       // rd not written on fault
}

TEST_F(Harness, FaultingStoreLeavesMemoryUntouched) {
  mem_.write_u64(0x9000, 0xAA);
  hart_.set_reg(isa::a0, 0x9001);  // misaligned
  hart_.set_reg(isa::a1, 0xBB);
  place({Inst{.op = Op::kSd, .rs1 = isa::a0, .rs2 = isa::a1, .imm = 0}});
  EXPECT_EQ(hart_.step().kind, StepKind::kTrap);
  EXPECT_EQ(mem_.read_u64(0x9000), 0xAAu);
}

// ---------------------------------------------------------------------------
// CSR instruction variants.
// ---------------------------------------------------------------------------

TEST_F(Harness, CsrSetAndClearWithX0DoNotWrite) {
  hart_.set_priv(Priv::kSupervisor);
  hart_.csrs().sscratch = 0xF0;
  // csrrs rd, sscratch, x0 reads without writing (legal on read-only CSRs).
  place({Inst{.op = Op::kCsrrs, .rd = isa::a0, .rs1 = 0, .csr = 0x140},
         Inst{.op = Op::kCsrrc, .rd = isa::a1, .rs1 = 0, .csr = 0x140}});
  EXPECT_EQ(hart_.step().kind, StepKind::kOk);
  EXPECT_EQ(hart_.step().kind, StepKind::kOk);
  EXPECT_EQ(hart_.reg(isa::a0), 0xF0u);
  EXPECT_EQ(hart_.reg(isa::a1), 0xF0u);
  EXPECT_EQ(hart_.csrs().sscratch, 0xF0u);
}

TEST_F(Harness, CsrImmediateVariants) {
  hart_.set_priv(Priv::kSupervisor);
  place({Inst{.op = Op::kCsrrwi, .rd = isa::a0, .imm = 0x15, .csr = 0x140},
         Inst{.op = Op::kCsrrsi, .rd = isa::a1, .imm = 0x0A, .csr = 0x140},
         Inst{.op = Op::kCsrrci, .rd = isa::a2, .imm = 0x11, .csr = 0x140}});
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(hart_.step().kind, StepKind::kOk);
  }
  EXPECT_EQ(hart_.reg(isa::a0), 0u);     // old value
  EXPECT_EQ(hart_.reg(isa::a1), 0x15u);  // after csrrwi
  EXPECT_EQ(hart_.reg(isa::a2), 0x1Fu);  // after csrrsi
  EXPECT_EQ(hart_.csrs().sscratch, 0x0Eu);
}

TEST_F(Harness, InstretCsrTracksRetirement) {
  place({Inst{.op = Op::kAddi, .rd = isa::a0, .rs1 = 0, .imm = 1},
         Inst{.op = Op::kCsrrs, .rd = isa::a1, .rs1 = 0, .csr = 0xC02}});
  hart_.step();
  hart_.step();
  EXPECT_EQ(hart_.reg(isa::a1), 1u);  // one instruction retired before it
}

// ---------------------------------------------------------------------------
// Differential ALU fuzz: random operands against host arithmetic.
// ---------------------------------------------------------------------------

TEST_F(Harness, RandomAluDifferential) {
  Rng rng(42);
  for (int trial = 0; trial < 300; ++trial) {
    const u64 a = rng.next(), b = rng.next();
    EXPECT_EQ(alu(Op::kAdd, a, b), a + b);
    EXPECT_EQ(alu(Op::kSub, a, b), a - b);
    EXPECT_EQ(alu(Op::kXor, a, b), a ^ b);
    EXPECT_EQ(alu(Op::kAnd, a, b), a & b);
    EXPECT_EQ(alu(Op::kOr, a, b), a | b);
    EXPECT_EQ(alu(Op::kMul, a, b), a * b);
    EXPECT_EQ(alu(Op::kSltu, a, b), a < b ? 1u : 0u);
    if (b != 0) {
      EXPECT_EQ(alu(Op::kDivu, a, b), a / b);
      EXPECT_EQ(alu(Op::kRemu, a, b), a % b);
    }
    const u64 sh = b & 63;
    EXPECT_EQ(alu(Op::kSll, a, sh), a << sh);
    EXPECT_EQ(alu(Op::kSrl, a, sh), a >> sh);
    EXPECT_EQ(alu(Op::kSra, a, sh),
              static_cast<u64>(static_cast<i64>(a) >> sh));
  }
}

// ---------------------------------------------------------------------------
// Decode fuzz: any 32-bit word decodes to either illegal or a word that
// round-trips through encode.
// ---------------------------------------------------------------------------

TEST(DecodeFuzz, RandomWordsRoundTripOrAreIllegal) {
  Rng rng(7);
  unsigned legal = 0;
  for (int trial = 0; trial < 200'000; ++trial) {
    const u32 word = static_cast<u32>(rng.next());
    isa::Inst inst = isa::decode(word);
    if (inst.op == Op::kIllegal) continue;
    ++legal;
    // Encoding the decoded form and re-decoding must be a fixed point.
    u32 reencoded = 0;
    ASSERT_NO_THROW(reencoded = isa::encode(inst)) << std::hex << word;
    isa::Inst again = isa::decode(reencoded);
    again.raw = 0;
    inst.raw = 0;
    EXPECT_EQ(again, inst) << std::hex << word;
  }
  EXPECT_GT(legal, 1000u);  // the fuzz actually exercised legal encodings
}

}  // namespace
}  // namespace sealpk::core
