// Tests for the bounded exhaustive model checker (src/model): reference-spec
// invariants and their mutation self-tests, exploration determinism across
// thread counts, the counterexample-to-regression pipeline (committed traces
// replay byte-for-byte), and the trace codec.
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "model/explorer.h"
#include "model/harness.h"
#include "model/spec.h"
#include "model/trace.h"

namespace sealpk::model {
namespace {

ModelConfig small_config() {
  ModelConfig cfg;  // the CI default: 2 pkeys, 2 pages, 2-entry CAM
  return cfg;
}

bool has_invariant(const std::vector<InvariantViolation>& vs,
                   const std::string& name) {
  for (const auto& v : vs) {
    if (v.invariant == name) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Reference-spec invariants: each identifier must catch a hand-corrupted
// state (the spec-level half of the mutation self-test).
// ---------------------------------------------------------------------------

TEST(ModelInvariants, CleanInitialStateHasNoViolations) {
  const ModelConfig cfg = small_config();
  EXPECT_TRUE(check_invariants(cfg, initial_state(cfg)).empty());
}

TEST(ModelInvariants, LazyFreeDrainCatchesDirtyAllocatedKey) {
  const ModelConfig cfg = small_config();
  ModelState s = initial_state(cfg);
  s.keys[1].allocated = true;
  s.keys[1].dirty = true;
  s.keys[1].pages = 1;
  s.pages[0].pkey = 1;
  EXPECT_TRUE(has_invariant(check_invariants(cfg, s), "lazy-free-drain"));
}

TEST(ModelInvariants, LazyFreeDrainCatchesEscapedQuarantine) {
  const ModelConfig cfg = small_config();
  ModelState s = initial_state(cfg);
  // Freed, pages survive, but not quarantined: the use-after-free window.
  s.keys[1].pages = 1;
  s.pages[0].pkey = 1;
  EXPECT_TRUE(has_invariant(check_invariants(cfg, s), "lazy-free-drain"));
}

TEST(ModelInvariants, FuseCoherenceCatchesSealRegWithoutRange) {
  const ModelConfig cfg = small_config();
  ModelState s = initial_state(cfg);
  s.keys[0].hw_sealed = true;  // no range on file
  EXPECT_TRUE(has_invariant(check_invariants(cfg, s), "fuse-coherence"));
}

TEST(ModelInvariants, SealOnLiveKeyCatchesSealedDeadKey) {
  const ModelConfig cfg = small_config();
  ModelState s = initial_state(cfg);
  s.keys[1].sealed_domain = true;  // neither allocated nor dirty
  EXPECT_TRUE(has_invariant(check_invariants(cfg, s), "seal-on-live-key"));
}

TEST(ModelInvariants, PageAccountingCatchesCounterMismatch) {
  const ModelConfig cfg = small_config();
  ModelState s = initial_state(cfg);
  s.keys[0].pages = 1;  // page table says 2
  EXPECT_TRUE(has_invariant(check_invariants(cfg, s), "page-accounting"));
}

TEST(ModelInvariants, PageAccountingCatchesDeadDefaultDomain) {
  const ModelConfig cfg = small_config();
  ModelState s = initial_state(cfg);
  s.keys[0].allocated = false;
  EXPECT_TRUE(has_invariant(check_invariants(cfg, s), "page-accounting"));
}

TEST(ModelInvariants, CamCoherenceCatchesUnsealedCachedKey) {
  const ModelConfig cfg = small_config();
  ModelState s = initial_state(cfg);
  s.cam[0] = {true, 1, 0x1000, 0x1FFC};  // key 1 is not perm-sealed
  EXPECT_TRUE(has_invariant(check_invariants(cfg, s), "cam-coherence"));
}

TEST(ModelInvariants, CamCoherenceCatchesWrongCachedRange) {
  const ModelConfig cfg = small_config();
  ModelState s = initial_state(cfg);
  s.keys[0].hw_sealed = true;
  s.keys[0].range = 0;
  s.cam[0] = {true, 0, kModelRanges[1].start, kModelRanges[1].end};
  EXPECT_TRUE(has_invariant(check_invariants(cfg, s), "cam-coherence"));
}

TEST(ModelInvariants, CamCoherenceCatchesDuplicateEntries) {
  const ModelConfig cfg = small_config();
  ModelState s = initial_state(cfg);
  s.keys[0].hw_sealed = true;
  s.keys[0].range = 0;
  s.cam[0] = {true, 0, kModelRanges[0].start, kModelRanges[0].end};
  s.cam[1] = {true, 0, kModelRanges[0].start, kModelRanges[0].end};
  EXPECT_TRUE(has_invariant(check_invariants(cfg, s), "cam-coherence"));
}

TEST(ModelInvariants, SealMonotonicityCatchesFuseClearWithoutRelease) {
  const ModelConfig cfg = small_config();
  ModelState pre = initial_state(cfg);
  pre.keys[1].allocated = true;
  pre.keys[1].hw_sealed = true;
  pre.keys[1].range = 0;
  ModelState post = pre;
  post.keys[1].hw_sealed = false;
  post.keys[1].range = kNoRange;  // still allocated: not a full release
  Op op{};
  op.kind = OpKind::kSeal;
  op.pkey = 1;
  const auto vs = check_transition(cfg, pre, op, {OpStatus::kOk, 0}, post);
  ASSERT_FALSE(vs.empty());
  EXPECT_EQ(vs.front().invariant, "seal-monotonicity");
}

TEST(ModelInvariants, SealMonotonicityCatchesForeignPermFlip) {
  const ModelConfig cfg = small_config();
  ModelState pre = initial_state(cfg);
  pre.keys[1].allocated = true;
  pre.keys[1].hw_sealed = true;
  pre.keys[1].range = 0;
  pre.keys[1].perm = 0b11;
  ModelState post = pre;
  post.keys[1].perm = 0b00;
  Op op{};  // an op that does not name key 1
  op.kind = OpKind::kMprotect;
  op.pkey = 0;
  const auto vs = check_transition(cfg, pre, op, {OpStatus::kOk, 0}, post);
  ASSERT_FALSE(vs.empty());
  EXPECT_EQ(vs.front().invariant, "seal-monotonicity");
}

// ---------------------------------------------------------------------------
// State codec.
// ---------------------------------------------------------------------------

TEST(ModelState, EncodeDecodeRoundTrips) {
  const ModelConfig cfg = small_config();
  ModelState s = initial_state(cfg);
  s.keys[1].allocated = true;
  s.keys[1].perm = 0b11;
  s.keys[1].hw_sealed = true;
  s.keys[1].range = 1;
  s.pages[1] = {1, 0b01};
  s.keys[1].pages = 1;
  s.keys[0].pages = 1;
  s.cam[0] = {true, 1, kModelRanges[1].start, kModelRanges[1].end};
  s.fifo_next = 1;
  const ModelState back = decode_state(cfg, encode_state(s));
  EXPECT_EQ(back, s);
  EXPECT_EQ(encode_state(back), encode_state(s));
}

// ---------------------------------------------------------------------------
// Exploration: determinism across runs and thread counts, and the clean
// machine explores clean.
// ---------------------------------------------------------------------------

TEST(ModelExplore, BoundedExploreIsCleanAndDeterministic) {
  ModelConfig cfg = small_config();
  cfg.depth = 5;
  const ExploreResult a = explore(cfg);
  EXPECT_TRUE(a.counterexamples.empty());
  EXPECT_FALSE(a.stats.truncated);
  EXPECT_EQ(a.stats.depth, 5u);
  // Golden sizes for the default reduced machine: any change to the op
  // alphabet, the spec, or the hardware shows up here first.
  EXPECT_EQ(a.stats.states, 4842u);
  EXPECT_EQ(a.stats.transitions, 53720u);

  const ExploreResult b = explore(cfg);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.counterexamples, b.counterexamples);

  ModelConfig par = cfg;
  par.threads = 4;
  const ExploreResult c = explore(par);
  EXPECT_EQ(a.stats, c.stats);
  EXPECT_EQ(a.counterexamples, c.counterexamples);
}

TEST(ModelExplore, StateBudgetTruncatesDeterministically) {
  ModelConfig cfg = small_config();
  cfg.max_states = 100;
  const ExploreResult a = explore(cfg);
  EXPECT_TRUE(a.stats.truncated);
  EXPECT_FALSE(a.stats.complete);
  const ExploreResult b = explore(cfg);
  EXPECT_EQ(a.stats, b.stats);
}

// ---------------------------------------------------------------------------
// Mutation self-test: every deliberately broken machine/spec variant is
// caught, and each checked identifier is covered by at least one mutation.
// ---------------------------------------------------------------------------

struct MutationCase {
  Mutation mutation;
  // One identifier that must appear among the counterexamples ("divergence"
  // for spec/machine splits, else the invariant name).
  const char* expected;
};

class ModelMutationTest : public ::testing::TestWithParam<MutationCase> {};

TEST_P(ModelMutationTest, BrokenVariantIsCaught) {
  ModelConfig cfg = small_config();
  cfg.depth = 7;
  cfg.mutation = GetParam().mutation;
  const ExploreResult res = explore(cfg);
  ASSERT_FALSE(res.counterexamples.empty())
      << mutation_name(cfg.mutation) << " explored clean";
  std::set<std::string> caught;
  for (const auto& ce : res.counterexamples) {
    caught.insert(ce.kind == "divergence" ? ce.kind : ce.invariant);
    // Every counterexample must replay to the same finding.
    const Trace t = make_trace(cfg, ce);
    EXPECT_EQ(verify_trace(t), "") << mutation_name(cfg.mutation);
  }
  EXPECT_TRUE(caught.count(GetParam().expected) != 0)
      << mutation_name(cfg.mutation) << " missed " << GetParam().expected;
}

INSTANTIATE_TEST_SUITE_P(
    AllMutations, ModelMutationTest,
    ::testing::Values(
        MutationCase{Mutation::kSkipFreeClear, "fuse-coherence"},
        MutationCase{Mutation::kSkipDrainScrub, "fuse-coherence"},
        MutationCase{Mutation::kEagerFreeClear, "seal-monotonicity"},
        MutationCase{Mutation::kForgetDirty, "lazy-free-drain"},
        MutationCase{Mutation::kSkipSealedNeighbourMerge,
                     "seal-monotonicity"},
        MutationCase{Mutation::kIgnoreSealViolation, "divergence"},
        MutationCase{Mutation::kRefillWrongRange, "cam-coherence"},
        MutationCase{Mutation::kIgnorePkeyOnAccess,
                     "permission-intersection"},
        MutationCase{Mutation::kSpecForgetDirty, "divergence"}),
    [](const auto& info) {
      std::string name = mutation_name(info.param.mutation);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Counterexample-to-regression pipeline: committed traces replay
// byte-for-byte and reproduce their recorded finding.
// ---------------------------------------------------------------------------

std::vector<std::filesystem::path> committed_traces() {
  const std::filesystem::path dir =
      std::filesystem::path(SEALPK_SOURCE_DIR) / "tests" / "model_traces";
  std::vector<std::filesystem::path> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(ModelTraces, CommittedTracesReplayByteForByte) {
  const auto paths = committed_traces();
  ASSERT_GE(paths.size(), 5u);
  for (const auto& path : paths) {
    std::ifstream in(path);
    ASSERT_TRUE(in) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    const auto trace = parse_trace(buf.str(), &error);
    ASSERT_TRUE(trace.has_value()) << path << ": " << error;
    // Canonical form: parse + rewrite reproduces the committed bytes.
    EXPECT_EQ(trace_to_json(*trace), buf.str()) << path;
    EXPECT_EQ(verify_trace(*trace), "") << path;
  }
}

TEST(ModelTraces, KernelFreeSealLeakRegression) {
  // The bug the checker found in sys_pkey_free: freeing a perm-sealed key
  // with no pages skipped the SealReg/CAM scrub, leaking hardware seal
  // state to the key's next owner. The committed trace pins the broken
  // behaviour under the skip-free-clear mutation; the same script must
  // replay clean against the fixed machine.
  const std::filesystem::path path =
      std::filesystem::path(SEALPK_SOURCE_DIR) / "tests" / "model_traces" /
      "kernel-free-seal-leak-divergence.json";
  std::ifstream in(path);
  ASSERT_TRUE(in) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto trace = parse_trace(buf.str(), nullptr);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->mutation, Mutation::kSkipFreeClear);
  EXPECT_EQ(verify_trace(*trace), "");

  Trace fixed = *trace;
  fixed.mutation = Mutation::kNone;
  fixed.kind = "clean";
  fixed.invariant.clear();
  fixed.message.clear();
  fixed.op_index = 0;
  EXPECT_EQ(verify_trace(fixed), "");
}

// ---------------------------------------------------------------------------
// Trace codec.
// ---------------------------------------------------------------------------

TEST(ModelTraces, MakeTraceRoundTripsThroughJson) {
  ModelConfig cfg = small_config();
  cfg.mutation = Mutation::kRefillWrongRange;
  Counterexample ce;
  Op alloc{};
  alloc.kind = OpKind::kAlloc;
  alloc.perm = 0b11;
  Op seal{};
  seal.kind = OpKind::kPermSeal;
  seal.pkey = 1;
  seal.range = 1;
  ce.ops = {alloc, seal};
  ce.kind = "divergence";
  ce.message = "state differs after perm_seal(pkey=1, range=1)";
  const Trace t = make_trace(cfg, ce);
  EXPECT_EQ(t.op_index, 1u);

  const std::string json = trace_to_json(t);
  std::string error;
  const auto back = parse_trace(json, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->ops, t.ops);
  EXPECT_EQ(back->mutation, t.mutation);
  EXPECT_EQ(back->kind, t.kind);
  EXPECT_EQ(back->message, t.message);
  EXPECT_EQ(trace_to_json(*back), json);
}

TEST(ModelTraces, ParserRejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(parse_trace("", &error).has_value());
  EXPECT_FALSE(parse_trace("{", &error).has_value());
  EXPECT_FALSE(parse_trace("[]", &error).has_value());
  EXPECT_FALSE(parse_trace("{\"schema\": \"bogus\"}", &error).has_value());
  // Valid JSON, wrong shape: op kind unknown.
  const std::string bad_op =
      "{\"schema\": \"sealpk-model-trace-v1\", \"pkeys\": 2, \"pages\": 2,"
      " \"cam\": 2, \"mutation\": \"none\", \"expect\": {\"kind\":"
      " \"clean\", \"invariant\": \"\", \"op_index\": 0, \"message\":"
      " \"\"}, \"ops\": [{\"op\": \"frobnicate\"}]}";
  EXPECT_FALSE(parse_trace(bad_op, &error).has_value());
  EXPECT_NE(error.find("frobnicate"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Replay: a harness-check failure (broken machine wedging the harness) is
// reported, not thrown.
// ---------------------------------------------------------------------------

TEST(ModelReplay, ReplayReportsFirstFailingOp) {
  ModelConfig cfg = small_config();
  cfg.mutation = Mutation::kForgetDirty;
  Op alloc{};
  alloc.kind = OpKind::kAlloc;
  Op touch{};
  touch.kind = OpKind::kMprotect;
  touch.pkey = 1;
  touch.page = 0;
  touch.prot = 0b11;
  Op free_op{};
  free_op.kind = OpKind::kFree;
  free_op.pkey = 1;
  const ReplayResult r = replay(cfg, {alloc, touch, free_op});
  ASSERT_TRUE(r.failed);
  EXPECT_EQ(r.op_index, 2u);
  ASSERT_FALSE(r.findings.empty());
  EXPECT_EQ(r.findings.front().kind, "divergence");
}

}  // namespace
}  // namespace sealpk::model
