// Regression tests pinning the *shape* of Figure 5 (run at reduced scale so
// the suite stays fast): variant ordering, the suite ordering of mprotect
// pain, and the order of magnitude of the headline speedup.
#include <gtest/gtest.h>

#include "sim/fig5.h"

namespace sealpk {
namespace {

// One shared run for all shape assertions (scale 1 ~= a second).
const std::vector<sim::Fig5Row>& rows() {
  static const std::vector<sim::Fig5Row> kRows = sim::run_figure5(1);
  return kRows;
}

TEST(Fig5Shape, EveryWorkloadHasPositiveOverheadOrdering) {
  for (const auto& row : rows()) {
    // Inline < Func < SealPK-WR < SealPK-RD+WR << mprotect, per benchmark.
    for (size_t v = 1; v < sim::kNumFig5Variants; ++v) {
      EXPECT_LT(row.overhead_pct(v - 1), row.overhead_pct(v))
          << row.workload->name << " variant " << v;
    }
    EXPECT_GT(row.overhead_pct(sim::kMprotectIdx),
              8 * row.overhead_pct(sim::kSealPkRdWrIdx))
        << row.workload->name;
  }
}

TEST(Fig5Shape, SuiteGmeansTrackThePaper) {
  // Paper Fig. 5 GMeans: SealPK-RD+WR 21.00 / 14.81 / 8.52 and mprotect
  // 2875.62 / 1982.70 / 320.21 for SPEC2000 / SPEC2006 / MiBench. At the
  // reduced test scale the values shift, so assert generous brackets that
  // still pin who-wins-where.
  const double rdwr2000 =
      sim::suite_gmean_overhead(rows(), wl::Suite::kSpec2000,
                                sim::kSealPkRdWrIdx);
  const double rdwr2006 =
      sim::suite_gmean_overhead(rows(), wl::Suite::kSpec2006,
                                sim::kSealPkRdWrIdx);
  const double rdwrMib = sim::suite_gmean_overhead(
      rows(), wl::Suite::kMiBench, sim::kSealPkRdWrIdx);
  EXPECT_GT(rdwr2000, 8.0);
  EXPECT_LT(rdwr2000, 45.0);
  EXPECT_GT(rdwr2006, 5.0);
  EXPECT_LT(rdwr2006, 35.0);
  EXPECT_GT(rdwrMib, 3.0);
  EXPECT_LT(rdwrMib, 20.0);

  const double mp2000 = sim::suite_gmean_overhead(
      rows(), wl::Suite::kSpec2000, sim::kMprotectIdx);
  const double mp2006 = sim::suite_gmean_overhead(
      rows(), wl::Suite::kSpec2006, sim::kMprotectIdx);
  const double mpMib = sim::suite_gmean_overhead(
      rows(), wl::Suite::kMiBench, sim::kMprotectIdx);
  // Suite ordering of mprotect pain: SPEC2000 > SPEC2006 > MiBench.
  EXPECT_GT(mp2000, mp2006);
  EXPECT_GT(mp2006, mpMib);
  EXPECT_GT(mp2000, 1000.0);  // "thousands of percent"
  EXPECT_LT(mpMib, 1000.0);   // "hundreds of percent"
}

TEST(Fig5Shape, HeadlineSpeedupNearPaper) {
  // Paper: "on average ~88x faster than ... mprotect". Assert the same
  // order of magnitude (x10 either way would be a broken model).
  const double factor = sim::mprotect_speedup_factor(rows());
  EXPECT_GT(factor, 40.0);
  EXPECT_LT(factor, 220.0);
}

TEST(Fig5Shape, InstrumentationNeverChangesInstructionCountsWildly) {
  // SealPK variants add prologue/epilogue work only: instruction-count
  // inflation must stay well below the mprotect variant's cycle inflation.
  for (const auto& row : rows()) {
    const double base = static_cast<double>(row.baseline_cycles);
    const double rdwr =
        static_cast<double>(row.variants[sim::kSealPkRdWrIdx].cycles);
    EXPECT_LT(rdwr / base, 3.0) << row.workload->name;
  }
}

}  // namespace
}  // namespace sealpk
