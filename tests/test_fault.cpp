// Robustness: fault injection, the machine auditor, recovery paths, the
// run-loop watchdog, load-time refusal and host-exception containment.
//
// The planted-inconsistency tests are the auditor's acceptance gate: every
// category of corruption the injector can produce must be detected by one
// audit pass and repaired by audit_and_recover, after which the guest must
// still run to a clean exit.
#include <gtest/gtest.h>

#include <memory>

#include "fault/auditor.h"
#include "fault/fault.h"
#include "guest_test_util.h"
#include "mem/pte.h"
#include "workloads/workload.h"

namespace sealpk {
namespace {

using isa::Function;
using isa::Label;
using isa::Program;
using namespace isa;

// A machine paused mid-flight inside a real workload: TLBs warm, page
// tables populated, one process with live pkey bookkeeping.
class AuditTest : public ::testing::Test {
 protected:
  void start(sim::MachineConfig config = {}, u64 warmup = 30'000) {
    machine_ = std::make_unique<sim::Machine>(config);
    pid_ = machine_->load(wl::build_sha(1).link());
    ASSERT_GE(pid_, 0);
    machine_->run(warmup);
    ASSERT_FALSE(machine_->kernel().all_exited()) << "warmup ran to the end";
  }

  void finish(i64 expect_exit = 0) {
    const auto outcome = machine_->run(400'000'000);
    ASSERT_TRUE(outcome.completed);
    EXPECT_EQ(machine_->exit_code(pid_), expect_exit);
  }

  fault::MachineAuditor& auditor() { return machine_->auditor(); }

  std::unique_ptr<sim::Machine> machine_;
  int pid_ = -1;
};

TEST_F(AuditTest, CleanMachineAuditsClean) {
  start();
  const auto report = auditor().audit();
  EXPECT_TRUE(report.clean())
      << report.findings.size() << " findings, first: "
      << fault::audit_check_name(report.findings[0].check);
  finish();
}

TEST_F(AuditTest, PkrParityDetectsPlantedBitFlip) {
  start();
  machine_->hart().pkr().corrupt_bit(3, 17);
  const auto report = auditor().audit();
  EXPECT_EQ(report.count(fault::AuditCheck::kPkrParity), 1u);
  auditor().audit_and_recover();
  EXPECT_TRUE(auditor().audit().clean());
  EXPECT_GE(machine_->kernel().stats().pkr_scrubs, 1u);
  finish();
}

TEST_F(AuditTest, PkrShadowCatchesEvenWeightCorruption) {
  start();
  // Two flips in one row keep the row parity even — only the software
  // shadow comparison can see this.
  machine_->hart().pkr().corrupt_bit(2, 5);
  machine_->hart().pkr().corrupt_bit(2, 9);
  ASSERT_TRUE(machine_->hart().pkr().parity_ok(2));
  const auto report = auditor().audit();
  EXPECT_EQ(report.count(fault::AuditCheck::kPkrParity), 0u);
  EXPECT_EQ(report.count(fault::AuditCheck::kPkrShadow), 1u);
  auditor().audit_and_recover();
  EXPECT_TRUE(auditor().audit().clean());
  finish();
}

TEST_F(AuditTest, TlbAuditDetectsCorruptEntry) {
  start();
  mem::Tlb& dtlb = machine_->hart().dtlb();
  size_t slot = dtlb.capacity();
  for (size_t i = 0; i < dtlb.capacity(); ++i) {
    if (dtlb.peek_slot(i) != nullptr) {
      slot = i;
      break;
    }
  }
  ASSERT_LT(slot, dtlb.capacity()) << "warmup left the DTLB empty";
  ASSERT_TRUE(dtlb.corrupt_slot(slot, /*pkey_xor=*/1, /*perm_xor=*/0,
                                /*flip_dirty=*/false));
  const auto report = auditor().audit();
  EXPECT_GE(report.count(fault::AuditCheck::kTlbCoherence), 1u);
  auditor().audit_and_recover();
  EXPECT_TRUE(auditor().audit().clean());  // flush emptied the TLBs
  EXPECT_GE(machine_->kernel().stats().tlb_flush_recoveries, 1u);
  finish();
}

TEST_F(AuditTest, PteAuditDetectsPkeyFieldFlip) {
  start();
  const os::AddressSpace& as = *machine_->kernel().process(pid_).aspace;
  ASSERT_FALSE(as.vmas().empty());
  const u64 vaddr = as.vmas().begin()->second.start;
  const u64 slot = as.leaf_pte_addr(vaddr);
  ASSERT_NE(slot, 0u);
  machine_->mem().write_u64(
      slot, machine_->mem().read_u64(slot) ^
                (u64{1} << mem::pte::kPkeyShift));
  const auto report = auditor().audit();
  EXPECT_GE(report.count(fault::AuditCheck::kPteVsVma), 1u);
  auditor().audit_and_recover();
  EXPECT_TRUE(auditor().audit().clean());
  EXPECT_GE(machine_->kernel().stats().pte_repairs, 1u);
  finish();
}

TEST_F(AuditTest, KeyCounterAuditDetectsDrift) {
  start();
  machine_->kernel().process(pid_).keys->page_delta(0, 5);  // plant drift
  const auto report = auditor().audit();
  EXPECT_EQ(report.count(fault::AuditCheck::kKeyCounters), 1u);
  auditor().audit_and_recover();
  EXPECT_TRUE(auditor().audit().clean());
  EXPECT_GE(machine_->kernel().stats().key_counter_repairs, 1u);
  finish();
}

TEST_F(AuditTest, CamAuditDetectsDuplicateLines) {
  start();
  hw::SealUnit& unit = machine_->hart().seal_unit();
  unit.refill(4, 0x1000, 0x2000);
  unit.refill_duplicate(4, 0x1000, 0x2000);
  ASSERT_EQ(unit.cam_count_of(4), 2u);
  const auto report = auditor().audit();
  EXPECT_EQ(report.count(fault::AuditCheck::kCamDuplicates), 1u);
  auditor().audit_and_recover();
  EXPECT_EQ(unit.cam_count_of(4), 1u);
  EXPECT_TRUE(auditor().audit().clean());
  finish();
}

TEST_F(AuditTest, SchedulerAuditDetectsBogusTid) {
  start();
  machine_->kernel().run_queue_for_test().push_back(999);
  const auto report = auditor().audit();
  EXPECT_EQ(report.count(fault::AuditCheck::kScheduler), 1u);
  auditor().audit_and_recover();
  EXPECT_TRUE(auditor().audit().clean());
  EXPECT_GE(machine_->kernel().stats().run_queue_scrubs, 1u);
  finish();
}

// The acceptance gate: one audit pass must see every planted inconsistency
// at once, and one recover pass must leave the machine consistent enough to
// finish the workload with the right answer.
TEST_F(AuditTest, OneAuditDetectsEveryPlantedInconsistency) {
  start();
  machine_->hart().pkr().corrupt_bit(7, 42);
  mem::Tlb& dtlb = machine_->hart().dtlb();
  for (size_t i = 0; i < dtlb.capacity(); ++i) {
    if (dtlb.peek_slot(i) != nullptr) {
      dtlb.corrupt_slot(i, 0, /*perm_xor=*/2, false);
      break;
    }
  }
  const os::AddressSpace& as = *machine_->kernel().process(pid_).aspace;
  const u64 vaddr = as.vmas().begin()->second.start;
  machine_->mem().write_u64(
      as.leaf_pte_addr(vaddr),
      machine_->mem().read_u64(as.leaf_pte_addr(vaddr)) ^
          (u64{1} << (mem::pte::kPkeyShift + 1)));
  machine_->kernel().process(pid_).keys->page_delta(0, 3);
  machine_->hart().seal_unit().refill(9, 0x1000, 0x2000);
  machine_->hart().seal_unit().refill_duplicate(9, 0x1000, 0x2000);
  machine_->kernel().run_queue_for_test().push_back(777);

  const auto report = auditor().audit_and_recover();
  EXPECT_GE(report.count(fault::AuditCheck::kPkrParity), 1u);
  EXPECT_GE(report.count(fault::AuditCheck::kTlbCoherence), 1u);
  EXPECT_GE(report.count(fault::AuditCheck::kPteVsVma), 1u);
  EXPECT_GE(report.count(fault::AuditCheck::kKeyCounters), 1u);
  EXPECT_GE(report.count(fault::AuditCheck::kCamDuplicates), 1u);
  EXPECT_GE(report.count(fault::AuditCheck::kScheduler), 1u);
  EXPECT_TRUE(auditor().audit().clean());
  finish();
}

// Auditing a clean run must not perturb it: audits are peek-only, so an
// injection-disabled run with a tight audit cadence retires the same
// instructions in the same number of cycles and produces the same output.
TEST(FaultTransparency, CleanRunIsBitIdenticalUnderAuditing) {
  const isa::Image image = wl::build_sha(1).link();
  sim::MachineConfig plain;
  sim::MachineConfig audited;
  audited.audit_interval = 2'000;

  sim::Machine a{plain};
  const int pid_a = a.load(image);
  const auto run_a = a.run(400'000'000);

  sim::Machine b{audited};
  const int pid_b = b.load(image);
  const auto run_b = b.run(400'000'000);

  ASSERT_TRUE(run_a.completed);
  ASSERT_TRUE(run_b.completed);
  EXPECT_EQ(run_a.instructions, run_b.instructions);
  EXPECT_EQ(run_a.cycles, run_b.cycles);
  EXPECT_EQ(a.exit_code(pid_a), b.exit_code(pid_b));
  EXPECT_EQ(a.kernel().reports(), b.kernel().reports());
  EXPECT_EQ(a.kernel().console(), b.kernel().console());
  EXPECT_GT(b.kernel().stats().audit_runs, 0u);
  EXPECT_EQ(b.kernel().stats().audit_findings, 0u);
}

TEST(FaultInjection, SpuriousTrapsAlwaysRecoverWithTrustedShadow) {
  sim::MachineConfig config;
  config.fault_plan.enabled = true;
  config.fault_plan.seed = 5;
  config.fault_plan.rate = 5e-4;
  config.fault_plan.kinds = fault::kind_bit(fault::FaultKind::kSpuriousTrap);
  sim::Machine machine{config};
  const int pid = machine.load(wl::build_sha(1).link());
  const auto outcome = machine.run(400'000'000);
  ASSERT_TRUE(outcome.completed);
  EXPECT_EQ(machine.exit_code(pid), 0);
  const auto& stats = machine.kernel().stats();
  EXPECT_GE(stats.machine_checks, 1u);
  EXPECT_EQ(stats.machine_check_kills, 0u);
  fault::FaultInjector* injector = machine.injector();
  ASSERT_NE(injector, nullptr);
  EXPECT_GE(injector->total_injected(), 1u);
  EXPECT_EQ(injector->outstanding(), 0u);
  EXPECT_EQ(injector->resolved(fault::FaultKind::kSpuriousTrap,
                               fault::FaultResolution::kRecovered),
            injector->injected(fault::FaultKind::kSpuriousTrap));
}

TEST(FaultInjection, MachineCheckKillsWhenNoTrustedShadowExists) {
  sim::MachineConfig config;
  config.kernel.save_pkr_on_switch = false;
  sim::Machine machine{config};
  const int pid = machine.load(wl::build_sha(1).link());
  machine.run(30'000);
  ASSERT_FALSE(machine.kernel().all_exited());
  // Parity-bad PKR row with no per-thread shadow to scrub from: the
  // machine-check handler must give up and kill only the affected process.
  machine.hart().pkr().corrupt_bit(1, 7);
  machine.hart().inject_trap(core::TrapCause::kMachineCheck, 0);
  machine.kernel().handle_trap();
  EXPECT_EQ(machine.exit_code(pid), os::kExitMachineCheck);
  EXPECT_EQ(machine.kernel().stats().machine_check_kills, 1u);
  EXPECT_TRUE(machine.run(1'000'000).completed);
}

// Guest with 17 permission-sealed keys — one more than the CAM holds, so
// WRPKRs inside the trusted function keep missing and refilling (the
// perm-seal syscall pre-fills one CAM line per key, hence a single sealed
// key would always hit). With the drop hook armed, every refill is lost and
// the faulting WRPKR re-executes forever — the watchdog must convert that
// storm into a kill.
constexpr i64 kStormKeys = 17;

Program make_sealed_wrpkr_program() {
  Program prog;
  rt::add_crt0(prog);
  Function& f = prog.add_function("main");
  f.addi(sp, sp, -16);
  f.sd(ra, 0, sp);
  for (i64 i = 0; i < kStormKeys; ++i) {
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);  // -> keys 1..17
  }
  f.call("trusted");  // unsealed first pass: latches the range
  for (i64 k = 1; k <= kStormKeys; ++k) {
    f.li(a0, k);
    rt::syscall(f, os::sys::kPkeyPermSeal);
  }
  f.call("trusted");  // sealed: 17 keys thrash the 16-entry CAM
  f.ld(ra, 0, sp);
  f.addi(sp, sp, 16);
  f.li(a0, 0);
  f.ret();

  Function& t = prog.add_function("trusted");
  t.seal_start(0);
  const Label loop = t.new_label(), done = t.new_label();
  t.li(t0, 1);
  t.bind(loop);
  t.li(t1, kStormKeys);
  t.blt(t1, t0, done);
  t.rdpkr(t2, t0);
  t.wrpkr(t0, t2);  // identity rewrite, inside the permissible range
  t.addi(t0, t0, 1);
  t.j(loop);
  t.bind(done);
  t.seal_end(0);
  t.ret();
  return prog;
}

TEST(Watchdog, TrapStormFromDroppedRefillsKillsWithDistinctCode) {
  sim::MachineConfig config;
  config.fault_plan.enabled = true;
  config.fault_plan.rate = 0.0;  // no step faults: isolate the CAM path
  config.fault_plan.cam_rate = 1.0;
  config.fault_plan.kinds = fault::kind_bit(fault::FaultKind::kCamDropRefill);
  sim::Machine machine{config};
  const int pid = machine.load(make_sealed_wrpkr_program().link());
  const auto outcome = machine.run(50'000'000);
  ASSERT_TRUE(outcome.completed);  // killed == exited
  EXPECT_EQ(machine.exit_code(pid), os::kExitTrapStorm);
  const auto& stats = machine.kernel().stats();
  EXPECT_EQ(stats.watchdog_kills, 1u);
  EXPECT_GE(stats.cam_refills_dropped,
            machine.config().watchdog_trap_storm - 1);
  fault::FaultInjector* injector = machine.injector();
  ASSERT_NE(injector, nullptr);
  EXPECT_EQ(injector->outstanding(), 0u);
  EXPECT_GE(injector->resolved(fault::FaultKind::kCamDropRefill,
                               fault::FaultResolution::kProcessKilled),
            1u);
}

TEST(Watchdog, LivelockBackstopCatchesStormsWithoutPcPinning) {
  sim::MachineConfig config;
  config.fault_plan.enabled = true;
  config.fault_plan.rate = 0.0;
  config.fault_plan.cam_rate = 1.0;
  config.fault_plan.kinds = fault::kind_bit(fault::FaultKind::kCamDropRefill);
  config.watchdog_trap_storm = 0;  // disable the same-PC detector
  config.watchdog_livelock = 300;
  sim::Machine machine{config};
  const int pid = machine.load(make_sealed_wrpkr_program().link());
  ASSERT_TRUE(machine.run(50'000'000).completed);
  EXPECT_EQ(machine.exit_code(pid), os::kExitLivelock);
  EXPECT_EQ(machine.kernel().stats().watchdog_kills, 1u);
}

TEST(Watchdog, DuplicatedRefillsAreDetectedAndDeduped) {
  sim::MachineConfig config;
  config.fault_plan.enabled = true;
  config.fault_plan.rate = 0.0;
  config.fault_plan.cam_rate = 1.0;
  config.fault_plan.kinds = fault::kind_bit(fault::FaultKind::kCamDupRefill);
  config.audit_interval = 500;  // tight cadence so dedup happens in-run
  sim::Machine machine{config};
  const int pid = machine.load(make_sealed_wrpkr_program().link());
  ASSERT_TRUE(machine.run(50'000'000).completed);
  EXPECT_EQ(machine.exit_code(pid), 0);  // duplicates are benign when deduped
  const auto& stats = machine.kernel().stats();
  EXPECT_GE(stats.cam_refills_duplicated, 1u);
  EXPECT_GE(stats.cam_dedups, 1u);
  EXPECT_EQ(machine.injector()->outstanding(), 0u);
}

TEST(LoadRefusal, OverlappingSegmentsAreRefusedNotFatal) {
  isa::Image hostile;
  hostile.entry = 0x10000;
  isa::Segment a;
  a.addr = 0x10000;
  a.bytes.assign(0x2000, 0x13);  // nop sled
  a.exec = true;
  isa::Segment b;
  b.addr = 0x11000;  // overlaps the tail of `a`
  b.bytes.assign(0x2000, 0);
  b.write = true;
  hostile.segments = {a, b};

  sim::Machine machine{sim::MachineConfig{}};
  EXPECT_EQ(machine.load(hostile), sim::Machine::kLoadRefused);
  EXPECT_NE(machine.kernel().admission_error().find("segment map failed"),
            std::string::npos)
      << machine.kernel().admission_error();

  // The refusal must leave the machine fully usable.
  const int pid = machine.load(wl::build_sha(1).link());
  ASSERT_GE(pid, 0);
  ASSERT_TRUE(machine.run(400'000'000).completed);
  EXPECT_EQ(machine.exit_code(pid), 0);
}

TEST(LoadRefusal, FrameExhaustionIsRefusedNotFatal) {
  sim::MachineConfig config;
  // 2 MiB kernel reserve + 16 usable frames: nowhere near image + stack.
  config.mem_bytes = 2 * 1024 * 1024 + 64 * 1024;
  sim::Machine machine{config};
  EXPECT_EQ(machine.load(wl::build_sha(1).link()),
            sim::Machine::kLoadRefused);
  EXPECT_NE(machine.kernel().admission_error().find("no memory"),
            std::string::npos)
      << machine.kernel().admission_error();
}

TEST(ExitCode, UnknownPidYieldsSentinelNotException) {
  sim::Machine machine{sim::MachineConfig{}};
  EXPECT_FALSE(machine.has_process(4242));
  EXPECT_EQ(machine.exit_code(4242), sim::Machine::kNoExitCode);
  const int pid = machine.load(wl::build_sha(1).link());
  ASSERT_GE(pid, 0);
  EXPECT_TRUE(machine.has_process(pid));
  EXPECT_NE(machine.exit_code(pid), sim::Machine::kNoExitCode);
  // A refused load returns kLoadRefused, and probing it stays exception-free.
  EXPECT_EQ(machine.exit_code(sim::Machine::kLoadRefused),
            sim::Machine::kNoExitCode);
}

TEST(HostErrorContainment, TornRunQueueNeverEscapesRun) {
  Program prog = testutil::make_main_program([](Program&, Function& f) {
    for (int i = 0; i < 4; ++i) rt::syscall(f, os::sys::kSchedYield);
    f.li(a0, 0);
  });
  sim::Machine machine{sim::MachineConfig{}};
  const int pid = machine.load(prog.link());
  ASSERT_GE(pid, 0);
  // Tear the scheduler state behind the kernel's back: the first yield will
  // dereference a thread that does not exist. The host exception must be
  // contained inside run(), never thrown to the caller.
  machine.kernel().run_queue_for_test().push_back(999);
  EXPECT_NO_THROW(machine.run(1'000'000));
  EXPECT_GE(machine.kernel().stats().host_errors_contained, 1u);
  ASSERT_FALSE(machine.kernel().host_errors().empty());
}

// The end-to-end differential oracle over a real workload (the full
// 17-workload sweep runs as the sealpk-chaos ctest entries; this keeps one
// in-process instance under ASan/UBSan coverage).
TEST(ChaosOracle, ShaUnderFullFaultPlanRecoversOrKills) {
  const isa::Image image = wl::build_sha(1).link();

  sim::Machine clean{sim::MachineConfig{}};
  const int clean_pid = clean.load(image);
  ASSERT_TRUE(clean.run(400'000'000).completed);

  sim::MachineConfig config;
  config.fault_plan.enabled = true;
  config.fault_plan.seed = 7;
  config.fault_plan.rate = 1e-4;
  sim::Machine chaos{config};
  const int chaos_pid = chaos.load(image);
  ASSERT_TRUE(chaos.run(400'000'000).completed);

  fault::FaultInjector* injector = chaos.injector();
  ASSERT_NE(injector, nullptr);
  EXPECT_GE(injector->total_injected(), 1u);
  EXPECT_EQ(injector->outstanding(), 0u);

  const auto& stats = chaos.kernel().stats();
  const bool identical =
      chaos.exit_code(chaos_pid) == clean.exit_code(clean_pid) &&
      chaos.kernel().reports() == clean.kernel().reports() &&
      chaos.kernel().console() == clean.kernel().console();
  const u64 kills = stats.machine_check_kills + stats.watchdog_kills;
  if (!identical) {
    EXPECT_TRUE(kills > 0 || stats.recoveries() > 0)
        << "output diverged without a recorded recovery or kill";
    if (kills > 0) {
      const i64 code = chaos.exit_code(chaos_pid);
      EXPECT_TRUE(code == os::kExitMachineCheck ||
                  code == os::kExitTrapStorm || code == os::kExitLivelock)
          << "killed with non-distinct exit code " << code;
    }
  }
}

}  // namespace
}  // namespace sealpk
