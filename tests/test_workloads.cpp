// Workload correctness: every benchmark proxy must report exactly the
// checksum its host-side golden model computes — both uninstrumented and
// under the heaviest shadow-stack instrumentation (transparency).
#include <gtest/gtest.h>

#include "guest_test_util.h"
#include "passes/shadow_stack.h"
#include "workloads/workload.h"

namespace sealpk {
namespace {

using testutil::GuestRun;
using testutil::run_guest;

class WorkloadTest : public ::testing::TestWithParam<size_t> {
 protected:
  const wl::Workload& workload() const {
    return wl::all_workloads()[GetParam()];
  }
};

TEST_P(WorkloadTest, ChecksumMatchesGolden) {
  const auto& w = workload();
  isa::Program prog = w.build(w.test_scale);
  const GuestRun run = run_guest(prog, {}, 400'000'000);
  ASSERT_TRUE(run.outcome.completed) << "did not finish";
  ASSERT_TRUE(run.faults.empty())
      << "faulted: " << core::trap_cause_name(run.faults[0].cause) << " at 0x"
      << std::hex << run.faults[0].pc;
  EXPECT_EQ(run.exit_code, 0);
  ASSERT_EQ(run.reports.size(), 1u);
  EXPECT_EQ(run.reports[0], w.golden(w.test_scale));
}

TEST_P(WorkloadTest, InstrumentationIsTransparent) {
  const auto& w = workload();
  isa::Program prog = w.build(w.test_scale);
  passes::ShadowStackOptions opts;
  opts.kind = passes::ShadowStackKind::kSealPkRdWr;
  opts.perm_seal = true;
  passes::apply_shadow_stack(prog, opts);
  const GuestRun run = run_guest(prog, {}, 400'000'000);
  ASSERT_TRUE(run.outcome.completed);
  ASSERT_TRUE(run.faults.empty())
      << core::trap_cause_name(run.faults[0].cause);
  ASSERT_EQ(run.reports.size(), 1u);
  EXPECT_EQ(run.reports[0], w.golden(w.test_scale));
}

TEST_P(WorkloadTest, ScalesChangeTheWork) {
  const auto& w = workload();
  if (w.bench_scale == w.test_scale) GTEST_SKIP();
  // The bench scale must actually be a different problem (guards against a
  // builder ignoring its scale parameter).
  EXPECT_NE(w.golden(w.test_scale), w.golden(w.bench_scale)) << w.name;
}

std::string workload_case_name(const ::testing::TestParamInfo<size_t>& info) {
  const auto& w = wl::all_workloads()[info.param];
  std::string name = std::string(wl::suite_name(w.suite)) + "_" + w.name;
  for (char& c : name) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadTest,
                         ::testing::Range<size_t>(0,
                                                  wl::all_workloads().size()),
                         workload_case_name);

TEST(WorkloadRegistry, SeventeenBenchmarksInPaperOrder) {
  const auto& all = wl::all_workloads();
  ASSERT_EQ(all.size(), 17u);
  size_t spec2000 = 0, spec2006 = 0, mibench = 0;
  for (const auto& w : all) {
    switch (w.suite) {
      case wl::Suite::kSpec2000: ++spec2000; break;
      case wl::Suite::kSpec2006: ++spec2006; break;
      case wl::Suite::kMiBench: ++mibench; break;
      case wl::Suite::kScenario: FAIL() << "scenario in all_workloads"; break;
    }
  }
  EXPECT_EQ(spec2000, 6u);  // paper §V-A: 6 of 12 SPECint2000 apps
  EXPECT_EQ(spec2006, 4u);  // 4 of 12 SPECint2006 apps
  EXPECT_EQ(mibench, 7u);   // 7 MiBench apps
}

TEST(WorkloadRegistry, FindHandlesTheBzip2Collision) {
  const auto* b2000 = wl::find_workload(wl::Suite::kSpec2000, "bzip2");
  const auto* b2006 = wl::find_workload(wl::Suite::kSpec2006, "bzip2");
  ASSERT_NE(b2000, nullptr);
  ASSERT_NE(b2006, nullptr);
  EXPECT_NE(b2000, b2006);
  EXPECT_EQ(wl::find_workload(wl::Suite::kMiBench, "nope"), nullptr);
}

}  // namespace
}  // namespace sealpk
