#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "isa/inst.h"
#include "isa/program.h"

namespace sealpk::isa {
namespace {

// ---------------------------------------------------------------------------
// Encode/decode round-trip, parameterized over every opcode.
// ---------------------------------------------------------------------------

class RoundTripTest : public ::testing::TestWithParam<unsigned> {};

i64 random_imm_for(Format fmt, Rng& rng) {
  switch (fmt) {
    case Format::kI: return sext(rng.next(), 12);
    case Format::kS: return sext(rng.next(), 12);
    case Format::kB: return sext(rng.next(), 13) & ~i64{1};
    case Format::kU: return sext(rng.next(), 32) & ~i64{0xFFF};
    case Format::kJ: return sext(rng.next(), 21) & ~i64{1};
    case Format::kShift64: return static_cast<i64>(rng.below(64));
    case Format::kShift32: return static_cast<i64>(rng.below(32));
    case Format::kCsrI: return static_cast<i64>(rng.below(32));
    default: return 0;
  }
}

TEST_P(RoundTripTest, EncodeDecodeIdentity) {
  const Op op = static_cast<Op>(GetParam());
  const OpInfo& oi = op_info(op);
  Rng rng(GetParam() * 977 + 1);
  for (int trial = 0; trial < 50; ++trial) {
    Inst inst;
    inst.op = op;
    switch (oi.format) {
      case Format::kR:
        inst.rd = static_cast<u8>(rng.below(32));
        inst.rs1 = static_cast<u8>(rng.below(32));
        inst.rs2 = static_cast<u8>(rng.below(32));
        if (op == Op::kSfenceVma) inst.rd = 0;
        break;
      case Format::kI:
      case Format::kShift64:
      case Format::kShift32:
        inst.rd = static_cast<u8>(rng.below(32));
        inst.rs1 = static_cast<u8>(rng.below(32));
        inst.imm = random_imm_for(oi.format, rng);
        break;
      case Format::kS:
      case Format::kB:
        inst.rs1 = static_cast<u8>(rng.below(32));
        inst.rs2 = static_cast<u8>(rng.below(32));
        inst.imm = random_imm_for(oi.format, rng);
        break;
      case Format::kU:
      case Format::kJ:
        inst.rd = static_cast<u8>(rng.below(32));
        inst.imm = random_imm_for(oi.format, rng);
        break;
      case Format::kCsr:
        inst.rd = static_cast<u8>(rng.below(32));
        inst.rs1 = static_cast<u8>(rng.below(32));
        inst.csr = 0x100;  // an implemented CSR address
        break;
      case Format::kCsrI:
        inst.rd = static_cast<u8>(rng.below(32));
        inst.imm = random_imm_for(oi.format, rng);
        inst.csr = 0x141;
        break;
      case Format::kSys:
        break;
    }
    const u32 word = encode(inst);
    Inst decoded = decode(word);
    decoded.raw = 0;  // raw is informational only
    EXPECT_EQ(decoded, inst) << oi.name << " trial " << trial << " word 0x"
                             << std::hex << word;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, RoundTripTest,
    ::testing::Range(0u, static_cast<unsigned>(Op::kIllegal)),
    [](const ::testing::TestParamInfo<unsigned>& info) {
      std::string name = op_info(static_cast<Op>(info.param)).name;
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Decoder details.
// ---------------------------------------------------------------------------

TEST(Decode, IllegalWordsNormalise) {
  const Inst a = decode(0);
  const Inst b = decode(0xFFFFFFFF);
  EXPECT_EQ(a.op, Op::kIllegal);
  EXPECT_EQ(b.op, Op::kIllegal);
  EXPECT_EQ(a.rd, 0);
  EXPECT_EQ(a.imm, 0);
}

TEST(Decode, KnownEncodings) {
  // addi a0, sp, -16 == 0xFF010513
  const Inst inst = decode(0xFF010513);
  EXPECT_EQ(inst.op, Op::kAddi);
  EXPECT_EQ(inst.rd, a0);
  EXPECT_EQ(inst.rs1, sp);
  EXPECT_EQ(inst.imm, -16);
  // ret == jalr zero, ra, 0 == 0x00008067
  const Inst ret = decode(0x00008067);
  EXPECT_EQ(ret.op, Op::kJalr);
  EXPECT_EQ(ret.rd, zero);
  EXPECT_EQ(ret.rs1, ra);
  // ecall
  EXPECT_EQ(decode(0x00000073).op, Op::kEcall);
  // sret
  EXPECT_EQ(decode(0x10200073).op, Op::kSret);
}

TEST(Decode, CustomZeroExtension) {
  const u32 rdpkr = encode(Inst{.op = Op::kRdpkr, .rd = a0, .rs1 = a1});
  EXPECT_EQ(bits(rdpkr, 6, 0), 0x0Bu);
  EXPECT_EQ(decode(rdpkr).op, Op::kRdpkr);
  const u32 wrpkr = encode(Inst{.op = Op::kWrpkr, .rs1 = a0, .rs2 = a1});
  EXPECT_EQ(decode(wrpkr).op, Op::kWrpkr);
  // Unknown funct7 in custom-0 space decodes as illegal.
  const u32 bogus = deposit(wrpkr, 31, 25, 0x3F);
  EXPECT_EQ(decode(static_cast<u32>(bogus)).op, Op::kIllegal);
}

// Every (funct3, funct7) point of the custom-0 space decodes to exactly the
// op the SEALPK_OP_LIST table claims — and everything else to kIllegal. This
// pins the table-driven decoder: adding a custom instruction to the op list
// without a distinct (funct3, funct7) pair, or decoding a stale pair, fails
// here rather than silently aliasing.
TEST(Decode, CustomZeroExhaustive) {
  for (u32 f3 = 0; f3 < 8; ++f3) {
    for (u32 f7 = 0; f7 < 128; ++f7) {
      u32 word = kCustom0Opcode;
      word = static_cast<u32>(deposit(word, 11, 7, a0));   // rd
      word = static_cast<u32>(deposit(word, 14, 12, f3));
      word = static_cast<u32>(deposit(word, 19, 15, a1));  // rs1
      word = static_cast<u32>(deposit(word, 24, 20, a2));  // rs2
      word = static_cast<u32>(deposit(word, 31, 25, f7));
      const Op expected = custom0_op(f3, f7);
      const Inst decoded = decode(word);
      ASSERT_EQ(decoded.op, expected)
          << "f3=" << f3 << " f7=" << f7 << " word 0x" << std::hex << word;
      if (expected != Op::kIllegal) {
        // The decode agrees with the op's own metadata.
        const OpInfo& oi = op_info(expected);
        EXPECT_EQ(oi.opcode, kCustom0Opcode);
        EXPECT_EQ(oi.funct3, f3);
        EXPECT_EQ(oi.funct7, f7);
        EXPECT_EQ(decoded.rd, a0);
        EXPECT_EQ(decoded.rs1, a1);
        EXPECT_EQ(decoded.rs2, a2);
      } else {
        // Illegal decodes are fully normalised (no operand leakage).
        EXPECT_EQ(decoded.rd, 0);
        EXPECT_EQ(decoded.rs1, 0);
        EXPECT_EQ(decoded.rs2, 0);
      }
    }
  }
}

// Encode -> decode -> disassemble over every custom-0 op in the table.
TEST(Decode, CustomZeroRoundTripAllOps) {
  size_t custom_ops = 0;
  for (unsigned idx = 0; idx < static_cast<unsigned>(Op::kIllegal); ++idx) {
    const Op op = static_cast<Op>(idx);
    const OpInfo& oi = op_info(op);
    if (oi.opcode != kCustom0Opcode) continue;
    ++custom_ops;
    SCOPED_TRACE(oi.name);
    // custom0_op is the inverse of the table row.
    EXPECT_EQ(custom0_op(oi.funct3, oi.funct7), op);
    Inst inst;
    inst.op = op;
    inst.rd = t0;
    inst.rs1 = s1;
    inst.rs2 = t1;
    Inst decoded = decode(encode(inst));
    decoded.raw = 0;
    EXPECT_EQ(decoded, inst);
    // The disassembly leads with the table mnemonic.
    EXPECT_EQ(disassemble(decoded).rfind(oi.name, 0), 0u);
  }
  // All eight SealPK/MPK custom instructions are present: rdpkr, wrpkr,
  // seal.start, seal.end, spk.range, spk.seal, wrpkru, rdpkru.
  EXPECT_EQ(custom_ops, 8u);
}

TEST(Encode, RejectsOutOfRangeImmediates) {
  EXPECT_THROW(
      encode(Inst{.op = Op::kAddi, .rd = 1, .rs1 = 1, .imm = 5000}),
      CheckError);
  EXPECT_THROW(encode(Inst{.op = Op::kJal, .rd = 1, .imm = 3}), CheckError);
  EXPECT_THROW(encode(Inst{.op = Op::kLui, .rd = 1, .imm = 0x123}),
               CheckError);
}

TEST(Disasm, RendersOperands) {
  EXPECT_EQ(disassemble(decode(0xFF010513)), "addi a0, sp, -16");
  EXPECT_EQ(disassemble(Inst{.op = Op::kEcall}), "ecall");
  EXPECT_EQ(disassemble(Inst{.op = Op::kWrpkr, .rs1 = a0, .rs2 = a1}),
            "wrpkr zero, a0, a1");
  EXPECT_EQ(disassemble(decode(0)), "illegal");
}

// ---------------------------------------------------------------------------
// Program builder / linker.
// ---------------------------------------------------------------------------

std::vector<Inst> decode_text(const Image& image) {
  const Segment& text = image.segments.at(0);
  std::vector<Inst> out;
  for (size_t i = 0; i + 4 <= text.bytes.size(); i += 4) {
    u32 w = 0;
    for (int b = 3; b >= 0; --b) w = (w << 8) | text.bytes[i + b];
    out.push_back(decode(w));
  }
  return out;
}

TEST(Program, LinksSimpleFunction) {
  Program prog;
  Function& f = prog.add_function("main");
  f.li(a0, 42);
  f.ret();
  const Image image = prog.link();
  EXPECT_EQ(image.symbols.at("main"), image.text_base);
  const auto insts = decode_text(image);
  ASSERT_EQ(insts.size(), 2u);
  EXPECT_EQ(insts[0].op, Op::kAddi);
  EXPECT_EQ(insts[0].imm, 42);
  EXPECT_EQ(insts[1].op, Op::kJalr);
}

TEST(Program, BranchTargetsResolve) {
  Program prog;
  Function& f = prog.add_function("main");
  const Label loop = f.new_label();
  f.li(t0, 3);
  f.bind(loop);
  f.addi(t0, t0, -1);
  f.bnez(t0, loop);
  f.ret();
  const auto insts = decode_text(prog.link());
  ASSERT_EQ(insts.size(), 4u);
  EXPECT_EQ(insts[2].op, Op::kBne);
  EXPECT_EQ(insts[2].imm, -4);  // back to the addi
}

TEST(Program, ForwardBranch) {
  Program prog;
  Function& f = prog.add_function("main");
  const Label done = f.new_label();
  f.beqz(a0, done);
  f.li(a0, 1);
  f.bind(done);
  f.ret();
  const auto insts = decode_text(prog.link());
  EXPECT_EQ(insts[0].op, Op::kBeq);
  EXPECT_EQ(insts[0].imm, 8);
}

TEST(Program, CallEncodesJalRa) {
  Program prog;
  Function& f = prog.add_function("main");
  f.call("helper");
  f.ret();
  Function& g = prog.add_function("helper");
  g.ret();
  const Image image = prog.link();
  const auto insts = decode_text(image);
  EXPECT_EQ(insts[0].op, Op::kJal);
  EXPECT_EQ(insts[0].rd, ra);
  EXPECT_EQ(image.text_base + static_cast<u64>(insts[0].imm),
            image.symbols.at("helper"));
}

TEST(Program, UndefinedSymbolThrows) {
  Program prog;
  prog.add_function("main").call("missing").ret();
  EXPECT_THROW(prog.link(), CheckError);
}

TEST(Program, UnboundLabelThrows) {
  Program prog;
  Function& f = prog.add_function("main");
  const Label l = f.new_label();
  f.beqz(a0, l);
  f.ret();
  EXPECT_THROW(prog.link(), CheckError);
}

TEST(Program, DuplicateFunctionThrows) {
  Program prog;
  prog.add_function("main");
  EXPECT_THROW(prog.add_function("main"), CheckError);
}

TEST(Program, DataSegmentsSplitByWritability) {
  Program prog;
  prog.add_function("main").ret();
  prog.add_rodata("consts", {1, 2, 3, 4});
  prog.add_data("vars", {5, 6});
  prog.add_zero("bss", 4096);
  const Image image = prog.link();
  ASSERT_EQ(image.segments.size(), 3u);  // text, rodata, rw
  EXPECT_FALSE(image.segments[1].write);
  EXPECT_TRUE(image.segments[2].write);
  EXPECT_EQ(image.segments[1].bytes[0], 1);
  EXPECT_EQ(image.segments[2].bytes[0], 5);
  // ro and rw live on different pages so they can get different PTEs.
  EXPECT_NE(image.symbols.at("consts") >> 12, image.symbols.at("vars") >> 12);
}

TEST(Program, LaResolvesDataAddress) {
  Program prog;
  Function& f = prog.add_function("main");
  f.la(a0, "blob");
  f.ret();
  prog.add_data("blob", {0xAA});
  const Image image = prog.link();
  const auto insts = decode_text(image);
  ASSERT_GE(insts.size(), 3u);
  EXPECT_EQ(insts[0].op, Op::kAuipc);
  EXPECT_EQ(insts[1].op, Op::kAddi);
  const u64 resolved = image.text_base + static_cast<u64>(insts[0].imm) +
                       static_cast<u64>(insts[1].imm);
  EXPECT_EQ(resolved, image.symbols.at("blob"));
}

TEST(Program, FuncRangesCoverText) {
  Program prog;
  prog.add_function("a").nop().nop().ret();
  prog.add_function("b").ret();
  const Image image = prog.link();
  const auto [a_start, a_end] = image.func_ranges.at("a");
  const auto [b_start, b_end] = image.func_ranges.at("b");
  EXPECT_EQ(a_end - a_start, 12u);
  EXPECT_EQ(a_end, b_start);
  EXPECT_EQ(b_end, image.text_end);
}

TEST(Program, EntrySymbolSelectsStart) {
  Program prog;
  prog.add_function("main").ret();
  prog.add_function("_start").ret();
  const Image image = prog.link();
  EXPECT_EQ(image.entry, image.symbols.at("_start"));
}


TEST(Program, CallToDataSymbolThrows) {
  Program prog;
  prog.add_function("main").call("blob").ret();
  prog.add_data("blob", {1, 2, 3});
  EXPECT_THROW(prog.link(), CheckError);
}

TEST(Program, DuplicateDataThrows) {
  Program prog;
  prog.add_function("main").ret();
  prog.add_data("x", {1});
  EXPECT_THROW(prog.add_data("x", {2}), CheckError);
}

TEST(Program, FunctionAndDataNameCollisionThrows) {
  Program prog;
  prog.add_function("x").ret();
  prog.add_data("x", {1});
  EXPECT_THROW(prog.link(), CheckError);
}

TEST(Program, EmptyProgramThrows) {
  Program prog;
  EXPECT_THROW(prog.link(), CheckError);
}

TEST(Program, ZeroBlobsAreZeroFilled) {
  Program prog;
  Function& f = prog.add_function("main");
  f.la(a0, "z");
  f.ret();
  prog.add_zero("z", 64);
  const Image image = prog.link();
  const Segment& rw = image.segments.back();
  for (const u8 byte : rw.bytes) EXPECT_EQ(byte, 0);
}

TEST(Program, LiExpandsWithinBudget) {
  Program prog;
  Function& f = prog.add_function("main");
  for (const i64 v :
       {i64{0}, i64{1}, i64{-1}, i64{2047}, i64{-2048}, i64{0x7FFFFFFF},
        i64{INT64_MIN}, i64{INT64_MAX}, i64{0x123456789ABCDEF0}}) {
    f.li(a0, v);
  }
  f.ret();
  EXPECT_NO_THROW(prog.link());  // all expansions encode
}

}  // namespace
}  // namespace sealpk::isa
