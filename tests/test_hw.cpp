#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/serial.h"
#include "hw/pkr.h"
#include "hw/pkru.h"
#include "hw/seal_unit.h"

namespace sealpk::hw {
namespace {

// ---------------------------------------------------------------------------
// PKR — 32x64 permission SRAM.
// ---------------------------------------------------------------------------

TEST(Pkr, Geometry) {
  EXPECT_EQ(kNumPkeys, 1024u);  // 64x Intel MPK's 16 (paper §III-A)
  EXPECT_EQ(kPkrRows * kKeysPerRow, kNumPkeys);
  EXPECT_EQ(kPkrRows * 64, 2048u);  // the paper's 2 Kb SRAM
}

TEST(Pkr, RowIndexing) {
  // Figure 2's example key 0b1111000001: row = upper 5 bits, slot = lower 5.
  EXPECT_EQ(pkr_row_of(0b1111000001), 0b11110u);
  EXPECT_EQ(pkr_slot_of(0b1111000001), 0b00001u);
  EXPECT_EQ(pkr_row_of(0), 0u);
  EXPECT_EQ(pkr_row_of(1023), 31u);
  EXPECT_EQ(pkr_slot_of(1023), 31u);
}

TEST(Pkr, RowReadWrite) {
  Pkr pkr;
  pkr.write_row(3, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(pkr.read_row(3), 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(pkr.read_row(4), 0u);
  EXPECT_THROW(pkr.read_row(32), CheckError);
}

TEST(Pkr, PermFieldExtraction) {
  Pkr pkr;
  // Key 97 -> row 3, slot 1 -> bits [3:2] of row 3.
  pkr.write_row(3, 0b1100);
  EXPECT_EQ(pkr.perm_of(97), kPermNone);
  EXPECT_EQ(pkr.perm_of(96), kPermRw);
  EXPECT_TRUE(pkr.read_disabled(97));
  EXPECT_TRUE(pkr.write_disabled(97));
}

TEST(Pkr, SetPermIsolatesField) {
  Pkr pkr;
  pkr.set_perm(5, kPermReadOnly);
  pkr.set_perm(6, kPermWriteOnly);
  EXPECT_EQ(pkr.peek_perm(5), kPermReadOnly);
  EXPECT_EQ(pkr.peek_perm(6), kPermWriteOnly);
  EXPECT_EQ(pkr.peek_perm(4), kPermRw);
  EXPECT_EQ(pkr.peek_perm(7), kPermRw);
  pkr.set_perm(5, kPermRw);
  EXPECT_EQ(pkr.peek_perm(5), kPermRw);
  EXPECT_EQ(pkr.peek_perm(6), kPermWriteOnly);
}

TEST(Pkr, DisableBitsMatchEncoding) {
  Pkr pkr;
  pkr.set_perm(10, kPermReadOnly);  // WD
  EXPECT_FALSE(pkr.read_disabled(10));
  EXPECT_TRUE(pkr.write_disabled(10));
  pkr.set_perm(10, kPermWriteOnly);  // RD: the write-only domain the RISC-V
                                     // PTE cannot express (§III-A)
  EXPECT_TRUE(pkr.read_disabled(10));
  EXPECT_FALSE(pkr.write_disabled(10));
}

TEST(Pkr, SaveRestoreRoundTrip) {
  Pkr pkr;
  Rng rng(5);
  for (u32 row = 0; row < kPkrRows; ++row) pkr.write_row(row, rng.next());
  const auto snapshot = pkr.save();
  Pkr other;
  other.restore(snapshot);
  for (u32 row = 0; row < kPkrRows; ++row) {
    EXPECT_EQ(other.peek_row(row), pkr.peek_row(row));
  }
}

TEST(Pkr, StatsCountPorts) {
  Pkr pkr;
  pkr.write_row(0, 1);
  pkr.read_row(0);
  pkr.perm_of(3);
  EXPECT_EQ(pkr.stats().row_writes, 1u);
  EXPECT_EQ(pkr.stats().row_reads, 1u);
  EXPECT_EQ(pkr.stats().perm_lookups, 1u);
}

// Property sweep: every key's field is independent.
class PkrSlotTest : public ::testing::TestWithParam<u32> {};

TEST_P(PkrSlotTest, FieldIndependence) {
  const u32 pkey = GetParam();
  Pkr pkr;
  for (u32 row = 0; row < kPkrRows; ++row) pkr.write_row(row, 0);
  pkr.set_perm(pkey, kPermNone);
  for (u32 other = 0; other < kNumPkeys; other += 41) {
    if (other == pkey) continue;
    EXPECT_EQ(pkr.peek_perm(other), kPermRw) << "pkey=" << pkey;
  }
  EXPECT_EQ(pkr.peek_perm(pkey), kPermNone);
}

INSTANTIATE_TEST_SUITE_P(KeySweep, PkrSlotTest,
                         ::testing::Values(0u, 1u, 31u, 32u, 33u, 511u, 512u,
                                           959u, 1023u));

// ---------------------------------------------------------------------------
// SealReg + PK-CAM.
// ---------------------------------------------------------------------------

TEST(SealUnit, UnsealedKeysAlwaysAllowed) {
  SealUnit unit;
  EXPECT_EQ(unit.check_wrpkr(5, 0x1000), SealCheck::kAllowed);
  EXPECT_EQ(unit.stats().cam_hits, 0u);
}

TEST(SealUnit, SealedKeyInRangeAllowed) {
  SealUnit unit;
  unit.set_sealed(7);
  unit.refill(7, 0x103B8, 0x10728);  // Figure 4's example range
  EXPECT_EQ(unit.check_wrpkr(7, 0x103B8), SealCheck::kAllowed);  // inclusive
  EXPECT_EQ(unit.check_wrpkr(7, 0x10500), SealCheck::kAllowed);
  EXPECT_EQ(unit.check_wrpkr(7, 0x10728), SealCheck::kAllowed);  // inclusive
}

TEST(SealUnit, SealedKeyOutOfRangeViolates) {
  SealUnit unit;
  unit.set_sealed(7);
  unit.refill(7, 0x1000, 0x2000);
  EXPECT_EQ(unit.check_wrpkr(7, 0xFFF), SealCheck::kViolation);
  EXPECT_EQ(unit.check_wrpkr(7, 0x2004), SealCheck::kViolation);
  EXPECT_EQ(unit.stats().violations, 2u);
}

TEST(SealUnit, SealedKeyWithoutCamEntryMisses) {
  SealUnit unit;
  unit.set_sealed(9);
  EXPECT_EQ(unit.check_wrpkr(9, 0x1000), SealCheck::kMiss);
  EXPECT_EQ(unit.stats().cam_misses, 1u);
  unit.refill(9, 0x1000, 0x1100);  // the OS refill path
  EXPECT_EQ(unit.check_wrpkr(9, 0x1000), SealCheck::kAllowed);
}

TEST(SealUnit, CamFifoEviction) {
  SealUnit unit;
  for (u32 k = 0; k < kPkCamEntries + 1; ++k) {
    unit.set_sealed(k);
    unit.refill(k, 0x1000 * (k + 1), 0x1000 * (k + 1) + 0x100);
  }
  // Entry 0 was evicted FIFO; sealed keys falling out of the CAM miss again.
  EXPECT_EQ(unit.check_wrpkr(0, 0x1000), SealCheck::kMiss);
  EXPECT_EQ(unit.check_wrpkr(1, 0x2000), SealCheck::kAllowed);
  EXPECT_EQ(unit.cam_valid_count(), kPkCamEntries);
}

TEST(SealUnit, RefillUpdatesExistingEntryInPlace) {
  SealUnit unit;
  unit.set_sealed(3);
  unit.refill(3, 0x1000, 0x2000);
  unit.refill(3, 0x1000, 0x2000);  // re-refill after context switch
  EXPECT_EQ(unit.cam_valid_count(), 1u);
}

TEST(SealUnit, ClearKeyDissolvesSeal) {
  SealUnit unit;
  unit.set_sealed(4);
  unit.refill(4, 0x1000, 0x2000);
  unit.clear_key(4);
  EXPECT_FALSE(unit.sealed(4));
  EXPECT_EQ(unit.check_wrpkr(4, 0x9999), SealCheck::kAllowed);
  EXPECT_EQ(unit.cam_valid_count(), 0u);
}

TEST(SealUnit, SnapshotRoundTrip) {
  SealUnit unit;
  unit.set_sealed(100);
  unit.refill(100, 0xAAA0, 0xBBB0);
  const auto snap = unit.save();
  SealUnit other;
  other.restore(snap);
  EXPECT_TRUE(other.sealed(100));
  const auto entry = other.cam_lookup(100);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->addr_start, 0xAAA0u);
  EXPECT_EQ(entry->addr_end, 0xBBB0u);
}

TEST(SealUnit, ResetClearsEverything) {
  SealUnit unit;
  unit.set_sealed(1);
  unit.refill(1, 1, 2);
  unit.reset();
  EXPECT_FALSE(unit.sealed(1));
  EXPECT_EQ(unit.cam_valid_count(), 0u);
}

TEST(SealUnit, RejectsInvertedRange) {
  SealUnit unit;
  EXPECT_THROW(unit.refill(1, 0x2000, 0x1000), CheckError);
}

// ---------------------------------------------------------------------------
// PKRU (Intel MPK baseline).
// ---------------------------------------------------------------------------

TEST(Pkru, IntelBitLayout) {
  Pkru pkru;
  pkru.set(0b10'01 << 2);  // key 1: AD=1, WD=0; key 2: WD=1, AD=0 — wait:
  // value = 0b1001 << 2: key1 bits [3:2] = 0b01 -> AD; key2 bits [5:4]=0b10 -> WD
  EXPECT_TRUE(pkru.access_disabled(1));
  EXPECT_FALSE(pkru.write_disabled(1));
  EXPECT_FALSE(pkru.access_disabled(2));
  EXPECT_TRUE(pkru.write_disabled(2));
  EXPECT_FALSE(pkru.access_disabled(0));
}

TEST(Pkru, SetPermComposes) {
  Pkru pkru;
  pkru.set_perm(5, /*access_disable=*/false, /*write_disable=*/true);
  pkru.set_perm(6, /*access_disable=*/true, /*write_disable=*/false);
  EXPECT_TRUE(pkru.write_disabled(5));
  EXPECT_FALSE(pkru.access_disabled(5));
  EXPECT_TRUE(pkru.access_disabled(6));
  pkru.set_perm(5, false, false);
  EXPECT_FALSE(pkru.write_disabled(5));
  EXPECT_TRUE(pkru.access_disabled(6));  // untouched
}

TEST(Pkru, SixteenKeysOnly) {
  Pkru pkru;
  EXPECT_THROW(pkru.access_disabled(16), CheckError);
  EXPECT_EQ(kMpkNumPkeys, 16u);
}

// ---------------------------------------------------------------------------
// Canonical state + the reduced-CAM configuration (model-checker ports).
// ---------------------------------------------------------------------------

TEST(Pkr, CanonicalStateIsTheSnapshot) {
  Pkr pkr;
  pkr.set_perm(7, 0b10);
  pkr.set_perm(100, 0b01);
  EXPECT_EQ(pkr.canonical_state(), pkr.save());
  Pkr other;
  other.restore(pkr.canonical_state());
  EXPECT_EQ(other.peek_perm(7), 0b10u);
  EXPECT_EQ(other.peek_perm(100), 0b01u);
}

TEST(SealUnit, CanonicalStateRoundTripsThroughByteStream) {
  SealUnit unit;
  unit.set_sealed(5);
  unit.refill(5, 0x100, 0x200);
  ByteWriter w;
  SealUnit::save_snapshot(w, unit.canonical_state());
  ByteReader r(w.buffer());
  const SealUnit::Snapshot back = SealUnit::load_snapshot(r);
  EXPECT_TRUE(r.done());
  // Canonical: re-serializing the parsed snapshot is byte-identical.
  ByteWriter w2;
  SealUnit::save_snapshot(w2, back);
  EXPECT_EQ(w.buffer(), w2.buffer());
  SealUnit other;
  other.restore(back);
  EXPECT_TRUE(other.sealed(5));
  EXPECT_EQ(other.check_wrpkr(5, 0x150), SealCheck::kAllowed);
}

TEST(SealUnit, ReducedCamWrapsFifoWithinActiveEntries) {
  SealUnit unit(2);  // the model checker's 2-entry PK-CAM
  EXPECT_EQ(unit.active_cam_entries(), 2u);
  unit.set_sealed(0);
  unit.set_sealed(1);
  unit.set_sealed(2);
  unit.refill(0, 0x1000, 0x1100);
  unit.refill(1, 0x2000, 0x2100);
  unit.refill(2, 0x3000, 0x3100);  // FIFO wraps at 2: evicts key 0
  EXPECT_EQ(unit.cam_valid_count(), 2u);
  EXPECT_EQ(unit.check_wrpkr(0, 0x1000), SealCheck::kMiss);
  EXPECT_EQ(unit.check_wrpkr(1, 0x2000), SealCheck::kAllowed);
  EXPECT_EQ(unit.check_wrpkr(2, 0x3000), SealCheck::kAllowed);
  unit.refill(0, 0x1000, 0x1100);  // cursor wrapped to slot 1: evicts key 1
  EXPECT_EQ(unit.check_wrpkr(1, 0x2000), SealCheck::kMiss);
  EXPECT_EQ(unit.check_wrpkr(0, 0x1000), SealCheck::kAllowed);
}

TEST(SealUnit, DoubleSetSealedIsIdempotent) {
  SealUnit unit;
  unit.set_sealed(9);
  unit.set_sealed(9);  // the fuse latches; a second blow is a no-op
  EXPECT_TRUE(unit.sealed(9));
  unit.refill(9, 0x1000, 0x1100);
  EXPECT_EQ(unit.check_wrpkr(9, 0x1000), SealCheck::kAllowed);
  unit.clear_key(9);
  EXPECT_FALSE(unit.sealed(9));
}

TEST(SealUnit, MergeSealedRowPreservesOnlySealedNeighbours) {
  SealUnit unit;
  unit.set_sealed(1);  // row 0, slot 1
  // Row 0 currently: slot 1 holds 0b11, slot 2 holds 0b10.
  const u64 old_row = (u64{0b11} << 2) | (u64{0b10} << 4);
  // WRPKR names key 0 and writes an all-zero row.
  u64 next = merge_sealed_row(unit, old_row, 0, /*row=*/0, /*pkey=*/0);
  EXPECT_EQ(bits(next, 3, 2), 0b11u);  // sealed neighbour preserved
  EXPECT_EQ(bits(next, 5, 4), 0u);     // unsealed neighbour takes the write
  EXPECT_EQ(bits(next, 1, 0), 0u);     // the named key's own field is free
  // The named key's field is never merged back even when it is sealed.
  unit.set_sealed(0);
  next = merge_sealed_row(unit, (u64{0b01}) | old_row, 0, 0, 0);
  EXPECT_EQ(bits(next, 1, 0), 0u);
  EXPECT_EQ(bits(next, 3, 2), 0b11u);
}

}  // namespace
}  // namespace sealpk::hw
