#include <gtest/gtest.h>

#include "core/hart.h"
#include "isa/program.h"

namespace sealpk::core {
namespace {

using isa::Inst;
using isa::Op;

// ---------------------------------------------------------------------------
// Bare-mode harness: user mode without translation (satp = bare), code
// placed directly in physical memory.
// ---------------------------------------------------------------------------

class BareHart : public ::testing::Test {
 protected:
  static constexpr u64 kCodeBase = 0x1000;

  explicit BareHart(const HartConfig& config = {})
      : mem_(1 << 20), hart_(mem_, config) {
    hart_.set_priv(Priv::kUser);
    hart_.set_pc(kCodeBase);
  }

  void place(const std::vector<Inst>& insts, u64 addr = kCodeBase) {
    for (size_t i = 0; i < insts.size(); ++i) {
      mem_.write_u32(addr + 4 * i, isa::encode(insts[i]));
    }
  }

  // Steps n instructions, asserting none traps.
  void run_ok(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      const StepResult r = hart_.step();
      ASSERT_EQ(r.kind, StepKind::kOk)
          << "trap " << trap_cause_name(r.cause) << " at step " << i
          << " pc=0x" << std::hex << hart_.csrs().sepc;
    }
  }

  StepResult step() { return hart_.step(); }

  mem::PhysMem mem_;
  Hart hart_;
};

TEST_F(BareHart, AluBasics) {
  hart_.set_reg(isa::a0, 7);
  hart_.set_reg(isa::a1, 5);
  place({
      Inst{.op = Op::kAdd, .rd = isa::a2, .rs1 = isa::a0, .rs2 = isa::a1},
      Inst{.op = Op::kSub, .rd = isa::a3, .rs1 = isa::a0, .rs2 = isa::a1},
      Inst{.op = Op::kXor, .rd = isa::a4, .rs1 = isa::a0, .rs2 = isa::a1},
      Inst{.op = Op::kSltu, .rd = isa::a5, .rs1 = isa::a1, .rs2 = isa::a0},
  });
  run_ok(4);
  EXPECT_EQ(hart_.reg(isa::a2), 12u);
  EXPECT_EQ(hart_.reg(isa::a3), 2u);
  EXPECT_EQ(hart_.reg(isa::a4), 2u);
  EXPECT_EQ(hart_.reg(isa::a5), 1u);
}

TEST_F(BareHart, X0IsHardwiredZero) {
  place({Inst{.op = Op::kAddi, .rd = 0, .rs1 = 0, .imm = 55},
         Inst{.op = Op::kAdd, .rd = isa::a0, .rs1 = 0, .rs2 = 0}});
  run_ok(2);
  EXPECT_EQ(hart_.reg(0), 0u);
  EXPECT_EQ(hart_.reg(isa::a0), 0u);
}

TEST_F(BareHart, Word32OpsSignExtend) {
  hart_.set_reg(isa::a0, 0x7FFFFFFF);
  place({
      Inst{.op = Op::kAddiw, .rd = isa::a1, .rs1 = isa::a0, .imm = 1},
      Inst{.op = Op::kSlliw, .rd = isa::a2, .rs1 = isa::a0, .imm = 1},
  });
  run_ok(2);
  EXPECT_EQ(hart_.reg(isa::a1), 0xFFFFFFFF80000000ULL);
  EXPECT_EQ(hart_.reg(isa::a2), 0xFFFFFFFFFFFFFFFEULL);
}

TEST_F(BareHart, ShiftSemantics) {
  hart_.set_reg(isa::a0, 0x8000000000000000ULL);
  place({
      Inst{.op = Op::kSrli, .rd = isa::a1, .rs1 = isa::a0, .imm = 63},
      Inst{.op = Op::kSrai, .rd = isa::a2, .rs1 = isa::a0, .imm = 63},
  });
  run_ok(2);
  EXPECT_EQ(hart_.reg(isa::a1), 1u);
  EXPECT_EQ(hart_.reg(isa::a2), ~u64{0});
}

TEST_F(BareHart, MulDivEdgeCases) {
  hart_.set_reg(isa::a0, static_cast<u64>(INT64_MIN));
  hart_.set_reg(isa::a1, static_cast<u64>(-1));
  hart_.set_reg(isa::a2, 0);
  place({
      Inst{.op = Op::kDiv, .rd = isa::a3, .rs1 = isa::a0, .rs2 = isa::a1},
      Inst{.op = Op::kRem, .rd = isa::a4, .rs1 = isa::a0, .rs2 = isa::a1},
      Inst{.op = Op::kDiv, .rd = isa::a5, .rs1 = isa::a0, .rs2 = isa::a2},
      Inst{.op = Op::kRem, .rd = isa::a6, .rs1 = isa::a0, .rs2 = isa::a2},
      Inst{.op = Op::kDivu, .rd = isa::a7, .rs1 = isa::a0, .rs2 = isa::a2},
  });
  run_ok(5);
  EXPECT_EQ(hart_.reg(isa::a3), static_cast<u64>(INT64_MIN));  // overflow
  EXPECT_EQ(hart_.reg(isa::a4), 0u);
  EXPECT_EQ(hart_.reg(isa::a5), ~u64{0});  // div by zero -> -1
  EXPECT_EQ(hart_.reg(isa::a6), static_cast<u64>(INT64_MIN));  // rem -> rs1
  EXPECT_EQ(hart_.reg(isa::a7), ~u64{0});
}

TEST_F(BareHart, MulHighVariants) {
  hart_.set_reg(isa::a0, ~u64{0});  // -1 signed, 2^64-1 unsigned
  hart_.set_reg(isa::a1, 2);
  place({
      Inst{.op = Op::kMulh, .rd = isa::a2, .rs1 = isa::a0, .rs2 = isa::a1},
      Inst{.op = Op::kMulhu, .rd = isa::a3, .rs1 = isa::a0, .rs2 = isa::a1},
      Inst{.op = Op::kMulhsu, .rd = isa::a4, .rs1 = isa::a0, .rs2 = isa::a1},
  });
  run_ok(3);
  EXPECT_EQ(hart_.reg(isa::a2), ~u64{0});  // -1 * 2 -> high = -1
  EXPECT_EQ(hart_.reg(isa::a3), 1u);       // (2^64-1)*2 -> high = 1
  EXPECT_EQ(hart_.reg(isa::a4), ~u64{0});
}

TEST_F(BareHart, LoadStoreWidthsAndSignExtension) {
  hart_.set_reg(isa::a0, 0x8000);
  hart_.set_reg(isa::a1, 0xFFFFFFFF80ABCDEFULL);
  place({
      Inst{.op = Op::kSd, .rs1 = isa::a0, .rs2 = isa::a1, .imm = 0},
      Inst{.op = Op::kLb, .rd = isa::a2, .rs1 = isa::a0, .imm = 1},
      Inst{.op = Op::kLbu, .rd = isa::a3, .rs1 = isa::a0, .imm = 1},
      Inst{.op = Op::kLh, .rd = isa::a4, .rs1 = isa::a0, .imm = 0},
      Inst{.op = Op::kLwu, .rd = isa::a5, .rs1 = isa::a0, .imm = 0},
      Inst{.op = Op::kLd, .rd = isa::a6, .rs1 = isa::a0, .imm = 0},
  });
  run_ok(6);
  EXPECT_EQ(hart_.reg(isa::a2), static_cast<u64>(i64{-51}));  // 0xCD
  EXPECT_EQ(hart_.reg(isa::a3), 0xCDu);
  EXPECT_EQ(hart_.reg(isa::a4), static_cast<u64>(sext(0xCDEF, 16)));
  EXPECT_EQ(hart_.reg(isa::a5), 0x80ABCDEFu);
  EXPECT_EQ(hart_.reg(isa::a6), 0xFFFFFFFF80ABCDEFULL);
}

TEST_F(BareHart, MisalignedLoadTraps) {
  hart_.set_reg(isa::a0, 0x8001);
  place({Inst{.op = Op::kLw, .rd = isa::a1, .rs1 = isa::a0, .imm = 0}});
  const StepResult r = step();
  EXPECT_EQ(r.kind, StepKind::kTrap);
  EXPECT_EQ(r.cause, TrapCause::kLoadAddrMisaligned);
  EXPECT_EQ(hart_.csrs().stval, 0x8001u);
  EXPECT_EQ(hart_.priv(), Priv::kSupervisor);
}

TEST_F(BareHart, MisalignedStoreTraps) {
  hart_.set_reg(isa::a0, 0x8002);
  place({Inst{.op = Op::kSd, .rs1 = isa::a0, .rs2 = isa::a1, .imm = 0}});
  EXPECT_EQ(step().cause, TrapCause::kStoreAddrMisaligned);
}

TEST_F(BareHart, OutOfRangeAccessFaults) {
  hart_.set_reg(isa::a0, 0x200000);  // beyond the 1 MiB memory
  place({Inst{.op = Op::kLd, .rd = isa::a1, .rs1 = isa::a0, .imm = 0}});
  EXPECT_EQ(step().cause, TrapCause::kLoadAccessFault);
}

TEST_F(BareHart, BranchesAndJumps) {
  hart_.set_reg(isa::a0, 1);
  place({
      Inst{.op = Op::kBne, .rs1 = isa::a0, .rs2 = 0, .imm = 8},  // skip next
      Inst{.op = Op::kAddi, .rd = isa::a1, .rs1 = 0, .imm = 99},
      Inst{.op = Op::kJal, .rd = isa::ra, .imm = 8},             // skip next
      Inst{.op = Op::kAddi, .rd = isa::a1, .rs1 = 0, .imm = 98},
      Inst{.op = Op::kAddi, .rd = isa::a2, .rs1 = 0, .imm = 1},
  });
  run_ok(3);
  EXPECT_EQ(hart_.reg(isa::a1), 0u);
  EXPECT_EQ(hart_.reg(isa::a2), 1u);
  EXPECT_EQ(hart_.reg(isa::ra), kCodeBase + 12);
}

TEST_F(BareHart, JalrClearsLowBit) {
  hart_.set_reg(isa::a0, kCodeBase + 9);  // odd target
  place({Inst{.op = Op::kJalr, .rd = isa::ra, .rs1 = isa::a0, .imm = 0},
         Inst{.op = Op::kAddi, .rd = isa::a1, .rs1 = 0, .imm = 1},
         Inst{.op = Op::kAddi, .rd = isa::a2, .rs1 = 0, .imm = 2}});
  run_ok(2);
  EXPECT_EQ(hart_.reg(isa::a2), 2u);  // landed at +8
  EXPECT_EQ(hart_.reg(isa::a1), 0u);
}

TEST_F(BareHart, MisalignedFetchTraps) {
  hart_.set_pc(kCodeBase + 2);
  EXPECT_EQ(step().cause, TrapCause::kInstAddrMisaligned);
}

TEST_F(BareHart, IllegalInstructionTraps) {
  mem_.write_u32(kCodeBase, 0xFFFFFFFF);
  const StepResult r = step();
  EXPECT_EQ(r.cause, TrapCause::kIllegalInst);
  EXPECT_EQ(hart_.csrs().sepc, kCodeBase);
}

TEST_F(BareHart, EcallFromUserTraps) {
  place({Inst{.op = Op::kEcall}});
  const StepResult r = step();
  EXPECT_EQ(r.cause, TrapCause::kEcallFromU);
  EXPECT_EQ(hart_.pc(), hart_.csrs().stvec & ~u64{3});
}

TEST_F(BareHart, SretReturnsToUser) {
  hart_.set_priv(Priv::kSupervisor);
  hart_.csrs().sepc = 0x4000;
  place({Inst{.op = Op::kSret}});
  run_ok(1);
  EXPECT_EQ(hart_.pc(), 0x4000u);
  EXPECT_EQ(hart_.priv(), Priv::kUser);
}

TEST_F(BareHart, SretFromUserIsIllegal) {
  place({Inst{.op = Op::kSret}});
  EXPECT_EQ(step().cause, TrapCause::kIllegalInst);
}

TEST_F(BareHart, CsrAccessControl) {
  // U-mode may read cycle but not sstatus.
  place({Inst{.op = Op::kCsrrs, .rd = isa::a0, .rs1 = 0, .csr = 0xC00},
         Inst{.op = Op::kCsrrs, .rd = isa::a1, .rs1 = 0, .csr = 0x100}});
  run_ok(1);
  EXPECT_GT(hart_.reg(isa::a0), 0u);  // cycles accumulated
  EXPECT_EQ(step().cause, TrapCause::kIllegalInst);
}

TEST_F(BareHart, CsrReadWriteInSupervisor) {
  hart_.set_priv(Priv::kSupervisor);
  hart_.set_reg(isa::a0, 0xABCD);
  place({
      Inst{.op = Op::kCsrrw, .rd = isa::a1, .rs1 = isa::a0, .csr = 0x140},
      Inst{.op = Op::kCsrrs, .rd = isa::a2, .rs1 = 0, .csr = 0x140},
      Inst{.op = Op::kCsrrci, .rd = isa::a3, .imm = 0xD, .csr = 0x140},
      Inst{.op = Op::kCsrrs, .rd = isa::a4, .rs1 = 0, .csr = 0x140},
  });
  run_ok(4);
  EXPECT_EQ(hart_.reg(isa::a1), 0u);
  EXPECT_EQ(hart_.reg(isa::a2), 0xABCDu);
  EXPECT_EQ(hart_.reg(isa::a4), 0xABC0u);
}

TEST_F(BareHart, TrapChargesEntryCycles) {
  place({Inst{.op = Op::kEcall}});
  const u64 before = hart_.cycles();
  step();
  EXPECT_GE(hart_.cycles() - before,
            hart_.timing().trap_enter_cycles);
}

TEST_F(BareHart, InstretCountsOnlyRetired) {
  place({Inst{.op = Op::kAddi, .rd = isa::a0, .rs1 = 0, .imm = 1},
         Inst{.op = Op::kEcall}});
  step();
  step();
  EXPECT_EQ(hart_.instret(), 1u);  // the ecall did not retire
}

// ---------------------------------------------------------------------------
// Custom-0 extension in bare mode.
// ---------------------------------------------------------------------------

TEST_F(BareHart, RdpkrWrpkrRoundTrip) {
  hart_.set_reg(isa::a0, 97);  // row 3
  hart_.set_reg(isa::a1, 0xAABB);
  place({
      Inst{.op = Op::kWrpkr, .rs1 = isa::a0, .rs2 = isa::a1},
      Inst{.op = Op::kRdpkr, .rd = isa::a2, .rs1 = isa::a0},
  });
  run_ok(2);
  EXPECT_EQ(hart_.reg(isa::a2), 0xAABBu);
  EXPECT_EQ(hart_.pkr().peek_row(3), 0xAABBu);
  EXPECT_EQ(hart_.stats().wrpkr_count, 1u);
  EXPECT_EQ(hart_.stats().rdpkr_count, 1u);
}

TEST_F(BareHart, SealLatchesRecordPc) {
  place({Inst{.op = Op::kSealStart, .rs1 = 0},
         Inst{.op = Op::kAddi, .rd = 0, .rs1 = 0, .imm = 0},
         Inst{.op = Op::kSealEnd, .rs1 = 0}});
  run_ok(3);
  EXPECT_EQ(hart_.csrs().seal_start, kCodeBase);
  EXPECT_EQ(hart_.csrs().seal_end, kCodeBase + 8);
}

TEST_F(BareHart, SpkSealRequiresSupervisor) {
  place({Inst{.op = Op::kSpkSeal, .rs1 = isa::a0}});
  EXPECT_EQ(step().cause, TrapCause::kIllegalInst);
}

TEST_F(BareHart, SpkRangeAndSealCommitFromSupervisor) {
  hart_.set_priv(Priv::kSupervisor);
  hart_.set_reg(isa::a0, 0x5000);
  hart_.set_reg(isa::a1, 0x6000);
  hart_.set_reg(isa::a2, 42);
  place({
      Inst{.op = Op::kSpkRange, .rs1 = isa::a0, .rs2 = isa::a1},
      Inst{.op = Op::kSpkSeal, .rs1 = isa::a2},
  });
  run_ok(2);
  EXPECT_TRUE(hart_.seal_unit().sealed(42));
  const auto entry = hart_.seal_unit().cam_lookup(42);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->addr_start, 0x5000u);
  EXPECT_EQ(entry->addr_end, 0x6000u);
}

TEST_F(BareHart, DoubleSealIsIllegal) {
  hart_.set_priv(Priv::kSupervisor);
  hart_.set_reg(isa::a0, 0x5000);
  hart_.set_reg(isa::a1, 0x6000);
  hart_.set_reg(isa::a2, 42);
  place({
      Inst{.op = Op::kSpkRange, .rs1 = isa::a0, .rs2 = isa::a1},
      Inst{.op = Op::kSpkSeal, .rs1 = isa::a2},
      Inst{.op = Op::kSpkSeal, .rs1 = isa::a2},
  });
  run_ok(2);
  EXPECT_EQ(step().cause, TrapCause::kIllegalInst);
}

TEST_F(BareHart, WrpkrOnSealedKeyOutsideRangeTraps) {
  hart_.seal_unit().set_sealed(5);
  hart_.seal_unit().refill(5, 0x9000, 0x9100);  // code is at 0x1000: outside
  hart_.set_reg(isa::a0, 5);
  hart_.set_reg(isa::a1, 0);
  place({Inst{.op = Op::kWrpkr, .rs1 = isa::a0, .rs2 = isa::a1}});
  const StepResult r = step();
  EXPECT_EQ(r.cause, TrapCause::kSealViolation);
  EXPECT_EQ(hart_.csrs().stval, 5u);
}

TEST_F(BareHart, WrpkrOnSealedKeyInsideRangeExecutes) {
  hart_.seal_unit().set_sealed(5);
  hart_.seal_unit().refill(5, kCodeBase, kCodeBase + 0x100);
  hart_.set_reg(isa::a0, 5);
  hart_.set_reg(isa::a1, 0b01);
  place({Inst{.op = Op::kWrpkr, .rs1 = isa::a0, .rs2 = isa::a1}});
  run_ok(1);
  // WRPKR writes the whole 64-bit row; rs2 = 0b01 lands in key 0's field.
  EXPECT_EQ(hart_.pkr().peek_row(0), 0b01u);
}

TEST_F(BareHart, WrpkrCamMissTrapsForRefill) {
  hart_.seal_unit().set_sealed(6);
  hart_.set_reg(isa::a0, 6);
  place({Inst{.op = Op::kWrpkr, .rs1 = isa::a0, .rs2 = 0}});
  const StepResult r = step();
  EXPECT_EQ(r.cause, TrapCause::kPkCamMiss);
  EXPECT_EQ(hart_.csrs().stval, 6u);
  EXPECT_EQ(hart_.csrs().sepc, kCodeBase);  // re-executable
}

TEST_F(BareHart, WrpkrPreservesSealedNeighboursInRow) {
  // Keys 3 and 5 share row 0; seal key 3, write the row naming key 5.
  hart_.pkr().set_perm(3, hw::kPermNone);
  hart_.seal_unit().set_sealed(3);
  hart_.seal_unit().refill(3, 0x9000, 0x9100);
  hart_.set_reg(isa::a0, 5);
  hart_.set_reg(isa::a1, 0);  // attempt to zero the whole row
  place({Inst{.op = Op::kWrpkr, .rs1 = isa::a0, .rs2 = isa::a1}});
  run_ok(1);
  EXPECT_EQ(hart_.pkr().peek_perm(3), hw::kPermNone);  // survived
  EXPECT_EQ(hart_.pkr().peek_perm(5), hw::kPermRw);
}

TEST_F(BareHart, MpkInstructionsIllegalInSealPkFlavour) {
  place({Inst{.op = Op::kWrpkru, .rs1 = isa::a0}});
  EXPECT_EQ(step().cause, TrapCause::kIllegalInst);
}

// ---------------------------------------------------------------------------
// Intel-MPK flavour.
// ---------------------------------------------------------------------------

class MpkHart : public BareHart {
 protected:
  static HartConfig mpk_config() {
    HartConfig cfg;
    cfg.flavor = IsaFlavor::kIntelMpkCompat;
    return cfg;
  }
  MpkHart() : BareHart(mpk_config()) {}
};

TEST_F(MpkHart, WrpkruRdpkruRoundTrip) {
  hart_.set_reg(isa::a0, 0x0000000C);
  place({
      Inst{.op = Op::kWrpkru, .rs1 = isa::a0},
      Inst{.op = Op::kRdpkru, .rd = isa::a1},
  });
  run_ok(2);
  EXPECT_EQ(hart_.reg(isa::a1), 0x0000000Cu);
  EXPECT_TRUE(hart_.pkru().access_disabled(1));
  EXPECT_TRUE(hart_.pkru().write_disabled(1));
}

TEST_F(MpkHart, SealPkInstructionsIllegalInMpkFlavour) {
  place({Inst{.op = Op::kRdpkr, .rd = isa::a0, .rs1 = isa::a1}});
  EXPECT_EQ(step().cause, TrapCause::kIllegalInst);
}

}  // namespace
}  // namespace sealpk::core
