#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/check.h"
#include "common/json_parse.h"
#include "common/rng.h"

namespace sealpk {
namespace {

TEST(Bits, ExtractBasic) {
  EXPECT_EQ(bits(0xDEADBEEF, 31, 16), 0xDEADu);
  EXPECT_EQ(bits(0xDEADBEEF, 15, 0), 0xBEEFu);
  EXPECT_EQ(bits(0xFF, 3, 0), 0xFu);
  EXPECT_EQ(bits(~u64{0}, 63, 0), ~u64{0});
}

TEST(Bits, SingleBit) {
  EXPECT_EQ(bit(0b1010, 1), 1u);
  EXPECT_EQ(bit(0b1010, 0), 0u);
  EXPECT_EQ(bit(u64{1} << 63, 63), 1u);
}

TEST(Bits, Deposit) {
  EXPECT_EQ(deposit(0, 7, 4, 0xA), 0xA0u);
  EXPECT_EQ(deposit(0xFF, 7, 4, 0x0), 0x0Fu);
  EXPECT_EQ(deposit(0, 63, 54, 0x3FF), u64{0x3FF} << 54);
  // Field wider than value: masked.
  EXPECT_EQ(deposit(0, 3, 0, 0x1FF), 0xFu);
}

TEST(Bits, DepositRoundTripsWithExtract) {
  for (unsigned lo = 0; lo < 60; lo += 7) {
    const u64 v = deposit(0x1234'5678'9ABC'DEF0, lo + 3, lo, 0b1010);
    EXPECT_EQ(bits(v, lo + 3, lo), 0b1010u) << "lo=" << lo;
  }
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sext(0xFFF, 12), -1);
  EXPECT_EQ(sext(0x7FF, 12), 0x7FF);
  EXPECT_EQ(sext(0x800, 12), -2048);
  EXPECT_EQ(sext(0xFFFFFFFF, 32), -1);
  EXPECT_EQ(sext(0x80000000, 32), INT64_C(-2147483648));
}

TEST(Bits, ZeroExtend) {
  EXPECT_EQ(zext(~u64{0}, 12), 0xFFFu);
  EXPECT_EQ(zext(~u64{0}, 64), ~u64{0});
}

TEST(Bits, FitsSigned) {
  EXPECT_TRUE(fits_signed(2047, 12));
  EXPECT_FALSE(fits_signed(2048, 12));
  EXPECT_TRUE(fits_signed(-2048, 12));
  EXPECT_FALSE(fits_signed(-2049, 12));
  EXPECT_TRUE(fits_signed(0, 1));
  EXPECT_TRUE(fits_signed(-1, 1));
  EXPECT_FALSE(fits_signed(1, 1));
}

TEST(Bits, Alignment) {
  EXPECT_EQ(align_down(0x1FFF, 0x1000), 0x1000u);
  EXPECT_EQ(align_up(0x1001, 0x1000), 0x2000u);
  EXPECT_EQ(align_up(0x1000, 0x1000), 0x1000u);
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
}

TEST(Check, ThrowsOnFailure) {
  EXPECT_THROW(SEALPK_CHECK(1 == 2), CheckError);
  EXPECT_NO_THROW(SEALPK_CHECK(1 == 1));
  try {
    SEALPK_CHECK_MSG(false, "context " << 42);
    FAIL();
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const u64 v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

// --- json_parse.h -----------------------------------------------------------

TEST(JsonParse, ParsesTheReportShapesTheSloGateReads) {
  const JsonValue doc = json_parse(
      "{\"schema\": \"sealpk-serve-v1\", \"ok\": true, \"n\": -3.5,\n"
      " \"dispositions\": {\"served\": 24},\n"
      " \"cells\": [{\"mode\": \"virt-eager\", \"churn_per_sec\": 98546},\n"
      "            {\"mode\": \"raw\"}]}");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("schema")->str, "sealpk-serve-v1");
  EXPECT_TRUE(doc.find("ok")->boolean);
  EXPECT_EQ(doc.find("n")->number, -3.5);
  EXPECT_EQ(doc.find("dispositions")->find("served")->number, 24.0);
  const JsonValue& cells = *doc.find("cells");
  ASSERT_TRUE(cells.is_array());
  ASSERT_EQ(cells.items.size(), 2u);
  EXPECT_EQ(cells.items[0].find("mode")->str, "virt-eager");
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonParse, HandlesEscapesAndRejectsMalformedInput) {
  const JsonValue s = json_parse("\"a\\\"b\\\\c\\n\\u0041\"");
  EXPECT_EQ(s.str, "a\"b\\c\nA");
  EXPECT_THROW(json_parse("{\"unterminated\": "), std::runtime_error);
  EXPECT_THROW(json_parse("[1, 2,]"), std::runtime_error);
  EXPECT_THROW(json_parse("{\"a\": 1} trailing"), std::runtime_error);
  EXPECT_THROW(json_parse(""), std::runtime_error);
}

}  // namespace
}  // namespace sealpk
