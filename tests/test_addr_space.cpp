// Host-level unit tests for the address-space / page-table layer: VMA
// bookkeeping, splitting, PTE contents, and the pkey page-counter deltas.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "os/addr_space.h"
#include "os/syscall_abi.h"

namespace sealpk::os {
namespace {

class AddrSpaceTest : public ::testing::Test {
 protected:
  AddrSpaceTest()
      : mem_(64 << 20),
        frames_(1 << 20, (64 << 20) - (1 << 20)),
        aspace_(mem_, frames_, mem::pte::kSealPkPkeyBits) {}

  mem::PhysMem mem_;
  FrameAllocator frames_;
  AddressSpace aspace_;
};

TEST_F(AddrSpaceTest, MapPicksAddressesAndBuildsPtes) {
  const i64 addr = aspace_.map(0, 8192, prot::kRead | prot::kWrite, 7);
  ASSERT_GT(addr, 0);
  const auto pte = aspace_.leaf_pte(static_cast<u64>(addr));
  ASSERT_TRUE(pte.has_value());
  EXPECT_TRUE((*pte & mem::pte::kR) != 0);
  EXPECT_TRUE((*pte & mem::pte::kW) != 0);
  EXPECT_TRUE((*pte & mem::pte::kU) != 0);
  EXPECT_EQ(mem::pte::pkey_of(*pte), 7u);
  EXPECT_EQ(aspace_.pages_mapped(), 2u);
}

TEST_F(AddrSpaceTest, MapFixedRejectsOverlap) {
  ASSERT_GT(aspace_.map(0x10000, 4096, prot::kRead), 0);
  EXPECT_EQ(aspace_.map(0x10000, 4096, prot::kRead), err::kInval);
  EXPECT_EQ(aspace_.map(0x0F000, 8192, prot::kRead), err::kInval);
}

TEST_F(AddrSpaceTest, MapRejectsMisalignedAndEmpty) {
  EXPECT_EQ(aspace_.map(0x10001, 4096, prot::kRead), err::kInval);
  EXPECT_EQ(aspace_.map(0x10000, 0, prot::kRead), err::kInval);
}

TEST_F(AddrSpaceTest, WriteImpliesReadInPte) {
  // W-without-R is reserved in RISC-V: PROT_WRITE must yield an R+W PTE.
  const i64 addr = aspace_.map(0, 4096, prot::kWrite);
  const auto pte = aspace_.leaf_pte(static_cast<u64>(addr));
  ASSERT_TRUE(pte.has_value());
  EXPECT_TRUE((*pte & mem::pte::kR) != 0);
  EXPECT_FALSE(mem::pte::reserved_perm_combo(*pte));
}

TEST_F(AddrSpaceTest, UnmapFreesFramesAndClearsPtes) {
  const u64 before = frames_.allocated_frames();
  const i64 addr = aspace_.map(0, 4 * 4096, prot::kRead);
  EXPECT_GT(frames_.allocated_frames(), before);
  ASSERT_EQ(aspace_.unmap(static_cast<u64>(addr), 4 * 4096), 0);
  EXPECT_FALSE(aspace_.leaf_pte(static_cast<u64>(addr)).has_value());
  EXPECT_EQ(aspace_.pages_mapped(), 0u);
  // Intermediate tables remain allocated; leaf frames were recycled.
  EXPECT_LE(frames_.allocated_frames(), before + 3);
}

TEST_F(AddrSpaceTest, PartialUnmapSplitsVma) {
  const i64 addr = aspace_.map(0, 3 * 4096, prot::kRead);
  const u64 base = static_cast<u64>(addr);
  ASSERT_EQ(aspace_.unmap(base + 4096, 4096), 0);  // punch out the middle
  EXPECT_TRUE(aspace_.leaf_pte(base).has_value());
  EXPECT_FALSE(aspace_.leaf_pte(base + 4096).has_value());
  EXPECT_TRUE(aspace_.leaf_pte(base + 2 * 4096).has_value());
  EXPECT_EQ(aspace_.vmas().size(), 2u);
  EXPECT_EQ(aspace_.pages_mapped(), 2u);
}

TEST_F(AddrSpaceTest, ProtectSubRangeSplitsAndUpdates) {
  const i64 addr = aspace_.map(0, 4 * 4096, prot::kRead | prot::kWrite);
  const u64 base = static_cast<u64>(addr);
  ASSERT_EQ(aspace_.protect(base + 4096, 2 * 4096, prot::kRead), 2);
  // The middle pages lost W; the edges kept it.
  EXPECT_TRUE((*aspace_.leaf_pte(base) & mem::pte::kW) != 0);
  EXPECT_FALSE((*aspace_.leaf_pte(base + 4096) & mem::pte::kW) != 0);
  EXPECT_FALSE((*aspace_.leaf_pte(base + 2 * 4096) & mem::pte::kW) != 0);
  EXPECT_TRUE((*aspace_.leaf_pte(base + 3 * 4096) & mem::pte::kW) != 0);
  EXPECT_EQ(aspace_.vmas().size(), 3u);
}

TEST_F(AddrSpaceTest, ProtectOnHoleReturnsEnomem) {
  const i64 addr = aspace_.map(0, 4096, prot::kRead);
  EXPECT_EQ(aspace_.protect(static_cast<u64>(addr), 2 * 4096, prot::kRead),
            err::kNoMem);
  EXPECT_EQ(aspace_.protect(0x7000'0000, 4096, prot::kRead), err::kNoMem);
}

TEST_F(AddrSpaceTest, ProtectPreservesPkey) {
  const i64 addr = aspace_.map(0, 4096, prot::kRead | prot::kWrite, 42);
  ASSERT_EQ(aspace_.protect(static_cast<u64>(addr), 4096, prot::kRead), 1);
  EXPECT_EQ(aspace_.page_pkey(static_cast<u64>(addr)), 42u);
}

TEST_F(AddrSpaceTest, ProtectPkeyMaintainsCounters) {
  std::map<u32, i64> counters;
  const auto delta = [&counters](u32 pkey, i64 pages) {
    counters[pkey] += pages;
  };
  const i64 addr = aspace_.map(0, 2 * 4096, prot::kRead, 0, delta);
  EXPECT_EQ(counters[0], 2);
  ASSERT_EQ(aspace_.protect_pkey(static_cast<u64>(addr), 2 * 4096,
                                 prot::kRead, 9, nullptr, nullptr, delta),
            2);
  EXPECT_EQ(counters[0], 0);
  EXPECT_EQ(counters[9], 2);
  ASSERT_EQ(aspace_.unmap(static_cast<u64>(addr), 2 * 4096, delta), 0);
  EXPECT_EQ(counters[9], 0);
}

TEST_F(AddrSpaceTest, ProtectPkeySealVetoes) {
  const i64 addr = aspace_.map(0, 4096, prot::kRead, 5);
  const auto domain_sealed = [](u32 pkey) { return pkey == 5; };
  const auto pages_sealed = [](u32 pkey) { return pkey == 6; };
  // Re-keying pages of the sealed domain 5 fails...
  EXPECT_EQ(aspace_.protect_pkey(static_cast<u64>(addr), 4096, prot::kRead,
                                 7, domain_sealed, nullptr, nullptr),
            err::kPerm);
  // ...adding pages to the page-sealed domain 6 fails...
  EXPECT_EQ(aspace_.protect_pkey(static_cast<u64>(addr), 4096, prot::kRead,
                                 6, nullptr, pages_sealed, nullptr),
            err::kPerm);
  // ...and the PTE is untouched by the failed calls.
  EXPECT_EQ(aspace_.page_pkey(static_cast<u64>(addr)), 5u);
}

TEST_F(AddrSpaceTest, ProtectPkeyRejectsOversizedKey) {
  const i64 addr = aspace_.map(0, 4096, prot::kRead);
  EXPECT_EQ(aspace_.protect_pkey(static_cast<u64>(addr), 4096, prot::kRead,
                                 1024, nullptr, nullptr, nullptr),
            err::kInval);
}

TEST_F(AddrSpaceTest, CopyInOutRoundTrip) {
  const i64 addr = aspace_.map(0, 2 * 4096, prot::kRead | prot::kWrite);
  std::vector<u8> out(5000);
  for (size_t i = 0; i < out.size(); ++i) out[i] = static_cast<u8>(i * 7);
  // Straddles the page boundary.
  ASSERT_TRUE(aspace_.copy_out(static_cast<u64>(addr) + 100, out.data(),
                               out.size()));
  std::vector<u8> in(out.size());
  ASSERT_TRUE(aspace_.copy_in(static_cast<u64>(addr) + 100, in.data(),
                              in.size()));
  EXPECT_EQ(in, out);
  EXPECT_FALSE(aspace_.copy_in(0x9000'0000, in.data(), 8));
}

TEST_F(AddrSpaceTest, FindVmaBoundaries) {
  const i64 addr = aspace_.map(0x40000, 2 * 4096, prot::kRead);
  const u64 base = static_cast<u64>(addr);
  EXPECT_EQ(aspace_.find_vma(base - 1), nullptr);
  ASSERT_NE(aspace_.find_vma(base), nullptr);
  ASSERT_NE(aspace_.find_vma(base + 2 * 4096 - 1), nullptr);
  EXPECT_EQ(aspace_.find_vma(base + 2 * 4096), nullptr);
}

TEST_F(AddrSpaceTest, PropertyRandomOpsKeepCountersConsistent) {
  Rng rng(77);
  std::map<u32, i64> counters;
  const auto delta = [&counters](u32 pkey, i64 pages) {
    counters[pkey] += pages;
    ASSERT_GE(counters[pkey], 0);
  };
  std::vector<std::pair<u64, u64>> regions;  // (addr, len)
  for (int step = 0; step < 400; ++step) {
    const int op = static_cast<int>(rng.below(3));
    if (op == 0) {  // map
      const u64 len = (1 + rng.below(4)) * 4096;
      const i64 addr = aspace_.map(0, len, prot::kRead | prot::kWrite,
                                   static_cast<u32>(rng.below(16)), delta);
      ASSERT_GT(addr, 0);
      regions.push_back({static_cast<u64>(addr), len});
    } else if (op == 1 && !regions.empty()) {  // re-key
      const auto [addr, len] = regions[rng.below(regions.size())];
      aspace_.protect_pkey(addr, len, prot::kRead,
                           static_cast<u32>(rng.below(16)), nullptr,
                           nullptr, delta);
    } else if (op == 2 && !regions.empty()) {  // unmap
      const size_t idx = rng.below(regions.size());
      const auto [addr, len] = regions[idx];
      ASSERT_EQ(aspace_.unmap(addr, len, delta), 0);
      regions.erase(regions.begin() + static_cast<long>(idx));
    }
    // Invariant: counter totals equal mapped pages.
    i64 total = 0;
    for (const auto& [k, v] : counters) total += v;
    ASSERT_EQ(static_cast<u64>(total), aspace_.pages_mapped());
  }
}

}  // namespace
}  // namespace sealpk::os
