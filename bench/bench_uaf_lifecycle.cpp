// pkey use-after-free lifecycle (paper §II-A vs §III-B.1): the same
// alloc -> assign -> free -> realloc sequence on both flavours, reporting
// (a) the semantic outcome — does the recycled key alias the orphan pages?
// — and (b) the cycle cost of each lifecycle step, showing that lazy
// de-allocation costs nothing extra on the fast path.
#include <cstdio>

#include "runtime/guest.h"
#include "sim/machine.h"

using namespace sealpk;
using namespace sealpk::isa;

namespace {

struct LifecycleResult {
  u64 first_key = 0;
  u64 second_key = 0;
  u64 orphan_page_key = 0;
  bool aliased = false;
  u64 alloc_cycles = 0, free_cycles = 0, realloc_cycles = 0;
};

// Reads the cycle CSR around each syscall to attribute costs in-guest.
LifecycleResult run_flavour(core::IsaFlavor flavor) {
  Program prog;
  rt::add_crt0(prog);
  Function& f = prog.add_function("main");
  auto stamp = [&](u8 dest) {
    f.emit(Inst{.op = Op::kCsrrs, .rd = dest, .rs1 = 0, .csr = 0xC00});
  };
  // victim = mmap(page)
  f.li(a0, 0);
  f.li(a1, 4096);
  f.li(a2, 3);
  rt::syscall(f, os::sys::kMmap);
  f.mv(s1, a0);
  rt::syscall(f, os::sys::kReport);  // [0] victim address
  // key1 = pkey_alloc()
  stamp(s2);
  f.li(a0, 0);
  f.li(a1, 0);
  rt::syscall(f, os::sys::kPkeyAlloc);
  f.mv(s3, a0);
  stamp(s4);
  f.sub(s4, s4, s2);
  f.mv(a0, s3);
  rt::syscall(f, os::sys::kReport);  // [1] first key
  f.mv(a0, s4);
  rt::syscall(f, os::sys::kReport);  // [2] alloc cycles
  // pkey_mprotect(victim, key1)
  f.mv(a0, s1);
  f.li(a1, 4096);
  f.li(a2, 3);
  f.mv(a3, s3);
  rt::syscall(f, os::sys::kPkeyMprotect);
  // pkey_free(key1)
  stamp(s2);
  f.mv(a0, s3);
  rt::syscall(f, os::sys::kPkeyFree);
  stamp(s4);
  f.sub(s4, s4, s2);
  f.mv(a0, s4);
  rt::syscall(f, os::sys::kReport);  // [3] free cycles
  // key2 = pkey_alloc()
  stamp(s2);
  f.li(a0, 0);
  f.li(a1, 0);
  rt::syscall(f, os::sys::kPkeyAlloc);
  f.mv(s5, a0);
  stamp(s4);
  f.sub(s4, s4, s2);
  f.mv(a0, s5);
  rt::syscall(f, os::sys::kReport);  // [4] second key
  f.mv(a0, s4);
  rt::syscall(f, os::sys::kReport);  // [5] realloc cycles
  f.li(a0, 0);
  f.ret();

  sim::MachineConfig cfg;
  cfg.hart.flavor = flavor;
  sim::Machine machine(cfg);
  const int pid = machine.load(prog.link());
  machine.run();
  const auto& r = machine.kernel().reports();
  LifecycleResult result;
  result.first_key = r.at(1);
  result.alloc_cycles = r.at(2);
  result.free_cycles = r.at(3);
  result.second_key = r.at(4);
  result.realloc_cycles = r.at(5);
  result.orphan_page_key =
      machine.kernel().process(pid).aspace->page_pkey(r.at(0)).value_or(0);
  result.aliased = result.second_key == result.orphan_page_key;
  return result;
}

void print_result(const char* name, const LifecycleResult& r,
                  const char* verdict) {
  std::printf("%-18s first=%llu  free: %llu cyc  realloc->%llu  "
              "orphan page still keyed %llu  => %s\n",
              name, static_cast<unsigned long long>(r.first_key),
              static_cast<unsigned long long>(r.free_cycles),
              static_cast<unsigned long long>(r.second_key),
              static_cast<unsigned long long>(r.orphan_page_key), verdict);
}

}  // namespace

int main() {
  std::printf("pkey use-after-free lifecycle: alloc -> pkey_mprotect -> "
              "free -> alloc\n\n");
  const auto mpk = run_flavour(core::IsaFlavor::kIntelMpkCompat);
  const auto sealpk = run_flavour(core::IsaFlavor::kSealPk);
  print_result("Intel MPK", mpk,
               mpk.aliased ? "USE-AFTER-FREE (key aliased!)" : "ok?");
  print_result("SealPK (lazy)", sealpk,
               sealpk.aliased ? "ALIASED (bug!)" : "quarantined, no alias");
  std::printf("\nCosts (simulated cycles): alloc %llu vs %llu, free %llu "
              "vs %llu, realloc %llu vs %llu (MPK vs SealPK)\n",
              static_cast<unsigned long long>(mpk.alloc_cycles),
              static_cast<unsigned long long>(sealpk.alloc_cycles),
              static_cast<unsigned long long>(mpk.free_cycles),
              static_cast<unsigned long long>(sealpk.free_cycles),
              static_cast<unsigned long long>(mpk.realloc_cycles),
              static_cast<unsigned long long>(sealpk.realloc_cycles));
  std::printf("Lazy de-allocation closes the hole at identical fast-path "
              "cost: the quarantine work is O(1) bitmap updates "
              "(paper §III-B.1).\n");
  return mpk.aliased && !sealpk.aliased ? 0 : 1;
}
