// Table I reproduction: FPGA utilisation of the baseline Rocket core vs.
// Rocket + SealPK on the Zedboard's XC7Z020, with the per-component
// breakdown of our structural estimate (the paper reports only the totals).
#include <cstdio>

#include "hwcost/fpga_model.h"

using namespace sealpk;
using namespace sealpk::hwcost;

int main() {
  const FpgaDevice device;
  const ResourceCount base = baseline_rocket();
  const SealPkHwConfig config;
  const ResourceCount delta = sealpk_overhead(config);
  const ResourceCount total = base + delta;

  std::printf("Table I: FPGA utilisation of SealPK vs. the baseline Rocket "
              "core (XC7Z020)\n\n");
  std::printf("%-28s | %-22s | %-22s\n", "", "Baseline",
              "Rocket Core + SealPK");
  std::printf("%-28s | %8s %12s | %8s %12s\n", "", "Used", "Utilization",
              "Used", "Utilization");
  auto row = [&](const char* name, u32 b, u32 t, u32 avail) {
    std::printf("%-28s | %8u %11.2f%% | %8u %11.2f%%\n", name, b,
                utilization_pct(b, avail), t, utilization_pct(t, avail));
  };
  row("Total Slice Luts", base.total_luts(), total.total_luts(),
      device.luts);
  row("Luts as logic", base.luts_logic, total.luts_logic, device.luts);
  row("Luts as Memory", base.luts_mem, total.luts_mem, device.luts);
  row("Slice Registers as Flip Flop", base.ffs, total.ffs, device.ffs);

  std::printf("\nSealPK delta (structural estimate):\n");
  std::printf("  %-34s %10s %10s %8s\n", "component", "LUT logic", "LUT mem",
              "FF");
  for (const auto& part : sealpk_components(config)) {
    std::printf("  %-34s %10u %10u %8u\n", part.name.c_str(),
                part.cost.luts_logic, part.cost.luts_mem, part.cost.ffs);
  }
  std::printf("  %-34s %10u %10u %8u\n", "total", delta.luts_logic,
              delta.luts_mem, delta.ffs);

  // The paper quotes the increase as utilisation-point deltas:
  // "increases the LUT and FF utilization by 5.62% and 2.72%".
  std::printf(
      "\nUtilisation increase: +%.2f LUT points, +%.2f FF points "
      "(paper: +5.62 and +2.72)\n",
      utilization_pct(total.total_luts(), device.luts) -
          utilization_pct(base.total_luts(), device.luts),
      utilization_pct(total.ffs, device.ffs) -
          utilization_pct(base.ffs, device.ffs));
  std::printf(
      "\nPaper Table I for comparison:\n"
      "  baseline 32030 LUTs (30907 logic / 1123 mem), 16506 FF\n"
      "  +SealPK  35019 LUTs (33852 logic / 1167 mem), 19392 FF\n");
  return 0;
}
