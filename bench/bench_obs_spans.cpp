// Observability overhead budget (DESIGN.md §16): host-side throughput of
// the span fold and the histogram sink.
//
// The span builder runs off the hot path (it folds a recorded trace after
// the run), but the SLO gate re-folds every workload's stream on each CI
// leg, so the fold has a wall-clock budget of its own. We synthesize a
// serve-shaped event stream (gate enter/exit/disposition with a retry
// tail) plus a vkey churn stream (map/evict/sync) at increasing sizes and
// report events folded per second, spans produced, and the cost of the
// per-kind histogram pass. Wall-clock here is host time — the spans
// themselves stay on the deterministic instruction axis.
#include <chrono>
#include <cstdio>

#include "obs/recorder.h"
#include "obs/span.h"

using namespace sealpk;

namespace {

obs::Event ev(obs::EventKind kind, u64 instret, u64 arg0, u64 arg1,
              u32 pkey) {
  obs::Event e;
  e.kind = kind;
  e.pid = 1;
  e.tid = 1;
  e.pkey = pkey;
  e.instret = instret;
  e.cycles = instret * 2;
  e.arg0 = arg0;
  e.arg1 = arg1;
  return e;
}

// requests requests, every 8th retried once; same shape the serve plane
// emits (enter/exit per visit, one disposition per request).
obs::Trace make_serve_stream(u64 requests) {
  obs::Trace t;
  u64 ts = 0;
  for (u64 r = 0; r < requests; ++r) {
    const bool retried = (r % 8) == 7;
    const u32 slot = static_cast<u32>(r % 6);
    ts += 50;
    t.events.push_back(
        ev(obs::EventKind::kGateEnter, ts, r, slot, 2 + slot));
    if (retried) {  // first visit dies with no exit; second serves
      ts += 200;
      t.events.push_back(
          ev(obs::EventKind::kGateEnter, ts, r, slot + 1, 3 + slot));
      ts += 300;
      t.events.push_back(
          ev(obs::EventKind::kGateExit, ts, r, 0xC0DE, 3 + slot));
    } else {
      ts += 300;
      t.events.push_back(
          ev(obs::EventKind::kGateExit, ts, r, 0xC0DE, 2 + slot));
    }
    ts += 10;
    t.events.push_back(ev(obs::EventKind::kRequestDisposition, ts, r,
                          retried ? 1 : 0, 2 + slot));
  }
  return t;
}

// sessions mappings overflowing a small budget: evict bursts drained by a
// sync every 32 evictions (the lazy-sync shape from src/mpk).
obs::Trace make_vkey_stream(u64 sessions) {
  obs::Trace t;
  u64 ts = 0, queued = 0;
  for (u64 s = 0; s < sessions; ++s) {
    ts += 20;
    t.events.push_back(ev(obs::EventKind::kVkeyMap, ts, s, 0, obs::kNoPkey));
    if (s >= 64) {
      ts += 5;
      t.events.push_back(
          ev(obs::EventKind::kVkeyEvict, ts, s - 64, 1, obs::kNoPkey));
      if (++queued == 32) {
        ts += 5;
        t.events.push_back(
            ev(obs::EventKind::kVkeySync, ts, 0, queued, obs::kNoPkey));
        queued = 0;
      }
    }
  }
  return t;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void bench_stream(const char* name, const obs::Trace& trace, int reps) {
  // Warm-up fold, then timed reps.
  obs::SpanSet set = obs::build_spans(trace);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) set = obs::build_spans(trace);
  const double fold_s = seconds_since(t0) / reps;

  const auto t1 = std::chrono::steady_clock::now();
  std::array<obs::Histogram, obs::kSpanKindCount> hists{};
  for (int i = 0; i < reps; ++i) hists = obs::span_histograms(set);
  const double hist_s = seconds_since(t1) / reps;

  u64 samples = 0;
  for (const auto& h : hists) samples += h.count();
  std::printf("%-14s %9zu %8zu %6zu %12.0f %12.0f\n", name,
              trace.events.size(), set.spans.size(), set.flows.size(),
              static_cast<double>(trace.events.size()) / fold_s,
              static_cast<double>(samples) / hist_s);
}

}  // namespace

int main() {
  std::printf("Span fold + histogram sink throughput (host wall-clock)\n\n");
  std::printf("%-14s %9s %8s %6s %12s %12s\n", "stream", "events", "spans",
              "flows", "fold ev/s", "hist smp/s");
  for (const u64 scale : {1'000u, 10'000u, 100'000u}) {
    char name[32];
    std::snprintf(name, sizeof(name), "serve-%lluk",
                  static_cast<unsigned long long>(scale / 1000));
    bench_stream(name, make_serve_stream(scale), scale >= 100'000 ? 3 : 20);
    std::snprintf(name, sizeof(name), "vkey-%lluk",
                  static_cast<unsigned long long>(scale / 1000));
    bench_stream(name, make_vkey_stream(scale), scale >= 100'000 ? 3 : 20);
  }
  std::printf(
      "\nThe fold is a single pass with O(open spans) state, so ev/s should\n"
      "hold roughly flat across scales; a superlinear drop here means the\n"
      "SLO gate's span leg will dominate CI time before anything else\n"
      "does.\n");
  return 0;
}
