// Micro-operation latencies (paper §I / §II / §V-B narrative):
//   - WRPKR / RDPKR: unprivileged user-space instructions, a few cycles,
//     no context switch, no TLB flush (vs. Intel's WRPKRU at 11-260).
//   - pkey_set (RDPKR + modify + WRPKR round trip).
//   - mprotect(1 page): the costly kernel path (~1094 cycles on the
//     paper's reference processor).
//   - pkey_alloc / pkey_free / pkey_mprotect / pkey_seal syscalls.
//
// Wall time measures the simulator itself; the architectural result is the
// sim_cycles_per_op counter.
#include <benchmark/benchmark.h>

#include "runtime/guest.h"
#include "sim/machine.h"

using namespace sealpk;
using isa::Function;
using isa::Label;
using isa::Program;
using namespace sealpk::isa;

namespace {

constexpr i64 kIters = 512;

// Builds a program that runs `body` kIters times inside main's loop; the
// harness measures total machine cycles. `fixture` runs once before the
// loop.
template <typename FixtureFn, typename BodyFn>
Program loop_program(FixtureFn&& fixture, BodyFn&& body) {
  Program prog;
  rt::add_crt0(prog);
  rt::add_pkey_lib(prog);
  Function& f = prog.add_function("main");
  f.addi(sp, sp, -16);
  f.sd(ra, 0, sp);
  fixture(prog, f);
  const Label loop = f.new_label(), done = f.new_label();
  f.li(s0, 0);
  f.bind(loop);
  f.li(t0, kIters);
  f.bgeu(s0, t0, done);
  body(prog, f);
  f.addi(s0, s0, 1);
  f.j(loop);
  f.bind(done);
  f.ld(ra, 0, sp);
  f.addi(sp, sp, 16);
  f.li(a0, 0);
  f.ret();
  return prog;
}

u64 run_cycles(const Program& prog,
               core::IsaFlavor flavor = core::IsaFlavor::kSealPk) {
  sim::MachineConfig cfg;
  cfg.hart.flavor = flavor;
  sim::Machine machine(cfg);
  const int pid = machine.load(prog.link());
  const auto outcome = machine.run();
  SEALPK_CHECK(outcome.completed && machine.exit_code(pid) == 0);
  return outcome.cycles;
}

// Cycles per op, net of the loop scaffolding (measured with an empty body).
double per_op_cycles(const Program& with_op, const Program& empty,
                     core::IsaFlavor flavor = core::IsaFlavor::kSealPk) {
  const u64 a = run_cycles(with_op, flavor);
  const u64 b = run_cycles(empty, flavor);
  return static_cast<double>(a - b) / kIters;
}

void no_fixture(Program&, Function&) {}

Program empty_loop() {
  return loop_program(no_fixture, [](Program&, Function&) {});
}

void bench_counters(benchmark::State& state, double cycles_per_op) {
  state.counters["sim_cycles_per_op"] = cycles_per_op;
}

}  // namespace

static void BM_Wrpkr(benchmark::State& state) {
  double cycles = 0;
  for (auto _ : state) {
    auto prog = loop_program(no_fixture, [](Program&, Function& f) {
      f.li(t1, 5);
      f.li(t2, 0b01);
      f.wrpkr(t1, t2);
    });
    auto base = loop_program(no_fixture, [](Program&, Function& f) {
      f.li(t1, 5);
      f.li(t2, 0b01);
    });
    cycles = per_op_cycles(prog, base);
    benchmark::DoNotOptimize(cycles);
  }
  bench_counters(state, cycles);
}
BENCHMARK(BM_Wrpkr);

static void BM_Rdpkr(benchmark::State& state) {
  double cycles = 0;
  for (auto _ : state) {
    auto prog = loop_program(no_fixture, [](Program&, Function& f) {
      f.li(t1, 5);
      f.rdpkr(t2, t1);
    });
    auto base = loop_program(no_fixture, [](Program&, Function& f) {
      f.li(t1, 5);
    });
    cycles = per_op_cycles(prog, base);
    benchmark::DoNotOptimize(cycles);
  }
  bench_counters(state, cycles);
}
BENCHMARK(BM_Rdpkr);

static void BM_PkeySetRoundTrip(benchmark::State& state) {
  // The full read-modify-write permission toggle (what the SealPK-RD+WR
  // shadow stack does twice per function call).
  double cycles = 0;
  for (auto _ : state) {
    auto prog = loop_program(no_fixture, [](Program&, Function& f) {
      f.li(a0, 5);
      f.li(a1, 0b01);
      f.call("__pkey_set");
    });
    cycles = per_op_cycles(prog, empty_loop());
    benchmark::DoNotOptimize(cycles);
  }
  bench_counters(state, cycles);
}
BENCHMARK(BM_PkeySetRoundTrip);

static void BM_Wrpkru_IntelMpkFlavour(benchmark::State& state) {
  // Intel reports 11-260 cycles for WRPKRU; our RoCC-modelled WRPKRU.
  double cycles = 0;
  for (auto _ : state) {
    auto prog = loop_program(no_fixture, [](Program&, Function& f) {
      f.li(t1, 0b0100);
      f.wrpkru(t1);
    });
    auto base = loop_program(no_fixture, [](Program&, Function& f) {
      f.li(t1, 0b0100);
    });
    cycles = per_op_cycles(prog, base, core::IsaFlavor::kIntelMpkCompat);
    benchmark::DoNotOptimize(cycles);
  }
  bench_counters(state, cycles);
}
BENCHMARK(BM_Wrpkru_IntelMpkFlavour);

static void BM_MprotectOnePage(benchmark::State& state) {
  // The comparison point the paper quotes at ~1094 cycles on a modern
  // processor: context switch + PTE update + TLB flush (+ the RSS-
  // dependent shootdown term).
  double cycles = 0;
  for (auto _ : state) {
    auto fixture = [](Program&, Function& f) {
      f.li(a0, 0);
      f.li(a1, 4096);
      f.li(a2, 3);
      rt::syscall(f, os::sys::kMmap);
      f.mv(s1, a0);
    };
    auto prog = loop_program(fixture, [](Program&, Function& f) {
      f.mv(a0, s1);
      f.li(a1, 4096);
      f.andi(a2, s0, 1);  // alternate RW / R
      f.addi(a2, a2, 1);
      rt::syscall(f, os::sys::kMprotect);
    });
    auto base = loop_program(fixture, [](Program&, Function& f) {
      f.mv(a0, s1);
      f.li(a1, 4096);
      f.andi(a2, s0, 1);
      f.addi(a2, a2, 1);
    });
    cycles = per_op_cycles(prog, base);
    benchmark::DoNotOptimize(cycles);
  }
  bench_counters(state, cycles);
}
BENCHMARK(BM_MprotectOnePage);

static void BM_PkeyAllocFree(benchmark::State& state) {
  double cycles = 0;
  for (auto _ : state) {
    auto prog = loop_program(no_fixture, [](Program&, Function& f) {
      f.li(a0, 0);
      f.li(a1, 0);
      rt::syscall(f, os::sys::kPkeyAlloc);
      rt::syscall(f, os::sys::kPkeyFree);  // pkey already in a0
    });
    cycles = per_op_cycles(prog, empty_loop()) / 2;  // per syscall
    benchmark::DoNotOptimize(cycles);
  }
  bench_counters(state, cycles);
}
BENCHMARK(BM_PkeyAllocFree);

static void BM_PkeyMprotectOnePage(benchmark::State& state) {
  double cycles = 0;
  for (auto _ : state) {
    auto fixture = [](Program&, Function& f) {
      f.li(a0, 0);
      f.li(a1, 4096);
      f.li(a2, 3);
      rt::syscall(f, os::sys::kMmap);
      f.mv(s1, a0);
      f.li(a0, 0);
      f.li(a1, 0);
      rt::syscall(f, os::sys::kPkeyAlloc);
      f.mv(s2, a0);
    };
    auto prog = loop_program(fixture, [](Program&, Function& f) {
      f.mv(a0, s1);
      f.li(a1, 4096);
      f.li(a2, 3);
      f.mv(a3, s2);
      rt::syscall(f, os::sys::kPkeyMprotect);
    });
    auto base = loop_program(fixture, [](Program&, Function& f) {
      f.mv(a0, s1);
      f.li(a1, 4096);
      f.li(a2, 3);
      f.mv(a3, s2);
    });
    cycles = per_op_cycles(prog, base);
    benchmark::DoNotOptimize(cycles);
  }
  bench_counters(state, cycles);
}
BENCHMARK(BM_PkeyMprotectOnePage);

static void BM_WrpkrSealedInRange(benchmark::State& state) {
  // A sealed key written from inside its permissible range: the PK-CAM hit
  // path adds no measurable latency over an unsealed WRPKR (the check runs
  // in parallel with the PKR write port, Figure 4).
  double cycles = 0;
  // touch_key(): seal.start; RDPKR/WRPKR; seal.end; ret — the trusted
  // function whose body is the permissible range.
  auto add_touch_key = [](Program& p) {
    Function& t = p.add_function("touch_key");
    t.seal_start(0);
    t.rdpkr(t1, s2);
    t.wrpkr(s2, t1);
    t.seal_end(0);
    t.ret();
  };
  auto fixture = [](Program&, Function& f) {
    f.li(a0, 0);
    f.li(a1, 0);
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s2, a0);
    f.call("touch_key");  // latches the permissible range
  };
  for (auto _ : state) {
    auto prog = loop_program(
        [&](Program& p, Function& f) {
          add_touch_key(p);
          fixture(p, f);
          f.mv(a0, s2);
          rt::syscall(f, os::sys::kPkeyPermSeal);  // commit the fuse
        },
        [](Program&, Function& f) { f.call("touch_key"); });
    auto base = loop_program(
        [&](Program& p, Function& f) {
          add_touch_key(p);
          fixture(p, f);  // no seal committed
        },
        [](Program&, Function& f) { f.call("touch_key"); });
    cycles = per_op_cycles(prog, base);
    benchmark::DoNotOptimize(cycles);
  }
  bench_counters(state, cycles);
}
BENCHMARK(BM_WrpkrSealedInRange);

BENCHMARK_MAIN();
