// Figure 5 reproduction: performance overhead of the five shadow-stack
// implementations (Inline, Func, SealPK-WR, SealPK-RD+WR, mprotect) vs. the
// uninstrumented baseline, for 6 SPECint2000 + 4 SPECint2006 + 7 MiBench
// proxies, with per-suite geometric means and the paper's "~88x" headline
// ratio.
//
// Usage: bench_fig5_shadowstack [--scale N] [--threads N] [--quiet] [--mix]
//   --scale N   override every workload's bench scale (smaller = faster)
//   --threads N worker-pool size for the cell matrix (default 1 = serial;
//               0 = one per host hardware thread). Results are
//               bit-identical for any value: cells run on private machines
//               via the fleet batch engine (src/fleet).
//   --quiet     suppress per-cell progress on stderr
//   --mix       also print each workload's call rate and resident set —
//               the two properties that drive its Figure-5 bars
//   --csv       emit a machine-readable CSV of the matrix on stdout
//               (suite,benchmark,variant,overhead_pct) after the tables
#include <cstdio>
#include <cstring>
#include <optional>

#include "sim/fig5.h"

using namespace sealpk;

namespace {

void print_row(const char* name, const sim::Fig5Row* row) {
  if (row == nullptr) {
    std::printf("%-14s %12s %9s %9s %9s %12s %12s\n", name, "base cycles",
                "Inline", "Func", "SealPK-WR", "SealPK-RD+WR", "mprotect");
    return;
  }
  std::printf("%-14s %12llu %8.2f%% %8.2f%% %8.2f%% %11.2f%% %11.2f%%\n",
              name, static_cast<unsigned long long>(row->baseline_cycles),
              row->overhead_pct(0), row->overhead_pct(1),
              row->overhead_pct(2), row->overhead_pct(3),
              row->overhead_pct(4));
}

void print_suite(const std::vector<sim::Fig5Row>& rows, wl::Suite suite) {
  std::printf("\n--- %s ---\n", wl::suite_name(suite));
  print_row("benchmark", nullptr);
  for (const auto& row : rows) {
    if (row.workload->suite == suite) {
      print_row(row.workload->name, &row);
    }
  }
  std::printf("%-14s %12s", "GMean", "");
  for (size_t v = 0; v < sim::kNumFig5Variants; ++v) {
    const double g = sim::suite_gmean_overhead(rows, suite, v);
    std::printf(v >= 3 ? " %11.2f%%" : " %8.2f%%", g);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<u64> scale;
  bool verbose = true;
  bool mix = false;
  bool csv = false;
  unsigned threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      verbose = false;
    } else if (std::strcmp(argv[i], "--mix") == 0) {
      mix = true;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale N] [--threads N] [--quiet] [--mix]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf(
      "Figure 5: shadow-stack performance overhead vs. uninstrumented "
      "baseline\n(simulated Rocket-class hart; every cell checksum-verified "
      "against the golden model)\n");
  const auto rows = sim::run_figure5(scale, verbose, threads);

  print_suite(rows, wl::Suite::kSpec2000);
  print_suite(rows, wl::Suite::kSpec2006);
  print_suite(rows, wl::Suite::kMiBench);

  std::printf("\nPaper targets (GMean): SPECint2000 mprotect 2875.62%% / "
              "SealPK-RD+WR 21.00%%\n");
  std::printf("                       SPECint2006 mprotect 1982.70%% / "
              "SealPK-RD+WR 14.81%%\n");
  std::printf("                       MiBench     mprotect  320.21%% / "
              "SealPK-RD+WR  8.52%%\n");
  std::printf(
      "\nIsolated shadow stack via SealPK is ~%.0fx faster than via "
      "mprotect\n(geomean of per-suite overhead ratios; paper reports "
      "~88x)\n",
      sim::mprotect_speedup_factor(rows));

  if (csv) {
    std::printf("\nsuite,benchmark,variant,overhead_pct\n");
    for (const auto& row : rows) {
      for (size_t v = 0; v < sim::kNumFig5Variants; ++v) {
        std::printf("%s,%s,%s,%.4f\n", wl::suite_name(row.workload->suite),
                    row.workload->name,
                    passes::shadow_stack_kind_name(sim::kFig5Variants[v]),
                    row.overhead_pct(v));
      }
    }
  }

  if (mix) {
    std::printf(
        "\nWorkload mix (baseline runs): calls/kilocycle drives the "
        "SealPK bars,\nresident pages drive the mprotect bars "
        "(EXPERIMENTS.md, calibration)\n");
    std::printf("%-14s %-13s %14s %16s %12s\n", "benchmark", "suite",
                "instructions", "calls/kcycle", "RSS pages");
    for (const auto& row : rows) {
      const double rate = 1000.0 * static_cast<double>(row.baseline.calls) /
                          static_cast<double>(row.baseline.cycles);
      std::printf("%-14s %-13s %14llu %16.2f %12llu\n",
                  row.workload->name, wl::suite_name(row.workload->suite),
                  static_cast<unsigned long long>(row.baseline.instructions),
                  rate,
                  static_cast<unsigned long long>(row.baseline.pages_mapped));
    }
  }
  return 0;
}
