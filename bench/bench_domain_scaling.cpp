// Domain-count scaling (paper §I / §III-A): SealPK's 1024 native keys vs.
// Intel MPK's 16, and the cost of scaling past the physical limit with a
// libmpk-style software virtualisation layer (the paper's §VI comparison:
// virtualisation works but pays PTE-rewrite storms on eviction).
//
// Part 1: allocate-to-failure on real machines of both flavours.
// Part 2: modelled cost per domain *use* (permission update) as the live
//         domain count grows, for MPK+libmpk (15 physical keys) vs.
//         SealPK+libmpk (1023 physical keys) under a uniform-random
//         working-set sweep.
// Part 3: the real in-kernel virtualization layer (src/mpk/vkey_table.h)
//         under the session-server workload — guest runs whose PTE
//         rewrites and shootdowns happen through the live page tables,
//         eager vs lazy sync vs the raw-pkey baseline where it fits.
#include <cstdio>

#include "common/rng.h"
#include "mpk/session.h"
#include "mpk/virt.h"
#include "runtime/guest.h"
#include "sim/machine.h"

using namespace sealpk;
using namespace sealpk::isa;

namespace {

u64 alloc_to_failure(core::IsaFlavor flavor) {
  Program prog;
  rt::add_crt0(prog);
  Function& f = prog.add_function("main");
  const Label loop = f.new_label(), done = f.new_label();
  f.li(s0, 0);
  f.bind(loop);
  f.li(a0, 0);
  f.li(a1, 0);
  rt::syscall(f, os::sys::kPkeyAlloc);
  f.blez(a0, done);
  f.addi(s0, s0, 1);
  f.j(loop);
  f.bind(done);
  f.mv(a0, s0);
  rt::syscall(f, os::sys::kReport);
  f.li(a0, 0);
  f.ret();

  sim::MachineConfig cfg;
  cfg.hart.flavor = flavor;
  sim::Machine machine(cfg);
  machine.load(prog.link());
  machine.run();
  return machine.kernel().reports().at(0);
}

}  // namespace

int main() {
  std::printf("Part 1: pkey_alloc until exhaustion (real guest run)\n");
  std::printf("  SealPK flavour:    %llu usable keys (paper: 1024 incl. "
              "the default key)\n",
              static_cast<unsigned long long>(
                  alloc_to_failure(core::IsaFlavor::kSealPk)));
  std::printf("  Intel-MPK flavour: %llu usable keys (paper: 16 incl. the "
              "default key)\n\n",
              static_cast<unsigned long long>(
                  alloc_to_failure(core::IsaFlavor::kIntelMpkCompat)));

  std::printf(
      "Part 2: avg modelled cycles per domain permission update under a\n"
      "uniform working set of D domains (4 pages each, 20k uses),\n"
      "libmpk-style virtualisation over each flavour's physical keys\n\n");
  std::printf("%10s %22s %22s %12s\n", "domains", "MPK+virt (cyc/use)",
              "SealPK+virt (cyc/use)", "MPK evict%");
  const core::TimingModel timing;
  for (const u64 domains : {8u, 15u, 16u, 32u, 64u, 256u, 1023u, 1024u,
                            2048u, 4096u}) {
    mpk::KeyVirtualizer mpk_virt(15, timing);
    mpk::KeyVirtualizer sealpk_virt(1023, timing);
    for (u64 d = 0; d < domains; ++d) {
      mpk_virt.create_domain(4);
      sealpk_virt.create_domain(4);
    }
    Rng rng(domains * 7919 + 1);
    constexpr u64 kUses = 20'000;
    for (u64 i = 0; i < kUses; ++i) {
      const u64 d = rng.below(domains);
      mpk_virt.use(d);
      sealpk_virt.use(d);
    }
    const double mpk_avg =
        static_cast<double>(mpk_virt.stats().cycles) / kUses;
    const double sealpk_avg =
        static_cast<double>(sealpk_virt.stats().cycles) / kUses;
    const double evict_pct =
        100.0 * static_cast<double>(mpk_virt.stats().evictions) / kUses;
    std::printf("%10llu %22.1f %22.1f %11.1f%%\n",
                static_cast<unsigned long long>(domains), mpk_avg,
                sealpk_avg, evict_pct);
  }
  std::printf(
      "\nShape: Intel MPK + virtualisation falls off a cliff past 15 live\n"
      "domains (every miss re-keys two domains' pages); SealPK stays at\n"
      "native cost until 1023 and only then pays the same virtualisation\n"
      "tax — the paper's 64x headroom claim.\n");

  std::printf(
      "\nPart 3: in-kernel vkey virtualization, session-server guest runs\n"
      "(one domain per session, seeded connect/touch/disconnect churn;\n"
      "PTE rewrites and shootdowns through the live page tables)\n\n");
  std::printf("%10s %11s %12s %10s %10s %10s %12s\n", "sessions", "mode",
              "churn/sec", "evictions", "revivals", "flushes", "cyc/op");
  for (const u64 sessions : {512u, 1024u, 2048u, 4096u}) {
    for (int mode = 0; mode < 3; ++mode) {
      mpk::SessionConfig cfg;
      cfg.sessions = sessions;
      cfg.ops = 2 * sessions;
      cfg.raw = mode == 0;
      cfg.lazy_sync = mode == 2;
      if (cfg.raw && sessions > mpk::kRawSessionCap) continue;
      const mpk::SessionResult r = mpk::run_session_server(cfg);
      const char* name = cfg.raw ? "raw" : cfg.lazy_sync ? "virt-lazy"
                                                         : "virt-eager";
      std::printf("%10llu %11s %12llu %10llu %10llu %10llu %12.1f %s\n",
                  static_cast<unsigned long long>(sessions), name,
                  static_cast<unsigned long long>(r.churn_per_sec()),
                  static_cast<unsigned long long>(r.vstats.evictions),
                  static_cast<unsigned long long>(r.vstats.revivals),
                  static_cast<unsigned long long>(r.vstats.tlb_flushes),
                  static_cast<double>(r.cycles) /
                      static_cast<double>(r.churn_ops),
                  r.ok() ? "" : "FAILED");
    }
  }
  std::printf(
      "\nShape: below 1023 sessions virtualization matches raw within the\n"
      "bookkeeping tax (no evictions). Past the physical budget the miss\n"
      "path re-keys pages; lazy sync amortizes shootdowns over drain\n"
      "batches and revives recently evicted domains for free, closing\n"
      "part of the gap the eager policy pays per eviction.\n");
  return 0;
}
