// Domain-count scaling (paper §I / §III-A): SealPK's 1024 native keys vs.
// Intel MPK's 16, and the cost of scaling past the physical limit with a
// libmpk-style software virtualisation layer (the paper's §VI comparison:
// virtualisation works but pays PTE-rewrite storms on eviction).
//
// Part 1: allocate-to-failure on real machines of both flavours.
// Part 2: modelled cost per domain *use* (permission update) as the live
//         domain count grows, for MPK+libmpk (15 physical keys) vs.
//         SealPK+libmpk (1023 physical keys) under a uniform-random
//         working-set sweep.
#include <cstdio>

#include "common/rng.h"
#include "mpk/virt.h"
#include "runtime/guest.h"
#include "sim/machine.h"

using namespace sealpk;
using namespace sealpk::isa;

namespace {

u64 alloc_to_failure(core::IsaFlavor flavor) {
  Program prog;
  rt::add_crt0(prog);
  Function& f = prog.add_function("main");
  const Label loop = f.new_label(), done = f.new_label();
  f.li(s0, 0);
  f.bind(loop);
  f.li(a0, 0);
  f.li(a1, 0);
  rt::syscall(f, os::sys::kPkeyAlloc);
  f.blez(a0, done);
  f.addi(s0, s0, 1);
  f.j(loop);
  f.bind(done);
  f.mv(a0, s0);
  rt::syscall(f, os::sys::kReport);
  f.li(a0, 0);
  f.ret();

  sim::MachineConfig cfg;
  cfg.hart.flavor = flavor;
  sim::Machine machine(cfg);
  machine.load(prog.link());
  machine.run();
  return machine.kernel().reports().at(0);
}

}  // namespace

int main() {
  std::printf("Part 1: pkey_alloc until exhaustion (real guest run)\n");
  std::printf("  SealPK flavour:    %llu usable keys (paper: 1024 incl. "
              "the default key)\n",
              static_cast<unsigned long long>(
                  alloc_to_failure(core::IsaFlavor::kSealPk)));
  std::printf("  Intel-MPK flavour: %llu usable keys (paper: 16 incl. the "
              "default key)\n\n",
              static_cast<unsigned long long>(
                  alloc_to_failure(core::IsaFlavor::kIntelMpkCompat)));

  std::printf(
      "Part 2: avg modelled cycles per domain permission update under a\n"
      "uniform working set of D domains (4 pages each, 20k uses),\n"
      "libmpk-style virtualisation over each flavour's physical keys\n\n");
  std::printf("%10s %22s %22s %12s\n", "domains", "MPK+virt (cyc/use)",
              "SealPK+virt (cyc/use)", "MPK evict%");
  const core::TimingModel timing;
  for (const u64 domains : {8u, 15u, 16u, 32u, 64u, 256u, 1023u, 1024u,
                            2048u, 4096u}) {
    mpk::KeyVirtualizer mpk_virt(15, timing);
    mpk::KeyVirtualizer sealpk_virt(1023, timing);
    for (u64 d = 0; d < domains; ++d) {
      mpk_virt.create_domain(4);
      sealpk_virt.create_domain(4);
    }
    Rng rng(domains * 7919 + 1);
    constexpr u64 kUses = 20'000;
    for (u64 i = 0; i < kUses; ++i) {
      const u64 d = rng.below(domains);
      mpk_virt.use(d);
      sealpk_virt.use(d);
    }
    const double mpk_avg =
        static_cast<double>(mpk_virt.stats().cycles) / kUses;
    const double sealpk_avg =
        static_cast<double>(sealpk_virt.stats().cycles) / kUses;
    const double evict_pct =
        100.0 * static_cast<double>(mpk_virt.stats().evictions) / kUses;
    std::printf("%10llu %22.1f %22.1f %11.1f%%\n",
                static_cast<unsigned long long>(domains), mpk_avg,
                sealpk_avg, evict_pct);
  }
  std::printf(
      "\nShape: Intel MPK + virtualisation falls off a cliff past 15 live\n"
      "domains (every miss re-keys two domains' pages); SealPK stays at\n"
      "native cost until 1023 and only then pays the same virtualisation\n"
      "tax — the paper's 64x headroom claim.\n");
  return 0;
}
