// Ablations over SealPK's design points (DESIGN.md §5):
//   1. PK-CAM capacity vs. sealed-domain working set: miss/refill rate and
//      the cycle cost of the OS refill path (the paper fixes 16 entries).
//   2. Permission-sealing cost on the shadow stack: Figure-5-style
//      overhead of SealPK-RD+WR with and without pkey_perm_seal.
//   3. Hardware-cost sensitivity: Table-I deltas as PKR size and PK-CAM
//      capacity sweep (the area knee behind choosing 1024 keys).
#include <cstdio>

#include "common/rng.h"
#include "hw/donky.h"
#include "hw/seal_unit.h"
#include "hwcost/fpga_model.h"
#include "sim/fig5.h"

using namespace sealpk;

namespace {

void cam_sweep() {
  std::printf("1) PK-CAM behaviour vs. sealed working set (unit-level; "
              "round-robin WRPKR over K sealed keys)\n");
  std::printf("%22s %12s %14s\n", "sealed keys (K)", "miss rate",
              "refill cyc/use");
  const core::TimingModel timing;
  for (const u32 k : {4u, 8u, 16u, 17u, 24u, 32u, 64u}) {
    hw::SealUnit unit;
    for (u32 i = 0; i < k; ++i) {
      unit.set_sealed(i);
      unit.refill(i, 0x1000, 0x2000);
    }
    u64 misses = 0;
    constexpr u64 kUses = 100'000;
    for (u64 u = 0; u < kUses; ++u) {
      const u32 key = static_cast<u32>(u % k);
      if (unit.check_wrpkr(key, 0x1500) == hw::SealCheck::kMiss) {
        ++misses;
        unit.refill(key, 0x1000, 0x2000);  // the OS handler's action
      }
    }
    const double miss_rate = static_cast<double>(misses) / kUses;
    std::printf("%22u %11.2f%% %14.1f\n", k, 100.0 * miss_rate,
                miss_rate * (timing.trap_enter_cycles +
                             timing.cam_refill_handler_cycles +
                             timing.trap_return_cycles));
  }
  std::printf("  (16 entries cover 16 concurrently sealed domains with a "
              "0%% steady-state miss rate; a 17th thrashes the FIFO — the "
              "paper's capacity choice)\n\n");
}

void perm_seal_cost() {
  std::printf("2) Cost of permission sealing on the SealPK-RD+WR shadow "
              "stack (MiBench qsort + SPEC bzip2 proxies)\n");
  std::printf("%24s %16s %16s\n", "workload", "RD+WR", "RD+WR + perm seal");
  for (const char* pick : {"qsort", "bzip2"}) {
    const wl::Workload* w =
        wl::find_workload(pick[0] == 'q' ? wl::Suite::kMiBench
                                         : wl::Suite::kSpec2000,
                          pick);
    isa::Program base_prog = w->build(w->test_scale);
    sim::Machine base_m{sim::MachineConfig{}};
    base_m.load(base_prog.link());
    const u64 base = base_m.run().cycles;

    auto run_variant = [&](bool perm_seal) {
      isa::Program prog = w->build(w->test_scale);
      passes::ShadowStackOptions opts;
      opts.kind = passes::ShadowStackKind::kSealPkRdWr;
      opts.perm_seal = perm_seal;
      passes::apply_shadow_stack(prog, opts);
      sim::Machine machine{sim::MachineConfig{}};
      machine.load(prog.link());
      return machine.run().cycles;
    };
    const double plain =
        100.0 * (static_cast<double>(run_variant(false)) - base) / base;
    const double sealed =
        100.0 * (static_cast<double>(run_variant(true)) - base) / base;
    std::printf("%24s %15.2f%% %15.2f%%\n", w->name, plain, sealed);
  }
  std::printf("  (steady-state cost: one seal.start latch instruction per call "
              "plus a parallel CAM hit per WRPKR — one to two points)\n\n");
}

void hwcost_sweep() {
  std::printf("3) Hardware-cost sensitivity (structural estimate deltas "
              "over the baseline Rocket)\n");
  std::printf("%10s %12s | %10s %8s %8s\n", "keys", "CAM entries",
              "LUT logic", "LUT mem", "FF");
  for (const u32 rows : {8u, 16u, 32u, 64u}) {
    for (const u32 cam : {8u, 16u, 32u}) {
      hwcost::SealPkHwConfig cfg;
      cfg.pkr_rows = rows;
      cfg.cam_entries = cam;
      cfg.pkey_bits = 0;
      for (u32 n = rows * cfg.keys_per_row; n > 1; n >>= 1) ++cfg.pkey_bits;
      const auto d = hwcost::sealpk_overhead(cfg);
      std::printf("%10u %12u | %10u %8u %8u\n", rows * cfg.keys_per_row,
                  cam, d.luts_logic, d.luts_mem, d.ffs);
    }
  }
  std::printf("  (PKR LUTRAM scales linearly with key count; the CAM "
              "dominates FF growth — 1024 keys + 16 entries is the paper's "
              "sweet spot at ~5.6%% LUT overhead)\n");
}

void donky_comparison() {
  std::printf("\n4) Per-access pkey-permission lookup: SealPK PKR vs. a "
              "Donky-style 4-slot key CSR (paper §VI)\n");
  std::printf("%14s %14s %22s %24s\n", "live domains", "Donky miss%",
              "Donky extra cyc/access", "SealPK extra cyc/access");
  // Donky's reload is a user-level fault into its software library; model
  // it as a user-trap round trip plus the table lookup (~60 cycles, the
  // optimistic end of Donky's own figures). SealPK reads PKR in the same
  // cycle as the PTE check: zero extra.
  constexpr double kReloadCycles = 60.0;
  for (const u64 domains : {2u, 4u, 5u, 8u, 16u, 64u}) {
    hw::DonkyKeyCsr csr;
    Rng rng(domains * 31 + 7);
    constexpr u64 kAccesses = 200'000;
    for (u64 i = 0; i < kAccesses; ++i) {
      const u32 key = static_cast<u32>(rng.below(domains));
      u8 perm;
      if (!csr.lookup(key, &perm)) csr.reload(key, 0);
    }
    const double miss_rate =
        static_cast<double>(csr.stats().reloads) / kAccesses;
    std::printf("%14llu %13.2f%% %22.2f %24.2f\n",
                static_cast<unsigned long long>(domains), 100.0 * miss_rate,
                miss_rate * kReloadCycles, 0.0);
  }
  std::printf("  (with > 4 live domains the 4-slot CSR thrashes; SealPK's "
              "PKR covers all 1024 keys at fixed cost)\n");
}

void leaf_skip() {
  std::printf("\n5) Leaf-function skip (compiler-pass optimisation the "
              "paper does not apply)\n");
  std::printf("%24s %18s %18s\n", "workload", "RD+WR all fns",
              "RD+WR skip leaves");
  for (const auto* name : {"bitcount", "sjeng"}) {
    const wl::Workload* w = wl::find_workload(
        name[0] == 'b' ? wl::Suite::kMiBench : wl::Suite::kSpec2006, name);
    isa::Program base_prog = w->build(w->test_scale);
    sim::Machine base_m{sim::MachineConfig{}};
    base_m.load(base_prog.link());
    const u64 base = base_m.run().cycles;
    auto run_variant = [&](bool skip) {
      isa::Program prog = w->build(w->test_scale);
      passes::ShadowStackOptions opts;
      opts.kind = passes::ShadowStackKind::kSealPkRdWr;
      opts.skip_leaf_functions = skip;
      passes::apply_shadow_stack(prog, opts);
      sim::Machine machine{sim::MachineConfig{}};
      machine.load(prog.link());
      return machine.run().cycles;
    };
    std::printf("%24s %17.2f%% %17.2f%%\n", w->name,
                100.0 * (static_cast<double>(run_variant(false)) - base) /
                    base,
                100.0 * (static_cast<double>(run_variant(true)) - base) /
                    base);
  }
  std::printf("  (leaf-heavy workloads save most of the overhead — at the "
              "cost of leaving leaf frames unguarded)\n");
}

void tlb_sweep() {
  std::printf("\n6) DTLB capacity sensitivity (SPEC gzip proxy)\n");
  std::printf("%14s %18s %18s\n", "DTLB entries", "RD+WR overhead",
              "mprotect overhead");
  const wl::Workload* w = wl::find_workload(wl::Suite::kSpec2000, "gzip");
  for (const size_t entries : {8u, 16u, 32u, 64u}) {
    auto run_variant = [&](passes::ShadowStackKind kind) {
      isa::Program prog = w->build(w->test_scale);
      passes::ShadowStackOptions opts;
      opts.kind = kind;
      passes::apply_shadow_stack(prog, opts);
      sim::MachineConfig cfg;
      cfg.hart.dtlb_entries = entries;
      cfg.hart.itlb_entries = entries;
      sim::Machine machine(cfg);
      machine.load(prog.link());
      return machine.run().cycles;
    };
    const u64 base = run_variant(passes::ShadowStackKind::kNone);
    const double rdwr =
        100.0 *
        (static_cast<double>(run_variant(
             passes::ShadowStackKind::kSealPkRdWr)) -
         base) /
        base;
    const double mprot =
        100.0 *
        (static_cast<double>(run_variant(
             passes::ShadowStackKind::kMprotect)) -
         base) /
        base;
    std::printf("%14zu %17.2f%% %17.2f%%\n", entries, rdwr, mprot);
  }
  std::printf("  (mprotect's cost here is dominated by the kernel path + "
              "RSS-dependent shootdown, not by post-flush refills, so both "
              "variants are TLB-size insensitive once the working set "
              "fits; at 8 entries the *baseline* thrashes, inflating every "
              "relative overhead)\n");
}

}  // namespace

int main() {
  std::printf("SealPK design-point ablations\n\n");
  cam_sweep();
  perm_seal_cost();
  hwcost_sweep();
  donky_comparison();
  leaf_skip();
  tlb_sweep();
  return 0;
}
