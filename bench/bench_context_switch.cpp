// §III-B.2 footnote reproduction: "maintaining PKR information during
// context switches incurs less than 1% performance overhead."
//
// Two compute threads share the hart under timer preemption; we run the
// same schedule with and without per-thread PKR save/restore and report
// the relative cost, sweeping the preemption quantum (shorter quantum =
// more switches = upper bound on the overhead).
#include <cstdio>

#include "runtime/guest.h"
#include "sim/machine.h"

using namespace sealpk;
using namespace sealpk::isa;

namespace {

// Two threads each spin over a small compute kernel until the main thread
// has seen enough preemptions.
Program make_two_thread_program(i64 iters) {
  Program prog;
  rt::add_crt0(prog);
  Function& f = prog.add_function("main");
  f.addi(sp, sp, -16);
  f.sd(ra, 0, sp);
  // Spawn the sibling.
  f.li(a0, 0);
  f.li(a1, 16384);
  f.li(a2, 3);
  rt::syscall(f, os::sys::kMmap);
  f.li(t0, 16384);
  f.add(a1, a0, t0);
  f.la(a0, "worker");
  f.li(a2, 0);
  rt::syscall(f, os::sys::kClone);
  // Main compute loop.
  const Label loop = f.new_label(), done = f.new_label();
  f.li(s0, 0);
  f.li(s1, 0);
  f.bind(loop);
  f.li(t0, iters);
  f.bgeu(s0, t0, done);
  f.slli(t1, s0, 1);
  f.xor_(s1, s1, t1);
  f.mul(t1, s1, s0);
  f.add(s1, s1, t1);
  f.addi(s0, s0, 1);
  f.j(loop);
  f.bind(done);
  f.ld(ra, 0, sp);
  f.addi(sp, sp, 16);
  f.li(a0, 0);
  f.ret();

  Function& w = prog.add_function("worker");
  const Label wloop = w.new_label();
  w.li(t0, 0);
  w.bind(wloop);
  w.addi(t0, t0, 1);
  w.j(wloop);  // spins until the process exits
  return prog;
}

u64 run_with(bool save_pkr, u64 quantum, u64* switches) {
  sim::MachineConfig cfg;
  cfg.kernel.save_pkr_on_switch = save_pkr;
  cfg.preempt_quantum = quantum;
  sim::Machine machine(cfg);
  const int pid = machine.load(make_two_thread_program(150'000).link());
  const auto outcome = machine.run(100'000'000);
  SEALPK_CHECK(outcome.completed && machine.exit_code(pid) == 0);
  *switches = machine.kernel().stats().context_switches;
  return outcome.cycles;
}

}  // namespace

int main() {
  std::printf("Context-switch cost of per-thread PKR save/restore "
              "(paper: < 1%%)\n\n");
  std::printf("%10s %10s %16s %16s %10s\n", "quantum", "switches",
              "cycles w/o PKR", "cycles w/ PKR", "overhead");
  for (const u64 quantum : {50'000u, 10'000u, 2'000u, 500u}) {
    u64 switches_off = 0, switches_on = 0;
    const u64 off = run_with(false, quantum, &switches_off);
    const u64 on = run_with(true, quantum, &switches_on);
    const double overhead =
        100.0 * (static_cast<double>(on) - static_cast<double>(off)) /
        static_cast<double>(off);
    std::printf("%10llu %10llu %16llu %16llu %9.3f%%\n",
                static_cast<unsigned long long>(quantum),
                static_cast<unsigned long long>(switches_on),
                static_cast<unsigned long long>(off),
                static_cast<unsigned long long>(on), overhead);
  }
  std::printf(
      "\nAt realistic quanta (Linux ticks at 25 MHz = tens of thousands of\n"
      "instructions) the PKR swap stays well under the paper's 1%% bound;\n"
      "the pathological quanta above bound the worst case and show the\n"
      "cost is linear in switch rate (64 row transfers per switch).\n");
  return 0;
}
