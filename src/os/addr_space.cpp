#include "os/addr_space.h"

#include "core/csr.h"
#include "os/syscall_abi.h"

namespace sealpk::os {

namespace {
constexpr u64 kMmapBase = 0x10'0000'0000;  // 64 GiB, well inside Sv39
}  // namespace

u64 AddressSpace::leaf_flags_for_prot(u64 prot) {
  u64 flags = mem::pte::kV | mem::pte::kU;
  if (prot & prot::kRead) flags |= mem::pte::kR;
  if (prot & prot::kExec) flags |= mem::pte::kX;
  if (prot & prot::kWrite) flags |= mem::pte::kW | mem::pte::kR;
  // W implies R above because W-without-R is a reserved PTE combination in
  // RISC-V; write-only *domains* are expressed through pkeys instead
  // (paper §III-A).
  return flags;
}

AddressSpace::AddressSpace(mem::PhysMem& mem, FrameAllocator& frames,
                           unsigned pkey_bits, unsigned levels)
    : mem_(mem),
      frames_(frames),
      pkey_bits_(pkey_bits),
      levels_(levels),
      mmap_next_(kMmapBase) {
  SEALPK_CHECK(levels == 3 || levels == 4);
  root_ppn_ = frames_.alloc_ppn();
  mem_.fill(root_ppn_ << mem::kPageShift, 0, mem::kPageSize);
}

AddressSpace::AddressSpace(mem::PhysMem& mem, FrameAllocator& frames,
                           ByteReader& r)
    : mem_(mem), frames_(frames) {
  pkey_bits_ = r.get_u32();
  levels_ = r.get_u32();
  SEALPK_CHECK(levels_ == 3 || levels_ == 4);
  root_ppn_ = r.get_u64();
  mmap_next_ = r.get_u64();
  pages_mapped_ = r.get_u64();
  const u64 num_vmas = r.get_u64();
  for (u64 i = 0; i < num_vmas; ++i) {
    Vma vma;
    vma.start = r.get_u64();
    vma.end = r.get_u64();
    vma.prot = r.get_u64();
    vma.pkey = r.get_u32();
    vmas_.emplace(vma.start, vma);
  }
}

void AddressSpace::save_state(ByteWriter& w) const {
  w.put_u32(pkey_bits_);
  w.put_u32(levels_);
  w.put_u64(root_ppn_);
  w.put_u64(mmap_next_);
  w.put_u64(pages_mapped_);
  w.put_u64(vmas_.size());
  // std::map iterates in key order, so the encoding is canonical.
  for (const auto& [start, vma] : vmas_) {
    w.put_u64(vma.start);
    w.put_u64(vma.end);
    w.put_u64(vma.prot);
    w.put_u32(vma.pkey);
  }
}

u64 AddressSpace::satp() const {
  return (levels_ == 4 ? core::csr::kSatpModeSv48
                       : core::csr::kSatpModeSv39) |
         root_ppn_;
}

u64 AddressSpace::pte_slot_addr(u64 vaddr, bool create) {
  u64 table_ppn = root_ppn_;
  for (int level = static_cast<int>(levels_) - 1; level >= 1; --level) {
    const u64 slot = (table_ppn << mem::kPageShift) +
                     mem::svxx::vpn_slice(vaddr, level) * 8;
    u64 entry = mem_.read_u64(slot);
    if (!mem::pte::valid(entry)) {
      if (!create) return 0;
      const u64 ppn = frames_.alloc_ppn();
      mem_.fill(ppn << mem::kPageShift, 0, mem::kPageSize);
      entry = mem::pte::make(ppn, mem::pte::kV);  // non-leaf pointer
      mem_.write_u64(slot, entry);
    }
    SEALPK_CHECK_MSG(!mem::pte::is_leaf(entry),
                     "superpage in kernel-managed tables");
    table_ppn = mem::pte::ppn_of(entry);
  }
  return (table_ppn << mem::kPageShift) +
         mem::svxx::vpn_slice(vaddr, 0) * 8;
}

u64 AddressSpace::lookup_pte_slot(u64 vaddr) const {
  u64 table_ppn = root_ppn_;
  for (int level = static_cast<int>(levels_) - 1; level >= 1; --level) {
    const u64 slot = (table_ppn << mem::kPageShift) +
                     mem::svxx::vpn_slice(vaddr, level) * 8;
    const u64 entry = mem_.read_u64(slot);
    if (!mem::pte::valid(entry) || mem::pte::is_leaf(entry)) return 0;
    table_ppn = mem::pte::ppn_of(entry);
  }
  return (table_ppn << mem::kPageShift) +
         mem::svxx::vpn_slice(vaddr, 0) * 8;
}

const Vma* AddressSpace::find_vma(u64 addr) const {
  auto it = vmas_.upper_bound(addr);
  if (it == vmas_.begin()) return nullptr;
  --it;
  return addr < it->second.end ? &it->second : nullptr;
}

bool AddressSpace::range_fully_mapped(u64 addr, u64 len) const {
  u64 cursor = addr;
  const u64 end = addr + len;
  while (cursor < end) {
    const Vma* vma = find_vma(cursor);
    if (vma == nullptr) return false;
    cursor = vma->end;
  }
  return true;
}

void AddressSpace::split_at(u64 addr) {
  auto it = vmas_.upper_bound(addr);
  if (it == vmas_.begin()) return;
  --it;
  Vma& vma = it->second;
  if (addr <= vma.start || addr >= vma.end) return;
  Vma tail = vma;
  tail.start = addr;
  vma.end = addr;
  vmas_.emplace(tail.start, tail);
}

i64 AddressSpace::map(u64 addr, u64 len, u64 prot, u32 pkey,
                      const PkeyPageDelta& delta) {
  if (len == 0) return err::kInval;
  len = align_up(len, mem::kPageSize);
  if (addr == 0) {
    addr = mmap_next_;
    mmap_next_ += len + mem::kPageSize;  // one guard page between regions
  }
  if ((addr & (mem::kPageSize - 1)) != 0) return err::kInval;
  if (!mem::svxx::canonical(addr, levels_) ||
      !mem::svxx::canonical(addr + len - 1, levels_)) {
    return err::kInval;
  }
  // Overlap check.
  for (u64 page = addr; page < addr + len; page += mem::kPageSize) {
    if (find_vma(page) != nullptr) return err::kInval;
  }

  // Frame budget check up front (pages + worst-case fresh table frames):
  // guest-driven exhaustion must surface as ENOMEM, not a host error.
  const u64 pages = len >> mem::kPageShift;
  if (frames_.frames_left() < pages + 8) return err::kNoMem;
  const u64 flags = leaf_flags_for_prot(prot);
  for (u64 page = addr; page < addr + len; page += mem::kPageSize) {
    const u64 ppn = frames_.alloc_ppn();
    mem_.fill(ppn << mem::kPageShift, 0, mem::kPageSize);
    const u64 slot = pte_slot_addr(page, /*create=*/true);
    mem_.write_u64(slot, mem::pte::make(ppn, flags, pkey, pkey_bits_));
  }
  vmas_.emplace(addr, Vma{addr, addr + len, prot, pkey});
  pages_mapped_ += len >> mem::kPageShift;
  if (delta && (len >> mem::kPageShift) > 0) {
    delta(pkey, static_cast<i64>(len >> mem::kPageShift));
  }
  return static_cast<i64>(addr);
}

i64 AddressSpace::unmap(u64 addr, u64 len, const PkeyPageDelta& delta) {
  if (len == 0 || (addr & (mem::kPageSize - 1)) != 0) return err::kInval;
  len = align_up(len, mem::kPageSize);
  split_at(addr);
  split_at(addr + len);
  auto it = vmas_.lower_bound(addr);
  while (it != vmas_.end() && it->second.start < addr + len) {
    const Vma vma = it->second;
    for (u64 page = vma.start; page < vma.end; page += mem::kPageSize) {
      const u64 slot = lookup_pte_slot(page);
      SEALPK_CHECK(slot != 0);
      const u64 entry = mem_.read_u64(slot);
      if (mem::pte::valid(entry)) {
        frames_.free_ppn(mem::pte::ppn_of(entry));
        mem_.write_u64(slot, 0);
      }
    }
    pages_mapped_ -= vma.pages();
    if (delta) delta(vma.pkey, -static_cast<i64>(vma.pages()));
    it = vmas_.erase(it);
  }
  return 0;
}

i64 AddressSpace::protect(
    u64 addr, u64 len, u64 prot,
    const std::function<bool(u32 pkey)>& domain_sealed) {
  if (len == 0 || (addr & (mem::kPageSize - 1)) != 0) return err::kInval;
  len = align_up(len, mem::kPageSize);
  if (!range_fully_mapped(addr, len)) return err::kNoMem;

  // Pre-flight the seal check across the whole range so the call is
  // all-or-nothing (paper §IV: a sealed domain's PTE permissions cannot be
  // changed).
  if (domain_sealed) {
    for (u64 cursor = addr; cursor < addr + len;) {
      const Vma* vma = find_vma(cursor);
      if (domain_sealed(vma->pkey)) return err::kPerm;
      cursor = vma->end;
    }
  }

  split_at(addr);
  split_at(addr + len);
  i64 pages = 0;
  const u64 flags = leaf_flags_for_prot(prot);
  for (auto it = vmas_.lower_bound(addr);
       it != vmas_.end() && it->second.start < addr + len; ++it) {
    Vma& vma = it->second;
    for (u64 page = vma.start; page < vma.end; page += mem::kPageSize) {
      const u64 slot = lookup_pte_slot(page);
      const u64 entry = mem_.read_u64(slot);
      mem_.write_u64(slot, mem::pte::with_flags(entry & ~u64{0xFF}, flags));
      ++pages;
    }
    vma.prot = prot;
  }
  return pages;
}

i64 AddressSpace::protect_pkey(
    u64 addr, u64 len, u64 prot, u32 pkey,
    const std::function<bool(u32 pkey)>& domain_sealed,
    const std::function<bool(u32 pkey)>& pages_sealed,
    const PkeyPageDelta& delta) {
  if (len == 0 || (addr & (mem::kPageSize - 1)) != 0) return err::kInval;
  if (pkey >= (u32{1} << pkey_bits_)) return err::kInval;
  len = align_up(len, mem::kPageSize);
  if (!range_fully_mapped(addr, len)) return err::kNoMem;

  // Pre-flight both sealing rules.
  for (u64 cursor = addr; cursor < addr + len;) {
    const Vma* vma = find_vma(cursor);
    if (domain_sealed && domain_sealed(vma->pkey)) return err::kPerm;
    if (vma->pkey != pkey && pages_sealed && pages_sealed(pkey)) {
      return err::kPerm;  // cannot add pages to a page-sealed domain
    }
    cursor = vma->end;
  }

  split_at(addr);
  split_at(addr + len);
  i64 pages = 0;
  const u64 flags = leaf_flags_for_prot(prot);
  for (auto it = vmas_.lower_bound(addr);
       it != vmas_.end() && it->second.start < addr + len; ++it) {
    Vma& vma = it->second;
    const u32 old_pkey = vma.pkey;
    for (u64 page = vma.start; page < vma.end; page += mem::kPageSize) {
      const u64 slot = lookup_pte_slot(page);
      u64 entry = mem_.read_u64(slot);
      entry = mem::pte::with_flags(entry & ~u64{0xFF}, flags);
      entry = mem::pte::with_pkey(entry, pkey, pkey_bits_);
      mem_.write_u64(slot, entry);
      ++pages;
    }
    if (delta && old_pkey != pkey) {
      delta(old_pkey, -static_cast<i64>(vma.pages()));
      delta(pkey, static_cast<i64>(vma.pages()));
    }
    vma.prot = prot;
    vma.pkey = pkey;
  }
  return pages;
}

std::optional<u32> AddressSpace::page_pkey(u64 vaddr) const {
  const u64 slot = lookup_pte_slot(vaddr);
  if (slot == 0) return std::nullopt;
  const u64 entry = mem_.read_u64(slot);
  if (!mem::pte::valid(entry)) return std::nullopt;
  return mem::pte::pkey_of(entry, pkey_bits_);
}

std::optional<u64> AddressSpace::leaf_pte(u64 vaddr) const {
  const u64 slot = lookup_pte_slot(vaddr);
  if (slot == 0) return std::nullopt;
  const u64 entry = mem_.read_u64(slot);
  if (!mem::pte::valid(entry)) return std::nullopt;
  return entry;
}

bool AddressSpace::repair_page(u64 vaddr) {
  const Vma* vma = find_vma(vaddr);
  if (vma == nullptr) return false;
  const u64 slot = lookup_pte_slot(vaddr);
  if (slot == 0) return false;
  const u64 entry = mem_.read_u64(slot);
  if (!mem::pte::valid(entry)) return false;
  const u64 ad = entry & (mem::pte::kA | mem::pte::kD);
  const u64 want =
      mem::pte::make(mem::pte::ppn_of(entry),
                     leaf_flags_for_prot(vma->prot) | ad, vma->pkey,
                     pkey_bits_);
  if (want == entry) return false;
  mem_.write_u64(slot, want);
  return true;
}

bool AddressSpace::copy_out(u64 vaddr, const u8* src, u64 len) {
  for (u64 i = 0; i < len;) {
    const u64 slot = lookup_pte_slot(vaddr + i);
    if (slot == 0) return false;
    const u64 entry = mem_.read_u64(slot);
    if (!mem::pte::valid(entry)) return false;
    const u64 page_off = (vaddr + i) & (mem::kPageSize - 1);
    const u64 chunk = std::min(len - i, mem::kPageSize - page_off);
    mem_.write_bytes((mem::pte::ppn_of(entry) << mem::kPageShift) + page_off,
                     src + i, chunk);
    i += chunk;
  }
  return true;
}

bool AddressSpace::copy_in(u64 vaddr, u8* dst, u64 len) const {
  for (u64 i = 0; i < len;) {
    const u64 slot = lookup_pte_slot(vaddr + i);
    if (slot == 0) return false;
    const u64 entry = mem_.read_u64(slot);
    if (!mem::pte::valid(entry)) return false;
    const u64 page_off = (vaddr + i) & (mem::kPageSize - 1);
    const u64 chunk = std::min(len - i, mem::kPageSize - page_off);
    mem_.read_bytes((mem::pte::ppn_of(entry) << mem::kPageShift) + page_off,
                    dst + i, chunk);
    i += chunk;
  }
  return true;
}

}  // namespace sealpk::os
