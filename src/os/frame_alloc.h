// Physical frame allocator (buddy-free simple bump + free-list).
#pragma once

#include <optional>
#include <vector>

#include "common/bits.h"
#include "common/check.h"
#include "common/serial.h"
#include "mem/phys_mem.h"

namespace sealpk::os {

class FrameAllocator {
 public:
  // Manages frames in [base, base + size); `base` leaves room for the
  // kernel's own footprint at the bottom of DRAM.
  FrameAllocator(u64 base, u64 size)
      : next_(align_up(base, mem::kPageSize)),
        end_(base + size) {
    SEALPK_CHECK(base < base + size);
  }

  // Returns the PPN of a frame, or nullopt when DRAM is exhausted (the
  // kernel turns that into ENOMEM). Fresh pages read as zero in the
  // PhysMem model; recycled frames are scrubbed by the mapper.
  std::optional<u64> try_alloc_ppn() {
    if (!free_.empty()) {
      const u64 ppn = free_.back();
      free_.pop_back();
      ++allocated_;
      return ppn;
    }
    if (next_ + mem::kPageSize > end_) return std::nullopt;
    const u64 ppn = next_ >> mem::kPageShift;
    next_ += mem::kPageSize;
    ++allocated_;
    return ppn;
  }

  // Infallible variant for boot-time structures (root tables, the image):
  // exhaustion there is a configuration error, not a guest-visible one.
  u64 alloc_ppn() {
    const auto ppn = try_alloc_ppn();
    SEALPK_CHECK_MSG(ppn.has_value(), "out of phys frames");
    return *ppn;
  }

  u64 frames_left() const {
    return free_.size() + (end_ - next_) / mem::kPageSize;
  }

  void free_ppn(u64 ppn) {
    free_.push_back(ppn);
    SEALPK_CHECK(allocated_ > 0);
    --allocated_;
  }

  u64 allocated_frames() const { return allocated_; }

  // Snapshot port: the free list is a LIFO, so its order is part of the
  // deterministic allocation stream and travels verbatim.
  void save_state(ByteWriter& w) const {
    w.put_u64(next_);
    w.put_u64(end_);
    w.put_u64(allocated_);
    w.put_u64(free_.size());
    for (u64 ppn : free_) w.put_u64(ppn);
  }
  void load_state(ByteReader& r) {
    next_ = r.get_u64();
    const u64 end = r.get_u64();
    SEALPK_CHECK_MSG(end == end_, "frame allocator range mismatch");
    allocated_ = r.get_u64();
    free_.resize(r.get_u64());
    for (u64& ppn : free_) ppn = r.get_u64();
  }

 private:
  u64 next_;
  u64 end_;
  u64 allocated_ = 0;
  std::vector<u64> free_;
};

}  // namespace sealpk::os
