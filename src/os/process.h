// Process and thread models: the task_struct state the paper's kernel
// patch adds (per-thread PKR contents, per-process seal state).
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "core/hart.h"
#include "hw/pkr.h"
#include "hw/seal_unit.h"
#include "mpk/vkey_table.h"
#include "os/addr_space.h"
#include "os/key_manager.h"

namespace sealpk::os {

struct ThreadContext {
  std::array<u64, 32> regs{};
  u64 pc = 0;
  // §III-B.2: "We modify the task_struct in the Linux kernel to maintain
  // the contents of PKR for each thread during the context switches."
  hw::Pkr::Snapshot pkr{};
  u32 pkru = 0;  // the MPK flavour's per-thread register
  // Staged permissible-range latches (seal.start / seal.end).
  u64 seal_start = 0;
  u64 seal_end = 0;
};

struct Thread {
  int tid = 0;
  int pid = 0;
  ThreadContext ctx;
  bool exited = false;
  // Signal delivery state: the interrupted context is parked here while
  // the handler runs (the Linux port would place this frame on the user
  // stack; kernel-side storage is a documented simplification).
  bool in_signal = false;
  ThreadContext signal_saved;
};

struct Process {
  int pid = 0;
  u64 signal_handler = 0;  // 0 = default action (kill)
  std::unique_ptr<AddressSpace> aspace;
  std::unique_ptr<KeyManager> keys;
  // Per-process hardware seal state (SealReg + PK-CAM), swapped on process
  // switch like the paper's kernel does.
  hw::SealUnit::Snapshot seal_hw{};
  // Virtual-key table (DESIGN.md §15), created lazily on the first vpkey
  // syscall; null for processes that never virtualize. Travels in the
  // snapshot VKEY section (format v2), not in the frozen KERN layout.
  std::unique_ptr<mpk::VkeyTable> vkeys;
  std::vector<int> thread_tids;
  bool exited = false;
  i64 exit_code = 0;
};

}  // namespace sealpk::os
