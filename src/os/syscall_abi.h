// The guest<->kernel syscall ABI (Linux-like, RISC-V calling convention:
// number in a7, args in a0..a5, result in a0).
//
// Numbers follow the riscv64 Linux table where an equivalent exists; the
// SealPK additions (paper §IV) take numbers in an unused range.
#pragma once

#include "common/bits.h"

namespace sealpk::os {

namespace sys {
constexpr u64 kWrite = 64;          // write(fd, buf, len); fd 1 = console
constexpr u64 kExit = 93;           // exit(code) — exits the whole process
constexpr u64 kSchedYield = 124;    // sched_yield()
// SEGV-class signal handling (rt_sigaction/rt_sigreturn-lite): register a
// handler for page faults and seal violations. The handler is entered with
// a0 = trap cause, a1 = faulting address, a2 = pkey info (bit 63 set when
// the denial came from a protection key; low bits = the pkey), and must
// finish with sigreturn(skip): skip = 0 re-executes the faulting
// instruction (after the handler repaired the cause), skip = 1 resumes
// after it (probe pattern).
constexpr u64 kSigaction = 134;     // sigaction(handler_addr); 0 = default
constexpr u64 kSigreturn = 139;     // sigreturn(skip)
constexpr u64 kGetTid = 178;        // gettid()
constexpr u64 kClone = 220;         // clone-lite: (entry, stack_top, arg)
constexpr u64 kMunmap = 215;        // munmap(addr, len)
constexpr u64 kMmap = 222;          // mmap(0, len, prot, flags, -1, 0)
constexpr u64 kMprotect = 226;      // mprotect(addr, len, prot)
constexpr u64 kPkeyMprotect = 288;  // pkey_mprotect(addr, len, prot, pkey)
constexpr u64 kPkeyAlloc = 289;     // pkey_alloc(flags, init_perm)
constexpr u64 kPkeyFree = 290;      // pkey_free(pkey)
// SealPK additions.
constexpr u64 kPkeySeal = 300;      // pkey_seal(pkey, seal_domain, seal_page)
constexpr u64 kPkeyPermSeal = 301;  // pkey_perm_seal(pkey) — uses the
                                    // seal.start/seal.end staged range
// Harness helper: records a u64 in the kernel's report log so workloads can
// publish self-check checksums without a filesystem.
constexpr u64 kReport = 310;
// Harness helper: stamps a MarkRecord (instret/cycles from the calling
// hart) into the kernel's mark log and mirrors it into the event trace.
// mark(kind, arg0, arg1, pkey) — see os::mark for the kind values; pass
// obs::kNoPkey (0xFFFFFFFF) in a3 when no pkey applies.
constexpr u64 kMark = 311;
// Sealed-storage vault (src/vault, DESIGN.md §14). The vault region lives
// in guest memory under a write-only + perm-sealed pkey; the kernel is the
// only party that can read it back, and it only ever does so on behalf of
// a caller whose live PKR grants read+write on the vault's owner domain.
constexpr u64 kVaultSeal = 312;    // vault_seal(vault_base, intent_off)
constexpr u64 kVaultUnseal = 313;  // vault_unseal(vault_base, id, dst)
constexpr u64 kVaultReseal = 314;  // vault_reseal(vault_base, intent_off)
// Virtualized protection keys (src/mpk/vkey_table.h, DESIGN.md §15): an
// unbounded per-process virtual key space multiplexed onto the physical
// pkeys, beside (not replacing) the raw pkey ABI above. Virtual key ids
// start at mpk::kVkeyBase so the two namespaces can never alias. SealPK
// flavour only; the MPK flavour answers ENOSYS.
constexpr u64 kVpkeyAlloc = 320;     // vpkey_alloc(flags, init_perm)
constexpr u64 kVpkeyFree = 321;      // vpkey_free(vkey)
constexpr u64 kVpkeyMprotect = 322;  // vpkey_mprotect(addr, len, prot, vkey)
constexpr u64 kVpkeySet = 323;       // vpkey_set(vkey, perm)
}  // namespace sys

// Mark kinds for sys::kMark, mapped 1:1 onto the serve-plane event kinds.
namespace mark {
constexpr u64 kGateEnter = 0;    // arg0 = request index, arg1 = handler slot
constexpr u64 kGateExit = 1;     // arg0 = request index, arg1 = checksum
constexpr u64 kDisposition = 2;  // arg0 = request index, arg1 = detail
constexpr u64 kQuarantine = 3;   // arg0 = handler slot, arg1 = detail
// Vault plane. kVaultIntent is guest-stamped (just before the journal
// intent record is written); the other three are kernel-authored from
// inside the vault syscalls, so their mark ordering is ground truth for
// the crash-sweep's committed-bundle ledger.
constexpr u64 kVaultIntent = 4;  // arg0 = bundle id, arg1 = sequence
constexpr u64 kVaultCommit = 5;  // arg0 = bundle id, arg1 = sequence
constexpr u64 kVaultUnseal = 6;  // arg0 = bundle id, arg1 = byte length
constexpr u64 kVaultDenied = 7;  // arg0 = bundle id, arg1 = errno (negated)
}  // namespace mark

namespace prot {
constexpr u64 kRead = 1;
constexpr u64 kWrite = 2;
constexpr u64 kExec = 4;
}  // namespace prot

// pkey permission argument: the paper's 2-bit (Read-Disable, Write-Disable)
// encoding, also what pkey_alloc's init_perm takes (Figure 3 passes 0x1 to
// create a read-only domain). For the Intel-MPK flavour the same two bits
// are interpreted as (WD, AD) per the PKRU layout.
namespace pkeyperm {
constexpr u64 kRw = 0b00;
constexpr u64 kReadOnly = 0b01;   // WD set
constexpr u64 kWriteOnly = 0b10;  // RD set
constexpr u64 kNone = 0b11;
}  // namespace pkeyperm

namespace err {
constexpr i64 kPerm = -1;     // EPERM
constexpr i64 kNoMem = -12;   // ENOMEM
constexpr i64 kAcces = -13;   // EACCES
constexpr i64 kFault = -14;   // EFAULT
constexpr i64 kBusy = -16;    // EBUSY
constexpr i64 kInval = -22;   // EINVAL
constexpr i64 kNoSpc = -28;   // ENOSPC
constexpr i64 kNoSys = -38;   // ENOSYS
constexpr i64 kBadMsg = -74;  // EBADMSG — checksum mismatch on vault data
}  // namespace err

}  // namespace sealpk::os
