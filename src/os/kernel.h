// The kernel model: program loading, trap/syscall dispatch, the pkey
// syscalls (incl. the SealPK sealing syscalls), page-fault handling with
// pkey-augmented fault reports, PK-CAM refill service, and a round-robin
// scheduler that swaps per-thread PKR state.
//
// The kernel executes as host code "above" the hart, the way spike's proxy
// kernel sits above the ISA model: on a trap the hart redirects to stvec in
// S-mode, the surrounding run loop calls handle_trap(), and the kernel
// manipulates architectural state directly, charging calibrated cycle
// costs from the TimingModel for each software path it models.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/hart.h"
#include "isa/program.h"
#include "os/process.h"
#include "os/syscall_abi.h"

namespace sealpk::os {

// Pre-admission hook consulted by load_process: return false (optionally
// filling *reason) to refuse the image. sim::Machine installs the static
// SealPK verifier here; embedders can plug in their own policy.
using AdmissionGate =
    std::function<bool(const isa::Image& image, std::string* reason)>;

struct KernelConfig {
  // §III-B.2 footnote: maintaining PKR across context switches costs < 1 %.
  // The context-switch bench toggles this to measure exactly that.
  bool save_pkr_on_switch = true;
  u64 stack_pages = 64;  // main-thread stack (256 KiB)
  // Sv48 instead of Sv39 (paper footnote 1: the Sv48 PTE has the same 10
  // reserved bits, so the pkey field is unchanged; only the walk deepens).
  bool sv48 = false;
  // Optional static-verification gate; empty = admit everything.
  AdmissionGate admission_gate;
};

struct FaultRecord {
  int pid = 0;
  int tid = 0;
  core::TrapCause cause = core::TrapCause::kIllegalInst;
  u64 addr = 0;  // stval
  u64 pc = 0;    // sepc
  bool pkey_fault = false;  // augmented SIGSEGV info (paper §III-B.2)
  u32 pkey = 0;
  bool delivered = false;  // handed to a guest signal handler (not fatal)
};

struct KernelStats {
  u64 syscalls = 0;
  u64 context_switches = 0;
  u64 cam_refills = 0;
  u64 page_faults = 0;
  u64 seal_violations = 0;
  u64 pte_pages_updated = 0;
  std::map<u64, u64> syscall_counts;
};

class Kernel {
 public:
  Kernel(core::Hart& hart, KernelConfig config = {});

  // Creates a process from a linked image plus its main thread; the first
  // loaded process is scheduled onto the hart immediately. Returns the pid,
  // or kLoadRefused when the admission gate rejects the image (the refusal
  // reason is kept in admission_error()).
  static constexpr int kLoadRefused = -1;
  int load_process(const isa::Image& image);
  const std::string& admission_error() const { return admission_error_; }

  // Adds a thread to an existing process (host-side spawn; the guest-side
  // path is the clone syscall). Returns the tid.
  int spawn_thread(int pid, u64 entry, u64 stack_top, u64 arg);

  // Dispatches the trap the hart just took.
  void handle_trap();

  // Timer-driven preemption (the surrounding run loop implements the timer
  // by instruction quantum).
  void preempt();

  bool all_exited() const;
  size_t runnable_threads() const;

  Process& process(int pid);
  const Process& process(int pid) const;
  Thread& thread(int tid);
  int current_tid() const { return current_tid_; }
  core::Hart& hart() { return hart_; }

  const std::vector<FaultRecord>& faults() const { return faults_; }
  const std::string& console() const { return console_; }
  const std::vector<u64>& reports() const { return reports_; }
  const KernelStats& stats() const { return stats_; }
  const KernelConfig& config() const { return config_; }

 private:
  Process& current_process() { return *processes_.at(thread(current_tid_).pid); }
  KeyManager& current_keys() { return *current_process().keys; }
  AddressSpace& current_aspace() { return *current_process().aspace; }

  void do_syscall();
  i64 sys_mmap(u64 addr, u64 len, u64 prot);
  i64 sys_munmap(u64 addr, u64 len);
  i64 sys_mprotect(u64 addr, u64 len, u64 prot);
  i64 sys_pkey_mprotect(u64 addr, u64 len, u64 prot, u64 pkey);
  i64 sys_pkey_alloc(u64 flags, u64 init_perm);
  i64 sys_pkey_free(u64 pkey);
  i64 sys_pkey_seal(u64 pkey, u64 seal_domain, u64 seal_page);
  i64 sys_pkey_perm_seal(u64 pkey);
  i64 sys_write(u64 fd, u64 buf, u64 len);
  i64 sys_clone(u64 entry, u64 stack_top, u64 arg);
  void sys_exit(i64 code);
  // Returns true if the fault was delivered to a registered guest handler.
  bool deliver_signal(FaultRecord& rec);
  void sys_sigreturn(u64 skip);

  void handle_page_fault(core::TrapCause cause);
  void handle_cam_miss();
  void fatal_fault(core::TrapCause cause);

  void save_current_context();
  void restore_context(Thread& next, int prev_pid);
  void yield_to_next(u64 resume_pc);
  void return_to_user(u64 pc);
  void set_hw_pkey_perm(u32 pkey, u8 perm);

  PkeyPageDelta page_delta_hook();

  core::Hart& hart_;
  KernelConfig config_;
  std::map<int, std::unique_ptr<Process>> processes_;
  std::map<int, std::unique_ptr<Thread>> threads_;
  std::vector<int> run_queue_;  // runnable tids, excluding current
  int current_tid_ = -1;
  int next_pid_ = 1;
  int next_tid_ = 1;
  FrameAllocator frames_;
  std::string admission_error_;
  std::vector<FaultRecord> faults_;
  std::string console_;
  std::vector<u64> reports_;
  KernelStats stats_;
};

}  // namespace sealpk::os
