// The kernel model: program loading, trap/syscall dispatch, the pkey
// syscalls (incl. the SealPK sealing syscalls), page-fault handling with
// pkey-augmented fault reports, PK-CAM refill service, and a round-robin
// scheduler that swaps per-thread PKR state.
//
// The kernel executes as host code "above" the hart, the way spike's proxy
// kernel sits above the ISA model: on a trap the hart redirects to stvec in
// S-mode, the surrounding run loop calls handle_trap(), and the kernel
// manipulates architectural state directly, charging calibrated cycle
// costs from the TimingModel for each software path it models.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/hart.h"
#include "isa/program.h"
#include "obs/recorder.h"
#include "os/process.h"
#include "os/syscall_abi.h"

namespace sealpk::os {

// Pre-admission hook consulted by load_process: return false (optionally
// filling *reason) to refuse the image. sim::Machine installs the static
// SealPK verifier here; embedders can plug in their own policy.
using AdmissionGate =
    std::function<bool(const isa::Image& image, std::string* reason)>;

struct KernelConfig {
  // §III-B.2 footnote: maintaining PKR across context switches costs < 1 %.
  // The context-switch bench toggles this to measure exactly that.
  bool save_pkr_on_switch = true;
  u64 stack_pages = 64;  // main-thread stack (256 KiB)
  // Sv48 instead of Sv39 (paper footnote 1: the Sv48 PTE has the same 10
  // reserved bits, so the pkey field is unchanged; only the walk deepens).
  bool sv48 = false;
  // Optional static-verification gate; empty = admit everything.
  AdmissionGate admission_gate;
  // Pkey virtualization (src/mpk/vkey_table.h, DESIGN.md §15): size of the
  // per-process MRU key cache (vpkey_set hits skip the bookkeeping path and
  // the cached vkeys are exempt from eviction), and the eviction sync
  // policy — eager parks a victim's pages at eviction time, lazy queues
  // victims (key held no-access) and parks the whole queue under one
  // batched TLB shootdown when the free pool runs dry.
  u32 vkey_mru_slots = 8;
  bool vkey_lazy_sync = false;
  // Fault-injection hooks on the PK-CAM refill path. Consulted (when set)
  // once per refill: `cam_refill_drop` returning true makes the handler
  // return without refilling (the WRPKR re-faults and retries);
  // `cam_refill_dup` returning true makes the handler write the entry twice
  // (a glitched handshake leaving a duplicate CAM line). Wired up by the
  // fault injector; unset in normal runs.
  std::function<bool()> cam_refill_drop;
  std::function<bool()> cam_refill_dup;
  // Escalation hook consulted before a machine-check kill: returning true
  // claims the failure (the surrounding machine will roll back to a
  // checkpoint instead), so the kill is suppressed. Unset or returning
  // false keeps the existing kill-the-process behaviour. kill_current is
  // the single choke point every unrecoverable-corruption path funnels
  // through (auditor escalation, page-fault recovery, the machine-check
  // handler, and host-error containment), so this one hook covers them all.
  std::function<bool()> machine_check_escalation;
};

struct FaultRecord {
  int pid = 0;
  int tid = 0;
  core::TrapCause cause = core::TrapCause::kIllegalInst;
  u64 addr = 0;  // stval
  u64 pc = 0;    // sepc
  bool pkey_fault = false;  // augmented SIGSEGV info (paper §III-B.2)
  u32 pkey = 0;
  bool delivered = false;  // handed to a guest signal handler (not fatal)
};

// A guest-published request-plane mark (sys::kMark): the serve engine's
// host side reads these to attribute per-request latency and in-flight
// state without parsing the event trace. Timestamps are the calling
// hart's retired-instruction and modelled-cycle counters at the ecall.
// Marks are observability, not architectural state: like the Recorder,
// they are NOT serialized in snapshots — a resumed run records the marks
// after the restore point, and concatenation with the pre-save marks
// reproduces the uninterrupted stream bit-for-bit.
struct MarkRecord {
  u64 kind = 0;  // os::mark::k* value
  u64 arg0 = 0;
  u64 arg1 = 0;
  u32 pkey = 0;  // obs::kNoPkey when the mark has no pkey
  int tid = 0;
  u64 instret = 0;
  u64 cycles = 0;

  bool operator==(const MarkRecord&) const = default;
};

// Sealed-storage vault service counters (src/vault, DESIGN.md §14). Like
// MarkRecord these are observability, not architectural state: the durable
// vault truth lives entirely in guest DRAM (journal + payload slots), which
// the snapshot layer already carries in the MEM section, so the counters
// are NOT serialized — a resumed run recounts from its restore point.
struct VaultStats {
  u64 seals = 0;                 // successful sys_vault_seal commits
  u64 reseals = 0;               // successful sys_vault_reseal commits
  u64 unseals = 0;               // successful sys_vault_unseal copies
  u64 denials = 0;               // ownership-gate rejections (non-owner)
  u64 corruption_detected = 0;   // checksum failures caught before serving
};

struct KernelStats {
  u64 syscalls = 0;
  u64 context_switches = 0;
  u64 cam_refills = 0;
  u64 page_faults = 0;
  u64 seal_violations = 0;
  u64 pte_pages_updated = 0;
  std::map<u64, u64> syscall_counts;

  // --- robustness: fault detection and recovery ---------------------------
  u64 cam_refills_dropped = 0;     // refills the injector made the OS drop
  u64 cam_refills_duplicated = 0;  // refills committed twice
  u64 pkr_scrubs = 0;              // PKR rows rewritten from the shadow
  u64 tlb_flush_recoveries = 0;    // flush-and-rewalk recoveries
  u64 pte_repairs = 0;             // leaf PTEs rewritten from the VMA
  u64 key_counter_repairs = 0;     // pkey page counters reconciled
  u64 run_queue_scrubs = 0;        // bogus/dead tids dropped from the queue
  u64 cam_dedups = 0;              // duplicate PK-CAM lines invalidated
  u64 spurious_fault_fixes = 0;    // page faults resolved by state repair
  u64 machine_checks = 0;          // modelled machine-check traps taken
  u64 machine_check_kills = 0;     // processes killed as unrecoverable
  u64 watchdog_kills = 0;          // trap-storm / livelock kills
  u64 audit_runs = 0;              // MachineAuditor invocations
  u64 audit_findings = 0;          // invariant violations the auditor saw
  u64 host_errors_contained = 0;   // host exceptions converted to kills

  // Vkey-table fields rebuilt from the PTE ground truth by the auditor.
  // NOT serialized (the KERN byte layout is frozen by the v1 golden blob;
  // a resumed run recounts from its restore point, like VaultStats).
  u64 vkey_repairs = 0;

  // Total successful recovery actions — the acceptance counter: every
  // injected fault must show up here or in a kill counter.
  u64 recoveries() const {
    return pkr_scrubs + tlb_flush_recoveries + pte_repairs +
           key_counter_repairs + run_queue_scrubs + cam_dedups +
           spurious_fault_fixes;
  }
};

// Exit codes for robustness kills, distinct from the -TrapCause codes of
// ordinary fatal faults (watchdog codes sit below any trap cause).
constexpr i64 kExitMachineCheck =
    -static_cast<i64>(core::TrapCause::kMachineCheck);   // -26
constexpr i64 kExitTrapStorm = -120;
constexpr i64 kExitLivelock = -121;

class Kernel {
 public:
  // Which subsystem decided to kill a process (routes the kill counter).
  enum class KillOrigin : u8 { kMachineCheck, kWatchdog };

  Kernel(core::Hart& hart, KernelConfig config = {});

  // Creates a process from a linked image plus its main thread; the first
  // loaded process is scheduled onto the hart immediately. Returns the pid,
  // or kLoadRefused when the admission gate rejects the image *or* a
  // mid-load failure occurs (segment map/copy failure, frame exhaustion,
  // stack map failure) — the reason is kept in admission_error() and any
  // partially-mapped memory is released.
  static constexpr int kLoadRefused = -1;
  int load_process(const isa::Image& image);
  const std::string& admission_error() const { return admission_error_; }

  // Adds a thread to an existing process (host-side spawn; the guest-side
  // path is the clone syscall). Returns the tid.
  int spawn_thread(int pid, u64 entry, u64 stack_top, u64 arg);

  // Dispatches the trap the hart just took.
  void handle_trap();

  // Timer-driven preemption (the surrounding run loop implements the timer
  // by instruction quantum).
  void preempt();

  bool all_exited() const;
  size_t runnable_threads() const;

  Process& process(int pid);
  const Process& process(int pid) const;
  Thread& thread(int tid);
  const Thread& thread(int tid) const;
  bool has_process(int pid) const { return processes_.count(pid) != 0; }
  bool has_thread(int tid) const { return threads_.count(tid) != 0; }
  bool has_current_thread() const {
    return current_tid_ >= 0 && has_thread(current_tid_);
  }
  std::vector<int> pids() const;
  int current_tid() const { return current_tid_; }
  const std::vector<int>& run_queue() const { return run_queue_; }
  // Mutable run-queue access for planted-inconsistency tests only.
  std::vector<int>& run_queue_for_test() { return run_queue_; }
  core::Hart& hart() { return hart_; }

  // Observability sink (src/obs): syscalls, pkey lifecycle, context
  // switches, CAM refills and fault handling are published here. Null =
  // disabled; emits charge no cycles (same discipline as the hart hooks).
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }

  const std::vector<FaultRecord>& faults() const { return faults_; }
  const std::string& console() const { return console_; }
  const std::vector<u64>& reports() const { return reports_; }
  const std::vector<MarkRecord>& marks() const { return marks_; }
  const KernelStats& stats() const { return stats_; }
  const VaultStats& vault_stats() const { return vault_stats_; }
  const KernelConfig& config() const { return config_; }

  // --- fault recovery (used by the machine-check handler, the spurious-
  // --- fault path and the MachineAuditor) ---------------------------------
  // Rewrites PKR rows whose parity is bad or whose content disagrees with
  // the current thread's live software shadow. Returns rows scrubbed. When
  // the shadow is untrustworthy (save_pkr_on_switch off) a parity error
  // cannot be repaired and *unrecoverable is set instead.
  u64 scrub_pkr_from_shadow(bool* unrecoverable = nullptr);
  // Flush-and-rewalk: drop both TLBs so stale entries re-walk the live
  // page tables. Counted as a recovery (unlike the plain sfence path).
  void recover_tlb_flush();
  // Rewrites every leaf PTE of `pid` from its owning VMA (the software
  // source of truth). Returns pages repaired.
  u64 repair_ptes(int pid);
  // Recomputes per-pkey page counts from the VMAs and forces the key
  // manager's counters to match. Returns counters fixed.
  u64 reconcile_key_counters(int pid);
  // Drops dead or unknown tids from the run queue. Returns entries removed.
  u64 scrub_run_queue();
  // Invalidates duplicate PK-CAM lines. Returns entries dropped.
  u64 dedup_cam();
  // Rewrites every live vkey-table entry of `pid` whose recorded physical
  // key disagrees with the PTE ground truth of its pages, then rebuilds the
  // table's free pool. Returns entries repaired (counted as vkey_repairs).
  u64 repair_vkeys(int pid);
  // Kills the current process with `code` (no-op without a current thread).
  void kill_current(i64 code, KillOrigin origin);

  void note_audit(u64 findings) {
    ++stats_.audit_runs;
    stats_.audit_findings += findings;
  }
  void note_host_error(const std::string& what) {
    ++stats_.host_errors_contained;
    host_errors_.push_back(what);
  }
  const std::vector<std::string>& host_errors() const { return host_errors_; }

  // --- snapshot ports ------------------------------------------------------
  // Serializes the complete kernel truth: process table (address spaces,
  // key managers, per-process seal state), threads, scheduler queue, frame
  // allocator, fault/console/report logs and stats. The hart itself is
  // saved separately by the snapshot layer. load_state rebuilds everything
  // in place, re-installing the non-serializable hooks (drained hooks
  // capture live pointers).
  void save_state(ByteWriter& w) const;
  void load_state(ByteReader& r);

  // Per-process vkey tables, serialized apart from the frozen KERN layout
  // (the snapshot layer's v2 VKEY section). load_vkey_state expects the
  // process table to be loaded already; v1 blobs skip it and leave every
  // table null.
  void save_vkey_state(ByteWriter& w) const;
  void load_vkey_state(ByteReader& r);
  bool any_vkey_tables() const;

 private:
  // The VkeyOps adapter (kernel.cpp) that maps the vkey table's side-effect
  // port onto AddressSpace / PKR / TLB mechanisms.
  friend struct VkeyKernelOps;

  Process& current_process() { return *processes_.at(thread(current_tid_).pid); }
  KeyManager& current_keys() { return *current_process().keys; }
  AddressSpace& current_aspace() { return *current_process().aspace; }

  void do_syscall();
  i64 sys_mmap(u64 addr, u64 len, u64 prot);
  i64 sys_munmap(u64 addr, u64 len);
  i64 sys_mprotect(u64 addr, u64 len, u64 prot);
  i64 sys_pkey_mprotect(u64 addr, u64 len, u64 prot, u64 pkey);
  i64 sys_pkey_alloc(u64 flags, u64 init_perm);
  i64 sys_pkey_free(u64 pkey);
  i64 sys_pkey_seal(u64 pkey, u64 seal_domain, u64 seal_page);
  i64 sys_pkey_perm_seal(u64 pkey);
  // Virtualized pkeys (sys::kVpkey*): policy lives in the per-process
  // mpk::VkeyTable; these adapt its side-effect port onto the real
  // mechanisms (AddressSpace::protect_pkey, PKR writes, TLB shootdowns)
  // with the same cycle charging as the raw pkey syscalls.
  i64 sys_vpkey_alloc(u64 flags, u64 init_perm);
  i64 sys_vpkey_free(u64 vkey);
  i64 sys_vpkey_mprotect(u64 addr, u64 len, u64 prot, u64 vkey);
  i64 sys_vpkey_set(u64 vkey, u64 perm);
  mpk::VkeyTable& ensure_vkeys(Process& proc);
  i64 sys_write(u64 fd, u64 buf, u64 len);
  // Vault service (sys::kVaultSeal / kVaultReseal / kVaultUnseal). The
  // commit path validates the guest-written intent record and writes the
  // matching commit record in this one trap, so commits are host-atomic;
  // the unseal path re-verifies the payload checksum before serving it.
  i64 sys_vault_commit(u64 vault_base, u64 intent_off, bool reseal);
  i64 sys_vault_unseal(u64 vault_base, u64 id, u64 dst);
  // Kernel-authored vault mark + trace event (ground truth for the sweep).
  void vault_mark(u64 kind, u64 arg0, u64 arg1, u32 pkey);
  i64 sys_clone(u64 entry, u64 stack_top, u64 arg);
  void sys_exit(i64 code);
  // Returns true if the fault was delivered to a registered guest handler.
  bool deliver_signal(FaultRecord& rec);
  void sys_sigreturn(u64 skip);

  void handle_page_fault(core::TrapCause cause);
  void handle_cam_miss();
  void handle_machine_check();
  void fatal_fault(core::TrapCause cause);

  // Outcome of the spurious-fault repair attempt inside handle_page_fault.
  enum class Recovery : u8 { kNone, kRecovered, kKilled };
  Recovery try_fault_recovery(const FaultRecord& rec);

  void install_drained_hook(SealPkKeyManager& keys, int pid);

  void save_current_context();
  void restore_context(Thread& next, int prev_pid);
  void yield_to_next(u64 resume_pc);
  void return_to_user(u64 pc);
  void set_hw_pkey_perm(u32 pkey, u8 perm);

  PkeyPageDelta page_delta_hook();

  // Emits an event stamped with the hart's current instret/cycles; a plain
  // no-op when no recorder is attached.
  void emit(obs::EventKind kind, u32 pkey, u64 arg0, u64 arg1);

  core::Hart& hart_;
  KernelConfig config_;
  obs::Recorder* recorder_ = nullptr;
  std::map<int, std::unique_ptr<Process>> processes_;
  std::map<int, std::unique_ptr<Thread>> threads_;
  std::vector<int> run_queue_;  // runnable tids, excluding current
  int current_tid_ = -1;
  int next_pid_ = 1;
  int next_tid_ = 1;
  FrameAllocator frames_;
  std::string admission_error_;
  std::vector<FaultRecord> faults_;
  std::string console_;
  std::vector<u64> reports_;
  std::vector<MarkRecord> marks_;  // not serialized (see MarkRecord)
  std::vector<std::string> host_errors_;
  KernelStats stats_;
  VaultStats vault_stats_;  // not serialized (see VaultStats)
};

}  // namespace sealpk::os
