// Per-process virtual address space: VMA bookkeeping plus real Sv39 page
// tables materialised in guest physical memory (so the hart's hardware
// walker exercises the same structures the Linux port would).
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "common/bits.h"
#include "common/serial.h"
#include "mem/phys_mem.h"
#include "mem/pte.h"
#include "os/frame_alloc.h"

namespace sealpk::os {

struct Vma {
  u64 start = 0;  // page aligned, inclusive
  u64 end = 0;    // page aligned, exclusive
  u64 prot = 0;   // prot:: bits
  u32 pkey = 0;

  u64 pages() const { return (end - start) >> mem::kPageShift; }
};

// Callback used to keep the key manager's per-pkey page counters in sync:
// invoked once per (pkey, page-count) delta.
using PkeyPageDelta = std::function<void(u32 pkey, i64 pages)>;

class AddressSpace {
 public:
  // levels: 3 = Sv39 (the paper's platform), 4 = Sv48 (footnote 1).
  AddressSpace(mem::PhysMem& mem, FrameAllocator& frames,
               unsigned pkey_bits, unsigned levels = mem::sv39::kLevels);

  // Snapshot restore constructor: rebuilds the bookkeeping from a
  // serialized stream WITHOUT allocating a root table — the page tables
  // themselves live in PhysMem, which the snapshot layer restores
  // wholesale, and the frame allocator's state is restored separately.
  AddressSpace(mem::PhysMem& mem, FrameAllocator& frames, ByteReader& r);

  void save_state(ByteWriter& w) const;

  u64 root_ppn() const { return root_ppn_; }
  u64 satp() const;
  unsigned pkey_bits() const { return pkey_bits_; }
  unsigned levels() const { return levels_; }

  // Maps [addr, addr+len) anonymous zeroed memory. addr == 0 picks an
  // address from the mmap region. Returns the mapped address, or a
  // negative errno. `pages_touched` (optional) reports PTE writes for the
  // cycle model.
  i64 map(u64 addr, u64 len, u64 prot, u32 pkey = 0,
          const PkeyPageDelta& delta = nullptr);

  // Unmaps [addr, addr+len). Partial VMA coverage splits VMAs like Linux.
  i64 unmap(u64 addr, u64 len, const PkeyPageDelta& delta = nullptr);

  // mprotect: updates PTE permission bits, preserving each page's pkey.
  // Returns number of pages updated or negative errno. `sealed_domain`
  // (optional) lets the caller veto changes to pages of sealed domains.
  i64 protect(u64 addr, u64 len, u64 prot,
              const std::function<bool(u32 pkey)>& domain_sealed = nullptr);

  // pkey_mprotect: updates permissions *and* assigns `pkey`.
  // `domain_sealed` vetoes re-keying pages whose current domain is sealed;
  // `pages_sealed` vetoes adding pages to the target domain; `delta`
  // maintains page counters. Returns pages updated or negative errno.
  i64 protect_pkey(u64 addr, u64 len, u64 prot, u32 pkey,
                   const std::function<bool(u32 pkey)>& domain_sealed,
                   const std::function<bool(u32 pkey)>& pages_sealed,
                   const PkeyPageDelta& delta);

  const Vma* find_vma(u64 addr) const;
  const std::map<u64, Vma>& vmas() const { return vmas_; }

  // Reads the pkey field straight out of the leaf PTE (test/debug aid).
  std::optional<u32> page_pkey(u64 vaddr) const;
  std::optional<u64> leaf_pte(u64 vaddr) const;

  // Physical address of the leaf PTE slot for `vaddr`, or 0 when the page
  // tables don't reach it. Fault-injection and audit port: lets callers
  // flip or inspect the raw PTE word in DRAM.
  u64 leaf_pte_addr(u64 vaddr) const { return lookup_pte_slot(vaddr); }

  // The leaf PTE bits `prot` should produce (V|U plus R/W/X with the
  // W-implies-R fixup). Exposed so the auditor can recompute a PTE's
  // expected permission bits from the owning VMA.
  static u64 leaf_flags_for_prot(u64 prot);

  // Recovery port: rewrite the leaf PTE for `vaddr` from the owning VMA
  // (the software source of truth), preserving the PPN and the A/D bits.
  // Returns true only when the stored PTE actually changed.
  bool repair_page(u64 vaddr);

  // Kernel copy helpers (loader, write(2), fault reporting).
  bool copy_out(u64 vaddr, const u8* src, u64 len);
  bool copy_in(u64 vaddr, u8* dst, u64 len) const;

  u64 pages_mapped() const { return pages_mapped_; }

 private:
  u64 pte_slot_addr(u64 vaddr, bool create);  // phys addr of leaf PTE slot
  u64 lookup_pte_slot(u64 vaddr) const;       // 0 if tables absent
  void write_leaf(u64 vaddr, u64 pte);
  // Splits any VMA straddling `addr` so that `addr` becomes a boundary.
  void split_at(u64 addr);
  bool range_fully_mapped(u64 addr, u64 len) const;

  mem::PhysMem& mem_;
  FrameAllocator& frames_;
  unsigned pkey_bits_;
  unsigned levels_;
  u64 root_ppn_;
  std::map<u64, Vma> vmas_;  // keyed by start
  u64 mmap_next_;
  u64 pages_mapped_ = 0;
};

}  // namespace sealpk::os
