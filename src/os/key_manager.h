// Protection-key bookkeeping.
//
// KeyManager is the kernel-side state the paper adds for SealPK
// (§III-B.1): a 1024-bit allocation bitmap, a 1024-bit *dirty* map for lazy
// de-allocation, a per-key page counter map, and the sealed_domain /
// sealed_page maps of §IV. The Intel-MPK flavour (src/mpk) implements the
// same interface with Linux's eager-free semantics, preserving the pkey
// use-after-free bug for comparison.
#pragma once

#include <array>
#include <bitset>
#include <functional>
#include <optional>
#include <vector>

#include "common/bits.h"
#include "common/check.h"
#include "common/serial.h"
#include "hw/pkr.h"
#include "os/syscall_abi.h"

namespace sealpk::os {

struct SealRange {
  u64 start = 0;
  u64 end = 0;  // inclusive
};

class KeyManager {
 public:
  virtual ~KeyManager() = default;

  virtual unsigned num_keys() const = 0;
  // Returns a fresh pkey or a negative errno.
  virtual i64 alloc() = 0;
  virtual i64 free_key(u32 pkey) = 0;
  virtual bool allocated(u32 pkey) const = 0;
  // True if the key may be named by pkey_mprotect (allocated and, for
  // SealPK, not lazily de-allocated).
  virtual bool assignable(u32 pkey) const = 0;
  virtual bool dirty(u32 /*pkey*/) const { return false; }
  // Page-counter maintenance, driven by mmap/munmap/pkey_mprotect.
  virtual void page_delta(u32 pkey, i64 pages) = 0;
  virtual u64 page_count(u32 /*pkey*/) const { return 0; }
  // Recovery port: force a counter to the recomputed truth after detected
  // drift (the MachineAuditor's bitmap/counter cross-check). Flavours with
  // no counts ignore it.
  virtual void reconcile_page_count(u32 /*pkey*/, u64 /*pages*/) {}

  // --- sealing (SealPK only; the MPK flavour returns -ENOSYS) -------------
  virtual i64 seal(u32 /*pkey*/, bool /*domain*/, bool /*page*/) {
    return err::kNoSys;
  }
  virtual bool domain_sealed(u32 /*pkey*/) const { return false; }
  virtual bool pages_sealed(u32 /*pkey*/) const { return false; }
  virtual i64 set_perm_seal(u32 /*pkey*/, SealRange /*range*/) {
    return err::kNoSys;
  }
  virtual std::optional<SealRange> perm_seal_range(u32 /*pkey*/) const {
    return std::nullopt;
  }

  // --- snapshot ports ------------------------------------------------------
  // Each flavour serializes its own bookkeeping; the kernel re-installs any
  // hooks (they capture live pointers and never travel in a snapshot).
  virtual void save_state(ByteWriter& w) const = 0;
  virtual void load_state(ByteReader& r) = 0;
};

// The SealPK kernel state with lazy de-allocation.
class SealPkKeyManager : public KeyManager {
 public:
  using DrainedHook = std::function<void(u32 pkey)>;

  SealPkKeyManager() {
    alloc_.set(0);  // pkey 0 is the default domain, permanently allocated
  }

  // Invoked when a dirty key's page count drains to zero and the key
  // becomes allocatable again — the kernel uses it to scrub the per-process
  // hardware seal state.
  void set_drained_hook(DrainedHook hook) { drained_ = std::move(hook); }

  unsigned num_keys() const override { return hw::kNumPkeys; }

  i64 alloc() override {
    // A dirty key still has pages carrying it, so it must not be handed
    // out — this is exactly what kills the use-after-free (paper
    // §III-B.1).
    for (u32 k = 1; k < hw::kNumPkeys; ++k) {
      if (!alloc_[k] && !dirty_[k]) {
        alloc_.set(k);
        return k;
      }
    }
    return err::kNoSpc;
  }

  i64 free_key(u32 pkey) override {
    if (pkey == 0 || pkey >= hw::kNumPkeys || !alloc_[pkey]) {
      return err::kInval;
    }
    alloc_.reset(pkey);
    if (counter_[pkey] > 0) {
      dirty_.set(pkey);  // lazy de-allocation: quarantine until drained
    } else {
      scrub(pkey);
    }
    return 0;
  }

  bool allocated(u32 pkey) const override {
    return pkey < hw::kNumPkeys && alloc_[pkey];
  }

  bool assignable(u32 pkey) const override {
    return pkey < hw::kNumPkeys && alloc_[pkey] && !dirty_[pkey];
  }

  bool dirty(u32 pkey) const override {
    return pkey < hw::kNumPkeys && dirty_[pkey];
  }

  void page_delta(u32 pkey, i64 pages) override {
    SEALPK_CHECK(pkey < hw::kNumPkeys);
    const i64 next = static_cast<i64>(counter_[pkey]) + pages;
    SEALPK_CHECK_MSG(next >= 0, "pkey page counter underflow");
    counter_[pkey] = static_cast<u64>(next);
    if (counter_[pkey] == 0 && dirty_[pkey]) {
      dirty_.reset(pkey);
      scrub(pkey);
      if (drained_) drained_(pkey);
    }
  }

  u64 page_count(u32 pkey) const override {
    SEALPK_CHECK(pkey < hw::kNumPkeys);
    return counter_[pkey];
  }

  void reconcile_page_count(u32 pkey, u64 pages) override {
    SEALPK_CHECK(pkey < hw::kNumPkeys);
    counter_[pkey] = pages;
    // The reconciled truth may complete a pending lazy-free drain.
    if (counter_[pkey] == 0 && dirty_[pkey]) {
      dirty_.reset(pkey);
      scrub(pkey);
      if (drained_) drained_(pkey);
    }
  }

  i64 seal(u32 pkey, bool domain, bool page) override {
    if (!assignable(pkey)) return err::kInval;
    if (domain) sealed_domain_.set(pkey);
    if (page) sealed_page_.set(pkey);
    return 0;
  }

  bool domain_sealed(u32 pkey) const override {
    return pkey < hw::kNumPkeys && sealed_domain_[pkey];
  }

  bool pages_sealed(u32 pkey) const override {
    return pkey < hw::kNumPkeys && sealed_page_[pkey];
  }

  // One-time fuse per process (paper §IV): a second call fails.
  i64 set_perm_seal(u32 pkey, SealRange range) override {
    if (!assignable(pkey)) return err::kInval;
    if (perm_ranges_[pkey].has_value()) return err::kPerm;
    if (range.start > range.end || range.start == 0) return err::kInval;
    perm_ranges_[pkey] = range;
    return 0;
  }

  std::optional<SealRange> perm_seal_range(u32 pkey) const override {
    SEALPK_CHECK(pkey < hw::kNumPkeys);
    return perm_ranges_[pkey];
  }

  void save_state(ByteWriter& w) const override {
    w.put_bitset(alloc_);
    w.put_bitset(dirty_);
    w.put_bitset(sealed_domain_);
    w.put_bitset(sealed_page_);
    for (u64 c : counter_) w.put_u64(c);
    for (const auto& range : perm_ranges_) {
      w.put_bool(range.has_value());
      w.put_u64(range ? range->start : 0);
      w.put_u64(range ? range->end : 0);
    }
  }
  void load_state(ByteReader& r) override {
    alloc_ = r.get_bitset<hw::kNumPkeys>();
    dirty_ = r.get_bitset<hw::kNumPkeys>();
    sealed_domain_ = r.get_bitset<hw::kNumPkeys>();
    sealed_page_ = r.get_bitset<hw::kNumPkeys>();
    for (u64& c : counter_) c = r.get_u64();
    for (auto& range : perm_ranges_) {
      const bool has = r.get_bool();
      const u64 start = r.get_u64();
      const u64 end = r.get_u64();
      range = has ? std::optional<SealRange>({start, end}) : std::nullopt;
    }
  }

 private:
  // Full release: the key was freed and no page carries it any more, so
  // every seal attached to it dissolves (paper §IV: "the seal cannot be
  // broken unless the corresponding pkey and all its associated pages are
  // freed").
  void scrub(u32 pkey) {
    dirty_.reset(pkey);
    sealed_domain_.reset(pkey);
    sealed_page_.reset(pkey);
    perm_ranges_[pkey].reset();
  }

  std::bitset<hw::kNumPkeys> alloc_;
  std::bitset<hw::kNumPkeys> dirty_;
  std::bitset<hw::kNumPkeys> sealed_domain_;
  std::bitset<hw::kNumPkeys> sealed_page_;
  std::array<u64, hw::kNumPkeys> counter_{};
  std::array<std::optional<SealRange>, hw::kNumPkeys> perm_ranges_{};
  DrainedHook drained_;
};

}  // namespace sealpk::os
