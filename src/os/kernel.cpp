#include "os/kernel.h"

#include <algorithm>

#include "mpk/key_manager.h"
#include "vault/format.h"

namespace sealpk::os {

namespace {
// Bottom of DRAM reserved for the resident kernel footprint; frames above
// it are handed to processes and page tables.
constexpr u64 kKernelReserve = 2 * 1024 * 1024;
// Magic supervisor entry address (stvec). No guest code lives there: the
// host run loop takes over whenever the hart lands in S-mode.
constexpr u64 kStvec = 0x1000;
constexpr u64 kStackTop = 0x3F'FFFF'F000;
constexpr u64 kMaxWriteLen = 1 << 20;
}  // namespace

Kernel::Kernel(core::Hart& hart, KernelConfig config)
    : hart_(hart),
      config_(config),
      frames_(kKernelReserve, hart.mem().size() - kKernelReserve) {
  hart_.csrs().stvec = kStvec;
  hart_.set_priv(core::Priv::kSupervisor);
  // Keep a live per-thread software shadow of the PKR: every user-mode
  // WRPKR is mirrored into the running thread's saved context, so a
  // corrupted SRAM row can always be scrubbed back from software.
  hart_.set_pkr_write_hook([this](u32 row, u64 value) {
    if (has_current_thread()) thread(current_tid_).ctx.pkr[row] = value;
  });
}

void Kernel::emit(obs::EventKind kind, u32 pkey, u64 arg0, u64 arg1) {
  if (recorder_ == nullptr) return;
  recorder_->emit(kind, hart_.instret(), hart_.cycles(), pkey, arg0, arg1);
}

void Kernel::install_drained_hook(SealPkKeyManager& keys, int pid) {
  keys.set_drained_hook([this, pid](u32 pkey) {
    // The key fully drained: dissolve its hardware seal state so a future
    // owner starts fresh.
    auto it = processes_.find(pid);
    if (it == processes_.end()) return;
    if (current_tid_ >= 0 && thread(current_tid_).pid == pid) {
      hart_.seal_unit().clear_key(pkey);
    }
    set_hw_pkey_perm(pkey, 0);
    emit(obs::EventKind::kPkeyLazyDrain, pkey, 0, 0);
  });
}

PkeyPageDelta Kernel::page_delta_hook() {
  KeyManager* keys = &current_keys();
  if (recorder_ == nullptr) {
    return [keys](u32 pkey, i64 pages) { keys->page_delta(pkey, pages); };
  }
  return [this, keys](u32 pkey, i64 pages) {
    keys->page_delta(pkey, pages);
    emit(obs::EventKind::kPkeyPages, pkey, static_cast<u64>(pages),
         keys->page_count(pkey));
  };
}

int Kernel::load_process(const isa::Image& image) {
  admission_error_.clear();
  if (config_.admission_gate) {
    if (!config_.admission_gate(image, &admission_error_)) {
      if (admission_error_.empty()) admission_error_ = "admission gate refused";
      return kLoadRefused;
    }
  }
  const int pid = next_pid_;
  auto proc = std::make_unique<Process>();
  proc->pid = pid;
  const unsigned pkey_bits =
      hart_.config().flavor == core::IsaFlavor::kSealPk
          ? mem::pte::kSealPkPkeyBits
          : mem::pte::kMpkPkeyBits;
  proc->aspace = std::make_unique<AddressSpace>(
      hart_.mem(), frames_, pkey_bits,
      config_.sv48 ? mem::sv48::kLevels : mem::sv39::kLevels);
  if (hart_.config().flavor == core::IsaFlavor::kSealPk) {
    auto keys = std::make_unique<SealPkKeyManager>();
    install_drained_hook(*keys, pid);
    proc->keys = std::move(keys);
  } else {
    proc->keys = std::make_unique<mpk::MpkKeyManager>();
  }

  // Map the image segments with their natural permissions. Any mid-load
  // failure (overlapping/non-canonical segments, frame exhaustion, copy
  // into an unmapped hole) refuses the image instead of escaping as a host
  // error — a hostile or oversized image must not take the machine down.
  const auto refuse = [&](const std::string& reason) {
    admission_error_ = reason;
    // Best-effort unwind: release the data frames of everything mapped so
    // far. Page-table frames follow the same lifetime rule as those of
    // exited processes (held until machine teardown).
    std::vector<std::pair<u64, u64>> mapped;
    for (const auto& [start, vma] : proc->aspace->vmas()) {
      mapped.emplace_back(vma.start, vma.end - vma.start);
    }
    for (const auto& [start, len] : mapped) proc->aspace->unmap(start, len);
    return kLoadRefused;
  };
  for (const auto& seg : image.segments) {
    const u64 start = align_down(seg.addr, mem::kPageSize);
    const u64 end = align_up(seg.addr + seg.bytes.size(), mem::kPageSize);
    u64 prot = prot::kRead;
    if (seg.write) prot |= prot::kWrite;
    if (seg.exec) prot |= prot::kExec;
    const i64 rc = proc->aspace->map(
        start, end - start, prot, /*pkey=*/0,
        [&proc](u32 pkey, i64 pages) { proc->keys->page_delta(pkey, pages); });
    if (rc < 0) {
      return refuse(rc == err::kNoMem ? "image segment map failed: no memory"
                                      : "image segment map failed");
    }
    if (!proc->aspace->copy_out(seg.addr, seg.bytes.data(),
                                seg.bytes.size())) {
      return refuse("image segment copy failed");
    }
  }

  // Main-thread stack at the top of the user VA range.
  const u64 stack_len = config_.stack_pages * mem::kPageSize;
  const i64 rc = proc->aspace->map(
      kStackTop - stack_len, stack_len, prot::kRead | prot::kWrite, 0,
      [&proc](u32 pkey, i64 pages) { proc->keys->page_delta(pkey, pages); });
  if (rc < 0) {
    return refuse(rc == err::kNoMem ? "stack map failed: no memory"
                                    : "stack map failed");
  }
  ++next_pid_;

  auto main_thread = std::make_unique<Thread>();
  const int tid = next_tid_++;
  main_thread->tid = tid;
  main_thread->pid = pid;
  main_thread->ctx.pc = image.entry;
  main_thread->ctx.regs[isa::sp] = kStackTop - 64;
  proc->thread_tids.push_back(tid);
  proc->seal_hw = hw::SealUnit::Snapshot{};

  processes_.emplace(pid, std::move(proc));
  threads_.emplace(tid, std::move(main_thread));

  if (current_tid_ < 0) {
    restore_context(thread(tid), /*prev_pid=*/-1);
    return_to_user(thread(tid).ctx.pc);
  } else {
    run_queue_.push_back(tid);
  }
  return pid;
}

int Kernel::spawn_thread(int pid, u64 entry, u64 stack_top, u64 arg) {
  Process& proc = process(pid);
  SEALPK_CHECK(!proc.exited);
  auto th = std::make_unique<Thread>();
  const int tid = next_tid_++;
  th->tid = tid;
  th->pid = pid;
  th->ctx.pc = entry;
  th->ctx.regs[isa::sp] = stack_top;
  th->ctx.regs[isa::a0] = arg;
  // The child inherits the spawner's PKR contents (like fork/clone
  // inheriting PKRU on x86).
  if (current_tid_ >= 0 && thread(current_tid_).pid == pid) {
    th->ctx.pkr = hart_.pkr().save();
    th->ctx.pkru = hart_.pkru().value();
  }
  proc.thread_tids.push_back(tid);
  threads_.emplace(tid, std::move(th));
  run_queue_.push_back(tid);
  return tid;
}

Process& Kernel::process(int pid) {
  auto it = processes_.find(pid);
  SEALPK_CHECK_MSG(it != processes_.end(), "unknown pid " << pid);
  return *it->second;
}

const Process& Kernel::process(int pid) const {
  auto it = processes_.find(pid);
  SEALPK_CHECK_MSG(it != processes_.end(), "unknown pid " << pid);
  return *it->second;
}

Thread& Kernel::thread(int tid) {
  auto it = threads_.find(tid);
  SEALPK_CHECK_MSG(it != threads_.end(), "unknown tid " << tid);
  return *it->second;
}

const Thread& Kernel::thread(int tid) const {
  auto it = threads_.find(tid);
  SEALPK_CHECK_MSG(it != threads_.end(), "unknown tid " << tid);
  return *it->second;
}

std::vector<int> Kernel::pids() const {
  std::vector<int> out;
  out.reserve(processes_.size());
  for (const auto& [pid, proc] : processes_) out.push_back(pid);
  return out;
}

bool Kernel::all_exited() const {
  for (const auto& [pid, proc] : processes_) {
    if (!proc->exited) return false;
  }
  return !processes_.empty();
}

size_t Kernel::runnable_threads() const {
  return run_queue_.size() + (current_tid_ >= 0 ? 1 : 0);
}

void Kernel::set_hw_pkey_perm(u32 pkey, u8 perm) {
  if (hart_.config().flavor == core::IsaFlavor::kSealPk) {
    hart_.pkr().set_perm(pkey, perm);
    // Mirror the kernel-path write into the running thread's PKR shadow so
    // the shadow stays a faithful scrub source.
    if (has_current_thread()) {
      auto& pkr = thread(current_tid_).ctx.pkr;
      const u32 row = hw::pkr_row_of(pkey);
      const u32 slot = hw::pkr_slot_of(pkey);
      pkr[row] = deposit(pkr[row], 2 * slot + 1, 2 * slot, perm);
    }
  } else {
    hart_.pkru().set_perm(pkey, (perm & 0b01) != 0, (perm & 0b10) != 0);
  }
}

void Kernel::save_current_context() {
  Thread& cur = thread(current_tid_);
  for (unsigned i = 0; i < 32; ++i) cur.ctx.regs[i] = hart_.reg(i);
  cur.ctx.pkr = hart_.pkr().save();
  cur.ctx.pkru = hart_.pkru().value();
  cur.ctx.seal_start = hart_.csrs().seal_start;
  cur.ctx.seal_end = hart_.csrs().seal_end;
}

void Kernel::restore_context(Thread& next, int prev_pid) {
  const auto& t = hart_.timing();
  hart_.add_cycles(t.context_switch_cycles);
  ++stats_.context_switches;

  if (hart_.config().flavor == core::IsaFlavor::kSealPk) {
    if (config_.save_pkr_on_switch) {
      // 32 rows saved + 32 restored (paper §III-B.2: < 1 % overhead).
      hart_.add_cycles(2 * hw::kPkrRows * t.pkr_row_swap_cycles);
      hart_.pkr().restore(next.ctx.pkr);
    }
  } else {
    hart_.add_cycles(2 * t.pkr_row_swap_cycles);  // single PKRU register
    hart_.pkru().set(next.ctx.pkru);
  }
  for (unsigned i = 0; i < 32; ++i) hart_.set_reg(i, next.ctx.regs[i]);
  hart_.csrs().seal_start = next.ctx.seal_start;
  hart_.csrs().seal_end = next.ctx.seal_end;

  if (next.pid != prev_pid) {
    if (prev_pid >= 0) {
      process(prev_pid).seal_hw = hart_.seal_unit().save();
    }
    Process& proc = process(next.pid);
    hart_.seal_unit().restore(proc.seal_hw);
    hart_.csrs().satp = proc.aspace->satp();
    hart_.flush_tlbs();
    hart_.add_cycles(t.tlb_flush_cycles);
  }
  current_tid_ = next.tid;
  if (recorder_ != nullptr) {
    recorder_->context_switch(hart_.instret(), hart_.cycles(),
                              static_cast<u32>(next.pid),
                              static_cast<u32>(next.tid));
  }
}

// Round-robin handoff from the current thread (which resumes at
// `resume_pc` when rescheduled) to the head of the run queue.
void Kernel::yield_to_next(u64 resume_pc) {
  Thread& cur = thread(current_tid_);
  const int prev_pid = cur.pid;
  save_current_context();
  cur.ctx.pc = resume_pc;
  run_queue_.push_back(current_tid_);
  const int next_tid = run_queue_.front();
  run_queue_.erase(run_queue_.begin());
  restore_context(thread(next_tid), prev_pid);
  return_to_user(thread(next_tid).ctx.pc);
}

void Kernel::return_to_user(u64 pc) {
  hart_.add_cycles(hart_.timing().trap_return_cycles);
  hart_.set_pc(pc);
  hart_.set_priv(core::Priv::kUser);
}

void Kernel::preempt() {
  if (run_queue_.empty() || current_tid_ < 0) return;
  // Timer interrupt: trap entry + schedule + return. The hart is between
  // instructions in U-mode, so the resume point is simply its current PC.
  hart_.add_cycles(hart_.timing().trap_enter_cycles);
  yield_to_next(hart_.pc());
}

void Kernel::handle_trap() {
  const auto cause = static_cast<core::TrapCause>(hart_.csrs().scause);
  switch (cause) {
    case core::TrapCause::kEcallFromU:
      do_syscall();
      return;
    case core::TrapCause::kLoadPageFault:
    case core::TrapCause::kStorePageFault:
    case core::TrapCause::kInstPageFault:
      handle_page_fault(cause);
      return;
    case core::TrapCause::kPkCamMiss:
      handle_cam_miss();
      return;
    case core::TrapCause::kMachineCheck:
      handle_machine_check();
      return;
    case core::TrapCause::kSealViolation:
      ++stats_.seal_violations;
      emit(obs::EventKind::kSealViolation,
           static_cast<u32>(hart_.csrs().stval & 0x3FF),
           hart_.csrs().sepc, 0);
      fatal_fault(cause);
      return;
    default:
      fatal_fault(cause);
      return;
  }
}

void Kernel::handle_page_fault(core::TrapCause cause) {
  ++stats_.page_faults;
  emit(obs::EventKind::kPageFault,
       (hart_.csrs().spkinfo >> 63) != 0
           ? static_cast<u32>(hart_.csrs().spkinfo & 0x3FF)
           : obs::kNoPkey,
       hart_.csrs().stval, static_cast<u64>(cause));
  hart_.add_cycles(hart_.timing().fault_handler_cycles);
  FaultRecord rec;
  rec.pid = thread(current_tid_).pid;
  rec.tid = current_tid_;
  rec.cause = cause;
  rec.addr = hart_.csrs().stval;
  rec.pc = hart_.csrs().sepc;
  // §III-B.2: the fault report is augmented with the pkey when the denial
  // came from the protection key rather than the PTE.
  if (cause != core::TrapCause::kInstPageFault &&
      (hart_.csrs().spkinfo >> 63) != 0) {
    rec.pkey_fault = true;
    rec.pkey = static_cast<u32>(hart_.csrs().spkinfo & 0x3FF);
  }
  hart_.csrs().spkinfo = 0;
  // Before treating the fault as the guest's fault, check whether corrupted
  // hardware state produced it: a PTE disagreeing with its VMA, a stale TLB
  // line, or a flipped PKR row. If repair changed anything, re-execute the
  // access instead of signalling.
  switch (try_fault_recovery(rec)) {
    case Recovery::kRecovered:
      ++stats_.spurious_fault_fixes;
      return_to_user(rec.pc);
      return;
    case Recovery::kKilled:
      return;
    case Recovery::kNone:
      break;
  }
  if (deliver_signal(rec)) {
    faults_.push_back(rec);
    return;
  }
  faults_.push_back(rec);
  sys_exit(-static_cast<i64>(cause));
}

// Inspects the machine state behind a page fault and repairs anything that
// disagrees with the kernel's software truth. Only fires when the owning
// VMA actually grants the attempted access — otherwise the fault is
// architecturally correct and must surface to the guest. In clean runs
// nothing ever mismatches, so the checks below are read-only and the
// outcome is always kNone.
Kernel::Recovery Kernel::try_fault_recovery(const FaultRecord& rec) {
  if (!has_current_thread()) return Recovery::kNone;
  AddressSpace& as = current_aspace();
  const Vma* vma = as.find_vma(rec.addr);
  if (vma == nullptr) return Recovery::kNone;
  const bool want_exec = rec.cause == core::TrapCause::kInstPageFault;
  const bool want_write = rec.cause == core::TrapCause::kStorePageFault;
  const u64 need =
      want_exec ? prot::kExec : (want_write ? prot::kWrite : prot::kRead);
  if ((vma->prot & need) == 0) return Recovery::kNone;

  bool changed = false;
  // 1. Leaf PTE vs. VMA (a flipped pkey or permission bit in DRAM).
  if (as.repair_page(rec.addr)) {
    ++stats_.pte_repairs;
    hart_.add_cycles(hart_.timing().pte_update_cycles);
    changed = true;
  }
  // 2. Cached translation vs. the (now repaired) live PTE.
  const auto leaf = as.leaf_pte(rec.addr);
  if (leaf.has_value()) {
    const u64 vpn = mem::svxx::vpn_of(rec.addr, as.levels());
    const auto cached =
        want_exec ? hart_.itlb().peek(vpn) : hart_.dtlb().peek(vpn);
    if (cached.has_value()) {
      const u64 pte = *leaf;
      const bool same =
          cached->ppn == mem::pte::ppn_of(pte) &&
          cached->r == ((pte & mem::pte::kR) != 0) &&
          cached->w == ((pte & mem::pte::kW) != 0) &&
          cached->x == ((pte & mem::pte::kX) != 0) &&
          cached->user == ((pte & mem::pte::kU) != 0) &&
          (want_exec ||
           cached->pkey == mem::pte::pkey_of(pte, as.pkey_bits())) &&
          // The TLB's dirty bit may legitimately lag behind the PTE's D
          // (a flush-then-load refill), never the other way around.
          !(cached->dirty && (pte & mem::pte::kD) == 0);
      if (!same) {
        recover_tlb_flush();
        changed = true;
      }
    }
  }
  // 3. On a pkey denial, the PKR row itself may be corrupt.
  if (rec.pkey_fault &&
      hart_.config().flavor == core::IsaFlavor::kSealPk) {
    const u32 row = hw::pkr_row_of(rec.pkey);
    if (config_.save_pkr_on_switch) {
      const u64 shadow = thread(current_tid_).ctx.pkr[row];
      if (!hart_.pkr().parity_ok(row) ||
          hart_.pkr().peek_row(row) != shadow) {
        hart_.pkr().scrub_row(row, shadow);
        ++stats_.pkr_scrubs;
        changed = true;
      }
    } else if (!hart_.pkr().parity_ok(row)) {
      // No trustworthy shadow to scrub from: unrecoverable corruption.
      kill_current(kExitMachineCheck, KillOrigin::kMachineCheck);
      return Recovery::kKilled;
    }
  }
  return changed ? Recovery::kRecovered : Recovery::kNone;
}

void Kernel::fatal_fault(core::TrapCause cause) {
  hart_.add_cycles(hart_.timing().fault_handler_cycles);
  FaultRecord rec;
  rec.pid = thread(current_tid_).pid;
  rec.tid = current_tid_;
  rec.cause = cause;
  rec.addr = hart_.csrs().stval;
  rec.pc = hart_.csrs().sepc;
  if (cause == core::TrapCause::kSealViolation) {
    rec.pkey_fault = true;
    rec.pkey = static_cast<u32>(hart_.csrs().stval & 0x3FF);
    // Seal violations are SEGV-class and deliverable like page faults.
    if (deliver_signal(rec)) {
      faults_.push_back(rec);
      return;
    }
  }
  faults_.push_back(rec);
  sys_exit(-static_cast<i64>(cause));
}

// Redirects the faulting thread into its process's registered handler.
// Returns false when there is no handler or the thread double-faulted.
bool Kernel::deliver_signal(FaultRecord& rec) {
  Thread& cur = thread(current_tid_);
  Process& proc = current_process();
  if (proc.signal_handler == 0 || cur.in_signal) return false;
  // Park the interrupted context (registers + the faulting PC).
  for (unsigned i = 0; i < 32; ++i) cur.signal_saved.regs[i] = hart_.reg(i);
  cur.signal_saved.pc = hart_.csrs().sepc;
  cur.in_signal = true;
  rec.delivered = true;
  // Enter the handler: siginfo in a0-a2, fresh red zone under sp, ra = 0
  // so a plain `ret` (instead of sigreturn) double-faults and kills.
  hart_.set_reg(isa::a0, static_cast<u64>(rec.cause));
  hart_.set_reg(isa::a1, rec.addr);
  hart_.set_reg(isa::a2,
                rec.pkey_fault ? ((u64{1} << 63) | rec.pkey) : 0);
  hart_.set_reg(isa::ra, 0);
  hart_.set_reg(isa::sp, align_down(hart_.reg(isa::sp) - 256, 16));
  hart_.add_cycles(hart_.timing().trap_enter_cycles);  // frame setup
  return_to_user(proc.signal_handler);
  return true;
}

void Kernel::sys_sigreturn(u64 skip) {
  Thread& cur = thread(current_tid_);
  if (!cur.in_signal) {
    // sigreturn outside a handler is a guest bug: kill, like Linux would.
    sys_exit(-static_cast<i64>(core::TrapCause::kIllegalInst));
    return;
  }
  cur.in_signal = false;
  for (unsigned i = 0; i < 32; ++i) {
    hart_.set_reg(i, cur.signal_saved.regs[i]);
  }
  return_to_user(cur.signal_saved.pc + (skip != 0 ? 4 : 0));
}

void Kernel::handle_cam_miss() {
  const u32 pkey = static_cast<u32>(hart_.csrs().stval & 0x3FF);
  const auto range = current_keys().perm_seal_range(pkey);
  if (!range.has_value()) {
    // SealReg says sealed but the kernel has no range on file — treat as a
    // violation (cannot legitimately happen through the syscall interface).
    fatal_fault(core::TrapCause::kSealViolation);
    return;
  }
  hart_.add_cycles(hart_.timing().cam_refill_handler_cycles);
  if (config_.cam_refill_drop && config_.cam_refill_drop()) {
    // Injected drop: the handler "loses" the refill; the re-executed WRPKR
    // misses again and retries. A permanent storm is the watchdog's job.
    ++stats_.cam_refills_dropped;
    return_to_user(hart_.csrs().sepc);
    return;
  }
  ++stats_.cam_refills;
  emit(obs::EventKind::kCamRefill, pkey, range->start, range->end);
  hart_.seal_unit().refill(pkey, range->start, range->end);
  if (config_.cam_refill_dup && config_.cam_refill_dup()) {
    // Injected duplicate: the entry lands a second time in the FIFO slot,
    // wasting a CAM line until the auditor dedups it.
    ++stats_.cam_refills_duplicated;
    hart_.seal_unit().refill_duplicate(pkey, range->start, range->end);
  }
  // Re-execute the faulting WRPKR.
  return_to_user(hart_.csrs().sepc);
}

void Kernel::handle_machine_check() {
  ++stats_.machine_checks;
  hart_.add_cycles(hart_.timing().fault_handler_cycles);
  if (!has_current_thread()) return;
  const u64 resume = hart_.csrs().sepc;
  bool unrecoverable = false;
  scrub_pkr_from_shadow(&unrecoverable);
  if (unrecoverable) {
    kill_current(kExitMachineCheck, KillOrigin::kMachineCheck);
    return;
  }
  // Whatever raised the check may have left stale translations behind;
  // flush-and-rewalk restores TLB/PTE coherence wholesale.
  recover_tlb_flush();
  return_to_user(resume);
}

u64 Kernel::scrub_pkr_from_shadow(bool* unrecoverable) {
  if (unrecoverable != nullptr) *unrecoverable = false;
  if (hart_.config().flavor != core::IsaFlavor::kSealPk) return 0;
  // Without PKR save/restore on switch the per-thread shadow does not track
  // the shared hardware rows, so it is not a valid scrub source.
  const bool trusted = config_.save_pkr_on_switch && has_current_thread();
  u64 scrubbed = 0;
  for (u32 row = 0; row < hw::kPkrRows; ++row) {
    const bool parity_bad = !hart_.pkr().parity_ok(row);
    if (trusted) {
      const u64 shadow = thread(current_tid_).ctx.pkr[row];
      if (parity_bad || hart_.pkr().peek_row(row) != shadow) {
        hart_.pkr().scrub_row(row, shadow);
        hart_.add_cycles(hart_.timing().pkr_row_swap_cycles);
        ++stats_.pkr_scrubs;
        ++scrubbed;
      }
    } else if (parity_bad && unrecoverable != nullptr) {
      *unrecoverable = true;
    }
  }
  return scrubbed;
}

void Kernel::recover_tlb_flush() {
  hart_.flush_tlbs();
  hart_.add_cycles(hart_.timing().tlb_flush_cycles);
  ++stats_.tlb_flush_recoveries;
}

u64 Kernel::repair_ptes(int pid) {
  if (!has_process(pid)) return 0;
  Process& proc = process(pid);
  u64 repaired = 0;
  std::vector<u64> pages;
  for (const auto& [start, vma] : proc.aspace->vmas()) {
    for (u64 page = vma.start; page < vma.end; page += mem::kPageSize) {
      pages.push_back(page);
    }
  }
  for (const u64 page : pages) {
    if (proc.aspace->repair_page(page)) ++repaired;
  }
  if (repaired > 0) {
    stats_.pte_repairs += repaired;
    hart_.add_cycles(repaired * hart_.timing().pte_update_cycles);
    // Drop any cached copies of the bad translations.
    if (has_current_thread() && thread(current_tid_).pid == pid) {
      recover_tlb_flush();
    }
  }
  return repaired;
}

u64 Kernel::reconcile_key_counters(int pid) {
  if (!has_process(pid)) return 0;
  if (hart_.config().flavor != core::IsaFlavor::kSealPk) return 0;
  Process& proc = process(pid);
  // Recompute the true per-pkey page counts from the VMAs (the counters'
  // source of truth) and force the key manager to match.
  std::map<u32, u64> actual;
  for (const auto& [start, vma] : proc.aspace->vmas()) {
    actual[vma.pkey] += vma.pages();
  }
  u64 fixed = 0;
  for (u32 k = 0; k < proc.keys->num_keys(); ++k) {
    const auto it = actual.find(k);
    const u64 want = it == actual.end() ? 0 : it->second;
    if (proc.keys->page_count(k) != want) {
      proc.keys->reconcile_page_count(k, want);
      ++fixed;
    }
  }
  stats_.key_counter_repairs += fixed;
  return fixed;
}

u64 Kernel::scrub_run_queue() {
  const size_t before = run_queue_.size();
  run_queue_.erase(
      std::remove_if(run_queue_.begin(), run_queue_.end(),
                     [this](int tid) {
                       return !has_thread(tid) || thread(tid).exited;
                     }),
      run_queue_.end());
  const u64 removed = before - run_queue_.size();
  stats_.run_queue_scrubs += removed;
  return removed;
}

u64 Kernel::dedup_cam() {
  auto& unit = hart_.seal_unit();
  u64 dropped = 0;
  for (size_t i = 0; i < hw::kPkCamEntries; ++i) {
    const auto* entry = unit.cam_slot(i);
    if (entry != nullptr && unit.cam_count_of(entry->pkey) > 1) {
      dropped += unit.drop_duplicates(entry->pkey);
    }
  }
  stats_.cam_dedups += dropped;
  return dropped;
}

u64 Kernel::repair_vkeys(int pid) {
  Process& proc = process(pid);
  if (!proc.vkeys) return 0;
  const AddressSpace& as = *proc.aspace;
  // The PTEs (kept coherent with the VMAs by protect_pkey) are the ground
  // truth: a vkey's pages stay keyed to its physical key until freed or
  // drained, so the first page of any group names the key the table should
  // be recording.
  std::vector<std::pair<u64, u32>> fixes;
  for (const auto& [vkey, entry] : proc.vkeys->entries()) {
    if (entry.state == mpk::VkeyState::kUnmapped || entry.groups.empty()) {
      continue;
    }
    const auto leaf = as.leaf_pte(entry.groups.front().addr);
    if (!leaf.has_value() || !mem::pte::valid(*leaf)) continue;
    const u32 truth = mem::pte::pkey_of(*leaf, as.pkey_bits());
    if (truth != entry.phys) fixes.emplace_back(vkey, truth);
  }
  for (const auto& [vkey, truth] : fixes) {
    proc.vkeys->force_phys(vkey, truth);
  }
  if (!fixes.empty()) {
    proc.vkeys->rebuild_pool();
    stats_.vkey_repairs += fixes.size();
  }
  return fixes.size();
}

void Kernel::kill_current(i64 code, KillOrigin origin) {
  if (!has_current_thread()) return;  // nothing to kill: don't count one
  if (origin == KillOrigin::kMachineCheck && config_.machine_check_escalation &&
      config_.machine_check_escalation()) {
    // The machine claimed the failure for snapshot rollback: the process
    // survives, so no kill is counted. Whatever half-handled state the
    // kernel is in right now is irrelevant — the rollback overwrites it.
    return;
  }
  if (origin == KillOrigin::kMachineCheck) {
    ++stats_.machine_check_kills;
  } else {
    ++stats_.watchdog_kills;
  }
  emit(obs::EventKind::kProcessKill, obs::kNoPkey, static_cast<u64>(code),
       static_cast<u64>(origin));
  sys_exit(code);
}

void Kernel::do_syscall() {
  ++stats_.syscalls;
  const u64 nr = hart_.reg(isa::a7);
  emit(obs::EventKind::kSyscall, obs::kNoPkey, nr, 0);
  ++stats_.syscall_counts[nr];
  hart_.add_cycles(hart_.timing().syscall_dispatch_cycles);
  const u64 a0 = hart_.reg(isa::a0);
  const u64 a1 = hart_.reg(isa::a1);
  const u64 a2 = hart_.reg(isa::a2);
  const u64 a3 = hart_.reg(isa::a3);
  const u64 resume_pc = hart_.csrs().sepc + 4;

  i64 ret = 0;
  switch (nr) {
    case sys::kExit:
      sys_exit(static_cast<i64>(a0));
      return;
    case sys::kSchedYield: {
      hart_.set_reg(isa::a0, 0);
      if (!run_queue_.empty()) {
        yield_to_next(resume_pc);
      } else {
        return_to_user(resume_pc);
      }
      return;
    }
    case sys::kGetTid:
      ret = current_tid_;
      break;
    case sys::kWrite:
      ret = sys_write(a0, a1, a2);
      break;
    case sys::kMmap:
      ret = sys_mmap(a0, a1, a2);
      break;
    case sys::kMunmap:
      ret = sys_munmap(a0, a1);
      break;
    case sys::kMprotect:
      ret = sys_mprotect(a0, a1, a2);
      break;
    case sys::kPkeyMprotect:
      ret = sys_pkey_mprotect(a0, a1, a2, a3);
      break;
    case sys::kPkeyAlloc:
      ret = sys_pkey_alloc(a0, a1);
      break;
    case sys::kPkeyFree:
      ret = sys_pkey_free(a0);
      break;
    case sys::kPkeySeal:
      ret = sys_pkey_seal(a0, a1, a2);
      break;
    case sys::kPkeyPermSeal:
      ret = sys_pkey_perm_seal(a0);
      break;
    case sys::kClone:
      ret = sys_clone(a0, a1, a2);
      break;
    case sys::kReport:
      reports_.push_back(a0);
      break;
    case sys::kVaultSeal:
      ret = sys_vault_commit(a0, a1, /*reseal=*/false);
      break;
    case sys::kVaultReseal:
      ret = sys_vault_commit(a0, a1, /*reseal=*/true);
      break;
    case sys::kVaultUnseal:
      ret = sys_vault_unseal(a0, a1, a2);
      break;
    case sys::kVpkeyAlloc:
      ret = sys_vpkey_alloc(a0, a1);
      break;
    case sys::kVpkeyFree:
      ret = sys_vpkey_free(a0);
      break;
    case sys::kVpkeyMprotect:
      ret = sys_vpkey_mprotect(a0, a1, a2, a3);
      break;
    case sys::kVpkeySet:
      ret = sys_vpkey_set(a0, a1);
      break;
    case sys::kMark: {
      MarkRecord m;
      m.kind = a0;
      m.arg0 = a1;
      m.arg1 = a2;
      m.pkey = static_cast<u32>(a3);
      m.tid = current_tid_;
      m.instret = hart_.instret();
      m.cycles = hart_.cycles();
      marks_.push_back(m);
      obs::EventKind kind = obs::EventKind::kRequestDisposition;
      switch (a0) {
        case mark::kGateEnter: kind = obs::EventKind::kGateEnter; break;
        case mark::kGateExit: kind = obs::EventKind::kGateExit; break;
        case mark::kDisposition:
          kind = obs::EventKind::kRequestDisposition;
          break;
        case mark::kQuarantine: kind = obs::EventKind::kQuarantine; break;
        case mark::kVaultIntent: kind = obs::EventKind::kVaultIntent; break;
        case mark::kVaultCommit: kind = obs::EventKind::kVaultCommit; break;
        case mark::kVaultUnseal: kind = obs::EventKind::kVaultUnseal; break;
        case mark::kVaultDenied: kind = obs::EventKind::kVaultDenied; break;
        default:
          ret = err::kInval;
          break;
      }
      if (ret == 0) emit(kind, static_cast<u32>(a3), a1, a2);
      break;
    }
    case sys::kSigaction:
      current_process().signal_handler = a0;
      break;
    case sys::kSigreturn:
      sys_sigreturn(a0);
      return;
    default:
      ret = err::kNoSys;
      break;
  }
  hart_.set_reg(isa::a0, static_cast<u64>(ret));
  return_to_user(resume_pc);
}

i64 Kernel::sys_write(u64 fd, u64 buf, u64 len) {
  if (fd != 1 && fd != 2) return -9;  // EBADF
  if (len > kMaxWriteLen) return err::kInval;
  // The console is world-readable output: refuse to copy from any page the
  // caller's own live PKR cannot read. Without this check write(2) is an
  // exfiltration channel out of read-disabled (e.g. vault) domains — the
  // kernel would read bytes on the guest's behalf that the guest's loads
  // would fault on.
  if (len > 0 && hart_.config().flavor == core::IsaFlavor::kSealPk) {
    const u64 first = align_down(buf, mem::kPageSize);
    for (u64 page = first; page < buf + len; page += mem::kPageSize) {
      const std::optional<u32> pkey = current_aspace().page_pkey(page);
      if (pkey.has_value() && *pkey != 0 &&
          (hart_.pkr().peek_perm(*pkey) & 0b10) != 0) {
        return err::kAcces;
      }
    }
  }
  std::vector<u8> bytes(len);
  if (!current_aspace().copy_in(buf, bytes.data(), len)) return err::kFault;
  console_.append(reinterpret_cast<const char*>(bytes.data()), len);
  hart_.add_cycles(len);  // copy_{from}_user cost
  return static_cast<i64>(len);
}

// --- sealed-storage vault (src/vault, DESIGN.md §14) -------------------------

void Kernel::vault_mark(u64 kind, u64 arg0, u64 arg1, u32 pkey) {
  MarkRecord m;
  m.kind = kind;
  m.arg0 = arg0;
  m.arg1 = arg1;
  m.pkey = pkey;
  m.tid = current_tid_;
  m.instret = hart_.instret();
  m.cycles = hart_.cycles();
  marks_.push_back(m);
  obs::EventKind ek = obs::EventKind::kVaultDenied;
  switch (kind) {
    case mark::kVaultCommit: ek = obs::EventKind::kVaultCommit; break;
    case mark::kVaultUnseal: ek = obs::EventKind::kVaultUnseal; break;
    default: break;
  }
  emit(ek, pkey, arg0, arg1);
}

i64 Kernel::sys_vault_commit(u64 vault_base, u64 intent_off, bool reseal) {
  if (hart_.config().flavor != core::IsaFlavor::kSealPk) return err::kNoSys;
  hart_.add_cycles(hart_.timing().pkey_bookkeeping_cycles);
  AddressSpace& as = current_aspace();
  u8 sb[vault::kSuperblockSize];
  if (!as.copy_in(vault_base, sb, vault::kSuperblockSize)) return err::kFault;
  const std::optional<vault::Geometry> geo =
      vault::parse_superblock(sb, vault::kSuperblockSize);
  if (!geo) return err::kInval;
  const Vma* vma = as.find_vma(vault_base);
  if (vma == nullptr || vma->pkey != geo->vault_pkey ||
      vault_base + geo->total_len() > vma->end) {
    return err::kInval;
  }
  const u32 vk = static_cast<u32>(geo->vault_pkey);
  // The vault domain itself must be fully sealed before the kernel will
  // notarise anything into it: an unsealed "vault" offers no guarantee the
  // guest can't rewrite history behind the journal's back.
  if (!current_keys().domain_sealed(vk) || !current_keys().pages_sealed(vk)) {
    return err::kPerm;
  }

  // Intent records live at even journal indices; the kernel owns the odd
  // slot right after each one.
  if (intent_off < geo->journal_off ||
      (intent_off - geo->journal_off) % vault::kRecordSize != 0) {
    return err::kInval;
  }
  const u64 index = (intent_off - geo->journal_off) / vault::kRecordSize;
  if ((index % 2) != 0 || index + 1 >= geo->journal_cap) return err::kInval;

  u8 rb[vault::kRecordSize];
  if (!as.copy_in(vault_base + intent_off, rb, vault::kRecordSize)) {
    return err::kFault;
  }
  const vault::Record intent = vault::parse_record(rb);
  if (!intent.present) return err::kInval;
  if (!intent.valid) {
    // A torn or corrupted intent is detected — and refused — here, never
    // silently committed.
    ++vault_stats_.corruption_detected;
    return err::kInval;
  }
  if (intent.type != (reseal ? vault::kRecordIntentReseal
                             : vault::kRecordIntentSeal)) {
    return err::kInval;
  }
  if (intent.slot >= geo->n_slots || intent.len == 0 ||
      intent.len > geo->slot_size || (intent.len % 8) != 0) {
    return err::kInval;
  }

  // Ownership gate: the caller's *live* PKR must grant read+write on the
  // vault's owner domain. A handler running with the owner key closed (or
  // a foreign process) is refused and the refusal is notarised.
  if (hart_.pkr().peek_perm(static_cast<u32>(geo->owner_pkey)) !=
      pkeyperm::kRw) {
    ++vault_stats_.denials;
    vault_mark(mark::kVaultDenied, intent.id, static_cast<u64>(-err::kAcces),
               vk);
    return err::kAcces;
  }

  std::vector<u8> region(geo->total_len());
  if (!as.copy_in(vault_base, region.data(), region.size())) {
    return err::kFault;
  }
  hart_.add_cycles(region.size() / 8);  // journal scan + checksum cost
  const vault::Ledger ledger = vault::replay(region.data(), region.size());
  const auto live = ledger.live.find(intent.id);
  if (!reseal && live != ledger.live.end()) return err::kBusy;
  if (reseal) {
    if (live == ledger.live.end()) return err::kInval;
    // Copy-on-write: a reseal must land in a fresh slot with a newer
    // sequence number, so a crash mid-payload-write can never tear the
    // still-committed previous version.
    if (live->second.slot == intent.slot || intent.seq <= live->second.seq) {
      return err::kInval;
    }
  }
  for (const auto& [id, b] : ledger.live) {
    if (b.slot == intent.slot) return err::kBusy;  // slot holds live data
  }
  // The kernel's half of the record pair must still be virgin.
  const vault::Record existing =
      vault::parse_record(region.data() + geo->record_off(index + 1));
  if (existing.present) return err::kBusy;

  // The payload must already be fully in place and match the intent's
  // checksum — the commit record is the durability point, so nothing may
  // be outstanding once it exists.
  if (checksum64(region.data() + geo->slot_off(intent.slot), intent.len) !=
      intent.payload_fnv) {
    ++vault_stats_.corruption_detected;
    return err::kBadMsg;
  }

  const std::vector<u8> commit =
      vault::record_bytes(vault::kRecordCommit, intent.id, intent.slot,
                          intent.len, intent.seq, intent.payload_fnv);
  if (!as.copy_out(vault_base + geo->record_off(index + 1), commit.data(),
                   commit.size())) {
    return err::kFault;
  }
  if (reseal) {
    ++vault_stats_.reseals;
  } else {
    ++vault_stats_.seals;
  }
  vault_mark(mark::kVaultCommit, intent.id, intent.seq, vk);
  return 0;
}

i64 Kernel::sys_vault_unseal(u64 vault_base, u64 id, u64 dst) {
  if (hart_.config().flavor != core::IsaFlavor::kSealPk) return err::kNoSys;
  hart_.add_cycles(hart_.timing().pkey_bookkeeping_cycles);
  AddressSpace& as = current_aspace();
  u8 sb[vault::kSuperblockSize];
  if (!as.copy_in(vault_base, sb, vault::kSuperblockSize)) return err::kFault;
  const std::optional<vault::Geometry> geo =
      vault::parse_superblock(sb, vault::kSuperblockSize);
  if (!geo) return err::kInval;
  const Vma* vma = as.find_vma(vault_base);
  if (vma == nullptr || vma->pkey != geo->vault_pkey ||
      vault_base + geo->total_len() > vma->end) {
    return err::kInval;
  }
  const u32 vk = static_cast<u32>(geo->vault_pkey);
  if (!current_keys().domain_sealed(vk) || !current_keys().pages_sealed(vk)) {
    return err::kPerm;
  }
  if (hart_.pkr().peek_perm(static_cast<u32>(geo->owner_pkey)) !=
      pkeyperm::kRw) {
    ++vault_stats_.denials;
    vault_mark(mark::kVaultDenied, id, static_cast<u64>(-err::kAcces), vk);
    return err::kAcces;
  }

  std::vector<u8> region(geo->total_len());
  if (!as.copy_in(vault_base, region.data(), region.size())) {
    return err::kFault;
  }
  hart_.add_cycles(region.size() / 8);
  // Newest valid commit for `id` (structural scan; payload verified below
  // so a checksum failure is reported as corruption, not as "absent").
  bool found = false;
  vault::Record best;
  for (u64 i = 1; i < geo->journal_cap; i += 2) {
    const vault::Record r =
        vault::parse_record(region.data() + geo->record_off(i));
    if (!r.present || !r.valid || r.type != vault::kRecordCommit) continue;
    if (r.id != id || r.slot >= geo->n_slots || r.len > geo->slot_size) {
      continue;
    }
    if (!found || r.seq >= best.seq) {
      best = r;
      found = true;
    }
  }
  if (!found) return err::kInval;
  if (checksum64(region.data() + geo->slot_off(best.slot), best.len) !=
      best.payload_fnv) {
    // Detected before serving: a corrupted committed payload is never
    // handed out.
    ++vault_stats_.corruption_detected;
    return err::kBadMsg;
  }

  // The destination must sit entirely inside the owner domain and be
  // writable under the caller's live PKR: secrets never leave the
  // {vault, owner} domain pair through this syscall.
  const u64 first = align_down(dst, mem::kPageSize);
  for (u64 page = first; page < dst + best.len; page += mem::kPageSize) {
    const std::optional<u32> pkey = as.page_pkey(page);
    if (!pkey.has_value()) return err::kFault;
    if (*pkey != geo->owner_pkey ||
        (hart_.pkr().peek_perm(*pkey) & 0b01) != 0) {
      return err::kAcces;
    }
  }
  if (!as.copy_out(dst, region.data() + geo->slot_off(best.slot), best.len)) {
    return err::kFault;
  }
  hart_.add_cycles(best.len);  // copy_to_user cost
  ++vault_stats_.unseals;
  vault_mark(mark::kVaultUnseal, id, best.len, vk);
  return static_cast<i64>(best.len);
}

// addr == 0 lets the kernel pick from the mmap region; a non-zero addr is
// honoured exactly (MAP_FIXED-style) or fails with EINVAL on overlap.
i64 Kernel::sys_mmap(u64 addr, u64 len, u64 prot) {
  const auto& t = hart_.timing();
  const i64 rc = current_aspace().map(addr, len, prot, 0, page_delta_hook());
  if (rc >= 0) {
    const u64 pages = align_up(len, mem::kPageSize) >> mem::kPageShift;
    hart_.add_cycles(t.vma_lookup_cycles + pages * t.pte_update_cycles);
    stats_.pte_pages_updated += pages;
  }
  return rc;
}

i64 Kernel::sys_munmap(u64 addr, u64 len) {
  const auto& t = hart_.timing();
  const i64 rc = current_aspace().unmap(addr, len, page_delta_hook());
  if (rc >= 0) {
    const u64 pages = align_up(len, mem::kPageSize) >> mem::kPageShift;
    hart_.add_cycles(t.vma_lookup_cycles + pages * t.pte_update_cycles +
                     t.tlb_flush_cycles);
    hart_.flush_tlbs();
  }
  return rc;
}

i64 Kernel::sys_mprotect(u64 addr, u64 len, u64 prot) {
  const auto& t = hart_.timing();
  KeyManager& keys = current_keys();
  const i64 pages = current_aspace().protect(
      addr, len, prot, [&keys](u32 pkey) { return keys.domain_sealed(pkey); });
  hart_.add_cycles(t.vma_lookup_cycles);
  if (pages >= 0) {
    hart_.add_cycles(static_cast<u64>(pages) * t.pte_update_cycles +
                     t.tlb_flush_cycles +
                     current_aspace().pages_mapped() *
                         t.mprotect_rss_cycles_per_page);
    stats_.pte_pages_updated += static_cast<u64>(pages);
    hart_.flush_tlbs();
    return 0;
  }
  return pages;
}

i64 Kernel::sys_pkey_mprotect(u64 addr, u64 len, u64 prot, u64 pkey) {
  const auto& t = hart_.timing();
  KeyManager& keys = current_keys();
  if (!keys.assignable(static_cast<u32>(pkey))) return err::kInval;
  const i64 pages = current_aspace().protect_pkey(
      addr, len, prot, static_cast<u32>(pkey),
      [&keys](u32 k) { return keys.domain_sealed(k); },
      [&keys](u32 k) { return keys.pages_sealed(k); }, page_delta_hook());
  hart_.add_cycles(t.vma_lookup_cycles);
  if (pages >= 0) {
    hart_.add_cycles(static_cast<u64>(pages) * t.pte_update_cycles +
                     t.tlb_flush_cycles);
    stats_.pte_pages_updated += static_cast<u64>(pages);
    hart_.flush_tlbs();
    emit(obs::EventKind::kPkeyMprotect, static_cast<u32>(pkey), addr,
         static_cast<u64>(pages));
    return 0;
  }
  return pages;
}

i64 Kernel::sys_pkey_alloc(u64 flags, u64 init_perm) {
  if (flags != 0 || init_perm > 3) return err::kInval;
  hart_.add_cycles(hart_.timing().pkey_bookkeeping_cycles);
  const i64 pkey = current_keys().alloc();
  if (pkey >= 0) {
    set_hw_pkey_perm(static_cast<u32>(pkey), static_cast<u8>(init_perm));
    emit(obs::EventKind::kPkeyAlloc, static_cast<u32>(pkey), init_perm, 0);
  }
  return pkey;
}

i64 Kernel::sys_pkey_free(u64 pkey) {
  hart_.add_cycles(hart_.timing().pkey_bookkeeping_cycles);
  KeyManager& keys = current_keys();
  const i64 rc = keys.free_key(static_cast<u32>(pkey));
  if (rc != 0) return rc;
  emit(obs::EventKind::kPkeyFree, static_cast<u32>(pkey),
       keys.page_count(static_cast<u32>(pkey)), 0);
  if (hart_.config().flavor == core::IsaFlavor::kSealPk) {
    // Lazy de-allocation (§III-B.1): clear the key's PKR permission to
    // (0,0) so the page-table permissions alone govern its orphan pages,
    // in the current thread and in every sibling's saved PKR.
    set_hw_pkey_perm(static_cast<u32>(pkey), 0);
    Process& proc = current_process();
    for (const int tid : proc.thread_tids) {
      Thread& th = thread(tid);
      const u32 row = hw::pkr_row_of(static_cast<u32>(pkey));
      const u32 slot = hw::pkr_slot_of(static_cast<u32>(pkey));
      th.ctx.pkr[row] =
          deposit(th.ctx.pkr[row], 2 * slot + 1, 2 * slot, 0);
    }
    // Immediate full release: when no page carries the key, free_key()
    // scrubbed the bookkeeping without going through the lazy quarantine,
    // so the drained hook never fires. Dissolve the hardware seal state
    // here too, or a future pkey_alloc would hand out a key whose SealReg
    // bit and PK-CAM entry still belong to the previous owner (found by
    // the model checker; replayed in tests/model_traces/).
    if (!keys.dirty(static_cast<u32>(pkey))) {
      hart_.seal_unit().clear_key(static_cast<u32>(pkey));
    }
  }
  // The Intel-MPK flavour intentionally leaves PKRU and the PTEs untouched,
  // reproducing Linux's eager-free semantics (the use-after-free bug).
  return 0;
}

i64 Kernel::sys_pkey_seal(u64 pkey, u64 seal_domain, u64 seal_page) {
  hart_.add_cycles(hart_.timing().pkey_bookkeeping_cycles);
  const i64 rc = current_keys().seal(static_cast<u32>(pkey),
                                     seal_domain != 0, seal_page != 0);
  if (rc == 0) {
    emit(obs::EventKind::kPkeySeal, static_cast<u32>(pkey), seal_domain,
         seal_page);
  }
  return rc;
}

i64 Kernel::sys_pkey_perm_seal(u64 pkey) {
  const auto& t = hart_.timing();
  hart_.add_cycles(t.pkey_bookkeeping_cycles);
  const SealRange range{hart_.csrs().seal_start, hart_.csrs().seal_end};
  const i64 rc =
      current_keys().set_perm_seal(static_cast<u32>(pkey), range);
  if (rc != 0) return rc;
  // Commit via the supervisor-only custom instruction path (spk.range +
  // spk.seal) — modelled as direct unit updates with the same cycle cost.
  hart_.add_cycles(2 * t.rocc_cycles);
  hart_.seal_unit().set_sealed(static_cast<u32>(pkey));
  hart_.seal_unit().refill(static_cast<u32>(pkey), range.start, range.end);
  emit(obs::EventKind::kPkeyPermSeal, static_cast<u32>(pkey), range.start,
       range.end);
  return 0;
}

// Maps the vkey table's side-effect port onto the kernel's real mechanisms,
// with the same cycle charging as the raw pkey syscalls: rekey() is a
// pkey_mprotect minus its per-call TLB flush (the table batches those),
// acquire_phys() is a pkey_alloc, set_perm() is the shared PKR write path.
struct VkeyKernelOps final : mpk::VkeyOps {
  Kernel& k;
  explicit VkeyKernelOps(Kernel& kernel) : k(kernel) {}

  i64 acquire_phys() override {
    k.hart_.add_cycles(k.hart_.timing().pkey_bookkeeping_cycles);
    return k.current_keys().alloc();
  }

  i64 rekey(u64 addr, u64 len, u64 prot, u32 pkey) override {
    KeyManager& keys = k.current_keys();
    const i64 pages = k.current_aspace().protect_pkey(
        addr, len, prot, pkey,
        [&keys](u32 key) { return keys.domain_sealed(key); },
        [&keys](u32 key) { return keys.pages_sealed(key); },
        k.page_delta_hook());
    k.hart_.add_cycles(k.hart_.timing().vma_lookup_cycles);
    if (pages >= 0) {
      k.hart_.add_cycles(static_cast<u64>(pages) *
                         k.hart_.timing().pte_update_cycles);
      k.stats_.pte_pages_updated += static_cast<u64>(pages);
    }
    return pages;
  }

  void set_perm(u32 pkey, u8 perm) override { k.set_hw_pkey_perm(pkey, perm); }

  void flush_tlb() override {
    k.hart_.add_cycles(k.hart_.timing().tlb_flush_cycles);
    k.hart_.flush_tlbs();
  }

  void note_map(u64 vkey, u32 phys, u64 pages) override {
    k.emit(obs::EventKind::kVkeyMap, phys, vkey, pages);
  }

  void note_evict(u64 vkey, u32 phys, bool drained) override {
    k.emit(obs::EventKind::kVkeyEvict, phys, vkey, drained ? 1 : 0);
  }

  void note_sync(u64 pages, u64 vkeys) override {
    k.emit(obs::EventKind::kVkeySync, obs::kNoPkey, pages, vkeys);
  }
};

mpk::VkeyTable& Kernel::ensure_vkeys(Process& proc) {
  if (!proc.vkeys) {
    mpk::VkeyTableConfig cfg;
    cfg.mru_slots = config_.vkey_mru_slots;
    cfg.lazy_sync = config_.vkey_lazy_sync;
    proc.vkeys = std::make_unique<mpk::VkeyTable>(cfg);
  }
  return *proc.vkeys;
}

i64 Kernel::sys_vpkey_alloc(u64 flags, u64 init_perm) {
  if (hart_.config().flavor != core::IsaFlavor::kSealPk) return err::kNoSys;
  hart_.add_cycles(hart_.timing().pkey_bookkeeping_cycles);
  // Pure metadata: the physical binding happens at first vpkey_set.
  return ensure_vkeys(current_process()).alloc(flags,
                                               static_cast<u8>(init_perm));
}

i64 Kernel::sys_vpkey_free(u64 vkey) {
  if (hart_.config().flavor != core::IsaFlavor::kSealPk) return err::kNoSys;
  Process& proc = current_process();
  if (!proc.vkeys) return err::kInval;
  hart_.add_cycles(hart_.timing().pkey_bookkeeping_cycles);
  VkeyKernelOps ops(*this);
  return proc.vkeys->free_vkey(ops, vkey);
}

i64 Kernel::sys_vpkey_mprotect(u64 addr, u64 len, u64 prot, u64 vkey) {
  if (hart_.config().flavor != core::IsaFlavor::kSealPk) return err::kNoSys;
  Process& proc = current_process();
  if (!proc.vkeys) return err::kInval;
  VkeyKernelOps ops(*this);
  return proc.vkeys->mprotect(ops, addr, len, prot, vkey);
}

i64 Kernel::sys_vpkey_set(u64 vkey, u64 perm) {
  if (hart_.config().flavor != core::IsaFlavor::kSealPk) return err::kNoSys;
  Process& proc = current_process();
  if (!proc.vkeys) return err::kInval;
  VkeyKernelOps ops(*this);
  const i64 rc = proc.vkeys->set(ops, vkey, static_cast<u8>(perm));
  if (rc < 0) return rc;
  // An MRU-cache hit is just the PKR write; anything deeper pays the
  // bookkeeping path (the rekey/flush costs were charged by the ops).
  const auto outcome = static_cast<mpk::VkeySetOutcome>(rc);
  hart_.add_cycles(outcome == mpk::VkeySetOutcome::kMruHit
                       ? hart_.timing().rocc_cycles
                       : hart_.timing().pkey_bookkeeping_cycles);
  return 0;
}

i64 Kernel::sys_clone(u64 entry, u64 stack_top, u64 arg) {
  if (entry == 0 || stack_top == 0) return err::kInval;
  return spawn_thread(thread(current_tid_).pid, entry, stack_top, arg);
}

void Kernel::sys_exit(i64 code) {
  Thread& cur = thread(current_tid_);
  Process& proc = process(cur.pid);
  emit(obs::EventKind::kProcessExit, obs::kNoPkey, static_cast<u64>(code),
       static_cast<u64>(cur.pid));
  proc.exited = true;
  proc.exit_code = code;
  for (const int tid : proc.thread_tids) thread(tid).exited = true;
  run_queue_.erase(
      std::remove_if(run_queue_.begin(), run_queue_.end(),
                     [this](int tid) { return thread(tid).exited; }),
      run_queue_.end());
  const int prev_pid = cur.pid;
  current_tid_ = -1;
  if (!run_queue_.empty()) {
    const int next_tid = run_queue_.front();
    run_queue_.erase(run_queue_.begin());
    restore_context(thread(next_tid), prev_pid);
    return_to_user(thread(next_tid).ctx.pc);
  }
}

// --- snapshot serialization --------------------------------------------------

namespace {

void save_context(ByteWriter& w, const ThreadContext& ctx) {
  for (u64 reg : ctx.regs) w.put_u64(reg);
  w.put_u64(ctx.pc);
  for (u64 row : ctx.pkr) w.put_u64(row);
  w.put_u32(ctx.pkru);
  w.put_u64(ctx.seal_start);
  w.put_u64(ctx.seal_end);
}

void load_context(ByteReader& r, ThreadContext& ctx) {
  for (u64& reg : ctx.regs) reg = r.get_u64();
  ctx.pc = r.get_u64();
  for (u64& row : ctx.pkr) row = r.get_u64();
  ctx.pkru = r.get_u32();
  ctx.seal_start = r.get_u64();
  ctx.seal_end = r.get_u64();
}

}  // namespace

void Kernel::save_state(ByteWriter& w) const {
  // Process table. std::map iteration order makes the stream canonical.
  w.put_u64(processes_.size());
  for (const auto& [pid, proc] : processes_) {
    w.put_u32(static_cast<u32>(pid));
    w.put_u64(proc->signal_handler);
    proc->aspace->save_state(w);
    proc->keys->save_state(w);
    hw::SealUnit::save_snapshot(w, proc->seal_hw);
    w.put_u64(proc->thread_tids.size());
    for (int tid : proc->thread_tids) w.put_u32(static_cast<u32>(tid));
    w.put_bool(proc->exited);
    w.put_i64(proc->exit_code);
  }

  w.put_u64(threads_.size());
  for (const auto& [tid, th] : threads_) {
    w.put_u32(static_cast<u32>(tid));
    w.put_u32(static_cast<u32>(th->pid));
    save_context(w, th->ctx);
    w.put_bool(th->exited);
    w.put_bool(th->in_signal);
    save_context(w, th->signal_saved);
  }

  w.put_u64(run_queue_.size());
  for (int tid : run_queue_) w.put_u32(static_cast<u32>(tid));
  w.put_i64(current_tid_);
  w.put_i64(next_pid_);
  w.put_i64(next_tid_);
  frames_.save_state(w);
  w.put_str(admission_error_);

  w.put_u64(faults_.size());
  for (const auto& rec : faults_) {
    w.put_u32(static_cast<u32>(rec.pid));
    w.put_u32(static_cast<u32>(rec.tid));
    w.put_u8(static_cast<u8>(rec.cause));
    w.put_u64(rec.addr);
    w.put_u64(rec.pc);
    w.put_bool(rec.pkey_fault);
    w.put_u32(rec.pkey);
    w.put_bool(rec.delivered);
  }
  w.put_str(console_);
  w.put_u64(reports_.size());
  for (u64 rep : reports_) w.put_u64(rep);
  w.put_u64(host_errors_.size());
  for (const auto& err : host_errors_) w.put_str(err);

  w.put_u64(stats_.syscalls);
  w.put_u64(stats_.context_switches);
  w.put_u64(stats_.cam_refills);
  w.put_u64(stats_.page_faults);
  w.put_u64(stats_.seal_violations);
  w.put_u64(stats_.pte_pages_updated);
  w.put_u64(stats_.syscall_counts.size());
  for (const auto& [nr, count] : stats_.syscall_counts) {
    w.put_u64(nr);
    w.put_u64(count);
  }
  w.put_u64(stats_.cam_refills_dropped);
  w.put_u64(stats_.cam_refills_duplicated);
  w.put_u64(stats_.pkr_scrubs);
  w.put_u64(stats_.tlb_flush_recoveries);
  w.put_u64(stats_.pte_repairs);
  w.put_u64(stats_.key_counter_repairs);
  w.put_u64(stats_.run_queue_scrubs);
  w.put_u64(stats_.cam_dedups);
  w.put_u64(stats_.spurious_fault_fixes);
  w.put_u64(stats_.machine_checks);
  w.put_u64(stats_.machine_check_kills);
  w.put_u64(stats_.watchdog_kills);
  w.put_u64(stats_.audit_runs);
  w.put_u64(stats_.audit_findings);
  w.put_u64(stats_.host_errors_contained);
}

void Kernel::load_state(ByteReader& r) {
  processes_.clear();
  threads_.clear();
  run_queue_.clear();
  faults_.clear();
  reports_.clear();
  host_errors_.clear();
  stats_ = {};

  const u64 num_procs = r.get_u64();
  for (u64 i = 0; i < num_procs; ++i) {
    auto proc = std::make_unique<Process>();
    proc->pid = static_cast<int>(r.get_u32());
    proc->signal_handler = r.get_u64();
    proc->aspace =
        std::make_unique<AddressSpace>(hart_.mem(), frames_, r);
    if (hart_.config().flavor == core::IsaFlavor::kSealPk) {
      auto keys = std::make_unique<SealPkKeyManager>();
      keys->load_state(r);
      install_drained_hook(*keys, proc->pid);
      proc->keys = std::move(keys);
    } else {
      proc->keys = std::make_unique<mpk::MpkKeyManager>();
      proc->keys->load_state(r);
    }
    proc->seal_hw = hw::SealUnit::load_snapshot(r);
    proc->thread_tids.resize(r.get_u64());
    for (int& tid : proc->thread_tids) tid = static_cast<int>(r.get_u32());
    proc->exited = r.get_bool();
    proc->exit_code = r.get_i64();
    const int pid = proc->pid;
    processes_.emplace(pid, std::move(proc));
  }

  const u64 num_threads = r.get_u64();
  for (u64 i = 0; i < num_threads; ++i) {
    auto th = std::make_unique<Thread>();
    th->tid = static_cast<int>(r.get_u32());
    th->pid = static_cast<int>(r.get_u32());
    load_context(r, th->ctx);
    th->exited = r.get_bool();
    th->in_signal = r.get_bool();
    load_context(r, th->signal_saved);
    const int tid = th->tid;
    threads_.emplace(tid, std::move(th));
  }

  run_queue_.resize(r.get_u64());
  for (int& tid : run_queue_) tid = static_cast<int>(r.get_u32());
  current_tid_ = static_cast<int>(r.get_i64());
  next_pid_ = static_cast<int>(r.get_i64());
  next_tid_ = static_cast<int>(r.get_i64());
  frames_.load_state(r);
  admission_error_ = r.get_str();

  faults_.resize(r.get_u64());
  for (auto& rec : faults_) {
    rec.pid = static_cast<int>(r.get_u32());
    rec.tid = static_cast<int>(r.get_u32());
    rec.cause = static_cast<core::TrapCause>(r.get_u8());
    rec.addr = r.get_u64();
    rec.pc = r.get_u64();
    rec.pkey_fault = r.get_bool();
    rec.pkey = r.get_u32();
    rec.delivered = r.get_bool();
  }
  console_ = r.get_str();
  reports_.resize(r.get_u64());
  for (u64& rep : reports_) rep = r.get_u64();
  host_errors_.resize(r.get_u64());
  for (auto& err : host_errors_) err = r.get_str();

  stats_.syscalls = r.get_u64();
  stats_.context_switches = r.get_u64();
  stats_.cam_refills = r.get_u64();
  stats_.page_faults = r.get_u64();
  stats_.seal_violations = r.get_u64();
  stats_.pte_pages_updated = r.get_u64();
  const u64 num_sys = r.get_u64();
  for (u64 i = 0; i < num_sys; ++i) {
    const u64 nr = r.get_u64();
    stats_.syscall_counts[nr] = r.get_u64();
  }
  stats_.cam_refills_dropped = r.get_u64();
  stats_.cam_refills_duplicated = r.get_u64();
  stats_.pkr_scrubs = r.get_u64();
  stats_.tlb_flush_recoveries = r.get_u64();
  stats_.pte_repairs = r.get_u64();
  stats_.key_counter_repairs = r.get_u64();
  stats_.run_queue_scrubs = r.get_u64();
  stats_.cam_dedups = r.get_u64();
  stats_.spurious_fault_fixes = r.get_u64();
  stats_.machine_checks = r.get_u64();
  stats_.machine_check_kills = r.get_u64();
  stats_.watchdog_kills = r.get_u64();
  stats_.audit_runs = r.get_u64();
  stats_.audit_findings = r.get_u64();
  stats_.host_errors_contained = r.get_u64();
}

bool Kernel::any_vkey_tables() const {
  for (const auto& [pid, proc] : processes_) {
    if (proc->vkeys) return true;
  }
  return false;
}

void Kernel::save_vkey_state(ByteWriter& w) const {
  w.put_u64(processes_.size());
  for (const auto& [pid, proc] : processes_) {
    w.put_u32(static_cast<u32>(pid));
    w.put_bool(proc->vkeys != nullptr);
    if (proc->vkeys) proc->vkeys->save_state(w);
  }
}

void Kernel::load_vkey_state(ByteReader& r) {
  const u64 n = r.get_u64();
  for (u64 i = 0; i < n; ++i) {
    const int pid = static_cast<int>(r.get_u32());
    const bool has_table = r.get_bool();
    if (!has_table) continue;
    Process& proc = process(pid);
    proc.vkeys = std::make_unique<mpk::VkeyTable>();
    proc.vkeys->load_state(r);
  }
}

}  // namespace sealpk::os
