#include "core/hart.h"

namespace sealpk::core {

using isa::Inst;
using isa::Op;

const char* trap_cause_name(TrapCause cause) {
  switch (cause) {
    case TrapCause::kInstAddrMisaligned: return "instruction address misaligned";
    case TrapCause::kInstAccessFault: return "instruction access fault";
    case TrapCause::kIllegalInst: return "illegal instruction";
    case TrapCause::kBreakpoint: return "breakpoint";
    case TrapCause::kLoadAddrMisaligned: return "load address misaligned";
    case TrapCause::kLoadAccessFault: return "load access fault";
    case TrapCause::kStoreAddrMisaligned: return "store address misaligned";
    case TrapCause::kStoreAccessFault: return "store access fault";
    case TrapCause::kEcallFromU: return "ecall from U-mode";
    case TrapCause::kEcallFromS: return "ecall from S-mode";
    case TrapCause::kInstPageFault: return "instruction page fault";
    case TrapCause::kLoadPageFault: return "load page fault";
    case TrapCause::kStorePageFault: return "store page fault";
    case TrapCause::kSealViolation: return "sealed-pkey WRPKR violation";
    case TrapCause::kPkCamMiss: return "PK-CAM miss";
    case TrapCause::kMachineCheck:
      return "machine check (corrupted hardware state)";
  }
  return "unknown";
}

Hart::Hart(mem::PhysMem& mem, const HartConfig& config)
    : mem_(mem),
      config_(config),
      dtlb_(config.dtlb_entries),
      itlb_(config.itlb_entries) {}

u64 Hart::reg(unsigned idx) const {
  SEALPK_CHECK(idx < 32);
  return idx == 0 ? 0 : regs_[idx];
}

void Hart::set_reg(unsigned idx, u64 value) {
  SEALPK_CHECK(idx < 32);
  if (idx != 0) regs_[idx] = value;
}

unsigned Hart::paging_levels() const {
  if (priv_ != Priv::kUser) return 0;
  const u64 mode = csr::satp_mode(csrs_.satp);
  if (mode == csr::satp_mode(csr::kSatpModeSv39)) return mem::sv39::kLevels;
  if (mode == csr::satp_mode(csr::kSatpModeSv48)) return mem::sv48::kLevels;
  return 0;
}

unsigned Hart::pkey_bits() const {
  return config_.flavor == IsaFlavor::kSealPk ? mem::pte::kSealPkPkeyBits
                                              : mem::pte::kMpkPkeyBits;
}

void Hart::raise(TrapCause cause, u64 tval) {
  trapped_ = true;
  trap_cause_ = cause;
  ++stats_.traps;
  csrs_.scause = static_cast<u64>(cause);
  csrs_.sepc = pc_;
  csrs_.stval = tval;
  // Record the previous privilege in sstatus.SPP, as sret needs it.
  csrs_.sstatus = deposit(csrs_.sstatus, 8, 8,
                          priv_ == Priv::kSupervisor ? 1 : 0);
  priv_ = Priv::kSupervisor;
  next_pc_ = csrs_.stvec & ~u64{3};
  cycles_ += config_.timing.trap_enter_cycles;
  if (recorder_ != nullptr) {
    recorder_->emit(obs::EventKind::kTrap, instret_, cycles_, obs::kNoPkey,
                    static_cast<u64>(cause), tval);
  }
}

void Hart::inject_trap(TrapCause cause, u64 tval) {
  // raise() leaves the redirect in next_pc_ because in-pipeline traps are
  // committed at the end of step(); an injected trap happens between steps,
  // so commit the redirect here.
  raise(cause, tval);
  pc_ = next_pc_;
  trapped_ = false;
}

void Hart::flush_tlbs() {
  dtlb_.flush();
  itlb_.flush();
}

std::optional<u64> Hart::translate_debug(u64 vaddr,
                                         mem::Access access) const {
  const u64 mode = csr::satp_mode(csrs_.satp);
  unsigned levels;
  if (mode == csr::satp_mode(csr::kSatpModeSv39)) {
    levels = mem::sv39::kLevels;
  } else if (mode == csr::satp_mode(csr::kSatpModeSv48)) {
    levels = mem::sv48::kLevels;
  } else {
    return vaddr;  // bare
  }
  const auto result =
      mem::walk(static_cast<const mem::PhysMem&>(mem_),
                csr::satp_ppn(csrs_.satp), vaddr, access, levels);
  if (!result.ok) return std::nullopt;
  return (result.ppn << mem::kPageShift) | mem::sv39::page_offset(vaddr);
}

Hart::MemOutcome Hart::translate_fetch(u64 vaddr) {
  MemOutcome out;
  const unsigned levels = paging_levels();
  if (levels == 0) {
    if (!mem_.contains(vaddr, 4)) {
      out.cause = TrapCause::kInstAccessFault;
      out.tval = vaddr;
      return out;
    }
    out.ok = true;
    out.paddr = vaddr;
    return out;
  }
  const u64 vpn = mem::svxx::vpn_of(vaddr, levels);
  auto entry = itlb_.lookup(vpn);
  if (!entry) {
    const auto wr = mem::walk(mem_, csr::satp_ppn(csrs_.satp), vaddr,
                              mem::Access::kFetch, /*update_ad=*/true,
                              levels);
    cycles_ += config_.timing.ptw_cost(wr.accesses);
    if (!wr.ok) {
      out.cause = TrapCause::kInstPageFault;
      out.tval = vaddr;
      return out;
    }
    mem::TlbEntry fresh;
    fresh.vpn = vpn;
    fresh.ppn = wr.ppn;
    fresh.r = (wr.pte & mem::pte::kR) != 0;
    fresh.w = (wr.pte & mem::pte::kW) != 0;
    fresh.x = (wr.pte & mem::pte::kX) != 0;
    fresh.user = (wr.pte & mem::pte::kU) != 0;
    fresh.dirty = (wr.pte & mem::pte::kD) != 0;
    // The ITLB carries no pkey field (paper §III-A footnote: pkey checks
    // apply to data accesses only, so the ITLB is unmodified).
    itlb_.insert(fresh);
    entry = fresh;
  }
  if (!entry->x || !entry->user) {
    out.cause = TrapCause::kInstPageFault;
    out.tval = vaddr;
    return out;
  }
  out.ok = true;
  out.paddr =
      (entry->ppn << mem::kPageShift) | mem::sv39::page_offset(vaddr);
  return out;
}

bool Hart::data_access_allowed(const mem::TlbEntry& entry,
                               mem::Access access, bool* pkey_denied) {
  *pkey_denied = false;
  if (!entry.user) return false;
  const bool want_write = access == mem::Access::kStore;
  const bool pte_ok = want_write ? entry.w : entry.r;
  if (!pte_ok) return false;

  // Effective permission = PTE permission AND pkey permission (Figure 2).
  bool denied;
  if (config_.flavor == IsaFlavor::kSealPk) {
    denied = want_write ? pkr_.write_disabled(entry.pkey)
                        : pkr_.read_disabled(entry.pkey);
  } else {
    denied = pkru_.access_disabled(entry.pkey) ||
             (want_write && pkru_.write_disabled(entry.pkey));
  }
  if (denied) {
    *pkey_denied = true;
    return false;
  }
  return true;
}

Hart::MemOutcome Hart::translate_data(u64 vaddr, mem::Access access) {
  MemOutcome out;
  const bool is_store = access == mem::Access::kStore;
  const TrapCause fault =
      is_store ? TrapCause::kStorePageFault : TrapCause::kLoadPageFault;
  const unsigned levels = paging_levels();
  if (levels == 0) {
    if (!mem_.contains(vaddr, 1)) {
      out.cause = is_store ? TrapCause::kStoreAccessFault
                           : TrapCause::kLoadAccessFault;
      out.tval = vaddr;
      return out;
    }
    out.ok = true;
    out.paddr = vaddr;
    return out;
  }

  const u64 vpn = mem::svxx::vpn_of(vaddr, levels);
  auto entry = dtlb_.lookup(vpn);
  const bool need_dirty_walk =
      entry.has_value() && is_store && !entry->dirty;
  if (!entry || need_dirty_walk) {
    const auto wr = mem::walk(mem_, csr::satp_ppn(csrs_.satp), vaddr, access,
                              /*update_ad=*/true, levels);
    cycles_ += config_.timing.ptw_cost(wr.accesses);
    if (!wr.ok) {
      out.cause = fault;
      out.tval = vaddr;
      return out;
    }
    mem::TlbEntry fresh;
    fresh.vpn = vpn;
    fresh.ppn = wr.ppn;
    fresh.r = (wr.pte & mem::pte::kR) != 0;
    fresh.w = (wr.pte & mem::pte::kW) != 0;
    fresh.x = (wr.pte & mem::pte::kX) != 0;
    fresh.user = (wr.pte & mem::pte::kU) != 0;
    fresh.dirty = (wr.pte & mem::pte::kD) != 0;
    fresh.pkey = static_cast<u16>(mem::pte::pkey_of(wr.pte, pkey_bits()));
    dtlb_.insert(fresh);
    entry = fresh;
  }

  bool pkey_denied = false;
  if (!data_access_allowed(*entry, access, &pkey_denied)) {
    if (pkey_denied) {
      ++stats_.pkey_denials;
      // Hardware latches the denying pkey so the kernel can augment the
      // fault report (paper §III-B.2).
      csrs_.spkinfo = (u64{1} << 63) | entry->pkey;
      if (recorder_ != nullptr) {
        recorder_->emit(obs::EventKind::kPkeyDenial, instret_, cycles_,
                        entry->pkey, vaddr,
                        access == mem::Access::kStore ? 1 : 0);
      }
    } else {
      csrs_.spkinfo = 0;
    }
    out.cause = fault;
    out.tval = vaddr;
    return out;
  }
  out.ok = true;
  out.paddr =
      (entry->ppn << mem::kPageShift) | mem::sv39::page_offset(vaddr);
  return out;
}

bool Hart::fetch(u32* word) {
  if ((pc_ & 3) != 0) {
    raise(TrapCause::kInstAddrMisaligned, pc_);
    return false;
  }
  const auto out = translate_fetch(pc_);
  if (!out.ok) {
    raise(out.cause, out.tval);
    return false;
  }
  *word = mem_.read_u32(out.paddr);
  return true;
}

bool Hart::mem_load(u64 vaddr, unsigned size, bool sign_extend, u64* value) {
  if ((vaddr & (size - 1)) != 0) {
    raise(TrapCause::kLoadAddrMisaligned, vaddr);
    return false;
  }
  const auto out = translate_data(vaddr, mem::Access::kLoad);
  if (!out.ok) {
    raise(out.cause, out.tval);
    return false;
  }
  if (!mem_.contains(out.paddr, size)) {
    raise(TrapCause::kLoadAccessFault, vaddr);
    return false;
  }
  u64 raw = 0;
  switch (size) {
    case 1: raw = mem_.read_u8(out.paddr); break;
    case 2: raw = mem_.read_u16(out.paddr); break;
    case 4: raw = mem_.read_u32(out.paddr); break;
    case 8: raw = mem_.read_u64(out.paddr); break;
    default: SEALPK_CHECK(false);
  }
  *value = sign_extend ? static_cast<u64>(sext(raw, size * 8)) : raw;
  ++stats_.loads;
  cycles_ += config_.timing.mem_extra_cycles;
  return true;
}

bool Hart::mem_store(u64 vaddr, unsigned size, u64 value) {
  if ((vaddr & (size - 1)) != 0) {
    raise(TrapCause::kStoreAddrMisaligned, vaddr);
    return false;
  }
  const auto out = translate_data(vaddr, mem::Access::kStore);
  if (!out.ok) {
    raise(out.cause, out.tval);
    return false;
  }
  if (!mem_.contains(out.paddr, size)) {
    raise(TrapCause::kStoreAccessFault, vaddr);
    return false;
  }
  switch (size) {
    case 1: mem_.write_u8(out.paddr, static_cast<u8>(value)); break;
    case 2: mem_.write_u16(out.paddr, static_cast<u16>(value)); break;
    case 4: mem_.write_u32(out.paddr, static_cast<u32>(value)); break;
    case 8: mem_.write_u64(out.paddr, value); break;
    default: SEALPK_CHECK(false);
  }
  ++stats_.stores;
  cycles_ += config_.timing.mem_extra_cycles;
  return true;
}

StepResult Hart::step() {
  trapped_ = false;
  next_pc_ = pc_ + 4;
  cycles_ += config_.timing.base_cycles;

  u32 word = 0;
  if (fetch(&word)) {
    const Inst inst = isa::decode(word);
    if (trace_hook_) trace_hook_(priv_, pc_, inst);
    if (inst.op == Op::kIllegal) {
      raise(TrapCause::kIllegalInst, word);
    } else {
      exec(inst);
    }
  }

  StepResult result;
  if (trapped_) {
    result.kind = StepKind::kTrap;
    result.cause = trap_cause_;
  } else {
    ++instret_;
  }
  pc_ = next_pc_;
  return result;
}

std::optional<StepResult> Hart::run(u64 max_steps) {
  for (u64 i = 0; i < max_steps; ++i) {
    const StepResult r = step();
    if (r.kind == StepKind::kTrap) return r;
  }
  return std::nullopt;
}

bool Hart::exec(const Inst& inst) {
  const u64 rs1 = reg(inst.rs1);
  const u64 rs2 = reg(inst.rs2);
  const auto& t = config_.timing;
  u64 value = 0;
  switch (inst.op) {
    // --- upper immediate / control flow -----------------------------------
    case Op::kLui:
      set_reg(inst.rd, static_cast<u64>(inst.imm));
      break;
    case Op::kAuipc:
      set_reg(inst.rd, pc_ + static_cast<u64>(inst.imm));
      break;
    case Op::kJal:
      if (inst.rd == isa::ra) ++stats_.calls;
      set_reg(inst.rd, pc_ + 4);
      next_pc_ = pc_ + static_cast<u64>(inst.imm);
      break;
    case Op::kJalr: {
      if (inst.rd == isa::ra) ++stats_.calls;
      const u64 target = (rs1 + static_cast<u64>(inst.imm)) & ~u64{1};
      set_reg(inst.rd, pc_ + 4);
      next_pc_ = target;
      break;
    }
    case Op::kBeq:
      if (rs1 == rs2) next_pc_ = pc_ + static_cast<u64>(inst.imm);
      break;
    case Op::kBne:
      if (rs1 != rs2) next_pc_ = pc_ + static_cast<u64>(inst.imm);
      break;
    case Op::kBlt:
      if (static_cast<i64>(rs1) < static_cast<i64>(rs2))
        next_pc_ = pc_ + static_cast<u64>(inst.imm);
      break;
    case Op::kBge:
      if (static_cast<i64>(rs1) >= static_cast<i64>(rs2))
        next_pc_ = pc_ + static_cast<u64>(inst.imm);
      break;
    case Op::kBltu:
      if (rs1 < rs2) next_pc_ = pc_ + static_cast<u64>(inst.imm);
      break;
    case Op::kBgeu:
      if (rs1 >= rs2) next_pc_ = pc_ + static_cast<u64>(inst.imm);
      break;

    // --- loads / stores -----------------------------------------------------
    case Op::kLb:
      if (!mem_load(rs1 + inst.imm, 1, true, &value)) return false;
      set_reg(inst.rd, value);
      break;
    case Op::kLh:
      if (!mem_load(rs1 + inst.imm, 2, true, &value)) return false;
      set_reg(inst.rd, value);
      break;
    case Op::kLw:
      if (!mem_load(rs1 + inst.imm, 4, true, &value)) return false;
      set_reg(inst.rd, value);
      break;
    case Op::kLd:
      if (!mem_load(rs1 + inst.imm, 8, true, &value)) return false;
      set_reg(inst.rd, value);
      break;
    case Op::kLbu:
      if (!mem_load(rs1 + inst.imm, 1, false, &value)) return false;
      set_reg(inst.rd, value);
      break;
    case Op::kLhu:
      if (!mem_load(rs1 + inst.imm, 2, false, &value)) return false;
      set_reg(inst.rd, value);
      break;
    case Op::kLwu:
      if (!mem_load(rs1 + inst.imm, 4, false, &value)) return false;
      set_reg(inst.rd, value);
      break;
    case Op::kSb:
      return mem_store(rs1 + inst.imm, 1, rs2);
    case Op::kSh:
      return mem_store(rs1 + inst.imm, 2, rs2);
    case Op::kSw:
      return mem_store(rs1 + inst.imm, 4, rs2);
    case Op::kSd:
      return mem_store(rs1 + inst.imm, 8, rs2);

    // --- integer ALU --------------------------------------------------------
    case Op::kAddi: set_reg(inst.rd, rs1 + inst.imm); break;
    case Op::kSlti:
      set_reg(inst.rd, static_cast<i64>(rs1) < inst.imm ? 1 : 0);
      break;
    case Op::kSltiu:
      set_reg(inst.rd, rs1 < static_cast<u64>(inst.imm) ? 1 : 0);
      break;
    case Op::kXori: set_reg(inst.rd, rs1 ^ static_cast<u64>(inst.imm)); break;
    case Op::kOri: set_reg(inst.rd, rs1 | static_cast<u64>(inst.imm)); break;
    case Op::kAndi: set_reg(inst.rd, rs1 & static_cast<u64>(inst.imm)); break;
    case Op::kSlli: set_reg(inst.rd, rs1 << inst.imm); break;
    case Op::kSrli: set_reg(inst.rd, rs1 >> inst.imm); break;
    case Op::kSrai:
      set_reg(inst.rd, static_cast<u64>(static_cast<i64>(rs1) >> inst.imm));
      break;
    case Op::kAddiw:
      set_reg(inst.rd, static_cast<u64>(sext(rs1 + inst.imm, 32)));
      break;
    case Op::kSlliw:
      set_reg(inst.rd, static_cast<u64>(sext(rs1 << inst.imm, 32)));
      break;
    case Op::kSrliw:
      set_reg(inst.rd,
              static_cast<u64>(sext(zext(rs1, 32) >> inst.imm, 32)));
      break;
    case Op::kSraiw:
      set_reg(inst.rd, static_cast<u64>(
                           static_cast<i64>(sext(rs1, 32)) >> inst.imm));
      break;
    case Op::kAdd: set_reg(inst.rd, rs1 + rs2); break;
    case Op::kSub: set_reg(inst.rd, rs1 - rs2); break;
    case Op::kSll: set_reg(inst.rd, rs1 << (rs2 & 63)); break;
    case Op::kSlt:
      set_reg(inst.rd,
              static_cast<i64>(rs1) < static_cast<i64>(rs2) ? 1 : 0);
      break;
    case Op::kSltu: set_reg(inst.rd, rs1 < rs2 ? 1 : 0); break;
    case Op::kXor: set_reg(inst.rd, rs1 ^ rs2); break;
    case Op::kSrl: set_reg(inst.rd, rs1 >> (rs2 & 63)); break;
    case Op::kSra:
      set_reg(inst.rd,
              static_cast<u64>(static_cast<i64>(rs1) >> (rs2 & 63)));
      break;
    case Op::kOr: set_reg(inst.rd, rs1 | rs2); break;
    case Op::kAnd: set_reg(inst.rd, rs1 & rs2); break;
    case Op::kAddw:
      set_reg(inst.rd, static_cast<u64>(sext(rs1 + rs2, 32)));
      break;
    case Op::kSubw:
      set_reg(inst.rd, static_cast<u64>(sext(rs1 - rs2, 32)));
      break;
    case Op::kSllw:
      set_reg(inst.rd, static_cast<u64>(sext(rs1 << (rs2 & 31), 32)));
      break;
    case Op::kSrlw:
      set_reg(inst.rd,
              static_cast<u64>(sext(zext(rs1, 32) >> (rs2 & 31), 32)));
      break;
    case Op::kSraw:
      set_reg(inst.rd, static_cast<u64>(static_cast<i64>(sext(rs1, 32)) >>
                                        (rs2 & 31)));
      break;

    // --- M extension ----------------------------------------------------------
    case Op::kMul:
      cycles_ += t.mul_cycles;
      set_reg(inst.rd, rs1 * rs2);
      break;
    case Op::kMulh: {
      cycles_ += t.mul_cycles;
      const __int128 prod = static_cast<__int128>(static_cast<i64>(rs1)) *
                            static_cast<__int128>(static_cast<i64>(rs2));
      set_reg(inst.rd, static_cast<u64>(prod >> 64));
      break;
    }
    case Op::kMulhsu: {
      cycles_ += t.mul_cycles;
      const __int128 prod = static_cast<__int128>(static_cast<i64>(rs1)) *
                            static_cast<__int128>(rs2);
      set_reg(inst.rd, static_cast<u64>(prod >> 64));
      break;
    }
    case Op::kMulhu: {
      cycles_ += t.mul_cycles;
      const unsigned __int128 prod = static_cast<unsigned __int128>(rs1) *
                                     static_cast<unsigned __int128>(rs2);
      set_reg(inst.rd, static_cast<u64>(prod >> 64));
      break;
    }
    case Op::kDiv: {
      cycles_ += t.div_cycles;
      const i64 a = static_cast<i64>(rs1), b = static_cast<i64>(rs2);
      if (b == 0) {
        set_reg(inst.rd, ~u64{0});
      } else if (a == INT64_MIN && b == -1) {
        set_reg(inst.rd, static_cast<u64>(INT64_MIN));
      } else {
        set_reg(inst.rd, static_cast<u64>(a / b));
      }
      break;
    }
    case Op::kDivu:
      cycles_ += t.div_cycles;
      set_reg(inst.rd, rs2 == 0 ? ~u64{0} : rs1 / rs2);
      break;
    case Op::kRem: {
      cycles_ += t.div_cycles;
      const i64 a = static_cast<i64>(rs1), b = static_cast<i64>(rs2);
      if (b == 0) {
        set_reg(inst.rd, rs1);
      } else if (a == INT64_MIN && b == -1) {
        set_reg(inst.rd, 0);
      } else {
        set_reg(inst.rd, static_cast<u64>(a % b));
      }
      break;
    }
    case Op::kRemu:
      cycles_ += t.div_cycles;
      set_reg(inst.rd, rs2 == 0 ? rs1 : rs1 % rs2);
      break;
    case Op::kMulw:
      cycles_ += t.mul_cycles;
      set_reg(inst.rd, static_cast<u64>(sext(rs1 * rs2, 32)));
      break;
    case Op::kDivw: {
      cycles_ += t.div_cycles;
      const i32 a = static_cast<i32>(rs1), b = static_cast<i32>(rs2);
      i32 q;
      if (b == 0) {
        q = -1;
      } else if (a == INT32_MIN && b == -1) {
        q = INT32_MIN;
      } else {
        q = a / b;
      }
      set_reg(inst.rd, static_cast<u64>(static_cast<i64>(q)));
      break;
    }
    case Op::kDivuw: {
      cycles_ += t.div_cycles;
      const u32 a = static_cast<u32>(rs1), b = static_cast<u32>(rs2);
      const u32 q = b == 0 ? ~u32{0} : a / b;
      set_reg(inst.rd, static_cast<u64>(sext(q, 32)));
      break;
    }
    case Op::kRemw: {
      cycles_ += t.div_cycles;
      const i32 a = static_cast<i32>(rs1), b = static_cast<i32>(rs2);
      i32 r;
      if (b == 0) {
        r = a;
      } else if (a == INT32_MIN && b == -1) {
        r = 0;
      } else {
        r = a % b;
      }
      set_reg(inst.rd, static_cast<u64>(static_cast<i64>(r)));
      break;
    }
    case Op::kRemuw: {
      cycles_ += t.div_cycles;
      const u32 a = static_cast<u32>(rs1), b = static_cast<u32>(rs2);
      const u32 r = b == 0 ? a : a % b;
      set_reg(inst.rd, static_cast<u64>(sext(r, 32)));
      break;
    }

    // --- system ---------------------------------------------------------------
    case Op::kFence:
    case Op::kFenceI:
    case Op::kWfi:
      break;
    case Op::kEcall:
    case Op::kEbreak:
    case Op::kSret:
    case Op::kSfenceVma:
      return exec_system(inst);
    case Op::kCsrrw:
    case Op::kCsrrs:
    case Op::kCsrrc:
    case Op::kCsrrwi:
    case Op::kCsrrsi:
    case Op::kCsrrci:
      return exec_csr(inst);

    // --- custom-0 ---------------------------------------------------------------
    case Op::kRdpkr:
    case Op::kWrpkr:
    case Op::kSealStart:
    case Op::kSealEnd:
    case Op::kSpkRange:
    case Op::kSpkSeal:
    case Op::kWrpkru:
    case Op::kRdpkru:
      return exec_custom(inst);

    case Op::kIllegal:
      raise(TrapCause::kIllegalInst, inst.raw);
      return false;
  }
  return !trapped_;
}

bool Hart::exec_system(const Inst& inst) {
  switch (inst.op) {
    case Op::kEcall:
      raise(priv_ == Priv::kUser ? TrapCause::kEcallFromU
                                 : TrapCause::kEcallFromS,
            0);
      return false;
    case Op::kEbreak:
      raise(TrapCause::kBreakpoint, pc_);
      return false;
    case Op::kSret: {
      if (priv_ != Priv::kSupervisor) {
        raise(TrapCause::kIllegalInst, inst.raw);
        return false;
      }
      next_pc_ = csrs_.sepc;
      priv_ = (csrs_.sstatus & csr::kSstatusSpp) != 0 ? Priv::kSupervisor
                                                      : Priv::kUser;
      csrs_.sstatus &= ~csr::kSstatusSpp;
      cycles_ += config_.timing.trap_return_cycles;
      return true;
    }
    case Op::kSfenceVma: {
      if (priv_ != Priv::kSupervisor) {
        raise(TrapCause::kIllegalInst, inst.raw);
        return false;
      }
      cycles_ += config_.timing.tlb_flush_cycles;
      if (inst.rs1 == 0) {
        flush_tlbs();
      } else {
        const u64 vpn = mem::sv39::vpn_of(reg(inst.rs1));
        dtlb_.flush_vpn(vpn);
        itlb_.flush_vpn(vpn);
      }
      return true;
    }
    default:
      raise(TrapCause::kIllegalInst, inst.raw);
      return false;
  }
}

bool Hart::exec_csr(const Inst& inst) {
  const u16 addr = inst.csr;
  if (priv_ == Priv::kUser && !CsrFile::user_readable(addr)) {
    raise(TrapCause::kIllegalInst, inst.raw);
    return false;
  }
  u64 old = 0;
  if (!csrs_.read(addr, cycles_, instret_, &old)) {
    raise(TrapCause::kIllegalInst, inst.raw);
    return false;
  }
  const bool is_imm = inst.op == Op::kCsrrwi || inst.op == Op::kCsrrsi ||
                      inst.op == Op::kCsrrci;
  const u64 operand = is_imm ? static_cast<u64>(inst.imm) : reg(inst.rs1);
  u64 next = old;
  bool do_write = true;
  switch (inst.op) {
    case Op::kCsrrw:
    case Op::kCsrrwi:
      next = operand;
      break;
    case Op::kCsrrs:
    case Op::kCsrrsi:
      next = old | operand;
      do_write = is_imm ? inst.imm != 0 : inst.rs1 != 0;
      break;
    case Op::kCsrrc:
    case Op::kCsrrci:
      next = old & ~operand;
      do_write = is_imm ? inst.imm != 0 : inst.rs1 != 0;
      break;
    default:
      SEALPK_CHECK(false);
  }
  if (do_write && !csrs_.write(addr, next)) {
    raise(TrapCause::kIllegalInst, inst.raw);
    return false;
  }
  set_reg(inst.rd, old);
  return true;
}

bool Hart::exec_custom(const Inst& inst) {
  const auto& t = config_.timing;
  const bool sealpk = config_.flavor == IsaFlavor::kSealPk;
  switch (inst.op) {
    case Op::kRdpkr: {
      if (!sealpk) break;
      cycles_ += t.rocc_cycles;
      ++stats_.rdpkr_count;
      const u32 pkey = static_cast<u32>(reg(inst.rs1)) & (hw::kNumPkeys - 1);
      const u64 row_value = pkr_.read_row(hw::pkr_row_of(pkey));
      set_reg(inst.rd, row_value);
      if (recorder_ != nullptr) {
        recorder_->emit(obs::EventKind::kRdpkr, instret_, cycles_, pkey,
                        row_value, 0);
      }
      return true;
    }
    case Op::kWrpkr: {
      if (!sealpk) break;
      cycles_ += t.rocc_cycles;
      const u32 pkey = static_cast<u32>(reg(inst.rs1)) & (hw::kNumPkeys - 1);
      const hw::SealCheck check = seal_unit_.check_wrpkr(pkey, pc_);
      if (check == hw::SealCheck::kViolation) {
        raise(TrapCause::kSealViolation, pkey);
        return false;
      }
      if (check == hw::SealCheck::kMiss) {
        raise(TrapCause::kPkCamMiss, pkey);
        return false;
      }
      ++stats_.wrpkr_count;
      const u32 row = hw::pkr_row_of(pkey);
      u64 next = reg(inst.rs2);
      // A row holds 32 keys. Hardware preserves the 2-bit fields of *other*
      // sealed keys in the row — otherwise a WRPKR naming an unsealed
      // neighbour could clobber a sealed key's permissions (a gap the paper
      // does not address; see DESIGN.md).
      const u64 old = pkr_.peek_row(row);
      next = hw::merge_sealed_row(seal_unit_, old, next, row, pkey);
      pkr_.write_row(row, next);
      if (pkr_write_hook_) pkr_write_hook_(row, next);
      if (recorder_ != nullptr) {
        recorder_->emit(obs::EventKind::kWrpkr, instret_, cycles_, pkey,
                        old, next);
      }
      return true;
    }
    case Op::kSealStart:
      if (!sealpk) break;
      cycles_ += t.rocc_cycles;
      csrs_.seal_start = pc_;
      return true;
    case Op::kSealEnd:
      if (!sealpk) break;
      cycles_ += t.rocc_cycles;
      csrs_.seal_end = pc_;
      return true;
    case Op::kSpkRange:
      if (!sealpk || priv_ != Priv::kSupervisor) break;
      cycles_ += t.rocc_cycles;
      csrs_.seal_start = reg(inst.rs1);
      csrs_.seal_end = reg(inst.rs2);
      return true;
    case Op::kSpkSeal: {
      if (!sealpk || priv_ != Priv::kSupervisor) break;
      cycles_ += t.rocc_cycles;
      const u32 pkey = static_cast<u32>(reg(inst.rs1)) & (hw::kNumPkeys - 1);
      if (csrs_.seal_start > csrs_.seal_end || seal_unit_.sealed(pkey)) {
        break;  // malformed range or double-seal: illegal instruction
      }
      seal_unit_.set_sealed(pkey);
      seal_unit_.refill(pkey, csrs_.seal_start, csrs_.seal_end);
      return true;
    }
    case Op::kWrpkru:
      if (sealpk) break;
      cycles_ += t.rocc_cycles;
      ++stats_.wrpkru_count;
      pkru_.set(static_cast<u32>(reg(inst.rs1)));
      return true;
    case Op::kRdpkru:
      if (sealpk) break;
      cycles_ += t.rocc_cycles;
      set_reg(inst.rd, pkru_.value());
      return true;
    default:
      break;
  }
  raise(TrapCause::kIllegalInst, inst.raw);
  return false;
}

}  // namespace sealpk::core
