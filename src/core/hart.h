// The simulated hart: an RV64IM in-order core (Rocket-class) with Sv39
// translation, split TLBs, U/S privilege, trap machinery, and the SealPK
// units (PKR + SealReg/PK-CAM) attached via a RoCC-style custom-instruction
// path. A second ISA flavour models an Intel-MPK-like design (4-bit PTE
// keys + the PKRU register) on the same pipeline for the paper's
// comparisons.
#pragma once

#include <array>
#include <functional>
#include <optional>

#include "core/csr.h"
#include "core/timing.h"
#include "core/trap.h"
#include "hw/pkr.h"
#include "hw/pkru.h"
#include "hw/seal_unit.h"
#include "isa/inst.h"
#include "mem/phys_mem.h"
#include "mem/tlb.h"
#include "mem/walker.h"
#include "obs/recorder.h"

namespace sealpk::core {

enum class IsaFlavor : u8 {
  kSealPk,          // 10-bit PTE pkeys, PKR, sealing units
  kIntelMpkCompat,  // 4-bit PTE pkeys, PKRU, WRPKRU/RDPKRU, no sealing
};

enum class Priv : u8 { kUser = 0, kSupervisor = 1 };

struct HartConfig {
  IsaFlavor flavor = IsaFlavor::kSealPk;
  size_t dtlb_entries = 32;
  size_t itlb_entries = 32;
  TimingModel timing;
};

enum class StepKind : u8 { kOk, kTrap };

struct StepResult {
  StepKind kind = StepKind::kOk;
  TrapCause cause = TrapCause::kIllegalInst;  // valid when kind == kTrap
};

struct HartStats {
  u64 loads = 0;
  u64 stores = 0;
  u64 calls = 0;  // jal/jalr writing ra — the shadow-stack event rate
  u64 traps = 0;
  u64 pkey_denials = 0;  // data accesses denied by the pkey (not the PTE)
  u64 wrpkr_count = 0;
  u64 rdpkr_count = 0;
  u64 wrpkru_count = 0;
};

class Hart {
 public:
  explicit Hart(mem::PhysMem& mem, const HartConfig& config = {});

  // --- architectural state -------------------------------------------------
  u64 reg(unsigned idx) const;
  void set_reg(unsigned idx, u64 value);
  u64 pc() const { return pc_; }
  void set_pc(u64 pc) { pc_ = pc; }
  Priv priv() const { return priv_; }
  void set_priv(Priv priv) { priv_ = priv; }

  CsrFile& csrs() { return csrs_; }
  const CsrFile& csrs() const { return csrs_; }
  hw::Pkr& pkr() { return pkr_; }
  hw::SealUnit& seal_unit() { return seal_unit_; }
  hw::Pkru& pkru() { return pkru_; }
  mem::Tlb& dtlb() { return dtlb_; }
  mem::Tlb& itlb() { return itlb_; }
  mem::PhysMem& mem() { return mem_; }
  const HartConfig& config() const { return config_; }
  const TimingModel& timing() const { return config_.timing; }

  // --- execution -------------------------------------------------------------
  // Executes one instruction; on an exception the hart has already
  // redirected to stvec in S-mode with scause/sepc/stval set.
  StepResult step();

  // Runs until a trap is taken or `max_steps` instructions retire.
  // Returns the trap if one occurred.
  std::optional<StepResult> run(u64 max_steps);

  // The OS model charges its software-path costs here.
  void add_cycles(u64 cycles) { cycles_ += cycles; }
  u64 cycles() const { return cycles_; }
  u64 instret() const { return instret_; }
  const HartStats& stats() const { return stats_; }

  // Snapshot ports: restore overwrites the performance counters so a
  // resumed hart continues the exact counter stream of the saved one.
  void set_cycles(u64 cycles) { cycles_ = cycles; }
  void set_instret(u64 instret) { instret_ = instret; }
  void set_stats(const HartStats& stats) { stats_ = stats; }

  // Flushes both TLBs (the kernel's sfence.vma after PTE updates).
  void flush_tlbs();

  // Optional per-instruction trace hook: invoked after a successful fetch +
  // decode, before execution, with the current privilege, PC and the
  // decoded instruction. Zero cost when unset. Used by the trace tooling
  // and by tests that assert on executed instruction streams.
  using TraceHook = std::function<void(Priv priv, u64 pc, const isa::Inst&)>;
  void set_trace_hook(TraceHook hook) { trace_hook_ = std::move(hook); }

  // Optional PKR write-through hook: invoked after every successful WRPKR
  // with the final row value actually committed to the SRAM
  // (sealed-neighbour preservation already applied). The kernel uses it to
  // keep a live per-thread software shadow of the PKR so a corrupted row
  // can be scrubbed back. Zero cost when unset.
  using PkrWriteHook = std::function<void(u32 row, u64 value)>;
  void set_pkr_write_hook(PkrWriteHook hook) {
    pkr_write_hook_ = std::move(hook);
  }

  // Optional observability sink (src/obs): traps, pkey denials and
  // RDPKR/WRPKR domain transitions are published here. Same zero-cost
  // discipline as the trace hook — one null check when unset, and emits
  // charge no cycles, so tracing never perturbs architectural state.
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }

  // Fault-injection port: take `cause` as if the *current* instruction had
  // trapped (scause/sepc/stval/SPP set, redirect to stvec, trap cycles
  // charged). Unlike in-pipeline raises the PC advances immediately — the
  // caller dispatches the kernel handler itself rather than re-running
  // step().
  void inject_trap(TrapCause cause, u64 tval);

  // Translation without architectural side effects (no TLB, no A/D update,
  // no fault) — the kernel's copy_{to,from}_user path.
  std::optional<u64> translate_debug(u64 vaddr, mem::Access access) const;

 private:
  struct MemOutcome {
    bool ok = false;
    u64 paddr = 0;
    TrapCause cause = TrapCause::kLoadPageFault;
    u64 tval = 0;
  };

  // 0 = no translation (S-mode or bare); 3 = Sv39; 4 = Sv48.
  unsigned paging_levels() const;
  unsigned pkey_bits() const;
  void raise(TrapCause cause, u64 tval);
  MemOutcome translate_fetch(u64 vaddr);
  MemOutcome translate_data(u64 vaddr, mem::Access access);
  bool data_access_allowed(const mem::TlbEntry& entry, mem::Access access,
                           bool* pkey_denied);

  bool fetch(u32* word);
  bool mem_load(u64 vaddr, unsigned size, bool sign_extend, u64* value);
  bool mem_store(u64 vaddr, unsigned size, u64 value);
  bool exec(const isa::Inst& inst);         // returns false if trapped
  bool exec_custom(const isa::Inst& inst);  // custom-0 extension
  bool exec_system(const isa::Inst& inst);
  bool exec_csr(const isa::Inst& inst);

  mem::PhysMem& mem_;
  HartConfig config_;
  std::array<u64, 32> regs_{};
  u64 pc_ = 0;
  Priv priv_ = Priv::kSupervisor;
  CsrFile csrs_;
  hw::Pkr pkr_;
  hw::SealUnit seal_unit_;
  hw::Pkru pkru_;
  mem::Tlb dtlb_;
  mem::Tlb itlb_;
  u64 cycles_ = 0;
  u64 instret_ = 0;
  HartStats stats_;
  TraceHook trace_hook_;
  PkrWriteHook pkr_write_hook_;
  obs::Recorder* recorder_ = nullptr;
  bool trapped_ = false;      // set by raise() during the current step
  TrapCause trap_cause_ = TrapCause::kIllegalInst;
  u64 next_pc_ = 0;
};

}  // namespace sealpk::core
