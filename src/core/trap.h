// Architectural trap causes: the standard RISC-V exception codes plus the
// two SealPK custom causes (>= 24, the range the privileged spec designates
// for custom use).
#pragma once

#include "common/bits.h"

namespace sealpk::core {

enum class TrapCause : u64 {
  kInstAddrMisaligned = 0,
  kInstAccessFault = 1,
  kIllegalInst = 2,
  kBreakpoint = 3,
  kLoadAddrMisaligned = 4,
  kLoadAccessFault = 5,
  kStoreAddrMisaligned = 6,
  kStoreAccessFault = 7,
  kEcallFromU = 8,
  kEcallFromS = 9,
  kInstPageFault = 12,
  kLoadPageFault = 13,
  kStorePageFault = 15,
  // SealPK custom causes.
  kSealViolation = 24,  // WRPKR on a sealed pkey with PC outside the range
  kPkCamMiss = 25,      // WRPKR on a sealed pkey whose range is not cached
  // Modelled machine-check: detected hardware-state corruption (PKR parity,
  // injected spurious events, contained host errors). The kernel attempts a
  // scrub-from-shadow recovery and kills the affected process when the
  // corruption is unrecoverable.
  kMachineCheck = 26,
};

const char* trap_cause_name(TrapCause cause);

}  // namespace sealpk::core
