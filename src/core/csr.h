// Supervisor-level CSR file (the subset the SealPK machine model needs),
// plus the custom SealPK CSRs.
#pragma once

#include "common/bits.h"
#include "common/check.h"

namespace sealpk::core {

namespace csr {
// Standard S-mode CSRs.
constexpr u16 kSstatus = 0x100;
constexpr u16 kStvec = 0x105;
constexpr u16 kSscratch = 0x140;
constexpr u16 kSepc = 0x141;
constexpr u16 kScause = 0x142;
constexpr u16 kStval = 0x143;
constexpr u16 kSatp = 0x180;
// User counters.
constexpr u16 kCycle = 0xC00;
constexpr u16 kTime = 0xC01;
constexpr u16 kInstret = 0xC02;
// Custom SealPK CSRs (S-mode read/write range 0x5C0-0x5FF).
// spkinfo: bit 63 = "last data page fault was a pkey denial", bits 9:0 =
// the faulting pkey. Lets the kernel augment SIGSEGV with the pkey
// (paper §III-B.2).
constexpr u16 kSpkInfo = 0x5C0;
// Staged permissible-range latches written by seal.start / seal.end in
// U-mode (or spk.range in S-mode), consumed by spk.seal.
constexpr u16 kSealStart = 0x5C1;
constexpr u16 kSealEnd = 0x5C2;

// sstatus fields.
constexpr u64 kSstatusSpp = u64{1} << 8;
constexpr u64 kSstatusSum = u64{1} << 18;

// satp fields.
constexpr u64 kSatpModeSv39 = u64{8} << 60;
constexpr u64 kSatpModeSv48 = u64{9} << 60;
constexpr u64 satp_ppn(u64 satp) { return bits(satp, 43, 0); }
constexpr u64 satp_mode(u64 satp) { return bits(satp, 63, 60); }
}  // namespace csr

class CsrFile {
 public:
  u64 sstatus = 0;
  u64 stvec = 0;
  u64 sscratch = 0;
  u64 sepc = 0;
  u64 scause = 0;
  u64 stval = 0;
  u64 satp = 0;
  u64 spkinfo = 0;
  u64 seal_start = 0;
  u64 seal_end = 0;

  // Returns false for an unimplemented CSR (caller raises illegal-inst).
  bool read(u16 addr, u64 cycle, u64 instret, u64* out) const {
    switch (addr) {
      case csr::kSstatus: *out = sstatus; return true;
      case csr::kStvec: *out = stvec; return true;
      case csr::kSscratch: *out = sscratch; return true;
      case csr::kSepc: *out = sepc; return true;
      case csr::kScause: *out = scause; return true;
      case csr::kStval: *out = stval; return true;
      case csr::kSatp: *out = satp; return true;
      case csr::kSpkInfo: *out = spkinfo; return true;
      case csr::kSealStart: *out = seal_start; return true;
      case csr::kSealEnd: *out = seal_end; return true;
      case csr::kCycle:
      case csr::kTime: *out = cycle; return true;
      case csr::kInstret: *out = instret; return true;
      default: return false;
    }
  }

  bool write(u16 addr, u64 value) {
    switch (addr) {
      case csr::kSstatus: sstatus = value; return true;
      case csr::kStvec: stvec = value; return true;
      case csr::kSscratch: sscratch = value; return true;
      case csr::kSepc: sepc = value; return true;
      case csr::kScause: scause = value; return true;
      case csr::kStval: stval = value; return true;
      case csr::kSatp: satp = value; return true;
      case csr::kSpkInfo: spkinfo = value; return true;
      case csr::kSealStart: seal_start = value; return true;
      case csr::kSealEnd: seal_end = value; return true;
      default: return false;  // counters are read-only
    }
  }

  // True if `addr` is accessible from U-mode (read-only counters only).
  static bool user_readable(u16 addr) {
    return addr == csr::kCycle || addr == csr::kTime ||
           addr == csr::kInstret;
  }
};

}  // namespace sealpk::core
