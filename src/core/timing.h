// Cycle-cost model for the simulated Rocket-class in-order core and the
// kernel software paths.
//
// The reproduction does not model the pipeline cycle-by-cycle; instead each
// architectural event is charged a calibrated cost. Sources for the
// calibration targets:
//   - Rocket's 5-stage in-order pipeline: ~1 IPC on L1 hits, pipelined
//     multiplier, iterative divider.
//   - paper §I: mprotect costs ~1094 cycles on average (dominated by the
//     U->S context switch, the page-table update and the TLB flush);
//     Intel's WRPKRU takes 11-260 cycles; SealPK's WRPKR is a RoCC
//     instruction executed without a context switch or TLB flush.
//   - paper §III-B.2 footnote: saving/restoring PKR across context
//     switches costs < 1 %.
// EXPERIMENTS.md documents how these constants map onto the measured
// numbers of Figure 5.
#pragma once

#include "common/bits.h"

namespace sealpk::core {

struct TimingModel {
  // --- hart-level costs ---------------------------------------------------
  u64 base_cycles = 1;           // issue cost of any instruction
  u64 mul_cycles = 4;            // Rocket pipelined multiplier latency
  u64 div_cycles = 33;           // Rocket iterative divider
  u64 mem_extra_cycles = 1;      // L1-hit load/store beyond base
  u64 tlb_miss_per_access = 12;  // per PTW memory access (up to 3 for Sv39)
  u64 rocc_cycles = 2;           // RoCC round-trip (RDPKR/WRPKR/seal.*)
  u64 trap_enter_cycles = 60;    // pipeline flush + CSR state save
  u64 trap_return_cycles = 40;   // sret path

  // --- kernel software-path costs (charged by the OS model) ---------------
  u64 syscall_dispatch_cycles = 220;   // U->S entry, reg save, dispatch, exit
  u64 vma_lookup_cycles = 80;         // find_vma + checks
  u64 pte_update_cycles = 55;          // per page: walk + modify + flush line
  // Resident-set-dependent component of an mprotect-style call: TLB/page-
  // walk-cache shootdown and kernel page-table cache pressure grow with the
  // process's mapped footprint (why the paper's SPEC programs — far larger
  // images than MiBench — suffer disproportionally under the mprotect
  // shadow stack).
  u64 mprotect_rss_cycles_per_page = 5;
  u64 tlb_flush_cycles = 12;           // sfence.vma issue
  u64 pkey_bookkeeping_cycles = 90;    // alloc/free map updates
  u64 fault_handler_cycles = 300;      // page-fault path up to signal post
  u64 cam_refill_handler_cycles = 180; // PK-CAM miss interrupt service
  u64 context_switch_cycles = 700;     // scheduler + non-PKR state swap
  u64 pkr_row_swap_cycles = 2;         // per PKR row saved + restored

  u64 ptw_cost(unsigned accesses) const {
    return tlb_miss_per_access * accesses;
  }
};

}  // namespace sealpk::core
