// PKRU — the Intel MPK baseline register (paper §II-A).
//
// One 32-bit register per logical core holding 2 bits per pkey for 16 keys:
// bit 2i = AD (access disable), bit 2i+1 = WD (write disable) — Intel SDM
// encoding. WRPKRU replaces the whole register in one shot; there is no
// sealing, which is exactly the attack surface SealPK's permission sealing
// closes.
#pragma once

#include "common/bits.h"
#include "common/check.h"

namespace sealpk::hw {

constexpr unsigned kMpkNumPkeys = 16;

class Pkru {
 public:
  u32 value() const { return value_; }
  void set(u32 v) { value_ = v; }

  bool access_disabled(u32 pkey) const {
    SEALPK_CHECK(pkey < kMpkNumPkeys);
    return bit(value_, 2 * pkey) != 0;
  }

  bool write_disabled(u32 pkey) const {
    SEALPK_CHECK(pkey < kMpkNumPkeys);
    return bit(value_, 2 * pkey + 1) != 0;
  }

  void set_perm(u32 pkey, bool access_disable, bool write_disable) {
    SEALPK_CHECK(pkey < kMpkNumPkeys);
    value_ = static_cast<u32>(
        deposit(deposit(value_, 2 * pkey, 2 * pkey, access_disable ? 1 : 0),
                2 * pkey + 1, 2 * pkey + 1, write_disable ? 1 : 0));
  }

  void reset() { value_ = 0; }

 private:
  u32 value_ = 0;
};

}  // namespace sealpk::hw
