// Donky-style key register model (paper §VI, related work).
//
// Donky (Schrammel et al., USENIX Security'20) stores the permissions of
// only FOUR pkeys at a time in a 64-bit CSR managed by a user-space
// library; an access whose key is not loaded traps to the library, which
// reloads the CSR. The paper's §VI argument against this design: "Donky
// requires extra cycles for the software library ... to load the missing
// pkey and its permission into the register. In our design, we access PKR
// in the same cycle as page-table permission checks."
//
// This unit-level model quantifies that argument in bench_ablation: the
// per-access cost of the 4-slot CSR vs. SealPK's 1024-entry PKR as the
// live-domain working set grows.
#pragma once

#include <array>

#include "common/bits.h"
#include "common/check.h"

namespace sealpk::hw {

constexpr unsigned kDonkySlots = 4;

struct DonkyStats {
  u64 lookups = 0;
  u64 hits = 0;
  u64 reloads = 0;
};

class DonkyKeyCsr {
 public:
  // Returns true and fills *perm on a hit; false means the software
  // library must reload() before the access can be checked.
  bool lookup(u32 pkey, u8* perm) {
    ++stats_.lookups;
    for (unsigned i = 0; i < kDonkySlots; ++i) {
      if (slots_[i].valid && slots_[i].pkey == pkey) {
        ++stats_.hits;
        touch(i);
        *perm = slots_[i].perm;
        return true;
      }
    }
    return false;
  }

  // The user-space handler's CSR update: replaces the LRU slot.
  void reload(u32 pkey, u8 perm) {
    SEALPK_CHECK(perm < 4);
    ++stats_.reloads;
    unsigned victim = 0;
    u64 oldest = ~u64{0};
    for (unsigned i = 0; i < kDonkySlots; ++i) {
      if (!slots_[i].valid) {
        victim = i;
        break;
      }
      if (slots_[i].last_use < oldest) {
        oldest = slots_[i].last_use;
        victim = i;
      }
    }
    slots_[victim] = {pkey, perm, true, ++clock_};
  }

  const DonkyStats& stats() const { return stats_; }
  void reset() {
    for (auto& s : slots_) s.valid = false;
    stats_ = {};
  }

 private:
  struct Slot {
    u32 pkey = 0;
    u8 perm = 0;
    bool valid = false;
    u64 last_use = 0;
  };

  void touch(unsigned idx) { slots_[idx].last_use = ++clock_; }

  std::array<Slot, kDonkySlots> slots_{};
  u64 clock_ = 0;
  DonkyStats stats_;
};

}  // namespace sealpk::hw
