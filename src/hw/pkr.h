// PKR — the protection-key rights memory (paper §III-A).
//
// A 2 Kb on-chip SRAM of 32 rows x 64 bits; each row holds the 2-bit
// permissions of 32 pkeys, so 1024 keys total. A pkey's upper 5 bits index
// the row, its lower 5 bits select the 2-bit field. Each field is
// (Read-Disable, Write-Disable); 00 grants everything the PTE grants and,
// because the two disables are independent, (RD=1, WD=0) yields a
// *write-only* domain — impossible with bare RISC-V PTE permissions.
#pragma once

#include <array>
#include <bit>

#include "common/bits.h"
#include "common/check.h"
#include "common/serial.h"

namespace sealpk::hw {

constexpr unsigned kNumPkeys = 1024;
constexpr unsigned kPkrRows = 32;
constexpr unsigned kKeysPerRow = 32;

// 2-bit pkey permission field values. Bit 1 = Read-Disable, bit 0 =
// Write-Disable (matching Figure 2's (RD, WD) ordering).
enum PkeyPerm : u8 {
  kPermRw = 0b00,        // no restriction beyond the PTE
  kPermReadOnly = 0b01,  // WD: write disabled
  kPermWriteOnly = 0b10, // RD: read disabled
  kPermNone = 0b11,      // no access
};

constexpr u32 pkr_row_of(u32 pkey) { return (pkey >> 5) & 0x1F; }
constexpr u32 pkr_slot_of(u32 pkey) { return pkey & 0x1F; }

struct PkrStats {
  u64 row_reads = 0;
  u64 row_writes = 0;
  u64 perm_lookups = 0;
};

class Pkr {
 public:
  using Snapshot = std::array<u64, kPkrRows>;

  // Architectural port: RDPKR reads one 64-bit row.
  u64 read_row(u32 row) {
    SEALPK_CHECK(row < kPkrRows);
    ++stats_.row_reads;
    return rows_[row];
  }

  // Architectural port: WRPKR overwrites one 64-bit row.
  void write_row(u32 row, u64 value) {
    SEALPK_CHECK(row < kPkrRows);
    ++stats_.row_writes;
    rows_[row] = value;
    parity_[row] = row_parity(value);
  }

  u64 peek_row(u32 row) const {
    SEALPK_CHECK(row < kPkrRows);
    return rows_[row];
  }

  // Control-logic port: the 2-bit permission of one pkey, read during the
  // effective-permission check on every data access.
  u8 perm_of(u32 pkey) {
    SEALPK_CHECK(pkey < kNumPkeys);
    ++stats_.perm_lookups;
    return static_cast<u8>(
        bits(rows_[pkr_row_of(pkey)], 2 * pkr_slot_of(pkey) + 1,
             2 * pkr_slot_of(pkey)));
  }

  u8 peek_perm(u32 pkey) const {
    SEALPK_CHECK(pkey < kNumPkeys);
    return static_cast<u8>(
        bits(rows_[pkr_row_of(pkey)], 2 * pkr_slot_of(pkey) + 1,
             2 * pkr_slot_of(pkey)));
  }

  // Kernel-path helper: set a single key's 2-bit field (used by pkey_alloc
  // / pkey_free, which run in supervisor mode and own the whole structure).
  void set_perm(u32 pkey, u8 perm) {
    SEALPK_CHECK(pkey < kNumPkeys && perm < 4);
    const u32 row = pkr_row_of(pkey);
    rows_[row] = deposit(rows_[row], 2 * pkr_slot_of(pkey) + 1,
                         2 * pkr_slot_of(pkey), perm);
    parity_[row] = row_parity(rows_[row]);
  }

  bool read_disabled(u32 pkey) { return (perm_of(pkey) & 0b10) != 0; }
  bool write_disabled(u32 pkey) { return (perm_of(pkey) & 0b01) != 0; }

  // Canonical architectural state: the 32 rows and nothing else (no parity,
  // no stats). This is the state the snapshot layer swaps per thread and the
  // state the model checker hashes for visited-set deduplication — two
  // observers of the same architecture, so they must share one accessor.
  const Snapshot& canonical_state() const { return rows_; }

  // Context-switch support (§III-B.2): the kernel saves/restores all 32
  // rows per thread.
  Snapshot save() const { return canonical_state(); }
  void restore(const Snapshot& snapshot) {
    rows_ = snapshot;
    for (u32 row = 0; row < kPkrRows; ++row)
      parity_[row] = row_parity(rows_[row]);
  }
  void reset() {
    rows_.fill(0);
    parity_.fill(false);
  }

  // --- SRAM fault model ----------------------------------------------------
  // Every legitimate write path above refreshes a per-row parity bit (one
  // even-parity bit per 64-bit word, the usual SRAM soft-error detector).
  // A fault injector flips *data only*, so a single-bit upset leaves the
  // stored parity stale and `parity_ok` reports the row as corrupt until a
  // kernel scrub rewrites it.

  // Flip one data bit without updating parity (models a particle strike).
  void corrupt_bit(u32 row, u32 bit) {
    SEALPK_CHECK(row < kPkrRows && bit < 64);
    rows_[row] ^= u64{1} << bit;
  }

  bool parity_ok(u32 row) const {
    SEALPK_CHECK(row < kPkrRows);
    return parity_[row] == row_parity(rows_[row]);
  }

  // Kernel scrub path: rewrite a row from the software shadow, restoring
  // data and parity together. Does not count as an architectural WRPKR.
  void scrub_row(u32 row, u64 value) {
    SEALPK_CHECK(row < kPkrRows);
    rows_[row] = value;
    parity_[row] = row_parity(value);
  }

  const PkrStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  // Snapshot port. Unlike restore(), this carries the parity bits verbatim:
  // a checkpoint taken while a row is corrupt must reproduce the stale
  // parity, not launder it by recomputing.
  void save_state(ByteWriter& w) const {
    for (u64 row : rows_) w.put_u64(row);
    for (bool p : parity_) w.put_bool(p);
    w.put_u64(stats_.row_reads);
    w.put_u64(stats_.row_writes);
    w.put_u64(stats_.perm_lookups);
  }
  void load_state(ByteReader& r) {
    for (u64& row : rows_) row = r.get_u64();
    for (u32 i = 0; i < kPkrRows; ++i) parity_[i] = r.get_bool();
    stats_.row_reads = r.get_u64();
    stats_.row_writes = r.get_u64();
    stats_.perm_lookups = r.get_u64();
  }

 private:
  static bool row_parity(u64 value) { return (std::popcount(value) & 1) != 0; }

  Snapshot rows_{};
  std::array<bool, kPkrRows> parity_{};
  PkrStats stats_;
};

}  // namespace sealpk::hw
