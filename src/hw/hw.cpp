// Anchor translation unit for the repro_hw static library.
#include "hw/pkr.h"
#include "hw/pkru.h"
#include "hw/seal_unit.h"

namespace sealpk::hw {
static_assert(kNumPkeys == kPkrRows * kKeysPerRow);
static_assert(pkr_row_of(0x3C1) == 0x1E);  // Figure 2's pkey 1111000001
static_assert(pkr_slot_of(0x3C1) == 0x01);
}  // namespace sealpk::hw
