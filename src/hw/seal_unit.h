// SealReg + PK-CAM — the permission-sealing hardware (paper §IV, Fig. 4).
//
// SealReg tracks which pkeys have sealed permissions (a 1024-bit one-time
// fuse map). PK-CAM is a 16-entry content-addressable cache of
// pkey -> [addr_start, addr_end] permissible ranges. Before executing a
// WRPKR that names a sealed pkey, the pipeline consults PK-CAM:
//   - hit and PC inside the range  -> the write proceeds;
//   - hit and PC outside the range -> hardware exception;
//   - miss                         -> trap to the OS to refill the CAM.
#pragma once

#include <array>
#include <bitset>
#include <optional>

#include "common/bits.h"
#include "common/check.h"
#include "common/serial.h"
#include "hw/pkr.h"

namespace sealpk::hw {

constexpr unsigned kPkCamEntries = 16;

struct CamEntry {
  u16 pkey = 0;
  u64 addr_start = 0;
  u64 addr_end = 0;  // inclusive, per Figure 4's hit condition
};

struct SealUnitStats {
  u64 checks = 0;
  u64 cam_hits = 0;
  u64 cam_misses = 0;
  u64 violations = 0;
  u64 refills = 0;
};

enum class SealCheck : u8 {
  kAllowed,    // pkey unsealed, or sealed with PC in range
  kViolation,  // sealed, CAM hit, PC outside the permissible range
  kMiss,       // sealed but range not cached: OS refill required
};

class SealUnit {
 public:
  // `active_cam_entries` bounds the FIFO replacement cursor, modelling a
  // down-scaled CAM (the model checker explores with 2 entries so eviction
  // and refill dynamics are reachable within a tiny state space). The
  // default is the paper's full 16-entry CAM; the snapshot format is
  // unaffected — the active count is a build parameter, not state.
  explicit SealUnit(unsigned active_cam_entries = kPkCamEntries)
      : active_cam_entries_(active_cam_entries) {
    SEALPK_CHECK(active_cam_entries >= 1 &&
                 active_cam_entries <= kPkCamEntries);
  }

  unsigned active_cam_entries() const { return active_cam_entries_; }

  bool sealed(u32 pkey) const {
    SEALPK_CHECK(pkey < kNumPkeys);
    return seal_reg_[pkey];
  }

  // Supervisor commit path (spk.seal). One-time fuse: re-sealing an
  // already-sealed key is a hardware no-op the kernel screens earlier.
  void set_sealed(u32 pkey) {
    SEALPK_CHECK(pkey < kNumPkeys);
    seal_reg_[pkey] = true;
  }

  // Evaluates Figure 4's hit condition for a WRPKR at `pc` naming `pkey`.
  SealCheck check_wrpkr(u32 pkey, u64 pc) {
    SEALPK_CHECK(pkey < kNumPkeys);
    ++stats_.checks;
    if (!seal_reg_[pkey]) return SealCheck::kAllowed;
    for (const auto& slot : cam_) {
      if (slot.valid && slot.entry.pkey == pkey) {
        ++stats_.cam_hits;
        if (pc >= slot.entry.addr_start && pc <= slot.entry.addr_end) {
          return SealCheck::kAllowed;
        }
        ++stats_.violations;
        return SealCheck::kViolation;
      }
    }
    ++stats_.cam_misses;
    return SealCheck::kMiss;
  }

  // OS refill path (the paper handles the CAM-miss interrupt in the kernel).
  // FIFO replacement across the 16 entries.
  void refill(u32 pkey, u64 addr_start, u64 addr_end) {
    SEALPK_CHECK(pkey < kNumPkeys);
    SEALPK_CHECK(addr_start <= addr_end);
    ++stats_.refills;
    for (auto& slot : cam_) {
      if (slot.valid && slot.entry.pkey == pkey) {
        slot.entry = {static_cast<u16>(pkey), addr_start, addr_end};
        return;
      }
    }
    cam_[fifo_next_] = {
        {static_cast<u16>(pkey), addr_start, addr_end}, true};
    fifo_next_ = (fifo_next_ + 1) % active_cam_entries_;
  }

  // Fault-model port: a refill that skips the replace-in-place scan and
  // unconditionally consumes the FIFO slot, leaving two CAM entries for the
  // same pkey. Models a glitched refill handshake. check_wrpkr matches the
  // first valid entry, so the stale duplicate shadows the fresh one until
  // clear_key or an eviction removes it.
  void refill_duplicate(u32 pkey, u64 addr_start, u64 addr_end) {
    SEALPK_CHECK(pkey < kNumPkeys);
    SEALPK_CHECK(addr_start <= addr_end);
    ++stats_.refills;
    cam_[fifo_next_] = {
        {static_cast<u16>(pkey), addr_start, addr_end}, true};
    fifo_next_ = (fifo_next_ + 1) % active_cam_entries_;
  }

  // Auditor port: count valid CAM entries naming `pkey` (> 1 after a
  // duplicated refill).
  size_t cam_count_of(u32 pkey) const {
    size_t n = 0;
    for (const auto& slot : cam_)
      if (slot.valid && slot.entry.pkey == pkey) ++n;
    return n;
  }

  // Kernel scrub path for duplicated refills: invalidate every entry for
  // `pkey` beyond the first (match order equals check_wrpkr's search order,
  // so behaviour is unchanged and the wasted slots are reclaimed). Returns
  // the number of entries dropped.
  size_t drop_duplicates(u32 pkey) {
    size_t dropped = 0;
    bool seen = false;
    for (auto& slot : cam_) {
      if (!slot.valid || slot.entry.pkey != pkey) continue;
      if (seen) {
        slot.valid = false;
        ++dropped;
      }
      seen = true;
    }
    return dropped;
  }

  // Kernel drain path: when a freed pkey's last page disappears, its seal
  // dissolves so a future owner of the key starts unsealed (§IV).
  void clear_key(u32 pkey) {
    SEALPK_CHECK(pkey < kNumPkeys);
    seal_reg_[pkey] = false;
    for (auto& slot : cam_) {
      if (slot.valid && slot.entry.pkey == pkey) slot.valid = false;
    }
  }

  // Auditor port: the valid entry in CAM slot `i`, or nullptr when empty.
  const CamEntry* cam_slot(size_t i) const {
    SEALPK_CHECK(i < kPkCamEntries);
    return cam_[i].valid ? &cam_[i].entry : nullptr;
  }

  std::optional<CamEntry> cam_lookup(u32 pkey) const {
    for (const auto& slot : cam_) {
      if (slot.valid && slot.entry.pkey == pkey) return slot.entry;
    }
    return std::nullopt;
  }

  size_t cam_valid_count() const {
    size_t n = 0;
    for (const auto& slot : cam_)
      if (slot.valid) ++n;
    return n;
  }

  // Context-switch support: SealReg and PK-CAM are per-process state the
  // kernel swaps (§IV "we modify the Linux kernel to maintain the SealReg
  // information as well as permissible range of each pkey during context
  // switches").
  struct Snapshot {
    std::bitset<kNumPkeys> seal_reg;
    std::array<CamEntry, kPkCamEntries> cam_entries;
    std::array<bool, kPkCamEntries> cam_valid;
    unsigned fifo_next = 0;
  };

  // Canonical architectural state: SealReg, the CAM array, and the FIFO
  // cursor — exactly what context switches swap and the model checker
  // hashes. save() keeps its historical name for the kernel call sites.
  Snapshot canonical_state() const { return save(); }

  // Serialized form of a Snapshot. Both the process snapshot layer
  // (src/snapshot via the kernel's per-process seal images) and save_state
  // below emit this same byte layout; keeping it in one place means the two
  // can never drift.
  static void save_snapshot(ByteWriter& w, const Snapshot& s) {
    w.put_bitset(s.seal_reg);
    for (unsigned i = 0; i < kPkCamEntries; ++i) {
      w.put_u16(s.cam_entries[i].pkey);
      w.put_u64(s.cam_entries[i].addr_start);
      w.put_u64(s.cam_entries[i].addr_end);
      w.put_bool(s.cam_valid[i]);
    }
    w.put_u32(s.fifo_next);
  }

  static Snapshot load_snapshot(ByteReader& r) {
    Snapshot s;
    s.seal_reg = r.get_bitset<kNumPkeys>();
    for (unsigned i = 0; i < kPkCamEntries; ++i) {
      s.cam_entries[i].pkey = r.get_u16();
      s.cam_entries[i].addr_start = r.get_u64();
      s.cam_entries[i].addr_end = r.get_u64();
      s.cam_valid[i] = r.get_bool();
    }
    s.fifo_next = r.get_u32();
    return s;
  }

  Snapshot save() const {
    Snapshot s;
    s.seal_reg = seal_reg_;
    for (unsigned i = 0; i < kPkCamEntries; ++i) {
      s.cam_entries[i] = cam_[i].entry;
      s.cam_valid[i] = cam_[i].valid;
    }
    s.fifo_next = fifo_next_;
    return s;
  }

  void restore(const Snapshot& s) {
    seal_reg_ = s.seal_reg;
    for (unsigned i = 0; i < kPkCamEntries; ++i) {
      cam_[i].entry = s.cam_entries[i];
      cam_[i].valid = s.cam_valid[i];
    }
    fifo_next_ = s.fifo_next;
  }

  void reset() {
    seal_reg_.reset();
    for (auto& slot : cam_) slot.valid = false;
    fifo_next_ = 0;
  }

  const SealUnitStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  // Snapshot port: everything save()/restore() covers plus the stats, so a
  // resumed run's counters match an uninterrupted one.
  void save_state(ByteWriter& w) const {
    save_snapshot(w, canonical_state());
    w.put_u64(stats_.checks);
    w.put_u64(stats_.cam_hits);
    w.put_u64(stats_.cam_misses);
    w.put_u64(stats_.violations);
    w.put_u64(stats_.refills);
  }
  void load_state(ByteReader& r) {
    restore(load_snapshot(r));
    stats_.checks = r.get_u64();
    stats_.cam_hits = r.get_u64();
    stats_.cam_misses = r.get_u64();
    stats_.violations = r.get_u64();
    stats_.refills = r.get_u64();
  }

 private:
  struct Slot {
    CamEntry entry;
    bool valid = false;
  };
  unsigned active_cam_entries_ = kPkCamEntries;
  std::bitset<kNumPkeys> seal_reg_;
  std::array<Slot, kPkCamEntries> cam_{};
  unsigned fifo_next_ = 0;
  SealUnitStats stats_;
};

// WRPKR row-commit merge (§IV): a row write may only change the fields of
// unsealed keys plus the named key itself; every *other* sealed key in the
// row keeps its current 2-bit field. Shared by the hart's WRPKR commit and
// the model checker's harness so the two cannot diverge.
inline u64 merge_sealed_row(const SealUnit& unit, u64 old_row, u64 next,
                            u32 row, u32 pkey) {
  for (u32 slot = 0; slot < kKeysPerRow; ++slot) {
    const u32 other = row * kKeysPerRow + slot;
    if (other == pkey || !unit.sealed(other)) continue;
    next = deposit(next, 2 * slot + 1, 2 * slot,
                   bits(old_row, 2 * slot + 1, 2 * slot));
  }
  return next;
}

}  // namespace sealpk::hw
