#include "fault/fault.h"

#include <algorithm>

#include "vault/format.h"

namespace sealpk::fault {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPkrBitFlip: return "pkr-bit-flip";
    case FaultKind::kTlbCorrupt: return "tlb-corrupt";
    case FaultKind::kPteCorrupt: return "pte-corrupt";
    case FaultKind::kCamDropRefill: return "cam-drop-refill";
    case FaultKind::kCamDupRefill: return "cam-dup-refill";
    case FaultKind::kSpuriousTrap: return "spurious-trap";
    case FaultKind::kVaultJournalCorrupt: return "vault-journal-corrupt";
    case FaultKind::kVaultCommitFlip: return "vault-commit-flip";
    case FaultKind::kVkeyTableCorrupt: return "vkey-table-corrupt";
    case FaultKind::kNumKinds: break;
  }
  return "unknown";
}

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan), rng_(plan.seed) {
  for (const FaultKind kind :
       {FaultKind::kPkrBitFlip, FaultKind::kTlbCorrupt,
        FaultKind::kPteCorrupt, FaultKind::kSpuriousTrap,
        FaultKind::kVaultJournalCorrupt, FaultKind::kVaultCommitFlip,
        FaultKind::kVkeyTableCorrupt}) {
    if (plan_.has(kind)) step_kinds_.push_back(kind);
  }
  if (plan_.enabled && !step_kinds_.empty()) schedule_next(0);
}

// Geometric-ish gap sampling: uniform in [1, 2/rate] has the right mean, is
// O(1) per fault, and stays bit-reproducible for a given seed.
void FaultInjector::schedule_next(u64 now) {
  if (plan_.rate <= 0.0) {
    next_fire_ = ~u64{0};
    return;
  }
  const u64 mean = std::max<u64>(1, static_cast<u64>(1.0 / plan_.rate));
  next_fire_ = now + 1 + rng_.below(2 * mean);
}

void FaultInjector::record(FaultKind kind, const core::Hart& hart,
                           u64 detail0, u64 detail1) {
  ++lifetime_injected_;
  events_.push_back({kind, hart.instret(), detail0, detail1,
                     FaultResolution::kOutstanding});
  if (recorder_ != nullptr) {
    recorder_->emit(obs::EventKind::kFaultInjected, hart.instret(),
                    hart.cycles(), obs::kNoPkey, static_cast<u64>(kind),
                    detail0);
  }
}

void FaultInjector::maybe_inject(core::Hart& hart, os::Kernel& kernel) {
  if (!plan_.enabled || hart.instret() < next_fire_) return;
  if (!budget_left()) {
    next_fire_ = ~u64{0};
    return;
  }
  // Only strike while a thread is actually running user code: the injected
  // state is per-process, and a spurious trap needs a victim to resume.
  if (hart.priv() != core::Priv::kUser || !kernel.has_current_thread()) {
    return;
  }
  if (suppress_ > 0) {
    // Post-rollback replay: swallow the firing that doomed the previous
    // attempt. The fire point is consumed so the window re-executes clean.
    --suppress_;
    schedule_next(hart.instret());
    return;
  }
  const bool sealpk = hart.config().flavor == core::IsaFlavor::kSealPk;
  const FaultKind kind = step_kinds_[rng_.below(step_kinds_.size())];
  switch (kind) {
    case FaultKind::kPkrBitFlip: {
      if (!sealpk) break;  // no PKR SRAM in the MPK flavour
      const u32 row = static_cast<u32>(rng_.below(hw::kPkrRows));
      const u32 bit = static_cast<u32>(rng_.below(64));
      hart.pkr().corrupt_bit(row, bit);
      record(kind, hart, row, bit);
      break;
    }
    case FaultKind::kTlbCorrupt: {
      mem::Tlb& tlb = hart.dtlb();
      const size_t cap = tlb.capacity();
      const size_t start = rng_.below(cap);
      for (size_t i = 0; i < cap; ++i) {
        const size_t slot = (start + i) % cap;
        if (tlb.peek_slot(slot) == nullptr) continue;
        u16 pkey_xor = 0;
        u8 perm_xor = 0;
        bool flip_dirty = false;
        const u32 max_pkey =
            sealpk ? hw::kNumPkeys : (u32{1} << mem::pte::kMpkPkeyBits);
        switch (rng_.below(3)) {
          case 0:
            pkey_xor = static_cast<u16>(1 + rng_.below(max_pkey - 1));
            break;
          case 1:
            perm_xor = static_cast<u8>(1 + rng_.below(15));
            break;
          default:
            flip_dirty = true;
            break;
        }
        tlb.corrupt_slot(slot, pkey_xor, perm_xor, flip_dirty);
        record(kind, hart, slot,
               (static_cast<u64>(pkey_xor) << 16) |
                   (static_cast<u64>(perm_xor) << 1) |
                   (flip_dirty ? 1 : 0));
        break;
      }
      break;
    }
    case FaultKind::kPteCorrupt: {
      os::Process& proc =
          kernel.process(kernel.thread(kernel.current_tid()).pid);
      os::AddressSpace& as = *proc.aspace;
      const auto& vmas = as.vmas();
      if (vmas.empty()) break;
      auto it = vmas.begin();
      std::advance(it, rng_.below(vmas.size()));
      const os::Vma& vma = it->second;
      const u64 page =
          vma.start + (rng_.below(vma.pages()) << mem::kPageShift);
      const u64 slot = as.leaf_pte_addr(page);
      if (slot == 0) break;
      const u32 bit = static_cast<u32>(mem::pte::kPkeyShift +
                                       rng_.below(as.pkey_bits()));
      hart.mem().write_u64(slot,
                           hart.mem().read_u64(slot) ^ (u64{1} << bit));
      record(kind, hart, page, bit);
      break;
    }
    case FaultKind::kSpuriousTrap: {
      record(kind, hart, hart.pc(), 0);
      const int pid = kernel.thread(kernel.current_tid()).pid;
      hart.inject_trap(core::TrapCause::kMachineCheck, 0);
      kernel.handle_trap();
      resolve(kind, kernel.process(pid).exited
                        ? FaultResolution::kProcessKilled
                        : FaultResolution::kRecovered);
      break;
    }
    case FaultKind::kVaultJournalCorrupt:
    case FaultKind::kVaultCommitFlip: {
      // Bit rot inside the sealed-storage region: flip one bit of a journal
      // record. kVaultJournalCorrupt draws from the whole journal (intents
      // and commits alike); kVaultCommitFlip aims at the kernel-owned odd
      // (commit) slots only. The per-record FNV-1a must turn either into a
      // detected refusal, never silently served data.
      os::Process& proc =
          kernel.process(kernel.thread(kernel.current_tid()).pid);
      const std::optional<vault::VaultLocation> loc =
          vault::find_vault(*proc.aspace);
      if (!loc) break;  // no vault mapped: nothing to strike
      u64 index = rng_.below(loc->geo.journal_cap);
      if (kind == FaultKind::kVaultCommitFlip) index |= 1;
      const u64 byte_off = rng_.below(vault::kRecordSize);
      const u32 bit = static_cast<u32>(rng_.below(8));
      const u64 addr = loc->base + loc->geo.record_off(index) + byte_off;
      u8 byte = 0;
      if (!proc.aspace->copy_in(addr, &byte, 1)) break;
      byte ^= static_cast<u8>(u8{1} << bit);
      if (!proc.aspace->copy_out(addr, &byte, 1)) break;
      record(kind, hart, addr, bit);
      break;
    }
    case FaultKind::kVkeyTableCorrupt: {
      // Flip low bits of a live mapping's recorded physical key. The table
      // is kernel metadata, not guest memory: only the vkey-coherence audit
      // (PTE ground truth vs table) can see and repair the drift.
      os::Process& proc =
          kernel.process(kernel.thread(kernel.current_tid()).pid);
      if (!proc.vkeys) break;  // process never virtualized
      std::vector<u64> live;
      for (const auto& [vkey, entry] : proc.vkeys->entries()) {
        // Only strike entries that own pages: a mapping with no groups has
        // no PTE ground truth, so its corruption could never be detected.
        if (entry.state != mpk::VkeyState::kUnmapped && !entry.groups.empty()) {
          live.push_back(vkey);
        }
      }
      if (live.empty()) break;
      const u64 vkey = live[rng_.below(live.size())];
      const u32 mask = static_cast<u32>(1 + rng_.below(hw::kNumPkeys - 1));
      mpk::VkeyEntry* entry = proc.vkeys->find(vkey);
      proc.vkeys->force_phys(vkey, (entry->phys ^ mask) % hw::kNumPkeys);
      record(kind, hart, vkey, mask);
      break;
    }
    case FaultKind::kCamDropRefill:
    case FaultKind::kCamDupRefill:
    case FaultKind::kNumKinds:
      break;  // never in step_kinds_
  }
  schedule_next(hart.instret());
}

bool FaultInjector::should_drop_refill(const core::Hart& hart) {
  if (!plan_.enabled || !plan_.has(FaultKind::kCamDropRefill)) return false;
  if (budget_left() && rng_.chance(plan_.cam_rate)) {
    if (suppress_ > 0) {
      --suppress_;  // swallowed: the refill goes through after all
    } else {
      record(FaultKind::kCamDropRefill, hart, 0, 0);
      return true;
    }
  }
  // This refill goes through, completing the retry of any earlier drop.
  resolve(FaultKind::kCamDropRefill, FaultResolution::kRecovered);
  return false;
}

bool FaultInjector::should_dup_refill(const core::Hart& hart) {
  if (!plan_.enabled || !plan_.has(FaultKind::kCamDupRefill)) return false;
  if (!budget_left() || !rng_.chance(plan_.cam_rate)) return false;
  if (suppress_ > 0) {
    --suppress_;
    return false;
  }
  record(FaultKind::kCamDupRefill, hart, 0, 0);
  return true;
}

void FaultInjector::note_recoveries(const os::KernelStats& stats) {
  if (stats.pkr_scrubs > seen_pkr_scrubs_) {
    resolve(FaultKind::kPkrBitFlip, FaultResolution::kRecovered);
  }
  if (stats.tlb_flush_recoveries > seen_tlb_flushes_) {
    resolve(FaultKind::kTlbCorrupt, FaultResolution::kRecovered);
  }
  if (stats.pte_repairs > seen_pte_repairs_) {
    resolve(FaultKind::kPteCorrupt, FaultResolution::kRecovered);
  }
  if (stats.cam_dedups > seen_cam_dedups_) {
    resolve(FaultKind::kCamDupRefill, FaultResolution::kRecovered);
  }
  if (stats.vkey_repairs > seen_vkey_repairs_) {
    resolve(FaultKind::kVkeyTableCorrupt, FaultResolution::kRecovered);
  }
  // spurious_fault_fixes needs no kind mapping of its own: each fix bumps
  // one of the per-kind counters above as well (pte_repairs / pkr_scrubs /
  // tlb_flush_recoveries), which attributes the event.
  seen_pkr_scrubs_ = stats.pkr_scrubs;
  seen_tlb_flushes_ = stats.tlb_flush_recoveries;
  seen_pte_repairs_ = stats.pte_repairs;
  seen_cam_dedups_ = stats.cam_dedups;
  seen_vkey_repairs_ = stats.vkey_repairs;
}

void FaultInjector::note_vault_detections(u64 corruption_detected) {
  if (corruption_detected > seen_vault_detected_) {
    resolve(FaultKind::kVaultJournalCorrupt, FaultResolution::kRecovered);
    resolve(FaultKind::kVaultCommitFlip, FaultResolution::kRecovered);
  }
  seen_vault_detected_ = corruption_detected;
}

void FaultInjector::resolve(FaultKind kind, FaultResolution resolution) {
  for (auto& event : events_) {
    if (event.kind == kind &&
        event.resolution == FaultResolution::kOutstanding) {
      event.resolution = resolution;
    }
  }
}

void FaultInjector::resolve_all_outstanding(FaultResolution resolution) {
  for (auto& event : events_) {
    if (event.resolution == FaultResolution::kOutstanding) {
      event.resolution = resolution;
    }
  }
}

u64 FaultInjector::injected(FaultKind kind) const {
  u64 n = 0;
  for (const auto& event : events_) {
    if (event.kind == kind) ++n;
  }
  return n;
}

u64 FaultInjector::resolved(FaultKind kind,
                            FaultResolution resolution) const {
  u64 n = 0;
  for (const auto& event : events_) {
    if (event.kind == kind && event.resolution == resolution) ++n;
  }
  return n;
}

u64 FaultInjector::outstanding() const {
  u64 n = 0;
  for (const auto& event : events_) {
    if (event.resolution == FaultResolution::kOutstanding) ++n;
  }
  return n;
}

void FaultInjector::save_state(ByteWriter& w) const {
  w.put_u64(rng_.state());
  w.put_u64(next_fire_);
  w.put_u64(suppress_);
  w.put_u64(events_.size());
  for (const auto& event : events_) {
    w.put_u8(static_cast<u8>(event.kind));
    w.put_u64(event.instret);
    w.put_u64(event.detail0);
    w.put_u64(event.detail1);
    w.put_u8(static_cast<u8>(event.resolution));
  }
  w.put_u64(seen_pkr_scrubs_);
  w.put_u64(seen_tlb_flushes_);
  w.put_u64(seen_pte_repairs_);
  w.put_u64(seen_cam_dedups_);
}

void FaultInjector::load_state(ByteReader& r) {
  rng_.set_state(r.get_u64());
  next_fire_ = r.get_u64();
  suppress_ = r.get_u64();
  events_.resize(r.get_u64());
  for (auto& event : events_) {
    event.kind = static_cast<FaultKind>(r.get_u8());
    event.instret = r.get_u64();
    event.detail0 = r.get_u64();
    event.detail1 = r.get_u64();
    event.resolution = static_cast<FaultResolution>(r.get_u8());
  }
  seen_pkr_scrubs_ = r.get_u64();
  seen_tlb_flushes_ = r.get_u64();
  seen_pte_repairs_ = r.get_u64();
  seen_cam_dedups_ = r.get_u64();
  // Deliberately NOT restored: across a rollback the lifetime count keeps
  // every firing of the doomed attempt, so max_faults stays a hard budget.
  // A fresh restore (new injector) starts from the recorded history.
  lifetime_injected_ = std::max<u64>(lifetime_injected_, events_.size());
}

}  // namespace sealpk::fault
