// Seeded, deterministic fault injection for the simulated machine.
//
// The injector models soft errors and glitches in exactly the hardware
// state the paper's trust argument depends on: the PKR SRAM rows, the
// DTLB's pkey/permission fields, the PTE pkey bits in DRAM, the PK-CAM
// refill handshake, and the trap logic itself (spurious machine checks).
// Every injection is recorded as a typed FaultEvent; the kernel's recovery
// paths and the MachineAuditor later mark events recovered, killed, or
// masked-benign, so a run can prove that no injected fault went
// unaccounted.
//
// Resolution bookkeeping is kind-granular: a scrub/flush/repair action
// recovers *all* outstanding corruption of its kind (which matches the
// hardware semantics — a full TLB flush clears every corrupted line, a
// shadow scrub rewrites every row).
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/serial.h"
#include "core/hart.h"
#include "os/kernel.h"

namespace sealpk::fault {

enum class FaultKind : u8 {
  kPkrBitFlip = 0,   // single-bit upset in a PKR SRAM row
  kTlbCorrupt,       // pkey/permission/dirty flip in a cached DTLB entry
  kPteCorrupt,       // pkey-field bit flip in a leaf PTE in DRAM
  kCamDropRefill,    // PK-CAM refill lost by the handler
  kCamDupRefill,     // PK-CAM refill committed twice
  kSpuriousTrap,     // machine-check trap with no underlying corruption
  // Vault durability kinds (src/vault): bit rot inside the sealed-storage
  // region itself. Opt-in (not part of kAllFaultKinds) — a run without a
  // vault has nothing for them to hit.
  kVaultJournalCorrupt,  // bit flip in a journal record (intent or commit)
  kVaultCommitFlip,      // bit flip targeted at a commit record slot
  // Vkey-table corruption (src/mpk/vkey_table.h): flips bits of a mapped
  // virtual key's recorded physical key, desynchronizing the table from
  // the PTE ground truth. Opt-in like the vault kinds — a process that
  // never virtualizes has no table to strike.
  kVkeyTableCorrupt,
  kNumKinds,
};

const char* fault_kind_name(FaultKind kind);

constexpr u32 kind_bit(FaultKind kind) {
  return u32{1} << static_cast<u32>(kind);
}
// FROZEN at the six pre-vault kinds: kAllFaultKinds seeds the default
// FaultPlan, so widening it would silently change which kinds existing
// chaos seeds draw from and perturb every recorded RNG stream. Vault runs
// opt in with kVaultFaultKinds explicitly.
constexpr u32 kAllFaultKinds =
    (u32{1} << (static_cast<u32>(FaultKind::kSpuriousTrap) + 1)) - 1;
constexpr u32 kVaultFaultKinds = kind_bit(FaultKind::kVaultJournalCorrupt) |
                                 kind_bit(FaultKind::kVaultCommitFlip);
constexpr u32 kVkeyFaultKinds = kind_bit(FaultKind::kVkeyTableCorrupt);

enum class FaultResolution : u8 {
  kOutstanding,    // injected, not yet detected or explained
  kRecovered,      // a scrub/flush/repair/retry restored consistency
  kProcessKilled,  // surfaced as a machine-check or watchdog kill
  kMaskedBenign,   // never architecturally visible (verified by final audit)
};

struct FaultPlan {
  bool enabled = false;
  u64 seed = 1;
  // Expected per-retired-instruction probability of a state-corruption
  // fault (PKR/TLB/PTE/spurious-trap kinds, chosen uniformly per firing).
  double rate = 1e-5;
  // Per-refill probability for the CAM drop/duplicate hooks.
  double cam_rate = 0.02;
  u64 max_faults = 0;  // 0 = unlimited
  u32 kinds = kAllFaultKinds;

  bool has(FaultKind kind) const { return (kinds & kind_bit(kind)) != 0; }
};

struct FaultEvent {
  FaultKind kind = FaultKind::kPkrBitFlip;
  u64 instret = 0;   // retirement count at injection time
  u64 detail0 = 0;   // kind-specific: row / TLB slot / vaddr
  u64 detail1 = 0;   // kind-specific: bit index / corruption mask
  FaultResolution resolution = FaultResolution::kOutstanding;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  const FaultPlan& plan() const { return plan_; }

  // Called by the run loop between retired instructions while the hart is
  // in U-mode. O(1) when no fault is due. May corrupt PKR/TLB/PTE state or
  // take a spurious machine-check trap (dispatching the kernel handler
  // in-place).
  void maybe_inject(core::Hart& hart, os::Kernel& kernel);

  // CAM-refill perturbation hooks, wired into KernelConfig by the machine.
  // A refill that goes through (drop hook returns false) completes the
  // retry of any earlier dropped refill.
  bool should_drop_refill(const core::Hart& hart);
  bool should_dup_refill(const core::Hart& hart);

  // Kind-granular resolution driven by the kernel's recovery counters: the
  // caller passes the latest stats and deltas since the previous call mark
  // the matching kinds recovered.
  void note_recoveries(const os::KernelStats& stats);

  // Vault analogue: a growing corruption_detected counter means the kernel
  // refused a checksum-bad record/payload, which is exactly how a vault
  // fault is survived — mark both vault kinds recovered on the delta.
  void note_vault_detections(u64 corruption_detected);

  void resolve(FaultKind kind, FaultResolution resolution);
  void resolve_all_outstanding(FaultResolution resolution);

  const std::vector<FaultEvent>& events() const { return events_; }
  u64 total_injected() const { return events_.size(); }
  u64 injected(FaultKind kind) const;
  u64 resolved(FaultKind kind, FaultResolution resolution) const;
  u64 outstanding() const;

  // --- rollback support ----------------------------------------------------
  // Arms the injector to swallow the next `n` would-be firings: the fire
  // point is consumed (and the next one rescheduled) but no corruption is
  // applied and no event recorded. The machine calls this after restoring a
  // checkpoint, with n = events injected since that checkpoint, so the
  // re-execution replays the doomed window fault-free.
  void suppress(u64 n) { suppress_ += n; }
  u64 suppressed_pending() const { return suppress_; }
  // Lifetime firings across every rollback attempt. NOT restored by
  // load_state (a rollback must not refill the max_faults budget, or an
  // aggressive plan could fire faults forever across retries).
  u64 lifetime_injected() const { return lifetime_injected_; }

  // Snapshot ports: RNG stream, fire schedule, event log and the
  // note_recoveries watermarks, so a restored run injects bit-identically.
  void save_state(ByteWriter& w) const;
  void load_state(ByteReader& r);

  // Observability sink (src/obs): every recorded injection is published as
  // a kFaultInjected event. Null = disabled.
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }

 private:
  bool budget_left() const {
    return plan_.max_faults == 0 || lifetime_injected_ < plan_.max_faults;
  }
  void record(FaultKind kind, const core::Hart& hart, u64 detail0,
              u64 detail1);
  void schedule_next(u64 now);

  FaultPlan plan_;
  Rng rng_;
  std::vector<FaultKind> step_kinds_;  // kinds fired from the step loop
  u64 next_fire_ = ~u64{0};
  std::vector<FaultEvent> events_;
  obs::Recorder* recorder_ = nullptr;
  u64 suppress_ = 0;
  u64 lifetime_injected_ = 0;  // survives rollback; see lifetime_injected()
  // Last-seen kernel recovery counters for note_recoveries deltas.
  u64 seen_pkr_scrubs_ = 0;
  u64 seen_tlb_flushes_ = 0;
  u64 seen_pte_repairs_ = 0;
  u64 seen_cam_dedups_ = 0;
  // NOT serialized (VaultStats itself is recounted after a restore; the
  // save/load layout below it is frozen by the committed golden snapshot).
  u64 seen_vault_detected_ = 0;
  // NOT serialized either (KernelStats::vkey_repairs is likewise recounted).
  u64 seen_vkey_repairs_ = 0;
};

}  // namespace sealpk::fault
