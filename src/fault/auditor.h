// Cross-checks the machine's hardware state against the kernel's software
// truth — the dynamic complement to the static SealPK policy verifier.
//
// Invariants checked (each a typed AuditCheck):
//   - PKR parity: every SRAM row's stored parity matches its contents.
//   - PKR shadow: the hardware rows equal the running thread's saved PKR
//     context (only meaningful when the kernel swaps PKR on switch).
//   - TLB coherence: every valid DTLB/ITLB line agrees with the live leaf
//     PTE it caches (permissions, ppn, pkey; dirty may lag, never lead).
//   - PK-CAM duplicates: at most one CAM line per pkey.
//   - Key counters: the KeyManager's per-pkey page counters equal the page
//     counts recomputed from the VMAs, and the dirty bitmap only marks
//     keys that still have pages.
//   - PTE vs VMA: every leaf PTE carries the permission bits and pkey its
//     owning VMA prescribes (A/D bits excluded).
//   - Scheduler: run-queue tids exist, are not exited, are not duplicated,
//     and do not include the running thread.
//   - Vkey coherence: every live (mapped or draining) virtual key in a
//     process's vkey table records the physical key its pages are actually
//     keyed to in the PTEs, and no two live vkeys claim the same physical
//     key.
//
// audit() is detection-only and uses exclusively peek-style accessors, so
// it never perturbs statistics or architectural state — safe to run in
// bit-identity-sensitive clean runs. audit_and_recover() additionally
// invokes the kernel's recovery paths for whatever it found.
#pragma once

#include <vector>

#include "core/hart.h"
#include "os/kernel.h"

namespace sealpk::fault {

enum class AuditCheck : u8 {
  kPkrParity = 0,
  kPkrShadow,
  kTlbCoherence,
  kCamDuplicates,
  kKeyCounters,
  kPteVsVma,
  kScheduler,
  kVkeyCoherence,
};

const char* audit_check_name(AuditCheck check);

struct AuditFinding {
  AuditCheck check = AuditCheck::kPkrParity;
  u64 detail0 = 0;  // check-specific: row / vpn / pid / pkey / tid
  u64 detail1 = 0;  // check-specific: value / vaddr
};

struct AuditReport {
  std::vector<AuditFinding> findings;

  bool clean() const { return findings.empty(); }
  size_t count(AuditCheck check) const;
};

class MachineAuditor {
 public:
  MachineAuditor(core::Hart& hart, os::Kernel& kernel)
      : hart_(hart), kernel_(kernel) {}

  // Detection only: peeks, no side effects.
  AuditReport audit() const;

  // Detection plus repair through the kernel's recovery API. Findings are
  // counted into KernelStats (audit_runs / audit_findings); repairs bump
  // the matching recovery counters. An unrecoverable PKR parity error
  // (no trustworthy shadow) kills the current process as a machine check.
  AuditReport audit_and_recover();

 private:
  void check_pkr(AuditReport& report) const;
  void check_tlbs(AuditReport& report) const;
  void check_cam(AuditReport& report) const;
  void check_processes(AuditReport& report) const;
  void check_scheduler(AuditReport& report) const;
  void check_vkeys(AuditReport& report) const;

  core::Hart& hart_;
  os::Kernel& kernel_;
};

}  // namespace sealpk::fault
