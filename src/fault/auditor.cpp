#include "fault/auditor.h"

#include <set>

#include "mem/pte.h"

namespace sealpk::fault {

const char* audit_check_name(AuditCheck check) {
  switch (check) {
    case AuditCheck::kPkrParity: return "pkr-parity";
    case AuditCheck::kPkrShadow: return "pkr-shadow";
    case AuditCheck::kTlbCoherence: return "tlb-coherence";
    case AuditCheck::kCamDuplicates: return "cam-duplicates";
    case AuditCheck::kKeyCounters: return "key-counters";
    case AuditCheck::kPteVsVma: return "pte-vs-vma";
    case AuditCheck::kScheduler: return "scheduler";
    case AuditCheck::kVkeyCoherence: return "vkey-coherence";
  }
  return "unknown";
}

size_t AuditReport::count(AuditCheck check) const {
  size_t n = 0;
  for (const auto& finding : findings) {
    if (finding.check == check) ++n;
  }
  return n;
}

AuditReport MachineAuditor::audit() const {
  AuditReport report;
  check_pkr(report);
  check_tlbs(report);
  check_cam(report);
  check_processes(report);
  check_scheduler(report);
  check_vkeys(report);
  return report;
}

void MachineAuditor::check_pkr(AuditReport& report) const {
  if (hart_.config().flavor != core::IsaFlavor::kSealPk) return;
  const hw::Pkr& pkr = hart_.pkr();
  std::array<bool, hw::kPkrRows> parity_bad{};
  for (u32 row = 0; row < hw::kPkrRows; ++row) {
    if (!pkr.parity_ok(row)) {
      parity_bad[row] = true;
      report.findings.push_back(
          {AuditCheck::kPkrParity, row, pkr.peek_row(row)});
    }
  }
  // The shadow compare catches even-weight corruption the parity misses.
  // Only meaningful when the kernel maintains per-thread PKR state: with
  // save_pkr_on_switch off the hardware rows are shared mutable state and
  // the thread context is stale by design.
  if (!kernel_.config().save_pkr_on_switch || !kernel_.has_current_thread()) {
    return;
  }
  const hw::Pkr::Snapshot& shadow =
      kernel_.thread(kernel_.current_tid()).ctx.pkr;
  for (u32 row = 0; row < hw::kPkrRows; ++row) {
    if (!parity_bad[row] && pkr.peek_row(row) != shadow[row]) {
      report.findings.push_back(
          {AuditCheck::kPkrShadow, row, pkr.peek_row(row)});
    }
  }
}

void MachineAuditor::check_tlbs(AuditReport& report) const {
  // TLB contents cache the *current* address space (both TLBs are flushed
  // on process switch, munmap and mprotect), so there is nothing to check
  // against without a running thread.
  if (!kernel_.has_current_thread()) return;
  const os::AddressSpace& as =
      *kernel_.process(kernel_.thread(kernel_.current_tid()).pid).aspace;
  const bool data_side[] = {true, false};
  for (const bool is_data : data_side) {
    const mem::Tlb& tlb = is_data ? hart_.dtlb() : hart_.itlb();
    for (size_t i = 0; i < tlb.capacity(); ++i) {
      const mem::TlbEntry* cached = tlb.peek_slot(i);
      if (cached == nullptr) continue;
      const u64 vaddr = cached->vpn << mem::kPageShift;
      const auto leaf = as.leaf_pte(vaddr);
      if (!leaf.has_value() || !mem::pte::valid(*leaf)) {
        report.findings.push_back({AuditCheck::kTlbCoherence, i, vaddr});
        continue;
      }
      const u64 pte = *leaf;
      const bool same =
          cached->ppn == mem::pte::ppn_of(pte) &&
          cached->r == ((pte & mem::pte::kR) != 0) &&
          cached->w == ((pte & mem::pte::kW) != 0) &&
          cached->x == ((pte & mem::pte::kX) != 0) &&
          cached->user == ((pte & mem::pte::kU) != 0) &&
          (!is_data ||
           cached->pkey == mem::pte::pkey_of(pte, as.pkey_bits())) &&
          // The cached dirty bit may lag the PTE's D (flush-then-load
          // refill), never lead it.
          !(cached->dirty && (pte & mem::pte::kD) == 0);
      if (!same) {
        report.findings.push_back({AuditCheck::kTlbCoherence, i, vaddr});
      }
    }
  }
}

void MachineAuditor::check_cam(AuditReport& report) const {
  if (hart_.config().flavor != core::IsaFlavor::kSealPk) return;
  const hw::SealUnit& unit = hart_.seal_unit();
  std::set<u32> flagged;
  for (size_t i = 0; i < hw::kPkCamEntries; ++i) {
    const hw::CamEntry* entry = unit.cam_slot(i);
    if (entry == nullptr || flagged.count(entry->pkey)) continue;
    const size_t n = unit.cam_count_of(entry->pkey);
    if (n > 1) {
      flagged.insert(entry->pkey);
      report.findings.push_back({AuditCheck::kCamDuplicates, entry->pkey, n});
    }
  }
}

void MachineAuditor::check_processes(AuditReport& report) const {
  const bool sealpk = hart_.config().flavor == core::IsaFlavor::kSealPk;
  for (const int pid : kernel_.pids()) {
    const os::Process& proc = kernel_.process(pid);
    if (proc.exited) continue;
    const os::AddressSpace& as = *proc.aspace;
    // Every leaf PTE must carry exactly the permission bits and pkey its
    // owning VMA prescribes (A/D excluded: the hardware walker sets them).
    std::map<u32, u64> actual_pages;
    for (const auto& [start, vma] : as.vmas()) {
      actual_pages[vma.pkey] += vma.pages();
      for (u64 va = vma.start; va < vma.end; va += mem::kPageSize) {
        const auto leaf = as.leaf_pte(va);
        bool ok = leaf.has_value() && mem::pte::valid(*leaf);
        if (ok) {
          const u64 ad = *leaf & (mem::pte::kA | mem::pte::kD);
          const u64 want = mem::pte::make(
              mem::pte::ppn_of(*leaf),
              os::AddressSpace::leaf_flags_for_prot(vma.prot) | ad, vma.pkey,
              as.pkey_bits());
          ok = *leaf == want;
        }
        if (!ok) {
          report.findings.push_back(
              {AuditCheck::kPteVsVma, static_cast<u64>(pid), va});
        }
      }
    }
    if (!sealpk) continue;
    // KeyManager bitmaps vs. the per-pkey page counts recomputed above.
    const os::KeyManager& keys = *proc.keys;
    for (u32 k = 0; k < keys.num_keys(); ++k) {
      const auto it = actual_pages.find(k);
      const u64 want = it == actual_pages.end() ? 0 : it->second;
      const bool count_drift = keys.page_count(k) != want;
      // A dirty (lazily de-allocated) key with no pages should have been
      // drained; a key can never be both allocated and dirty.
      const bool dirty_bad =
          keys.dirty(k) && (keys.page_count(k) == 0 || keys.allocated(k));
      if (count_drift || dirty_bad) {
        report.findings.push_back(
            {AuditCheck::kKeyCounters, static_cast<u64>(pid), k});
      }
    }
  }
}

void MachineAuditor::check_scheduler(AuditReport& report) const {
  std::set<int> seen;
  for (const int tid : kernel_.run_queue()) {
    const bool bogus = !kernel_.has_thread(tid) ||
                       kernel_.thread(tid).exited ||
                       tid == kernel_.current_tid() || seen.count(tid) != 0;
    if (bogus) {
      report.findings.push_back(
          {AuditCheck::kScheduler, static_cast<u64>(tid)});
    }
    seen.insert(tid);
  }
  if (kernel_.has_current_thread() &&
      kernel_.thread(kernel_.current_tid()).exited) {
    report.findings.push_back({AuditCheck::kScheduler,
                               static_cast<u64>(kernel_.current_tid()), 1});
  }
}

void MachineAuditor::check_vkeys(AuditReport& report) const {
  for (const int pid : kernel_.pids()) {
    const os::Process& proc = kernel_.process(pid);
    if (proc.exited || !proc.vkeys) continue;
    const os::AddressSpace& as = *proc.aspace;
    std::set<u32> in_use = {proc.vkeys->park_key()};
    for (const auto& [vkey, entry] : proc.vkeys->entries()) {
      if (entry.state == mpk::VkeyState::kUnmapped) continue;
      // A live vkey must hold its physical key exclusively (the park key
      // included — it backs *unmapped* pages only).
      bool ok = in_use.insert(entry.phys).second;
      // PTE ground truth: every group's pages are keyed to the entry's
      // physical key. Draining entries count too — the key is not released
      // until the drain flush re-parks the pages.
      for (const mpk::VkeyGroup& group : entry.groups) {
        if (!ok) break;
        const auto leaf = as.leaf_pte(group.addr);
        ok = leaf.has_value() && mem::pte::valid(*leaf) &&
             mem::pte::pkey_of(*leaf, as.pkey_bits()) == entry.phys;
      }
      if (!ok) {
        report.findings.push_back(
            {AuditCheck::kVkeyCoherence, static_cast<u64>(pid), vkey});
      }
    }
  }
}

AuditReport MachineAuditor::audit_and_recover() {
  AuditReport report = audit();
  kernel_.note_audit(report.findings.size());
  if (report.clean()) return report;

  if (report.count(AuditCheck::kPkrParity) > 0 ||
      report.count(AuditCheck::kPkrShadow) > 0) {
    bool unrecoverable = false;
    kernel_.scrub_pkr_from_shadow(&unrecoverable);
    if (unrecoverable) {
      kernel_.kill_current(os::kExitMachineCheck,
                           os::Kernel::KillOrigin::kMachineCheck);
    }
  }
  if (report.count(AuditCheck::kPteVsVma) > 0) {
    std::set<int> pids;
    for (const auto& finding : report.findings) {
      if (finding.check == AuditCheck::kPteVsVma) {
        pids.insert(static_cast<int>(finding.detail0));
      }
    }
    for (const int pid : pids) kernel_.repair_ptes(pid);
  }
  // After PTE repair so the rewalk picks up the corrected entries; also
  // fired for PTE repairs of the current process by repair_ptes itself.
  if (report.count(AuditCheck::kTlbCoherence) > 0) {
    kernel_.recover_tlb_flush();
  }
  if (report.count(AuditCheck::kCamDuplicates) > 0) kernel_.dedup_cam();
  if (report.count(AuditCheck::kKeyCounters) > 0) {
    std::set<int> pids;
    for (const auto& finding : report.findings) {
      if (finding.check == AuditCheck::kKeyCounters) {
        pids.insert(static_cast<int>(finding.detail0));
      }
    }
    for (const int pid : pids) kernel_.reconcile_key_counters(pid);
  }
  if (report.count(AuditCheck::kScheduler) > 0) kernel_.scrub_run_queue();
  if (report.count(AuditCheck::kVkeyCoherence) > 0) {
    std::set<int> pids;
    for (const auto& finding : report.findings) {
      if (finding.check == AuditCheck::kVkeyCoherence) {
        pids.insert(static_cast<int>(finding.detail0));
      }
    }
    for (const int pid : pids) kernel_.repair_vkeys(pid);
  }
  return report;
}

}  // namespace sealpk::fault
