// Minimal JSON string escaping shared by every hand-streamed JSON emitter
// (fleet reports, trace exports, verifier findings, model-checker traces).
#pragma once

#include <cstdio>
#include <string>

namespace sealpk {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace sealpk
