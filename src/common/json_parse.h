// Minimal recursive-descent JSON parser for the tools that *consume* the
// repo's own hand-streamed reports (the SLO gate reads sealpk-serve /
// sealpk-vkey / sealpk-fleet JSON and its own spec). Full JSON value
// model; objects keep member order so downstream rendering stays
// deterministic. Throws std::runtime_error with a byte offset on damage.
//
// Numbers are held as doubles, which is exact for the integer magnitudes
// our reports emit (< 2^53); the SLO rule engine compares in doubles.
#pragma once

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace sealpk {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                             // kArray
  std::vector<std::pair<std::string, JsonValue>> members;   // kObject

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  // First member with this key, or nullptr (objects in our reports never
  // repeat keys).
  const JsonValue* find(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

namespace detail {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.str = string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        v.boolean = peek() == 't';
        if (!consume_literal(v.boolean ? "true" : "false")) fail("bad literal");
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default: return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // Our own emitters only escape control characters; render the
          // code point as UTF-8 without surrogate-pair handling.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number '" + tok + "'");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = d;
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace detail

inline JsonValue json_parse(const std::string& text) {
  return detail::JsonParser(text).parse();
}

}  // namespace sealpk
