// Deterministic RNG (splitmix64 seeded xorshift) so every simulation,
// workload and property test is reproducible bit-for-bit across runs.
#pragma once

#include "common/bits.h"

namespace sealpk {

class Rng {
 public:
  explicit Rng(u64 seed = 0x5ea1b0c5u) : state_(splitmix(seed + 1)) {}

  u64 next() {
    u64 x = state_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    state_ = x;
    return x * 0x2545F4914F6CDD1DULL;
  }

  // Uniform in [0, bound).
  u64 below(u64 bound) { return bound == 0 ? 0 : next() % bound; }

  // Uniform in [lo, hi] inclusive.
  u64 range(u64 lo, u64 hi) { return lo + below(hi - lo + 1); }

  bool chance(double p) {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

  // Snapshot support: the full generator state is the single xorshift word,
  // so every seeded stream (workloads, fuzzers, the fault injector) can be
  // checkpointed and resumed bit-identically.
  u64 state() const { return state_; }
  void set_state(u64 state) { state_ = state; }

 private:
  static u64 splitmix(u64 x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }

  u64 state_;
};

}  // namespace sealpk
