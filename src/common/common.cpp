// Anchor translation unit for the repro_common static library.
#include "common/bits.h"
#include "common/check.h"
#include "common/rng.h"

namespace sealpk {
static_assert(bits(0xF0, 7, 4) == 0xF);
static_assert(sext(0x80, 8) == -128);
static_assert(deposit(0, 9, 2, 0xFF) == 0x3FC);
}  // namespace sealpk
