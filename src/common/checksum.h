// FNV-1a 64-bit checksum — the snapshot format's integrity check.
//
// Not cryptographic: the threat model is a torn write or bit rot in a
// checkpoint file, not an adversary. FNV-1a is a single multiply-xor per
// byte, has no tables, and is trivially portable, which keeps the snapshot
// layer dependency-free.
#pragma once

#include <string>
#include <vector>

#include "common/bits.h"

namespace sealpk {

class Checksum64 {
 public:
  static constexpr u64 kOffsetBasis = 0xCBF29CE484222325ULL;
  static constexpr u64 kPrime = 0x00000100000001B3ULL;

  void update(const u8* data, size_t len) {
    for (size_t i = 0; i < len; ++i) {
      state_ ^= data[i];
      state_ *= kPrime;
    }
  }
  void update(const std::vector<u8>& data) { update(data.data(), data.size()); }

  u64 value() const { return state_; }

 private:
  u64 state_ = kOffsetBasis;
};

inline u64 checksum64(const u8* data, size_t len) {
  Checksum64 sum;
  sum.update(data, len);
  return sum.value();
}

inline u64 checksum64(const std::vector<u8>& data) {
  return checksum64(data.data(), data.size());
}

}  // namespace sealpk
