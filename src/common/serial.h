// Little-endian byte-stream serialization used by the snapshot layer.
//
// ByteWriter appends into a growable buffer; ByteReader consumes a borrowed
// span with bounds checks (a truncated or over-read stream throws
// CheckError, which snapshot restore converts into a typed SnapshotError).
// The encoding is fixed little-endian regardless of host order so snapshot
// files are portable, and every multi-byte value goes through one pair of
// primitives so the format has no padding or alignment holes.
#pragma once

#include <bitset>
#include <cstring>
#include <string>
#include <vector>

#include "common/bits.h"
#include "common/check.h"

namespace sealpk {

class ByteWriter {
 public:
  void put_u8(u8 v) { buf_.push_back(v); }
  void put_u16(u16 v) { put_le(v); }
  void put_u32(u32 v) { put_le(v); }
  void put_u64(u64 v) { put_le(v); }
  void put_i64(i64 v) { put_le(static_cast<u64>(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  // Doubles travel as their IEEE-754 bit pattern (bit-exact round trip).
  void put_f64(double v) {
    u64 bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(bits);
  }

  void put_bytes(const u8* data, size_t len) {
    buf_.insert(buf_.end(), data, data + len);
  }

  // Length-prefixed string / byte vector.
  void put_str(const std::string& s) {
    put_u64(s.size());
    put_bytes(reinterpret_cast<const u8*>(s.data()), s.size());
  }
  void put_blob(const std::vector<u8>& v) {
    put_u64(v.size());
    put_bytes(v.data(), v.size());
  }

  template <size_t N>
  void put_bitset(const std::bitset<N>& bits) {
    static_assert(N % 64 == 0, "bitset size must pack into u64 words");
    for (size_t word = 0; word < N / 64; ++word) {
      u64 w = 0;
      for (size_t i = 0; i < 64; ++i) {
        if (bits[word * 64 + i]) w |= u64{1} << i;
      }
      put_u64(w);
    }
  }

  size_t size() const { return buf_.size(); }
  const std::vector<u8>& buffer() const { return buf_; }
  std::vector<u8> take() { return std::move(buf_); }

 private:
  template <typename T>
  void put_le(T v) {
    for (unsigned i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<u8>(v >> (8 * i)));
    }
  }

  std::vector<u8> buf_;
};

class ByteReader {
 public:
  ByteReader(const u8* data, size_t len) : data_(data), len_(len) {}
  explicit ByteReader(const std::vector<u8>& buf)
      : data_(buf.data()), len_(buf.size()) {}

  u8 get_u8() { return need(1), data_[pos_++]; }
  u16 get_u16() { return get_le<u16>(); }
  u32 get_u32() { return get_le<u32>(); }
  u64 get_u64() { return get_le<u64>(); }
  i64 get_i64() { return static_cast<i64>(get_le<u64>()); }
  bool get_bool() { return get_u8() != 0; }

  double get_f64() {
    const u64 bits = get_u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  void get_bytes(u8* out, size_t len) {
    need(len);
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
  }

  std::string get_str() {
    const u64 len = get_u64();
    need(len);
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return s;
  }
  std::vector<u8> get_blob() {
    const u64 len = get_u64();
    need(len);
    std::vector<u8> v(data_ + pos_, data_ + pos_ + len);
    pos_ += static_cast<size_t>(len);
    return v;
  }

  template <size_t N>
  std::bitset<N> get_bitset() {
    static_assert(N % 64 == 0, "bitset size must pack into u64 words");
    std::bitset<N> bits;
    for (size_t word = 0; word < N / 64; ++word) {
      const u64 w = get_u64();
      for (size_t i = 0; i < 64; ++i) {
        if ((w >> i) & 1) bits.set(word * 64 + i);
      }
    }
    return bits;
  }

  size_t remaining() const { return len_ - pos_; }
  size_t position() const { return pos_; }
  bool done() const { return pos_ == len_; }

 private:
  void need(u64 len) {
    SEALPK_CHECK_MSG(len <= len_ - pos_,
                     "serialized stream truncated: need " << len << " at "
                                                          << pos_);
  }

  template <typename T>
  T get_le() {
    need(sizeof(T));
    T v{};
    for (unsigned i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  const u8* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace sealpk
