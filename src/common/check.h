// Precondition / invariant checking. SEALPK_CHECK is always on (these models
// are correctness-critical and the cost is negligible next to simulation).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sealpk {

// Thrown on violated preconditions of the host-level API (programmer error
// in the caller, e.g. an out-of-range register index handed to the
// assembler). Simulated-architecture events (page faults, seal violations)
// are *not* exceptions; they are modelled as traps.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace sealpk

#define SEALPK_CHECK(expr)                                          \
  do {                                                              \
    if (!(expr)) ::sealpk::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define SEALPK_CHECK_MSG(expr, msg)                                \
  do {                                                             \
    if (!(expr)) {                                                 \
      std::ostringstream sealpk_check_os_;                         \
      sealpk_check_os_ << msg;                                     \
      ::sealpk::check_failed(#expr, __FILE__, __LINE__,            \
                             sealpk_check_os_.str());              \
    }                                                              \
  } while (0)
