// Bit-manipulation helpers shared by the ISA, MMU and hardware-unit models.
#pragma once

#include <cstdint>
#include <type_traits>

namespace sealpk {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

// Extracts bits [hi:lo] (inclusive, hi >= lo) of `value`, right-aligned.
constexpr u64 bits(u64 value, unsigned hi, unsigned lo) {
  const unsigned width = hi - lo + 1;
  const u64 mask = width >= 64 ? ~u64{0} : ((u64{1} << width) - 1);
  return (value >> lo) & mask;
}

// Extracts the single bit `pos` of `value`.
constexpr u64 bit(u64 value, unsigned pos) { return (value >> pos) & 1; }

// Returns `value` with bits [hi:lo] replaced by the low bits of `field`.
constexpr u64 deposit(u64 value, unsigned hi, unsigned lo, u64 field) {
  const unsigned width = hi - lo + 1;
  const u64 mask = width >= 64 ? ~u64{0} : ((u64{1} << width) - 1);
  return (value & ~(mask << lo)) | ((field & mask) << lo);
}

// Sign-extends the low `width` bits of `value` to 64 bits.
constexpr i64 sext(u64 value, unsigned width) {
  const unsigned shift = 64 - width;
  return static_cast<i64>(value << shift) >> shift;
}

// Zero-extends the low `width` bits of `value`.
constexpr u64 zext(u64 value, unsigned width) {
  return width >= 64 ? value : value & ((u64{1} << width) - 1);
}

// True if `value` fits in a `width`-bit two's-complement immediate.
constexpr bool fits_signed(i64 value, unsigned width) {
  const i64 lo = -(i64{1} << (width - 1));
  const i64 hi = (i64{1} << (width - 1)) - 1;
  return value >= lo && value <= hi;
}

constexpr bool is_pow2(u64 v) { return v != 0 && (v & (v - 1)) == 0; }

constexpr u64 align_down(u64 v, u64 align) { return v & ~(align - 1); }
constexpr u64 align_up(u64 v, u64 align) {
  return (v + align - 1) & ~(align - 1);
}

}  // namespace sealpk
