// The concrete machine under test.
//
// A Harness owns the *real* implementation units — hw::Pkr, hw::SealUnit
// (built with the reduced CAM size) and os::SealPkKeyManager wired with the
// kernel's drained hook — plus a tiny page table, and drives them through
// the kernel's syscall logic and the hart's WRPKR commit path. install()
// and extract() convert to/from the abstract ModelState through the units'
// official ports (canonical_state, restore, save_state/load_state), so the
// checker observes exactly what context switches and snapshots observe.
#pragma once

#include <vector>

#include "hw/pkr.h"
#include "hw/seal_unit.h"
#include "model/op.h"
#include "model/state.h"
#include "os/key_manager.h"

namespace sealpk::model {

class Harness {
 public:
  explicit Harness(const ModelConfig& cfg);
  // Copies duplicate all unit state, then re-wire the drained hook (the
  // copied std::function would still point into the source harness).
  Harness(const Harness& other);
  Harness& operator=(const Harness&) = delete;

  void install(const ModelState& s);
  ModelState extract() const;

  // Applies one op through the kernel/hart logic. May throw CheckError if
  // a unit's own internal checks fire (reported as a counterexample).
  Outcome apply(const Op& op);

  // Effective data-access permission for `page`, consulting the real Pkr
  // exactly as Hart::data_access_allowed does.
  bool access_allowed(unsigned page, bool is_store) const;
  // Fetches never consult the Pkr (mirrors the hart's fetch path).
  bool fetch_allowed(unsigned page) const;

 private:
  void wire_drained_hook();
  void refill(u32 pkey, u64 start, u64 end);

  ModelConfig cfg_;
  hw::Pkr pkr_;
  hw::SealUnit seal_;
  os::SealPkKeyManager keys_;
  std::vector<PageState> pages_;
};

}  // namespace sealpk::model
