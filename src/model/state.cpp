#include "model/state.h"

#include <sstream>

#include "common/check.h"
#include "common/serial.h"

namespace sealpk::model {

ModelState initial_state(const ModelConfig& cfg) {
  ModelState s;
  s.keys.resize(cfg.num_pkeys);
  s.pages.resize(cfg.num_pages);
  s.cam.resize(cfg.cam_entries);
  s.keys[0].allocated = true;  // the default domain
  s.keys[0].pages = static_cast<u8>(cfg.num_pages);
  return s;
}

std::string encode_state(const ModelState& s) {
  ByteWriter w;
  for (const auto& k : s.keys) {
    const u8 flags = static_cast<u8>(
        (k.allocated ? 1 : 0) | (k.dirty ? 2 : 0) | (k.sealed_domain ? 4 : 0) |
        (k.sealed_page ? 8 : 0) | (k.hw_sealed ? 16 : 0));
    w.put_u8(flags);
    w.put_u8(k.perm);
    w.put_u8(k.range);
    w.put_u8(k.pages);
  }
  for (const auto& p : s.pages) {
    w.put_u8(p.pkey);
    w.put_u8(p.prot);
  }
  for (const auto& e : s.cam) {
    w.put_u8(e.valid ? 1 : 0);
    w.put_u8(e.pkey);
    w.put_u64(e.start);
    w.put_u64(e.end);
  }
  w.put_u8(s.fifo_next);
  const auto buf = w.buffer();
  return std::string(reinterpret_cast<const char*>(buf.data()), buf.size());
}

ModelState decode_state(const ModelConfig& cfg, const std::string& enc) {
  ModelState s;
  s.keys.resize(cfg.num_pkeys);
  s.pages.resize(cfg.num_pages);
  s.cam.resize(cfg.cam_entries);
  ByteReader r(reinterpret_cast<const u8*>(enc.data()), enc.size());
  for (auto& k : s.keys) {
    const u8 flags = r.get_u8();
    k.allocated = (flags & 1) != 0;
    k.dirty = (flags & 2) != 0;
    k.sealed_domain = (flags & 4) != 0;
    k.sealed_page = (flags & 8) != 0;
    k.hw_sealed = (flags & 16) != 0;
    k.perm = r.get_u8();
    k.range = r.get_u8();
    k.pages = r.get_u8();
  }
  for (auto& p : s.pages) {
    p.pkey = r.get_u8();
    p.prot = r.get_u8();
  }
  for (auto& e : s.cam) {
    e.valid = r.get_u8() != 0;
    e.pkey = r.get_u8();
    e.start = r.get_u64();
    e.end = r.get_u64();
  }
  s.fifo_next = r.get_u8();
  SEALPK_CHECK_MSG(r.done(), "state encoding does not match configuration");
  return s;
}

std::string state_to_string(const ModelState& s) {
  std::ostringstream os;
  for (size_t k = 0; k < s.keys.size(); ++k) {
    const auto& key = s.keys[k];
    os << "key" << k << ": alloc=" << key.allocated << " dirty=" << key.dirty
       << " sd=" << key.sealed_domain << " sp=" << key.sealed_page
       << " hw_sealed=" << key.hw_sealed << " perm=" << unsigned{key.perm}
       << " range="
       << (key.range == kNoRange ? std::string("-")
                                 : std::to_string(unsigned{key.range}))
       << " pages=" << unsigned{key.pages} << "\n";
  }
  for (size_t p = 0; p < s.pages.size(); ++p) {
    os << "page" << p << ": pkey=" << unsigned{s.pages[p].pkey}
       << " prot=" << unsigned{s.pages[p].prot} << "\n";
  }
  for (size_t i = 0; i < s.cam.size(); ++i) {
    const auto& e = s.cam[i];
    os << "cam" << i << ": ";
    if (e.valid) {
      os << "pkey=" << unsigned{e.pkey} << " [0x" << std::hex << e.start
         << ", 0x" << e.end << std::dec << "]";
    } else {
      os << "invalid";
    }
    os << "\n";
  }
  os << "fifo_next=" << unsigned{s.fifo_next} << "\n";
  return os.str();
}

std::string describe_divergence(const ModelState& spec,
                                const ModelState& machine) {
  std::ostringstream os;
  for (size_t k = 0; k < spec.keys.size(); ++k) {
    const auto& a = spec.keys[k];
    const auto& b = machine.keys[k];
    if (a == b) continue;
    os << "key" << k << " differs:";
    if (a.allocated != b.allocated)
      os << " allocated spec=" << a.allocated << " machine=" << b.allocated;
    if (a.dirty != b.dirty)
      os << " dirty spec=" << a.dirty << " machine=" << b.dirty;
    if (a.sealed_domain != b.sealed_domain)
      os << " sealed_domain spec=" << a.sealed_domain
         << " machine=" << b.sealed_domain;
    if (a.sealed_page != b.sealed_page)
      os << " sealed_page spec=" << a.sealed_page
         << " machine=" << b.sealed_page;
    if (a.hw_sealed != b.hw_sealed)
      os << " hw_sealed spec=" << a.hw_sealed << " machine=" << b.hw_sealed;
    if (a.perm != b.perm)
      os << " perm spec=" << unsigned{a.perm}
         << " machine=" << unsigned{b.perm};
    if (a.range != b.range)
      os << " range spec=" << unsigned{a.range}
         << " machine=" << unsigned{b.range};
    if (a.pages != b.pages)
      os << " pages spec=" << unsigned{a.pages}
         << " machine=" << unsigned{b.pages};
    return os.str();
  }
  for (size_t p = 0; p < spec.pages.size(); ++p) {
    if (spec.pages[p] == machine.pages[p]) continue;
    os << "page" << p << " differs: spec pkey=" << unsigned{spec.pages[p].pkey}
       << " prot=" << unsigned{spec.pages[p].prot}
       << ", machine pkey=" << unsigned{machine.pages[p].pkey}
       << " prot=" << unsigned{machine.pages[p].prot};
    return os.str();
  }
  for (size_t i = 0; i < spec.cam.size(); ++i) {
    if (spec.cam[i] == machine.cam[i]) continue;
    os << "cam slot " << i << " differs";
    return os.str();
  }
  if (spec.fifo_next != machine.fifo_next) {
    os << "fifo_next spec=" << unsigned{spec.fifo_next}
       << " machine=" << unsigned{machine.fifo_next};
    return os.str();
  }
  return "";
}

}  // namespace sealpk::model
