#include "model/harness.h"

#include <bitset>

#include "common/check.h"
#include "common/serial.h"
#include "os/syscall_abi.h"

namespace sealpk::model {

Harness::Harness(const ModelConfig& cfg)
    : cfg_(cfg), seal_(cfg.cam_entries), pages_(cfg.num_pages) {
  wire_drained_hook();
}

Harness::Harness(const Harness& other)
    : cfg_(other.cfg_),
      pkr_(other.pkr_),
      seal_(other.seal_),
      keys_(other.keys_),
      pages_(other.pages_) {
  wire_drained_hook();
}

void Harness::wire_drained_hook() {
  // Mirrors Kernel::install_drained_hook: when a quarantined key's last
  // page drains, dissolve its hardware seal state and clear its PKR field.
  keys_.set_drained_hook([this](u32 pkey) {
    if (cfg_.mutation != Mutation::kSkipDrainScrub) {
      seal_.clear_key(pkey);
    }
    pkr_.set_perm(pkey, 0);
  });
}

void Harness::refill(u32 pkey, u64 start, u64 end) {
  if (cfg_.mutation == Mutation::kRefillWrongRange) {
    seal_.refill(pkey, start + 4, end);
    return;
  }
  seal_.refill(pkey, start, end);
}

void Harness::install(const ModelState& s) {
  pkr_.reset();
  for (u32 k = 0; k < cfg_.num_pkeys; ++k) {
    pkr_.set_perm(k, s.keys[k].perm);
  }

  hw::SealUnit::Snapshot snap{};
  for (u32 k = 0; k < cfg_.num_pkeys; ++k) {
    if (s.keys[k].hw_sealed) snap.seal_reg.set(k);
  }
  for (unsigned i = 0; i < cfg_.cam_entries; ++i) {
    snap.cam_entries[i] = {static_cast<u16>(s.cam[i].pkey), s.cam[i].start,
                           s.cam[i].end};
    snap.cam_valid[i] = s.cam[i].valid;
  }
  snap.fifo_next = s.fifo_next;
  seal_.restore(snap);

  // The key manager re-installs through its own snapshot port.
  std::bitset<hw::kNumPkeys> alloc, dirty, sd, sp;
  for (u32 k = 0; k < cfg_.num_pkeys; ++k) {
    if (s.keys[k].allocated) alloc.set(k);
    if (s.keys[k].dirty) dirty.set(k);
    if (s.keys[k].sealed_domain) sd.set(k);
    if (s.keys[k].sealed_page) sp.set(k);
  }
  ByteWriter w;
  w.put_bitset(alloc);
  w.put_bitset(dirty);
  w.put_bitset(sd);
  w.put_bitset(sp);
  for (u32 k = 0; k < hw::kNumPkeys; ++k) {
    w.put_u64(k < cfg_.num_pkeys ? s.keys[k].pages : 0);
  }
  for (u32 k = 0; k < hw::kNumPkeys; ++k) {
    const bool has = k < cfg_.num_pkeys && s.keys[k].range != kNoRange;
    w.put_bool(has);
    w.put_u64(has ? kModelRanges[s.keys[k].range].start : 0);
    w.put_u64(has ? kModelRanges[s.keys[k].range].end : 0);
  }
  ByteReader r(w.buffer());
  keys_.load_state(r);

  pages_ = s.pages;
}

ModelState Harness::extract() const {
  ModelState s;
  s.keys.resize(cfg_.num_pkeys);
  s.pages = pages_;
  s.cam.resize(cfg_.cam_entries);

  const hw::SealUnit::Snapshot snap = seal_.canonical_state();
  for (u32 k = 0; k < cfg_.num_pkeys; ++k) {
    auto& key = s.keys[k];
    key.allocated = keys_.allocated(k);
    key.dirty = keys_.dirty(k);
    key.sealed_domain = keys_.domain_sealed(k);
    key.sealed_page = keys_.pages_sealed(k);
    key.hw_sealed = snap.seal_reg[k];
    key.perm = pkr_.peek_perm(k);
    const u64 count = keys_.page_count(k);
    SEALPK_CHECK_MSG(count <= cfg_.num_pages, "page counter out of range");
    key.pages = static_cast<u8>(count);
    const auto range = keys_.perm_seal_range(k);
    if (range.has_value()) {
      key.range = kNoRange;
      for (unsigned r = 0; r < kModelNumRanges; ++r) {
        if (range->start == kModelRanges[r].start &&
            range->end == kModelRanges[r].end) {
          key.range = static_cast<u8>(r);
        }
      }
      SEALPK_CHECK_MSG(key.range != kNoRange,
                       "perm-seal range on file is off the model table");
    }
  }

  for (unsigned i = 0; i < hw::kPkCamEntries; ++i) {
    if (i < cfg_.cam_entries) {
      s.cam[i].valid = snap.cam_valid[i];
      s.cam[i].pkey = static_cast<u8>(snap.cam_entries[i].pkey);
      s.cam[i].start = snap.cam_entries[i].addr_start;
      s.cam[i].end = snap.cam_entries[i].addr_end;
      SEALPK_CHECK_MSG(!s.cam[i].valid || s.cam[i].pkey < cfg_.num_pkeys,
                       "CAM caches a key outside the model universe");
    } else {
      SEALPK_CHECK_MSG(!snap.cam_valid[i],
                       "CAM entry valid beyond the reduced CAM");
    }
  }
  SEALPK_CHECK(snap.fifo_next < cfg_.cam_entries);
  s.fifo_next = static_cast<u8>(snap.fifo_next);

  // Reduced-universe boundary: ops must never leak state onto keys outside
  // the model (the alloc mask below frees boundary keys immediately).
  for (u32 k = cfg_.num_pkeys; k < cfg_.num_pkeys + 2 && k < hw::kNumPkeys;
       ++k) {
    SEALPK_CHECK_MSG(!keys_.allocated(k) && !keys_.dirty(k) &&
                         !snap.seal_reg[k] && pkr_.peek_perm(k) == 0,
                     "state leaked onto out-of-model key " << k);
  }
  return s;
}

Outcome Harness::apply(const Op& op) {
  switch (op.kind) {
    case OpKind::kAlloc: {
      const i64 rc = keys_.alloc();
      if (rc < 0) return {OpStatus::kError, rc};
      if (rc >= static_cast<i64>(cfg_.num_pkeys)) {
        // Reduced-universe mask: the real manager found a key outside the
        // model, which means every model key is allocated or quarantined.
        // Undo the side-effect-free grab and report exhaustion.
        SEALPK_CHECK(keys_.free_key(static_cast<u32>(rc)) == 0);
        return {OpStatus::kError, os::err::kNoSpc};
      }
      // Kernel sys_pkey_alloc: install the initial permission.
      pkr_.set_perm(static_cast<u32>(rc), op.perm);
      return {OpStatus::kOk, rc};
    }

    case OpKind::kFree: {
      const u32 k = op.pkey;
      const i64 rc = keys_.free_key(k);
      if (rc != 0) return {OpStatus::kError, rc};
      // Kernel sys_pkey_free: the PTE alone governs orphan pages.
      pkr_.set_perm(k, 0);
      if (cfg_.mutation == Mutation::kEagerFreeClear) {
        seal_.clear_key(k);
      } else if (!keys_.dirty(k) &&
                 cfg_.mutation != Mutation::kSkipFreeClear) {
        // Immediate full release: dissolve the hardware seal state too
        // (the lazy path does this from the drained hook).
        seal_.clear_key(k);
      }
      if (cfg_.mutation == Mutation::kForgetDirty && keys_.dirty(k)) {
        // Broken kernel: the quarantine evaporates while pages survive.
        ModelState s = extract();
        s.keys[k].dirty = false;
        install(s);
      }
      return {OpStatus::kOk, 0};
    }

    case OpKind::kMprotect: {
      // Mirrors sys_pkey_mprotect + AddressSpace::protect_pkey for one
      // page: assignability, then the §IV seal vetoes, then PTE rewrite
      // and page-counter maintenance.
      const u32 k = op.pkey;
      if (!keys_.assignable(k)) return {OpStatus::kError, os::err::kInval};
      PageState& pg = pages_[op.page];
      if (keys_.domain_sealed(pg.pkey)) {
        return {OpStatus::kError, os::err::kPerm};
      }
      if (pg.pkey != k && keys_.pages_sealed(k)) {
        return {OpStatus::kError, os::err::kPerm};
      }
      const u32 old = pg.pkey;
      pg = {static_cast<u8>(k), op.prot};
      if (old != k) {
        keys_.page_delta(old, -1);  // may complete a lazy-free drain
        keys_.page_delta(k, +1);
      }
      return {OpStatus::kOk, 0};
    }

    case OpKind::kSeal: {
      const i64 rc = keys_.seal(op.pkey, op.seal_domain, op.seal_page);
      if (rc != 0) return {OpStatus::kError, rc};
      return {OpStatus::kOk, 0};
    }

    case OpKind::kPermSeal: {
      const u32 k = op.pkey;
      const PcRange range = kModelRanges[op.range];
      const i64 rc = keys_.set_perm_seal(k, {range.start, range.end});
      if (rc != 0) return {OpStatus::kError, rc};
      // Kernel sys_pkey_perm_seal: commit the fuse and warm the CAM.
      seal_.set_sealed(k);
      refill(k, range.start, range.end);
      return {OpStatus::kOk, 0};
    }

    case OpKind::kWrpkr: {
      // Mirrors Hart::exec_custom's WRPKR path plus the kernel's CAM-miss
      // refill-and-retry handshake.
      const u32 k = op.pkey;
      const u64 pc = kModelWrpkrPcs[op.pc];
      hw::SealCheck check = seal_.check_wrpkr(k, pc);
      if (check == hw::SealCheck::kMiss) {
        const auto range = keys_.perm_seal_range(k);
        if (!range.has_value()) {
          return {OpStatus::kTrap, 0};  // fatal: no range on file
        }
        refill(k, range->start, range->end);
        check = seal_.check_wrpkr(k, pc);  // re-executed WRPKR
      }
      if (check == hw::SealCheck::kViolation &&
          cfg_.mutation != Mutation::kIgnoreSealViolation) {
        return {OpStatus::kTrap, 0};
      }
      const u32 row = hw::pkr_row_of(k);
      const u32 slot = hw::pkr_slot_of(k);
      u64 next = u64{op.perm} << (2 * slot);
      const u64 old = pkr_.peek_row(row);
      if (cfg_.mutation != Mutation::kSkipSealedNeighbourMerge) {
        next = hw::merge_sealed_row(seal_, old, next, row, k);
      }
      pkr_.write_row(row, next);
      return {OpStatus::kOk, 0};
    }
  }
  return {OpStatus::kError, os::err::kNoSys};
}

bool Harness::access_allowed(unsigned page, bool is_store) const {
  const PageState& pg = pages_[page];
  const bool pte_ok =
      is_store ? (pg.prot & 0b10) != 0 : (pg.prot & 0b01) != 0;
  if (cfg_.mutation == Mutation::kIgnorePkeyOnAccess) return pte_ok;
  // The hart's effective-permission check: PTE AND pkey (§III-A).
  const u8 perm = pkr_.peek_perm(pg.pkey);
  const bool pkey_ok = is_store ? (perm & 0b01) == 0 : (perm & 0b10) == 0;
  return pte_ok && pkey_ok;
}

bool Harness::fetch_allowed(unsigned page) const {
  (void)page;
  return true;  // the fetch path never consults the Pkr (hart.cpp)
}

}  // namespace sealpk::model
