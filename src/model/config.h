// Model-checker configuration: the down-scaled SealPK machine.
//
// The explorer walks every op sequence over a reduced configuration — a few
// pkeys, a few pages, a 2-entry PK-CAM — chosen so that every interesting
// regime of each invariant is reachable (quarantined keys, CAM eviction,
// sealed and unsealed rows) while the state space stays exhaustively
// enumerable. DESIGN.md §12 gives the reduction argument.
#pragma once

#include <optional>
#include <string>

#include "common/bits.h"

namespace sealpk::model {

// Deliberate single-fault injections, used by the mutation self-tests to
// prove each invariant check actually fires. kNone is the shipping
// configuration; every other value breaks the machine (or, for the kSpec*
// values, the reference spec) in one specific way.
enum class Mutation : u8 {
  kNone,
  // Kernel free() of a zero-page key forgets to dissolve the hardware seal
  // (the historical bug this checker found; see tests/model_traces/).
  kSkipFreeClear,
  // The lazy-free drained hook forgets to scrub SealReg / PK-CAM.
  kSkipDrainScrub,
  // free() dissolves the hardware seal even while orphan pages remain.
  kEagerFreeClear,
  // Kernel forgets the dirty quarantine: a freed key with surviving pages
  // becomes immediately reallocatable.
  kForgetDirty,
  // WRPKR row commit skips the sealed-neighbour preservation merge.
  kSkipSealedNeighbourMerge,
  // The pipeline executes a WRPKR despite a PK-CAM range violation.
  kIgnoreSealViolation,
  // The CAM-miss refill installs a range shifted off the one on file.
  kRefillWrongRange,
  // Data-access checks consult only the PTE, ignoring the pkey term.
  kIgnorePkeyOnAccess,
  // Spec-side fault: the reference spec forgets the dirty quarantine,
  // demonstrating the oracle is two-sided.
  kSpecForgetDirty,
};

const char* mutation_name(Mutation m);
std::optional<Mutation> parse_mutation(const std::string& name);
constexpr unsigned kNumMutations = 10;

struct PcRange {
  u64 start = 0;
  u64 end = 0;  // inclusive
};

// Fixed op-alphabet tables. Two permissible ranges exercise CAM
// replace-vs-insert; three WRPKR sites cover in-range (per range) and
// out-of-range; the two permission values span both disable bits; the two
// protections make the PTE term of the intersection observable.
inline constexpr PcRange kModelRanges[] = {{0x1000, 0x1FFC},
                                           {0x2000, 0x2FFC}};
inline constexpr u64 kModelWrpkrPcs[] = {0x1004, 0x2004, 0x3000};
inline constexpr u8 kModelPerms[] = {0b00, 0b11};  // kPermRw, kPermNone
inline constexpr u8 kModelProts[] = {0b11, 0b01};  // R|W, read-only
inline constexpr unsigned kModelNumRanges = 2;
inline constexpr unsigned kModelNumWrpkrPcs = 3;
inline constexpr unsigned kModelNumPerms = 2;
inline constexpr unsigned kModelNumProts = 2;

struct ModelConfig {
  // Machine scale. Keys live in PKR row 0 (num_pkeys <= 32); key 0 is the
  // default domain, permanently allocated.
  // The default closes (~156k states, ~5.3M transitions); 3 pkeys or more
  // pages grow the reachable space into the millions — bound those runs
  // with depth= or a bigger max_states budget.
  unsigned num_pkeys = 2;
  unsigned num_pages = 2;
  unsigned cam_entries = 2;

  // Exploration bounds. depth 0 explores to closure; max_states caps the
  // visited set (exceeding it reports an incomplete run, never a wrong
  // one). Budgets are evaluated at BFS level boundaries so visited and
  // transition counts are deterministic across runs and thread counts.
  unsigned depth = 0;
  u64 max_states = 2000000;
  unsigned threads = 1;
  unsigned max_counterexamples = 8;

  Mutation mutation = Mutation::kNone;

  // Throws CheckError on an unusable configuration.
  void validate() const;
};

}  // namespace sealpk::model
