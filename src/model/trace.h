// Counterexample traces: JSON op scripts that replay deterministically.
//
// A trace records the reduced configuration, the mutation it was found
// under, the op script, and the expected failure (kind / invariant /
// message / failing op index). `sealpk-model repro` and the committed-trace
// regression tests replay the script and require the same failure at the
// same op — and the serializer is canonical, so a parsed-and-rewritten
// trace is byte-identical to the file on disk.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "model/explorer.h"
#include "model/op.h"

namespace sealpk::model {

struct Trace {
  unsigned num_pkeys = 2;
  unsigned num_pages = 2;
  unsigned cam_entries = 2;
  Mutation mutation = Mutation::kNone;
  std::vector<Op> ops;
  // Expected replay result. kind "clean" means the script must replay with
  // no finding.
  std::string kind = "clean";
  std::string invariant;
  std::string message;
  u64 op_index = 0;

  ModelConfig config() const;
};

Trace make_trace(const ModelConfig& cfg, const Counterexample& ce);

// Canonical serialization (stable field order and formatting).
std::string trace_to_json(const Trace& trace);
void write_trace(std::ostream& os, const Trace& trace);

// Parses a trace document; returns std::nullopt (with *error set) on
// malformed input.
std::optional<Trace> parse_trace(const std::string& text,
                                 std::string* error);

// Replays the trace and checks the recorded expectation. Returns an empty
// string on success, else a description of the mismatch.
std::string verify_trace(const Trace& trace);

}  // namespace sealpk::model
