// The executable reference specification.
//
// Pure functions over ModelState, written directly from the paper's prose
// (§III-B.1 lazy de-allocation, §IV sealing) with no reference to the
// implementation sources. spec_apply predicts every transition; the state
// invariants and the transition rule below are the properties the explorer
// checks on the *machine's* extracted states, so a machine bug is caught
// even when spec and machine happen to agree.
#pragma once

#include <string>
#include <vector>

#include "model/op.h"
#include "model/state.h"

namespace sealpk::model {

struct SpecResult {
  Outcome outcome;
  ModelState state;
};

// The predicted outcome and successor state of `op` from `s`.
SpecResult spec_apply(const ModelConfig& cfg, const ModelState& s,
                      const Op& op);

// Whether a data access to `page` is allowed: the PTE term intersected
// with the pkey term (paper §III-A). `is_store` selects the Write-Disable
// bit, loads consult Read-Disable. Fetches never consult pkeys.
bool spec_access_allowed(const ModelState& s, unsigned page, bool is_store);
bool spec_fetch_allowed(const ModelState& s, unsigned page);

struct InvariantViolation {
  std::string invariant;  // stable identifier, e.g. "fuse-coherence"
  std::string message;
};

// State invariants, evaluated on machine-extracted states:
//   lazy-free-drain  dirty <=> freed with surviving pages (both directions)
//   page-accounting  per-key counters equal the page-table truth
//   fuse-coherence   SealReg bit on file <=> perm-seal range on file
//   cam-coherence    every valid CAM entry caches a sealed key's exact
//                    on-file range, at most once, within the active CAM
//   seal-on-live-key seals only attach to allocated or quarantined keys
std::vector<InvariantViolation> check_invariants(const ModelConfig& cfg,
                                                 const ModelState& s);

// Transition rule ("seal-monotonicity"): a sealed key's permissions only
// change through an op naming that key, and the SealReg fuse only clears
// on full release (freed, drained, no pages).
std::vector<InvariantViolation> check_transition(const ModelConfig& cfg,
                                                 const ModelState& pre,
                                                 const Op& op,
                                                 const Outcome& outcome,
                                                 const ModelState& post);

}  // namespace sealpk::model
