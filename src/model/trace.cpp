#include "model/trace.h"

#include <cctype>
#include <ostream>
#include <sstream>

#include "common/json.h"

namespace sealpk::model {

ModelConfig Trace::config() const {
  ModelConfig cfg;
  cfg.num_pkeys = num_pkeys;
  cfg.num_pages = num_pages;
  cfg.cam_entries = cam_entries;
  cfg.mutation = mutation;
  return cfg;
}

Trace make_trace(const ModelConfig& cfg, const Counterexample& ce) {
  Trace t;
  t.num_pkeys = cfg.num_pkeys;
  t.num_pages = cfg.num_pages;
  t.cam_entries = cfg.cam_entries;
  t.mutation = cfg.mutation;
  t.ops = ce.ops;
  t.kind = ce.kind;
  t.invariant = ce.invariant;
  t.message = ce.message;
  t.op_index = ce.ops.empty() ? 0 : ce.ops.size() - 1;
  return t;
}

namespace {

void append_op_json(std::ostringstream& os, const Op& op) {
  os << "    {\"op\": \"" << op_kind_name(op.kind) << "\"";
  switch (op.kind) {
    case OpKind::kAlloc:
      os << ", \"perm\": " << unsigned{op.perm};
      break;
    case OpKind::kFree:
      os << ", \"pkey\": " << unsigned{op.pkey};
      break;
    case OpKind::kMprotect:
      os << ", \"pkey\": " << unsigned{op.pkey}
         << ", \"page\": " << unsigned{op.page}
         << ", \"prot\": " << unsigned{op.prot};
      break;
    case OpKind::kSeal:
      os << ", \"pkey\": " << unsigned{op.pkey}
         << ", \"domain\": " << (op.seal_domain ? "true" : "false")
         << ", \"page\": " << (op.seal_page ? "true" : "false");
      break;
    case OpKind::kPermSeal:
      os << ", \"pkey\": " << unsigned{op.pkey}
         << ", \"range\": " << unsigned{op.range};
      break;
    case OpKind::kWrpkr:
      os << ", \"pkey\": " << unsigned{op.pkey}
         << ", \"perm\": " << unsigned{op.perm}
         << ", \"pc\": " << unsigned{op.pc};
      break;
  }
  os << "}";
}

}  // namespace

std::string trace_to_json(const Trace& trace) {
  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": \"sealpk-model-trace-v1\",\n"
     << "  \"pkeys\": " << trace.num_pkeys << ",\n"
     << "  \"pages\": " << trace.num_pages << ",\n"
     << "  \"cam\": " << trace.cam_entries << ",\n"
     << "  \"mutation\": \"" << mutation_name(trace.mutation) << "\",\n"
     << "  \"expect\": {\n"
     << "    \"kind\": \"" << json_escape(trace.kind) << "\",\n"
     << "    \"invariant\": \"" << json_escape(trace.invariant) << "\",\n"
     << "    \"op_index\": " << trace.op_index << ",\n"
     << "    \"message\": \"" << json_escape(trace.message) << "\"\n"
     << "  },\n"
     << "  \"ops\": [";
  for (size_t i = 0; i < trace.ops.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    append_op_json(os, trace.ops[i]);
  }
  if (!trace.ops.empty()) os << "\n  ";
  os << "]\n}\n";
  return os.str();
}

void write_trace(std::ostream& os, const Trace& trace) {
  os << trace_to_json(trace);
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (objects, arrays, strings, integers, booleans) — just
// enough for the trace schema, with position-reporting errors.
// ---------------------------------------------------------------------------

namespace {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  i64 number = 0;
  std::string text;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool parse(JsonValue* out, std::string* error) {
    try {
      *out = value();
      skip_ws();
      expect(pos_ == text_.size(), "trailing garbage");
      return true;
    } catch (const std::runtime_error& e) {
      if (error != nullptr) *error = e.what();
      return false;
    }
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    std::ostringstream os;
    os << what << " at offset " << pos_;
    throw std::runtime_error(os.str());
  }
  void expect(bool ok, const char* what) {
    if (!ok) fail(what);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  char peek() {
    expect(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      expect(pos_ < text_.size() && text_[pos_] == *p, "bad literal");
      ++pos_;
    }
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == '-' || (std::isdigit(static_cast<unsigned char>(c)) != 0)) {
      return number();
    }
    fail("unexpected character");
  }

  JsonValue object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    take();  // '{'
    skip_ws();
    if (peek() == '}') {
      take();
      return v;
    }
    while (true) {
      skip_ws();
      expect(peek() == '"', "expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(take() == ':', "expected ':'");
      v.fields.emplace_back(std::move(key), value());
      skip_ws();
      const char c = take();
      if (c == '}') return v;
      expect(c == ',', "expected ',' or '}'");
    }
  }

  JsonValue array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    take();  // '['
    skip_ws();
    if (peek() == ']') {
      take();
      return v;
    }
    while (true) {
      v.items.push_back(value());
      skip_ws();
      const char c = take();
      if (c == ']') return v;
      expect(c == ',', "expected ',' or ']'");
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.type = JsonValue::Type::kString;
    v.text = parse_string();
    return v;
  }

  std::string parse_string() {
    expect(take() == '"', "expected string");
    std::string out;
    while (true) {
      char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      c = take();
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          expect(code < 0x80, "non-ASCII \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue boolean() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (peek() == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
    }
    return v;
  }

  JsonValue number() {
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    const size_t start = pos_;
    if (peek() == '-') take();
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    expect(pos_ > start + (text_[start] == '-' ? 1 : 0), "expected digits");
    v.number = std::stoll(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

bool get_uint(const JsonValue& obj, const char* key, u64 max, u64* out,
              std::string* error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->type != JsonValue::Type::kNumber || v->number < 0 ||
      static_cast<u64>(v->number) > max) {
    *error = std::string("missing or invalid field \"") + key + "\"";
    return false;
  }
  *out = static_cast<u64>(v->number);
  return true;
}

bool get_string(const JsonValue& obj, const char* key, std::string* out,
                std::string* error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->type != JsonValue::Type::kString) {
    *error = std::string("missing or invalid field \"") + key + "\"";
    return false;
  }
  *out = v->text;
  return true;
}

bool parse_op(const JsonValue& node, Op* op, std::string* error) {
  if (node.type != JsonValue::Type::kObject) {
    *error = "op is not an object";
    return false;
  }
  std::string kind;
  if (!get_string(node, "op", &kind, error)) return false;
  u64 v = 0;
  if (kind == "alloc") {
    op->kind = OpKind::kAlloc;
    if (!get_uint(node, "perm", 3, &v, error)) return false;
    op->perm = static_cast<u8>(v);
  } else if (kind == "free") {
    op->kind = OpKind::kFree;
    if (!get_uint(node, "pkey", 31, &v, error)) return false;
    op->pkey = static_cast<u8>(v);
  } else if (kind == "mprotect") {
    op->kind = OpKind::kMprotect;
    if (!get_uint(node, "pkey", 31, &v, error)) return false;
    op->pkey = static_cast<u8>(v);
    if (!get_uint(node, "page", 7, &v, error)) return false;
    op->page = static_cast<u8>(v);
    if (!get_uint(node, "prot", 3, &v, error)) return false;
    op->prot = static_cast<u8>(v);
  } else if (kind == "seal") {
    op->kind = OpKind::kSeal;
    if (!get_uint(node, "pkey", 31, &v, error)) return false;
    op->pkey = static_cast<u8>(v);
    const JsonValue* domain = node.find("domain");
    const JsonValue* page = node.find("page");
    if (domain == nullptr || domain->type != JsonValue::Type::kBool ||
        page == nullptr || page->type != JsonValue::Type::kBool) {
      *error = "seal op needs boolean \"domain\" and \"page\"";
      return false;
    }
    op->seal_domain = domain->boolean;
    op->seal_page = page->boolean;
  } else if (kind == "perm_seal") {
    op->kind = OpKind::kPermSeal;
    if (!get_uint(node, "pkey", 31, &v, error)) return false;
    op->pkey = static_cast<u8>(v);
    if (!get_uint(node, "range", kModelNumRanges - 1, &v, error)) {
      return false;
    }
    op->range = static_cast<u8>(v);
  } else if (kind == "wrpkr") {
    op->kind = OpKind::kWrpkr;
    if (!get_uint(node, "pkey", 31, &v, error)) return false;
    op->pkey = static_cast<u8>(v);
    if (!get_uint(node, "perm", 3, &v, error)) return false;
    op->perm = static_cast<u8>(v);
    if (!get_uint(node, "pc", kModelNumWrpkrPcs - 1, &v, error)) return false;
    op->pc = static_cast<u8>(v);
  } else {
    *error = "unknown op kind \"" + kind + "\"";
    return false;
  }
  return true;
}

}  // namespace

std::optional<Trace> parse_trace(const std::string& text,
                                 std::string* error) {
  std::string local;
  if (error == nullptr) error = &local;
  JsonValue root;
  if (!JsonParser(text).parse(&root, error)) return std::nullopt;
  if (root.type != JsonValue::Type::kObject) {
    *error = "trace is not a JSON object";
    return std::nullopt;
  }
  std::string schema;
  if (!get_string(root, "schema", &schema, error)) return std::nullopt;
  if (schema != "sealpk-model-trace-v1") {
    *error = "unknown schema \"" + schema + "\"";
    return std::nullopt;
  }

  Trace t;
  u64 v = 0;
  if (!get_uint(root, "pkeys", 32, &v, error)) return std::nullopt;
  t.num_pkeys = static_cast<unsigned>(v);
  if (!get_uint(root, "pages", 8, &v, error)) return std::nullopt;
  t.num_pages = static_cast<unsigned>(v);
  if (!get_uint(root, "cam", 16, &v, error)) return std::nullopt;
  t.cam_entries = static_cast<unsigned>(v);

  std::string mutation;
  if (!get_string(root, "mutation", &mutation, error)) return std::nullopt;
  const auto parsed = parse_mutation(mutation);
  if (!parsed.has_value()) {
    *error = "unknown mutation \"" + mutation + "\"";
    return std::nullopt;
  }
  t.mutation = *parsed;

  const JsonValue* expect = root.find("expect");
  if (expect == nullptr || expect->type != JsonValue::Type::kObject) {
    *error = "missing \"expect\" object";
    return std::nullopt;
  }
  if (!get_string(*expect, "kind", &t.kind, error)) return std::nullopt;
  if (!get_string(*expect, "invariant", &t.invariant, error)) {
    return std::nullopt;
  }
  if (!get_string(*expect, "message", &t.message, error)) return std::nullopt;
  if (!get_uint(*expect, "op_index", 1u << 20, &t.op_index, error)) {
    return std::nullopt;
  }

  const JsonValue* ops = root.find("ops");
  if (ops == nullptr || ops->type != JsonValue::Type::kArray) {
    *error = "missing \"ops\" array";
    return std::nullopt;
  }
  for (const auto& node : ops->items) {
    Op op;
    if (!parse_op(node, &op, error)) return std::nullopt;
    t.ops.push_back(op);
  }
  return t;
}

std::string verify_trace(const Trace& trace) {
  const ModelConfig cfg = trace.config();
  const ReplayResult r = replay(cfg, trace.ops);
  std::ostringstream os;
  if (trace.kind == "clean") {
    if (r.failed) {
      const auto& f = r.findings.front();
      os << "expected a clean replay but op " << r.op_index << " produced "
         << f.kind << (f.invariant.empty() ? "" : " (" + f.invariant + ")")
         << ": " << f.message;
      return os.str();
    }
    return "";
  }
  if (!r.failed) {
    os << "expected " << trace.kind << " at op " << trace.op_index
       << " but the script replayed clean";
    return os.str();
  }
  // One transition can produce several findings (the explorer reports each
  // as its own counterexample), so the expectation matches any of them.
  for (const auto& f : r.findings) {
    if (r.op_index == trace.op_index && f.kind == trace.kind &&
        f.invariant == trace.invariant && f.message == trace.message) {
      return "";
    }
  }
  const auto& f = r.findings.front();
  os << "replay mismatch: expected " << trace.kind << "/" << trace.invariant
     << " at op " << trace.op_index << " (\"" << trace.message
     << "\"), got " << f.kind << "/" << f.invariant << " at op "
     << r.op_index << " (\"" << f.message << "\")";
  return os.str();
}

}  // namespace sealpk::model
