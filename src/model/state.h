// The model checker's canonical state.
//
// ModelState is both the abstract state the reference spec transforms and
// the extraction target for the concrete machine (real Pkr + SealUnit +
// SealPkKeyManager). Comparing the two after every transition is the
// correctness oracle; the byte encoding doubles as the visited-set hash
// key, so two states are identical iff their encodings are.
#pragma once

#include <string>
#include <vector>

#include "model/config.h"

namespace sealpk::model {

constexpr u8 kNoRange = 0xFF;

struct KeyState {
  bool allocated = false;
  bool dirty = false;          // lazy-free quarantine
  bool sealed_domain = false;  // §IV seal maps (KeyManager side)
  bool sealed_page = false;
  bool hw_sealed = false;  // SealReg fuse bit (hardware side)
  u8 perm = 0;             // 2-bit PKR field
  u8 range = kNoRange;     // perm-seal range index on file, or kNoRange
  u8 pages = 0;            // pages carrying this key (KeyManager counter)

  bool operator==(const KeyState&) const = default;
};

struct PageState {
  u8 pkey = 0;
  u8 prot = 0b11;  // PTE R|W bits

  bool operator==(const PageState&) const = default;
};

// PK-CAM entries carry raw addresses (not range indices) so a mutated
// refill that installs an off-table range is representable and shows up as
// a CAM-coherence violation instead of an extraction failure.
struct CamState {
  bool valid = false;
  u8 pkey = 0;
  u64 start = 0;
  u64 end = 0;

  bool operator==(const CamState&) const = default;
};

struct ModelState {
  std::vector<KeyState> keys;   // size num_pkeys
  std::vector<PageState> pages;  // size num_pages
  std::vector<CamState> cam;     // size cam_entries
  u8 fifo_next = 0;

  bool operator==(const ModelState&) const = default;
};

// The boot state: key 0 allocated carrying every page, everything else
// clear.
ModelState initial_state(const ModelConfig& cfg);

// Canonical byte encoding (the visited-set key). decode() asserts the
// encoding matches cfg's dimensions.
std::string encode_state(const ModelState& s);
ModelState decode_state(const ModelConfig& cfg, const std::string& enc);

// Multi-line pretty form for counterexample reports.
std::string state_to_string(const ModelState& s);

// One-line description of the first field where the two states differ
// ("spec"/"machine" labelling); empty when equal.
std::string describe_divergence(const ModelState& spec,
                                const ModelState& machine);

}  // namespace sealpk::model
