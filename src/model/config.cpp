#include "model/config.h"

#include "common/check.h"
#include "hw/pkr.h"
#include "hw/seal_unit.h"

namespace sealpk::model {

const char* mutation_name(Mutation m) {
  switch (m) {
    case Mutation::kNone: return "none";
    case Mutation::kSkipFreeClear: return "skip-free-clear";
    case Mutation::kSkipDrainScrub: return "skip-drain-scrub";
    case Mutation::kEagerFreeClear: return "eager-free-clear";
    case Mutation::kForgetDirty: return "forget-dirty";
    case Mutation::kSkipSealedNeighbourMerge:
      return "skip-sealed-neighbour-merge";
    case Mutation::kIgnoreSealViolation: return "ignore-seal-violation";
    case Mutation::kRefillWrongRange: return "refill-wrong-range";
    case Mutation::kIgnorePkeyOnAccess: return "ignore-pkey-on-access";
    case Mutation::kSpecForgetDirty: return "spec-forget-dirty";
  }
  return "?";
}

std::optional<Mutation> parse_mutation(const std::string& name) {
  for (unsigned i = 0; i < kNumMutations; ++i) {
    const Mutation m = static_cast<Mutation>(i);
    if (name == mutation_name(m)) return m;
  }
  return std::nullopt;
}

void ModelConfig::validate() const {
  // Keys must share PKR row 0 so a WRPKR row commit covers the whole model
  // key universe, and the reduced CAM must fit the hardware CAM.
  SEALPK_CHECK_MSG(num_pkeys >= 2 && num_pkeys <= hw::kKeysPerRow,
                   "num_pkeys must be in [2, 32]");
  SEALPK_CHECK_MSG(num_pages >= 1 && num_pages <= 8,
                   "num_pages must be in [1, 8]");
  SEALPK_CHECK_MSG(cam_entries >= 1 && cam_entries <= hw::kPkCamEntries,
                   "cam_entries must be in [1, 16]");
  SEALPK_CHECK_MSG(threads >= 1 && threads <= 64,
                   "threads must be in [1, 64]");
  SEALPK_CHECK(max_states > 0);
}

}  // namespace sealpk::model
