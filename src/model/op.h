// The model checker's operation alphabet.
//
// One Op is one kernel- or user-visible step of the down-scaled machine:
// the pkey syscalls (alloc / free / mprotect / seal / perm-seal) and the
// unprivileged WRPKR instruction. Loads, stores and fetches do not mutate
// pkey state, so they are checked as access *predicates* over every reached
// state instead of enumerated ops (same coverage, one check per state
// rather than one transition per access).
#pragma once

#include <string>
#include <vector>

#include "model/config.h"

namespace sealpk::model {

enum class OpKind : u8 {
  kAlloc,     // pkey_alloc(init_perm)
  kFree,      // pkey_free(pkey)
  kMprotect,  // pkey_mprotect(page, prot, pkey)
  kSeal,      // pkey_seal(pkey, domain, page)
  kPermSeal,  // pkey_perm_seal(pkey) with range ranges[range]
  kWrpkr,     // WRPKR naming pkey, field value perm, at PC wrpkr_pcs[pc]
};

struct Op {
  OpKind kind = OpKind::kAlloc;
  u8 pkey = 0;   // kFree/kMprotect/kSeal/kPermSeal/kWrpkr
  u8 page = 0;   // kMprotect: page index
  u8 prot = 0;   // kMprotect: PTE R|W bits
  u8 perm = 0;   // kAlloc: init_perm; kWrpkr: written 2-bit field
  bool seal_domain = false;  // kSeal
  bool seal_page = false;    // kSeal
  u8 range = 0;  // kPermSeal: index into kModelRanges
  u8 pc = 0;     // kWrpkr: index into kModelWrpkrPcs

  bool operator==(const Op&) const = default;
};

// How a transition ended. kTrap covers the fatal faults the kernel turns
// into a process kill (seal violation, CAM miss with no range on file);
// trap successors are terminal states.
enum class OpStatus : u8 { kOk, kError, kTrap };

struct Outcome {
  OpStatus status = OpStatus::kOk;
  i64 rc = 0;  // syscall return value (kOk/kError); 0 for traps

  bool operator==(const Outcome&) const = default;
};

// The full alphabet for a configuration, in a fixed deterministic order.
std::vector<Op> enumerate_ops(const ModelConfig& cfg);

const char* op_kind_name(OpKind kind);
std::string op_to_string(const Op& op);

}  // namespace sealpk::model
