#include "model/spec.h"

#include <sstream>

#include "os/syscall_abi.h"

namespace sealpk::model {

namespace {

SpecResult ok(ModelState s, i64 rc) {
  return {{OpStatus::kOk, rc}, std::move(s)};
}
SpecResult error(ModelState s, i64 rc) {
  return {{OpStatus::kError, rc}, std::move(s)};
}
SpecResult trap(ModelState s) { return {{OpStatus::kTrap, 0}, std::move(s)}; }

bool assignable(const ModelState& s, u32 k) {
  return s.keys[k].allocated && !s.keys[k].dirty;
}

// Full release: the key was freed and no page carries it any more, so every
// seal attached to it — software maps, the perm-seal fuse, the SealReg bit
// and any cached CAM range — dissolves (§IV).
void full_release(ModelState& s, u32 k) {
  auto& key = s.keys[k];
  key.dirty = false;
  key.sealed_domain = false;
  key.sealed_page = false;
  key.range = kNoRange;
  key.hw_sealed = false;
  for (auto& e : s.cam) {
    if (e.valid && e.pkey == k) e.valid = false;
  }
}

// CAM refill: replace a cached entry for the key in place, else consume the
// FIFO slot (mirrors Figure 4's replacement policy at the reduced size).
void cam_insert(const ModelConfig& cfg, ModelState& s, u32 k, u64 start,
                u64 end) {
  for (auto& e : s.cam) {
    if (e.valid && e.pkey == k) {
      e.start = start;
      e.end = end;
      return;
    }
  }
  auto& e = s.cam[s.fifo_next];
  e = {true, static_cast<u8>(k), start, end};
  s.fifo_next = static_cast<u8>((s.fifo_next + 1) % cfg.cam_entries);
}

// A page stops carrying a key; draining the last page of a quarantined key
// completes the lazy free (§III-B.1) and clears the key's PKR field.
void page_drop(ModelState& s, u32 k) {
  auto& key = s.keys[k];
  --key.pages;
  if (key.pages == 0 && key.dirty) {
    full_release(s, k);
    key.perm = 0;
  }
}

}  // namespace

SpecResult spec_apply(const ModelConfig& cfg, const ModelState& in,
                      const Op& op) {
  ModelState s = in;
  switch (op.kind) {
    case OpKind::kAlloc: {
      // Lowest clean key wins; dirty keys are quarantined until their
      // pages drain, which is exactly what prevents the use-after-free.
      for (u32 k = 1; k < cfg.num_pkeys; ++k) {
        if (!s.keys[k].allocated && !s.keys[k].dirty) {
          s.keys[k].allocated = true;
          s.keys[k].perm = op.perm;
          return ok(std::move(s), k);
        }
      }
      return error(std::move(s), os::err::kNoSpc);
    }

    case OpKind::kFree: {
      const u32 k = op.pkey;
      if (k == 0 || !s.keys[k].allocated) {
        return error(std::move(s), os::err::kInval);
      }
      s.keys[k].allocated = false;
      if (s.keys[k].pages > 0) {
        // Lazy de-allocation: quarantine until the orphan pages drain.
        if (cfg.mutation != Mutation::kSpecForgetDirty) {
          s.keys[k].dirty = true;
        }
      } else {
        full_release(s, k);
      }
      s.keys[k].perm = 0;  // the PTE alone governs any orphan pages
      return ok(std::move(s), 0);
    }

    case OpKind::kMprotect: {
      const u32 k = op.pkey;
      if (!assignable(s, k)) return error(std::move(s), os::err::kInval);
      const u32 old = s.pages[op.page].pkey;
      if (s.keys[old].sealed_domain) {
        return error(std::move(s), os::err::kPerm);
      }
      if (old != k && s.keys[k].sealed_page) {
        return error(std::move(s), os::err::kPerm);
      }
      s.pages[op.page] = {static_cast<u8>(k), op.prot};
      if (old != k) {
        ++s.keys[k].pages;
        page_drop(s, old);
      }
      return ok(std::move(s), 0);
    }

    case OpKind::kSeal: {
      const u32 k = op.pkey;
      if (!assignable(s, k)) return error(std::move(s), os::err::kInval);
      if (op.seal_domain) s.keys[k].sealed_domain = true;
      if (op.seal_page) s.keys[k].sealed_page = true;
      return ok(std::move(s), 0);
    }

    case OpKind::kPermSeal: {
      const u32 k = op.pkey;
      if (!assignable(s, k)) return error(std::move(s), os::err::kInval);
      if (s.keys[k].range != kNoRange) {
        return error(std::move(s), os::err::kPerm);  // one-time fuse
      }
      s.keys[k].range = op.range;
      s.keys[k].hw_sealed = true;
      cam_insert(cfg, s, k, kModelRanges[op.range].start,
                 kModelRanges[op.range].end);
      return ok(std::move(s), 0);
    }

    case OpKind::kWrpkr: {
      const u32 k = op.pkey;
      const u64 pc = kModelWrpkrPcs[op.pc];
      if (s.keys[k].hw_sealed) {
        const CamState* hit = nullptr;
        for (const auto& e : s.cam) {
          if (e.valid && e.pkey == k) {
            hit = &e;
            break;
          }
        }
        if (hit == nullptr) {
          // CAM miss: the OS refills from the range on file, or kills the
          // process when there is none (a sealed key with no range only
          // arises from a broken machine).
          if (s.keys[k].range == kNoRange) return trap(std::move(s));
          cam_insert(cfg, s, k, kModelRanges[s.keys[k].range].start,
                     kModelRanges[s.keys[k].range].end);
          for (const auto& e : s.cam) {
            if (e.valid && e.pkey == k) {
              hit = &e;
              break;
            }
          }
        }
        if (pc < hit->start || pc > hit->end) {
          return trap(std::move(s));  // sealed-range violation is fatal
        }
      }
      // Row commit: the write deposits the named key's field and zeroes
      // the other fields of the row value, but hardware preserves every
      // *other* sealed key's current field.
      for (u32 j = 0; j < cfg.num_pkeys; ++j) {
        if (j == k) {
          s.keys[j].perm = op.perm;
        } else if (!s.keys[j].hw_sealed) {
          s.keys[j].perm = 0;
        }
      }
      return ok(std::move(s), 0);
    }
  }
  return error(std::move(s), os::err::kNoSys);
}

bool spec_access_allowed(const ModelState& s, unsigned page, bool is_store) {
  const auto& pg = s.pages[page];
  const bool pte_ok = is_store ? (pg.prot & 0b10) != 0 : (pg.prot & 0b01) != 0;
  const u8 perm = s.keys[pg.pkey].perm;
  const bool pkey_ok = is_store ? (perm & 0b01) == 0 : (perm & 0b10) == 0;
  return pte_ok && pkey_ok;  // the §III-A permission intersection
}

bool spec_fetch_allowed(const ModelState& s, unsigned page) {
  (void)s;
  (void)page;
  return true;  // pkeys never gate instruction fetch
}

std::vector<InvariantViolation> check_invariants(const ModelConfig& cfg,
                                                 const ModelState& s) {
  std::vector<InvariantViolation> out;
  auto fail = [&out](const char* invariant, const std::string& message) {
    out.push_back({invariant, message});
  };
  std::ostringstream msg;

  for (u32 k = 0; k < cfg.num_pkeys; ++k) {
    const auto& key = s.keys[k];
    if (key.dirty && (key.allocated || key.pages == 0)) {
      msg.str("");
      msg << "key " << k << " dirty but allocated=" << key.allocated
          << " pages=" << unsigned{key.pages};
      fail("lazy-free-drain", msg.str());
    }
    if (k != 0 && !key.allocated && key.pages > 0 && !key.dirty) {
      msg.str("");
      msg << "key " << k << " freed with " << unsigned{key.pages}
          << " surviving page(s) but not quarantined";
      fail("lazy-free-drain", msg.str());
    }
    if (key.hw_sealed != (key.range != kNoRange)) {
      msg.str("");
      msg << "key " << k << " SealReg=" << key.hw_sealed
          << " but perm-seal range "
          << (key.range == kNoRange ? "absent" : "on file");
      fail("fuse-coherence", msg.str());
    }
    if ((key.sealed_domain || key.sealed_page || key.range != kNoRange) &&
        !(key.allocated || key.dirty)) {
      msg.str("");
      msg << "key " << k << " carries seals while neither allocated nor "
          << "quarantined";
      fail("seal-on-live-key", msg.str());
    }
  }

  if (!s.keys[0].allocated) {
    fail("page-accounting", "default domain key 0 not allocated");
  }
  for (u32 k = 0; k < cfg.num_pkeys; ++k) {
    unsigned carried = 0;
    for (const auto& pg : s.pages) {
      if (pg.pkey == k) ++carried;
    }
    if (carried != s.keys[k].pages) {
      msg.str("");
      msg << "key " << k << " counter says " << unsigned{s.keys[k].pages}
          << " page(s), page table says " << carried;
      fail("page-accounting", msg.str());
    }
  }

  for (size_t i = 0; i < s.cam.size(); ++i) {
    const auto& e = s.cam[i];
    if (!e.valid) continue;
    if (i >= cfg.cam_entries) {
      msg.str("");
      msg << "CAM slot " << i << " valid beyond the active " << cfg.cam_entries
          << "-entry CAM";
      fail("cam-coherence", msg.str());
      continue;
    }
    const auto& key = s.keys[e.pkey];
    if (!key.hw_sealed) {
      msg.str("");
      msg << "CAM slot " << i << " caches unsealed key " << unsigned{e.pkey};
      fail("cam-coherence", msg.str());
    } else if (key.range == kNoRange ||
               e.start != kModelRanges[key.range].start ||
               e.end != kModelRanges[key.range].end) {
      msg.str("");
      msg << "CAM slot " << i << " for key " << unsigned{e.pkey}
          << " caches [0x" << std::hex << e.start << ", 0x" << e.end
          << std::dec << "], which is not the range on file";
      fail("cam-coherence", msg.str());
    }
    for (size_t j = i + 1; j < s.cam.size(); ++j) {
      if (s.cam[j].valid && s.cam[j].pkey == e.pkey) {
        msg.str("");
        msg << "CAM slots " << i << " and " << j << " both cache key "
            << unsigned{e.pkey};
        fail("cam-coherence", msg.str());
      }
    }
  }

  return out;
}

std::vector<InvariantViolation> check_transition(const ModelConfig& cfg,
                                                 const ModelState& pre,
                                                 const Op& op,
                                                 const Outcome& outcome,
                                                 const ModelState& post) {
  std::vector<InvariantViolation> out;
  std::ostringstream msg;
  for (u32 k = 0; k < cfg.num_pkeys; ++k) {
    const auto& a = pre.keys[k];
    const auto& b = post.keys[k];
    if (a.hw_sealed && !b.hw_sealed) {
      // The fuse may only clear on full release.
      if (b.allocated || b.dirty || b.pages != 0) {
        msg.str("");
        msg << "op " << op_to_string(op) << " cleared key " << k
            << "'s SealReg fuse without full release (allocated="
            << b.allocated << " dirty=" << b.dirty
            << " pages=" << unsigned{b.pages} << ")";
        out.push_back({"seal-monotonicity", msg.str()});
      }
      continue;
    }
    if (a.hw_sealed && b.hw_sealed && a.perm != b.perm) {
      // A sealed key's permissions only move via an op naming the key.
      const bool names_k =
          (op.kind == OpKind::kWrpkr && op.pkey == k) ||
          (op.kind == OpKind::kFree && op.pkey == k) ||
          (op.kind == OpKind::kAlloc && outcome.status == OpStatus::kOk &&
           outcome.rc == static_cast<i64>(k));
      if (!names_k) {
        msg.str("");
        msg << "op " << op_to_string(op) << " changed sealed key " << k
            << "'s permissions from " << unsigned{a.perm} << " to "
            << unsigned{b.perm};
        out.push_back({"seal-monotonicity", msg.str()});
      }
    }
  }
  return out;
}

}  // namespace sealpk::model
