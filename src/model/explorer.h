// Bounded exhaustive exploration of the down-scaled machine.
//
// Deterministic BFS from the boot state: every op is applied to every
// frontier state, each transition is checked (machine vs spec outcome and
// successor, transition rule, state invariants, access-predicate sweep),
// and successors are deduplicated by their canonical encoding. Levels are
// expanded in parallel but merged in frontier order, and every stop
// condition is evaluated at level boundaries, so visited/transition counts
// and the counterexample list are identical across runs and thread counts.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "model/op.h"
#include "model/state.h"

namespace sealpk::model {

struct Counterexample {
  std::vector<Op> ops;    // replayable path from the boot state
  std::string kind;       // "divergence" | "invariant" | "harness-check"
  std::string invariant;  // invariant identifier when kind == "invariant"
  std::string message;

  bool operator==(const Counterexample&) const = default;
};

struct ExploreStats {
  u64 states = 0;       // distinct states reached (including the boot state)
  u64 transitions = 0;  // op applications checked
  u64 depth = 0;        // deepest completed BFS level
  bool complete = false;   // frontier exhausted (full closure)
  bool truncated = false;  // stopped by the max_states budget
  std::vector<u64> level_sizes;  // states first reached per BFS level

  bool operator==(const ExploreStats&) const = default;
};

struct ExploreResult {
  ExploreStats stats;
  std::vector<Counterexample> counterexamples;
};

using ProgressFn =
    std::function<void(u64 depth, u64 states, u64 transitions)>;

ExploreResult explore(const ModelConfig& cfg,
                      const ProgressFn& progress = nullptr);

// Replays one op script with the same per-transition checks the explorer
// runs. Used by `sealpk-model repro` and the committed-trace regression
// tests.
struct ReplayFinding {
  std::string kind;  // as in Counterexample
  std::string invariant;
  std::string message;
};

struct ReplayResult {
  bool failed = false;
  size_t op_index = 0;  // first failing op (valid when failed)
  // Every problem the failing op produced (one transition can both diverge
  // from the spec and break an invariant; the explorer reports each as its
  // own counterexample). front() is the primary finding.
  std::vector<ReplayFinding> findings;
};

ReplayResult replay(const ModelConfig& cfg, const std::vector<Op>& ops);

}  // namespace sealpk::model
