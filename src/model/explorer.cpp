#include "model/explorer.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "common/check.h"
#include "model/harness.h"
#include "model/spec.h"

namespace sealpk::model {

namespace {

// States expanded per parallel batch; bounds peak memory while keeping the
// merge order (and therefore all reported numbers) independent of the
// thread count.
constexpr size_t kBatchStates = 512;

struct Problem {
  std::string kind;
  std::string invariant;
  std::string message;
};

struct TransitionCheck {
  std::string got_enc;   // successor encoding; empty if the harness threw
  bool terminal = false;  // trap successors are not expanded further
  std::vector<Problem> problems;
};

std::string outcome_to_string(const Outcome& o) {
  std::ostringstream os;
  switch (o.status) {
    case OpStatus::kOk: os << "ok(rc=" << o.rc << ")"; break;
    case OpStatus::kError: os << "error(rc=" << o.rc << ")"; break;
    case OpStatus::kTrap: os << "trap"; break;
  }
  return os.str();
}

// Applies `op` to a scratch copy of `base` (which holds `st` installed) and
// runs every per-transition check.
TransitionCheck run_transition(const ModelConfig& cfg, const Harness& base,
                               const ModelState& st, const Op& op) {
  TransitionCheck tc;
  try {
    Harness m(base);
    const Outcome got = m.apply(op);
    const ModelState after = m.extract();
    tc.got_enc = encode_state(after);
    tc.terminal = got.status == OpStatus::kTrap;

    const SpecResult want = spec_apply(cfg, st, op);
    if (!(got == want.outcome)) {
      std::ostringstream os;
      os << "outcome differs for " << op_to_string(op) << ": spec "
         << outcome_to_string(want.outcome) << ", machine "
         << outcome_to_string(got);
      tc.problems.push_back({"divergence", "", os.str()});
    } else if (!(after == want.state)) {
      tc.problems.push_back({"divergence", "",
                             "state differs after " + op_to_string(op) +
                                 ": " + describe_divergence(want.state,
                                                            after)});
    } else {
      // The machine and spec agree on the successor; sweep the access
      // predicates (the load/store/fetch alphabet) over it.
      for (unsigned p = 0; p < cfg.num_pages && tc.problems.empty(); ++p) {
        for (int is_store = 0; is_store < 2; ++is_store) {
          if (m.access_allowed(p, is_store != 0) !=
              spec_access_allowed(after, p, is_store != 0)) {
            std::ostringstream os;
            os << (is_store != 0 ? "store" : "load") << " to page " << p
               << " disagrees with the PTE/pkey intersection after "
               << op_to_string(op);
            tc.problems.push_back(
                {"invariant", "permission-intersection", os.str()});
            break;
          }
        }
        if (m.fetch_allowed(p) != spec_fetch_allowed(after, p)) {
          std::ostringstream os;
          os << "fetch from page " << p << " gated by a pkey after "
             << op_to_string(op);
          tc.problems.push_back(
              {"invariant", "permission-intersection", os.str()});
        }
      }
    }

    for (const auto& v : check_transition(cfg, st, op, got, after)) {
      tc.problems.push_back({"invariant", v.invariant, v.message});
    }
    for (const auto& v : check_invariants(cfg, after)) {
      tc.problems.push_back({"invariant", v.invariant, v.message});
    }
  } catch (const CheckError& e) {
    tc.got_enc.clear();
    tc.terminal = true;
    tc.problems.push_back({"harness-check", "", e.what()});
  }
  return tc;
}

}  // namespace

ExploreResult explore(const ModelConfig& cfg, const ProgressFn& progress) {
  cfg.validate();
  const std::vector<Op> ops = enumerate_ops(cfg);

  ExploreResult res;
  std::unordered_map<std::string, u32> visited;
  std::vector<std::string> encodings;           // record id -> encoding
  std::vector<std::pair<i64, u32>> parents;      // record id -> (parent, op)
  std::set<std::string> reported;               // counterexample dedup

  const ModelState boot = initial_state(cfg);
  encodings.push_back(encode_state(boot));
  parents.emplace_back(-1, 0);
  visited.emplace(encodings[0], 0);

  auto path_to = [&](u32 record) {
    std::vector<Op> path;
    while (parents[record].first >= 0) {
      path.push_back(ops[parents[record].second]);
      record = static_cast<u32>(parents[record].first);
    }
    std::reverse(path.begin(), path.end());
    return path;
  };
  auto report = [&](u32 record, const Op* op, const Problem& pr) {
    if (!reported.insert(pr.kind + "|" + pr.invariant + "|" + pr.message)
             .second) {
      return;
    }
    if (res.counterexamples.size() >= cfg.max_counterexamples) return;
    Counterexample ce;
    ce.ops = path_to(record);
    if (op != nullptr) ce.ops.push_back(*op);
    ce.kind = pr.kind;
    ce.invariant = pr.invariant;
    ce.message = pr.message;
    res.counterexamples.push_back(std::move(ce));
  };

  for (const auto& v : check_invariants(cfg, boot)) {
    report(0, nullptr, {"invariant", v.invariant, v.message});
  }

  std::vector<u32> level{0};
  res.stats.level_sizes.push_back(1);
  bool stop = false;

  while (!level.empty() && !stop) {
    if (cfg.depth != 0 && res.stats.depth >= cfg.depth) break;
    std::vector<u32> next_level;

    for (size_t batch = 0; batch < level.size() && !stop;
         batch += kBatchStates) {
      const size_t batch_end = std::min(batch + kBatchStates, level.size());
      const size_t batch_size = batch_end - batch;
      std::vector<TransitionCheck> results(batch_size * ops.size());

      auto expand = [&](size_t lo, size_t hi) {
        Harness base(cfg);
        for (size_t i = lo; i < hi; ++i) {
          const ModelState st =
              decode_state(cfg, encodings[level[batch + i]]);
          base.install(st);
          for (size_t oi = 0; oi < ops.size(); ++oi) {
            results[i * ops.size() + oi] =
                run_transition(cfg, base, st, ops[oi]);
          }
        }
      };

      const unsigned workers = static_cast<unsigned>(
          std::min<size_t>(cfg.threads, batch_size));
      if (workers <= 1) {
        expand(0, batch_size);
      } else {
        const size_t chunk = (batch_size + workers - 1) / workers;
        std::vector<std::thread> pool;
        for (unsigned t = 0; t < workers; ++t) {
          const size_t lo = t * chunk;
          const size_t hi = std::min(lo + chunk, batch_size);
          if (lo >= hi) break;
          pool.emplace_back(expand, lo, hi);
        }
        for (auto& th : pool) th.join();
      }

      // Sequential merge in frontier order: all counts and the
      // counterexample list are independent of the worker split.
      for (size_t i = 0; i < batch_size; ++i) {
        const u32 parent_record = level[batch + i];
        for (size_t oi = 0; oi < ops.size(); ++oi) {
          const TransitionCheck& tc = results[i * ops.size() + oi];
          ++res.stats.transitions;
          for (const auto& pr : tc.problems) {
            report(parent_record, &ops[oi], pr);
          }
          if (tc.problems.empty() && !tc.terminal && !tc.got_enc.empty()) {
            const auto [it, inserted] =
                visited.emplace(tc.got_enc, encodings.size());
            if (inserted) {
              encodings.push_back(tc.got_enc);
              parents.emplace_back(parent_record, static_cast<u32>(oi));
              next_level.push_back(it->second);
            }
          }
        }
      }
    }

    ++res.stats.depth;
    res.stats.states = encodings.size();
    if (!next_level.empty()) {
      res.stats.level_sizes.push_back(next_level.size());
    }
    if (progress) {
      progress(res.stats.depth, res.stats.states, res.stats.transitions);
    }
    if (res.counterexamples.size() >= cfg.max_counterexamples) stop = true;
    if (encodings.size() >= cfg.max_states) {
      stop = true;
      res.stats.truncated = true;
    }
    level = std::move(next_level);
  }

  res.stats.states = encodings.size();
  res.stats.complete = level.empty();
  return res;
}

ReplayResult replay(const ModelConfig& cfg, const std::vector<Op>& ops) {
  cfg.validate();
  ReplayResult out;
  ModelState st = initial_state(cfg);
  for (const auto& v : check_invariants(cfg, st)) {
    out.failed = true;
    out.op_index = 0;
    out.findings.push_back({"invariant", v.invariant, v.message});
  }
  if (out.failed) return out;
  Harness base(cfg);
  for (size_t i = 0; i < ops.size(); ++i) {
    base.install(st);
    const TransitionCheck tc = run_transition(cfg, base, st, ops[i]);
    if (!tc.problems.empty()) {
      out.failed = true;
      out.op_index = i;
      for (const auto& pr : tc.problems) {
        out.findings.push_back({pr.kind, pr.invariant, pr.message});
      }
      return out;
    }
    st = decode_state(cfg, tc.got_enc);
  }
  return out;
}

}  // namespace sealpk::model
