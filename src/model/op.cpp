#include "model/op.h"

#include <sstream>

namespace sealpk::model {

std::vector<Op> enumerate_ops(const ModelConfig& cfg) {
  std::vector<Op> ops;
  for (unsigned p = 0; p < kModelNumPerms; ++p) {
    Op op;
    op.kind = OpKind::kAlloc;
    op.perm = kModelPerms[p];
    ops.push_back(op);
  }
  for (unsigned k = 0; k < cfg.num_pkeys; ++k) {
    Op op;
    op.kind = OpKind::kFree;
    op.pkey = static_cast<u8>(k);
    ops.push_back(op);
  }
  for (unsigned k = 0; k < cfg.num_pkeys; ++k) {
    for (unsigned pg = 0; pg < cfg.num_pages; ++pg) {
      for (unsigned pr = 0; pr < kModelNumProts; ++pr) {
        Op op;
        op.kind = OpKind::kMprotect;
        op.pkey = static_cast<u8>(k);
        op.page = static_cast<u8>(pg);
        op.prot = kModelProts[pr];
        ops.push_back(op);
      }
    }
  }
  for (unsigned k = 0; k < cfg.num_pkeys; ++k) {
    for (unsigned mode = 1; mode < 4; ++mode) {  // domain, page, both
      Op op;
      op.kind = OpKind::kSeal;
      op.pkey = static_cast<u8>(k);
      op.seal_domain = (mode & 1) != 0;
      op.seal_page = (mode & 2) != 0;
      ops.push_back(op);
    }
  }
  for (unsigned k = 0; k < cfg.num_pkeys; ++k) {
    for (unsigned r = 0; r < kModelNumRanges; ++r) {
      Op op;
      op.kind = OpKind::kPermSeal;
      op.pkey = static_cast<u8>(k);
      op.range = static_cast<u8>(r);
      ops.push_back(op);
    }
  }
  for (unsigned k = 0; k < cfg.num_pkeys; ++k) {
    for (unsigned p = 0; p < kModelNumPerms; ++p) {
      for (unsigned pc = 0; pc < kModelNumWrpkrPcs; ++pc) {
        Op op;
        op.kind = OpKind::kWrpkr;
        op.pkey = static_cast<u8>(k);
        op.perm = kModelPerms[p];
        op.pc = static_cast<u8>(pc);
        ops.push_back(op);
      }
    }
  }
  return ops;
}

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kAlloc: return "alloc";
    case OpKind::kFree: return "free";
    case OpKind::kMprotect: return "mprotect";
    case OpKind::kSeal: return "seal";
    case OpKind::kPermSeal: return "perm_seal";
    case OpKind::kWrpkr: return "wrpkr";
  }
  return "?";
}

std::string op_to_string(const Op& op) {
  std::ostringstream os;
  os << op_kind_name(op.kind);
  switch (op.kind) {
    case OpKind::kAlloc:
      os << "(perm=" << unsigned{op.perm} << ")";
      break;
    case OpKind::kFree:
      os << "(pkey=" << unsigned{op.pkey} << ")";
      break;
    case OpKind::kMprotect:
      os << "(pkey=" << unsigned{op.pkey} << ", page=" << unsigned{op.page}
         << ", prot=" << unsigned{op.prot} << ")";
      break;
    case OpKind::kSeal:
      os << "(pkey=" << unsigned{op.pkey}
         << ", domain=" << (op.seal_domain ? 1 : 0)
         << ", page=" << (op.seal_page ? 1 : 0) << ")";
      break;
    case OpKind::kPermSeal:
      os << "(pkey=" << unsigned{op.pkey} << ", range=" << unsigned{op.range}
         << ")";
      break;
    case OpKind::kWrpkr:
      os << "(pkey=" << unsigned{op.pkey} << ", perm=" << unsigned{op.perm}
         << ", pc=0x" << std::hex << kModelWrpkrPcs[op.pc] << std::dec
         << ")";
      break;
  }
  return os.str();
}

}  // namespace sealpk::model
