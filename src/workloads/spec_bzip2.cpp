// SPEC "bzip2" proxy (both the CPU2000 and CPU2006 entries): the real
// pipeline's per-block stage order minus BWT/Huffman — RLE, then a
// move-to-front transform, then bzip2's RLE2 (zero-run encoding of the MTF
// output, the RUNA/RUNB stage). The MTF step is a per-byte helper call
// (find + shift-to-front) — a high call rate on small bodies, the profile
// that dominates bzip2's shadow-stack overhead. The two suite entries
// differ in input size, block size and seed.
#include "workloads/build_util.h"
#include "workloads/workload.h"

using namespace sealpk::isa;

namespace sealpk::wl {

namespace {
struct Bzip2Params {
  u64 input_bytes;  // multiple of block_bytes
  u64 block_bytes;
  u64 seed;
};

Bzip2Params params_2000(u64 scale) {
  return {6144 * scale, 2048, kWorkloadSeed ^ 0xB2B2};
}
Bzip2Params params_2006(u64 scale) {
  return {8192 * scale, 4096, kWorkloadSeed ^ 0x2006};
}

// Run-prone input: keep the previous character with probability 3/4.
std::vector<u8> host_input(const Bzip2Params& p) {
  GuestRand rng(p.seed);
  std::vector<u8> data(p.input_bytes);
  u8 prev = 'a';
  for (u64 i = 0; i < p.input_bytes; ++i) {
    const u64 v = rng.next();
    if ((v & 3) == 0) prev = static_cast<u8>('a' + ((v >> 2) & 15));
    data[i] = prev;
  }
  return data;
}

u64 golden_bzip2(const Bzip2Params& p) {
  const std::vector<u8> input = host_input(p);
  u8 table[256];
  for (unsigned i = 0; i < 256; ++i) table[i] = static_cast<u8>(i);
  u64 checksum = 0;
  for (u64 base = 0; base < p.input_bytes; base += p.block_bytes) {
    // RLE.
    std::vector<u8> rle;
    u64 i = 0;
    while (i < p.block_bytes) {
      const u8 c = input[base + i];
      u64 len = 1;
      while (i + len < p.block_bytes && input[base + i + len] == c &&
             len < 255) {
        ++len;
      }
      rle.push_back(c);
      rle.push_back(static_cast<u8>(len));
      i += len;
    }
    checksum += rle.size();
    // MTF (table persists across blocks).
    std::vector<u8> mtf_out;
    for (const u8 b : rle) {
      unsigned idx = 0;
      while (table[idx] != b) ++idx;
      for (unsigned j = idx; j > 0; --j) table[j] = table[j - 1];
      table[0] = b;
      checksum += idx;
      mtf_out.push_back(static_cast<u8>(idx));
    }
    // RLE2: bzip2 encodes zero runs of the MTF stream as RUNA/RUNB bits;
    // the checksum folds each run's bit count (floor(log2(len+1))) and
    // non-zero symbols pass through.
    u64 i2 = 0;
    while (i2 < mtf_out.size()) {
      if (mtf_out[i2] == 0) {
        u64 run = 0;
        while (i2 < mtf_out.size() && mtf_out[i2] == 0) {
          ++run;
          ++i2;
        }
        u64 bits = 0;
        for (u64 v = run + 1; v > 1; v >>= 1) ++bits;
        checksum += 17 * bits;
      } else {
        checksum += mtf_out[i2];
        ++i2;
      }
    }
  }
  return checksum;
}

isa::Program build_bzip2(const Bzip2Params& p) {
  Program prog = make_workload_program();
  add_rss_ballast(prog, 384);
  prog.add_zero("input", p.input_bytes);
  prog.add_zero("rle_out", 2 * p.block_bytes + 16);
  prog.add_zero("mtf_out", 2 * p.block_bytes + 16);
  prog.add_zero("mtf_table", 256);

  {
    // rle_block(a0 = in, a1 = len, a2 = out) -> out length; emits
    // (char, runlen <= 255) pairs.
    Function& f = prog.add_function("rle_block");
    const Label scan = f.new_label(), run = f.new_label(),
                emit = f.new_label(), done = f.new_label();
    f.mv(t0, a0);       // cursor
    f.add(t1, a0, a1);  // end
    f.mv(t2, a2);       // out cursor
    f.bind(scan);
    f.bgeu(t0, t1, done);
    f.lbu(t3, 0, t0);  // run char
    f.li(t4, 1);       // run length
    f.bind(run);
    f.add(t5, t0, t4);
    f.bgeu(t5, t1, emit);
    f.lbu(t6, 0, t5);
    f.bne(t6, t3, emit);
    f.li(t5, 255);
    f.bgeu(t4, t5, emit);
    f.addi(t4, t4, 1);
    f.j(run);
    f.bind(emit);
    f.sb(t3, 0, t2);
    f.sb(t4, 1, t2);
    f.addi(t2, t2, 2);
    f.add(t0, t0, t4);
    f.j(scan);
    f.bind(done);
    f.sub(a0, t2, a2);
    f.ret();
  }
  {
    // mtf_one(a0 = byte) -> index in the MTF table; moves the byte to the
    // front.
    Function& f = prog.add_function("mtf_one");
    const Label find = f.new_label(), found = f.new_label();
    const Label shift = f.new_label(), shift_done = f.new_label();
    f.la(t0, "mtf_table");
    f.li(t1, 0);  // index
    f.bind(find);
    f.add(t2, t0, t1);
    f.lbu(t3, 0, t2);
    f.beq(t3, a0, found);
    f.addi(t1, t1, 1);
    f.j(find);
    f.bind(found);
    f.mv(t2, t1);  // shift table[1..index] down from the top
    f.bind(shift);
    f.beqz(t2, shift_done);
    f.add(t3, t0, t2);
    f.lbu(t4, -1, t3);
    f.sb(t4, 0, t3);
    f.addi(t2, t2, -1);
    f.j(shift);
    f.bind(shift_done);
    f.sb(a0, 0, t0);
    f.mv(a0, t1);
    f.ret();
  }
  {
    // rle2_block(a0 = mtf buffer, a1 = len) -> RLE2 checksum contribution:
    // 17 * bitlen(run+1) per zero run, pass-through for other symbols.
    Function& f = prog.add_function("rle2_block");
    const Label scan = f.new_label(), zrun = f.new_label(),
                zdone = f.new_label(), bits = f.new_label(),
                bits_done = f.new_label(), plain = f.new_label(),
                done = f.new_label();
    f.add(t0, a0, a1);  // end
    f.mv(t1, a0);       // cursor
    f.li(a0, 0);        // checksum out
    f.bind(scan);
    f.bgeu(t1, t0, done);
    f.lbu(t2, 0, t1);
    f.bnez(t2, plain);
    f.li(t3, 0);  // run length
    f.bind(zrun);
    f.bgeu(t1, t0, zdone);
    f.lbu(t2, 0, t1);
    f.bnez(t2, zdone);
    f.addi(t3, t3, 1);
    f.addi(t1, t1, 1);
    f.j(zrun);
    f.bind(zdone);
    // bits = floor(log2(run + 1))
    f.addi(t3, t3, 1);
    f.li(t4, 0);
    f.bind(bits);
    f.li(t5, 1);
    f.bgeu(t5, t3, bits_done);
    f.srli(t3, t3, 1);
    f.addi(t4, t4, 1);
    f.j(bits);
    f.bind(bits_done);
    f.li(t5, 17);
    f.mul(t4, t4, t5);
    f.add(a0, a0, t4);
    f.j(scan);
    f.bind(plain);
    f.add(a0, a0, t2);
    f.addi(t1, t1, 1);
    f.j(scan);
    f.bind(done);
    f.ret();
  }
  {
    Function& f = prog.add_function("run");
    Frame frame(f, {s0, s1, s2, s3, s4, s5});
    // Generate the run-prone input inline (mirrors host_input).
    f.la(s0, "input");
    f.li(s1, static_cast<i64>(p.seed));  // xorshift state
    f.li(s2, 0);                         // i
    f.li(s3, 'a');                       // prev
    const Label gen = f.new_label(), keep = f.new_label(),
                gen_done = f.new_label();
    f.bind(gen);
    f.li(t0, static_cast<i64>(p.input_bytes));
    f.bgeu(s2, t0, gen_done);
    f.slli(t0, s1, 13);
    f.xor_(s1, s1, t0);
    f.srli(t0, s1, 7);
    f.xor_(s1, s1, t0);
    f.slli(t0, s1, 17);
    f.xor_(s1, s1, t0);
    f.li(t0, static_cast<i64>(0x2545F4914F6CDD1DULL));
    f.mul(t0, s1, t0);  // value
    f.andi(t1, t0, 3);
    f.bnez(t1, keep);
    f.srli(t1, t0, 2);
    f.andi(t1, t1, 15);
    f.addi(s3, t1, 'a');
    f.bind(keep);
    f.add(t1, s0, s2);
    f.sb(s3, 0, t1);
    f.addi(s2, s2, 1);
    f.j(gen);
    f.bind(gen_done);
    // Init the MTF table to the identity.
    f.la(t0, "mtf_table");
    f.li(t1, 0);
    const Label mt = f.new_label(), mt_done = f.new_label();
    f.bind(mt);
    f.li(t2, 256);
    f.bgeu(t1, t2, mt_done);
    f.add(t2, t0, t1);
    f.sb(t1, 0, t2);
    f.addi(t1, t1, 1);
    f.j(mt);
    f.bind(mt_done);
    // Blocks.
    f.li(s2, 0);  // block offset
    f.li(s4, 0);  // checksum
    const Label blocks = f.new_label(), blocks_done = f.new_label();
    const Label mtf = f.new_label(), mtf_done = f.new_label();
    f.bind(blocks);
    f.li(t0, static_cast<i64>(p.input_bytes));
    f.bgeu(s2, t0, blocks_done);
    f.la(a0, "input");
    f.add(a0, a0, s2);
    f.li(a1, static_cast<i64>(p.block_bytes));
    f.la(a2, "rle_out");
    f.call("rle_block");
    f.mv(s5, a0);        // RLE length
    f.add(s4, s4, a0);   // checksum += outlen
    f.li(s3, 0);         // j
    f.bind(mtf);
    f.bgeu(s3, s5, mtf_done);
    f.la(t0, "rle_out");
    f.add(t0, t0, s3);
    f.lbu(a0, 0, t0);
    f.call("mtf_one");
    f.add(s4, s4, a0);
    f.la(t0, "mtf_out");
    f.add(t0, t0, s3);
    f.sb(a0, 0, t0);  // keep the MTF stream for the RLE2 stage
    f.addi(s3, s3, 1);
    f.j(mtf);
    f.bind(mtf_done);
    f.la(a0, "mtf_out");
    f.mv(a1, s5);
    f.call("rle2_block");
    f.add(s4, s4, a0);
    f.li(t0, static_cast<i64>(p.block_bytes));
    f.add(s2, s2, t0);
    f.j(blocks);
    f.bind(blocks_done);
    f.mv(a0, s4);
    frame.leave();
    f.ret();
  }
  return prog;
}
}  // namespace

isa::Program build_bzip2_2000(u64 scale) {
  return build_bzip2(params_2000(scale));
}
isa::Program build_bzip2_2006(u64 scale) {
  return build_bzip2(params_2006(scale));
}
u64 golden_bzip2_2000(u64 scale) { return golden_bzip2(params_2000(scale)); }
u64 golden_bzip2_2006(u64 scale) { return golden_bzip2(params_2006(scale)); }

}  // namespace sealpk::wl
