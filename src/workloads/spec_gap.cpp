// SPEC CPU2000 "gap" proxy: computational group theory on permutations —
// repeated composition of random generators with orbit tracking.
// perm_mul() and perm_copy() are the hot helpers, like GAP's permutation
// arithmetic kernels.
#include "workloads/build_util.h"
#include "workloads/workload.h"

using namespace sealpk::isa;

namespace sealpk::wl {

namespace {
constexpr u64 kDegree = 24;      // permutation degree (byte entries)
constexpr u64 kGenerators = 8;
u64 iterations(u64 scale) { return 2800 * scale; }
constexpr u64 kSeed = kWorkloadSeed ^ 0x6A9;

// Fisher-Yates with the shared xorshift — mirrored by the guest.
void host_make_perm(GuestRand& rng, u8* perm) {
  for (u64 i = 0; i < kDegree; ++i) perm[i] = static_cast<u8>(i);
  for (u64 i = kDegree - 1; i > 0; --i) {
    const u64 j = rng.next() % (i + 1);
    std::swap(perm[i], perm[j]);
  }
}
}  // namespace

isa::Program build_gap(u64 scale) {
  const u64 iters = iterations(scale);
  Program prog = make_workload_program();
  add_rss_ballast(prog, 384);
  prog.add_zero("generators", kGenerators * kDegree);
  prog.add_zero("acc", kDegree);
  prog.add_zero("tmp", kDegree);

  {
    // perm_mul(a0 = dst, a1 = pa, a2 = pb): dst[i] = pa[pb[i]].
    Function& f = prog.add_function("perm_mul");
    const Label loop = f.new_label(), done = f.new_label();
    f.li(t0, 0);
    f.bind(loop);
    f.li(t1, kDegree);
    f.bgeu(t0, t1, done);
    f.add(t1, a2, t0);
    f.lbu(t1, 0, t1);   // pb[i]
    f.add(t1, a1, t1);
    f.lbu(t1, 0, t1);   // pa[pb[i]]
    f.add(t2, a0, t0);
    f.sb(t1, 0, t2);
    f.addi(t0, t0, 1);
    f.j(loop);
    f.bind(done);
    f.ret();
  }
  {
    // perm_copy(a0 = dst, a1 = src)
    Function& f = prog.add_function("perm_copy");
    const Label loop = f.new_label(), done = f.new_label();
    f.li(t0, 0);
    f.bind(loop);
    f.li(t1, kDegree);
    f.bgeu(t0, t1, done);
    f.add(t1, a1, t0);
    f.lbu(t1, 0, t1);
    f.add(t2, a0, t0);
    f.sb(t1, 0, t2);
    f.addi(t0, t0, 1);
    f.j(loop);
    f.bind(done);
    f.ret();
  }
  {
    Function& f = prog.add_function("run");
    Frame frame(f, {s0, s1, s2, s3, s4});
    auto advance = [&]() {  // xorshift state in s1 -> value in t0
      f.slli(t0, s1, 13);
      f.xor_(s1, s1, t0);
      f.srli(t0, s1, 7);
      f.xor_(s1, s1, t0);
      f.slli(t0, s1, 17);
      f.xor_(s1, s1, t0);
      f.li(t0, static_cast<i64>(0x2545F4914F6CDD1DULL));
      f.mul(t0, s1, t0);
    };
    f.li(s1, static_cast<i64>(kSeed));
    // Build the generators with Fisher-Yates.
    f.li(s0, 0);  // g
    const Label gens = f.new_label(), gens_done = f.new_label();
    f.bind(gens);
    f.li(t1, kGenerators);
    f.bgeu(s0, t1, gens_done);
    f.la(s2, "generators");
    f.li(t1, kDegree);
    f.mul(t1, s0, t1);
    f.add(s2, s2, t1);  // perm base
    // identity
    f.li(t1, 0);
    const Label idl = f.new_label(), idl_done = f.new_label();
    f.bind(idl);
    f.li(t2, kDegree);
    f.bgeu(t1, t2, idl_done);
    f.add(t2, s2, t1);
    f.sb(t1, 0, t2);
    f.addi(t1, t1, 1);
    f.j(idl);
    f.bind(idl_done);
    // shuffle: i from kDegree-1 down to 1
    f.li(s3, kDegree - 1);
    const Label shuf = f.new_label(), shuf_done = f.new_label();
    f.bind(shuf);
    f.beqz(s3, shuf_done);
    advance();
    f.addi(t1, s3, 1);
    f.remu(t1, t0, t1);  // j
    f.add(t2, s2, s3);
    f.lbu(t3, 0, t2);
    f.add(t4, s2, t1);
    f.lbu(t5, 0, t4);
    f.sb(t5, 0, t2);
    f.sb(t3, 0, t4);
    f.addi(s3, s3, -1);
    f.j(shuf);
    f.bind(shuf_done);
    f.addi(s0, s0, 1);
    f.j(gens);
    f.bind(gens_done);
    // acc = identity
    f.la(t0, "acc");
    f.li(t1, 0);
    const Label accl = f.new_label(), accl_done = f.new_label();
    f.bind(accl);
    f.li(t2, kDegree);
    f.bgeu(t1, t2, accl_done);
    f.add(t2, t0, t1);
    f.sb(t1, 0, t2);
    f.addi(t1, t1, 1);
    f.j(accl);
    f.bind(accl_done);
    // Composition walk with orbit tracking: point s2, orbit sum s3.
    f.li(s0, 0);  // iter
    f.li(s2, 1);  // tracked point
    f.li(s3, 0);  // orbit sum
    const Label walk = f.new_label(), walk_done = f.new_label();
    f.bind(walk);
    f.li(t1, static_cast<i64>(iters));
    f.bgeu(s0, t1, walk_done);
    advance();
    f.li(t1, kGenerators);
    f.remu(s4, t0, t1);  // generator index
    // tmp = acc o gen[k]
    f.la(a0, "tmp");
    f.la(a1, "acc");
    f.la(a2, "generators");
    f.li(t1, kDegree);
    f.mul(t1, s4, t1);
    f.add(a2, a2, t1);
    f.call("perm_mul");
    f.la(a0, "acc");
    f.la(a1, "tmp");
    f.call("perm_copy");
    // orbit step: point = acc[point]
    f.la(t1, "acc");
    f.add(t1, t1, s2);
    f.lbu(s2, 0, t1);
    f.add(s3, s3, s2);
    f.addi(s0, s0, 1);
    f.j(walk);
    f.bind(walk_done);
    // checksum = sum acc[i] * (i+1) + orbit sum
    f.la(t0, "acc");
    f.li(t1, 0);
    f.mv(a0, s3);
    const Label sum = f.new_label(), sum_done = f.new_label();
    f.bind(sum);
    f.li(t2, kDegree);
    f.bgeu(t1, t2, sum_done);
    f.add(t3, t0, t1);
    f.lbu(t3, 0, t3);
    f.addi(t4, t1, 1);
    f.mul(t3, t3, t4);
    f.add(a0, a0, t3);
    f.addi(t1, t1, 1);
    f.j(sum);
    f.bind(sum_done);
    frame.leave();
    f.ret();
  }
  return prog;
}

u64 golden_gap(u64 scale) {
  const u64 iters = iterations(scale);
  GuestRand rng(kSeed);
  std::vector<u8> gens(kGenerators * kDegree);
  for (u64 g = 0; g < kGenerators; ++g) {
    host_make_perm(rng, &gens[g * kDegree]);
  }
  u8 acc[kDegree], tmp[kDegree];
  for (u64 i = 0; i < kDegree; ++i) acc[i] = static_cast<u8>(i);
  u64 point = 1, orbit = 0;
  for (u64 it = 0; it < iters; ++it) {
    const u64 g = rng.next() % kGenerators;
    const u8* pb = &gens[g * kDegree];
    for (u64 i = 0; i < kDegree; ++i) tmp[i] = acc[pb[i]];
    for (u64 i = 0; i < kDegree; ++i) acc[i] = tmp[i];
    point = acc[point];
    orbit += point;
  }
  u64 checksum = orbit;
  for (u64 i = 0; i < kDegree; ++i) {
    checksum += static_cast<u64>(acc[i]) * (i + 1);
  }
  return checksum;
}

}  // namespace sealpk::wl
