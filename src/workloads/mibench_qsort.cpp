// MiBench "qsort" proxy: recursive quicksort (Hoare partition) over a
// pseudorandom u64 array. Call profile: one recursive call pair per
// partition — moderate call rate, small footprint, like the original's
// qsort(3)-dominated run.
#include <algorithm>

#include "workloads/build_util.h"
#include "workloads/workload.h"

using namespace sealpk::isa;

namespace sealpk::wl {

namespace {
// Fixed array size: the partition-call granularity stays scale-invariant;
// scale repeats the fill+sort+verify round on fresh data.
constexpr u64 kElements = 512;
constexpr u64 kRoundSeedStride = 0x9E3779B97F4A7C15ULL;
}  // namespace

isa::Program build_qsort(u64 scale) {
  const u64 n = kElements;
  Program prog = make_workload_program();
  add_fill_rand(prog);
  prog.add_zero("array", n * 8);

  // insertion_sort(a0 = lo_ptr, a1 = hi_ptr): the small-partition cutoff,
  // exactly like a production qsort(3).
  {
    Function& f = prog.add_function("insertion_sort");
    const Label outer = f.new_label(), inner = f.new_label(),
                place = f.new_label(), done = f.new_label();
    f.addi(t0, a0, 8);  // p
    f.bind(outer);
    f.bltu(a1, t0, done);
    f.ld(t1, 0, t0);     // key
    f.addi(t2, t0, -8);  // q
    f.bind(inner);
    f.bltu(t2, a0, place);
    f.ld(t3, 0, t2);
    f.bgeu(t1, t3, place);
    f.sd(t3, 8, t2);
    f.addi(t2, t2, -8);
    f.j(inner);
    f.bind(place);
    f.sd(t1, 8, t2);
    f.addi(t0, t0, 8);
    f.j(outer);
    f.bind(done);
    f.ret();
  }
  // quicksort(a0 = lo_ptr, a1 = hi_ptr) — pointers to the first/last
  // element (inclusive); small partitions fall through to insertion sort.
  {
    Function& f = prog.add_function("quicksort");
    const Label done = f.new_label(), outer = f.new_label();
    const Label scan_i = f.new_label(), scan_j = f.new_label();
    const Label swap = f.new_label(), recurse = f.new_label();
    const Label small = f.new_label();
    f.bgeu(a0, a1, done);
    Frame frame(f, {s0, s1, s2, s3, s4});
    f.mv(s0, a0);  // lo
    f.mv(s1, a1);  // hi
    f.sub(t0, s1, s0);
    f.li(t1, 23 * 8);
    f.bgeu(t1, t0, small);  // <= 24 elements
    // pivot = *(lo + ((hi - lo) / 16) * 8)  (the middle element)
    f.sub(t0, s1, s0);
    f.srli(t0, t0, 4);
    f.slli(t0, t0, 3);
    f.add(t0, s0, t0);
    f.ld(s2, 0, t0);      // s2 = pivot value
    f.addi(s3, s0, -8);   // i
    f.addi(s4, s1, 8);    // j
    f.bind(outer);
    f.bind(scan_i);
    f.addi(s3, s3, 8);
    f.ld(t0, 0, s3);
    f.bltu(t0, s2, scan_i);
    f.bind(scan_j);
    f.addi(s4, s4, -8);
    f.ld(t1, 0, s4);
    f.bltu(s2, t1, scan_j);
    f.bltu(s3, s4, swap);
    f.j(recurse);
    f.bind(swap);
    f.sd(t1, 0, s3);
    f.sd(t0, 0, s4);
    f.j(outer);
    f.bind(recurse);
    f.mv(a0, s0);
    f.mv(a1, s4);
    f.call("quicksort");
    f.addi(a0, s4, 8);
    f.mv(a1, s1);
    f.call("quicksort");
    frame.leave();
    f.bind(done);
    f.ret();
    f.bind(small);
    f.mv(a0, s0);
    f.mv(a1, s1);
    f.call("insertion_sort");
    frame.leave();
    f.ret();
  }

  // run(): `scale` rounds of fill, sort, verify + checksum.
  {
    Function& f = prog.add_function("run");
    Frame frame(f, {s0, s1, s2, s3, s4, s5});
    f.li(s4, 0);  // round
    f.li(s5, 0);  // total checksum
    const Label rounds = f.new_label(), rounds_done = f.new_label();
    f.bind(rounds);
    f.li(t0, static_cast<i64>(scale));
    f.bgeu(s4, t0, rounds_done);
    f.la(s0, "array");
    f.la(a0, "array");
    f.li(a1, static_cast<i64>(n));
    f.li(a2, static_cast<i64>(kRoundSeedStride));
    f.mul(a2, a2, s4);
    f.li(t0, static_cast<i64>(kWorkloadSeed));
    f.add(a2, a2, t0);  // round seed
    f.call("__fill_rand");
    f.la(a0, "array");
    f.li(t0, static_cast<i64>((n - 1) * 8));
    f.add(a1, a0, t0);
    f.call("quicksort");
    // checksum = sum of value * (index + 1); bail to 0xDEAD on disorder.
    const Label loop = f.new_label(), done = f.new_label(),
                bad = f.new_label();
    f.li(s1, 0);  // checksum
    f.li(s2, 1);  // index + 1
    f.li(s3, static_cast<i64>(n));
    f.mv(t2, s0);
    f.ld(t3, 0, t2);  // previous
    f.bind(loop);
    f.bgeu(s2, s3, done);  // processed n-1 pairs
    f.mul(t4, t3, s2);
    f.add(s1, s1, t4);
    f.addi(t2, t2, 8);
    f.ld(t0, 0, t2);
    f.bltu(t0, t3, bad);  // disorder
    f.mv(t3, t0);
    f.addi(s2, s2, 1);
    f.j(loop);
    f.bind(done);
    f.mul(t4, t3, s2);
    f.add(s1, s1, t4);
    f.add(s5, s5, s1);  // accumulate this round
    f.addi(s4, s4, 1);
    f.j(rounds);
    f.bind(rounds_done);
    f.mv(a0, s5);
    frame.leave();
    f.ret();
    f.bind(bad);
    f.li(a0, 0xDEAD);
    frame.leave();
    f.ret();
  }
  return prog;
}

u64 golden_qsort(u64 scale) {
  u64 total = 0;
  for (u64 round = 0; round < scale; ++round) {
    std::vector<u64> data;
    host_fill_rand(data, kElements,
                   kWorkloadSeed + round * kRoundSeedStride);
    std::sort(data.begin(), data.end());
    u64 checksum = 0;
    for (u64 i = 0; i < kElements; ++i) checksum += data[i] * (i + 1);
    total += checksum;
  }
  return total;
}

}  // namespace sealpk::wl
