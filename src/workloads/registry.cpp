#include "workloads/workload.h"

#include <cstring>

namespace sealpk::wl {

const char* suite_name(Suite suite) {
  switch (suite) {
    case Suite::kSpec2000: return "SPECint2000";
    case Suite::kSpec2006: return "SPECint2006";
    case Suite::kMiBench: return "MiBench";
    case Suite::kScenario: return "Scenario";
  }
  return "?";
}

const std::vector<Workload>& all_workloads() {
  // Figure 5's x-axis order. test_scale keeps unit tests fast;
  // bench_scale drives the Figure-5 harness.
  static const std::vector<Workload> kWorkloads = {
      // SPECint2000
      {"bzip2", Suite::kSpec2000, build_bzip2_2000, golden_bzip2_2000, 1, 4},
      {"vpr", Suite::kSpec2000, build_vpr, golden_vpr, 1, 4},
      {"gzip", Suite::kSpec2000, build_gzip, golden_gzip, 1, 4},
      {"parser", Suite::kSpec2000, build_parser, golden_parser, 1, 4},
      {"gap", Suite::kSpec2000, build_gap, golden_gap, 1, 4},
      {"mcf", Suite::kSpec2000, build_mcf, golden_mcf, 1, 4},
      // SPECint2006
      {"libquantum", Suite::kSpec2006, build_libquantum, golden_libquantum,
       1, 4},
      {"bzip2", Suite::kSpec2006, build_bzip2_2006, golden_bzip2_2006, 1, 4},
      {"sjeng", Suite::kSpec2006, build_sjeng, golden_sjeng, 1, 2},
      {"h264ref", Suite::kSpec2006, build_h264ref, golden_h264ref, 1, 2},
      // MiBench
      {"sha", Suite::kMiBench, build_sha, golden_sha, 1, 4},
      {"qsort", Suite::kMiBench, build_qsort, golden_qsort, 1, 4},
      {"dijkstra", Suite::kMiBench, build_dijkstra, golden_dijkstra, 1, 3},
      {"FFT", Suite::kMiBench, build_fft, golden_fft, 1, 4},
      {"patricia", Suite::kMiBench, build_patricia, golden_patricia, 1, 4},
      {"bitcount", Suite::kMiBench, build_bitcount, golden_bitcount, 1, 4},
      {"stringsearch", Suite::kMiBench, build_stringsearch,
       golden_stringsearch, 1, 4},
  };
  return kWorkloads;
}

const std::vector<Workload>& scenario_workloads() {
  // bench_scale 8 = 1536 sessions: past the 1023 physical keys, so the
  // benchmark run exercises the eviction/park machinery for real.
  static const std::vector<Workload> kScenarios = {
      {"session_server", Suite::kScenario, build_session_server,
       golden_session_server, 1, 8},
  };
  return kScenarios;
}

const Workload* find_workload(Suite suite, const char* name) {
  for (const auto& w : all_workloads()) {
    if (w.suite == suite && std::strcmp(w.name, name) == 0) return &w;
  }
  for (const auto& w : scenario_workloads()) {
    if (w.suite == suite && std::strcmp(w.name, name) == 0) return &w;
  }
  return nullptr;
}

}  // namespace sealpk::wl
