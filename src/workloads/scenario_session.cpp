// Scenario "session_server": one protection domain per user session.
//
// The guest mmaps an arena of one page per session, then ramps every
// session up (connect = key alloc + pkey_mprotect of the session page +
// open/write/close) and churns: ~10% of operations reconnect a session
// (free + fresh key), the rest touch it (open, read+increment the session
// cell, close). Virtualized mode drives the vpkey ABI — at scales past the
// 1023 physical keys every cold touch is a map-in with an eviction behind
// it — while raw mode uses physical pkeys directly (user-mode PKR writes
// for open/close, like a hand-tuned MPK server would).
//
// The checksum is key-id independent by construction: connect contributes
// slot+1 and stores slot+1 into the session cell, touch contributes the
// cell and increments it. So raw vs virtualized, eager vs lazy, any MRU
// size — same shape, same checksum. What differs is the churn work, which
// is exactly what the key-churn benchmarks measure.
#include "common/check.h"
#include "workloads/build_util.h"
#include "workloads/workload.h"

using namespace sealpk::isa;

namespace sealpk::wl {

namespace {

constexpr u64 kPage = 4096;
// Every 10th churn op (by PRNG draw) reconnects instead of touching.
constexpr u64 kReconnectOneIn = 10;

// Emits `open/close` for the session key in a0: virtualized sessions go
// through sys_vpkey_set (the table decides between MRU hit, revival and
// map-in); raw sessions write the PKR directly from user mode.
void emit_perm(Function& f, bool raw, u64 perm) {
  f.li(a1, static_cast<i64>(perm));
  if (raw) {
    f.call("__pkey_set");
  } else {
    rt::syscall(f, os::sys::kVpkeySet);
  }
}

// The shared guest skeleton for both modes.
isa::Program build_session(const SessionShape& p) {
  SEALPK_CHECK(p.sessions >= 1);
  Program prog = make_workload_program();
  rt::add_rand_lib(prog);
  if (p.raw) rt::add_pkey_lib(prog);
  prog.add_zero("sess_base", 8);
  prog.add_zero("sess_sum", 8);
  prog.add_zero("sess_rng", 8);
  prog.add_zero("sess_keys", p.sessions * 8);

  const u64 nr_alloc = p.raw ? os::sys::kPkeyAlloc : os::sys::kVpkeyAlloc;
  const u64 nr_free = p.raw ? os::sys::kPkeyFree : os::sys::kVpkeyFree;
  const u64 nr_mprotect =
      p.raw ? os::sys::kPkeyMprotect : os::sys::kVpkeyMprotect;

  // fail(a0 = errno-ish value): report the failure marker and exit 1 so a
  // broken run can never alias a good checksum.
  {
    Function& f = prog.add_function("sess_fail");
    f.li(a0, 0x5E55DEAD);
    rt::syscall(f, os::sys::kReport);
    f.li(a0, 1);
    rt::syscall(f, os::sys::kExit);
    f.ret();  // unreachable
  }

  // connect(a0 = slot): alloc key, protect the slot page, open, write the
  // initial cell (slot+1), account it, close.
  {
    Function& f = prog.add_function("sess_connect");
    Frame frame(f, {s0, s1, s2});
    const Label fail = f.new_label();
    f.mv(s0, a0);
    f.li(a0, 0);
    f.li(a1, static_cast<i64>(os::pkeyperm::kNone));
    rt::syscall(f, nr_alloc);
    f.blez(a0, fail);
    f.mv(s1, a0);  // key
    f.la(t0, "sess_keys");
    f.slli(t1, s0, 3);
    f.add(t0, t0, t1);
    f.sd(s1, 0, t0);
    f.la(t0, "sess_base");
    f.ld(s2, 0, t0);
    f.slli(t1, s0, 12);
    f.add(s2, s2, t1);  // session page
    f.mv(a0, s2);
    f.li(a1, static_cast<i64>(kPage));
    f.li(a2, static_cast<i64>(os::prot::kRead | os::prot::kWrite));
    f.mv(a3, s1);
    rt::syscall(f, nr_mprotect);
    f.blt(a0, 0, fail);
    f.mv(a0, s1);
    emit_perm(f, p.raw, os::pkeyperm::kRw);
    f.addi(t0, s0, 1);  // cell value = slot + 1
    f.sd(t0, 0, s2);
    f.la(t1, "sess_sum");
    f.ld(t2, 0, t1);
    f.add(t2, t2, t0);
    f.sd(t2, 0, t1);
    f.mv(a0, s1);
    emit_perm(f, p.raw, os::pkeyperm::kNone);
    frame.leave();
    f.ret();
    f.bind(fail);
    f.call("sess_fail");
    f.ret();  // unreachable
  }

  // touch(a0 = slot): open, sum += cell, cell += 1, close.
  {
    Function& f = prog.add_function("sess_touch");
    Frame frame(f, {s0, s1, s2});
    f.mv(s0, a0);
    f.la(t0, "sess_keys");
    f.slli(t1, s0, 3);
    f.add(t0, t0, t1);
    f.ld(s1, 0, t0);  // key
    f.la(t0, "sess_base");
    f.ld(s2, 0, t0);
    f.slli(t1, s0, 12);
    f.add(s2, s2, t1);  // session page
    f.mv(a0, s1);
    emit_perm(f, p.raw, os::pkeyperm::kRw);
    f.ld(t0, 0, s2);
    f.la(t1, "sess_sum");
    f.ld(t2, 0, t1);
    f.add(t2, t2, t0);
    f.sd(t2, 0, t1);
    f.addi(t0, t0, 1);
    f.sd(t0, 0, s2);
    f.mv(a0, s1);
    emit_perm(f, p.raw, os::pkeyperm::kNone);
    frame.leave();
    f.ret();
  }

  // disconnect(a0 = slot): free the key. The pages re-key to the default
  // domain (virtualized) or stay on the freed key until SealPK's lazy
  // de-allocation drains it (raw) — either way the reconnect re-keys them.
  {
    Function& f = prog.add_function("sess_disconnect");
    Frame frame(f, {});
    const Label fail = f.new_label();
    f.la(t0, "sess_keys");
    f.slli(t1, a0, 3);
    f.add(t0, t0, t1);
    f.ld(a0, 0, t0);
    rt::syscall(f, nr_free);
    f.blt(a0, 0, fail);
    frame.leave();
    f.ret();
    f.bind(fail);
    f.call("sess_fail");
    f.ret();  // unreachable
  }

  // run(): mmap the arena, seed the PRNG, ramp, churn, return the checksum.
  {
    Function& f = prog.add_function("run");
    Frame frame(f, {s0, s1, s2, s3});
    const Label fail = f.new_label();
    f.li(a0, 0);
    f.li(a1, static_cast<i64>(p.sessions * kPage));
    f.li(a2, static_cast<i64>(os::prot::kRead | os::prot::kWrite));
    rt::syscall(f, os::sys::kMmap);
    f.blez(a0, fail);
    f.la(t0, "sess_base");
    f.sd(a0, 0, t0);
    f.la(t0, "sess_rng");
    f.li(t1, static_cast<i64>(p.seed));
    f.sd(t1, 0, t0);
    // Ramp: connect every slot.
    const Label ramp = f.new_label(), ramp_done = f.new_label();
    f.li(s0, 0);
    f.bind(ramp);
    f.li(t0, static_cast<i64>(p.sessions));
    f.bgeu(s0, t0, ramp_done);
    f.mv(a0, s0);
    f.call("sess_connect");
    f.addi(s0, s0, 1);
    f.j(ramp);
    f.bind(ramp_done);
    // Churn.
    const Label churn = f.new_label(), churn_done = f.new_label();
    const Label do_touch = f.new_label(), next = f.new_label();
    f.li(s1, 0);
    f.bind(churn);
    f.li(t0, static_cast<i64>(p.ops));
    f.bgeu(s1, t0, churn_done);
    f.la(a0, "sess_rng");
    f.call("__rand");
    f.mv(s2, a0);
    f.li(t0, static_cast<i64>(p.sessions));
    f.remu(s3, s2, t0);  // slot
    f.srli(t0, s2, 33);
    f.li(t1, static_cast<i64>(kReconnectOneIn));
    f.remu(t0, t0, t1);
    f.bnez(t0, do_touch);
    f.mv(a0, s3);
    f.call("sess_disconnect");
    f.mv(a0, s3);
    f.call("sess_connect");
    f.j(next);
    f.bind(do_touch);
    f.mv(a0, s3);
    f.call("sess_touch");
    f.bind(next);
    f.addi(s1, s1, 1);
    f.j(churn);
    f.bind(churn_done);
    f.la(t0, "sess_sum");
    f.ld(a0, 0, t0);
    frame.leave();
    f.ret();
    f.bind(fail);
    f.call("sess_fail");
    f.ret();  // unreachable
  }
  return prog;
}

}  // namespace

isa::Program build_session_prog(const SessionShape& shape) {
  return build_session(shape);
}

u64 golden_session_sum(const SessionShape& shape) {
  std::vector<u64> cell(shape.sessions);
  u64 sum = 0;
  const auto connect = [&](u64 slot) {
    cell[slot] = slot + 1;
    sum += slot + 1;
  };
  for (u64 slot = 0; slot < shape.sessions; ++slot) connect(slot);
  GuestRand rng(shape.seed);
  for (u64 i = 0; i < shape.ops; ++i) {
    const u64 r = rng.next();
    const u64 slot = r % shape.sessions;
    if ((r >> 33) % kReconnectOneIn == 0) {
      connect(slot);
    } else {
      sum += cell[slot];
      cell[slot] += 1;
    }
  }
  return sum;
}

SessionSchedule session_schedule(const SessionShape& shape) {
  SessionSchedule sched;
  sched.connects = shape.sessions;
  GuestRand rng(shape.seed);
  for (u64 i = 0; i < shape.ops; ++i) {
    const u64 r = rng.next();
    if ((r >> 33) % kReconnectOneIn == 0) {
      ++sched.reconnects;
      ++sched.connects;
    } else {
      ++sched.touches;
    }
  }
  return sched;
}

isa::Program build_session_server(u64 scale) {
  return build_session(SessionShape{.sessions = 192 * scale,
                                    .ops = 384 * scale});
}

u64 golden_session_server(u64 scale) {
  return golden_session_sum(SessionShape{.sessions = 192 * scale,
                                         .ops = 384 * scale});
}

}  // namespace sealpk::wl
