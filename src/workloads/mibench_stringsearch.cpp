// MiBench "stringsearch" proxy: Boyer-Moore-Horspool over pseudorandom
// lowercase text for a batch of patterns. The full window comparison is a
// helper function called per alignment — a very high call rate on tiny
// bodies, like the original's init_search/strsearch pair.
#include "workloads/build_util.h"
#include "workloads/workload.h"

using namespace sealpk::isa;

namespace sealpk::wl {

namespace {
u64 text_len(u64 scale) { return 2048 * scale; }
constexpr u64 kNumPatterns = 12;

void host_generate(u64 scale, std::vector<u8>* text,
                   std::vector<std::vector<u8>>* patterns) {
  const u64 tlen = text_len(scale);
  std::vector<u64> words;
  const u64 state = host_fill_rand(words, tlen / 8, kWorkloadSeed);
  text->resize(tlen);
  for (u64 i = 0; i < tlen; ++i) {
    (*text)[i] = static_cast<u8>(
        'a' + ((words[i / 8] >> (8 * (i % 8))) & 0xFF) % 8);
  }
  std::vector<u64> pwords;
  host_fill_rand(pwords, kNumPatterns, state);
  patterns->clear();
  for (u64 k = 0; k < kNumPatterns; ++k) {
    const u64 plen = 3 + k % 3;  // 3..5 — short enough to actually hit
    std::vector<u8> pat(plen);
    for (u64 j = 0; j < plen; ++j) {
      pat[j] = static_cast<u8>('a' + ((pwords[k] >> (8 * j)) & 0xFF) % 8);
    }
    patterns->push_back(std::move(pat));
  }
}
}  // namespace

isa::Program build_stringsearch(u64 scale) {
  const u64 tlen = text_len(scale);
  Program prog = make_workload_program();
  add_fill_rand(prog);
  prog.add_zero("text", tlen + 16);
  prog.add_zero("patterns", kNumPatterns * 8 + 16);
  prog.add_zero("shift_table", 256);

  {
    // narrow(a0 = ptr, a1 = len): bytes -> 'a' + (b % 8)
    Function& f = prog.add_function("narrow");
    const Label loop = f.new_label(), done = f.new_label();
    f.bind(loop);
    f.beqz(a1, done);
    f.lbu(t0, 0, a0);
    f.andi(t0, t0, 7);
    f.addi(t0, t0, 'a');
    f.sb(t0, 0, a0);
    f.addi(a0, a0, 1);
    f.addi(a1, a1, -1);
    f.j(loop);
    f.bind(done);
    f.ret();
  }
  {
    // win_cmp(a0 = text ptr, a1 = pattern ptr, a2 = plen) -> 1/0
    Function& f = prog.add_function("win_cmp");
    const Label loop = f.new_label(), miss = f.new_label(),
                hit = f.new_label();
    f.bind(loop);
    f.beqz(a2, hit);
    f.lbu(t0, 0, a0);
    f.lbu(t1, 0, a1);
    f.bne(t0, t1, miss);
    f.addi(a0, a0, 1);
    f.addi(a1, a1, 1);
    f.addi(a2, a2, -1);
    f.j(loop);
    f.bind(hit);
    f.li(a0, 1);
    f.ret();
    f.bind(miss);
    f.li(a0, 0);
    f.ret();
  }
  {
    // bmh_search(a0 = text, a1 = tlen, a2 = pat, a3 = plen) -> count
    Function& f = prog.add_function("bmh_search");
    Frame frame(f, {s0, s1, s2, s3, s4, s5});
    f.mv(s0, a0);  // text
    f.mv(s1, a1);  // tlen
    f.mv(s2, a2);  // pat
    f.mv(s3, a3);  // plen
    // Build the bad-character table: shift[c] = plen; then for j < plen-1:
    // shift[pat[j]] = plen - 1 - j.
    f.la(s4, "shift_table");
    const Label init = f.new_label(), init_done = f.new_label();
    f.li(t0, 0);
    f.bind(init);
    f.li(t1, 256);
    f.bgeu(t0, t1, init_done);
    f.add(t1, s4, t0);
    f.sb(s3, 0, t1);
    f.addi(t0, t0, 1);
    f.j(init);
    f.bind(init_done);
    const Label fill = f.new_label(), fill_done = f.new_label();
    f.li(t0, 0);
    f.addi(t2, s3, -1);
    f.bind(fill);
    f.bgeu(t0, t2, fill_done);
    f.add(t1, s2, t0);
    f.lbu(t1, 0, t1);
    f.add(t1, s4, t1);
    f.sub(t3, t2, t0);  // plen - 1 - j
    f.sb(t3, 0, t1);
    f.addi(t0, t0, 1);
    f.j(fill);
    f.bind(fill_done);
    // Scan.
    const Label scan = f.new_label(), scan_done = f.new_label();
    f.li(s5, 0);        // count in s5; i reuses t... i must survive calls:
    f.mv(s1, s1);       // (tlen stays in s1)
    f.mv(s4, zero);     // s4 = i (table address reloaded when needed)
    const Label no_cmp = f.new_label();
    f.bind(scan);
    f.add(t0, s4, s3);
    f.bltu(s1, t0, scan_done);  // i + plen > tlen ?
    // Inline last-character guard (the usual BMH fast path): only fall into
    // the full window comparison when the last characters agree.
    f.add(t0, s0, t0);
    f.lbu(t1, -1, t0);  // text[i + plen - 1]
    f.add(t2, s2, s3);
    f.lbu(t2, -1, t2);  // pat[plen - 1]
    f.bne(t1, t2, no_cmp);
    f.add(a0, s0, s4);
    f.mv(a1, s2);
    f.mv(a2, s3);
    f.call("win_cmp");
    f.add(s5, s5, a0);
    f.bind(no_cmp);
    // shift by table[text[i + plen - 1]]
    f.add(t0, s4, s3);
    f.add(t0, s0, t0);
    f.lbu(t1, -1, t0);
    f.la(t2, "shift_table");
    f.add(t2, t2, t1);
    f.lbu(t3, 0, t2);
    f.add(s4, s4, t3);
    f.j(scan);
    f.bind(scan_done);
    f.mv(a0, s5);
    frame.leave();
    f.ret();
  }
  {
    Function& f = prog.add_function("run");
    Frame frame(f, {s0, s1, s2, s3});
    // Generate text then patterns from the continued stream.
    f.la(a0, "text");
    f.li(a1, static_cast<i64>(tlen / 8));
    f.li(a2, static_cast<i64>(kWorkloadSeed));
    f.call("__fill_rand");
    f.mv(s0, a0);  // continued state
    f.la(a0, "text");
    f.li(a1, static_cast<i64>(tlen));
    f.call("narrow");
    f.la(a0, "patterns");
    f.li(a1, kNumPatterns);
    f.mv(a2, s0);
    f.call("__fill_rand");
    f.la(a0, "patterns");
    f.li(a1, kNumPatterns * 8);
    f.call("narrow");
    // Search each pattern; checksum = sum count * (k+1).
    f.li(s0, 0);  // k
    f.li(s1, 0);  // checksum
    const Label loop = f.new_label(), done = f.new_label();
    f.bind(loop);
    f.li(t0, kNumPatterns);
    f.bgeu(s0, t0, done);
    f.la(a0, "text");
    f.li(a1, static_cast<i64>(tlen));
    f.la(a2, "patterns");
    f.slli(t0, s0, 3);
    f.add(a2, a2, t0);
    // plen = 3 + k % 3
    f.li(t1, 3);
    f.remu(t1, s0, t1);
    f.addi(a3, t1, 3);
    f.call("bmh_search");
    f.addi(t0, s0, 1);
    f.mul(t0, a0, t0);
    f.add(s1, s1, t0);
    f.addi(s0, s0, 1);
    f.j(loop);
    f.bind(done);
    f.mv(a0, s1);
    frame.leave();
    f.ret();
  }
  return prog;
}

u64 golden_stringsearch(u64 scale) {
  std::vector<u8> text;
  std::vector<std::vector<u8>> patterns;
  host_generate(scale, &text, &patterns);
  u64 checksum = 0;
  for (u64 k = 0; k < patterns.size(); ++k) {
    const auto& pat = patterns[k];
    u64 count = 0;
    for (u64 i = 0; i + pat.size() <= text.size(); ++i) {
      bool match = true;
      for (u64 j = 0; j < pat.size(); ++j) {
        if (text[i + j] != pat[j]) {
          match = false;
          break;
        }
      }
      count += match ? 1 : 0;
    }
    checksum += count * (k + 1);
  }
  return checksum;
}

}  // namespace sealpk::wl
