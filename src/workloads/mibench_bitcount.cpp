// MiBench "bitcount" proxy: several bit-counting routines applied to a
// deterministic value stream, one function call per (value, method) — the
// original's profile is exactly this: tiny leaf functions called at an
// extremely high rate.
#include <bit>

#include "workloads/build_util.h"
#include "workloads/workload.h"

using namespace sealpk::isa;

namespace sealpk::wl {

namespace {
constexpr u64 kStride = 0x9E3779B97F4A7C15ULL;  // value stream: i * kStride
u64 iterations(u64 scale) { return 3000 * scale; }
}  // namespace

isa::Program build_bitcount(u64 scale) {
  const u64 n = iterations(scale);
  Program prog = make_workload_program();

  // Nibble lookup table.
  prog.add_rodata("nibble_table", {0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3,
                                   3, 4});

  {
    // bc_kernighan(a0) -> popcount: clear lowest set bit until zero.
    Function& f = prog.add_function("bc_kernighan");
    const Label loop = f.new_label(), done = f.new_label();
    f.li(t0, 0);
    f.bind(loop);
    f.beqz(a0, done);
    f.addi(t1, a0, -1);
    f.and_(a0, a0, t1);
    f.addi(t0, t0, 1);
    f.j(loop);
    f.bind(done);
    f.mv(a0, t0);
    f.ret();
  }
  {
    // bc_shift(a0) -> popcount: test-and-shift all 64 bits.
    Function& f = prog.add_function("bc_shift");
    const Label loop = f.new_label(), done = f.new_label();
    f.li(t0, 0);
    f.li(t2, 64);
    f.bind(loop);
    f.beqz(t2, done);
    f.andi(t1, a0, 1);
    f.add(t0, t0, t1);
    f.srli(a0, a0, 1);
    f.addi(t2, t2, -1);
    f.j(loop);
    f.bind(done);
    f.mv(a0, t0);
    f.ret();
  }
  {
    // bc_nibble(a0) -> popcount via the 16-entry table.
    Function& f = prog.add_function("bc_nibble");
    const Label loop = f.new_label(), done = f.new_label();
    f.la(t3, "nibble_table");
    f.li(t0, 0);
    f.li(t2, 16);
    f.bind(loop);
    f.beqz(t2, done);
    f.andi(t1, a0, 15);
    f.add(t1, t3, t1);
    f.lbu(t1, 0, t1);
    f.add(t0, t0, t1);
    f.srli(a0, a0, 4);
    f.addi(t2, t2, -1);
    f.j(loop);
    f.bind(done);
    f.mv(a0, t0);
    f.ret();
  }
  {
    // bc_swar(a0) -> popcount via the parallel SWAR reduction.
    Function& f = prog.add_function("bc_swar");
    f.li(t1, static_cast<i64>(0x5555555555555555ULL));
    f.srli(t0, a0, 1);
    f.and_(t0, t0, t1);
    f.sub(a0, a0, t0);  // pairs
    f.li(t1, static_cast<i64>(0x3333333333333333ULL));
    f.and_(t0, a0, t1);
    f.srli(a0, a0, 2);
    f.and_(a0, a0, t1);
    f.add(a0, a0, t0);  // nibbles
    f.srli(t0, a0, 4);
    f.add(a0, a0, t0);
    f.li(t1, static_cast<i64>(0x0F0F0F0F0F0F0F0FULL));
    f.and_(a0, a0, t1);  // bytes
    f.li(t1, static_cast<i64>(0x0101010101010101ULL));
    f.mul(a0, a0, t1);
    f.srli(a0, a0, 56);
    f.ret();
  }
  {
    Function& f = prog.add_function("run");
    Frame frame(f, {s0, s1, s2, s3});
    f.li(s0, 1);                        // i
    f.li(s1, static_cast<i64>(n));      // limit
    f.li(s2, 0);                        // checksum
    const Label loop = f.new_label(), done = f.new_label();
    f.bind(loop);
    f.bltu(s1, s0, done);  // i > n ?
    f.li(s3, static_cast<i64>(kStride));
    f.mul(s3, s3, s0);  // the value under test
    f.mv(a0, s3);
    f.call("bc_kernighan");
    f.add(s2, s2, a0);
    f.mv(a0, s3);
    f.call("bc_shift");
    f.add(s2, s2, a0);
    f.mv(a0, s3);
    f.call("bc_nibble");
    f.add(s2, s2, a0);
    f.mv(a0, s3);
    f.call("bc_swar");
    f.add(s2, s2, a0);
    f.addi(s0, s0, 1);
    f.j(loop);
    f.bind(done);
    f.mv(a0, s2);
    frame.leave();
    f.ret();
  }
  return prog;
}

u64 golden_bitcount(u64 scale) {
  const u64 n = iterations(scale);
  u64 checksum = 0;
  for (u64 i = 1; i <= n; ++i) {
    checksum += 4 * static_cast<u64>(std::popcount(i * kStride));
  }
  return checksum;
}

}  // namespace sealpk::wl
