// MiBench "FFT" proxy: an in-place radix-2 fixed-point FFT (Q15 twiddles,
// 32-bit data), one fft_group() call per butterfly group plus a bit-reverse
// pass. Substitution note: the original uses floating point; the simulated
// hart is RV64IM, so the FFT is fixed-point — identical memory/call
// structure, integer ALU instead of FPU. The twiddle table is precomputed
// host-side into rodata, like a const table in the original binary.
#include <cmath>

#include "workloads/build_util.h"
#include "workloads/workload.h"

using namespace sealpk::isa;

namespace sealpk::wl {

namespace {
// Fixed transform size (call granularity stays scale-invariant); scale
// repeats the generate+transform round with a shifted seed.
constexpr u64 kFftSize = 256;
constexpr u64 kRoundSeedStride = 0x9E3779B97F4A7C15ULL;
u64 fft_size(u64 /*scale*/) { return kFftSize; }

std::vector<i32> host_twiddles(u64 n) {
  // w[k] = e^{-2*pi*i*k/n} in Q15, interleaved re/im.
  std::vector<i32> tw(n);  // n/2 complex pairs
  for (u64 k = 0; k < n / 2; ++k) {
    const double ang = -2.0 * M_PI * static_cast<double>(k) /
                       static_cast<double>(n);
    tw[2 * k] = static_cast<i32>(std::lround(std::cos(ang) * 32767.0));
    tw[2 * k + 1] = static_cast<i32>(std::lround(std::sin(ang) * 32767.0));
  }
  return tw;
}

void host_inputs(u64 n, u64 seed, std::vector<i32>* re,
                 std::vector<i32>* im) {
  GuestRand rng(seed);
  re->resize(n);
  im->resize(n);
  for (u64 k = 0; k < n; ++k) {
    const u64 v = rng.next();
    (*re)[k] = static_cast<i32>(v & 0x3FFF) - 0x2000;
    (*im)[k] = static_cast<i32>((v >> 16) & 0x3FFF) - 0x2000;
  }
}

std::vector<u8> to_bytes(const std::vector<i32>& v) {
  std::vector<u8> bytes(v.size() * 4);
  for (size_t i = 0; i < v.size(); ++i) {
    const u32 u = static_cast<u32>(v[i]);
    bytes[4 * i] = static_cast<u8>(u);
    bytes[4 * i + 1] = static_cast<u8>(u >> 8);
    bytes[4 * i + 2] = static_cast<u8>(u >> 16);
    bytes[4 * i + 3] = static_cast<u8>(u >> 24);
  }
  return bytes;
}
}  // namespace

isa::Program build_fft(u64 scale) {
  const u64 n = fft_size(scale);
  Program prog = make_workload_program();
  prog.add_zero("re", n * 4);
  prog.add_zero("im", n * 4);
  prog.add_rodata("twiddle", to_bytes(host_twiddles(n)), 8);

  {
    // bit_reverse(): permute re/im in place.
    Function& f = prog.add_function("bit_reverse");
    const Label loop = f.new_label(), noswap = f.new_label(),
                done = f.new_label();
    const Label rev = f.new_label(), rev_done = f.new_label();
    f.la(t0, "re");
    f.la(t1, "im");
    f.li(t2, 0);  // i
    unsigned log2n = 0;
    while ((u64{1} << log2n) < n) ++log2n;
    f.bind(loop);
    f.li(t3, static_cast<i64>(n));
    f.bgeu(t2, t3, done);
    // j = bit-reverse of i over log2n bits
    f.mv(t4, t2);
    f.li(t5, 0);       // j
    f.li(t6, log2n);
    f.bind(rev);
    f.beqz(t6, rev_done);
    f.slli(t5, t5, 1);
    f.andi(a2, t4, 1);
    f.or_(t5, t5, a2);
    f.srli(t4, t4, 1);
    f.addi(t6, t6, -1);
    f.j(rev);
    f.bind(rev_done);
    f.bgeu(t2, t5, noswap);  // swap once per pair
    // swap re[i],re[j] and im[i],im[j]
    f.slli(t4, t2, 2);
    f.slli(t6, t5, 2);
    f.add(a2, t0, t4);
    f.add(a3, t0, t6);
    f.lw(a4, 0, a2);
    f.lw(a5, 0, a3);
    f.sw(a5, 0, a2);
    f.sw(a4, 0, a3);
    f.add(a2, t1, t4);
    f.add(a3, t1, t6);
    f.lw(a4, 0, a2);
    f.lw(a5, 0, a3);
    f.sw(a5, 0, a2);
    f.sw(a4, 0, a3);
    f.bind(noswap);
    f.addi(t2, t2, 1);
    f.j(loop);
    f.bind(done);
    f.ret();
  }
  {
    // fft_group(a0 = base index, a1 = half (len/2), a2 = twiddle stride):
    // butterflies j = 0..half-1 between [base+j] and [base+half+j].
    Function& f = prog.add_function("fft_group");
    const Label loop = f.new_label(), done = f.new_label();
    f.la(t0, "re");
    f.la(t1, "im");
    f.la(t2, "twiddle");
    f.li(t3, 0);  // j
    f.bind(loop);
    f.bgeu(t3, a1, done);
    // indices
    f.add(t4, a0, t3);       // p = base + j
    f.add(t5, t4, a1);       // q = p + half
    f.slli(t4, t4, 2);
    f.slli(t5, t5, 2);
    // twiddle k = j * stride (complex pair at twiddle + 8k)
    f.mul(t6, t3, a2);
    f.slli(t6, t6, 3);
    f.add(t6, t2, t6);
    f.lw(a3, 0, t6);  // w_re
    f.lw(a4, 4, t6);  // w_im
    // load b = x[q]
    f.add(a5, t0, t5);
    f.lw(a6, 0, a5);  // b_re
    f.add(a5, t1, t5);
    f.lw(a7, 0, a5);  // b_im
    // t = w * b (Q15)
    f.mul(a5, a3, a6);
    f.mul(t6, a4, a7);
    f.sub(a5, a5, t6);
    f.srai(a5, a5, 15);  // t_re
    f.mul(t6, a3, a7);
    f.mul(a3, a4, a6);   // (w_re reused as scratch after use)
    f.add(t6, t6, a3);
    f.srai(t6, t6, 15);  // t_im
    // a = x[p]; x[p] = a + t; x[q] = a - t
    f.add(a3, t0, t4);
    f.lw(a4, 0, a3);
    f.addw(a6, a4, a5);
    f.sw(a6, 0, a3);
    f.add(a3, t0, t5);
    f.subw(a6, a4, a5);
    f.sw(a6, 0, a3);
    f.add(a3, t1, t4);
    f.lw(a4, 0, a3);
    f.addw(a6, a4, t6);
    f.sw(a6, 0, a3);
    f.add(a3, t1, t5);
    f.subw(a6, a4, t6);
    f.sw(a6, 0, a3);
    f.addi(t3, t3, 1);
    f.j(loop);
    f.bind(done);
    f.ret();
  }
  {
    Function& f = prog.add_function("run");
    Frame frame(f, {s0, s1, s2, s3, s4, s5});
    f.li(s3, 0);  // round
    f.li(s5, 0);  // total checksum
    const Label round_loop = f.new_label(), round_done = f.new_label();
    f.bind(round_loop);
    f.li(t0, static_cast<i64>(scale));
    f.bgeu(s3, t0, round_done);
    // Inputs from the shared xorshift stream (per-round seed).
    f.la(t0, "re");
    f.la(t1, "im");
    f.li(s1, static_cast<i64>(kRoundSeedStride));
    f.mul(s1, s1, s3);
    f.li(t2, static_cast<i64>(kWorkloadSeed));
    f.add(s1, s1, t2);
    f.li(t2, 0);
    const Label gen = f.new_label(), gen_done = f.new_label();
    f.bind(gen);
    f.li(t3, static_cast<i64>(n));
    f.bgeu(t2, t3, gen_done);
    f.slli(t4, s1, 13);
    f.xor_(s1, s1, t4);
    f.srli(t4, s1, 7);
    f.xor_(s1, s1, t4);
    f.slli(t4, s1, 17);
    f.xor_(s1, s1, t4);
    f.li(t4, static_cast<i64>(0x2545F4914F6CDD1DULL));
    f.mul(t4, s1, t4);  // value
    f.li(t5, 0x3FFF);
    f.li(a4, -0x2000);  // -8192 exceeds a 12-bit addi immediate
    f.and_(t6, t4, t5);
    f.add(t6, t6, a4);
    f.slli(a2, t2, 2);
    f.add(a3, t0, a2);
    f.sw(t6, 0, a3);
    f.srli(t6, t4, 16);
    f.and_(t6, t6, t5);
    f.add(t6, t6, a4);
    f.add(a3, t1, a2);
    f.sw(t6, 0, a3);
    f.addi(t2, t2, 1);
    f.j(gen);
    f.bind(gen_done);
    f.call("bit_reverse");
    // Stages: len = 2, 4, ..., n; per stage, groups at base = 0, len, ...
    f.li(s0, 2);  // len
    const Label stage = f.new_label(), stage_done = f.new_label();
    const Label group = f.new_label(), group_done = f.new_label();
    f.bind(stage);
    f.li(t0, static_cast<i64>(n));
    f.bltu(t0, s0, stage_done);
    f.li(s2, 0);  // base
    f.bind(group);
    f.li(t0, static_cast<i64>(n));
    f.bgeu(s2, t0, group_done);
    f.mv(a0, s2);
    f.srli(a1, s0, 1);           // half
    f.li(a2, static_cast<i64>(n));
    f.divu(a2, a2, s0);          // twiddle stride = n / len
    f.call("fft_group");
    f.add(s2, s2, s0);
    f.j(group);
    f.bind(group_done);
    f.slli(s0, s0, 1);
    f.j(stage);
    f.bind(stage_done);
    // checksum = sum over k of (u32)re[k] + 3 * (u32)im[k]
    f.la(t0, "re");
    f.la(t1, "im");
    f.li(t2, 0);
    const Label sum = f.new_label(), sum_done = f.new_label();
    f.bind(sum);
    f.li(t3, static_cast<i64>(n));
    f.bgeu(t2, t3, sum_done);
    f.slli(t4, t2, 2);
    f.add(t5, t0, t4);
    f.lwu(t5, 0, t5);
    f.add(s5, s5, t5);
    f.add(t5, t1, t4);
    f.lwu(t5, 0, t5);
    f.slli(t6, t5, 1);
    f.add(t5, t5, t6);
    f.add(s5, s5, t5);
    f.addi(t2, t2, 1);
    f.j(sum);
    f.bind(sum_done);
    f.addi(s3, s3, 1);
    f.j(round_loop);
    f.bind(round_done);
    f.mv(a0, s5);
    frame.leave();
    f.ret();
  }
  return prog;
}

u64 golden_fft(u64 scale) {
  const u64 n = fft_size(scale);
  const auto tw = host_twiddles(n);
  u64 total = 0;
  for (u64 round = 0; round < scale; ++round) {
  std::vector<i32> re, im;
  host_inputs(n, kWorkloadSeed + round * kRoundSeedStride, &re, &im);
  // Bit reverse.
  unsigned log2n = 0;
  while ((u64{1} << log2n) < n) ++log2n;
  for (u64 i = 0; i < n; ++i) {
    u64 j = 0, x = i;
    for (unsigned b = 0; b < log2n; ++b) {
      j = (j << 1) | (x & 1);
      x >>= 1;
    }
    if (i < j) {
      std::swap(re[i], re[j]);
      std::swap(im[i], im[j]);
    }
  }
  // Stages — identical arithmetic to the guest (64-bit products, >> 15,
  // 32-bit wrapping adds).
  for (u64 len = 2; len <= n; len <<= 1) {
    const u64 half = len / 2, stride = n / len;
    for (u64 base = 0; base < n; base += len) {
      for (u64 j = 0; j < half; ++j) {
        const u64 p = base + j, q = p + half;
        const i64 w_re = tw[2 * (j * stride)];
        const i64 w_im = tw[2 * (j * stride) + 1];
        const i64 t_re = (w_re * re[q] - w_im * im[q]) >> 15;
        const i64 t_im = (w_re * im[q] + w_im * re[q]) >> 15;
        const i32 a_re = re[p], a_im = im[p];
        re[p] = static_cast<i32>(a_re + t_re);
        re[q] = static_cast<i32>(a_re - t_re);
        im[p] = static_cast<i32>(a_im + t_im);
        im[q] = static_cast<i32>(a_im - t_im);
      }
    }
  }
  for (u64 k = 0; k < n; ++k) {
    total += static_cast<u32>(re[k]) + 3ULL * static_cast<u32>(im[k]);
  }
  }
  return total;
}

}  // namespace sealpk::wl
