// Benchmark-proxy workloads (paper §V-A).
//
// The paper evaluates 6 SPECint2000, 4 SPECint2006 and 7 MiBench programs
// cross-compiled to RISC-V. SPEC/MiBench sources cannot ship here, so each
// benchmark is substituted by a guest program implementing the namesake's
// algorithmic kernel with a matching profile: call granularity
// (calls/kilocycle drives shadow-stack overhead) and data footprint (pages
// touched between pushes drives the post-mprotect TLB-refill cost).
// Every workload computes a checksum, verified against a host-side golden
// model, and report()s it before exiting 0.
#pragma once

#include <vector>

#include "isa/program.h"

namespace sealpk::wl {

enum class Suite : u8 { kSpec2000, kSpec2006, kMiBench };

const char* suite_name(Suite suite);

struct Workload {
  const char* name;  // the benchmark it proxies, e.g. "bzip2"
  Suite suite;
  // Builds the guest program at the given problem scale (>= 1). The
  // program includes a crt0 and is ready for instrumentation + link.
  isa::Program (*build)(u64 scale);
  // Host-side golden model producing the exact checksum the guest reports.
  u64 (*golden)(u64 scale);
  u64 test_scale;   // small: used by unit tests
  u64 bench_scale;  // larger: used by the Figure-5 harness
};

// All 17 workloads in the paper's Figure-5 order.
const std::vector<Workload>& all_workloads();

// Lookup by (suite-qualified) name; nullptr if unknown. Names are unique
// except bzip2, which appears in both SPEC suites.
const Workload* find_workload(Suite suite, const char* name);

// --- individual builders/goldens (one pair per benchmark) -------------------
isa::Program build_sha(u64 scale);
u64 golden_sha(u64 scale);
isa::Program build_qsort(u64 scale);
u64 golden_qsort(u64 scale);
isa::Program build_dijkstra(u64 scale);
u64 golden_dijkstra(u64 scale);
isa::Program build_fft(u64 scale);
u64 golden_fft(u64 scale);
isa::Program build_patricia(u64 scale);
u64 golden_patricia(u64 scale);
isa::Program build_bitcount(u64 scale);
u64 golden_bitcount(u64 scale);
isa::Program build_stringsearch(u64 scale);
u64 golden_stringsearch(u64 scale);

isa::Program build_bzip2_2000(u64 scale);
u64 golden_bzip2_2000(u64 scale);
isa::Program build_vpr(u64 scale);
u64 golden_vpr(u64 scale);
isa::Program build_gzip(u64 scale);
u64 golden_gzip(u64 scale);
isa::Program build_parser(u64 scale);
u64 golden_parser(u64 scale);
isa::Program build_gap(u64 scale);
u64 golden_gap(u64 scale);
isa::Program build_mcf(u64 scale);
u64 golden_mcf(u64 scale);

isa::Program build_libquantum(u64 scale);
u64 golden_libquantum(u64 scale);
isa::Program build_bzip2_2006(u64 scale);
u64 golden_bzip2_2006(u64 scale);
isa::Program build_sjeng(u64 scale);
u64 golden_sjeng(u64 scale);
isa::Program build_h264ref(u64 scale);
u64 golden_h264ref(u64 scale);

}  // namespace sealpk::wl
