// Benchmark-proxy workloads (paper §V-A).
//
// The paper evaluates 6 SPECint2000, 4 SPECint2006 and 7 MiBench programs
// cross-compiled to RISC-V. SPEC/MiBench sources cannot ship here, so each
// benchmark is substituted by a guest program implementing the namesake's
// algorithmic kernel with a matching profile: call granularity
// (calls/kilocycle drives shadow-stack overhead) and data footprint (pages
// touched between pushes drives the post-mprotect TLB-refill cost).
// Every workload computes a checksum, verified against a host-side golden
// model, and report()s it before exiting 0.
#pragma once

#include <vector>

#include "isa/program.h"

namespace sealpk::wl {

// Seed shared by every workload's pseudorandom input (the golden models
// replay the same stream host-side).
constexpr u64 kWorkloadSeed = 0x5EED0F5EA1ULL;

enum class Suite : u8 { kSpec2000, kSpec2006, kMiBench, kScenario };

const char* suite_name(Suite suite);

struct Workload {
  const char* name;  // the benchmark it proxies, e.g. "bzip2"
  Suite suite;
  // Builds the guest program at the given problem scale (>= 1). The
  // program includes a crt0 and is ready for instrumentation + link.
  isa::Program (*build)(u64 scale);
  // Host-side golden model producing the exact checksum the guest reports.
  u64 (*golden)(u64 scale);
  u64 test_scale;   // small: used by unit tests
  u64 bench_scale;  // larger: used by the Figure-5 harness
};

// All 17 workloads in the paper's Figure-5 order. FROZEN at 17: the Fig-5
// harness, its goldens and the fleet reports all iterate this list, so
// system-level scenarios live in scenario_workloads() instead.
const std::vector<Workload>& all_workloads();

// System-level scenario workloads (Suite::kScenario) — whole-system drivers
// like the session server, not Figure-5 benchmark proxies.
const std::vector<Workload>& scenario_workloads();

// Lookup by (suite-qualified) name across both lists; nullptr if unknown.
// Names are unique except bzip2, which appears in both SPEC suites.
const Workload* find_workload(Suite suite, const char* name);

// --- individual builders/goldens (one pair per benchmark) -------------------
isa::Program build_sha(u64 scale);
u64 golden_sha(u64 scale);
isa::Program build_qsort(u64 scale);
u64 golden_qsort(u64 scale);
isa::Program build_dijkstra(u64 scale);
u64 golden_dijkstra(u64 scale);
isa::Program build_fft(u64 scale);
u64 golden_fft(u64 scale);
isa::Program build_patricia(u64 scale);
u64 golden_patricia(u64 scale);
isa::Program build_bitcount(u64 scale);
u64 golden_bitcount(u64 scale);
isa::Program build_stringsearch(u64 scale);
u64 golden_stringsearch(u64 scale);

isa::Program build_bzip2_2000(u64 scale);
u64 golden_bzip2_2000(u64 scale);
isa::Program build_vpr(u64 scale);
u64 golden_vpr(u64 scale);
isa::Program build_gzip(u64 scale);
u64 golden_gzip(u64 scale);
isa::Program build_parser(u64 scale);
u64 golden_parser(u64 scale);
isa::Program build_gap(u64 scale);
u64 golden_gap(u64 scale);
isa::Program build_mcf(u64 scale);
u64 golden_mcf(u64 scale);

isa::Program build_libquantum(u64 scale);
u64 golden_libquantum(u64 scale);
isa::Program build_bzip2_2006(u64 scale);
u64 golden_bzip2_2006(u64 scale);
isa::Program build_sjeng(u64 scale);
u64 golden_sjeng(u64 scale);
isa::Program build_h264ref(u64 scale);
u64 golden_h264ref(u64 scale);

// --- scenario: session server (DESIGN.md §15) -------------------------------
// One protection domain per user session: connect allocates a key and gives
// the session a private page, touch opens/reads/writes/closes it, and ~10%
// of churn operations reconnect (free + fresh key). In virtualized mode the
// domains are vpkeys (unbounded, multiplexed over the physical space); raw
// mode uses the physical pkey ABI directly and is only valid while sessions
// fit under the 1023 usable keys. The guest checksum is key-id independent
// by construction, so raw and virtualized runs of the same shape — and any
// eviction policy — must report the identical value.
struct SessionShape {
  u64 sessions = 192;  // live sessions after the ramp (one page each)
  u64 ops = 384;       // churn operations after the ramp
  u64 seed = kWorkloadSeed;
  bool raw = false;    // physical pkeys instead of vpkeys
};

isa::Program build_session_prog(const SessionShape& shape);
u64 golden_session_sum(const SessionShape& shape);

// Host replay of the churn schedule: how many connects (ramp + reconnect),
// reconnects and touches a shape performs — the analytic op counts the
// key-churn benchmark's throughput metric is derived from.
struct SessionSchedule {
  u64 connects = 0;    // sessions + reconnects
  u64 reconnects = 0;
  u64 touches = 0;
};
SessionSchedule session_schedule(const SessionShape& shape);

// Registry entry points (scenario_workloads): scale s = 192*s sessions and
// 384*s churn ops, so bench_scale pushes past the physical key space.
isa::Program build_session_server(u64 scale);
u64 golden_session_server(u64 scale);

}  // namespace sealpk::wl
