// SPEC CPU2000 "parser" proxy: recursive-descent parsing + evaluation of a
// deterministic synthetic expression grammar:
//   expr   := term  (('+' | '-') term)*
//   term   := factor ('*' factor)*
//   factor := digit | '(' expr ')'
// The input sentence is generated host-side (like a SPEC ref input file)
// and embedded as rodata. parse_expr/parse_term/parse_factor are mutually
// recursive — the original's link-grammar parser is similarly dominated by
// deep recursive calls over a token stream.
#include <string>

#include "workloads/build_util.h"
#include "workloads/workload.h"

using namespace sealpk::isa;

namespace sealpk::wl {

namespace {
constexpr u64 kSeed = kWorkloadSeed ^ 0x9A55E5;

void gen_expr(GuestRand& rng, unsigned depth, std::string* out) {
  const unsigned terms = 1 + rng.next() % 3;
  for (unsigned t = 0; t < terms; ++t) {
    if (t != 0) out->push_back((rng.next() & 1) != 0 ? '+' : '-');
    const unsigned factors = 1 + rng.next() % 2;
    for (unsigned k = 0; k < factors; ++k) {
      if (k != 0) out->push_back('*');
      if (depth > 0 && (rng.next() & 3) == 0) {
        out->push_back('(');
        gen_expr(rng, depth - 1, out);
        out->push_back(')');
      } else {
        out->push_back(static_cast<char>('0' + rng.next() % 10));
      }
    }
  }
}

std::string host_sentence(u64 scale) {
  GuestRand rng(kSeed);
  std::string text;
  const u64 sentences = 24 * scale;
  for (u64 s = 0; s < sentences; ++s) {
    if (s != 0) text.push_back(';');
    gen_expr(rng, 6, &text);
  }
  text.push_back('\0');
  return text;
}

// Host evaluator with the same wrapping u64 semantics as the guest.
struct HostParser {
  const char* p;
  u64 tokens = 0;

  u64 factor() {
    ++tokens;
    if (*p == '(') {
      ++p;
      const u64 v = expr();
      ++p;  // ')'
      ++tokens;
      return v;
    }
    const u64 v = static_cast<u64>(*p - '0');
    ++p;
    return v;
  }
  u64 term() {
    u64 v = factor();
    while (*p == '*') {
      ++p;
      ++tokens;
      v *= factor();
    }
    return v;
  }
  u64 expr() {
    u64 v = term();
    while (*p == '+' || *p == '-') {
      const char op = *p;
      ++p;
      ++tokens;
      const u64 rhs = term();
      v = op == '+' ? v + rhs : v - rhs;
    }
    return v;
  }
};
}  // namespace

isa::Program build_parser(u64 scale) {
  const std::string text = host_sentence(scale);
  Program prog = make_workload_program();
  add_rss_ballast(prog, 384);
  prog.add_rodata("sentence",
                  std::vector<u8>(text.begin(), text.end()));
  prog.add_zero("cursor", 8);  // current position pointer
  prog.add_zero("token_count", 8);

  // Small helpers shared by the parse functions.
  auto emit_peek = [&](Function& f, u8 dest) {  // dest = *cursor byte
    f.la(t6, "cursor");
    f.ld(t6, 0, t6);
    f.lbu(dest, 0, t6);
  };
  auto emit_advance = [&](Function& f) {  // ++cursor, ++token_count
    f.la(t6, "cursor");
    f.ld(t5, 0, t6);
    f.addi(t5, t5, 1);
    f.sd(t5, 0, t6);
    f.la(t6, "token_count");
    f.ld(t5, 0, t6);
    f.addi(t5, t5, 1);
    f.sd(t5, 0, t6);
  };

  {
    // parse_factor() -> a0
    Function& f = prog.add_function("parse_factor");
    Frame frame(f, {s0});
    const Label paren = f.new_label();
    emit_peek(f, s0);
    f.li(t0, '(');
    f.beq(s0, t0, paren);
    // digit
    emit_advance(f);
    f.addi(a0, s0, -'0');
    frame.leave();
    f.ret();
    f.bind(paren);
    emit_advance(f);  // consume '('
    f.call("parse_expr");
    f.mv(s0, a0);
    emit_advance(f);  // consume ')'
    f.mv(a0, s0);
    frame.leave();
    f.ret();
  }
  {
    // parse_term() -> a0
    Function& f = prog.add_function("parse_term");
    Frame frame(f, {s0});
    f.call("parse_factor");
    f.mv(s0, a0);
    const Label loop = f.new_label(), done = f.new_label();
    f.bind(loop);
    emit_peek(f, t0);
    f.li(t1, '*');
    f.bne(t0, t1, done);
    emit_advance(f);
    f.call("parse_factor");
    f.mul(s0, s0, a0);
    f.j(loop);
    f.bind(done);
    f.mv(a0, s0);
    frame.leave();
    f.ret();
  }
  {
    // parse_expr() -> a0
    Function& f = prog.add_function("parse_expr");
    Frame frame(f, {s0, s1});
    f.call("parse_term");
    f.mv(s0, a0);
    const Label loop = f.new_label(), done = f.new_label(),
                minus = f.new_label();
    f.bind(loop);
    emit_peek(f, s1);
    f.li(t1, '+');
    f.li(t2, '-');
    const Label is_op = f.new_label();
    f.beq(s1, t1, is_op);
    f.beq(s1, t2, is_op);
    f.j(done);
    f.bind(is_op);
    emit_advance(f);
    f.call("parse_term");
    f.li(t1, '-');
    f.beq(s1, t1, minus);
    f.add(s0, s0, a0);
    f.j(loop);
    f.bind(minus);
    f.sub(s0, s0, a0);
    f.j(loop);
    f.bind(done);
    f.mv(a0, s0);
    frame.leave();
    f.ret();
  }
  {
    Function& f = prog.add_function("run");
    Frame frame(f, {s0, s1});
    f.la(t0, "sentence");
    f.la(t1, "cursor");
    f.sd(t0, 0, t1);
    f.li(s0, 0);  // value accumulator
    const Label loop = f.new_label(), done = f.new_label(),
                more = f.new_label();
    f.bind(loop);
    f.call("parse_expr");
    f.add(s0, s0, a0);
    emit_peek(f, t0);
    f.li(t1, ';');
    f.beq(t0, t1, more);
    f.j(done);
    f.bind(more);
    emit_advance(f);
    f.j(loop);
    f.bind(done);
    // checksum = total value + 31 * token count
    f.la(t0, "token_count");
    f.ld(t0, 0, t0);
    f.li(t1, 31);
    f.mul(t0, t0, t1);
    f.add(a0, s0, t0);
    frame.leave();
    f.ret();
  }
  return prog;
}

u64 golden_parser(u64 scale) {
  const std::string text = host_sentence(scale);
  HostParser parser{text.c_str()};
  u64 total = 0;
  for (;;) {
    total += parser.expr();
    if (*parser.p != ';') break;
    ++parser.p;
    ++parser.tokens;
  }
  return total + 31 * parser.tokens;
}

}  // namespace sealpk::wl
