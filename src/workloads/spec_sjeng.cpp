// SPEC CPU2006 "sjeng" proxy: fixed-depth alpha-beta negamax over a
// deterministic synthetic game tree (4 moves per node, positions mixed by
// multiplicative hashing) with a leaf evaluator — chess-search profile:
// recursion-dominated, extremely high call rate, cutoff-driven control
// flow like the real engine.
#include "workloads/build_util.h"
#include "workloads/workload.h"

using namespace sealpk::isa;

namespace sealpk::wl {

namespace {
unsigned search_depth(u64 scale) {
  unsigned d = 9;  // alpha-beta prunes hard; deeper trees keep the work up
  while (scale > 1) {
    ++d;
    scale /= 2;
  }
  return d;
}
constexpr u64 kRootState = 0x5EED0F5EA1C0FFEEULL;
constexpr u64 kMixMul = 0x9E3779B97F4A7C15ULL;
constexpr u64 kEvalMul = 0x2545F4914F6CDD1DULL;

u64 host_child(u64 state, u64 move) {
  u64 x = state + (move + 1) * kMixMul;
  x ^= (x << 25) | (x >> 39);  // rotl(x, 25)
  return x * kEvalMul;
}

i64 host_eval(u64 state) {
  return static_cast<i64>(sext((state * kEvalMul) >> 48, 16));
}

i64 host_negamax(u64 state, unsigned depth, i64 alpha, i64 beta,
                 u64* nodes) {
  ++*nodes;
  if (depth == 0) return host_eval(state);
  i64 best = INT64_MIN + 1;
  for (u64 m = 0; m < 4; ++m) {
    const i64 v = -host_negamax(host_child(state, m), depth - 1, -beta,
                                -alpha, nodes);
    if (v > best) best = v;
    if (best > alpha) alpha = best;
    if (alpha >= beta) break;  // cutoff
  }
  return best;
}
}  // namespace

isa::Program build_sjeng(u64 scale) {
  const unsigned depth = search_depth(scale);
  Program prog = make_workload_program();
  add_rss_ballast(prog, 384);
  prog.add_zero("nodes", 8);

  {
    // eval(a0 = state) -> score (16-bit signed, in a 64-bit reg).
    Function& f = prog.add_function("eval");
    f.li(t0, static_cast<i64>(kEvalMul));
    f.mul(a0, a0, t0);
    f.srai(a0, a0, 48);
    f.ret();
  }
  {
    // negamax(a0 = state, a1 = depth, a2 = alpha, a3 = beta) -> best score.
    Function& f = prog.add_function("negamax");
    Frame frame(f, {s0, s1, s2, s3, s4, s5});
    // nodes++
    f.la(t0, "nodes");
    f.ld(t1, 0, t0);
    f.addi(t1, t1, 1);
    f.sd(t1, 0, t0);
    const Label leaf = f.new_label(), loop = f.new_label(),
                done = f.new_label(), keep = f.new_label();
    f.beqz(a1, leaf);
    f.mv(s0, a0);  // state
    f.mv(s1, a1);  // depth
    f.mv(s4, a2);  // alpha
    f.mv(s5, a3);  // beta
    f.li(s2, 0);   // move
    f.li(s3, static_cast<i64>(INT64_MIN + 1));  // best
    f.bind(loop);
    f.li(t0, 4);
    f.bgeu(s2, t0, done);
    // child = ((state + (m+1)*kMixMul) rotl'd) * kEvalMul
    f.li(t0, static_cast<i64>(kMixMul));
    f.addi(t1, s2, 1);
    f.mul(t0, t0, t1);
    f.add(t0, s0, t0);   // x
    f.slli(t1, t0, 25);
    f.srli(t2, t0, 39);
    f.or_(t1, t1, t2);   // rotl(x, 25)
    f.xor_(t0, t0, t1);
    f.li(t1, static_cast<i64>(kEvalMul));
    f.mul(a0, t0, t1);
    f.addi(a1, s1, -1);
    f.neg(a2, s5);       // -beta
    f.neg(a3, s4);       // -alpha
    f.call("negamax");
    f.neg(a0, a0);
    f.bge(s3, a0, keep);
    f.mv(s3, a0);        // best = v
    f.bind(keep);
    const Label no_raise = f.new_label();
    f.bge(s4, s3, no_raise);  // alpha = max(alpha, best)
    f.mv(s4, s3);
    f.bind(no_raise);
    f.bge(s4, s5, done);      // alpha >= beta: cutoff
    f.addi(s2, s2, 1);
    f.j(loop);
    f.bind(done);
    f.mv(a0, s3);
    frame.leave();
    f.ret();
    f.bind(leaf);
    frame.leave();
    // tail: eval(state) — manual jump keeps the frame balanced
    f.li(t0, static_cast<i64>(kEvalMul));
    f.mul(a0, a0, t0);
    f.srai(a0, a0, 48);
    f.ret();
  }
  {
    Function& f = prog.add_function("run");
    Frame frame(f, {s0});
    f.li(a0, static_cast<i64>(kRootState));
    f.li(a1, depth);
    f.li(a2, static_cast<i64>(INT64_MIN + 2));  // alpha
    f.li(a3, static_cast<i64>(INT64_MAX - 1));  // beta
    f.call("negamax");
    f.mv(s0, a0);
    // checksum = (u64)best + node count
    f.la(t0, "nodes");
    f.ld(t0, 0, t0);
    f.add(a0, s0, t0);
    frame.leave();
    f.ret();
  }
  return prog;
}

u64 golden_sjeng(u64 scale) {
  u64 nodes = 0;
  const i64 best =
      host_negamax(kRootState, search_depth(scale), INT64_MIN + 2,
                   INT64_MAX - 1, &nodes);
  return static_cast<u64>(best) + nodes;
}

}  // namespace sealpk::wl
