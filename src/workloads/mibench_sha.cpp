// MiBench "sha" proxy: a real SHA-1 compression function applied to a
// pseudorandom message, one sha1_block() call per 64-byte block — the
// original's sha_transform profile (few calls, fat bodies). Simplification
// vs. the standard: words are read little-endian and no length padding is
// appended (neither affects the performance profile); the golden model
// mirrors this exactly.
#include "workloads/build_util.h"
#include "workloads/workload.h"

using namespace sealpk::isa;

namespace sealpk::wl {

namespace {
u64 block_count(u64 scale) { return 96 * scale; }

constexpr u32 kInit[5] = {0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476,
                          0xC3D2E1F0};

u32 rotl32(u32 x, unsigned s) { return (x << s) | (x >> (32 - s)); }

void host_sha1_block(u32 state[5], const u32 w_in[16]) {
  u32 w[16];
  for (int i = 0; i < 16; ++i) w[i] = w_in[i];
  u32 a = state[0], b = state[1], c = state[2], d = state[3], e = state[4];
  for (unsigned t = 0; t < 80; ++t) {
    u32 wt;
    if (t < 16) {
      wt = w[t];
    } else {
      wt = rotl32(w[(t - 3) & 15] ^ w[(t - 8) & 15] ^ w[(t - 14) & 15] ^
                      w[t & 15],
                  1);
      w[t & 15] = wt;
    }
    u32 f, k;
    if (t < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDC;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6;
    }
    const u32 tmp = rotl32(a, 5) + f + e + k + wt;
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = tmp;
  }
  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
}
}  // namespace

isa::Program build_sha(u64 scale) {
  const u64 blocks = block_count(scale);
  Program prog = make_workload_program();
  add_fill_rand(prog);
  prog.add_zero("message", blocks * 64);
  prog.add_zero("sha_state", 5 * 4 + 4);

  {
    // sha1_block(a0 = state ptr, a1 = block ptr). Leaf; W ring on the stack.
    Function& f = prog.add_function("sha1_block");
    f.addi(sp, sp, -64);
    f.lw(t0, 0, a0);   // a
    f.lw(t1, 4, a0);   // b
    f.lw(t2, 8, a0);   // c
    f.lw(t3, 12, a0);  // d
    f.lw(t4, 16, a0);  // e
    f.li(t5, 0);       // t (round index)
    const Label round = f.new_label(), rounds_done = f.new_label();
    const Label have_w = f.new_label(), sched = f.new_label();
    const Label f2 = f.new_label(), f3 = f.new_label(), f4 = f.new_label();
    const Label mixed = f.new_label();
    f.bind(round);
    f.li(a2, 80);
    f.bgeu(t5, a2, rounds_done);
    // --- W ---
    f.li(a2, 16);
    f.bgeu(t5, a2, sched);
    // t < 16: load from the block, stash in the ring.
    f.slli(a2, t5, 2);
    f.add(a3, a1, a2);
    f.lw(t6, 0, a3);
    f.add(a3, sp, a2);
    f.sw(t6, 0, a3);
    f.j(have_w);
    f.bind(sched);
    // w = rotl1(w[t-3] ^ w[t-8] ^ w[t-14] ^ w[t-16]) into the ring slot.
    auto ring_load = [&](u8 dest, int back) {
      f.addi(a2, t5, -back);
      f.andi(a2, a2, 15);
      f.slli(a2, a2, 2);
      f.add(a2, sp, a2);
      f.lw(dest, 0, a2);
    };
    ring_load(t6, 3);
    ring_load(a4, 8);
    f.xor_(t6, t6, a4);
    ring_load(a4, 14);
    f.xor_(t6, t6, a4);
    ring_load(a4, 16);
    f.xor_(t6, t6, a4);
    f.slliw(a4, t6, 1);
    f.srliw(t6, t6, 31);
    f.or_(t6, a4, t6);  // rotl1
    f.andi(a2, t5, 15);
    f.slli(a2, a2, 2);
    f.add(a2, sp, a2);
    f.sw(t6, 0, a2);
    f.bind(have_w);
    // --- f, k by round range ---
    f.li(a2, 20);
    f.bgeu(t5, a2, f2);
    f.and_(a3, t1, t2);
    f.not_(a4, t1);
    f.and_(a4, a4, t3);
    f.or_(a3, a3, a4);                       // (b&c) | (~b&d)
    f.li(a4, 0x5A827999);
    f.j(mixed);
    f.bind(f2);
    f.li(a2, 40);
    f.bgeu(t5, a2, f3);
    f.xor_(a3, t1, t2);
    f.xor_(a3, a3, t3);                      // b^c^d
    f.li(a4, 0x6ED9EBA1);
    f.j(mixed);
    f.bind(f3);
    f.li(a2, 60);
    f.bgeu(t5, a2, f4);
    f.and_(a3, t1, t2);
    f.and_(a5, t1, t3);
    f.or_(a3, a3, a5);
    f.and_(a5, t2, t3);
    f.or_(a3, a3, a5);                       // majority
    f.li(a4, static_cast<i64>(0x8F1BBCDC));
    f.j(mixed);
    f.bind(f4);
    f.xor_(a3, t1, t2);
    f.xor_(a3, a3, t3);
    f.li(a4, static_cast<i64>(0xCA62C1D6));
    f.bind(mixed);
    // tmp = rotl5(a) + f + e + k + w
    f.slliw(a5, t0, 5);
    f.srliw(a6, t0, 27);
    f.or_(a5, a5, a6);
    f.addw(a5, a5, a3);
    f.addw(a5, a5, t4);
    f.addw(a5, a5, a4);
    f.addw(a5, a5, t6);
    // rotate the working registers
    f.mv(t4, t3);        // e = d
    f.mv(t3, t2);        // d = c
    f.slliw(a6, t1, 30);
    f.srliw(a7, t1, 2);
    f.or_(t2, a6, a7);   // c = rotl30(b)
    f.mv(t1, t0);        // b = a
    f.mv(t0, a5);        // a = tmp
    f.addi(t5, t5, 1);
    f.j(round);
    f.bind(rounds_done);
    // state += working vars
    auto fold = [&](u8 reg, i64 off) {
      f.lw(a2, off, a0);
      f.addw(a2, a2, reg);
      f.sw(a2, off, a0);
    };
    fold(t0, 0);
    fold(t1, 4);
    fold(t2, 8);
    fold(t3, 12);
    fold(t4, 16);
    f.addi(sp, sp, 64);
    f.ret();
  }
  {
    Function& f = prog.add_function("run");
    Frame frame(f, {s0, s1, s2});
    f.la(a0, "message");
    f.li(a1, static_cast<i64>(blocks * 8));
    f.li(a2, static_cast<i64>(kWorkloadSeed));
    f.call("__fill_rand");
    // init state
    f.la(t0, "sha_state");
    for (int i = 0; i < 5; ++i) {
      f.li(t1, static_cast<i64>(static_cast<i32>(kInit[i])));
      f.sw(t1, i * 4, t0);
    }
    f.li(s0, 0);  // block index
    f.la(s1, "message");
    const Label loop = f.new_label(), done = f.new_label();
    f.bind(loop);
    f.li(t0, static_cast<i64>(blocks));
    f.bgeu(s0, t0, done);
    f.la(a0, "sha_state");
    f.mv(a1, s1);
    f.call("sha1_block");
    f.addi(s1, s1, 64);
    f.addi(s0, s0, 1);
    f.j(loop);
    f.bind(done);
    // checksum = sum of the five state words (zero-extended)
    f.la(t0, "sha_state");
    f.li(a0, 0);
    for (int i = 0; i < 5; ++i) {
      f.lwu(t1, i * 4, t0);
      f.add(a0, a0, t1);
    }
    frame.leave();
    f.ret();
  }
  return prog;
}

u64 golden_sha(u64 scale) {
  const u64 blocks = block_count(scale);
  std::vector<u64> words;
  host_fill_rand(words, blocks * 8, kWorkloadSeed);
  u32 state[5];
  for (int i = 0; i < 5; ++i) state[i] = kInit[i];
  for (u64 b = 0; b < blocks; ++b) {
    u32 w[16];
    for (int i = 0; i < 16; ++i) {
      const u64 word = words[b * 8 + i / 2];
      w[i] = static_cast<u32>(i % 2 == 0 ? word : word >> 32);
    }
    host_sha1_block(state, w);
  }
  u64 checksum = 0;
  for (int i = 0; i < 5; ++i) checksum += state[i];
  return checksum;
}

}  // namespace sealpk::wl
