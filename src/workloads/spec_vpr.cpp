// SPEC CPU2000 "vpr" proxy: simulated-annealing placement on a grid.
// Cells hold (x, y) positions; nets connect two cells; each iteration
// tentatively swaps two random cells and keeps the swap if the wirelength
// of their nets improves — or, with a temperature-scheduled probability,
// even when it worsens (annealing's hill-climbing escape). net_cost() is a
// helper called several times per iteration: vpr's bounding-box
// cost-function profile.
#include <cstdlib>

#include "workloads/build_util.h"
#include "workloads/workload.h"

using namespace sealpk::isa;

namespace sealpk::wl {

namespace {
constexpr u64 kGrid = 20;
constexpr u64 kCells = kGrid * kGrid;
constexpr u64 kNets = kCells;         // two endpoints each
constexpr u64 kNetsPerCell = 4;       // tracked nets per cell (rest untracked)
u64 iterations(u64 scale) { return 900 * scale; }

struct HostState {
  std::vector<u64> pos;                    // cell -> packed (x<<16)|y
  std::vector<u64> net_a, net_b;           // net endpoints
  std::vector<std::vector<u64>> cell_nets; // tracked nets per cell
};

u64 host_net_cost(const HostState& st, u64 n) {
  const u64 pa = st.pos[st.net_a[n]], pb = st.pos[st.net_b[n]];
  const i64 ax = static_cast<i64>(pa >> 16), ay = static_cast<i64>(pa & 0xFFFF);
  const i64 bx = static_cast<i64>(pb >> 16), by = static_cast<i64>(pb & 0xFFFF);
  return static_cast<u64>(std::llabs(ax - bx) + std::llabs(ay - by));
}

HostState host_init(GuestRand& rng) {
  HostState st;
  st.pos.resize(kCells);
  for (u64 c = 0; c < kCells; ++c) {
    st.pos[c] = ((c % kGrid) << 16) | (c / kGrid);
  }
  st.net_a.resize(kNets);
  st.net_b.resize(kNets);
  st.cell_nets.assign(kCells, {});
  for (u64 n = 0; n < kNets; ++n) {
    st.net_a[n] = rng.next() % kCells;
    st.net_b[n] = rng.next() % kCells;
    if (st.cell_nets[st.net_a[n]].size() < kNetsPerCell) {
      st.cell_nets[st.net_a[n]].push_back(n);
    }
    if (st.cell_nets[st.net_b[n]].size() < kNetsPerCell) {
      st.cell_nets[st.net_b[n]].push_back(n);
    }
  }
  return st;
}
}  // namespace

isa::Program build_vpr(u64 scale) {
  const u64 iters = iterations(scale);
  Program prog = make_workload_program();
  add_rss_ballast(prog, 384);
  // pos: u64 per cell; nets: u64 a, u64 b per net;
  // cell_nets: kNetsPerCell u64 slots per cell, 0xFFFF... = empty;
  // cell_net_count: byte per cell.
  prog.add_zero("pos", kCells * 8);
  prog.add_zero("net_a", kNets * 8);
  prog.add_zero("net_b", kNets * 8);
  prog.add_zero("cell_nets", kCells * kNetsPerCell * 8);
  prog.add_zero("cell_net_count", kCells);

  {
    // net_cost(a0 = net index) -> |dx| + |dy| of its endpoints.
    Function& f = prog.add_function("net_cost");
    f.slli(t0, a0, 3);
    f.la(t1, "net_a");
    f.add(t1, t1, t0);
    f.ld(t1, 0, t1);  // cell a
    f.la(t2, "net_b");
    f.add(t2, t2, t0);
    f.ld(t2, 0, t2);  // cell b
    f.la(t0, "pos");
    f.slli(t1, t1, 3);
    f.add(t1, t0, t1);
    f.ld(t1, 0, t1);  // pa
    f.slli(t2, t2, 3);
    f.add(t2, t0, t2);
    f.ld(t2, 0, t2);  // pb
    // |ax-bx| + |ay-by| (x in bits 16+, y in low 16)
    f.srli(t3, t1, 16);
    f.srli(t4, t2, 16);
    f.sub(t3, t3, t4);
    f.srai(t4, t3, 63);
    f.xor_(t3, t3, t4);
    f.sub(t3, t3, t4);  // |dx|
    f.li(t5, 0xFFFF);
    f.and_(t1, t1, t5);
    f.and_(t2, t2, t5);
    f.sub(t1, t1, t2);
    f.srai(t4, t1, 63);
    f.xor_(t1, t1, t4);
    f.sub(t1, t1, t4);  // |dy|
    f.add(a0, t3, t1);
    f.ret();
  }
  {
    // cell_cost(a0 = cell) -> sum of net_cost over the cell's tracked nets.
    Function& f = prog.add_function("cell_cost");
    Frame frame(f, {s0, s1, s2, s3});
    f.mv(s0, a0);
    f.la(t0, "cell_net_count");
    f.add(t0, t0, s0);
    f.lbu(s1, 0, t0);  // count
    f.li(s2, 0);       // k
    f.li(s3, 0);       // sum
    const Label loop = f.new_label(), done = f.new_label();
    f.bind(loop);
    f.bgeu(s2, s1, done);
    f.la(t0, "cell_nets");
    f.li(t1, kNetsPerCell * 8);
    f.mul(t1, s0, t1);
    f.add(t0, t0, t1);
    f.slli(t1, s2, 3);
    f.add(t0, t0, t1);
    f.ld(a0, 0, t0);
    f.call("net_cost");
    f.add(s3, s3, a0);
    f.addi(s2, s2, 1);
    f.j(loop);
    f.bind(done);
    f.mv(a0, s3);
    frame.leave();
    f.ret();
  }
  {
    Function& f = prog.add_function("run");
    Frame frame(f, {s0, s1, s2, s3, s4, s5, s6, s7});
    // --- init positions ---
    f.la(t0, "pos");
    f.li(t1, 0);
    const Label ip = f.new_label(), ip_done = f.new_label();
    f.bind(ip);
    f.li(t2, static_cast<i64>(kCells));
    f.bgeu(t1, t2, ip_done);
    f.li(t2, static_cast<i64>(kGrid));
    f.remu(t3, t1, t2);  // x = c % grid
    f.divu(t4, t1, t2);  // y = c / grid
    f.slli(t3, t3, 16);
    f.or_(t3, t3, t4);
    f.slli(t4, t1, 3);
    f.add(t4, t0, t4);
    f.sd(t3, 0, t4);
    f.addi(t1, t1, 1);
    f.j(ip);
    f.bind(ip_done);
    // --- init nets + tracked lists (xorshift state in s1) ---
    f.li(s1, static_cast<i64>(kWorkloadSeed ^ 0x7B9));
    f.li(s0, 0);  // n
    const Label in = f.new_label(), in_done = f.new_label();
    // helper to advance state -> value in t0 (emitted twice per net)
    auto advance = [&]() {
      f.slli(t0, s1, 13);
      f.xor_(s1, s1, t0);
      f.srli(t0, s1, 7);
      f.xor_(s1, s1, t0);
      f.slli(t0, s1, 17);
      f.xor_(s1, s1, t0);
      f.li(t0, static_cast<i64>(0x2545F4914F6CDD1DULL));
      f.mul(t0, s1, t0);
    };
    // track(cell in t1, net in s0): append if space
    auto track = [&]() {
      const Label full = f.new_label();
      f.la(t2, "cell_net_count");
      f.add(t2, t2, t1);
      f.lbu(t3, 0, t2);
      f.li(t4, kNetsPerCell);
      f.bgeu(t3, t4, full);
      f.la(t4, "cell_nets");
      f.li(t5, kNetsPerCell * 8);
      f.mul(t5, t1, t5);
      f.add(t4, t4, t5);
      f.slli(t5, t3, 3);
      f.add(t4, t4, t5);
      f.sd(s0, 0, t4);
      f.addi(t3, t3, 1);
      f.sb(t3, 0, t2);
      f.bind(full);
    };
    f.bind(in);
    f.li(t1, static_cast<i64>(kNets));
    f.bgeu(s0, t1, in_done);
    advance();
    f.li(t1, static_cast<i64>(kCells));
    f.remu(t1, t0, t1);  // cell a
    f.la(t2, "net_a");
    f.slli(t3, s0, 3);
    f.add(t2, t2, t3);
    f.sd(t1, 0, t2);
    track();
    advance();
    f.li(t1, static_cast<i64>(kCells));
    f.remu(t1, t0, t1);  // cell b
    f.la(t2, "net_b");
    f.slli(t3, s0, 3);
    f.add(t2, t2, t3);
    f.sd(t1, 0, t2);
    track();
    f.addi(s0, s0, 1);
    f.j(in);
    f.bind(in_done);
    // --- anneal loop ---
    f.li(s0, 0);  // iteration
    f.li(s2, 0);  // accepted count
    const Label it = f.new_label(), it_done = f.new_label(),
                revert = f.new_label(), next = f.new_label();
    auto swap_cells = [&]() {  // swap pos[s3] and pos[s4]
      f.la(t0, "pos");
      f.slli(t1, s3, 3);
      f.add(t1, t0, t1);
      f.slli(t2, s4, 3);
      f.add(t2, t0, t2);
      f.ld(t3, 0, t1);
      f.ld(t4, 0, t2);
      f.sd(t4, 0, t1);
      f.sd(t3, 0, t2);
    };
    f.bind(it);
    f.li(t0, static_cast<i64>(iters));
    f.bgeu(s0, t0, it_done);
    advance();
    f.li(t1, static_cast<i64>(kCells));
    f.remu(s3, t0, t1);  // cell 1
    advance();
    f.li(t1, static_cast<i64>(kCells));
    f.remu(s4, t0, t1);  // cell 2
    // old = cell_cost(c1) + cell_cost(c2)
    f.mv(a0, s3);
    f.call("cell_cost");
    f.mv(s5, a0);
    f.mv(a0, s4);
    f.call("cell_cost");
    f.add(s5, s5, a0);  // old cost
    swap_cells();
    f.mv(a0, s3);
    f.call("cell_cost");
    f.mv(s6, a0);
    f.mv(a0, s4);
    f.call("cell_cost");
    f.add(s6, s6, a0);  // new cost
    const Label accept = f.new_label();
    f.bgeu(s5, s6, accept);  // improvement (or equal): accept
    // Worse: accept anyway with probability ~ threshold(iteration), the
    // annealing temperature schedule. threshold = 0xFFFF >> (2 + 8*i/iters).
    advance();
    f.srli(t1, t0, 32);
    f.li(t2, 0xFFFF);
    f.and_(t1, t1, t2);      // 16-bit uniform draw
    f.li(t2, 8);
    f.mul(t2, t2, s0);
    f.li(t3, static_cast<i64>(iters));
    f.divu(t2, t2, t3);
    f.addi(t2, t2, 2);       // shift = 2 + 8*i/iters
    f.li(t3, 0xFFFF);
    f.srl(t3, t3, t2);       // threshold
    f.bltu(t1, t3, accept);  // lucky: keep the worse placement
    f.j(revert);
    f.bind(accept);
    f.addi(s2, s2, 1);
    f.j(next);
    f.bind(revert);
    swap_cells();
    f.bind(next);
    f.addi(s0, s0, 1);
    f.j(it);
    f.bind(it_done);
    // --- checksum = 7 * accepted + total cost over all nets ---
    f.li(s0, 0);
    f.li(s7, 0);
    const Label tc = f.new_label(), tc_done = f.new_label();
    f.bind(tc);
    f.li(t0, static_cast<i64>(kNets));
    f.bgeu(s0, t0, tc_done);
    f.mv(a0, s0);
    f.call("net_cost");
    f.add(s7, s7, a0);
    f.addi(s0, s0, 1);
    f.j(tc);
    f.bind(tc_done);
    f.li(t0, 7);
    f.mul(t0, s2, t0);
    f.add(a0, s7, t0);
    frame.leave();
    f.ret();
  }
  return prog;
}

u64 golden_vpr(u64 scale) {
  const u64 iters = iterations(scale);
  GuestRand rng(kWorkloadSeed ^ 0x7B9);
  HostState st = host_init(rng);
  auto cell_cost = [&st](u64 c) {
    u64 sum = 0;
    for (const u64 n : st.cell_nets[c]) sum += host_net_cost(st, n);
    return sum;
  };
  u64 accepted = 0;
  for (u64 i = 0; i < iters; ++i) {
    const u64 c1 = rng.next() % kCells;
    const u64 c2 = rng.next() % kCells;
    const u64 old_cost = cell_cost(c1) + cell_cost(c2);
    std::swap(st.pos[c1], st.pos[c2]);
    const u64 new_cost = cell_cost(c1) + cell_cost(c2);
    bool accept = new_cost <= old_cost;
    if (!accept) {
      // Annealing acceptance (mirrors the guest exactly, including the
      // extra RNG draw only on the worse-cost path).
      const u64 draw = (rng.next() >> 32) & 0xFFFF;
      const u64 shift = 2 + (8 * i) / iters;
      accept = draw < (u64{0xFFFF} >> shift);
    }
    if (accept) {
      ++accepted;
    } else {
      std::swap(st.pos[c1], st.pos[c2]);  // revert
    }
  }
  u64 total = 0;
  for (u64 n = 0; n < kNets; ++n) total += host_net_cost(st, n);
  return total + 7 * accepted;
}

}  // namespace sealpk::wl
