// SPEC CPU2006 "h264ref" proxy: full-search motion estimation — for every
// 16x16 macroblock of the current frame, each candidate offset in a +/-4
// search window is evaluated as eight sad_8x4() sub-block calls (the
// encoder subdivides macroblocks into exactly such partitions). The SAD kernel dominates:
// high call rate, straight-line bodies over two frame buffers.
#include "workloads/build_util.h"
#include "workloads/workload.h"

using namespace sealpk::isa;

namespace sealpk::wl {

namespace {
constexpr u64 kWidth = 64;
constexpr i64 kRange = 4;  // search window: [-4, +4] in both axes
u64 height(u64 scale) { return 32 * scale; }
constexpr u64 kSeed = kWorkloadSeed ^ 0x264;
}  // namespace

isa::Program build_h264ref(u64 scale) {
  const u64 h = height(scale);
  const u64 frame_bytes = kWidth * h;
  Program prog = make_workload_program();
  add_rss_ballast(prog, 384);
  add_fill_rand(prog);
  prog.add_zero("ref_frame", frame_bytes);
  prog.add_zero("cur_frame", frame_bytes);

  {
    // sad_8x8(a0 = ref ptr, a1 = cur ptr) -> sum of absolute differences
    // over an 8x8 sub-block; both frames have stride kWidth.
    Function& f = prog.add_function("sad_8x4");
    const Label rows = f.new_label(), cols = f.new_label(),
                cols_done = f.new_label(), done = f.new_label();
    f.li(t0, 0);   // row
    f.li(a2, 0);   // accumulator
    f.bind(rows);
    f.li(t1, 4);
    f.bgeu(t0, t1, done);
    f.li(t2, 0);   // col
    f.bind(cols);
    f.li(t1, 8);
    f.bgeu(t2, t1, cols_done);
    f.add(t3, a0, t2);
    f.lbu(t4, 0, t3);
    f.add(t3, a1, t2);
    f.lbu(t5, 0, t3);
    f.sub(t4, t4, t5);
    f.srai(t5, t4, 63);
    f.xor_(t4, t4, t5);
    f.sub(t4, t4, t5);  // |diff|
    f.add(a2, a2, t4);
    f.addi(t2, t2, 1);
    f.j(cols);
    f.bind(cols_done);
    f.addi(a0, a0, kWidth);
    f.addi(a1, a1, kWidth);
    f.addi(t0, t0, 1);
    f.j(rows);
    f.bind(done);
    f.mv(a0, a2);
    f.ret();
  }
  {
    Function& f = prog.add_function("run");
    Frame frame(f, {s0, s1, s2, s3, s4, s5, s6, s7});
    f.la(a0, "ref_frame");
    f.li(a1, static_cast<i64>(frame_bytes / 8));
    f.li(a2, static_cast<i64>(kSeed));
    f.call("__fill_rand");
    f.mv(s7, a0);  // continue the stream into the second frame
    f.la(a0, "cur_frame");
    f.li(a1, static_cast<i64>(frame_bytes / 8));
    f.mv(a2, s7);
    f.call("__fill_rand");
    // Macroblock sweep. s0 = mby, s1 = mbx, s2 = dy, s3 = dx,
    // s4 = best SAD, s5 = checksum.
    f.li(s5, 0);
    f.li(s0, 0);
    const Label mb_rows = f.new_label(), all_done = f.new_label();
    const Label mb_cols = f.new_label(), next_row = f.new_label();
    const Label dy_loop = f.new_label(), mb_done = f.new_label();
    const Label dx_loop = f.new_label(), dy_next = f.new_label();
    const Label dx_next = f.new_label(), dy_skip = f.new_label();
    f.bind(mb_rows);
    f.li(t0, static_cast<i64>(h / 16));
    f.bgeu(s0, t0, all_done);
    f.li(s1, 0);
    f.bind(mb_cols);
    f.li(t0, static_cast<i64>(kWidth / 16));
    f.bgeu(s1, t0, next_row);
    f.li(s4, 1 << 30);
    f.li(s2, -kRange);
    f.bind(dy_loop);
    f.li(t0, kRange);
    f.blt(t0, s2, mb_done);
    // y = mby*16 + dy in [0, h-16]?
    f.slli(t0, s0, 4);
    f.add(t0, t0, s2);
    f.blt(t0, zero, dy_skip);
    f.li(t1, static_cast<i64>(h - 16));
    f.blt(t1, t0, dy_skip);
    f.li(s3, -kRange);
    f.bind(dx_loop);
    f.li(t0, kRange);
    f.blt(t0, s3, dy_next);
    // x = mbx*16 + dx in [0, kWidth-16]?
    f.slli(t1, s1, 4);
    f.add(t1, t1, s3);
    f.blt(t1, zero, dx_next);
    f.li(t2, static_cast<i64>(kWidth - 16));
    f.blt(t2, t1, dx_next);
    // ref ptr = ref + y*kWidth + x
    f.slli(t0, s0, 4);
    f.add(t0, t0, s2);
    f.li(t2, kWidth);
    f.mul(t0, t0, t2);
    f.add(t0, t0, t1);
    f.la(a0, "ref_frame");
    f.add(a0, a0, t0);
    // cur ptr = cur + (mby*16)*kWidth + mbx*16
    f.slli(t0, s0, 4);
    f.li(t2, kWidth);
    f.mul(t0, t0, t2);
    f.slli(t1, s1, 4);
    f.add(t0, t0, t1);
    f.la(a1, "cur_frame");
    f.add(a1, a1, t0);
    // Eight 8x4 sub-blocks tiling the 16x16 macroblock.
    f.mv(t3, a0);  // candidate ref base
    f.mv(t4, a1);  // cur base — but t-regs die across calls: stash in s6/t..
    f.mv(s6, zero);
    {
      // sub-block offsets relative to the block base
      i64 offs[8];
      for (int r = 0; r < 4; ++r) {
        offs[2 * r] = r * 4 * kWidth;
        offs[2 * r + 1] = r * 4 * kWidth + 8;
      }
      // preserve the two bases across calls in callee-saved space: reuse
      // the stack
      f.addi(sp, sp, -16);
      f.sd(t3, 0, sp);
      f.sd(t4, 8, sp);
      for (int b = 0; b < 8; ++b) {
        f.ld(a0, 0, sp);
        f.ld(a1, 8, sp);
        f.addi(a0, a0, offs[b]);
        f.addi(a1, a1, offs[b]);
        f.call("sad_8x4");
        f.add(s6, s6, a0);
      }
      f.addi(sp, sp, 16);
    }
    const Label no_better = f.new_label();
    f.bge(s6, s4, no_better);
    f.mv(s4, s6);
    f.bind(no_better);
    f.bind(dx_next);
    f.addi(s3, s3, 1);
    f.j(dx_loop);
    f.bind(dy_next);
    f.bind(dy_skip);
    f.addi(s2, s2, 1);
    f.j(dy_loop);
    f.bind(mb_done);
    f.add(s5, s5, s4);
    f.addi(s1, s1, 1);
    f.j(mb_cols);
    f.bind(next_row);
    f.addi(s0, s0, 1);
    f.j(mb_rows);
    f.bind(all_done);
    f.mv(a0, s5);
    frame.leave();
    f.ret();
  }
  return prog;
}

u64 golden_h264ref(u64 scale) {
  const u64 h = height(scale);
  const u64 frame_bytes = kWidth * h;
  std::vector<u64> ref_words, cur_words;
  const u64 state = host_fill_rand(ref_words, frame_bytes / 8, kSeed);
  host_fill_rand(cur_words, frame_bytes / 8, state);
  auto byte_at = [](const std::vector<u64>& words, u64 idx) {
    return static_cast<u8>(words[idx / 8] >> (8 * (idx % 8)));
  };
  u64 checksum = 0;
  for (u64 mby = 0; mby < h / 16; ++mby) {
    for (u64 mbx = 0; mbx < kWidth / 16; ++mbx) {
      u64 best = 1 << 30;
      for (i64 dy = -kRange; dy <= kRange; ++dy) {
        const i64 y = static_cast<i64>(mby * 16) + dy;
        if (y < 0 || y > static_cast<i64>(h - 16)) continue;
        for (i64 dx = -kRange; dx <= kRange; ++dx) {
          const i64 x = static_cast<i64>(mbx * 16) + dx;
          if (x < 0 || x > static_cast<i64>(kWidth - 16)) continue;
          u64 sad = 0;
          for (u64 r = 0; r < 16; ++r) {
            for (u64 c = 0; c < 16; ++c) {
              const i64 a = byte_at(
                  ref_words, static_cast<u64>(y + static_cast<i64>(r)) *
                                     kWidth +
                                 static_cast<u64>(x) + c);
              const i64 b =
                  byte_at(cur_words, (mby * 16 + r) * kWidth + mbx * 16 + c);
              sad += static_cast<u64>(a > b ? a - b : b - a);
            }
          }
          if (sad < best) best = sad;
        }
      }
      checksum += best;
    }
  }
  return checksum;
}

}  // namespace sealpk::wl
