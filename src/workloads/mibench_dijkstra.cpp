// MiBench "dijkstra" proxy: single-source shortest paths over a dense
// random weight matrix, O(N^2) with an extract-min helper called per
// settled node (the original's dequeue()).
#include "workloads/build_util.h"
#include "workloads/workload.h"

using namespace sealpk::isa;

namespace sealpk::wl {

namespace {
u64 node_count(u64 /*scale*/) { return 56; }  // fixed graph: scale adds
                                               // sources, not granularity
u64 source_count(u64 scale) { return 3 * scale; }
constexpr i64 kInf = 1 << 30;

// Weight generation shared between guest and golden: row-major, diagonal 0,
// w = 1 + (rand & 0xFF).
std::vector<std::vector<u32>> host_weights(u64 n) {
  GuestRand rng(kWorkloadSeed);
  std::vector<std::vector<u32>> w(n, std::vector<u32>(n));
  for (u64 i = 0; i < n; ++i) {
    for (u64 j = 0; j < n; ++j) {
      const u64 v = rng.next();
      w[i][j] = i == j ? 0 : static_cast<u32>(1 + (v & 0xFF));
    }
  }
  return w;
}
}  // namespace

isa::Program build_dijkstra(u64 scale) {
  const u64 n = node_count(scale);
  Program prog = make_workload_program();
  prog.add_zero("weights", n * n * 4);
  prog.add_zero("dist", n * 8);
  prog.add_zero("visited", n);

  {
    // extract_min() -> a0 = unvisited node with minimal dist (or n if none)
    Function& f = prog.add_function("extract_min");
    const Label loop = f.new_label(), skip = f.new_label(),
                done = f.new_label();
    f.la(t0, "dist");
    f.la(t1, "visited");
    f.li(t2, 0);                       // v
    f.li(t3, static_cast<i64>(n));
    f.li(a0, static_cast<i64>(n));     // best node
    f.li(t4, kInf + 1);                // best dist
    f.bind(loop);
    f.bgeu(t2, t3, done);
    f.add(t5, t1, t2);
    f.lbu(t5, 0, t5);
    f.bnez(t5, skip);
    f.slli(t5, t2, 3);
    f.add(t5, t0, t5);
    f.ld(t5, 0, t5);
    f.bgeu(t5, t4, skip);
    f.mv(t4, t5);
    f.mv(a0, t2);
    f.bind(skip);
    f.addi(t2, t2, 1);
    f.j(loop);
    f.bind(done);
    f.ret();
  }
  {
    // dijkstra(a0 = src) -> a0 = sum of distances
    Function& f = prog.add_function("dijkstra");
    Frame frame(f, {s0, s1, s2, s3});
    f.mv(s0, a0);  // src
    // init dist = INF, visited = 0; dist[src] = 0
    const Label init = f.new_label(), init_done = f.new_label();
    f.la(t0, "dist");
    f.la(t1, "visited");
    f.li(t2, 0);
    f.li(t3, static_cast<i64>(n));
    f.li(t4, kInf);
    f.bind(init);
    f.bgeu(t2, t3, init_done);
    f.slli(t5, t2, 3);
    f.add(t5, t0, t5);
    f.sd(t4, 0, t5);
    f.add(t5, t1, t2);
    f.sb(zero, 0, t5);
    f.addi(t2, t2, 1);
    f.j(init);
    f.bind(init_done);
    f.la(t0, "dist");
    f.slli(t1, s0, 3);
    f.add(t1, t0, t1);
    f.sd(zero, 0, t1);
    // main loop: settle n nodes
    f.li(s1, 0);  // settled count
    const Label outer = f.new_label(), outer_done = f.new_label();
    f.bind(outer);
    f.li(t0, static_cast<i64>(n));
    f.bgeu(s1, t0, outer_done);
    f.call("extract_min");
    f.li(t0, static_cast<i64>(n));
    f.bgeu(a0, t0, outer_done);  // exhausted
    f.mv(s2, a0);                // u
    f.la(t0, "visited");
    f.add(t0, t0, s2);
    f.li(t1, 1);
    f.sb(t1, 0, t0);
    // relax all v: dist[v] = min(dist[v], dist[u] + w[u][v])
    f.la(t0, "dist");
    f.slli(t1, s2, 3);
    f.add(t1, t0, t1);
    f.ld(s3, 0, t1);  // dist[u]
    const Label relax = f.new_label(), no_update = f.new_label();
    f.la(t0, "weights");
    f.li(t1, static_cast<i64>(n * 4));
    f.mul(t1, s2, t1);
    f.add(t0, t0, t1);  // row base
    f.la(t1, "dist");
    f.li(t2, 0);  // v
    f.li(t3, static_cast<i64>(n));
    f.bind(relax);
    f.bgeu(t2, t3, no_update);
    f.slli(t4, t2, 2);
    f.add(t4, t0, t4);
    f.lwu(t4, 0, t4);       // w[u][v]
    f.add(t4, s3, t4);      // cand
    f.slli(t5, t2, 3);
    f.add(t5, t1, t5);
    f.ld(t6, 0, t5);
    const Label keep = f.new_label();
    f.bgeu(t4, t6, keep);
    f.sd(t4, 0, t5);
    f.bind(keep);
    f.addi(t2, t2, 1);
    f.j(relax);
    f.bind(no_update);
    f.addi(s1, s1, 1);
    f.j(outer);
    f.bind(outer_done);
    // sum distances
    const Label sum = f.new_label(), sum_done = f.new_label();
    f.la(t0, "dist");
    f.li(t1, 0);
    f.li(t2, static_cast<i64>(n));
    f.li(a0, 0);
    f.bind(sum);
    f.bgeu(t1, t2, sum_done);
    f.slli(t3, t1, 3);
    f.add(t3, t0, t3);
    f.ld(t3, 0, t3);
    f.add(a0, a0, t3);
    f.addi(t1, t1, 1);
    f.j(sum);
    f.bind(sum_done);
    frame.leave();
    f.ret();
  }
  {
    // run(): generate the matrix inline, then sum dijkstra over sources.
    Function& f = prog.add_function("run");
    Frame frame(f, {s0, s1, s2, s3, s4});
    // Matrix generation with the inline xorshift (mirrors GuestRand).
    f.la(s0, "weights");
    f.li(s1, static_cast<i64>(kWorkloadSeed));  // state
    f.li(s2, 0);                                // i (row)
    const Label rows = f.new_label(), rows_done = f.new_label();
    f.bind(rows);
    f.li(t0, static_cast<i64>(n));
    f.bgeu(s2, t0, rows_done);
    f.li(s3, 0);  // j
    const Label cols = f.new_label(), cols_done = f.new_label();
    f.bind(cols);
    f.li(t0, static_cast<i64>(n));
    f.bgeu(s3, t0, cols_done);
    // state advance
    f.slli(t0, s1, 13);
    f.xor_(s1, s1, t0);
    f.srli(t0, s1, 7);
    f.xor_(s1, s1, t0);
    f.slli(t0, s1, 17);
    f.xor_(s1, s1, t0);
    f.li(t0, static_cast<i64>(0x2545F4914F6CDD1DULL));
    f.mul(t0, s1, t0);  // value
    f.andi(t0, t0, 0xFF);
    f.addi(t0, t0, 1);
    const Label not_diag = f.new_label();
    f.bne(s2, s3, not_diag);
    f.li(t0, 0);
    f.bind(not_diag);
    f.li(t1, static_cast<i64>(n));
    f.mul(t1, s2, t1);
    f.add(t1, t1, s3);
    f.slli(t1, t1, 2);
    f.add(t1, s0, t1);
    f.sw(t0, 0, t1);
    f.addi(s3, s3, 1);
    f.j(cols);
    f.bind(cols_done);
    f.addi(s2, s2, 1);
    f.j(rows);
    f.bind(rows_done);
    // Sources.
    f.li(s2, 0);
    f.li(s4, 0);  // checksum
    const Label srcs = f.new_label(), srcs_done = f.new_label();
    f.bind(srcs);
    f.li(t0, static_cast<i64>(source_count(scale)));
    f.bgeu(s2, t0, srcs_done);
    f.mv(a0, s2);
    f.call("dijkstra");
    f.add(s4, s4, a0);
    f.addi(s2, s2, 1);
    f.j(srcs);
    f.bind(srcs_done);
    f.mv(a0, s4);
    frame.leave();
    f.ret();
  }
  return prog;
}

u64 golden_dijkstra(u64 scale) {
  const u64 n = node_count(scale);
  const auto w = host_weights(n);
  u64 checksum = 0;
  for (u64 src = 0; src < source_count(scale); ++src) {
    std::vector<u64> dist(n, kInf);
    std::vector<bool> visited(n, false);
    dist[src] = 0;
    for (u64 iter = 0; iter < n; ++iter) {
      u64 best = n, best_d = kInf + 1;
      for (u64 v = 0; v < n; ++v) {
        if (!visited[v] && dist[v] < best_d) {
          best = v;
          best_d = dist[v];
        }
      }
      if (best == n) break;
      visited[best] = true;
      for (u64 v = 0; v < n; ++v) {
        const u64 cand = dist[best] + w[best][v];
        if (cand < dist[v]) dist[v] = cand;
      }
    }
    for (u64 v = 0; v < n; ++v) checksum += dist[v];
  }
  return checksum;
}

}  // namespace sealpk::wl
