// SPEC CPU2000 "mcf" proxy: Bellman-Ford over a large sparse network —
// the original is memory-latency bound over big node/arc arrays with a
// comparatively low call rate; here relax_pass() scans the full arc arrays
// once per call, giving the same big-footprint / few-calls profile.
#include "workloads/build_util.h"
#include "workloads/workload.h"

using namespace sealpk::isa;

namespace sealpk::wl {

namespace {
u64 node_count(u64 scale) { return 1024 * scale; }
u64 edge_count(u64 scale) { return 4 * node_count(scale); }
constexpr u64 kPasses = 20;
constexpr u64 kChunk = 32;  // edges per relax_chunk call (e is a multiple)
constexpr i64 kInf = i64{1} << 40;
constexpr u64 kSeed = kWorkloadSeed ^ 0xACF;
}  // namespace

isa::Program build_mcf(u64 scale) {
  const u64 n = node_count(scale);
  const u64 e = edge_count(scale);
  Program prog = make_workload_program();
  add_rss_ballast(prog, 384);
  add_fill_rand(prog);
  prog.add_zero("edge_raw", e * 8);  // packed random words
  prog.add_zero("efrom", e * 8);
  prog.add_zero("eto", e * 8);
  prog.add_zero("ew", e * 8);
  prog.add_zero("dist", n * 8);

  {
    // relax_chunk(a0 = first edge, a1 = count) -> successful relaxations.
    // One call per bundle of arcs, like mcf's per-basket pricing loops.
    Function& f = prog.add_function("relax_chunk");
    const Label loop = f.new_label(), skip = f.new_label(),
                done = f.new_label();
    f.mv(t4, a0);       // edge index
    f.add(a1, a0, a1);  // end
    f.la(t0, "efrom");
    f.la(t1, "eto");
    f.la(t2, "ew");
    f.la(t3, "dist");
    f.li(a0, 0);   // relaxations
    f.bind(loop);
    f.bgeu(t4, a1, done);
    f.slli(t5, t4, 3);
    f.add(t6, t0, t5);
    f.ld(t6, 0, t6);   // u
    f.slli(t6, t6, 3);
    f.add(t6, t3, t6);
    f.ld(a2, 0, t6);   // dist[u]
    f.add(t6, t2, t5);
    f.ld(a3, 0, t6);   // w
    f.add(a2, a2, a3); // cand
    f.add(t6, t1, t5);
    f.ld(t6, 0, t6);   // v
    f.slli(t6, t6, 3);
    f.add(t6, t3, t6);
    f.ld(a3, 0, t6);   // dist[v]
    f.bge(a2, a3, skip);
    f.sd(a2, 0, t6);
    f.addi(a0, a0, 1);
    f.bind(skip);
    f.addi(t4, t4, 1);
    f.j(loop);
    f.bind(done);
    f.ret();
  }
  {
    Function& f = prog.add_function("run");
    Frame frame(f, {s0, s1, s2});
    // Random edge words.
    f.la(a0, "edge_raw");
    f.li(a1, static_cast<i64>(e));
    f.li(a2, static_cast<i64>(kSeed));
    f.call("__fill_rand");
    // Unpack: from = w % n; to = (w >> 20) % n; weight = 1 + (w >> 40) % 512.
    f.la(t0, "edge_raw");
    f.la(t1, "efrom");
    f.la(t2, "eto");
    f.la(t3, "ew");
    f.li(t4, 0);
    const Label unpack = f.new_label(), unpack_done = f.new_label();
    f.bind(unpack);
    f.li(t5, static_cast<i64>(e));
    f.bgeu(t4, t5, unpack_done);
    f.slli(t5, t4, 3);
    f.add(t6, t0, t5);
    f.ld(t6, 0, t6);  // raw
    f.li(a2, static_cast<i64>(n));
    f.remu(a3, t6, a2);
    f.add(a4, t1, t5);
    f.sd(a3, 0, a4);
    f.srli(a3, t6, 20);
    f.remu(a3, a3, a2);
    f.add(a4, t2, t5);
    f.sd(a3, 0, a4);
    f.srli(a3, t6, 40);
    f.li(a2, 512);
    f.remu(a3, a3, a2);
    f.addi(a3, a3, 1);
    f.add(a4, t3, t5);
    f.sd(a3, 0, a4);
    f.addi(t4, t4, 1);
    f.j(unpack);
    f.bind(unpack_done);
    // dist init: dist[0] = 0, rest INF.
    f.la(t0, "dist");
    f.li(t1, 0);
    f.li(t2, kInf);
    const Label init = f.new_label(), init_done = f.new_label();
    f.bind(init);
    f.li(t3, static_cast<i64>(n));
    f.bgeu(t1, t3, init_done);
    f.slli(t3, t1, 3);
    f.add(t3, t0, t3);
    f.sd(t2, 0, t3);
    f.addi(t1, t1, 1);
    f.j(init);
    f.bind(init_done);
    f.sd(zero, 0, t0);
    // Passes.
    f.li(s0, 0);
    f.li(s1, 0);  // total relaxations
    const Label pass = f.new_label(), pass_done = f.new_label();
    f.bind(pass);
    f.li(t0, kPasses);
    f.bgeu(s0, t0, pass_done);
    // Sweep the arc arrays in chunks of kChunk edges per call.
    f.li(s2, 0);
    const Label chunk = f.new_label(), chunk_done = f.new_label();
    f.bind(chunk);
    f.li(t0, static_cast<i64>(e));
    f.bgeu(s2, t0, chunk_done);
    f.mv(a0, s2);
    f.li(a1, kChunk);
    f.call("relax_chunk");
    f.add(s1, s1, a0);
    f.li(t0, kChunk);
    f.add(s2, s2, t0);
    f.j(chunk);
    f.bind(chunk_done);
    f.addi(s0, s0, 1);
    f.j(pass);
    f.bind(pass_done);
    // checksum = sum over v of min(dist[v], kInf) + relaxations * 131.
    f.la(t0, "dist");
    f.li(t1, 0);
    f.li(s2, 0);
    const Label sum = f.new_label(), sum_done = f.new_label();
    f.bind(sum);
    f.li(t2, static_cast<i64>(n));
    f.bgeu(t1, t2, sum_done);
    f.slli(t2, t1, 3);
    f.add(t2, t0, t2);
    f.ld(t2, 0, t2);
    f.add(s2, s2, t2);
    f.addi(t1, t1, 1);
    f.j(sum);
    f.bind(sum_done);
    f.li(t0, 131);
    f.mul(t0, s1, t0);
    f.add(a0, s2, t0);
    frame.leave();
    f.ret();
  }
  return prog;
}

u64 golden_mcf(u64 scale) {
  const u64 n = node_count(scale);
  const u64 e = edge_count(scale);
  std::vector<u64> raw;
  host_fill_rand(raw, e, kSeed);
  std::vector<u64> efrom(e), eto(e);
  std::vector<i64> ew(e);
  for (u64 i = 0; i < e; ++i) {
    efrom[i] = raw[i] % n;
    eto[i] = (raw[i] >> 20) % n;
    ew[i] = 1 + static_cast<i64>((raw[i] >> 40) % 512);
  }
  std::vector<i64> dist(n, kInf);
  dist[0] = 0;
  u64 relaxations = 0;
  for (u64 p = 0; p < kPasses; ++p) {
    for (u64 i = 0; i < e; ++i) {
      const i64 cand = dist[efrom[i]] + ew[i];
      if (cand < dist[eto[i]]) {
        dist[eto[i]] = cand;
        ++relaxations;
      }
    }
  }
  u64 checksum = 0;
  for (u64 v = 0; v < n; ++v) checksum += static_cast<u64>(dist[v]);
  return checksum + relaxations * 131;
}

}  // namespace sealpk::wl
