// SPEC CPU2006 "libquantum" proxy: a quantum-register simulation over an
// array of basis states; X / CNOT / Toffoli gates are functions that sweep
// the whole state array flipping target bits — libquantum's
// quantum_toffoli/cnot profile: moderate call rate, array-sweep bodies.
#include "workloads/build_util.h"
#include "workloads/workload.h"

using namespace sealpk::isa;

namespace sealpk::wl {

namespace {
u64 state_count(u64 /*scale*/) { return 48; }  // fixed: keeps the per-gate
                                                // call granularity scale-invariant
u64 gate_count(u64 scale) { return 1024 * scale; }
constexpr u64 kQubits = 48;
constexpr u64 kSeed = kWorkloadSeed ^ 0x9B17;
}  // namespace

isa::Program build_libquantum(u64 scale) {
  const u64 n = state_count(scale);
  const u64 gates = gate_count(scale);
  Program prog = make_workload_program();
  add_rss_ballast(prog, 384);
  add_fill_rand(prog);
  prog.add_zero("states", n * 8);

  {
    // gate_x(a0 = target bit): flip bit t in every basis state.
    Function& f = prog.add_function("gate_x");
    const Label loop = f.new_label(), done = f.new_label();
    f.li(t0, 1);
    f.sll(t0, t0, a0);  // mask
    f.la(t1, "states");
    f.li(t2, 0);
    f.bind(loop);
    f.li(t3, static_cast<i64>(n));
    f.bgeu(t2, t3, done);
    f.slli(t3, t2, 3);
    f.add(t3, t1, t3);
    f.ld(t4, 0, t3);
    f.xor_(t4, t4, t0);
    f.sd(t4, 0, t3);
    f.addi(t2, t2, 1);
    f.j(loop);
    f.bind(done);
    f.ret();
  }
  {
    // gate_cnot(a0 = control, a1 = target).
    Function& f = prog.add_function("gate_cnot");
    const Label loop = f.new_label(), skip = f.new_label(),
                done = f.new_label();
    f.li(t0, 1);
    f.sll(t0, t0, a0);  // control mask
    f.li(t1, 1);
    f.sll(t1, t1, a1);  // target mask
    f.la(t2, "states");
    f.li(t3, 0);
    f.bind(loop);
    f.li(t4, static_cast<i64>(n));
    f.bgeu(t3, t4, done);
    f.slli(t4, t3, 3);
    f.add(t4, t2, t4);
    f.ld(t5, 0, t4);
    f.and_(t6, t5, t0);
    f.beqz(t6, skip);
    f.xor_(t5, t5, t1);
    f.sd(t5, 0, t4);
    f.bind(skip);
    f.addi(t3, t3, 1);
    f.j(loop);
    f.bind(done);
    f.ret();
  }
  {
    // gate_toffoli(a0 = c1, a1 = c2, a2 = target).
    Function& f = prog.add_function("gate_toffoli");
    const Label loop = f.new_label(), skip = f.new_label(),
                done = f.new_label();
    f.li(t0, 1);
    f.sll(t0, t0, a0);
    f.li(t1, 1);
    f.sll(t1, t1, a1);
    f.or_(t0, t0, t1);  // both-controls mask
    f.li(t1, 1);
    f.sll(t1, t1, a2);
    f.la(t2, "states");
    f.li(t3, 0);
    f.bind(loop);
    f.li(t4, static_cast<i64>(n));
    f.bgeu(t3, t4, done);
    f.slli(t4, t3, 3);
    f.add(t4, t2, t4);
    f.ld(t5, 0, t4);
    f.and_(t6, t5, t0);
    f.bne(t6, t0, skip);  // both controls set?
    f.xor_(t5, t5, t1);
    f.sd(t5, 0, t4);
    f.bind(skip);
    f.addi(t3, t3, 1);
    f.j(loop);
    f.bind(done);
    f.ret();
  }
  {
    Function& f = prog.add_function("run");
    Frame frame(f, {s0, s1});
    f.la(a0, "states");
    f.li(a1, static_cast<i64>(n));
    f.li(a2, static_cast<i64>(kSeed));
    f.call("__fill_rand");
    f.mv(s1, a0);  // continued xorshift state
    f.li(s0, 0);   // gate index
    const Label loop = f.new_label(), done = f.new_label();
    const Label cnot = f.new_label(), toffoli = f.new_label(),
                next = f.new_label();
    auto advance = [&]() {
      f.slli(t0, s1, 13);
      f.xor_(s1, s1, t0);
      f.srli(t0, s1, 7);
      f.xor_(s1, s1, t0);
      f.slli(t0, s1, 17);
      f.xor_(s1, s1, t0);
      f.li(t0, static_cast<i64>(0x2545F4914F6CDD1DULL));
      f.mul(t0, s1, t0);
    };
    f.bind(loop);
    f.li(t1, static_cast<i64>(gates));
    f.bgeu(s0, t1, done);
    advance();
    // qubit picks from value fields; gate type = value % 3
    f.li(t1, static_cast<i64>(kQubits));
    f.remu(a0, t0, t1);
    f.srli(t2, t0, 8);
    f.remu(a1, t2, t1);
    f.srli(t2, t0, 16);
    f.remu(a2, t2, t1);
    f.srli(t2, t0, 32);
    f.li(t1, 3);
    f.remu(t2, t2, t1);
    f.li(t1, 1);
    f.beq(t2, t1, cnot);
    f.li(t1, 2);
    f.beq(t2, t1, toffoli);
    f.call("gate_x");
    f.j(next);
    f.bind(cnot);
    f.call("gate_cnot");
    f.j(next);
    f.bind(toffoli);
    f.call("gate_toffoli");
    f.bind(next);
    f.addi(s0, s0, 1);
    f.j(loop);
    f.bind(done);
    // checksum = xor-fold then sum of all states.
    f.la(t0, "states");
    f.li(t1, 0);
    f.li(a0, 0);
    f.li(a1, 0);
    const Label sum = f.new_label(), sum_done = f.new_label();
    f.bind(sum);
    f.li(t2, static_cast<i64>(n));
    f.bgeu(t1, t2, sum_done);
    f.slli(t2, t1, 3);
    f.add(t2, t0, t2);
    f.ld(t3, 0, t2);
    f.xor_(a0, a0, t3);
    f.add(a1, a1, t3);
    f.addi(t1, t1, 1);
    f.j(sum);
    f.bind(sum_done);
    f.add(a0, a0, a1);
    frame.leave();
    f.ret();
  }
  return prog;
}

u64 golden_libquantum(u64 scale) {
  const u64 n = state_count(scale);
  const u64 gates = gate_count(scale);
  std::vector<u64> states;
  GuestRand rng(kSeed);
  states.resize(n);
  for (u64 i = 0; i < n; ++i) states[i] = rng.next();
  for (u64 g = 0; g < gates; ++g) {
    const u64 v = rng.next();
    const u64 q0 = v % kQubits;
    const u64 q1 = (v >> 8) % kQubits;
    const u64 q2 = (v >> 16) % kQubits;
    const u64 type = (v >> 32) % 3;
    if (type == 0) {
      for (auto& s : states) s ^= u64{1} << q0;
    } else if (type == 1) {
      for (auto& s : states) {
        if ((s & (u64{1} << q0)) != 0) s ^= u64{1} << q1;
      }
    } else {
      const u64 cm = (u64{1} << q0) | (u64{1} << q1);
      for (auto& s : states) {
        if ((s & cm) == cm) s ^= u64{1} << q2;
      }
    }
  }
  u64 x = 0, sum = 0;
  for (const u64 s : states) {
    x ^= s;
    sum += s;
  }
  return x + sum;
}

}  // namespace sealpk::wl
