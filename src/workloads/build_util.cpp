#include "workloads/build_util.h"

using namespace sealpk::isa;

namespace sealpk::wl {

Frame::Frame(Function& f, std::initializer_list<u8> regs)
    : f_(f), regs_(regs) {
  size_ = static_cast<i64>(align_up(8 * (regs_.size() + 1), 16));
  f_.addi(sp, sp, -size_);
  f_.sd(ra, 0, sp);
  i64 off = 8;
  for (const u8 reg : regs_) {
    f_.sd(reg, off, sp);
    off += 8;
  }
}

void Frame::leave() {
  f_.ld(ra, 0, sp);
  i64 off = 8;
  for (const u8 reg : regs_) {
    f_.ld(reg, off, sp);
    off += 8;
  }
  f_.addi(sp, sp, size_);
}

void add_fill_rand(Program& prog) {
  if (prog.find_function("__fill_rand") != nullptr) return;
  Function& f = prog.add_function("__fill_rand");
  f.instrumentable = false;
  const Label loop = f.new_label(), done = f.new_label();
  f.li(t3, static_cast<i64>(0x2545F4914F6CDD1DULL));
  f.bind(loop);
  f.beqz(a1, done);
  f.slli(t0, a2, 13);
  f.xor_(a2, a2, t0);
  f.srli(t0, a2, 7);
  f.xor_(a2, a2, t0);
  f.slli(t0, a2, 17);
  f.xor_(a2, a2, t0);
  f.mul(t0, a2, t3);
  f.sd(t0, 0, a0);
  f.addi(a0, a0, 8);
  f.addi(a1, a1, -1);
  f.j(loop);
  f.bind(done);
  f.mv(a0, a2);
  f.ret();
}

u64 host_fill_rand(std::vector<u64>& out, u64 count, u64 seed) {
  GuestRand rng(seed);
  out.resize(count);
  for (u64 i = 0; i < count; ++i) out[i] = rng.next();
  return rng.state;
}

void add_rss_ballast(Program& prog, u64 pages) {
  prog.add_zero("rss_ballast", pages * 4096, 4096);
}

isa::Program make_workload_program() {
  Program prog;
  rt::add_crt0(prog);
  Function& main_fn = prog.add_function("main");
  main_fn.addi(sp, sp, -16);
  main_fn.sd(ra, 0, sp);
  main_fn.call("run");
  emit_report_a0(main_fn);
  main_fn.ld(ra, 0, sp);
  main_fn.addi(sp, sp, 16);
  main_fn.li(a0, 0);
  main_fn.ret();
  return prog;
}

}  // namespace sealpk::wl
