// Shared guest-building helpers for the benchmark proxies.
#pragma once

#include <initializer_list>
#include <vector>

#include "isa/program.h"
#include "os/syscall_abi.h"
#include "runtime/guest.h"
#include "workloads/workload.h"

namespace sealpk::wl {

// Host mirror of the guest __rand xorshift (runtime/guest.cpp): state is
// stored pre-multiply, the returned value is state * M. Golden models MUST
// use this (not common/rng.h's Rng, which seeds differently).
struct GuestRand {
  u64 state;
  explicit GuestRand(u64 seed) : state(seed) {}
  u64 next() {
    u64 x = state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    state = x;
    return x * 0x2545F4914F6CDD1DULL;
  }
};

// Stack-frame helper: the constructor emits the prologue saving ra plus the
// listed callee-saved registers; leave() emits the matching epilogue (call
// right before ret()).
class Frame {
 public:
  Frame(isa::Function& f, std::initializer_list<u8> regs);
  void leave();

 private:
  isa::Function& f_;
  std::vector<u8> regs_;
  i64 size_;
};

// Adds __fill_rand(a0 = ptr, a1 = count_u64, a2 = seed) — fills memory with
// the xorshift stream; returns the final (pre-multiply) state. Idempotent.
void add_fill_rand(isa::Program& prog);

// Host mirror of __fill_rand; returns the final state.
u64 host_fill_rand(std::vector<u64>& out, u64 count, u64 seed);

// Emits `report(a0)` preserving a0.
inline void emit_report_a0(isa::Function& f) {
  rt::syscall(f, os::sys::kReport);
}

// Standard skeleton: crt0 + a main() that calls "run" (which the caller
// must add; it returns the checksum in a0), reports the checksum and exits
// 0. Returns the program.
isa::Program make_workload_program();

// Adds a mapped-but-cold resident-set blob approximating the full image of
// the proxied application. The SPEC programs the paper runs have orders-of-
// magnitude larger resident sets than the algorithmic kernel extracted
// here; the blob restores that property for the RSS-dependent mprotect
// cost (TimingModel::mprotect_rss_cycles_per_page) without simulating the
// rest of the program.
void add_rss_ballast(isa::Program& prog, u64 pages);

}  // namespace sealpk::wl
