// MiBench "patricia" proxy: a binary radix trie over 16-bit keys with
// pool-allocated nodes. insert/lookup/alloc are separate functions —
// pointer-chasing with a high call rate, like the original's route-table
// trie.
#include <set>

#include "workloads/build_util.h"
#include "workloads/workload.h"

using namespace sealpk::isa;

namespace sealpk::wl {

namespace {
constexpr unsigned kKeyBits = 12;
u64 insert_count(u64 scale) { return 192 * scale; }
u64 lookup_count(u64 scale) { return 2 * insert_count(scale); }
// Node layout: {left(0), right(8), valid(16), pad(24)} = 32 bytes.
constexpr u64 kNodeSize = 32;

// Exact node demand for the deterministic key stream (host-side dry run of
// the same bitwise trie), so the guest pool carries no slack pages.
u64 host_trie_nodes(u64 inserts) {
  std::vector<u64> keys;
  host_fill_rand(keys, inserts, kWorkloadSeed);
  std::set<std::pair<u64, u64>> edges;  // (depth, prefix)
  u64 nodes = 1;  // root
  for (u64 i = 0; i < inserts; ++i) {
    const u64 key = keys[i] & 0xFFF;
    for (unsigned depth = 1; depth <= kKeyBits; ++depth) {
      const u64 prefix = key >> (kKeyBits - depth);
      if (edges.insert({depth, prefix}).second) ++nodes;
    }
  }
  return nodes;
}
}  // namespace

isa::Program build_patricia(u64 scale) {
  const u64 inserts = insert_count(scale);
  const u64 lookups = lookup_count(scale);
  const u64 pool_nodes = host_trie_nodes(inserts) + 1;
  Program prog = make_workload_program();
  add_fill_rand(prog);
  prog.add_zero("node_pool", pool_nodes * kNodeSize, 16);
  prog.add_zero("pool_next", 8);
  prog.add_zero("keys", (inserts + lookups) * 8);

  {
    // alloc_node() -> a0 = zeroed node (bss is pre-zeroed; the bump pointer
    // only moves forward).
    Function& f = prog.add_function("alloc_node");
    f.la(t0, "pool_next");
    f.ld(t1, 0, t0);
    f.addi(t2, t1, 1);
    f.sd(t2, 0, t0);
    f.li(t2, kNodeSize);
    f.mul(t1, t1, t2);
    f.la(t0, "node_pool");
    f.add(a0, t0, t1);
    f.ret();
  }
  {
    // trie_insert(a0 = key) -> 1 if newly inserted, 0 if already present.
    // The root is node 0 (pre-allocated by run()).
    Function& f = prog.add_function("trie_insert");
    Frame frame(f, {s0, s1, s2});
    f.mv(s0, a0);           // key
    f.la(s1, "node_pool");  // current node (root)
    f.li(s2, kKeyBits - 1); // bit index
    const Label walk = f.new_label(), walk_done = f.new_label();
    const Label have_child = f.new_label();
    f.bind(walk);
    f.blt(s2, zero, walk_done);
    // dir = (key >> bit) & 1; slot offset = dir * 8
    f.srl(t0, s0, s2);
    f.andi(t0, t0, 1);
    f.slli(t0, t0, 3);
    f.add(t1, s1, t0);  // &child link
    f.ld(t2, 0, t1);
    f.bnez(t2, have_child);
    // Allocate inline (bump pointer) and link. The original pre-allocates
    // node pools the same way rather than calling malloc per bit.
    f.la(t3, "pool_next");
    f.ld(t4, 0, t3);
    f.addi(t5, t4, 1);
    f.sd(t5, 0, t3);
    f.li(t5, kNodeSize);
    f.mul(t4, t4, t5);
    f.la(t3, "node_pool");
    f.add(t2, t3, t4);  // fresh node
    f.sd(t2, 0, t1);
    f.bind(have_child);
    f.mv(s1, t2);
    f.addi(s2, s2, -1);
    f.j(walk);
    f.bind(walk_done);
    // s1 = leaf node
    f.ld(t0, 16, s1);  // valid
    const Label fresh = f.new_label();
    f.beqz(t0, fresh);
    f.li(a0, 0);
    frame.leave();
    f.ret();
    f.bind(fresh);
    f.li(t0, 1);
    f.sd(t0, 16, s1);
    f.li(a0, 1);
    frame.leave();
    f.ret();
  }
  {
    // trie_lookup(a0 = key) -> 1 if present.
    Function& f = prog.add_function("trie_lookup");
    const Label walk = f.new_label(), miss = f.new_label(),
                walk_done = f.new_label();
    f.la(t3, "node_pool");  // current
    f.li(t4, kKeyBits - 1);
    f.bind(walk);
    f.blt(t4, zero, walk_done);
    f.srl(t0, a0, t4);
    f.andi(t0, t0, 1);
    f.slli(t0, t0, 3);
    f.add(t1, t3, t0);
    f.ld(t3, 0, t1);
    f.beqz(t3, miss);
    f.addi(t4, t4, -1);
    f.j(walk);
    f.bind(walk_done);
    f.ld(a0, 16, t3);
    f.ret();
    f.bind(miss);
    f.li(a0, 0);
    f.ret();
  }
  {
    Function& f = prog.add_function("run");
    Frame frame(f, {s0, s1, s2, s3});
    // Reserve node 0 as the root.
    f.la(t0, "pool_next");
    f.li(t1, 1);
    f.sd(t1, 0, t0);
    // Key stream.
    f.la(a0, "keys");
    f.li(a1, static_cast<i64>(inserts + lookups));
    f.li(a2, static_cast<i64>(kWorkloadSeed));
    f.call("__fill_rand");
    // Inserts.
    f.la(s0, "keys");
    f.li(s1, 0);  // index
    f.li(s2, 0);  // inserted count
    const Label ins = f.new_label(), ins_done = f.new_label();
    f.bind(ins);
    f.li(t0, static_cast<i64>(inserts));
    f.bgeu(s1, t0, ins_done);
    f.slli(t0, s1, 3);
    f.add(t0, s0, t0);
    f.ld(a0, 0, t0);
    f.li(t1, 0xFFF);
    f.and_(a0, a0, t1);
    f.call("trie_insert");
    f.add(s2, s2, a0);
    f.addi(s1, s1, 1);
    f.j(ins);
    f.bind(ins_done);
    // Lookups.
    f.li(s3, 0);  // hits
    const Label look = f.new_label(), look_done = f.new_label();
    f.bind(look);
    f.li(t0, static_cast<i64>(inserts + lookups));
    f.bgeu(s1, t0, look_done);
    f.slli(t0, s1, 3);
    f.add(t0, s0, t0);
    f.ld(a0, 0, t0);
    f.li(t1, 0xFFF);
    f.and_(a0, a0, t1);
    f.call("trie_lookup");
    f.add(s3, s3, a0);
    f.addi(s1, s1, 1);
    f.j(look);
    f.bind(look_done);
    // checksum = hits * 3 + inserted
    f.slli(t0, s3, 1);
    f.add(t0, t0, s3);
    f.add(a0, t0, s2);
    frame.leave();
    f.ret();
  }
  return prog;
}

u64 golden_patricia(u64 scale) {
  const u64 inserts = insert_count(scale);
  const u64 lookups = lookup_count(scale);
  std::vector<u64> keys;
  host_fill_rand(keys, inserts + lookups, kWorkloadSeed);
  std::set<u64> present;
  u64 inserted = 0;
  for (u64 i = 0; i < inserts; ++i) {
    inserted += present.insert(keys[i] & 0xFFF).second ? 1 : 0;
  }
  u64 hits = 0;
  for (u64 i = inserts; i < inserts + lookups; ++i) {
    hits += present.count(keys[i] & 0xFFF);
  }
  return hits * 3 + inserted;
}

}  // namespace sealpk::wl
