// SPEC CPU2000 "gzip" proxy: LZ77 with a hash-head match finder and
// deflate's *lazy matching* — at each match site the next position is
// probed too, and the longer of the two wins. probe()/match_len() are
// helpers called for nearly every input position: deflate's
// longest_match() profile (very high call rate, small-to-medium bodies,
// sliding-window memory access).
#include "workloads/build_util.h"
#include "workloads/workload.h"

using namespace sealpk::isa;

namespace sealpk::wl {

namespace {
u64 input_len(u64 scale) { return 6144 * scale; }
constexpr u64 kHashSize = 4096;
constexpr u64 kWindow = 4096;
constexpr u64 kMaxMatch = 64;
constexpr u64 kSeed = kWorkloadSeed ^ 0x9219;

std::vector<u8> host_input(u64 len) {
  GuestRand rng(kSeed);
  std::vector<u8> data(len);
  u8 prev = 'a';
  for (u64 i = 0; i < len; ++i) {
    const u64 v = rng.next();
    if ((v & 3) == 0) prev = static_cast<u8>('a' + ((v >> 2) & 7));
    data[i] = prev;
  }
  return data;
}

u64 host_hash(const std::vector<u8>& t, u64 pos) {
  return ((static_cast<u64>(t[pos]) << 8) ^
          (static_cast<u64>(t[pos + 1]) << 4) ^ t[pos + 2]) &
         (kHashSize - 1);
}

// Probe the hash chain at `pos` and insert `pos`; returns (len, dist),
// len = 0 when there is no usable candidate.
std::pair<u64, u64> host_probe(const std::vector<u8>& text,
                               std::vector<u64>& head, u64 pos) {
  const u64 h = host_hash(text, pos);
  const u64 cand_plus1 = head[h];
  head[h] = pos + 1;
  if (cand_plus1 == 0) return {0, 0};
  const u64 cand = cand_plus1 - 1;
  const u64 dist = pos - cand;
  if (dist == 0 || dist > kWindow) return {0, 0};
  u64 match = 0;
  const u64 limit = std::min(text.size() - pos, kMaxMatch);
  while (match < limit && text[cand + match] == text[pos + match]) ++match;
  return {match, dist};
}
}  // namespace

isa::Program build_gzip(u64 scale) {
  const u64 len = input_len(scale);
  Program prog = make_workload_program();
  add_rss_ballast(prog, 384);
  prog.add_zero("text", len + 8);
  prog.add_zero("hash_head", kHashSize * 8);  // position + 1; 0 = empty

  {
    // match_len(a0 = candidate ptr, a1 = current ptr, a2 = limit)
    // -> common prefix length, capped at kMaxMatch.
    Function& f = prog.add_function("match_len");
    const Label loop = f.new_label(), done = f.new_label();
    f.li(t0, 0);
    f.li(t3, kMaxMatch);
    f.bind(loop);
    f.bgeu(t0, a2, done);
    f.bgeu(t0, t3, done);
    f.add(t1, a0, t0);
    f.lbu(t1, 0, t1);
    f.add(t2, a1, t0);
    f.lbu(t2, 0, t2);
    f.bne(t1, t2, done);
    f.addi(t0, t0, 1);
    f.j(loop);
    f.bind(done);
    f.mv(a0, t0);
    f.ret();
  }
  {
    // probe(a0 = pos) -> a0 = match length (0 if none), a1 = distance.
    // Reads the hash head, inserts pos, and measures the candidate.
    Function& f = prog.add_function("probe");
    Frame frame(f, {s6, s7});
    const Label miss = f.new_label();
    f.mv(s6, a0);  // pos
    f.la(t0, "text");
    f.add(t1, t0, s6);
    f.lbu(t2, 0, t1);
    f.slli(t2, t2, 8);
    f.lbu(t3, 1, t1);
    f.slli(t3, t3, 4);
    f.xor_(t2, t2, t3);
    f.lbu(t3, 2, t1);
    f.xor_(t2, t2, t3);
    f.li(t3, kHashSize - 1);
    f.and_(t2, t2, t3);
    f.la(t3, "hash_head");
    f.slli(t2, t2, 3);
    f.add(t3, t3, t2);
    f.ld(s7, 0, t3);  // cand + 1
    f.addi(t4, s6, 1);
    f.sd(t4, 0, t3);  // insert pos
    f.beqz(s7, miss);
    f.addi(s7, s7, -1);  // cand
    f.sub(t4, s6, s7);   // dist
    f.beqz(t4, miss);
    f.li(t5, kWindow);
    f.bltu(t5, t4, miss);
    f.la(t0, "text");
    f.add(a0, t0, s7);
    f.add(a1, t0, s6);
    f.li(a2, static_cast<i64>(len));
    f.sub(a2, a2, s6);
    f.call("match_len");
    f.sub(a1, s6, s7);  // dist
    frame.leave();
    f.ret();
    f.bind(miss);
    f.li(a0, 0);
    f.li(a1, 0);
    frame.leave();
    f.ret();
  }
  {
    Function& f = prog.add_function("run");
    Frame frame(f, {s0, s1, s2, s3, s4, s5, s6});
    // Generate input (mirrors host_input).
    f.la(s0, "text");
    f.li(s1, static_cast<i64>(kSeed));
    f.li(s2, 0);
    f.li(s3, 'a');
    const Label gen = f.new_label(), keep = f.new_label(),
                gen_done = f.new_label();
    f.bind(gen);
    f.li(t0, static_cast<i64>(len));
    f.bgeu(s2, t0, gen_done);
    f.slli(t0, s1, 13);
    f.xor_(s1, s1, t0);
    f.srli(t0, s1, 7);
    f.xor_(s1, s1, t0);
    f.slli(t0, s1, 17);
    f.xor_(s1, s1, t0);
    f.li(t0, static_cast<i64>(0x2545F4914F6CDD1DULL));
    f.mul(t0, s1, t0);
    f.andi(t1, t0, 3);
    f.bnez(t1, keep);
    f.srli(t1, t0, 2);
    f.andi(t1, t1, 7);
    f.addi(s3, t1, 'a');
    f.bind(keep);
    f.add(t1, s0, s2);
    f.sb(s3, 0, t1);
    f.addi(s2, s2, 1);
    f.j(gen);
    f.bind(gen_done);
    // Lazy LZ scan: s2 = pos, s4 = checksum, s5/s6 = (len1, dist1).
    f.li(s2, 0);
    f.li(s4, 0);
    const Label scan = f.new_label(), literal = f.new_label(),
                take1 = f.new_label(), scan_done = f.new_label();
    f.bind(scan);
    f.li(t0, static_cast<i64>(len - 3));
    f.bgeu(s2, t0, scan_done);
    f.mv(a0, s2);
    f.call("probe");
    f.mv(s5, a0);  // len1
    f.mv(s6, a1);  // dist1
    f.li(t0, 3);
    f.bltu(s5, t0, literal);
    // Lazy probe at pos+1 (when it still fits the scan window).
    f.li(t0, static_cast<i64>(len - 3));
    f.addi(t1, s2, 1);
    f.bgeu(t1, t0, take1);
    f.mv(a0, t1);
    f.call("probe");
    f.bgeu(s5, a0, take1);  // len2 <= len1: keep the first match
    // Deferred: literal at pos, match (len2, dist2) at pos+1.
    f.add(t0, s0, s2);
    f.lbu(t0, 0, t0);
    f.add(s4, s4, t0);
    f.slli(t2, a0, 8);
    f.xor_(t2, t2, a1);
    f.add(s4, s4, t2);
    f.addi(t1, a0, 1);  // 1 + len2
    f.add(s2, s2, t1);
    f.j(scan);
    f.bind(take1);
    f.slli(t2, s5, 8);
    f.xor_(t2, t2, s6);
    f.add(s4, s4, t2);
    f.add(s2, s2, s5);
    f.j(scan);
    f.bind(literal);
    f.add(t1, s0, s2);
    f.lbu(t1, 0, t1);
    f.add(s4, s4, t1);
    f.addi(s2, s2, 1);
    f.j(scan);
    f.bind(scan_done);
    f.mv(a0, s4);
    frame.leave();
    f.ret();
  }
  return prog;
}

u64 golden_gzip(u64 scale) {
  const u64 len = input_len(scale);
  const std::vector<u8> text = host_input(len);
  std::vector<u64> head(kHashSize, 0);
  u64 checksum = 0;
  u64 pos = 0;
  while (pos < len - 3) {
    const auto [len1, dist1] = host_probe(text, head, pos);
    if (len1 < 3) {
      checksum += text[pos];
      pos += 1;
      continue;
    }
    if (pos + 1 < len - 3) {
      const auto [len2, dist2] = host_probe(text, head, pos + 1);
      if (len2 > len1) {
        checksum += text[pos];               // deferred literal
        checksum += (len2 << 8) ^ dist2;     // the better match
        pos += 1 + len2;
        continue;
      }
    }
    checksum += (len1 << 8) ^ dist1;
    pos += len1;
  }
  return checksum;
}

}  // namespace sealpk::wl
