#include "snapshot/snapshot.h"

#include <fstream>
#include <sstream>

#include "common/checksum.h"
#include "common/serial.h"
#include "fault/fault.h"

namespace sealpk::snapshot {

namespace {

constexpr char kMagic[8] = {'S', 'P', 'K', 'S', 'N', 'A', 'P', '1'};

constexpr u32 fourcc(char a, char b, char c, char d) {
  return static_cast<u32>(static_cast<u8>(a)) |
         (static_cast<u32>(static_cast<u8>(b)) << 8) |
         (static_cast<u32>(static_cast<u8>(c)) << 16) |
         (static_cast<u32>(static_cast<u8>(d)) << 24);
}

constexpr u32 kSecConfig = fourcc('C', 'F', 'G', ' ');
constexpr u32 kSecHart = fourcc('H', 'A', 'R', 'T');
constexpr u32 kSecPkr = fourcc('P', 'K', 'R', ' ');
constexpr u32 kSecSeal = fourcc('S', 'E', 'A', 'L');
constexpr u32 kSecPkru = fourcc('P', 'K', 'R', 'U');
constexpr u32 kSecDtlb = fourcc('D', 'T', 'L', 'B');
constexpr u32 kSecItlb = fourcc('I', 'T', 'L', 'B');
constexpr u32 kSecMem = fourcc('M', 'E', 'M', ' ');
constexpr u32 kSecKernel = fourcc('K', 'E', 'R', 'N');
constexpr u32 kSecRunLoop = fourcc('R', 'U', 'N', 'S');
constexpr u32 kSecVkey = fourcc('V', 'K', 'E', 'Y');
constexpr u32 kSecInjector = fourcc('F', 'I', 'N', 'J');

std::string fourcc_name(u32 cc) {
  std::string s(4, ' ');
  for (int i = 0; i < 4; ++i) s[i] = static_cast<char>((cc >> (8 * i)) & 0xFF);
  while (!s.empty() && s.back() == ' ') s.pop_back();
  return s;
}

[[noreturn]] void fail(const std::string& what) { throw SnapshotError(what); }

// --- config ------------------------------------------------------------------
// Only execution-relevant fields serialize: hooks cannot, and the loader
// verify policy only matters at image-admission time, before any snapshot
// exists. Restore demands the target machine's serialized config be
// byte-identical, so every field below is a compatibility axis.

void save_config(ByteWriter& w, const sim::MachineConfig& cfg,
                 u32 version = kFormatVersion) {
  w.put_u8(static_cast<u8>(cfg.hart.flavor));
  w.put_u64(cfg.hart.dtlb_entries);
  w.put_u64(cfg.hart.itlb_entries);
  const core::TimingModel& t = cfg.hart.timing;
  w.put_u64(t.base_cycles);
  w.put_u64(t.mul_cycles);
  w.put_u64(t.div_cycles);
  w.put_u64(t.mem_extra_cycles);
  w.put_u64(t.tlb_miss_per_access);
  w.put_u64(t.rocc_cycles);
  w.put_u64(t.trap_enter_cycles);
  w.put_u64(t.trap_return_cycles);
  w.put_u64(t.syscall_dispatch_cycles);
  w.put_u64(t.vma_lookup_cycles);
  w.put_u64(t.pte_update_cycles);
  w.put_u64(t.mprotect_rss_cycles_per_page);
  w.put_u64(t.tlb_flush_cycles);
  w.put_u64(t.pkey_bookkeeping_cycles);
  w.put_u64(t.fault_handler_cycles);
  w.put_u64(t.cam_refill_handler_cycles);
  w.put_u64(t.context_switch_cycles);
  w.put_u64(t.pkr_row_swap_cycles);
  w.put_bool(cfg.kernel.save_pkr_on_switch);
  w.put_u64(cfg.kernel.stack_pages);
  w.put_bool(cfg.kernel.sv48);
  w.put_u64(cfg.mem_bytes);
  w.put_u64(cfg.preempt_quantum);
  w.put_bool(cfg.fault_plan.enabled);
  w.put_u64(cfg.fault_plan.seed);
  w.put_f64(cfg.fault_plan.rate);
  w.put_f64(cfg.fault_plan.cam_rate);
  w.put_u64(cfg.fault_plan.max_faults);
  w.put_u32(cfg.fault_plan.kinds);
  w.put_u64(cfg.audit_interval);
  w.put_u64(cfg.watchdog_trap_storm);
  w.put_u64(cfg.watchdog_livelock);
  w.put_u64(cfg.checkpoint_interval);
  w.put_u64(cfg.max_rollbacks);
  if (version >= 2) {
    w.put_u32(cfg.kernel.vkey_mru_slots);
    w.put_bool(cfg.kernel.vkey_lazy_sync);
  }
}

sim::MachineConfig load_config(ByteReader& r, u32 version) {
  sim::MachineConfig cfg;
  cfg.hart.flavor = static_cast<core::IsaFlavor>(r.get_u8());
  cfg.hart.dtlb_entries = static_cast<size_t>(r.get_u64());
  cfg.hart.itlb_entries = static_cast<size_t>(r.get_u64());
  core::TimingModel& t = cfg.hart.timing;
  t.base_cycles = r.get_u64();
  t.mul_cycles = r.get_u64();
  t.div_cycles = r.get_u64();
  t.mem_extra_cycles = r.get_u64();
  t.tlb_miss_per_access = r.get_u64();
  t.rocc_cycles = r.get_u64();
  t.trap_enter_cycles = r.get_u64();
  t.trap_return_cycles = r.get_u64();
  t.syscall_dispatch_cycles = r.get_u64();
  t.vma_lookup_cycles = r.get_u64();
  t.pte_update_cycles = r.get_u64();
  t.mprotect_rss_cycles_per_page = r.get_u64();
  t.tlb_flush_cycles = r.get_u64();
  t.pkey_bookkeeping_cycles = r.get_u64();
  t.fault_handler_cycles = r.get_u64();
  t.cam_refill_handler_cycles = r.get_u64();
  t.context_switch_cycles = r.get_u64();
  t.pkr_row_swap_cycles = r.get_u64();
  cfg.kernel.save_pkr_on_switch = r.get_bool();
  cfg.kernel.stack_pages = r.get_u64();
  cfg.kernel.sv48 = r.get_bool();
  cfg.mem_bytes = r.get_u64();
  cfg.preempt_quantum = r.get_u64();
  cfg.fault_plan.enabled = r.get_bool();
  cfg.fault_plan.seed = r.get_u64();
  cfg.fault_plan.rate = r.get_f64();
  cfg.fault_plan.cam_rate = r.get_f64();
  cfg.fault_plan.max_faults = r.get_u64();
  cfg.fault_plan.kinds = r.get_u32();
  cfg.audit_interval = r.get_u64();
  cfg.watchdog_trap_storm = r.get_u64();
  cfg.watchdog_livelock = r.get_u64();
  cfg.checkpoint_interval = r.get_u64();
  cfg.max_rollbacks = r.get_u64();
  if (version >= 2) {
    cfg.kernel.vkey_mru_slots = r.get_u32();
    cfg.kernel.vkey_lazy_sync = r.get_bool();
  }
  return cfg;
}

// --- hart --------------------------------------------------------------------

void save_hart(ByteWriter& w, core::Hart& hart) {
  for (unsigned i = 0; i < 32; ++i) w.put_u64(hart.reg(i));
  w.put_u64(hart.pc());
  w.put_u8(static_cast<u8>(hart.priv()));
  w.put_u64(hart.cycles());
  w.put_u64(hart.instret());
  const core::HartStats& s = hart.stats();
  w.put_u64(s.loads);
  w.put_u64(s.stores);
  w.put_u64(s.calls);
  w.put_u64(s.traps);
  w.put_u64(s.pkey_denials);
  w.put_u64(s.wrpkr_count);
  w.put_u64(s.rdpkr_count);
  w.put_u64(s.wrpkru_count);
  const core::CsrFile& c = hart.csrs();
  w.put_u64(c.sstatus);
  w.put_u64(c.stvec);
  w.put_u64(c.sscratch);
  w.put_u64(c.sepc);
  w.put_u64(c.scause);
  w.put_u64(c.stval);
  w.put_u64(c.satp);
  w.put_u64(c.spkinfo);
  w.put_u64(c.seal_start);
  w.put_u64(c.seal_end);
}

void load_hart(ByteReader& r, core::Hart& hart) {
  for (unsigned i = 0; i < 32; ++i) hart.set_reg(i, r.get_u64());
  hart.set_pc(r.get_u64());
  hart.set_priv(static_cast<core::Priv>(r.get_u8()));
  hart.set_cycles(r.get_u64());
  hart.set_instret(r.get_u64());
  core::HartStats s;
  s.loads = r.get_u64();
  s.stores = r.get_u64();
  s.calls = r.get_u64();
  s.traps = r.get_u64();
  s.pkey_denials = r.get_u64();
  s.wrpkr_count = r.get_u64();
  s.rdpkr_count = r.get_u64();
  s.wrpkru_count = r.get_u64();
  hart.set_stats(s);
  core::CsrFile& c = hart.csrs();
  c.sstatus = r.get_u64();
  c.stvec = r.get_u64();
  c.sscratch = r.get_u64();
  c.sepc = r.get_u64();
  c.scause = r.get_u64();
  c.stval = r.get_u64();
  c.satp = r.get_u64();
  c.spkinfo = r.get_u64();
  c.seal_start = r.get_u64();
  c.seal_end = r.get_u64();
}

void save_runloop(ByteWriter& w, const sim::Machine::RunLoopState& rl) {
  w.put_u64(rl.since_switch);
  w.put_u64(rl.trap_streak);
  w.put_u64(rl.last_trap_pc);
  w.put_u64(rl.stall_streak);
  w.put_u64(rl.next_audit);
  w.put_u64(rl.next_checkpoint);
}

void load_runloop(ByteReader& r, sim::Machine::RunLoopState& rl) {
  rl.since_switch = r.get_u64();
  rl.trap_streak = r.get_u64();
  rl.last_trap_pc = r.get_u64();
  rl.stall_streak = r.get_u64();
  rl.next_audit = r.get_u64();
  rl.next_checkpoint = r.get_u64();
}

// --- section plumbing --------------------------------------------------------

void append_section(ByteWriter& payload, u32 cc, ByteWriter&& body) {
  payload.put_u32(cc);
  payload.put_u64(body.size());
  payload.put_bytes(body.buffer().data(), body.size());
}

struct Section {
  u32 cc = 0;
  const u8* data = nullptr;
  u64 len = 0;

  ByteReader reader() const { return {data, static_cast<size_t>(len)}; }
};

// Validates the header (magic, version, length, checksum) and splits the
// payload into its section table. `version_out` (optional) receives the
// blob's format version — readers accept every version in
// [kMinFormatVersion, kFormatVersion] and decode version-dependent parts
// accordingly.
std::vector<Section> parse(const std::vector<u8>& blob,
                           u32* version_out = nullptr) {
  constexpr size_t kHeader = sizeof(kMagic) + 4 + 8 + 8;
  if (blob.size() < kHeader) fail("snapshot too short for header");
  ByteReader hdr(blob);
  char magic[8];
  hdr.get_bytes(reinterpret_cast<u8*>(magic), sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    fail("bad snapshot magic");
  }
  const u32 version = hdr.get_u32();
  if (version < kMinFormatVersion || version > kFormatVersion) {
    std::ostringstream os;
    os << "unsupported snapshot version " << version << " (supported "
       << kMinFormatVersion << ".." << kFormatVersion << ")";
    fail(os.str());
  }
  if (version_out != nullptr) *version_out = version;
  const u64 payload_len = hdr.get_u64();
  const u64 want_sum = hdr.get_u64();
  if (payload_len != blob.size() - kHeader) {
    fail("snapshot payload length mismatch (truncated or trailing bytes)");
  }
  const u8* payload = blob.data() + kHeader;
  if (checksum64(payload, static_cast<size_t>(payload_len)) != want_sum) {
    fail("snapshot checksum mismatch (corrupted file)");
  }

  std::vector<Section> sections;
  ByteReader r(payload, static_cast<size_t>(payload_len));
  while (!r.done()) {
    if (r.remaining() < 12) fail("truncated section header");
    Section sec;
    sec.cc = r.get_u32();
    sec.len = r.get_u64();
    if (sec.len > r.remaining()) fail("section overruns payload");
    sec.data = payload + r.position();
    std::vector<u8> skip(static_cast<size_t>(sec.len));
    r.get_bytes(skip.data(), skip.size());
    sections.push_back(sec);
  }
  return sections;
}

const Section* find(const std::vector<Section>& sections, u32 cc) {
  for (const auto& sec : sections) {
    if (sec.cc == cc) return &sec;
  }
  return nullptr;
}

const Section& need(const std::vector<Section>& sections, u32 cc) {
  const Section* sec = find(sections, cc);
  if (sec == nullptr) fail("snapshot missing section " + fourcc_name(cc));
  return *sec;
}

}  // namespace

std::vector<u8> save(sim::Machine& machine) {
  ByteWriter payload;
  {
    ByteWriter body;
    save_config(body, machine.config());
    append_section(payload, kSecConfig, std::move(body));
  }
  {
    ByteWriter body;
    save_hart(body, machine.hart());
    append_section(payload, kSecHart, std::move(body));
  }
  {
    ByteWriter body;
    machine.hart().pkr().save_state(body);
    append_section(payload, kSecPkr, std::move(body));
  }
  {
    ByteWriter body;
    machine.hart().seal_unit().save_state(body);
    append_section(payload, kSecSeal, std::move(body));
  }
  {
    ByteWriter body;
    body.put_u32(machine.hart().pkru().value());
    append_section(payload, kSecPkru, std::move(body));
  }
  {
    ByteWriter body;
    machine.hart().dtlb().save_state(body);
    append_section(payload, kSecDtlb, std::move(body));
  }
  {
    ByteWriter body;
    machine.hart().itlb().save_state(body);
    append_section(payload, kSecItlb, std::move(body));
  }
  {
    ByteWriter body;
    machine.mem().save_state(body);
    append_section(payload, kSecMem, std::move(body));
  }
  {
    ByteWriter body;
    machine.kernel().save_state(body);
    append_section(payload, kSecKernel, std::move(body));
  }
  {
    ByteWriter body;
    save_runloop(body, machine.runloop());
    append_section(payload, kSecRunLoop, std::move(body));
  }
  {
    ByteWriter body;
    machine.kernel().save_vkey_state(body);
    append_section(payload, kSecVkey, std::move(body));
  }
  if (machine.injector() != nullptr) {
    ByteWriter body;
    machine.injector()->save_state(body);
    append_section(payload, kSecInjector, std::move(body));
  }

  ByteWriter out;
  out.put_bytes(reinterpret_cast<const u8*>(kMagic), sizeof(kMagic));
  out.put_u32(kFormatVersion);
  out.put_u64(payload.size());
  out.put_u64(checksum64(payload.buffer()));
  out.put_bytes(payload.buffer().data(), payload.size());
  return out.take();
}

void restore(sim::Machine& machine, const std::vector<u8>& blob) {
  u32 version = 0;
  const std::vector<Section> sections = parse(blob, &version);
  try {
    // Config compatibility: the restoring machine must serialize to the
    // exact CFG bytes of the snapshot — the state sections are only
    // meaningful against identical geometry, flavour and timing. The
    // compare runs at the blob's version; a v1 blob predates the vkey
    // knobs, so the restoring machine must still carry their defaults.
    {
      const Section& sec = need(sections, kSecConfig);
      ByteWriter mine;
      save_config(mine, machine.config(), version);
      if (mine.size() != sec.len ||
          std::memcmp(mine.buffer().data(), sec.data,
                      static_cast<size_t>(sec.len)) != 0) {
        fail(
            "snapshot was taken under a different machine config "
            "(construct the machine with snapshot::config_from)");
      }
      if (version < 2) {
        const os::KernelConfig defaults;
        if (machine.config().kernel.vkey_mru_slots !=
                defaults.vkey_mru_slots ||
            machine.config().kernel.vkey_lazy_sync !=
                defaults.vkey_lazy_sync) {
          fail(
              "v1 snapshot predates vkey virtualization but the machine "
              "carries non-default vkey knobs");
        }
      }
    }
    if ((machine.injector() != nullptr) !=
        (find(sections, kSecInjector) != nullptr)) {
      fail("snapshot and machine disagree about fault injection");
    }

    {
      ByteReader r = need(sections, kSecHart).reader();
      load_hart(r, machine.hart());
    }
    {
      ByteReader r = need(sections, kSecPkr).reader();
      machine.hart().pkr().load_state(r);
    }
    {
      ByteReader r = need(sections, kSecSeal).reader();
      machine.hart().seal_unit().load_state(r);
    }
    {
      ByteReader r = need(sections, kSecPkru).reader();
      machine.hart().pkru().set(r.get_u32());
    }
    {
      ByteReader r = need(sections, kSecDtlb).reader();
      machine.hart().dtlb().load_state(r);
    }
    {
      ByteReader r = need(sections, kSecItlb).reader();
      machine.hart().itlb().load_state(r);
    }
    {
      ByteReader r = need(sections, kSecMem).reader();
      machine.mem().load_state(r);
    }
    {
      ByteReader r = need(sections, kSecKernel).reader();
      machine.kernel().load_state(r);
    }
    {
      ByteReader r = need(sections, kSecRunLoop).reader();
      load_runloop(r, machine.runloop());
    }
    if (version >= 2) {
      ByteReader r = need(sections, kSecVkey).reader();
      machine.kernel().load_vkey_state(r);
    }
    // v1 blobs predate the VKEY section: load_state already left every
    // process's vkey table null, which is exactly the pre-v2 state.
    if (machine.injector() != nullptr) {
      ByteReader r = need(sections, kSecInjector).reader();
      machine.injector()->load_state(r);
    }
    // Tracing state travels outside snapshots; re-seed the recorder's
    // pid/tid stamping context from the just-restored scheduler so events
    // published after this point stamp exactly as in an uninterrupted run.
    machine.reseed_recorder();
  } catch (const SnapshotError&) {
    throw;
  } catch (const std::exception& e) {
    fail(std::string("snapshot decode failed: ") + e.what());
  }
}

sim::MachineConfig config_from(const std::vector<u8>& blob) {
  u32 version = 0;
  const std::vector<Section> sections = parse(blob, &version);
  try {
    ByteReader r = need(sections, kSecConfig).reader();
    return load_config(r, version);
  } catch (const SnapshotError&) {
    throw;
  } catch (const std::exception& e) {
    fail(std::string("snapshot config decode failed: ") + e.what());
  }
}

Info info(const std::vector<u8>& blob) {
  Info out;
  const std::vector<Section> sections = parse(blob);
  constexpr size_t kHeader = sizeof(kMagic) + 4 + 8 + 8;
  ByteReader hdr(blob.data() + sizeof(kMagic), kHeader - sizeof(kMagic));
  out.version = hdr.get_u32();
  out.payload_len = hdr.get_u64();
  out.checksum = hdr.get_u64();
  out.checksum_ok = true;  // parse() already validated it
  for (const auto& sec : sections) {
    out.sections.push_back({fourcc_name(sec.cc), sec.len});
  }
  try {
    ByteReader r = need(sections, kSecHart).reader();
    for (unsigned i = 0; i < 32; ++i) r.get_u64();  // regs
    out.pc = r.get_u64();
    r.get_u8();  // priv
    out.cycles = r.get_u64();
    out.instret = r.get_u64();
  } catch (const std::exception& e) {
    fail(std::string("snapshot HART section decode failed: ") + e.what());
  }
  return out;
}

std::vector<std::string> diff(const std::vector<u8>& a,
                              const std::vector<u8>& b) {
  const std::vector<Section> sa = parse(a);
  const std::vector<Section> sb = parse(b);
  std::vector<std::string> lines;

  auto describe = [&](const Section& x, const Section& y) {
    std::ostringstream os;
    os << fourcc_name(x.cc) << ": differs (" << x.len << " vs " << y.len
       << " bytes)";
    if (x.len == y.len) {
      for (u64 i = 0; i < x.len; ++i) {
        if (x.data[i] != y.data[i]) {
          os << "; first at byte " << i;
          break;
        }
      }
    }
    if (x.cc == kSecHart && x.len == y.len) {
      ByteReader rx = x.reader();
      ByteReader ry = y.reader();
      for (unsigned i = 0; i < 32; ++i) {
        const u64 vx = rx.get_u64();
        const u64 vy = ry.get_u64();
        if (vx != vy) os << "; x" << i << "=0x" << std::hex << vx << "/0x"
                         << vy << std::dec;
      }
      const u64 pcx = rx.get_u64();
      const u64 pcy = ry.get_u64();
      if (pcx != pcy) os << "; pc=0x" << std::hex << pcx << "/0x" << pcy
                         << std::dec;
      rx.get_u8();
      ry.get_u8();
      const u64 cx = rx.get_u64();
      const u64 cy = ry.get_u64();
      if (cx != cy) os << "; cycles=" << cx << "/" << cy;
      const u64 ix = rx.get_u64();
      const u64 iy = ry.get_u64();
      if (ix != iy) os << "; instret=" << ix << "/" << iy;
    }
    if (x.cc == kSecMem) {
      ByteReader rx = x.reader();
      ByteReader ry = y.reader();
      rx.get_u64();
      ry.get_u64();  // size
      os << "; resident pages " << rx.get_u64() << "/" << ry.get_u64();
    }
    return os.str();
  };

  for (const auto& sec : sa) {
    const Section* other = find(sb, sec.cc);
    if (other == nullptr) {
      lines.push_back(fourcc_name(sec.cc) + ": only in first snapshot");
      continue;
    }
    if (sec.len != other->len ||
        std::memcmp(sec.data, other->data, static_cast<size_t>(sec.len)) !=
            0) {
      lines.push_back(describe(sec, *other));
    }
  }
  for (const auto& sec : sb) {
    if (find(sa, sec.cc) == nullptr) {
      lines.push_back(fourcc_name(sec.cc) + ": only in second snapshot");
    }
  }
  return lines;
}

std::vector<u8> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open snapshot file: " + path);
  std::vector<u8> blob((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (in.bad()) fail("read failed: " + path);
  return blob;
}

void write_file(const std::string& path, const std::vector<u8>& blob) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail("cannot create snapshot file: " + path);
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  out.flush();
  if (!out) fail("write failed: " + path);
}

}  // namespace sealpk::snapshot
