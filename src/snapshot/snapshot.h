// Crash-consistent machine snapshots (versioned, checksummed, canonical).
//
// A snapshot is the complete state of a sim::Machine — hart registers and
// CSRs, PKR SRAM with parity, SealReg + PK-CAM, PKRU, both TLBs, sparse
// physical memory (page tables and PTE pkey bits included, since they live
// in DRAM), the full kernel truth (process table, VMAs, key managers,
// scheduler), the fault injector's RNG stream and event log, and the run
// loop's watchdog/audit/checkpoint schedules. Restoring a snapshot into a
// machine built from config_from() and resuming produces execution that is
// bit-identical to the uninterrupted run: same guest output, same retired
// instruction count, same statistics.
//
// The encoding is canonical (sorted pages, sorted maps, no uninitialised
// padding), so two machines with equal state serialize to byte-identical
// blobs — which is what lets tests and the rollback oracle compare whole
// snapshots instead of cherry-picked fields.
//
// On-disk layout:
//   8-byte magic "SPKSNAP1" | u32 version | u64 payload_len |
//   u64 fnv1a64(payload) | payload
// The payload is a sequence of sections, each `fourcc u32 | u64 len | body`,
// in fixed order: CFG, HART, PKR, SEAL, PKRU, DTLB, ITLB, MEM, KERN, RUNS,
// VKEY (format v2+), and FINJ last iff the machine carries a fault injector.
//
// Version history:
//   1  initial format (the committed golden blob pins this layout)
//   2  adds the VKEY section (per-process vkey tables, src/mpk) and two
//      vkey policy knobs at the tail of CFG. Writers emit v2; readers
//      accept v1 (no vkey state: tables restore to null, and the restoring
//      machine must carry default vkey knobs since the save predates them).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "common/bits.h"
#include "sim/machine.h"

namespace sealpk::snapshot {

constexpr u32 kFormatVersion = 2;
constexpr u32 kMinFormatVersion = 1;  // oldest version readers still accept

// Typed failure for malformed, truncated, corrupted or incompatible
// snapshots — distinct from CheckError so callers can tell "bad snapshot"
// from "broken machine invariant".
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error(what) {}
};

// Serializes the machine's complete state. Non-const because component
// accessors are non-const; the machine is not modified.
std::vector<u8> save(sim::Machine& machine);

// Restores `blob` into `machine`, which must have been constructed with a
// config byte-identical to the snapshot's (use config_from). Throws
// SnapshotError on any validation failure. NOT transactional: a throw can
// leave the machine partially restored.
void restore(sim::Machine& machine, const std::vector<u8>& blob);

// The machine configuration a snapshot was taken under, so a restoring
// process can construct a compatible machine. Hooks (admission gates,
// fault callbacks) do not serialize and come back empty; the machine
// re-wires its own.
sim::MachineConfig config_from(const std::vector<u8>& blob);

struct SectionInfo {
  std::string name;
  u64 size = 0;
};

struct Info {
  u32 version = 0;
  u64 payload_len = 0;
  u64 checksum = 0;
  bool checksum_ok = false;
  u64 instret = 0;  // retired instructions at save time
  u64 cycles = 0;
  u64 pc = 0;
  std::vector<SectionInfo> sections;
};

// Parses the header and section table (validating magic, version, length
// and checksum — throws SnapshotError if any fail).
Info info(const std::vector<u8>& blob);

// Section-level comparison of two snapshots: one human-readable line per
// difference, empty when the blobs are equivalent. Both blobs must be
// valid snapshots (throws SnapshotError otherwise).
std::vector<std::string> diff(const std::vector<u8>& a,
                              const std::vector<u8>& b);

// File helpers (binary, whole-file). Throw SnapshotError on I/O failure.
std::vector<u8> read_file(const std::string& path);
void write_file(const std::string& path, const std::vector<u8>& blob);

}  // namespace sealpk::snapshot
