#include "snapshot/episode.h"

#include "fleet/engine.h"
#include "fleet/image_cache.h"

namespace sealpk::snapshot {

EpisodeResult run_rollback_episode(const EpisodeConfig& cfg) {
  const wl::Workload* workload = nullptr;
  for (const wl::Workload& w : wl::all_workloads()) {
    if (cfg.workload == w.name) {
      workload = &w;
      break;
    }
  }
  SEALPK_CHECK_MSG(workload != nullptr,
                   "unknown episode workload " << cfg.workload);

  fleet::JobSpec spec;
  spec.workload = workload;
  spec.scale = cfg.scale;
  spec.kind = fleet::JobKind::kChaosDiff;
  // PKR flips with no trusted shadow are unrecoverable machine checks;
  // with checkpointing armed every kill becomes a rollback, which is the
  // arc the span layer renders as checkpoint/rollback windows.
  spec.config.kernel.save_pkr_on_switch = false;
  spec.config.checkpoint_interval = cfg.checkpoint_interval;
  spec.config.max_rollbacks = cfg.max_rollbacks;
  spec.config.fault_plan.enabled = true;
  spec.config.fault_plan.seed = cfg.chaos_seed;
  spec.config.fault_plan.rate = cfg.chaos_rate;
  spec.config.fault_plan.max_faults = cfg.max_faults;
  spec.config.fault_plan.kinds = fault::kind_bit(fault::FaultKind::kPkrBitFlip);
  spec.config.trace.enabled = true;
  spec.keep_trace_blob = true;

  fleet::ImageCache cache;
  const fleet::JobResult job = fleet::execute_job(spec, cache);

  EpisodeResult r;
  r.ok = job.ok;
  r.checkpoints = job.stats.checkpoints;
  r.rollbacks = job.stats.rollbacks;
  r.verdict = job.verdict;
  if (!job.trace_blob.empty()) r.trace = obs::parse(job.trace_blob);
  return r;
}

}  // namespace sealpk::snapshot
