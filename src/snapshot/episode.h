// Deterministic traced checkpoint/rollback episodes (DESIGN.md §16).
//
// The span layer turns kCheckpoint/kRollback events into checkpoint
// windows and rollback spans; this driver produces a canonical workload
// that *has* some: a fixed chaos plan of unrecoverable PKR flips (no
// trusted PKR shadow) against a checkpointing machine, so every kill is
// absorbed by a snapshot rollback and the trace carries the full
// checkpoint → corruption → rewind arc. Everything is seeded, so the
// captured trace — and every span/histogram derived from it — is
// byte-identical across hosts, runs and fleet thread counts.
//
// Lives beside src/snapshot (whose checkpoint/rollback machinery it
// exercises) but links the fleet job runner, so it ships as its own
// library (repro_episode) to keep repro_snapshot leaf-level.
#pragma once

#include <string>

#include "obs/recorder.h"

namespace sealpk::snapshot {

struct EpisodeConfig {
  std::string workload = "qsort";  // Fig-5 workload name
  u64 scale = 1;
  u64 checkpoint_interval = 25'000;  // instructions between checkpoints
  u64 max_rollbacks = 8;
  u64 chaos_seed = 11;
  double chaos_rate = 1e-4;
  u64 max_faults = 2;
};

struct EpisodeResult {
  bool ok = false;      // differential oracle passed (identical output)
  u64 checkpoints = 0;  // taken during the chaos run
  u64 rollbacks = 0;
  std::string verdict;  // the fleet oracle's one-liner
  obs::Trace trace;     // full event stream of the chaos run
};

EpisodeResult run_rollback_episode(const EpisodeConfig& cfg);

}  // namespace sealpk::snapshot
