// Shadow-stack instrumentation pass (paper §V-B).
//
// Reproduces the paper's LLVM passes as a rewrite over the assembler IR:
// every instrumentable function's prologue pushes the return address onto a
// separate shadow stack and every epilogue pops and compares it, aborting
// on mismatch (a caught ROP attempt). Five variants, matching Figure 5:
//
//   kInline     — front-end-style inline push/pop; shadow stack unprotected.
//   kFunc       — push/pop through helper calls; still unprotected.
//   kSealPkWr   — kFunc + the shadow stack lives in a SealPK read-only
//                 domain; the push helper toggles write permission with
//                 *blind* WRPKR row writes (does not preserve the other
//                 keys in the row).
//   kSealPkRdWr — same, but each toggle is an RDPKR / modify / WRPKR
//                 read-modify-write preserving the rest of the row.
//   kMprotect   — the comparison point: mprotect(RW) / mprotect(R) syscalls
//                 around each push.
//
// ABI: s10 = shadow-stack pointer (grows upward), s11 = pkey (SealPK
// variants) or shadow-stack base (mprotect variant). t2..t6 are clobbered
// at function boundaries (caller-saved there anyway).
#pragma once

#include "isa/program.h"

namespace sealpk::passes {

enum class ShadowStackKind : u8 {
  kNone,
  kInline,
  kFunc,
  kSealPkWr,
  kSealPkRdWr,
  kMprotect,
};

const char* shadow_stack_kind_name(ShadowStackKind kind);

struct ShadowStackOptions {
  ShadowStackKind kind = ShadowStackKind::kNone;
  u64 ss_pages = 1;  // shadow-stack size (4 KiB pages; 512 entries each)
  // Apply pkey_seal(pkey, domain, page) after setup, as §V-B describes
  // ("we leverage the domain and page sealing features to protect the
  // allocated domain and pages of the shadow stack"). SealPK variants only.
  bool seal_domain_and_pages = true;
  // Restrict WRPKR to the push helper's address range via seal.start /
  // seal.end + pkey_perm_seal. SealPK variants only.
  bool perm_seal = false;
  // Guest exit code used when a return-address mismatch is detected.
  i64 abort_code = 139;
  // Ablation: skip functions that make no calls. A common compiler-pass
  // optimisation (a leaf's return address never leaves ra), but it opens a
  // gap: an attacker who corrupts a *stack-spilled* ra in a leaf goes
  // undetected. Off by default, matching the paper's all-functions passes.
  bool skip_leaf_functions = false;
};

// Rewrites `prog` in place; must run before link(). Adds the __ss_* runtime
// (init, push/pop helpers, data) and prepends the init call to `_start`.
void apply_shadow_stack(isa::Program& prog, const ShadowStackOptions& opts);

}  // namespace sealpk::passes
