#include "passes/shadow_stack.h"

#include "common/check.h"
#include "os/syscall_abi.h"
#include "runtime/guest.h"

using namespace sealpk::isa;

namespace sealpk::passes {

namespace {

constexpr u64 kPageSize = 4096;

bool uses_pkeys(ShadowStackKind kind) {
  return kind == ShadowStackKind::kSealPkWr ||
         kind == ShadowStackKind::kSealPkRdWr;
}

// Emits the inline abort sequence (return-address mismatch detected).
void emit_abort(Function& f, i64 code) {
  f.li(a0, code);
  rt::syscall(f, os::sys::kExit);
}

// Builds the shared pop/verify helper: expects the function's return
// address in t5; aborts on mismatch with the shadow copy.
void add_pop_helper(Program& prog, const ShadowStackOptions& opts) {
  Function& f = prog.add_function("__ss_pop");
  f.instrumentable = false;
  const Label ok = f.new_label();
  f.addi(s10, s10, -8);
  f.ld(t6, 0, s10);
  f.beq(t6, t5, ok);
  emit_abort(f, opts.abort_code);
  f.bind(ok);
  f.ret();
}

// Builds the push helper for each variant: expects the return address to
// push in t5.
void add_push_helper(Program& prog, const ShadowStackOptions& opts) {
  Function& f = prog.add_function("__ss_push");
  f.instrumentable = false;
  switch (opts.kind) {
    case ShadowStackKind::kFunc:
      f.sd(t5, 0, s10);
      f.addi(s10, s10, 8);
      break;

    case ShadowStackKind::kSealPkWr:
      // Blind row writes: the new 64-bit row value is loaded from data
      // (computed once at init); other keys in the row are not preserved.
      if (opts.perm_seal) f.seal_start(0);
      f.la(t6, "__ss_row_rw");
      f.ld(t6, 0, t6);
      f.wrpkr(s11, t6);  // write-enable the shadow-stack domain
      f.sd(t5, 0, s10);
      f.addi(s10, s10, 8);
      f.la(t6, "__ss_row_ro");
      f.ld(t6, 0, t6);
      f.wrpkr(s11, t6);  // back to read-only
      break;

    case ShadowStackKind::kSealPkRdWr:
      // Read-modify-write toggles preserving the rest of the row.
      if (opts.perm_seal) f.seal_start(0);
      f.la(t4, "__ss_mask");
      f.ld(t4, 0, t4);
      f.rdpkr(t6, s11);
      f.and_(t6, t6, t4);  // field := 00 (read+write enabled)
      f.wrpkr(s11, t6);
      f.sd(t5, 0, s10);
      f.addi(s10, s10, 8);
      f.rdpkr(t6, s11);
      f.and_(t6, t6, t4);
      f.la(t3, "__ss_ro_bits");
      f.ld(t3, 0, t3);
      f.or_(t6, t6, t3);  // field := 01 (read-only)
      f.wrpkr(s11, t6);
      break;

    case ShadowStackKind::kMprotect: {
      // The comparison point: two mprotect syscalls around the push. The
      // helper must preserve the argument registers it clobbers — they are
      // live at function entry.
      const i64 ss_bytes = static_cast<i64>(opts.ss_pages * kPageSize);
      f.addi(sp, sp, -32);
      f.sd(a0, 0, sp);
      f.sd(a1, 8, sp);
      f.sd(a2, 16, sp);
      f.sd(a7, 24, sp);
      f.mv(a0, s11);  // shadow-stack base
      f.li(a1, ss_bytes);
      f.li(a2, static_cast<i64>(os::prot::kRead | os::prot::kWrite));
      rt::syscall(f, os::sys::kMprotect);
      f.sd(t5, 0, s10);
      f.addi(s10, s10, 8);
      f.mv(a0, s11);
      f.li(a1, ss_bytes);
      f.li(a2, static_cast<i64>(os::prot::kRead));
      rt::syscall(f, os::sys::kMprotect);
      f.ld(a0, 0, sp);
      f.ld(a1, 8, sp);
      f.ld(a2, 16, sp);
      f.ld(a7, 24, sp);
      f.addi(sp, sp, 32);
      break;
    }

    case ShadowStackKind::kInline:
    case ShadowStackKind::kNone:
      SEALPK_CHECK_MSG(false, "no push helper for this variant");
  }
  f.ret();
}

// Sentinel marking the end of the WRPKR-permissible range; placed directly
// after __ss_push in the layout so [first insn of __ss_push, first insn of
// __ss_range_end] covers every WRPKR.
void add_range_end(Program& prog) {
  Function& f = prog.add_function("__ss_range_end");
  f.instrumentable = false;
  f.seal_end(0);
  f.ret();
}

// __ss_init: mmap the shadow stack, set up s10/s11, and (SealPK variants)
// allocate + assign + seal the protection domain.
void add_init(Program& prog, const ShadowStackOptions& opts) {
  const i64 ss_bytes = static_cast<i64>(opts.ss_pages * kPageSize);
  Function& f = prog.add_function("__ss_init");
  f.instrumentable = false;
  f.addi(sp, sp, -16);
  f.sd(ra, 0, sp);

  // shadow stack = mmap(0, ss_bytes, RW)
  f.li(a0, 0);
  f.li(a1, ss_bytes);
  f.li(a2, static_cast<i64>(os::prot::kRead | os::prot::kWrite));
  rt::syscall(f, os::sys::kMmap);
  f.mv(s10, a0);
  f.mv(s11, a0);
  f.la(t0, "__ss_base");
  f.sd(a0, 0, t0);

  if (uses_pkeys(opts.kind)) {
    // pkey = pkey_alloc(0, read-only)
    f.li(a0, 0);
    f.li(a1, static_cast<i64>(os::pkeyperm::kReadOnly));
    rt::syscall(f, os::sys::kPkeyAlloc);
    f.mv(s11, a0);
    // pkey_mprotect(base, ss_bytes, R|W, pkey)
    f.la(t0, "__ss_base");
    f.ld(a0, 0, t0);
    f.li(a1, ss_bytes);
    f.li(a2, static_cast<i64>(os::prot::kRead | os::prot::kWrite));
    f.mv(a3, s11);
    rt::syscall(f, os::sys::kPkeyMprotect);
    // Precompute the row constants the push helper loads:
    //   __ss_mask    = ~(0b11 << (2*slot))
    //   __ss_ro_bits =   0b01 << (2*slot)   (write-disable)
    //   __ss_row_ro  = same as __ss_ro_bits (row built from scratch)
    //   __ss_row_rw  = 0 (blind write: everything permissive)
    f.andi(t1, s11, 31);
    f.slli(t1, t1, 1);
    f.li(t2, 3);
    f.sll(t2, t2, t1);
    f.not_(t2, t2);
    f.la(t0, "__ss_mask");
    f.sd(t2, 0, t0);
    f.li(t3, 1);
    f.sll(t3, t3, t1);
    f.la(t0, "__ss_ro_bits");
    f.sd(t3, 0, t0);
    f.la(t0, "__ss_row_ro");
    f.sd(t3, 0, t0);
    f.la(t0, "__ss_row_rw");
    f.sd(zero, 0, t0);
    if (opts.seal_domain_and_pages) {
      // pkey_seal(pkey, seal_domain=1, seal_page=1): after this neither the
      // domain's pages nor its membership can change (§V-B).
      f.mv(a0, s11);
      f.li(a1, 1);
      f.li(a2, 1);
      rt::syscall(f, os::sys::kPkeySeal);
    }
    if (opts.perm_seal) {
      // Latch the permissible range by executing one dummy push (its first
      // instruction is seal.start) and the range-end sentinel, then commit
      // the one-time fuse with pkey_perm_seal.
      f.mv(t5, zero);
      f.call("__ss_push");
      f.call("__ss_range_end");
      f.addi(s10, s10, -8);  // discard the dummy entry
      f.mv(a0, s11);
      rt::syscall(f, os::sys::kPkeyPermSeal);
    }
  } else if (opts.kind == ShadowStackKind::kMprotect) {
    // Start read-only; pushes toggle with mprotect.
    f.mv(a0, s11);
    f.li(a1, ss_bytes);
    f.li(a2, static_cast<i64>(os::prot::kRead));
    rt::syscall(f, os::sys::kMprotect);
  }

  f.ld(ra, 0, sp);
  f.addi(sp, sp, 16);
  f.ret();
}

std::vector<Item> make_prologue(Function& f, const ShadowStackOptions& opts) {
  Function scratch(f.name() + "$prologue");
  if (opts.kind == ShadowStackKind::kInline) {
    scratch.sd(ra, 0, s10);
    scratch.addi(s10, s10, 8);
  } else {
    scratch.mv(t5, ra);
    scratch.call("__ss_push");
    scratch.mv(ra, t5);
  }
  return scratch.items();
}

// The epilogue needs fresh labels from the *target* function for the inline
// variant, so it is built per call site.
void append_epilogue(Function& target, std::vector<Item>& out,
                     const ShadowStackOptions& opts) {
  Function scratch(target.name() + "$epilogue");
  if (opts.kind == ShadowStackKind::kInline) {
    // The label must come from the *target* function's label space, so the
    // branch and bind items are appended as raw items rather than through
    // the scratch builder.
    const Label ok = target.new_label();
    scratch.addi(s10, s10, -8);
    scratch.ld(t5, 0, s10);
    out.insert(out.end(), scratch.items().begin(), scratch.items().end());
    Item branch;
    branch.kind = Item::Kind::kBranch;
    branch.inst = Inst{.op = Op::kBeq, .rs1 = t5, .rs2 = ra};
    branch.label = ok;
    out.push_back(branch);
    Function abort_scratch(target.name() + "$abort");
    emit_abort(abort_scratch, opts.abort_code);
    out.insert(out.end(), abort_scratch.items().begin(),
               abort_scratch.items().end());
    Item bind;
    bind.kind = Item::Kind::kBind;
    bind.label = ok;
    out.push_back(bind);
    return;
  }
  scratch.mv(t5, ra);
  scratch.call("__ss_pop");
  scratch.mv(ra, t5);
  out.insert(out.end(), scratch.items().begin(), scratch.items().end());
}

}  // namespace

const char* shadow_stack_kind_name(ShadowStackKind kind) {
  switch (kind) {
    case ShadowStackKind::kNone: return "baseline";
    case ShadowStackKind::kInline: return "Inline";
    case ShadowStackKind::kFunc: return "Func";
    case ShadowStackKind::kSealPkWr: return "SealPK-WR";
    case ShadowStackKind::kSealPkRdWr: return "SealPK-RD+WR";
    case ShadowStackKind::kMprotect: return "mprotect";
  }
  return "?";
}

void apply_shadow_stack(Program& prog, const ShadowStackOptions& opts) {
  if (opts.kind == ShadowStackKind::kNone) return;
  SEALPK_CHECK_MSG(prog.find_function("_start") != nullptr,
                   "shadow-stack pass needs a crt0 (_start)");
  SEALPK_CHECK_MSG(prog.find_function("__ss_init") == nullptr,
                   "shadow-stack pass applied twice");

  // Rewrite prologues/epilogues of the pre-existing functions.
  for (auto& f : prog.functions()) {
    if (!f.instrumentable) continue;
    if (opts.skip_leaf_functions) {
      bool makes_calls = false;
      for (const Item& item : f.items()) {
        if (item.kind == Item::Kind::kCall) {
          makes_calls = true;
          break;
        }
      }
      if (!makes_calls) continue;  // leaf: ra never touches memory
    }
    std::vector<Item> rewritten = make_prologue(f, opts);
    for (const Item& item : f.items()) {
      if (item.kind == Item::Kind::kRet) {
        append_epilogue(f, rewritten, opts);
      }
      rewritten.push_back(item);
    }
    f.items() = std::move(rewritten);
  }

  // Runtime pieces. Order matters for the permissible range: __ss_push
  // first, the range-end sentinel directly after it.
  prog.add_zero("__ss_base", 8);
  if (uses_pkeys(opts.kind)) {
    prog.add_zero("__ss_mask", 8);
    prog.add_zero("__ss_ro_bits", 8);
    prog.add_zero("__ss_row_rw", 8);
    prog.add_zero("__ss_row_ro", 8);
  }
  if (opts.kind != ShadowStackKind::kInline) {
    add_push_helper(prog, opts);
    if (uses_pkeys(opts.kind) && opts.perm_seal) add_range_end(prog);
    add_pop_helper(prog, opts);
  }
  add_init(prog, opts);

  // Prepend `call __ss_init` to _start.
  Function& start = *prog.find_function("_start");
  Function scratch("$start_prefix");
  scratch.call("__ss_init");
  auto& items = start.items();
  items.insert(items.begin(), scratch.items().begin(),
               scratch.items().end());
}

}  // namespace sealpk::passes
