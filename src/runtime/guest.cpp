#include "runtime/guest.h"

using namespace sealpk::isa;

namespace sealpk::rt {

Function& add_crt0(Program& prog, const std::string& main_fn) {
  Function& f = prog.add_function("_start");
  f.instrumentable = false;
  f.call(main_fn);
  syscall(f, os::sys::kExit);  // exit(main's a0)
  return f;
}

void add_pkey_lib(Program& prog) {
  if (prog.find_function("__pkey_set") != nullptr) return;

  {
    // __pkey_set(pkey, perm): RDPKR row; splice the 2-bit field; WRPKR.
    Function& f = prog.add_function("__pkey_set");
    f.instrumentable = false;
    f.rdpkr(t0, a0);        // t0 = 64-bit row
    f.andi(t1, a0, 31);     // slot
    f.slli(t1, t1, 1);      // bit offset = 2 * slot
    f.li(t2, 3);
    f.sll(t2, t2, t1);      // field mask at offset
    f.not_(t3, t2);
    f.and_(t0, t0, t3);     // clear the field
    f.andi(t4, a1, 3);
    f.sll(t4, t4, t1);
    f.or_(t0, t0, t4);      // insert the new value
    f.wrpkr(a0, t0);
    f.ret();
  }
  {
    // __pkey_set_blind(pkey, perm): build the row from scratch (other keys
    // in the row become 00) and WRPKR it — no RDPKR.
    Function& f = prog.add_function("__pkey_set_blind");
    f.instrumentable = false;
    f.andi(t1, a0, 31);
    f.slli(t1, t1, 1);
    f.andi(t0, a1, 3);
    f.sll(t0, t0, t1);
    f.wrpkr(a0, t0);
    f.ret();
  }
  {
    // __pkey_get(pkey) -> perm
    Function& f = prog.add_function("__pkey_get");
    f.instrumentable = false;
    f.rdpkr(t0, a0);
    f.andi(t1, a0, 31);
    f.slli(t1, t1, 1);
    f.srl(t0, t0, t1);
    f.andi(a0, t0, 3);
    f.ret();
  }
}

void add_rand_lib(Program& prog) {
  if (prog.find_function("__rand") != nullptr) return;
  Function& f = prog.add_function("__rand");
  f.instrumentable = false;
  f.ld(t0, 0, a0);  // x = state
  f.slli(t1, t0, 13);
  f.xor_(t0, t0, t1);
  f.srli(t1, t0, 7);
  f.xor_(t0, t0, t1);
  f.slli(t1, t0, 17);
  f.xor_(t0, t0, t1);
  f.sd(t0, 0, a0);  // state = x
  f.li(t1, static_cast<i64>(0x2545F4914F6CDD1DULL));
  f.mul(a0, t0, t1);
  f.ret();
}

void add_print_lib(Program& prog) {
  if (prog.find_function("__print_str") != nullptr) return;
  prog.add_zero("__print_buf", 32);
  {
    Function& f = prog.add_function("__print_str");
    f.instrumentable = false;
    f.mv(a2, a1);
    f.mv(a1, a0);
    f.li(a0, 1);
    syscall(f, os::sys::kWrite);
    f.ret();
  }
  {
    // Unsigned decimal conversion into the scratch buffer, then write(1).
    Function& f = prog.add_function("__print_u64");
    f.instrumentable = false;
    const Label loop = f.new_label();
    f.la(t0, "__print_buf");
    f.addi(t1, t0, 21);  // build digits backwards from the buffer end
    f.li(t3, 10);
    f.bind(loop);
    f.remu(t2, a0, t3);
    f.addi(t2, t2, '0');
    f.addi(t1, t1, -1);
    f.sb(t2, 0, t1);
    f.divu(a0, a0, t3);
    f.bnez(a0, loop);
    f.la(t0, "__print_buf");
    f.addi(t0, t0, 21);
    f.sub(a2, t0, t1);  // length
    f.mv(a1, t1);
    f.li(a0, 1);
    syscall(f, os::sys::kWrite);
    f.ret();
  }
  {
    Function& f = prog.add_function("__print_nl");
    f.instrumentable = false;
    f.la(t0, "__print_buf");
    f.li(t1, 0x0A);
    f.sb(t1, 31, t0);
    f.addi(a1, t0, 31);
    f.li(a2, 1);
    f.li(a0, 1);
    syscall(f, os::sys::kWrite);
    f.ret();
  }
}

}  // namespace sealpk::rt
