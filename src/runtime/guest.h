// Guest runtime: crt0, inline-syscall emitters and a small guest "libc"
// (pkey_set & friends) shared by workloads, examples and tests.
//
// Register conventions on top of the standard RISC-V ABI:
//   s10 — shadow-stack pointer (when shadow-stack instrumentation is on)
//   s11 — instrumentation scratch (pkey or shadow-stack base)
// Workload code must not use s10/s11; everything else is ordinary ABI.
#pragma once

#include <string>

#include "isa/program.h"
#include "os/syscall_abi.h"

namespace sealpk::rt {

// Emits `li a7, nr; ecall`. Arguments must already sit in a0..a5. The
// kernel returns the result in a0 and preserves all other registers.
inline isa::Function& syscall(isa::Function& f, u64 nr) {
  f.li(isa::a7, static_cast<i64>(nr));
  f.ecall();
  return f;
}

// Emits exit(code-in-a0).
inline isa::Function& emit_exit(isa::Function& f) {
  return syscall(f, os::sys::kExit);
}

// Adds `_start`: calls `main_fn`, then exit(a0). Returns the crt0 function
// so instrumentation passes can prepend their setup.
isa::Function& add_crt0(isa::Program& prog,
                        const std::string& main_fn = "main");

// Adds the guest pkey helpers (idempotent):
//   __pkey_set(a0 = pkey, a1 = 2-bit perm)
//     read-modify-write of the key's 2-bit PKR field (RDPKR + WRPKR),
//     preserving every other key in the row — the safe user-space
//     equivalent of the paper's pkey_set().
//   __pkey_set_blind(a0 = pkey, a1 = 2-bit perm)
//     WRPKR of a freshly-built row value (every other key in the row is
//     reset to 00) — the cheaper write-only update of the SealPK-WR
//     variant.
//   __pkey_get(a0 = pkey) -> a0 = 2-bit perm
void add_pkey_lib(isa::Program& prog);

// Adds a deterministic guest xorshift64 PRNG (idempotent):
//   __rand(a0 = state_ptr) -> a0 = next 64-bit value (state updated)
void add_rand_lib(isa::Program& prog);

// Adds console-output helpers built on write(2) (idempotent):
//   __print_str(a0 = ptr, a1 = len)
//   __print_u64(a0 = value)   — unsigned decimal
//   __print_nl()
// All clobber a0-a2/a7 and t-registers (ordinary caller-saved rules).
void add_print_lib(isa::Program& prog);

}  // namespace sealpk::rt
