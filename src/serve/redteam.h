// Garmr-style adversarial suite for the serve request plane.
//
// Every attack is a deliberately hostile plugin body (or fault plan)
// registered together with the layer that is REQUIRED to catch it — the
// static verifier's admission gate, the hardware seal/permission checks,
// the gate's own monotonic PKR check, the MachineAuditor, or the request
// plane's per-request instruction budget. tests/test_serve.cpp asserts,
// per attack, that the declared catcher fired, that the monitor canary was
// never reached, and that the server kept serving.
#pragma once

#include <string>
#include <vector>

#include "common/bits.h"

namespace sealpk::serve::redteam {

// Which hostile body build_server() plants in __handler_0 (kPkrGlitch
// leaves the handlers benign and attacks through the fault injector).
enum class AttackKind : u8 {
  kNone = 0,
  kGadgetWrpkr,      // literal WRPKR gadget in plugin text
  kRogueWrpkr,       // out-of-range WRPKR naming a perm-sealed key at run
                     // time (admission gate bypassed: models JIT'd code)
  kMonitorTamper,    // plugin stores straight into the monitor page
  kStackTamper,      // sprays the shared stack, then reaches for the
                     // monitor-held loop state
  kForgedPkrFlow,    // re-enters the call gate with a forged return path
  kGateExitHijack,   // jumps past the gate's handler-key drop on exit
  kInterruptedGate,  // sibling thread probes monitor memory across
                     // preemption traps landing inside half-open gates
  kRunawayHandler,   // infinite loop: never returns through the gate
  kPkrGlitch,        // seeded PKR bit flips via the FaultInjector
  kVaultProbe,       // plugin loads straight from the write-only vault
  kForgedUnseal,     // plugin ecalls vault_unseal with the owner key closed
};

// The layer contractually responsible for stopping the attack.
enum class Catcher : u8 {
  kVerifier,  // sealpk-verify admission gate (load refused)
  kHardware,  // seal/permission check -> delivered fault, attempt poisoned
  kGate,      // the gate's own post-exit monotonic RDPKR check
  kAuditor,   // MachineAuditor scrub / machine-check kill
  kWatchdog,  // per-request instruction budget (request-plane timeout)
  kVault,     // the kernel's vault ownership gate (denial notarised)
};

const char* catcher_name(Catcher catcher);

struct Attack {
  AttackKind kind = AttackKind::kNone;
  const char* name = "";
  Catcher catcher = Catcher::kHardware;
  const char* description = "";
};

// The registry, in canonical order (excludes kNone).
const std::vector<Attack>& attacks();

// nullptr when `name` is not a registered attack.
const Attack* find_attack(const std::string& name);

// Deterministic evidence the serve engine accumulates across epochs; the
// per-catcher predicates below decide "caught" from it.
struct CatchEvidence {
  bool verifier_refused = false;     // load refused under kEnforce
  u64 gate_escape_findings = 0;      // Check::kGateEscape errors
  u64 seal_violations = 0;           // hardware sealed-WRPKR check
  u64 monitor_denials = 0;           // delivered pkey faults on the monitor
                                     // key (stores/loads that never landed)
  u64 gate_scrubs = 0;               // post-exit RDPKR mismatches scrubbed
  u64 budget_timeouts = 0;           // request-budget epoch kills
  u64 faults_injected = 0;           // injector firings (kPkrGlitch)
  u64 faults_recovered_or_killed = 0;
  u64 probe_attempts = 0;            // sibling-thread probes issued
  u64 probe_successes = 0;           // sibling-thread probes that landed
  u64 vault_probe_denials = 0;       // delivered pkey faults on the vault
                                     // key (reads of write-only storage)
  u64 unseal_denials = 0;            // kernel vault ownership rejections
  u64 vault_leaks = 0;               // successful unseals — none is
                                     // legitimate in this workload
};

// True when `evidence` shows the declared catcher actually fired (and, for
// kHardware probes, that nothing got through).
bool caught_by(Catcher catcher, const CatchEvidence& evidence);

}  // namespace sealpk::serve::redteam
