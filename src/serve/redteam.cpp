#include "serve/redteam.h"

namespace sealpk::serve::redteam {

const char* catcher_name(Catcher catcher) {
  switch (catcher) {
    case Catcher::kVerifier: return "verifier";
    case Catcher::kHardware: return "hardware";
    case Catcher::kGate: return "gate";
    case Catcher::kAuditor: return "auditor";
    case Catcher::kWatchdog: return "watchdog";
    case Catcher::kVault: return "vault";
  }
  return "?";
}

const std::vector<Attack>& attacks() {
  static const std::vector<Attack> kAttacks = {
      {AttackKind::kGadgetWrpkr, "gadget-wrpkr", Catcher::kVerifier,
       "plugin text contains a literal WRPKR gadget; the admission gate "
       "must refuse the image (wrpkr-outside-gate-region) before it runs"},
      {AttackKind::kRogueWrpkr, "rogue-wrpkr", Catcher::kHardware,
       "plugin executes WRPKR naming its own perm-sealed key from outside "
       "the gate range (static scan bypassed, as JIT-emitted code would "
       "be); the sealed-WRPKR hardware check must raise SealViolation"},
      {AttackKind::kMonitorTamper, "monitor-tamper", Catcher::kHardware,
       "plugin stores straight into the monitor page while its row grants "
       "it nothing; the pkey permission check must deny every store"},
      {AttackKind::kStackTamper, "monitor-stack-tamper", Catcher::kHardware,
       "plugin sprays the shared call stack (harmless: the monitor keeps "
       "no control state there) and then reaches for the monitor-held "
       "loop index; that store must be denied"},
      {AttackKind::kForgedPkrFlow, "forged-pkr-flow", Catcher::kHardware,
       "plugin re-enters the call gate directly, forging the PKR-state "
       "control flow; the gate's monitor-page return-address save is "
       "denied, so control can only come back on the monitor's terms"},
      {AttackKind::kGateExitHijack, "gate-exit-hijack", Catcher::kGate,
       "plugin jumps past the gate-exit instruction that drops its key; "
       "the gate's post-exit monotonic RDPKR check must scrub and poison"},
      {AttackKind::kInterruptedGate, "interrupted-gate", Catcher::kHardware,
       "plugin spawns a sibling thread that probes monitor memory while "
       "preemption traps land inside half-open gates; per-thread PKR "
       "save/restore must deny every probe"},
      {AttackKind::kRunawayHandler, "runaway-handler", Catcher::kWatchdog,
       "plugin never returns through the gate; the per-request "
       "instruction budget must kill and quarantine it"},
      {AttackKind::kPkrGlitch, "pkr-glitch", Catcher::kAuditor,
       "seeded PKR SRAM bit flips; the MachineAuditor must scrub from the "
       "trusted shadow or escalate to a machine-check kill"},
      {AttackKind::kVaultProbe, "vault-probe", Catcher::kHardware,
       "plugin loads straight from the write-only sealed vault (superblock "
       "and secret bundle); the pkey read-disable check must deny every "
       "load — no secret byte may reach a handler register"},
      {AttackKind::kForgedUnseal, "forged-unseal", Catcher::kVault,
       "plugin ecalls vault_unseal from its own domain with the owner key "
       "closed; the kernel's ownership gate must refuse, notarise the "
       "denial in the journal marks, and copy nothing"},
  };
  return kAttacks;
}

const Attack* find_attack(const std::string& name) {
  for (const Attack& a : attacks()) {
    if (name == a.name) return &a;
  }
  return nullptr;
}

bool caught_by(Catcher catcher, const CatchEvidence& e) {
  switch (catcher) {
    case Catcher::kVerifier:
      return e.verifier_refused && e.gate_escape_findings > 0;
    case Catcher::kHardware:
      // At least one denied/violating access, and if the attack probed
      // (sibling thread or vault reads), nothing may have landed.
      return (e.seal_violations > 0 || e.monitor_denials > 0 ||
              e.probe_attempts > 0 || e.vault_probe_denials > 0) &&
             e.probe_successes == 0;
    case Catcher::kGate:
      return e.gate_scrubs > 0;
    case Catcher::kAuditor:
      return e.faults_injected > 0 && e.faults_recovered_or_killed > 0;
    case Catcher::kWatchdog:
      return e.budget_timeouts > 0;
    case Catcher::kVault:
      // The ownership gate refused at least once and no secret was ever
      // copied out (no unseal in this workload is legitimate).
      return e.unseal_denials > 0 && e.vault_leaks == 0;
  }
  return false;
}

}  // namespace sealpk::serve::redteam
