// Host-side request plane for the in-process plugin server (DESIGN.md §13).
//
// run_server() drives the guest built by build_server() epoch by epoch:
// each epoch embeds the currently-pending requests, runs on a fresh
// Machine, and is parsed back out of the kernel's mark log. The plane is
// built to degrade gracefully, never to die:
//   - per-request instruction budgets (a handler that never returns gets
//     its epoch killed and the attempt counted against it),
//   - strike-based handler quarantine (a slot that keeps failing is taken
//     out of rotation; load-time refusal quarantines immediately),
//   - bounded retry with deterministic backoff onto the replica slot,
//   - load shedding once the epoch budget is exhausted.
// Every request ends in exactly one canonical disposition: served,
// retried (served after at least one failed attempt), shed, or
// quarantined. The ledger is integer-only and derived exclusively from
// guest-deterministic state, so it is byte-identical at any host thread
// count and reproducible under chaos.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/recorder.h"
#include "os/kernel.h"
#include "serve/program.h"
#include "serve/redteam.h"

namespace sealpk::serve {

// The paper's Rocket SoC clocks 50 MHz on the Zedboard; crossings/sec are
// reported at that nominal rate from modelled cycles.
inline constexpr u64 kNominalHz = 50'000'000;

enum class Disposition : u8 {
  kServed = 0,       // first attempt succeeded
  kRetried,          // succeeded after >= 1 failed attempt
  kShed,             // dropped by load shedding (epoch budget exhausted)
  kQuarantined,      // every allowed attempt failed
};
const char* disposition_name(Disposition d);

struct ChaosOptions {
  bool enabled = false;
  u64 seed = 7;
  double rate = 2e-4;   // per-instruction corruption probability
  u64 max_faults = 6;   // per epoch
};

struct ServeConfig {
  u32 primaries = 3;         // handler pairs; slots = 2 * primaries
  u32 requests = 24;
  u32 rounds = 8;            // guest mixing rounds per request
  u64 seed = 1;
  u64 request_budget = 60'000;  // instructions per attempt (timeout)
  u32 max_attempts = 3;         // failed attempts before quarantining
  u32 strike_limit = 2;         // failures before a slot is quarantined
  u32 backoff_base = 1;         // epochs a failed request sits out, * attempts
  u64 max_epochs = 0;           // 0 = auto (4 * max_attempts + 8)
  redteam::AttackKind attack = redteam::AttackKind::kNone;
  ChaosOptions chaos;
  bool trace = false;  // keep an obs ring (CLI exports it via sealpk-trace)
  analysis::LoadVerifyPolicy verify = analysis::LoadVerifyPolicy::kEnforce;
};

struct RequestRecord {
  u32 index = 0;
  u32 home_slot = 0;
  u32 attempts = 0;  // failed attempts
  Disposition disposition = Disposition::kShed;
  u32 served_by = 0xFFFFFFFF;  // slot that served it (0xFFFFFFFF = none)
  u64 latency = 0;             // instructions inside the successful crossing
};

struct ServeResult {
  bool monitor_alive = true;  // the monitor was never killed or corrupted
  bool canary_intact = true;
  bool config_ok = true;  // guest key-numbering/seal asserts all passed
  u64 epochs = 0;
  u64 crossings = 0;  // domain crossings (2 per completed gate round-trip)
  u64 instructions = 0;
  u64 cycles = 0;
  u64 served = 0, retried = 0, shed = 0, quarantined = 0;
  std::vector<RequestRecord> records;      // indexed by request index
  std::vector<u64> slot_strikes;           // per slot
  std::vector<bool> slot_quarantined;      // per slot
  redteam::CatchEvidence evidence;
  const redteam::Attack* attack = nullptr;  // registry entry, or nullptr
  bool attack_caught = false;  // declared catcher fired (attack runs only)
  os::KernelStats kstats;      // summed over epochs
  // When ServeConfig::trace is set: per-epoch event rings concatenated
  // (plus host-emitted kQuarantine transitions), ready for the obs
  // exporters (sealpk-serve --trace-out, rendered by sealpk-trace).
  obs::Trace trace;

  double crossings_per_sec() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(crossings) *
                             static_cast<double>(kNominalHz) /
                             static_cast<double>(cycles);
  }
};

ServeResult run_server(const ServeConfig& cfg);

// One line per request plus a summary line; integer-only, newline-
// terminated. Byte-identical across host thread counts and snapshot
// boundaries — the determinism tests compare it directly.
std::string canonical_ledger(const ServeResult& r);

// Full machine-readable report (includes the ledger fields, throughput,
// evidence and catcher verdict) for `sealpk-serve --json`.
void write_result_json(std::ostream& os, const ServeConfig& cfg,
                       const ServeResult& r);

}  // namespace sealpk::serve
