#include "serve/server.h"

#include <algorithm>
#include <numeric>
#include <ostream>
#include <sstream>

#include "analysis/report.h"
#include "common/json.h"
#include "obs/hist.h"
#include "sim/machine.h"

namespace sealpk::serve {

namespace {

// Host-side failure causes recorded in a request's attempt history; the
// guest's own poison values (trap causes, kPoisonGate*) stay below 100.
constexpr u64 kCauseTimeout = 100;      // request budget exhausted
constexpr u64 kCauseBadChecksum = 101;  // clean return, wrong result
constexpr u64 kCauseMachineKill = 102;  // epoch died under the request

u32 clamped_primaries(const ServeConfig& cfg) {
  return std::clamp<u32>(cfg.primaries, 1, 7);
}

void add_stats(os::KernelStats& into, const os::KernelStats& from) {
  into.syscalls += from.syscalls;
  into.context_switches += from.context_switches;
  into.cam_refills += from.cam_refills;
  into.page_faults += from.page_faults;
  into.seal_violations += from.seal_violations;
  into.pte_pages_updated += from.pte_pages_updated;
  for (const auto& [nr, n] : from.syscall_counts) {
    into.syscall_counts[nr] += n;
  }
  into.cam_refills_dropped += from.cam_refills_dropped;
  into.cam_refills_duplicated += from.cam_refills_duplicated;
  into.pkr_scrubs += from.pkr_scrubs;
  into.tlb_flush_recoveries += from.tlb_flush_recoveries;
  into.pte_repairs += from.pte_repairs;
  into.key_counter_repairs += from.key_counter_repairs;
  into.run_queue_scrubs += from.run_queue_scrubs;
  into.cam_dedups += from.cam_dedups;
  into.spurious_fault_fixes += from.spurious_fault_fixes;
  into.machine_checks += from.machine_checks;
  into.machine_check_kills += from.machine_check_kills;
  into.watchdog_kills += from.watchdog_kills;
  into.audit_runs += from.audit_runs;
  into.audit_findings += from.audit_findings;
  into.host_errors_contained += from.host_errors_contained;
}

sim::MachineConfig machine_config(const ServeConfig& cfg,
                                  const BuiltServer& built, u64 epoch,
                                  analysis::LoadVerifyPolicy policy) {
  sim::MachineConfig mc;
  mc.verify_policy = policy;
  mc.verify_options = built.verify_options;
  if (cfg.attack == redteam::AttackKind::kInterruptedGate) {
    // Tight quantum: preemption traps land inside half-open gates while
    // the probe sibling hammers monitor memory. Traps reset the run
    // loop's quantum counter, so this must be shorter than the gates'
    // trap-free stretches or the timer never fires between syscalls.
    mc.preempt_quantum = 29;
  }
  if (cfg.chaos.enabled || cfg.attack == redteam::AttackKind::kPkrGlitch) {
    mc.fault_plan.enabled = true;
    mc.fault_plan.seed =
        (cfg.chaos.enabled ? cfg.chaos.seed : cfg.seed) + epoch * 1000003ULL;
    // The dedicated glitch attack wants guaranteed upsets even on short
    // runs; chaos mode takes whatever rate the caller dialled in.
    mc.fault_plan.rate = cfg.chaos.enabled ? cfg.chaos.rate : 4e-3;
    mc.fault_plan.cam_rate = 0.0;
    mc.fault_plan.max_faults =
        cfg.chaos.enabled ? cfg.chaos.max_faults : 6;
    // PKR upsets only: exactly the state the gates' monotonic checks and
    // the auditor's shadow scrub are contractually responsible for.
    mc.fault_plan.kinds = fault::kind_bit(fault::FaultKind::kPkrBitFlip);
  }
  if (cfg.trace) {
    mc.trace.enabled = true;
    mc.trace.ring_capacity = 1 << 16;
  }
  return mc;
}

}  // namespace

const char* disposition_name(Disposition d) {
  switch (d) {
    case Disposition::kServed: return "served";
    case Disposition::kRetried: return "retried";
    case Disposition::kShed: return "shed";
    case Disposition::kQuarantined: return "quarantined";
  }
  return "?";
}

ServeResult run_server(const ServeConfig& cfg) {
  const u32 primaries = clamped_primaries(cfg);
  const u32 slots = 2 * primaries;
  const u32 n = cfg.requests;

  ServeResult res;
  res.slot_strikes.assign(slots, 0);
  res.slot_quarantined.assign(slots, false);
  res.records.resize(n);
  for (u32 i = 0; i < n; ++i) {
    res.records[i].index = i;
    res.records[i].home_slot = i % primaries;
  }
  for (const redteam::Attack& a : redteam::attacks()) {
    if (a.kind == cfg.attack) res.attack = &a;
  }

  analysis::LoadVerifyPolicy policy = cfg.verify;
  if (cfg.attack == redteam::AttackKind::kRogueWrpkr) {
    // The rogue WRPKR models JIT-emitted code the static scan never saw;
    // admitting it is the point — the hardware check is the catcher.
    policy = analysis::LoadVerifyPolicy::kOff;
  }

  std::vector<u32> pending(n);
  std::iota(pending.begin(), pending.end(), 0);
  std::vector<u64> eligible(n, 0);
  std::vector<bool> resolved(n, false);
  bool attack_disarmed = false;  // set once the admission gate refused it

  const u64 max_epochs =
      cfg.max_epochs != 0 ? cfg.max_epochs : 4 * cfg.max_attempts + 8;
  const u64 slice = std::max<u64>(2000, cfg.request_budget / 4);

  u64 epoch = 0;
  while (!pending.empty() && epoch < max_epochs) {
    // Route every eligible request: even failed-attempt counts start at
    // the home (primary) slot, odd ones at its replica; a quarantined
    // choice falls through to the other; both dead => shed.
    std::vector<std::pair<u32, u32>> reqs;
    for (const u32 id : pending) {
      if (eligible[id] > epoch) continue;
      const u32 prim = id % primaries;
      const u32 repl = prim + primaries;
      const u32 first = res.records[id].attempts % 2 == 0 ? prim : repl;
      const u32 second = first == prim ? repl : prim;
      if (!res.slot_quarantined[first]) {
        reqs.emplace_back(id, first);
      } else if (!res.slot_quarantined[second]) {
        reqs.emplace_back(id, second);
      } else {
        res.records[id].disposition = Disposition::kShed;
        resolved[id] = true;
      }
    }
    pending.erase(std::remove_if(pending.begin(), pending.end(),
                                 [&](u32 id) { return resolved[id]; }),
                  pending.end());
    if (reqs.empty()) {
      ++epoch;  // everything eligible later: fast-forward (backoff)
      continue;
    }

    WorkloadSpec spec;
    spec.primaries = primaries;
    spec.rounds = cfg.rounds;
    spec.seed = cfg.seed;
    spec.attack =
        attack_disarmed ? redteam::AttackKind::kNone : cfg.attack;
    spec.requests = reqs;
    const BuiltServer built = build_server(spec);

    sim::Machine m(machine_config(cfg, built, epoch, policy));
    const int pid = m.load(built.image);
    if (pid == sim::Machine::kLoadRefused) {
      if (attack_disarmed) {
        // A benign build must admit; refusing it is a configuration bug.
        res.config_ok = false;
        res.monitor_alive = false;
        break;
      }
      res.evidence.verifier_refused = true;
      for (const auto& f : m.verify_report().findings()) {
        if (f.check == analysis::Check::kGateEscape) {
          ++res.evidence.gate_escape_findings;
        }
      }
      // The hostile plugin is dead on arrival: quarantine its slot and
      // keep serving through the replica with a clean build.
      res.slot_quarantined[0] = true;
      ++res.slot_strikes[0];
      attack_disarmed = true;
      continue;  // admission costs no epoch
    }

    // Run the epoch in slices, enforcing the per-request budget from the
    // mark log (an open gate_enter that overstays its budget kills the
    // epoch — the machine is discarded, the attempt counted).
    u64 epoch_instructions = 0, epoch_cycles = 0;
    const u64 epoch_cap =
        3'000'000 + reqs.size() * (cfg.request_budget + 60'000);
    bool killed_by_budget = false;
    bool completed = false;
    while (true) {
      const sim::RunOutcome out = m.run(slice);
      epoch_instructions += out.instructions;
      epoch_cycles += out.cycles;
      if (out.completed) {
        completed = true;
        break;
      }
      const auto& marks = m.kernel().marks();
      if (!marks.empty() && marks.back().kind == os::mark::kGateEnter &&
          m.hart().instret() - marks.back().instret > cfg.request_budget) {
        killed_by_budget = true;
        break;
      }
      if (epoch_instructions >= epoch_cap) {
        killed_by_budget = true;
        break;
      }
    }
    if (killed_by_budget) ++res.evidence.budget_timeouts;
    res.instructions += epoch_instructions;
    res.cycles += epoch_cycles;

    // Evidence + stats.
    const os::KernelStats& ks = m.kernel().stats();
    add_stats(res.kstats, ks);
    res.evidence.seal_violations += ks.seal_violations;
    for (const os::FaultRecord& fr : m.kernel().faults()) {
      if (fr.pkey_fault && fr.pkey == kMonitorPkey) {
        ++res.evidence.monitor_denials;
      }
      if (fr.pkey_fault && fr.pkey == vault_pkey_for(slots)) {
        ++res.evidence.vault_probe_denials;
      }
    }
    // Side-vault evidence: ownership-gate refusals, and — since no unseal
    // in this workload is legitimate — every successful copy is a leak.
    const os::VaultStats& vs = m.kernel().vault_stats();
    res.evidence.unseal_denials += vs.denials;
    res.evidence.vault_leaks += vs.unseals;
    if (m.injector() != nullptr) {
      res.evidence.faults_injected += m.injector()->total_injected();
      res.evidence.faults_recovered_or_killed +=
          m.injector()->total_injected() - m.injector()->outstanding();
    }

    // Parse the mark log into per-request outcomes.
    struct OpenGate {
      bool open = false;
      u32 id = 0;
      u32 slot = 0;
      u64 instret = 0;
    } open_gate;
    struct Outcome {
      u32 id;
      u32 slot;
      bool success;
      u64 cause;    // failure only
      u64 latency;  // success only
    };
    std::vector<Outcome> outcomes;
    for (const os::MarkRecord& mk : m.kernel().marks()) {
      switch (mk.kind) {
        case os::mark::kGateEnter:
          open_gate = {true, static_cast<u32>(mk.arg0),
                       static_cast<u32>(mk.arg1), mk.instret};
          break;
        case os::mark::kGateExit: {
          if (!open_gate.open) break;
          const u64 expected = checksum_for(cfg.seed, open_gate.id,
                                            open_gate.slot, cfg.rounds);
          if (mk.arg1 == expected) {
            outcomes.push_back({open_gate.id, open_gate.slot, true, 0,
                                mk.instret - open_gate.instret});
          } else {
            outcomes.push_back(
                {open_gate.id, open_gate.slot, false, kCauseBadChecksum, 0});
          }
          open_gate.open = false;
          break;
        }
        case os::mark::kDisposition: {
          if (!open_gate.open) break;
          outcomes.push_back(
              {open_gate.id, open_gate.slot, false, mk.arg1, 0});
          if (mk.arg1 == static_cast<u64>(kPoisonGateEntry) ||
              mk.arg1 == static_cast<u64>(kPoisonGateExit)) {
            ++res.evidence.gate_scrubs;
          }
          open_gate.open = false;
          break;
        }
        default:
          break;
      }
    }
    res.crossings += 2 * outcomes.size();
    // A request in flight when the epoch died: one half-crossing, one
    // failed attempt against its slot.
    if (open_gate.open) {
      outcomes.push_back({open_gate.id, open_gate.slot, false,
                          killed_by_budget ? kCauseTimeout
                                           : kCauseMachineKill,
                          0});
      res.crossings += 1;
    }

    // Final dispositions are a host-side judgment (the guest only marks
    // failed attempts), so the host mirrors them onto the obs bus the
    // same way it notarises quarantine transitions — the span builder
    // needs the kRequestDisposition edge to close request spans.
    const auto emit_disposition = [&m](const RequestRecord& rec) {
      if (m.recorder() != nullptr) {
        const u32 pkey = rec.served_by == 0xFFFFFFFF
                             ? obs::kNoPkey
                             : 2 + rec.served_by;  // slot keys start at 2
        m.recorder()->emit(obs::EventKind::kRequestDisposition,
                           m.hart().instret(), m.hart().cycles(), pkey,
                           rec.index, static_cast<u64>(rec.disposition));
      }
    };
    for (const Outcome& oc : outcomes) {
      if (oc.id >= n || resolved[oc.id]) continue;
      RequestRecord& rec = res.records[oc.id];
      if (oc.success) {
        rec.disposition = rec.attempts == 0 ? Disposition::kServed
                                            : Disposition::kRetried;
        rec.served_by = oc.slot;
        rec.latency = oc.latency;
        resolved[oc.id] = true;
        emit_disposition(rec);
        continue;
      }
      ++rec.attempts;
      if (oc.slot < slots) {
        ++res.slot_strikes[oc.slot];
        if (!res.slot_quarantined[oc.slot] &&
            res.slot_strikes[oc.slot] >= cfg.strike_limit) {
          res.slot_quarantined[oc.slot] = true;
          if (m.recorder() != nullptr) {
            m.recorder()->emit(obs::EventKind::kQuarantine,
                               m.hart().instret(), m.hart().cycles(),
                               2 + oc.slot, oc.slot,
                               res.slot_strikes[oc.slot]);
          }
        }
      }
      if (rec.attempts >= cfg.max_attempts) {
        rec.disposition = Disposition::kQuarantined;
        resolved[oc.id] = true;
        emit_disposition(rec);
      } else {
        // Deterministic backoff: sit out backoff_base * attempts epochs
        // (the next attempt lands on the other slot of the pair).
        eligible[oc.id] = epoch + 1 + cfg.backoff_base * rec.attempts;
      }
    }
    pending.erase(std::remove_if(pending.begin(), pending.end(),
                                 [&](u32 id) { return resolved[id]; }),
                  pending.end());

    if (completed) {
      const i64 code = m.exit_code(pid);
      if (code == kExitBadPkey || code == kExitSealFailed ||
          code == kExitVaultSetup) {
        res.config_ok = false;
        res.monitor_alive = false;
        break;
      }
      if (code == 0) {
        const auto& reports = m.kernel().reports();
        if (reports.size() >= 4) {
          if (reports[0] != kCanary) {
            res.canary_intact = false;
            res.monitor_alive = false;
          }
          res.evidence.probe_attempts += reports[2];
          res.evidence.probe_successes += reports[3];
        }
      }
      // Any other exit code is a machine-level kill (machine check,
      // watchdog): the epoch is lost, its unresolved requests retry on
      // the next one — the plane absorbs the loss, the ledger records it.
    }

    if (cfg.trace && m.recorder() != nullptr) {
      const obs::Trace t = m.recorder()->trace();
      if (res.trace.symbols.empty()) {
        res.trace.ring_capacity = t.ring_capacity;
        res.trace.sample_interval = t.sample_interval;
        res.trace.symbols = t.symbols;
      }
      res.trace.events.insert(res.trace.events.end(), t.events.begin(),
                              t.events.end());
      res.trace.dropped += t.dropped;
    }

    ++res.epochs;
    ++epoch;
  }

  // Whatever is still pending when the epoch budget runs out is shed.
  for (const u32 id : pending) {
    res.records[id].disposition = Disposition::kShed;
  }
  for (const RequestRecord& rec : res.records) {
    switch (rec.disposition) {
      case Disposition::kServed: ++res.served; break;
      case Disposition::kRetried: ++res.retried; break;
      case Disposition::kShed: ++res.shed; break;
      case Disposition::kQuarantined: ++res.quarantined; break;
    }
  }
  if (res.evidence.probe_successes > 0) res.monitor_alive = false;
  if (res.attack != nullptr) {
    res.attack_caught = redteam::caught_by(res.attack->catcher, res.evidence);
  }
  return res;
}

std::string canonical_ledger(const ServeResult& r) {
  std::ostringstream os;
  for (const RequestRecord& rec : r.records) {
    os << "req index=" << rec.index << " home=" << rec.home_slot
       << " attempts=" << rec.attempts
       << " disp=" << disposition_name(rec.disposition);
    if (rec.served_by != 0xFFFFFFFF) {
      os << " by=" << rec.served_by << " latency=" << rec.latency;
    }
    os << "\n";
  }
  os << "summary requests=" << r.records.size() << " served=" << r.served
     << " retried=" << r.retried << " shed=" << r.shed
     << " quarantined=" << r.quarantined << " crossings=" << r.crossings
     << " epochs=" << r.epochs << " instructions=" << r.instructions
     << " cycles=" << r.cycles << " monitor=" << (r.monitor_alive ? 1 : 0)
     << " canary=" << (r.canary_intact ? 1 : 0) << "\n";
  const redteam::CatchEvidence& e = r.evidence;
  os << "evidence refused=" << (e.verifier_refused ? 1 : 0)
     << " gate_escapes=" << e.gate_escape_findings
     << " seal_violations=" << e.seal_violations
     << " monitor_denials=" << e.monitor_denials
     << " gate_scrubs=" << e.gate_scrubs
     << " budget_timeouts=" << e.budget_timeouts
     << " faults_injected=" << e.faults_injected
     << " faults_handled=" << e.faults_recovered_or_killed
     << " probe_attempts=" << e.probe_attempts
     << " probe_successes=" << e.probe_successes
     << " vault_probe_denials=" << e.vault_probe_denials
     << " unseal_denials=" << e.unseal_denials
     << " vault_leaks=" << e.vault_leaks << "\n";
  return os.str();
}

void write_result_json(std::ostream& os, const ServeConfig& cfg,
                       const ServeResult& r) {
  char thr[64];
  std::snprintf(thr, sizeof(thr), "%.2f", r.crossings_per_sec());
  os << "{\n";
  os << "  \"schema\": \"sealpk-serve-v1\",\n";
  os << "  \"attack\": \""
     << json_escape(r.attack != nullptr ? r.attack->name : "none")
     << "\",\n";
  if (r.attack != nullptr) {
    os << "  \"catcher\": \"" << redteam::catcher_name(r.attack->catcher)
       << "\", \"caught\": " << (r.attack_caught ? "true" : "false")
       << ",\n";
  }
  os << "  \"config\": {\"primaries\": " << clamped_primaries(cfg)
     << ", \"requests\": " << cfg.requests << ", \"rounds\": " << cfg.rounds
     << ", \"seed\": " << cfg.seed
     << ", \"request_budget\": " << cfg.request_budget
     << ", \"max_attempts\": " << cfg.max_attempts
     << ", \"strike_limit\": " << cfg.strike_limit
     << ", \"chaos\": " << (cfg.chaos.enabled ? "true" : "false") << "},\n";
  os << "  \"monitor_alive\": " << (r.monitor_alive ? "true" : "false")
     << ", \"canary_intact\": " << (r.canary_intact ? "true" : "false")
     << ", \"config_ok\": " << (r.config_ok ? "true" : "false") << ",\n";
  os << "  \"epochs\": " << r.epochs << ", \"crossings\": " << r.crossings
     << ", \"instructions\": " << r.instructions
     << ", \"cycles\": " << r.cycles
     << ", \"crossings_per_sec\": " << thr << ",\n";
  os << "  \"dispositions\": {\"served\": " << r.served
     << ", \"retried\": " << r.retried << ", \"shed\": " << r.shed
     << ", \"quarantined\": " << r.quarantined << "},\n";
  // Handler-latency quantiles over every served/retried request: the SLO
  // gate's p99 ceiling reads this block. Integer instruction counts
  // through the deterministic histogram, so the block is byte-identical
  // across hosts and thread counts.
  obs::Histogram lat;
  for (const RequestRecord& rec : r.records) {
    if (rec.served_by != 0xFFFFFFFF) lat.record(rec.latency);
  }
  os << "  \"latency\": " << lat.quantiles_json() << ",\n";
  const redteam::CatchEvidence& e = r.evidence;
  os << "  \"evidence\": {\"verifier_refused\": "
     << (e.verifier_refused ? "true" : "false")
     << ", \"gate_escape_findings\": " << e.gate_escape_findings
     << ", \"seal_violations\": " << e.seal_violations
     << ", \"monitor_denials\": " << e.monitor_denials
     << ", \"gate_scrubs\": " << e.gate_scrubs
     << ", \"budget_timeouts\": " << e.budget_timeouts
     << ", \"faults_injected\": " << e.faults_injected
     << ", \"faults_handled\": " << e.faults_recovered_or_killed
     << ", \"probe_attempts\": " << e.probe_attempts
     << ", \"probe_successes\": " << e.probe_successes
     << ", \"vault_probe_denials\": " << e.vault_probe_denials
     << ", \"unseal_denials\": " << e.unseal_denials
     << ", \"vault_leaks\": " << e.vault_leaks << "},\n";
  os << "  \"slots\": [";
  for (u32 s = 0; s < r.slot_strikes.size(); ++s) {
    if (s != 0) os << ", ";
    os << "{\"slot\": " << s << ", \"strikes\": " << r.slot_strikes[s]
       << ", \"quarantined\": " << (r.slot_quarantined[s] ? "true" : "false")
       << "}";
  }
  os << "],\n";
  os << "  \"requests\": [\n";
  for (size_t i = 0; i < r.records.size(); ++i) {
    const RequestRecord& rec = r.records[i];
    os << "    {\"index\": " << rec.index << ", \"home\": " << rec.home_slot
       << ", \"attempts\": " << rec.attempts << ", \"disposition\": \""
       << disposition_name(rec.disposition) << "\"";
    if (rec.served_by != 0xFFFFFFFF) {
      os << ", \"served_by\": " << rec.served_by
         << ", \"latency\": " << rec.latency;
    }
    os << "}" << (i + 1 < r.records.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

}  // namespace sealpk::serve
