// Guest-program builder for the serve workload (DESIGN.md §13).
//
// The built image is a one-process plugin server: a trusted monitor domain
// (pkey 1) dispatches an embedded request table to 2*primaries untrusted
// handler domains (pkey 2+slot; slots [0,P) are primaries, [P,2P) their
// replicas) through perm-sealed call gates. Each gate crossing is two
// WRPKRs per direction — one naming the monitor key, one naming the
// handler key — because merge_sealed_row only lets a WRPKR change the
// field of the key it names once both keys are sealed. All gates live
// between __gate_region_start/__gate_region_end, whose seal markers stage
// the monitor key's permissible range; each gate carries its own markers
// for its handler key. The monitor keeps every piece of control state it
// relies on (loop index, saved sp, gate return address, served counter,
// canary) in its own protected page and re-derives all registers after
// every gate call, so untrusted handlers can forge nothing the monitor
// trusts — the stack included.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "analysis/verifier.h"
#include "isa/program.h"
#include "serve/redteam.h"

namespace sealpk::serve {

// Guest-visible constants (shared with the host-side model and tests).
inline constexpr u64 kCanary = 0x5EA1CAFEF00DULL;
inline constexpr u32 kMonitorPkey = 1;
inline constexpr i64 kExitBadPkey = 91;   // pkey numbering assert failed
inline constexpr i64 kExitSealFailed = 92;  // pkey_perm_seal returned error
inline constexpr i64 kExitVaultSetup = 93;  // side-vault bootstrap failed
// The monitor's sealed side-vault (DESIGN.md §14): one secret bundle the
// durability red team attacks. The vault key is allocated right after the
// slot keys; the monitor key is the owner domain.
inline constexpr u64 kVaultSecretId = 1;
inline constexpr u32 vault_pkey_for(u32 slots) { return 2 + slots; }
// Poison causes the gate itself writes (trap causes are small enum values,
// so these cannot collide with a delivered fault's cause).
inline constexpr u64 kPoisonGateEntry = 98;  // entry monotonic check failed
inline constexpr u64 kPoisonGateExit = 99;   // post-exit RDPKR mismatch
// Byte offset from the gate's handler-return point to the instruction
// after the handler-key drop — the jump target of the gate-exit-hijack
// attack (li + la + ld + wrpkr = 5 fixed-size instructions).
inline constexpr i64 kGateExitDropBytes = 20;
// Monitor-page layout (offsets in bytes).
inline constexpr i64 kMonCanary = 0;
inline constexpr i64 kMonServed = 8;
inline constexpr i64 kMonIndex = 16;
inline constexpr i64 kMonSavedSp = 24;
inline constexpr i64 kMonSavedRa = 32;
inline constexpr i64 kMonProbe = 40;  // the interrupted-gate probe's target

struct WorkloadSpec {
  u32 primaries = 3;  // 1..7 (slots = 2*primaries; CAM holds 16 ranges)
  u32 rounds = 8;     // checksum mixing rounds per request
  u64 seed = 1;
  redteam::AttackKind attack = redteam::AttackKind::kNone;
  // Dispatch order: (request index, handler slot) pairs, embedded as the
  // guest's request table.
  std::vector<std::pair<u32, u32>> requests;
};

struct BuiltServer {
  isa::Image image;
  // Gate regions, sealed ranges and trusted-gate names derived from the
  // linked layout — what the admission gate verifies against.
  analysis::VerifyOptions verify_options;
  std::vector<u32> slot_pkeys;  // slot -> pkey (2 + slot)
};

// Host-side model of the guest checksum arithmetic (splitmix64 finalizer).
u64 mix64(u64 x);
u64 payload_for(u64 seed, u32 index);
u64 checksum_for(u64 seed, u32 index, u32 slot, u32 rounds);

u32 slot_count(const WorkloadSpec& spec);  // 2 * primaries

std::string gate_name(u32 slot);     // "__gate_<slot>"
std::string handler_name(u32 slot);  // "__handler_<slot>"

BuiltServer build_server(const WorkloadSpec& spec);

}  // namespace sealpk::serve
