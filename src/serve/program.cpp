#include "serve/program.h"

#include <algorithm>

#include "os/syscall_abi.h"
#include "runtime/guest.h"
#include "vault/format.h"

using namespace sealpk::isa;

namespace sealpk::serve {

namespace {

// The interrupted-gate probe's load sentinel: a denied (skipped) load
// leaves it in the register, a load that actually reached the zeroed
// monitor slot does not.
constexpr i64 kProbeSentinel = 0x13F1;

// The monitor's sealed side-vault: one page, one intent/commit journal
// pair, one 64-byte secret bundle. The vault key is write-only and
// perm-sealed with an empty WRPKR range, the monitor key is the owner.
constexpr u64 kVaultPageSize = 4096;
constexpr u64 kVaultSlotLen = 64;
constexpr u64 kVaultDataOff =
    vault::kSuperblockSize + 2 * vault::kRecordSize;
// Salt for the secret stream (word j = mix64(key + j)); any value works,
// it only needs to differ from the request-payload stream.
constexpr u64 kVaultSecretSalt = 0x5EC2E7ULL;

vault::Geometry serve_vault_geometry(u32 slots) {
  vault::Geometry g;
  g.vault_pkey = vault_pkey_for(slots);
  g.owner_pkey = kMonitorPkey;
  g.journal_cap = 2;
  g.data_off = kVaultDataOff;
  g.n_slots = 1;
  g.slot_size = kVaultSlotLen;
  return g;
}

u64 vault_secret_key(u64 seed) { return vault::mix64(seed ^ kVaultSecretSalt); }

std::vector<u8> vault_secret_bytes(u64 seed) {
  std::vector<u8> out(kVaultSlotLen, 0);
  const u64 key = vault_secret_key(seed);
  for (u64 j = 0; j < kVaultSlotLen / 8; ++j) {
    vault::store_u64(&out[j * 8], vault::mix64(key + j));
  }
  return out;
}

std::string row_name(u32 slot) { return "__row_h" + std::to_string(slot); }

std::vector<u8> u64le(u64 v) {
  std::vector<u8> b(8);
  for (int i = 0; i < 8; ++i) b[static_cast<size_t>(i)] = u8(v >> (8 * i));
  return b;
}

// PKR row values (all keys live in row 0: monitor = 1, slot k = 2 + k,
// pkey 0 stays RW so code/stack/blob accesses always work).
u64 row_all_closed(u32 slots) {
  u64 row = u64{0b11} << (2 * kMonitorPkey);
  for (u32 k = 0; k < slots; ++k) row |= u64{0b11} << (2 * (2 + k));
  // The side-vault key is write-only in every row — the gates' RDPKR
  // equality checks must expect its field.
  row |= u64{os::pkeyperm::kWriteOnly} << (2 * vault_pkey_for(slots));
  return row;
}
u64 row_monitor_open(u32 slots) {
  return row_all_closed(slots) & ~(u64{0b11} << (2 * kMonitorPkey));
}
u64 row_handler_open(u32 slots, u32 slot) {
  return row_all_closed(slots) & ~(u64{0b11} << (2 * (2 + slot)));
}

// splitmix64 finalizer, inline (no call: handlers must not depend on ra
// surviving, the monitor must not depend on the stack).
void emit_mix(Function& f, u8 v, u8 tmp1, u8 tmp2) {
  f.li(tmp1, static_cast<i64>(0x9E3779B97F4A7C15ULL));
  f.add(v, v, tmp1);
  f.srli(tmp2, v, 30);
  f.xor_(v, v, tmp2);
  f.li(tmp1, static_cast<i64>(0xBF58476D1CE4E5B9ULL));
  f.mul(v, v, tmp1);
  f.srli(tmp2, v, 27);
  f.xor_(v, v, tmp2);
  f.li(tmp1, static_cast<i64>(0x94D049BB133111EBULL));
  f.mul(v, v, tmp1);
  f.srli(tmp2, v, 31);
  f.xor_(v, v, tmp2);
}

void emit_exit(Function& f, i64 code) {
  f.li(a0, code);
  rt::syscall(f, os::sys::kExit);
}

// mark(kind, arg0, arg1, pkey); preserves everything but a0.
void emit_mark(Function& f) { rt::syscall(f, os::sys::kMark); }

// The hostile preamble planted at the top of __handler_0. Every variant is
// guarded by `beqz a0, benign` so the init-time latch call (payload 0 —
// real payloads are splitmix64 outputs, never 0) stays benign.
void emit_attack_preamble(Function& f, redteam::AttackKind kind,
                          Label benign) {
  using redteam::AttackKind;
  if (kind == AttackKind::kNone || kind == AttackKind::kPkrGlitch) return;
  f.beqz(a0, benign);
  switch (kind) {
    case AttackKind::kGadgetWrpkr:
      // Never reached under kEnforce: the literal gadget below makes the
      // admission gate refuse the image before it can run.
      f.li(t1, kMonitorPkey);
      f.li(t2, 0);
      f.wrpkr(t1, t2);
      break;
    case AttackKind::kRogueWrpkr:
      // Runs with the static verifier off (models JIT-emitted code): a
      // WRPKR naming the handler's own perm-sealed key from outside its
      // gate range. The hardware sealed-WRPKR check must fire.
      f.li(t1, 2);
      f.li(t2, 0);
      f.wrpkr(t1, t2);  // SealViolation -> delivered -> skipped
      break;
    case AttackKind::kMonitorTamper:
      f.la(t0, "__mon_base");
      f.ld(t0, 0, t0);
      f.li(t1, 0xDEAD);
      f.sd(t1, kMonCanary, t0);  // pkey denial -> delivered -> skipped
      break;
    case AttackKind::kStackTamper:
      // The spray lands (the stack is pkey-0 by design) but the monitor
      // keeps nothing there; the protected loop index does not budge.
      f.li(t1, 0x57ACC);
      f.sd(t1, 0, sp);
      f.sd(t1, 8, sp);
      f.sd(t1, 16, sp);
      f.sd(t1, 24, sp);
      f.la(t0, "__mon_base");
      f.ld(t0, 0, t0);
      f.sd(t1, kMonIndex, t0);  // pkey denial -> delivered -> skipped
      break;
    case AttackKind::kForgedPkrFlow: {
      // Re-enter the gate directly (once per run, latched in scratch[8]).
      // The inner gate's return-address save is denied, so when it
      // finishes it returns to the *monitor's* saved continuation — the
      // forged flow never gets control back.
      f.la(t0, "__scratch_table");
      f.ld(t0, 0, t0);
      f.ld(t1, 8, t0);
      f.bnez(t1, benign);
      f.li(t1, 1);
      f.sd(t1, 8, t0);
      f.li(a0, 0xBAD);
      f.la(t0, "__gate_0");
      f.jalr_reg(ra, t0);  // never returns here
      break;
    }
    case AttackKind::kGateExitHijack:
      // Skip the gate-exit instructions that drop this handler's key.
      f.li(a0, 0xBAD);
      f.addi(t0, ra, kGateExitDropBytes);
      f.jr(t0);
      break;
    case AttackKind::kInterruptedGate: {
      // Spawn a sibling that inherits this half-open row (monitor closed)
      // and hammers the monitor page across preemption traps.
      const Label spawned = f.new_label();
      f.mv(t6, a0);
      f.la(t0, "__scratch_table");
      f.ld(t0, 0, t0);
      f.ld(t1, 8, t0);
      f.bnez(t1, spawned);
      f.li(t1, 1);
      f.sd(t1, 8, t0);
      f.li(a0, 0);
      f.li(a1, 16384);
      f.li(a2, 3);
      rt::syscall(f, os::sys::kMmap);
      f.li(t0, 16384);
      f.add(a1, a0, t0);
      f.la(a0, "__probe");
      f.li(a2, 0);
      rt::syscall(f, os::sys::kClone);
      f.bind(spawned);
      f.mv(a0, t6);
      break;
    }
    case AttackKind::kRunawayHandler: {
      const Label spin = f.new_label();
      f.bind(spin);
      f.j(spin);
      break;
    }
    case AttackKind::kVaultProbe: {
      // Two load probes against the write-only vault: the superblock magic
      // and the secret bundle itself. A denied (skipped) load leaves the
      // sentinel in t2; both targets hold nonzero words, so a load that
      // lands cannot fake a denial. Accounted through the same probe
      // ledger the sibling-thread attack uses (reports [2]/[3]).
      const Label second = f.new_label(), count1 = f.new_label(),
                  count2 = f.new_label();
      f.la(t5, "__vault_base");
      f.ld(t5, 0, t5);
      f.li(t6, kProbeSentinel);
      f.la(t0, "__probe_attempts");
      f.ld(t1, 0, t0);
      f.addi(t1, t1, 2);
      f.sd(t1, 0, t0);
      f.mv(t2, t6);
      f.ld(t2, 0, t5);  // superblock magic — read-disabled, denied
      f.bne(t2, t6, count1);
      f.bind(second);
      f.mv(t2, t6);
      f.ld(t2, static_cast<i64>(kVaultDataOff), t5);  // the secret itself
      f.bne(t2, t6, count2);
      f.j(benign);
      f.bind(count1);
      f.la(t0, "__probe_success");
      f.ld(t1, 0, t0);
      f.addi(t1, t1, 1);
      f.sd(t1, 0, t0);
      f.j(second);
      f.bind(count2);
      f.la(t0, "__probe_success");
      f.ld(t1, 0, t0);
      f.addi(t1, t1, 1);
      f.sd(t1, 0, t0);
      break;
    }
    case AttackKind::kForgedUnseal:
      // vault_unseal from the handler's own domain: this row has the owner
      // (monitor) key closed, so the kernel's ownership gate must refuse
      // and notarise the denial — and the handler-tagged dst could never
      // pass the owner-domain destination check anyway. A copy that did
      // land would surface host-side as vault_leaks (no unseal in this
      // workload is legitimate).
      f.mv(t6, a0);  // the request payload must survive the ecall
      f.la(a0, "__vault_base");
      f.ld(a0, 0, a0);
      f.li(a1, static_cast<i64>(kVaultSecretId));
      f.la(a2, "__scratch_table");
      f.ld(a2, 0, a2);
      rt::syscall(f, os::sys::kVaultUnseal);
      f.mv(a0, t6);
      break;
    case AttackKind::kNone:
    case AttackKind::kPkrGlitch:
      break;
  }
}

void add_sighandler(Program& p) {
  // Entered with a0 = cause. Denials on the main thread poison the current
  // attempt; probe-thread denials are silently skipped (the probe's own
  // sentinel accounting decides whether anything landed).
  Function& f = p.add_function("__serve_sighandler");
  f.instrumentable = false;
  const Label skip = f.new_label();
  f.mv(t0, a0);
  rt::syscall(f, os::sys::kGetTid);
  f.la(t1, "__main_tid");
  f.ld(t1, 0, t1);
  f.bne(a0, t1, skip);
  f.la(t1, "__poison");
  f.sd(t0, 0, t1);
  f.bind(skip);
  f.li(a0, 1);  // resume after the (denied) instruction
  rt::syscall(f, os::sys::kSigreturn);
}

void add_probe(Program& p) {
  Function& f = p.add_function("__probe");
  f.instrumentable = false;
  const Label loop = f.new_label(), store_probe = f.new_label(),
              stopped = f.new_label(), count = f.new_label();
  f.la(t0, "__mon_base");
  f.ld(t5, 0, t0);
  f.li(t6, kProbeSentinel);
  f.bind(loop);
  f.la(t0, "__probe_stop");
  f.ld(t0, 0, t0);
  f.bnez(t0, stopped);
  f.la(t0, "__probe_attempts");
  f.ld(t1, 0, t0);
  f.addi(t1, t1, 1);
  f.sd(t1, 0, t0);
  // Load probe: a denied (skipped) load leaves the sentinel in t2; the
  // monitor slot holds 0, so a load that lands cannot fake a denial.
  f.mv(t2, t6);
  f.ld(t2, kMonProbe, t5);
  f.bne(t2, t6, count);
  f.bind(store_probe);
  // Store probe: if this ever lands, the very next load probe reads the
  // sentinel from monitor memory — but the first landing load has already
  // read 0 and counted a success by then.
  f.sd(t6, kMonProbe, t5);
  // Yield after every probe pair: the probe is trap-dense (each denied
  // access resets the run loop's preemption counter), so without an
  // explicit yield it would monopolise the hart once scheduled. Yielding
  // also walks the monitor through many distinct preemption offsets —
  // exactly the half-open-gate windows the attack is hunting.
  rt::syscall(f, os::sys::kSchedYield);
  f.j(loop);
  f.bind(count);
  f.la(t0, "__probe_success");
  f.ld(t1, 0, t0);
  f.addi(t1, t1, 1);
  f.sd(t1, 0, t0);
  f.j(store_probe);
  f.bind(stopped);
  rt::syscall(f, os::sys::kSchedYield);
  f.j(stopped);
}

void add_gate(Program& p, u32 slot) {
  Function& g = p.add_function(gate_name(slot));
  g.instrumentable = false;
  const Label call_handler = g.new_label(), exit_path = g.new_label(),
              exit_clean = g.new_label();
  g.seal_start(0);
  // Save the monitor's return address in monitor memory while the monitor
  // key is still open — a forged entry (handler calling the gate directly)
  // arrives with it closed, so this store is denied and the gate can only
  // return to the monitor's own continuation.
  g.la(t0, "__mon_base");
  g.ld(t0, 0, t0);
  g.sd(ra, kMonSavedRa, t0);
  // Two WRPKRs per crossing: close the monitor key, open the handler key
  // (merge_sealed_row only lets a write change the key it names).
  g.li(t1, kMonitorPkey);
  g.la(t2, "__row_closed");
  g.ld(t2, 0, t2);
  g.wrpkr(t1, t2);
  g.li(t1, static_cast<i64>(2 + slot));
  g.la(t2, row_name(slot));
  g.ld(t2, 0, t2);
  g.wrpkr(t1, t2);
  // Entry monotonic check: the row must be exactly what we staged (PKR
  // glitches — kPkrGlitch — are caught here before any plugin code runs).
  g.rdpkr(t3, t1);
  g.beq(t3, t2, call_handler);
  g.la(t4, "__poison");
  g.li(t5, kPoisonGateEntry);
  g.sd(t5, 0, t4);
  g.li(a0, 0);
  g.j(exit_path);
  g.bind(call_handler);
  g.call(handler_name(slot));
  g.bind(exit_path);
  // Drop the handler key. EXACTLY kGateExitDropBytes of instructions: the
  // gate-exit-hijack attack jumps ra + kGateExitDropBytes to skip them.
  g.li(t1, static_cast<i64>(2 + slot));
  g.la(t2, "__row_closed");
  g.ld(t2, 0, t2);
  g.wrpkr(t1, t2);
  // Reopen the monitor key.
  g.li(t1, kMonitorPkey);
  g.la(t2, "__row_open");
  g.ld(t2, 0, t2);
  g.wrpkr(t1, t2);
  // Post-exit monotonic check: any key the handler left open (hijack, PKR
  // glitch) shows up here; scrub the row and poison the attempt.
  g.rdpkr(t3, t1);
  g.beq(t3, t2, exit_clean);
  g.li(t1, static_cast<i64>(2 + slot));
  g.wrpkr(t1, t2);  // names our own sealed key: in-range, restores __row_open
  g.la(t4, "__poison");
  g.li(t5, kPoisonGateExit);
  g.sd(t5, 0, t4);
  g.bind(exit_clean);
  g.la(t0, "__mon_base");
  g.ld(t0, 0, t0);
  g.ld(ra, kMonSavedRa, t0);
  g.seal_end(0);
  g.ret();
}

void add_handler(Program& p, u32 slot, const WorkloadSpec& spec) {
  Function& h = p.add_function(handler_name(slot));
  h.instrumentable = false;
  const Label benign = h.new_label();
  if (slot == 0) emit_attack_preamble(h, spec.attack, benign);
  h.bind(benign);
  h.la(t0, "__scratch_table");
  h.ld(t0, 8 * static_cast<i64>(slot), t0);
  h.li(t1, static_cast<i64>(std::max<u32>(spec.rounds, 1)));
  h.li(t2, static_cast<i64>(slot) + 1);
  const Label loop = h.new_label();
  h.bind(loop);
  h.xor_(a0, a0, t2);
  emit_mix(h, a0, t3, t4);
  h.sd(a0, 0, t0);  // round-trip through this domain's tagged scratch
  h.ld(a0, 0, t0);
  h.addi(t1, t1, -1);
  h.bnez(t1, loop);
  h.ret();
}

void add_init(Program& p, const WorkloadSpec& spec) {
  const u32 slots = slot_count(spec);
  Function& f = p.add_function("__serve_init");
  f.instrumentable = false;
  f.mv(s0, ra);  // the latch calls below clobber ra
  rt::syscall(f, os::sys::kGetTid);
  f.la(t0, "__main_tid");
  f.sd(a0, 0, t0);
  // Register the handler before anything can fault.
  f.la(a0, "__serve_sighandler");
  rt::syscall(f, os::sys::kSigaction);
  // Monitor page, then one scratch page per slot.
  f.li(a0, 0);
  f.li(a1, 4096);
  f.li(a2, 3);
  rt::syscall(f, os::sys::kMmap);
  f.la(t0, "__mon_base");
  f.sd(a0, 0, t0);
  for (u32 k = 0; k < slots; ++k) {
    f.li(a0, 0);
    f.li(a1, 4096);
    f.li(a2, 3);
    rt::syscall(f, os::sys::kMmap);
    f.la(t0, "__scratch_table");
    f.sd(a0, 8 * static_cast<i64>(k), t0);
  }
  // Key numbering is part of the protocol (the row constants bake it in):
  // monitor = 1, slot k = 2 + k. Anything else is a build bug.
  f.li(a0, 0);
  f.li(a1, static_cast<i64>(os::pkeyperm::kRw));
  rt::syscall(f, os::sys::kPkeyAlloc);
  {
    const Label ok = f.new_label();
    f.li(t1, kMonitorPkey);
    f.beq(a0, t1, ok);
    emit_exit(f, kExitBadPkey);
    f.bind(ok);
  }
  for (u32 k = 0; k < slots; ++k) {
    f.li(a0, 0);
    f.li(a1, static_cast<i64>(os::pkeyperm::kNone));
    rt::syscall(f, os::sys::kPkeyAlloc);
    const Label ok = f.new_label();
    f.li(t1, static_cast<i64>(2 + k));
    f.beq(a0, t1, ok);
    emit_exit(f, kExitBadPkey);
    f.bind(ok);
  }
  // Tag the pages.
  f.la(a0, "__mon_base");
  f.ld(a0, 0, a0);
  f.li(a1, 4096);
  f.li(a2, 3);
  f.li(a3, kMonitorPkey);
  rt::syscall(f, os::sys::kPkeyMprotect);
  {
    const Label ok = f.new_label();
    f.beqz(a0, ok);
    emit_exit(f, kExitBadPkey);
    f.bind(ok);
  }
  for (u32 k = 0; k < slots; ++k) {
    f.la(a0, "__scratch_table");
    f.ld(a0, 8 * static_cast<i64>(k), a0);
    f.li(a1, 4096);
    f.li(a2, 3);
    f.li(a3, static_cast<i64>(2 + k));
    rt::syscall(f, os::sys::kPkeyMprotect);
    const Label ok = f.new_label();
    f.beqz(a0, ok);
    emit_exit(f, kExitBadPkey);
    f.bind(ok);
  }
  // Monitor page contents: canary + zeroed counters/slots.
  f.la(t0, "__mon_base");
  f.ld(t0, 0, t0);
  f.li(t1, static_cast<i64>(kCanary));
  f.sd(t1, kMonCanary, t0);
  f.sd(zero, kMonServed, t0);
  f.sd(zero, kMonIndex, t0);
  f.sd(zero, kMonSavedSp, t0);
  f.sd(zero, kMonSavedRa, t0);
  f.sd(zero, kMonProbe, t0);
  // Dispatch table.
  for (u32 k = 0; k < slots; ++k) {
    f.la(t1, gate_name(k));
    f.la(t0, "__gate_table");
    f.sd(t1, 8 * static_cast<i64>(k), t0);
  }
  // Latch + seal each handler key: one benign pass through its gate stages
  // seal.start/seal.end at the gate's own PCs, then pkey_perm_seal commits
  // them into the PK-CAM. Payload 0 keeps attack preambles dormant.
  for (u32 k = 0; k < slots; ++k) {
    f.li(a0, 0);
    f.call(gate_name(k));
    f.li(a0, static_cast<i64>(2 + k));
    rt::syscall(f, os::sys::kPkeyPermSeal);
    const Label ok = f.new_label();
    f.beqz(a0, ok);
    emit_exit(f, kExitSealFailed);
    f.bind(ok);
  }
  // The monitor key's range spans every gate: region markers bracket them.
  f.call("__gate_region_start");
  f.call("__gate_region_end");
  f.li(a0, kMonitorPkey);
  rt::syscall(f, os::sys::kPkeyPermSeal);
  {
    const Label ok = f.new_label();
    f.beqz(a0, ok);
    emit_exit(f, kExitSealFailed);
    f.bind(ok);
  }
  // --- the monitor's sealed side-vault (the durability red team's target).
  // Bootstrapped last, after every key above is sealed: from here on the
  // only WRPKRs that ever execute are gate crossings, and merge_sealed_row
  // keeps the vault key's write-only field untouched by them.
  f.li(a0, 0);
  f.li(a1, static_cast<i64>(kVaultPageSize));
  f.li(a2, 3);
  rt::syscall(f, os::sys::kMmap);
  f.la(t0, "__vault_base");
  f.sd(a0, 0, t0);
  f.la(t0, "__vault_super");
  f.la(t1, "__vault_base");
  f.ld(t1, 0, t1);
  for (i64 i = 0; i < 10; ++i) {
    f.ld(t2, 8 * i, t0);
    f.sd(t2, 8 * i, t1);
  }
  f.li(a0, 0);
  f.li(a1, static_cast<i64>(os::pkeyperm::kWriteOnly));
  rt::syscall(f, os::sys::kPkeyAlloc);
  {
    const Label ok = f.new_label();
    f.li(t1, static_cast<i64>(vault_pkey_for(slots)));
    f.beq(a0, t1, ok);
    emit_exit(f, kExitVaultSetup);
    f.bind(ok);
  }
  f.la(a0, "__vault_base");
  f.ld(a0, 0, a0);
  f.li(a1, static_cast<i64>(kVaultPageSize));
  f.li(a2, 3);
  f.li(a3, static_cast<i64>(vault_pkey_for(slots)));
  rt::syscall(f, os::sys::kPkeyMprotect);
  {
    const Label ok = f.new_label();
    f.beqz(a0, ok);
    emit_exit(f, kExitVaultSetup);
    f.bind(ok);
  }
  // Seal the vault domain and its pages, then perm-seal the key over the
  // empty range the latch stages: nothing may ever rewrite its PKR field.
  f.li(a0, static_cast<i64>(vault_pkey_for(slots)));
  f.li(a1, 1);
  f.li(a2, 1);
  rt::syscall(f, os::sys::kPkeySeal);
  {
    const Label ok = f.new_label();
    f.beqz(a0, ok);
    emit_exit(f, kExitVaultSetup);
    f.bind(ok);
  }
  f.call("__vault_latch");
  f.li(a0, static_cast<i64>(vault_pkey_for(slots)));
  rt::syscall(f, os::sys::kPkeyPermSeal);
  {
    const Label ok = f.new_label();
    f.beqz(a0, ok);
    emit_exit(f, kExitVaultSetup);
    f.bind(ok);
  }
  // Intent record into journal slot 0, then the secret bundle generated in
  // registers straight into the write-only slot, then the commit ecall.
  f.la(t0, "__vault_intent");
  f.la(t1, "__vault_base");
  f.ld(t1, 0, t1);
  for (i64 i = 0; i < 8; ++i) {
    f.ld(t2, 8 * i, t0);
    f.sd(t2, static_cast<i64>(vault::kSuperblockSize) + 8 * i, t1);
  }
  f.la(t1, "__vault_base");
  f.ld(t1, 0, t1);
  f.li(t2, static_cast<i64>(kVaultDataOff));
  f.add(t1, t1, t2);
  f.li(t0, static_cast<i64>(vault_secret_key(spec.seed)));
  f.li(t2, 0);
  f.li(t3, static_cast<i64>(kVaultSlotLen / 8));
  {
    const Label loop = f.new_label();
    f.bind(loop);
    f.add(t4, t0, t2);
    emit_mix(f, t4, t5, t6);
    f.slli(t5, t2, 3);
    f.add(t5, t1, t5);
    f.sd(t4, 0, t5);
    f.addi(t2, t2, 1);
    f.blt(t2, t3, loop);
  }
  f.la(a0, "__vault_base");
  f.ld(a0, 0, a0);
  f.li(a1, static_cast<i64>(vault::kSuperblockSize));
  rt::syscall(f, os::sys::kVaultSeal);
  {
    const Label ok = f.new_label();
    f.beqz(a0, ok);
    emit_exit(f, kExitVaultSetup);
    f.bind(ok);
  }
  f.la(t0, "__poison");
  f.sd(zero, 0, t0);
  f.mv(ra, s0);
  f.ret();
}

void add_main(Program& p) {
  Function& f = p.add_function("main");
  f.instrumentable = false;
  const Label loop = f.new_label(), done = f.new_label(), ok = f.new_label(),
              next = f.new_label();
  f.call("__serve_init");
  f.la(t0, "__mon_base");
  f.ld(t0, 0, t0);
  f.sd(sp, kMonSavedSp, t0);
  f.bind(loop);
  // Re-derive EVERYTHING from protected memory: handlers may trash every
  // register including sp, so nothing held across a gate call is trusted.
  f.la(t0, "__mon_base");
  f.ld(t0, 0, t0);
  f.ld(sp, kMonSavedSp, t0);
  f.ld(t1, kMonIndex, t0);
  f.la(t2, "__epoch_len");
  f.ld(t2, 0, t2);
  f.bgeu(t1, t2, done);
  f.la(t3, "__epoch_reqs");
  f.slli(t4, t1, 3);
  f.add(t3, t3, t4);
  f.ld(t3, 0, t3);  // packed (index << 8) | slot
  f.andi(t4, t3, 0xFF);
  f.srli(t5, t3, 8);
  f.la(t0, "__poison");
  f.sd(zero, 0, t0);
  // mark(gate_enter, index, slot, pkey)
  f.li(a0, static_cast<i64>(os::mark::kGateEnter));
  f.mv(a1, t5);
  f.mv(a2, t4);
  f.addi(a3, t4, 2);
  emit_mark(f);
  // payload = mix64(seed ^ index)
  f.la(t0, "__seed");
  f.ld(a0, 0, t0);
  f.xor_(a0, a0, t5);
  emit_mix(f, a0, a1, a2);
  f.la(a1, "__gate_table");
  f.slli(a2, t4, 3);
  f.add(a1, a1, a2);
  f.ld(a1, 0, a1);
  f.jalr_reg(ra, a1);
  // Back from the gate: a0 = checksum (or garbage). Re-derive state.
  f.la(t0, "__mon_base");
  f.ld(t0, 0, t0);
  f.ld(sp, kMonSavedSp, t0);
  f.ld(t1, kMonIndex, t0);
  f.la(t3, "__epoch_reqs");
  f.slli(t4, t1, 3);
  f.add(t3, t3, t4);
  f.ld(t3, 0, t3);
  f.andi(t4, t3, 0xFF);
  f.srli(t5, t3, 8);
  f.la(t6, "__poison");
  f.ld(t6, 0, t6);
  f.beqz(t6, ok);
  // mark(disposition, index, cause, pkey) — attempt failed
  f.li(a0, static_cast<i64>(os::mark::kDisposition));
  f.mv(a1, t5);
  f.mv(a2, t6);
  f.addi(a3, t4, 2);
  emit_mark(f);
  f.j(next);
  f.bind(ok);
  // mark(gate_exit, index, checksum, pkey)
  f.mv(a2, a0);
  f.li(a0, static_cast<i64>(os::mark::kGateExit));
  f.mv(a1, t5);
  f.addi(a3, t4, 2);
  emit_mark(f);
  f.la(t0, "__mon_base");
  f.ld(t0, 0, t0);
  f.ld(t1, kMonServed, t0);
  f.addi(t1, t1, 1);
  f.sd(t1, kMonServed, t0);
  f.bind(next);
  f.la(t0, "__mon_base");
  f.ld(t0, 0, t0);
  f.ld(t1, kMonIndex, t0);
  f.addi(t1, t1, 1);
  f.sd(t1, kMonIndex, t0);
  f.j(loop);
  f.bind(done);
  f.la(t0, "__probe_stop");
  f.li(t1, 1);
  f.sd(t1, 0, t0);
  // Reports: [canary, served, probe_attempts, probe_successes].
  f.la(t0, "__mon_base");
  f.ld(t0, 0, t0);
  f.ld(a0, kMonCanary, t0);
  rt::syscall(f, os::sys::kReport);
  f.la(t0, "__mon_base");
  f.ld(t0, 0, t0);
  f.ld(a0, kMonServed, t0);
  rt::syscall(f, os::sys::kReport);
  f.la(t0, "__probe_attempts");
  f.ld(a0, 0, t0);
  rt::syscall(f, os::sys::kReport);
  f.la(t0, "__probe_success");
  f.ld(a0, 0, t0);
  rt::syscall(f, os::sys::kReport);
  emit_exit(f, 0);  // exits the whole process (probe thread included)
}

}  // namespace

u64 mix64(u64 x) {
  x += 0x9E3779B97F4A7C15ULL;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

u64 payload_for(u64 seed, u32 index) { return mix64(seed ^ index); }

u64 checksum_for(u64 seed, u32 index, u32 slot, u32 rounds) {
  u64 v = payload_for(seed, index);
  for (u32 r = 0; r < std::max<u32>(rounds, 1); ++r) {
    v = mix64(v ^ (slot + 1));
  }
  return v;
}

u32 slot_count(const WorkloadSpec& spec) {
  return 2 * std::clamp<u32>(spec.primaries, 1, 7);
}

std::string gate_name(u32 slot) { return "__gate_" + std::to_string(slot); }
std::string handler_name(u32 slot) {
  return "__handler_" + std::to_string(slot);
}

BuiltServer build_server(const WorkloadSpec& spec) {
  const u32 slots = slot_count(spec);
  Program p;
  rt::add_crt0(p, "main");
  add_main(p);
  add_init(p, spec);
  add_sighandler(p);
  add_probe(p);
  // Layout matters from here: the monitor key's sealed range is
  // [__gate_region_start, __gate_region_end], so ONLY the gates may sit
  // between the markers.
  {
    Function& s = p.add_function("__gate_region_start");
    s.instrumentable = false;
    s.seal_start(0);
    s.ret();
  }
  for (u32 k = 0; k < slots; ++k) add_gate(p, k);
  {
    Function& e = p.add_function("__gate_region_end");
    e.instrumentable = false;
    e.seal_end(0);
    e.ret();
  }
  for (u32 k = 0; k < slots; ++k) add_handler(p, k, spec);
  {
    // The vault key's permissible WRPKR range: the empty span between the
    // two markers — no code may ever rewrite its write-only PKR field.
    Function& latch = p.add_function("__vault_latch");
    latch.instrumentable = false;
    latch.seal_start(0);
    latch.seal_end(0);
    latch.ret();
  }

  p.add_zero("__mon_base", 8);
  p.add_zero("__vault_base", 8);
  p.add_zero("__scratch_table", 8 * slots);
  p.add_zero("__gate_table", 8 * slots);
  p.add_zero("__poison", 8);
  p.add_zero("__probe_attempts", 8);
  p.add_zero("__probe_success", 8);
  p.add_zero("__probe_stop", 8);
  p.add_zero("__main_tid", 8);
  p.add_data("__seed", u64le(spec.seed));
  p.add_data("__epoch_len", u64le(spec.requests.size()));
  if (spec.requests.empty()) {
    p.add_zero("__epoch_reqs", 8);
  } else {
    std::vector<u8> packed;
    packed.reserve(8 * spec.requests.size());
    for (const auto& [index, slot] : spec.requests) {
      const std::vector<u8> one =
          u64le((static_cast<u64>(index) << 8) | (slot & 0xFF));
      packed.insert(packed.end(), one.begin(), one.end());
    }
    p.add_data("__epoch_reqs", std::move(packed));
  }
  {
    const vault::Geometry geo = serve_vault_geometry(slots);
    const std::vector<u8> secret = vault_secret_bytes(spec.seed);
    p.add_rodata("__vault_super", vault::superblock_bytes(geo));
    p.add_rodata("__vault_intent",
                 vault::record_bytes(vault::kRecordIntentSeal, kVaultSecretId,
                                     0, kVaultSlotLen, 1,
                                     checksum64(secret.data(), secret.size())));
  }
  p.add_data("__row_closed", u64le(row_all_closed(slots)));
  p.add_data("__row_open", u64le(row_monitor_open(slots)));
  for (u32 k = 0; k < slots; ++k) {
    p.add_data(row_name(k), u64le(row_handler_open(slots, k)));
  }

  BuiltServer built;
  built.image = p.link();
  for (u32 k = 0; k < slots; ++k) built.slot_pkeys.push_back(2 + k);

  analysis::VerifyOptions& vo = built.verify_options;
  vo.trusted_gates.insert("__gate_region_start");
  vo.trusted_gates.insert("__gate_region_end");
  const auto& fr = built.image.func_ranges;
  const auto region_start = fr.at("__gate_region_start");
  const auto region_end = fr.at("__gate_region_end");
  // Mirror of the runtime PK-CAM: the monitor key's staged range is the
  // two region markers' seal instructions (their first PCs); each handler
  // key's is its gate's seal_start..seal_end (last two insns: seal_end,
  // ret).
  vo.sealed_pkey_ranges[kMonitorPkey] = {region_start.first,
                                         region_end.first};
  for (u32 k = 0; k < slots; ++k) {
    vo.trusted_gates.insert(gate_name(k));
    const auto range = fr.at(gate_name(k));
    vo.sealed_pkey_ranges[2 + k] = {range.first, range.second - 8};
  }
  // The vault key's staged range is the latch's two marker PCs; no WRPKR
  // anywhere names it, so the range guards an empty set on purpose.
  vo.trusted_gates.insert("__vault_latch");
  const auto latch_range = fr.at("__vault_latch");
  vo.sealed_pkey_ranges[vault_pkey_for(slots)] = {latch_range.first,
                                                  latch_range.first + 4};
  // The positional lint: any pkey-write outside this region is a gadget,
  // trusted-sounding name or not.
  vo.gate_regions.push_back({region_start.first, region_end.second - 4});
  return built;
}

}  // namespace sealpk::serve
