#include "common/check.h"
#include "isa/inst.h"

namespace sealpk::isa {

namespace {

u32 enc_r(const OpInfo& oi, u8 rd, u8 rs1, u8 rs2) {
  return oi.opcode | (u32{rd} << 7) | (u32{oi.funct3} << 12) |
         (u32{rs1} << 15) | (u32{rs2} << 20) | (u32{oi.funct7} << 25);
}

u32 enc_i(const OpInfo& oi, u8 rd, u8 rs1, i64 imm) {
  SEALPK_CHECK_MSG(fits_signed(imm, 12), oi.name << " imm " << imm);
  return oi.opcode | (u32{rd} << 7) | (u32{oi.funct3} << 12) |
         (u32{rs1} << 15) | (static_cast<u32>(imm & 0xFFF) << 20);
}

u32 enc_s(const OpInfo& oi, u8 rs1, u8 rs2, i64 imm) {
  SEALPK_CHECK_MSG(fits_signed(imm, 12), oi.name << " imm " << imm);
  const u32 uimm = static_cast<u32>(imm & 0xFFF);
  return oi.opcode | (bits(uimm, 4, 0) << 7) | (u32{oi.funct3} << 12) |
         (u32{rs1} << 15) | (u32{rs2} << 20) | (bits(uimm, 11, 5) << 25);
}

u32 enc_b(const OpInfo& oi, u8 rs1, u8 rs2, i64 imm) {
  SEALPK_CHECK_MSG(fits_signed(imm, 13) && (imm & 1) == 0,
                   oi.name << " offset " << imm);
  const u32 uimm = static_cast<u32>(imm & 0x1FFF);
  return oi.opcode | (bit(uimm, 11) << 7) | (bits(uimm, 4, 1) << 8) |
         (u32{oi.funct3} << 12) | (u32{rs1} << 15) | (u32{rs2} << 20) |
         (bits(uimm, 10, 5) << 25) | (bit(uimm, 12) << 31);
}

u32 enc_u(const OpInfo& oi, u8 rd, i64 imm) {
  SEALPK_CHECK_MSG((imm & 0xFFF) == 0 && fits_signed(imm, 32),
                   oi.name << " imm " << imm);
  return oi.opcode | (u32{rd} << 7) | static_cast<u32>(imm & 0xFFFFF000);
}

u32 enc_j(const OpInfo& oi, u8 rd, i64 imm) {
  SEALPK_CHECK_MSG(fits_signed(imm, 21) && (imm & 1) == 0,
                   oi.name << " offset " << imm);
  const u32 uimm = static_cast<u32>(imm & 0x1FFFFF);
  return oi.opcode | (u32{rd} << 7) | (bits(uimm, 19, 12) << 12) |
         (bit(uimm, 11) << 20) | (bits(uimm, 10, 1) << 21) |
         (bit(uimm, 20) << 31);
}

}  // namespace

u32 encode(const Inst& inst) {
  SEALPK_CHECK(inst.op != Op::kIllegal);
  SEALPK_CHECK(inst.rd < 32 && inst.rs1 < 32 && inst.rs2 < 32);
  const OpInfo& oi = op_info(inst.op);
  switch (oi.format) {
    case Format::kR:
      return enc_r(oi, inst.rd, inst.rs1, inst.rs2);
    case Format::kI:
      return enc_i(oi, inst.rd, inst.rs1, inst.imm);
    case Format::kS:
      return enc_s(oi, inst.rs1, inst.rs2, inst.imm);
    case Format::kB:
      return enc_b(oi, inst.rs1, inst.rs2, inst.imm);
    case Format::kU:
      return enc_u(oi, inst.rd, inst.imm);
    case Format::kJ:
      return enc_j(oi, inst.rd, inst.imm);
    case Format::kShift64:
      SEALPK_CHECK(inst.imm >= 0 && inst.imm < 64);
      return enc_r(oi, inst.rd, inst.rs1, 0) |
             (static_cast<u32>(inst.imm) << 20);
    case Format::kShift32:
      SEALPK_CHECK(inst.imm >= 0 && inst.imm < 32);
      return enc_r(oi, inst.rd, inst.rs1, 0) |
             (static_cast<u32>(inst.imm) << 20);
    case Format::kCsr:
      return oi.opcode | (u32{inst.rd} << 7) | (u32{oi.funct3} << 12) |
             (u32{inst.rs1} << 15) | (u32{inst.csr} << 20);
    case Format::kCsrI:
      SEALPK_CHECK(inst.imm >= 0 && inst.imm < 32);
      return oi.opcode | (u32{inst.rd} << 7) | (u32{oi.funct3} << 12) |
             (static_cast<u32>(inst.imm) << 15) | (u32{inst.csr} << 20);
    case Format::kSys:
      switch (inst.op) {
        case Op::kFence:
          return 0x0F | (0x0FF00000u);  // fence iorw, iorw
        case Op::kFenceI:
          return 0x0F | (1u << 12);
        case Op::kEcall:
          return 0x73;
        case Op::kEbreak:
          return 0x73 | (1u << 20);
        case Op::kSret:
          return 0x73 | (0x102u << 20);
        case Op::kWfi:
          return 0x73 | (0x105u << 20);
        default:
          SEALPK_CHECK_MSG(false, "unencodable system op");
      }
  }
  SEALPK_CHECK_MSG(false, "unreachable format");
  return 0;  // not reached
}

}  // namespace sealpk::isa
